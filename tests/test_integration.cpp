// End-to-end integration tests: the paper's Fig. 1 pipeline through CSV,
// the bandit inside the cluster simulator, and online learning from the
// real matmul kernel.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "apps/cycles.hpp"
#include "apps/matmul.hpp"
#include "cluster/cluster_sim.hpp"
#include "core/banditware.hpp"
#include "core/evaluator.hpp"
#include "dataframe/csv.hpp"
#include "experiments/datasets.hpp"
#include "serve/bandit_server.hpp"
#include "serve/replay.hpp"

namespace bw {
namespace {

// Fig. 1 end to end: per-hardware frames -> CSV files on disk -> reload ->
// merge -> replay -> the bandit must beat random selection.
TEST(Integration, Fig1PipelineThroughCsv) {
  const hw::HardwareCatalog catalog = hw::synthetic_cycles_catalog();
  apps::CyclesDatasetOptions options;
  options.num_groups = 60;
  options.seed = 42;
  const auto frames = apps::build_cycles_frames(catalog, apps::CyclesConfig{}, options);

  // Round-trip every per-hardware frame through a CSV file.
  const auto dir = std::filesystem::temp_directory_path() / "bw_integration";
  std::filesystem::create_directories(dir);
  std::vector<df::DataFrame> reloaded;
  for (std::size_t arm = 0; arm < frames.size(); ++arm) {
    const auto path = dir / ("runs_" + catalog[arm].name + ".csv");
    df::write_csv_file(frames[arm], path.string());
    reloaded.push_back(df::read_csv_file(path.string()));
  }
  std::filesystem::remove_all(dir);

  const core::RunTable table =
      exp::merge_frames_to_table(reloaded, "run_id", {"num_tasks"}, catalog);
  EXPECT_EQ(table.num_groups(), 60u);

  core::DecayingEpsilonGreedy policy(catalog, 1, core::EpsilonGreedyConfig{});
  core::ReplayConfig replay_config;
  replay_config.num_rounds = 80;
  replay_config.accuracy_tolerance.seconds = 20.0;
  replay_config.seed = 7;
  const core::ReplayResult result = core::replay(policy, table, replay_config);

  // Cycles hardware is cleanly separated: the learned model must identify
  // the fastest arm for nearly every workflow.
  EXPECT_GT(result.final_metrics.accuracy, 0.9);
  // And the learned RMSE must come close to the full-fit baseline.
  const core::FullFit baseline = core::fit_full_table(table, replay_config.accuracy_tolerance);
  EXPECT_LT(result.final_metrics.rmse, baseline.metrics.rmse * 5.0);
}

// BanditWare driving placement inside the simulated NDP cluster: pick a
// hardware request per workflow, run it on the cluster, learn from the
// observed (contention-inflated) runtime.
TEST(Integration, BanditInsideClusterSim) {
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  core::BanditWareConfig config;
  config.policy.decay = 0.95;
  core::BanditWare bandit(catalog, {"num_tasks"}, config);
  Rng rng(11);

  std::vector<cluster::Node> nodes;
  nodes.emplace_back("node-a", 8.0, 64.0);
  nodes.emplace_back("node-b", 8.0, 64.0);
  cluster::ClusterSim sim(std::move(nodes));

  const apps::CyclesConfig cycles_config;
  double time = 0.0;
  for (int i = 0; i < 40; ++i) {
    const std::size_t num_tasks = 100 + rng.index(400);
    const core::FeatureVector x = {static_cast<double>(num_tasks)};
    const auto decision = bandit.next(x, rng);

    // The cluster runs the workflow with the chosen resource request; its
    // uncontended duration comes from the Cycles simulator.
    Rng run_rng(rng.child_seed(static_cast<std::uint64_t>(i)));
    const double duration =
        apps::simulate_cycles_run(num_tasks, *decision.spec, cycles_config, run_rng);
    const cluster::PodId pod = sim.submit(
        time, {"wf" + std::to_string(i), static_cast<double>(decision.spec->cpus),
               decision.spec->memory_gb, duration});
    sim.run_until_idle();
    bandit.observe(decision.arm, x, sim.record(pod).runtime_s());
    time = sim.now();
  }

  EXPECT_EQ(bandit.num_observations(), 40u);
  EXPECT_EQ(sim.stats().completed, 40u);
  // After 40 observations the model must order the NDP arms by speed:
  // more cores -> lower predicted runtime for a large workflow.
  const auto predictions = bandit.predictions({450.0});
  EXPECT_GT(predictions[0], predictions[2]);
}

// Online learning from *live* kernel measurements (miniature sizes): the
// bandit learns that more threads are faster for the biggest matrices.
TEST(Integration, BanditOnLiveMatmulKernel) {
  hw::HardwareCatalog catalog({{"T1", 1, 4.0}, {"T2", 2, 8.0}});
  core::BanditWareConfig config;
  config.policy.decay = 0.9;
  core::BanditWare bandit(catalog, {"size"}, config);
  Rng rng(13);

  ThreadPool pool_one(1);
  ThreadPool pool_two(2);
  for (int i = 0; i < 10; ++i) {
    const std::size_t n = 32 + (static_cast<std::size_t>(i) % 3) * 16;
    const core::FeatureVector x = {static_cast<double>(n)};
    const auto decision = bandit.next(x, rng);
    ThreadPool& pool = decision.arm == 0 ? pool_one : pool_two;
    const double seconds = apps::measure_tiled_square_seconds(n, pool);
    bandit.observe(decision.arm, x, seconds);
  }
  EXPECT_EQ(bandit.num_observations(), 10u);
  // Sanity only (timing noise): predictions exist and are finite.
  const auto predictions = bandit.predictions({48.0});
  for (double p : predictions) EXPECT_TRUE(std::isfinite(p));
}

// Snapshot persistence across a "service restart" mid-stream.
TEST(Integration, SnapshotRestartContinuesLearning) {
  const exp::CyclesDataset dataset = exp::build_cycles_dataset(40, 21);
  const core::RunTable& table = dataset.table;

  core::BanditWare bandit(dataset.catalog, {"num_tasks"}, {});
  Rng rng(17);
  for (int i = 0; i < 15; ++i) {
    const std::size_t g = rng.index(table.num_groups());
    const core::FeatureVector x = table.features_of(g);
    const auto decision = bandit.next(x, rng);
    bandit.observe(decision.arm, x, table.runtime(g, decision.arm));
  }

  core::BanditWare restored = core::BanditWare::load_state(bandit.save_state());
  for (int i = 0; i < 15; ++i) {
    const std::size_t g = rng.index(table.num_groups());
    const core::FeatureVector x = table.features_of(g);
    const auto decision = restored.next(x, rng);
    restored.observe(decision.arm, x, table.runtime(g, decision.arm));
  }
  EXPECT_EQ(restored.num_observations(), 30u);
  // The restored bandit orders the synthetic hardware correctly.
  const auto predictions = restored.predictions({400.0});
  EXPECT_GT(predictions[0], predictions[3]);  // 1 core slower than 8 cores
}

// The sharded serving engine over the same Fig. 1 dataset: batched replay
// must learn the hardware ordering on every shard, and a mid-stream
// snapshot restart must not lose what was learned.
TEST(Integration, ShardedServingOverCyclesDataset) {
  const exp::CyclesDataset dataset = exp::build_cycles_dataset(60, 42);

  serve::BanditServerConfig config;
  config.num_shards = 4;
  config.seed = 9;
  serve::BanditServer server(dataset.catalog, {"num_tasks"}, config);

  serve::ReplayOptions options;
  options.batch = 32;
  options.rounds = 25;
  options.seed = 13;
  const serve::ReplayReport report =
      serve::replay_run_table(server, dataset.table, options);
  EXPECT_EQ(report.decisions, 800u);

  serve::BanditServer restored = serve::BanditServer::load_state(server.save_state());
  for (std::size_t s = 0; s < restored.num_shards(); ++s) {
    const auto predictions = restored.predictions(s, {400.0});
    // Each shard saw a quarter of the stream — still plenty to order the
    // cleanly separated Cycles hardware.
    EXPECT_GT(predictions[0], predictions[3]);  // 1 core slower than 8 cores
  }
  const serve::ReplayReport after =
      serve::replay_run_table(restored, dataset.table, options);
  EXPECT_LT(after.mean_regret_s, report.mean_regret_s);  // learning carried over
}

}  // namespace
}  // namespace bw
