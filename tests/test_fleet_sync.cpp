// Property suite for multi-node gossip fleet sync (src/fleet/).
//
// The headline property, proven under every network failure the simulator
// can inject (delay, reorder, drop, duplication, partition, crash/restart):
// once gossip quiesces, every node's canonical fused model agrees with ONE
// single learner fed the surviving origin streams — same predictions to
// 1e-9, same exploration state, for all three policies and λ ∈ {1, 0.98}.
// Because the reference is built from the simulator's ground-truth logs,
// agreement simultaneously proves no evidence was lost (counts match the
// fed totals) and none was double-counted (a double-fold would shift every
// prediction).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fleet/fleet_node.hpp"
#include "fleet/sim.hpp"
#include "hardware/catalog.hpp"
#include "io/state_io.hpp"

namespace bw {
namespace {

using core::BanditWare;
using core::PolicyKind;
using fleet::FleetNode;
using fleet::FleetNodeConfig;
using fleet::FleetSim;
using fleet::FleetSimConfig;

std::vector<std::string> feature_names() { return {"num_tasks", "mem_gb"}; }

serve::BanditServerConfig server_config(PolicyKind policy, double lambda) {
  serve::BanditServerConfig config;
  config.num_shards = 1;
  config.seed = 17;
  config.bandit.policy_kind = policy;
  config.bandit.alpha = 1.5;
  config.bandit.posterior_scale = 1.25;
  config.bandit.policy.fit.ridge = 1e-3;
  config.bandit.policy.fit.forgetting = lambda;
  return config;
}

FleetSimConfig sim_config(PolicyKind policy, double lambda, std::size_t nodes,
                          std::uint64_t seed) {
  FleetSimConfig config;
  config.num_nodes = nodes;
  config.seed = seed;
  config.server = server_config(policy, lambda);
  config.batch_size = 4;
  config.min_delay = 1;
  config.max_delay = 5;
  return config;
}

/// Serialized text snapshot of a model — the strictest equality we have
/// (17-significant-digit doubles, every arm, the ε scalar).
std::string model_text(const BanditWare& model) {
  std::ostringstream os;
  io::save_state(os, model, io::Format::kText);
  return os.str();
}

/// Prediction-surface agreement at `tol` on a deterministic probe grid,
/// plus exact count and near-exact ε agreement.
void expect_models_agree(const BanditWare& got, const BanditWare& want, double tol) {
  ASSERT_EQ(got.num_arms(), want.num_arms());
  EXPECT_EQ(got.num_observations(), want.num_observations());
  Rng probe_rng(99);
  for (int probe = 0; probe < 25; ++probe) {
    core::FeatureVector x(feature_names().size());
    for (double& v : x) v = probe_rng.uniform(1.0, 10.0);
    const std::vector<double> a = got.predictions(x);
    const std::vector<double> b = want.predictions(x);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t arm = 0; arm < a.size(); ++arm) {
      const double scale = std::max(1.0, std::fabs(b[arm]));
      EXPECT_NEAR(a[arm], b[arm], tol * scale)
          << "arm " << arm << " probe " << probe;
    }
  }
  EXPECT_NEAR(got.epsilon(), want.epsilon(), tol);
}

struct PolicyLambdaCase {
  PolicyKind policy;
  double lambda;
};

const PolicyLambdaCase kAllCases[] = {
    {PolicyKind::kEpsilonGreedy, 1.0}, {PolicyKind::kEpsilonGreedy, 0.98},
    {PolicyKind::kLinUcb, 1.0},        {PolicyKind::kLinUcb, 0.98},
    {PolicyKind::kThompson, 1.0},      {PolicyKind::kThompson, 0.98},
};

// ---------------------------------------------------------------------------
// Convergence: gossip == single learner, all policies × λ.

TEST(FleetSync, GossipMatchesSingleLearnerAllPoliciesAndLambdas) {
  for (const auto& test_case : kAllCases) {
    SCOPED_TRACE(core::to_string(test_case.policy) + " lambda " +
                 std::to_string(test_case.lambda));
    FleetSim sim(hw::ndp_catalog(), feature_names(),
                 sim_config(test_case.policy, test_case.lambda, 4, 101));
    sim.run(300);
    sim.quiesce();
    // Nothing was dropped or crashed, so every fed observation must survive.
    ASSERT_EQ(sim.node(0).total_observations(), sim.stats().observations_fed);
    const BanditWare reference = sim.reference_model();
    const std::string canonical = model_text(sim.node(0).fused_model());
    for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
      const BanditWare fused = sim.node(i).fused_model();
      expect_models_agree(fused, reference, 1e-9);
      // Node stores agree entry-for-entry, so the deterministic fold must
      // agree byte-for-byte — not merely to tolerance.
      EXPECT_EQ(model_text(fused), canonical) << "node " << i;
    }
  }
}

TEST(FleetSync, RingTopologyConvergesAcrossMultipleHops) {
  FleetSimConfig config = sim_config(PolicyKind::kEpsilonGreedy, 0.98, 5, 7);
  config.topology = fleet::GossipTopology::kRing;
  FleetSim sim(hw::ndp_catalog(), feature_names(), config);
  sim.run(400);
  sim.quiesce();
  const BanditWare reference = sim.reference_model();
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    expect_models_agree(sim.node(i).fused_model(), reference, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Fault injection: delay + reorder + drop + duplicate.

TEST(FleetSync, DropsReordersAndDuplicatesLoseNothingAndDoubleCountNothing) {
  FleetSimConfig config = sim_config(PolicyKind::kLinUcb, 0.98, 4, 23);
  config.min_delay = 1;
  config.max_delay = 25;  // heavy reordering
  config.drop_probability = 0.3;
  config.duplicate_probability = 0.25;
  FleetSim sim(hw::ndp_catalog(), feature_names(), config);
  sim.run(600);
  sim.quiesce();
  // The faults actually fired…
  EXPECT_GT(sim.stats().dropped, 0u);
  EXPECT_GT(sim.stats().duplicated, 0u);
  EXPECT_GT(sim.stats().entries_stale, 0u);  // duplicates arrived and were ignored
  // …and despite them: every observation survives exactly once.
  ASSERT_EQ(sim.node(0).total_observations(), sim.stats().observations_fed);
  const BanditWare reference = sim.reference_model();
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    expect_models_agree(sim.node(i).fused_model(), reference, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Crash / restart-from-snapshot.

TEST(FleetSync, CrashRestartRejoinsUnderBumpedIncarnationAndConverges) {
  FleetSimConfig config = sim_config(PolicyKind::kEpsilonGreedy, 1.0, 3, 31);
  config.snapshot_every = 2;
  FleetSim sim(hw::ndp_catalog(), feature_names(), config);
  sim.run(200);
  sim.crash(1);
  sim.run(120);  // fleet keeps serving and gossiping around the hole
  sim.restart(1);
  EXPECT_EQ(sim.node(1).incarnation(), 2u);
  sim.run(200);
  sim.quiesce();
  const BanditWare reference = sim.reference_model();
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    expect_models_agree(sim.node(i).fused_model(), reference, 1e-9);
  }
  // The pre-crash stream survives as a distinct closed origin: every node
  // holds both incarnations of node 1 (plus the other two nodes).
  EXPECT_GE(sim.node(0).num_origins(), 4u);
}

TEST(FleetSync, EvidenceGossipedBeforeCrashOutlivesTheSnapshot) {
  // Node 1 observes, gossips everything to node 0, then crashes having
  // only an *initial* (empty) snapshot. After restart + quiesce the fleet
  // must still hold every pre-crash observation — recovered from node 0,
  // not from the snapshot.
  FleetSimConfig config = sim_config(PolicyKind::kThompson, 0.98, 2, 47);
  FleetSim sim(hw::ndp_catalog(), feature_names(), config);
  for (int i = 0; i < 6; ++i) sim.serve_batch(1);
  sim.exchange(1, 0);
  const std::uint64_t fed = sim.stats().observations_fed;
  sim.crash(1);
  sim.restart(1);
  sim.quiesce();
  ASSERT_EQ(sim.node(1).total_observations(), fed);
  expect_models_agree(sim.node(1).fused_model(), sim.reference_model(), 1e-9);
}

// ---------------------------------------------------------------------------
// Partition, then heal.

TEST(FleetSync, PartitionedHalvesDivergeThenHealToOneModel) {
  FleetSimConfig config = sim_config(PolicyKind::kLinUcb, 1.0, 4, 59);
  FleetSim sim(hw::ndp_catalog(), feature_names(), config);
  sim.run(100);
  sim.partition({{0, 1}, {2, 3}});
  sim.run(300);
  EXPECT_GT(sim.stats().partition_dropped, 0u);
  sim.deliver_all();
  // While split, the halves hold different evidence.
  EXPECT_NE(model_text(sim.node(0).fused_model()),
            model_text(sim.node(2).fused_model()));
  sim.heal();
  sim.run(200);
  sim.quiesce();
  ASSERT_EQ(sim.node(0).total_observations(), sim.stats().observations_fed);
  const BanditWare reference = sim.reference_model();
  const std::string canonical = model_text(sim.node(0).fused_model());
  for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
    expect_models_agree(sim.node(i).fused_model(), reference, 1e-9);
    EXPECT_EQ(model_text(sim.node(i).fused_model()), canonical);
  }
}

// ---------------------------------------------------------------------------
// Determinism: the whole point of the virtual-clock harness.

TEST(FleetSync, SameSeedYieldsByteIdenticalFinalSnapshots) {
  auto final_snapshots = [](std::uint64_t seed) {
    FleetSimConfig config = sim_config(PolicyKind::kEpsilonGreedy, 0.98, 3, seed);
    config.max_delay = 10;
    config.drop_probability = 0.2;
    FleetSim sim(hw::ndp_catalog(), feature_names(), config);
    sim.run(250);
    sim.quiesce();
    std::vector<std::string> out;
    for (std::size_t i = 0; i < sim.num_nodes(); ++i) {
      out.push_back(sim.node(i).save_snapshot());
    }
    return out;
  };
  const std::vector<std::string> first = final_snapshots(77);
  const std::vector<std::string> second = final_snapshots(77);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "node " << i;
  }
  // And a different schedule genuinely differs (the determinism above is
  // not vacuous).
  EXPECT_NE(final_snapshots(78)[0], first[0]);
}

// ---------------------------------------------------------------------------
// Protocol-level unit tests (no simulator).

FleetNode make_node(std::uint32_t id, PolicyKind policy = PolicyKind::kEpsilonGreedy,
                    double lambda = 1.0) {
  FleetNodeConfig config;
  config.node_id = id;
  config.server = server_config(policy, lambda);
  return FleetNode(hw::ndp_catalog(), feature_names(), config);
}

void feed(FleetNode& node, int batches, std::uint64_t seed) {
  Rng rng(seed);
  for (int b = 0; b < batches; ++b) {
    std::vector<core::FeatureVector> xs;
    for (int i = 0; i < 4; ++i) {
      xs.push_back({rng.uniform(1.0, 10.0), rng.uniform(1.0, 10.0)});
    }
    const auto decisions = node.recommend_batch(xs);
    std::vector<serve::ServeObservation> observations;
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      const double tasks = xs[i][0] + xs[i][1];
      observations.push_back({decisions[i].shard, decisions[i].arm, xs[i],
                              FleetSim::synthetic_runtime(*decisions[i].spec, tasks)});
    }
    node.observe_batch(observations);
  }
}

TEST(FleetWireProtocol, DeltaSurvivesTheWireBitExactly) {
  FleetNode node = make_node(3, PolicyKind::kLinUcb);
  feed(node, 5, 11);
  const fleet::FleetDelta delta = node.make_delta(9);
  const std::string bytes = io::save_fleet_delta(delta);
  bool truncated = true;
  const fleet::FleetDelta loaded = io::load_fleet_delta(bytes, &truncated);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(loaded.sender, delta.sender);
  EXPECT_EQ(loaded.sender_incarnation, delta.sender_incarnation);
  EXPECT_TRUE(loaded.config == delta.config);
  ASSERT_EQ(loaded.origins.size(), delta.origins.size());
  for (std::size_t o = 0; o < delta.origins.size(); ++o) {
    ASSERT_EQ(loaded.origins[o].arms.size(), delta.origins[o].arms.size());
    for (std::size_t e = 0; e < delta.origins[o].arms.size(); ++e) {
      const auto& got = loaded.origins[o].arms[e];
      const auto& want = delta.origins[o].arms[e];
      EXPECT_EQ(got.arm, want.arm);
      EXPECT_EQ(got.stats.n, want.stats.n);
      EXPECT_EQ(got.stats.theta, want.stats.theta);  // raw LE doubles: exact
      EXPECT_EQ(got.stats.p.data(), want.stats.p.data());
    }
  }
  ASSERT_EQ(loaded.version_vector.size(), delta.version_vector.size());
}

TEST(FleetWireProtocol, ConfigEnvelopeMismatchesAreRejected) {
  FleetNode sender = make_node(1, PolicyKind::kEpsilonGreedy, 0.98);
  feed(sender, 2, 5);
  // λ mismatch.
  FleetNode lambda_node = make_node(2, PolicyKind::kEpsilonGreedy, 1.0);
  EXPECT_THROW(lambda_node.apply_delta(sender.make_delta(2)), ParseError);
  // Policy mismatch.
  FleetNode policy_node = make_node(2, PolicyKind::kThompson, 0.98);
  EXPECT_THROW(policy_node.apply_delta(sender.make_delta(2)), ParseError);
  // Matching config applies cleanly.
  FleetNode twin = make_node(2, PolicyKind::kEpsilonGreedy, 0.98);
  EXPECT_GT(twin.apply_delta(sender.make_delta(2)).applied, 0u);
}

TEST(FleetWireProtocol, OwnEchoIsEntirelyStale) {
  FleetNode node = make_node(4);
  feed(node, 3, 13);
  const std::string before = model_text(node.fused_model());
  const fleet::ApplyResult result = node.apply_delta(node.make_delta(4));
  EXPECT_EQ(result.applied, 0u);
  EXPECT_GT(result.stale, 0u);
  EXPECT_FALSE(result.changed);
  EXPECT_EQ(model_text(node.fused_model()), before);
}

TEST(FleetWireProtocol, VersionVectorsStopResends) {
  FleetNode a = make_node(1);
  FleetNode b = make_node(2);
  feed(a, 3, 21);
  feed(b, 3, 22);
  ASSERT_GT(b.apply_delta(a.make_delta(2)).applied, 0u);
  ASSERT_GT(a.apply_delta(b.make_delta(1)).applied, 0u);
  // b's reply advertised everything it holds, so a stops resending at
  // once. b still works from a's *first* vector (floors are ack-free and
  // only rise on receive), so one more message from a — origin-free or
  // not — brings b up to date and the fleet reaches its steady state:
  // version vectors only.
  EXPECT_TRUE(a.make_delta(2).origins.empty());
  EXPECT_EQ(b.apply_delta(a.make_delta(2)).applied, 0u);
  EXPECT_TRUE(b.make_delta(1).origins.empty());
  // …until new evidence arrives.
  feed(a, 1, 23);
  EXPECT_FALSE(a.make_delta(2).origins.empty());
}

TEST(FleetWireProtocol, RestartVoidsTheFloorsPeersLearnedFromTheDeadIncarnation) {
  FleetNode a = make_node(1);
  FleetNode b = make_node(2);
  feed(b, 3, 51);
  // a learns (from b itself) that b holds its own evidence.
  ASSERT_GT(a.apply_delta(b.make_delta(1)).applied, 0u);
  EXPECT_TRUE(a.make_delta(2).origins.empty());
  // …then b restarts from an EMPTY snapshot, losing everything. Its floor
  // at a is now a false claim; b's first new-incarnation message must void
  // it so a resends, or the evidence would be stranded.
  const std::string empty_snapshot = make_node(2).save_snapshot();
  FleetNode reborn = FleetNode::restore(empty_snapshot);
  ASSERT_EQ(reborn.total_observations(), 0u);
  a.apply_delta(reborn.make_delta(1));  // carries incarnation 2 + honest vv
  const fleet::FleetDelta resend = a.make_delta(2);
  EXPECT_FALSE(resend.origins.empty());
  ASSERT_GT(reborn.apply_delta(resend).applied, 0u);
  EXPECT_EQ(reborn.total_observations(), b.total_observations());
}

TEST(FleetWireProtocol, TruncatedDeltaLoadsItsPrefix) {
  FleetNode node = make_node(5, PolicyKind::kLinUcb);
  feed(node, 4, 31);
  FleetNode peer = make_node(6, PolicyKind::kLinUcb);
  feed(peer, 4, 32);
  ASSERT_GT(node.apply_delta(peer.make_delta(5)).applied, 0u);  // two origins now
  const std::string bytes = io::save_fleet_delta(node.make_delta(99));
  // Tear mid-stream: everything before the tear loads, flagged truncated.
  bool truncated = false;
  const fleet::FleetDelta partial =
      io::load_fleet_delta(bytes.substr(0, bytes.size() - 7), &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_LE(partial.origins.size(), 2u);
  // A partial apply is harmless — replace semantics: the remainder simply
  // arrives later; applying the full message afterwards converges.
  FleetNode receiver = make_node(7, PolicyKind::kLinUcb);
  receiver.apply_delta(partial);
  receiver.apply_delta(io::load_fleet_delta(bytes));
  EXPECT_EQ(receiver.total_observations(), node.total_observations());
}

TEST(FleetWireProtocol, NodeSnapshotRestoresUnderNextIncarnation) {
  FleetNode node = make_node(8, PolicyKind::kThompson, 0.98);
  feed(node, 5, 41);
  const std::string canonical = model_text(node.fused_model());
  const std::uint64_t held = node.total_observations();
  FleetNode restored = FleetNode::restore(node.save_snapshot());
  EXPECT_EQ(restored.node_id(), 8u);
  EXPECT_EQ(restored.incarnation(), 2u);
  EXPECT_EQ(restored.total_observations(), held);
  // The canonical fold is deterministic in the origin store, so the
  // restored fleet model matches byte-for-byte.
  EXPECT_EQ(model_text(restored.fused_model()), canonical);
  // The old stream is closed: a peer echoing more of incarnation 1 is a
  // normal origin update, but the node's own new stream starts empty.
  EXPECT_EQ(restored.make_delta(0).origins.size(), 1u);  // old stream only
}

}  // namespace
}  // namespace bw
