// The io:: layer contract, end to end: format detection (probe), text<->
// binary bit-exactness per policy kind, byte-stable binary round trips,
// the binary truncation contract (a torn file loads up to the last
// complete packet, a corrupted checksum stops the stream there), hostile
// binary counts failing as clean ParseErrors, and the streaming run-table
// reader/writer. Companion suites: tests/test_snapshot_golden.cpp pins the
// bytes of checked-in fixtures, tests/test_snapshot_fuzz.cpp mutates both
// encodings at random.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/banditware.hpp"
#include "core/run_table.hpp"
#include "hardware/catalog.hpp"
#include "io/container.hpp"
#include "io/run_table_io.hpp"
#include "io/state_io.hpp"
#include "serve/bandit_server.hpp"

namespace bw {
namespace {

namespace fs = std::filesystem;

core::BanditWare trained_instance(core::PolicyKind kind, bool exact_history = false,
                                  double forgetting = 1.0) {
  core::BanditWareConfig config;
  config.policy_kind = kind;
  config.policy.exact_history = exact_history;
  config.policy.fit.forgetting = forgetting;
  config.alpha = 1.5;
  config.posterior_scale = 1.25;
  core::BanditWare bandit(hw::ndp_catalog(), {"num_tasks", "mem_req"}, config);
  for (int i = 0; i < 9; ++i) {
    const core::FeatureVector x = {50.0 + 13.0 * i, 4.0 + (i % 3)};
    bandit.observe(static_cast<core::ArmIndex>(i % 3), x, 10.0 + 0.3 * i);
  }
  return bandit;
}

serve::BanditServer trained_server(
    core::PolicyKind kind = core::PolicyKind::kEpsilonGreedy,
    double forgetting = 1.0) {
  serve::BanditServerConfig config;
  config.num_shards = 2;
  config.sharding = serve::ShardingPolicy::kRoundRobin;
  config.sync_every = 2;
  config.bandit.policy_kind = kind;
  config.bandit.policy.fit.forgetting = forgetting;
  serve::BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<serve::ServeObservation> observations;
    for (int i = 0; i < 4; ++i) {
      const double tasks = 30.0 + 7.0 * (batch * 4 + i);
      observations.push_back({static_cast<std::size_t>(i % 2),
                              static_cast<core::ArmIndex>(i % 3),
                              {tasks},
                              5.0 + tasks / catalog[i % 3].cpus});
    }
    server.observe_batch(observations);
  }
  return server;
}

template <typename State>
std::string save_as(const State& state, io::Format format) {
  std::ostringstream os(std::ios::binary);
  io::save_state(os, state, format);
  return os.str();
}

core::BanditWare load_bandit(const std::string& bytes, io::LoadInfo* info = nullptr) {
  std::istringstream is(bytes, std::ios::binary);
  return io::load_state(is, info);
}

serve::BanditServer load_server(const std::string& bytes,
                                io::LoadInfo* info = nullptr) {
  std::istringstream is(bytes, std::ios::binary);
  return io::load_server_state(is, info);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Byte offsets of each packet *end* in a container blob (the preamble end
/// is entry 0), computed from the frames alone — the cut points at which a
/// truncated stream still ends on a whole packet.
std::vector<std::size_t> packet_ends(const std::string& blob) {
  std::vector<std::size_t> ends;
  std::size_t pos = sizeof(io::kMagic) + 1;
  ends.push_back(pos);
  while (pos + 12 <= blob.size()) {
    const auto* p = reinterpret_cast<const unsigned char*>(blob.data() + pos);
    const std::uint32_t payload_size = static_cast<std::uint32_t>(p[0]) |
                                       static_cast<std::uint32_t>(p[1]) << 8 |
                                       static_cast<std::uint32_t>(p[2]) << 16 |
                                       static_cast<std::uint32_t>(p[3]) << 24;
    pos += 12 + payload_size;
    ends.push_back(pos);
  }
  EXPECT_EQ(ends.back(), blob.size()) << "frame walk must land on the blob end";
  return ends;
}

/// A hand-built banditware-state container: valid preamble + header packet
/// whose tail bytes come from `header_tail` (the bytes after the config +
/// epsilon prefix — i.e. the feature-name and catalog sections).
std::string crafted_bandit_container(const std::string& header_tail) {
  std::string payload;
  io::put_u8(payload, 0);  // policy kind: epsilon-greedy
  io::put_f64(payload, 1.0);   // alpha
  io::put_f64(payload, 1.0);   // posterior_scale
  io::put_f64(payload, 1.0);   // initial_epsilon
  io::put_f64(payload, 0.99);  // decay
  io::put_f64(payload, 0.1);   // tolerance ratio
  io::put_f64(payload, 5.0);   // tolerance seconds
  io::put_u8(payload, 0);      // exact_history
  io::put_f64(payload, 1.0);   // live epsilon
  payload += header_tail;
  std::ostringstream os(std::ios::binary);
  io::write_container_magic(os, io::PayloadKind::kBanditWareState);
  io::write_packet(os, 0x01, payload);
  return os.str();
}

core::RunTable small_table(std::size_t groups) {
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  linalg::Matrix features(groups, 2);
  linalg::Matrix runtimes(groups, catalog.size());
  for (std::size_t g = 0; g < groups; ++g) {
    features(g, 0) = 10.0 + 1.25 * static_cast<double>(g);
    features(g, 1) = 4.0 + static_cast<double>(g % 5);
    for (std::size_t a = 0; a < catalog.size(); ++a) {
      runtimes(g, a) = 3.0 + features(g, 0) / catalog[a].cpus + 0.125 * a;
    }
  }
  return core::RunTable({"num_tasks", "mem_req"}, std::move(features),
                        std::move(runtimes), catalog);
}

// ---- format tokens and detection ----------------------------------------

TEST(StateIo, FormatTokensParseAndPrint) {
  EXPECT_EQ(io::parse_format("auto"), io::Format::kAuto);
  EXPECT_EQ(io::parse_format("text"), io::Format::kText);
  EXPECT_EQ(io::parse_format("binary"), io::Format::kBinary);
  EXPECT_EQ(io::to_string(io::Format::kAuto), "auto");
  EXPECT_EQ(io::to_string(io::Format::kText), "text");
  EXPECT_EQ(io::to_string(io::Format::kBinary), "binary");
  EXPECT_THROW(io::parse_format("bson"), InvalidArgument);
  EXPECT_THROW(io::parse_format(""), InvalidArgument);
}

TEST(StateIo, ProbeIdentifiesEveryFormatWithoutConsuming) {
  const core::BanditWare bandit = trained_instance(core::PolicyKind::kEpsilonGreedy);
  const serve::BanditServer server = trained_server();
  const core::RunTable table = small_table(5);
  std::ostringstream table_os(std::ios::binary);
  io::write_run_table(table_os, table);

  struct Case {
    std::string bytes;
    io::PayloadKind kind;
    io::Format format;
  };
  const std::vector<Case> cases = {
      {save_as(bandit, io::Format::kText), io::PayloadKind::kBanditWareState,
       io::Format::kText},
      {save_as(bandit, io::Format::kBinary), io::PayloadKind::kBanditWareState,
       io::Format::kBinary},
      {save_as(server, io::Format::kText), io::PayloadKind::kBanditServerState,
       io::Format::kText},
      {save_as(server, io::Format::kBinary), io::PayloadKind::kBanditServerState,
       io::Format::kBinary},
      {table_os.str(), io::PayloadKind::kRunTable, io::Format::kBinary},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::istringstream is(cases[i].bytes, std::ios::binary);
    io::ProbeResult probe;
    ASSERT_TRUE(io::probe(is, probe)) << "case " << i;
    EXPECT_EQ(probe.kind, cases[i].kind) << "case " << i;
    EXPECT_EQ(probe.format, cases[i].format) << "case " << i;
    EXPECT_GE(probe.version, 1) << "case " << i;
    // Probing must not consume: the stream still loads from byte zero.
    EXPECT_EQ(is.tellg(), std::istringstream::pos_type(0)) << "case " << i;
  }

  std::istringstream junk("neither a text header nor a container\n");
  io::ProbeResult probe;
  EXPECT_FALSE(io::probe(junk, probe));
}

TEST(StateIo, EveryCheckedInTextFixtureLoadsThroughAutoDetection) {
  // The acceptance bar for the io:: redesign: all text snapshots ever
  // shipped (bandit v1-v3, server v2-v4 fixtures) keep loading through the
  // single io::load_state / io::load_server_state entry point.
  std::size_t fixtures = 0;
  for (const auto& entry : fs::directory_iterator(BW_TEST_DATA_DIR)) {
    if (entry.path().extension() != ".bw") continue;
    ++fixtures;
    const std::string bytes = read_file(entry.path().string());
    std::istringstream is(bytes, std::ios::binary);
    io::ProbeResult probe;
    ASSERT_TRUE(io::probe(is, probe)) << entry.path();
    EXPECT_EQ(probe.format, io::Format::kText) << entry.path();
    io::LoadInfo info;
    if (probe.kind == io::PayloadKind::kBanditWareState) {
      const core::BanditWare bandit = io::load_state(is, &info);
      EXPECT_GT(bandit.num_arms(), 0u) << entry.path();
    } else {
      ASSERT_EQ(probe.kind, io::PayloadKind::kBanditServerState) << entry.path();
      const serve::BanditServer server = io::load_server_state(is, &info);
      EXPECT_GT(server.num_shards(), 0u) << entry.path();
    }
    EXPECT_EQ(info.format, io::Format::kText) << entry.path();
    EXPECT_EQ(info.version, probe.version) << entry.path();
    EXPECT_FALSE(info.truncated) << entry.path();
  }
  EXPECT_GE(fixtures, 8u) << "text fixture corpus went missing";
}

// ---- binary <-> text bit-exactness --------------------------------------

TEST(StateIo, BinaryRoundTripIsBitExactPerPolicy) {
  const core::PolicyKind kinds[] = {core::PolicyKind::kEpsilonGreedy,
                                    core::PolicyKind::kLinUcb,
                                    core::PolicyKind::kThompson};
  for (const core::PolicyKind kind : kinds) {
    const core::BanditWare original = trained_instance(kind);
    const std::string text = save_as(original, io::Format::kText);
    const std::string binary = save_as(original, io::Format::kBinary);

    io::LoadInfo info;
    const core::BanditWare restored = load_bandit(binary, &info);
    EXPECT_EQ(info.format, io::Format::kBinary);
    EXPECT_FALSE(info.truncated);

    // The binary container stores raw IEEE-754 bits, so the restored model
    // re-saves to the *identical* text bytes — not merely close doubles.
    EXPECT_EQ(save_as(restored, io::Format::kText), text) << core::to_string(kind);
    // And its predictions are the same bit patterns.
    const core::FeatureVector x = {77.0, 5.0};
    EXPECT_EQ(restored.predictions(x), original.predictions(x));
    EXPECT_EQ(restored.epsilon(), original.epsilon());
  }
}

TEST(StateIo, BinarySaveLoadSaveIsByteIdentical) {
  const core::BanditWare bandit = trained_instance(core::PolicyKind::kLinUcb);
  const std::string binary = save_as(bandit, io::Format::kBinary);
  EXPECT_EQ(save_as(load_bandit(binary), io::Format::kBinary), binary);

  const serve::BanditServer server = trained_server(core::PolicyKind::kThompson);
  const std::string server_binary = save_as(server, io::Format::kBinary);
  EXPECT_EQ(save_as(load_server(server_binary), io::Format::kBinary), server_binary);
}

TEST(StateIo, ExactHistoryArmsRoundTripThroughBinary) {
  const core::BanditWare original =
      trained_instance(core::PolicyKind::kEpsilonGreedy, /*exact_history=*/true);
  const std::string binary = save_as(original, io::Format::kBinary);
  const core::BanditWare restored = load_bandit(binary);
  EXPECT_TRUE(restored.config().policy.exact_history);
  EXPECT_EQ(restored.num_observations(), original.num_observations());
  EXPECT_EQ(save_as(restored, io::Format::kText),
            save_as(original, io::Format::kText));
}

TEST(StateIo, ServerBinaryRoundTripMatchesTextPerPolicy) {
  const core::PolicyKind kinds[] = {core::PolicyKind::kEpsilonGreedy,
                                    core::PolicyKind::kLinUcb,
                                    core::PolicyKind::kThompson};
  for (const core::PolicyKind kind : kinds) {
    const serve::BanditServer original = trained_server(kind);
    const std::string text = save_as(original, io::Format::kText);
    io::LoadInfo info;
    serve::BanditServer restored =
        load_server(save_as(original, io::Format::kBinary), &info);
    EXPECT_FALSE(info.truncated);
    EXPECT_EQ(save_as(restored, io::Format::kText), text) << core::to_string(kind);
    EXPECT_EQ(restored.num_observations(), original.num_observations());
  }
}

TEST(StateIo, MismatchedPayloadKindsAreRejected) {
  const std::string bandit_binary =
      save_as(trained_instance(core::PolicyKind::kEpsilonGreedy), io::Format::kBinary);
  const std::string server_binary = save_as(trained_server(), io::Format::kBinary);
  std::ostringstream table_os(std::ios::binary);
  io::write_run_table(table_os, small_table(4));
  const std::string table_binary = table_os.str();

  EXPECT_THROW(load_bandit(server_binary), ParseError);
  EXPECT_THROW(load_bandit(table_binary), ParseError);
  EXPECT_THROW(load_server(bandit_binary), ParseError);
  EXPECT_THROW(load_server(table_binary), ParseError);
  std::istringstream not_a_table(bandit_binary, std::ios::binary);
  EXPECT_THROW(io::read_run_table(not_a_table), ParseError);
}

// ---- discount (lambda) supersets -----------------------------------------

/// One framed lambda extension packet (`type` 0x04 bandit / 0x13 server).
std::string lambda_packet(std::uint8_t type, double lambda) {
  std::string payload;
  io::put_f64(payload, lambda);
  std::ostringstream os(std::ios::binary);
  io::write_packet(os, type, payload);
  return os.str();
}

TEST(StateIo, DiscountedStateRoundTripsBothFormats) {
  // λ = 0.5 (exactly representable, prints without a decimal tail). The
  // text side is the v4 superset; the binary side carries the 0x04
  // extension packet. Both must round-trip bit-exact and agree.
  const core::PolicyKind kinds[] = {core::PolicyKind::kEpsilonGreedy,
                                    core::PolicyKind::kLinUcb,
                                    core::PolicyKind::kThompson};
  for (const core::PolicyKind kind : kinds) {
    const core::BanditWare original =
        trained_instance(kind, /*exact_history=*/false, /*forgetting=*/0.5);
    const std::string text = save_as(original, io::Format::kText);
    EXPECT_EQ(text.rfind("banditware-state v4\nlambda 0.5\n", 0), 0u)
        << core::to_string(kind);
    const std::string binary = save_as(original, io::Format::kBinary);

    io::LoadInfo info;
    const core::BanditWare from_text = load_bandit(text, &info);
    EXPECT_EQ(info.version, 4);
    EXPECT_EQ(from_text.config().policy.fit.forgetting, 0.5);
    EXPECT_EQ(save_as(from_text, io::Format::kText), text);

    const core::BanditWare from_binary = load_bandit(binary);
    EXPECT_EQ(from_binary.config().policy.fit.forgetting, 0.5);
    EXPECT_EQ(save_as(from_binary, io::Format::kBinary), binary);
    EXPECT_EQ(save_as(from_binary, io::Format::kText), text) << core::to_string(kind);
  }
}

TEST(StateIo, DiscountedServerRoundTripsBothFormats) {
  const serve::BanditServer original =
      trained_server(core::PolicyKind::kLinUcb, /*forgetting=*/0.5);
  const std::string text = save_as(original, io::Format::kText);
  EXPECT_EQ(text.rfind("banditserver-state v5\n", 0), 0u);
  EXPECT_NE(text.find(" lambda 0.5 "), std::string::npos);
  const std::string binary = save_as(original, io::Format::kBinary);

  io::LoadInfo info;
  const serve::BanditServer from_text = load_server(text, &info);
  EXPECT_EQ(info.version, 5);
  EXPECT_EQ(from_text.config().bandit.policy.fit.forgetting, 0.5);
  EXPECT_EQ(save_as(from_text, io::Format::kText), text);

  const serve::BanditServer from_binary = load_server(binary);
  EXPECT_EQ(from_binary.config().bandit.policy.fit.forgetting, 0.5);
  EXPECT_EQ(save_as(from_binary, io::Format::kBinary), binary);
  EXPECT_EQ(save_as(from_binary, io::Format::kText), text);
}

TEST(StateIo, StationarySnapshotsCarryNoLambdaAndLoadAsLambdaOne) {
  // λ = 1 must write the legacy formats byte-for-byte — no v4/v5 bump, no
  // extension packet — and every legacy snapshot loads as λ = 1.
  const core::BanditWare bandit = trained_instance(core::PolicyKind::kEpsilonGreedy);
  const std::string text = save_as(bandit, io::Format::kText);
  EXPECT_EQ(text.find("lambda"), std::string::npos);
  EXPECT_EQ(load_bandit(text).config().policy.fit.forgetting, 1.0);
  EXPECT_EQ(load_bandit(save_as(bandit, io::Format::kBinary))
                .config()
                .policy.fit.forgetting,
            1.0);

  const serve::BanditServer server = trained_server();
  EXPECT_EQ(save_as(server, io::Format::kText).find("lambda"), std::string::npos);
  EXPECT_EQ(load_server(save_as(server, io::Format::kBinary))
                .config()
                .bandit.policy.fit.forgetting,
            1.0);
}

TEST(StateIo, BinaryLambdaPacketBeforeHeaderAppliesToTheModel) {
  // The writer's contract (lambda packet between magic and header) from the
  // reader's side: splicing a 0x04 packet into a stationary blob's preamble
  // yields a discounted model.
  const std::string binary =
      save_as(trained_instance(core::PolicyKind::kEpsilonGreedy), io::Format::kBinary);
  const std::vector<std::size_t> ends = packet_ends(binary);
  const std::string spliced =
      binary.substr(0, ends[0]) + lambda_packet(0x04, 0.5) + binary.substr(ends[0]);
  EXPECT_EQ(load_bandit(spliced).config().policy.fit.forgetting, 0.5);
}

TEST(StateIo, HostileLambdaPacketsAreCleanParseErrors) {
  const std::string binary =
      save_as(trained_instance(core::PolicyKind::kEpsilonGreedy), io::Format::kBinary);
  const std::vector<std::size_t> ends = packet_ends(binary);
  const auto splice_at = [&](std::size_t pos, const std::string& packet) {
    return binary.substr(0, pos) + packet + binary.substr(pos);
  };

  // Out-of-range or non-finite discounts.
  for (const double bad : {1.5, 0.0, -0.25,
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    EXPECT_THROW(load_bandit(splice_at(ends[0], lambda_packet(0x04, bad))), ParseError)
        << bad;
  }
  // A lambda packet after the header came from no writer we ever shipped.
  EXPECT_THROW(load_bandit(splice_at(ends[1], lambda_packet(0x04, 0.5))), ParseError);
  // Two lambda packets are ambiguous.
  EXPECT_THROW(
      load_bandit(splice_at(ends[0], lambda_packet(0x04, 0.5) + lambda_packet(0x04, 0.5))),
      ParseError);
  // λ < 1 requires the incremental backend.
  const std::string exact_binary = save_as(
      trained_instance(core::PolicyKind::kEpsilonGreedy, /*exact_history=*/true),
      io::Format::kBinary);
  EXPECT_THROW(load_bandit(exact_binary.substr(0, ends[0]) + lambda_packet(0x04, 0.5) +
                           exact_binary.substr(ends[0])),
               ParseError);

  // Server side: a 0x13 header-lambda packet over stationary shard blobs is
  // a contradiction (every shard blob still says λ = 1).
  const std::string server_binary = save_as(trained_server(), io::Format::kBinary);
  const std::size_t preamble = sizeof(io::kMagic) + 1;
  EXPECT_THROW(load_server(server_binary.substr(0, preamble) +
                           lambda_packet(0x13, 0.5) + server_binary.substr(preamble)),
               ParseError);
}

// ---- truncation and corruption contracts --------------------------------

TEST(StateIo, TruncatedBinaryLoadsUpToLastCompletePacket) {
  const core::BanditWare original = trained_instance(core::PolicyKind::kEpsilonGreedy);
  const std::string binary = save_as(original, io::Format::kBinary);
  const std::vector<std::size_t> ends = packet_ends(binary);
  // header + 3 arm packets + end sentinel => 5 packets.
  ASSERT_EQ(ends.size(), 6u);
  const core::BanditWareStats full = original.export_stats();

  // Cut after the header packet: the shape survives, all arms at the prior.
  {
    io::LoadInfo info;
    const core::BanditWare loaded = load_bandit(binary.substr(0, ends[1]), &info);
    EXPECT_TRUE(info.truncated);
    EXPECT_EQ(loaded.num_arms(), original.num_arms());
    EXPECT_EQ(loaded.num_observations(), 0u);
    EXPECT_EQ(loaded.feature_names(), original.feature_names());
  }
  // Cut after header + first arm packet: arm 0 fully restored, bit-exact.
  {
    io::LoadInfo info;
    const core::BanditWare loaded = load_bandit(binary.substr(0, ends[2]), &info);
    EXPECT_TRUE(info.truncated);
    const core::BanditWareStats stats = loaded.export_stats();
    EXPECT_EQ(stats.arms[0].n, full.arms[0].n);
    EXPECT_EQ(stats.arms[0].theta, full.arms[0].theta);
    EXPECT_EQ(stats.arms[1].n, 0u);
    EXPECT_EQ(stats.arms[2].n, 0u);
  }
  // One byte short of complete: every arm made it, only the end sentinel
  // is torn — still flagged truncated (the writer never ends mid-stream).
  {
    io::LoadInfo info;
    const core::BanditWare loaded =
        load_bandit(binary.substr(0, binary.size() - 1), &info);
    EXPECT_TRUE(info.truncated);
    EXPECT_EQ(loaded.num_observations(), original.num_observations());
  }
  // The full blob is not truncated.
  {
    io::LoadInfo info;
    load_bandit(binary, &info);
    EXPECT_FALSE(info.truncated);
  }
  // Every possible cut point either loads (flagged truncated) or throws a
  // clean ParseError (cut before the header packet completed) — never
  // anything else. This is the exhaustive version of the pins above.
  for (std::size_t cut = 0; cut < binary.size(); ++cut) {
    try {
      io::LoadInfo info;
      load_bandit(binary.substr(0, cut), &info);
      EXPECT_TRUE(info.truncated) << "cut " << cut;
      EXPECT_GE(cut, ends[1]) << "loaded without a complete header, cut " << cut;
    } catch (const ParseError&) {
      EXPECT_LT(cut, ends[1]) << "complete header must load, cut " << cut;
    }
  }
}

TEST(StateIo, CorruptedChecksumStopsTheStreamAtTheCorruption) {
  const core::BanditWare original = trained_instance(core::PolicyKind::kEpsilonGreedy);
  const std::string binary = save_as(original, io::Format::kBinary);
  const std::vector<std::size_t> ends = packet_ends(binary);

  // Flip a payload byte inside the *second* arm packet: header and arm 0
  // load; arms 1 and 2 stop at the failed checksum.
  {
    std::string corrupted = binary;
    corrupted[ends[2] + 20] ^= 0x40;
    io::LoadInfo info;
    const core::BanditWare loaded = load_bandit(corrupted, &info);
    EXPECT_TRUE(info.truncated);
    const core::BanditWareStats stats = loaded.export_stats();
    EXPECT_EQ(stats.arms[0].n, original.export_stats().arms[0].n);
    EXPECT_EQ(stats.arms[1].n, 0u);
  }
  // Flip a byte inside the header payload: nothing before the corruption,
  // so the load fails with the documented ParseError.
  {
    std::string corrupted = binary;
    corrupted[ends[0] + 16] ^= 0x01;
    EXPECT_THROW(load_bandit(corrupted), ParseError);
  }
  // Torn server snapshot: cut after the first shard blob packet. The engine
  // keeps its shape; the missing shard restores as a fresh replica.
  {
    const serve::BanditServer server = trained_server();
    const std::string server_binary = save_as(server, io::Format::kBinary);
    const std::vector<std::size_t> server_ends = packet_ends(server_binary);
    io::LoadInfo info;
    serve::BanditServer loaded =
        load_server(server_binary.substr(0, server_ends[2]), &info);
    EXPECT_TRUE(info.truncated);
    EXPECT_EQ(loaded.num_shards(), server.num_shards());
    const std::vector<std::size_t> counts = loaded.shard_observation_counts();
    EXPECT_EQ(counts[0], server.shard_observation_counts()[0]);
    EXPECT_EQ(counts[1], 0u);
  }
}

TEST(StateIo, HostileBinaryCountsFailWithoutAllocating) {
  // Checksum-valid packets carrying hostile counts: each must be the
  // documented ParseError, never a resize() into bad_alloc. The payloads
  // are crafted with the real framing helpers so the CRC passes and the
  // semantic validators are what reject them.
  const std::vector<std::string> hostile = [] {
    std::vector<std::string> cases;
    {  // feature count far beyond kMaxFeatures
      std::string tail;
      io::put_u32(tail, 0xFFFFFFFFu);
      cases.push_back(crafted_bandit_container(tail));
    }
    {  // arm count far beyond kMaxArms
      std::string tail;
      io::put_u32(tail, 1);
      io::put_string(tail, "x");
      io::put_u32(tail, 999999999u);
      cases.push_back(crafted_bandit_container(tail));
    }
    {  // feature count claims more strings than the payload holds
      std::string tail;
      io::put_u32(tail, 400);
      io::put_string(tail, "x");
      cases.push_back(crafted_bandit_container(tail));
    }
    return cases;
  }();
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_THROW(load_bandit(hostile[i]), ParseError) << i;
  }

  // A frame whose length field exceeds the packet cap reads as corruption
  // of the frame itself — truncated stream, no header, clean ParseError.
  std::string huge_frame;
  {
    std::ostringstream os(std::ios::binary);
    io::write_container_magic(os, io::PayloadKind::kBanditWareState);
    huge_frame = os.str();
    io::put_u32(huge_frame, 0xFFFFFFF0u);  // payload_size
    io::put_u32(huge_frame, 0);            // crc
    huge_frame.append(4, '\0');            // type + reserved
  }
  EXPECT_THROW(load_bandit(huge_frame), ParseError);

  // An arm packet with an observation count beyond the ceiling.
  {
    const core::BanditWare bandit =
        trained_instance(core::PolicyKind::kEpsilonGreedy, /*exact_history=*/true);
    const std::string binary = save_as(bandit, io::Format::kBinary);
    const std::vector<std::size_t> ends = packet_ends(binary);
    std::string payload;
    io::put_u32(payload, 0);                          // arm index
    io::put_u64(payload, 200'000'000ull);             // n > kMaxObservationsPerArm
    std::ostringstream os(std::ios::binary);
    os.write(binary.data(), static_cast<std::streamsize>(ends[1]));  // preamble+header
    io::write_packet(os, 0x03, payload);
    EXPECT_THROW(load_bandit(os.str()), ParseError);
  }
}

// ---- run tables ----------------------------------------------------------

TEST(StateIo, RunTableStreamsRowsBitExact) {
  const core::RunTable table = small_table(10);
  std::ostringstream os(std::ios::binary);
  io::write_run_table(os, table);
  const std::string blob = os.str();

  std::istringstream is(blob, std::ios::binary);
  io::RunTableReader reader(is);
  EXPECT_EQ(reader.feature_names(), table.feature_names());
  EXPECT_EQ(reader.num_arms(), table.num_arms());

  std::vector<double> features;
  std::vector<double> runtimes;
  std::size_t row = 0;
  while (reader.next_row(features, runtimes)) {
    ASSERT_LT(row, table.num_groups());
    for (std::size_t f = 0; f < table.num_features(); ++f) {
      EXPECT_EQ(features[f], table.features()(row, f)) << row << "," << f;
    }
    for (std::size_t a = 0; a < table.num_arms(); ++a) {
      EXPECT_EQ(runtimes[a], table.runtime(row, static_cast<core::ArmIndex>(a)));
    }
    ++row;
  }
  EXPECT_EQ(row, table.num_groups());
  EXPECT_FALSE(reader.truncated());

  // Whole-table reader: identical matrices, identical catalog.
  std::istringstream is2(blob, std::ios::binary);
  io::LoadInfo info;
  const core::RunTable loaded = io::read_run_table(is2, &info);
  EXPECT_FALSE(info.truncated);
  EXPECT_EQ(loaded.features().data(), table.features().data());
  EXPECT_EQ(loaded.runtimes().data(), table.runtimes().data());
  EXPECT_EQ(loaded.catalog().to_string(), table.catalog().to_string());
}

TEST(StateIo, TruncatedRunTableKeepsEveryCompleteBlock) {
  // 4100 rows span two row blocks (4096 + 4). Cutting after the first
  // block must yield exactly the 4096 rows it holds, flagged truncated;
  // cutting inside the first block leaves zero rows — a ParseError for the
  // whole-table reader, which requires at least one row.
  const core::RunTable table = small_table(4100);
  std::ostringstream os(std::ios::binary);
  io::write_run_table(os, table);
  const std::string blob = os.str();
  const std::vector<std::size_t> ends = packet_ends(blob);
  ASSERT_EQ(ends.size(), 5u);  // header, block, block, end

  {
    std::istringstream is(blob.substr(0, ends[2]), std::ios::binary);
    io::LoadInfo info;
    const core::RunTable loaded = io::read_run_table(is, &info);
    EXPECT_TRUE(info.truncated);
    EXPECT_EQ(loaded.num_groups(), 4096u);
    EXPECT_EQ(loaded.features()(4095, 0), table.features()(4095, 0));
  }
  {
    std::istringstream is(blob.substr(0, ends[1] + 100), std::ios::binary);
    EXPECT_THROW(io::read_run_table(is), ParseError);
  }
  {  // streaming reader on the same torn stream: rows then truncated()
    std::istringstream is(blob.substr(0, ends[2]), std::ios::binary);
    io::RunTableReader reader(is);
    std::vector<double> features;
    std::vector<double> runtimes;
    std::size_t rows = 0;
    while (reader.next_row(features, runtimes)) ++rows;
    EXPECT_EQ(rows, 4096u);
    EXPECT_TRUE(reader.truncated());
  }
}

}  // namespace
}  // namespace bw
