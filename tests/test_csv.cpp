// Tests for CSV parsing and serialization (dataframe/csv).

#include "dataframe/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace bw::df {
namespace {

TEST(CsvRead, InfersTypesPerColumn) {
  const DataFrame frame = read_csv_string("id,runtime,app\n1,10.5,cycles\n2,20,bp3d\n");
  EXPECT_EQ(frame.column("id").type(), ColumnType::kInt64);
  EXPECT_EQ(frame.column("runtime").type(), ColumnType::kDouble);
  EXPECT_EQ(frame.column("app").type(), ColumnType::kString);
  EXPECT_EQ(frame.num_rows(), 2u);
}

TEST(CsvRead, MixedNumericFallsBackToString) {
  const DataFrame frame = read_csv_string("v\n1\nx\n");
  EXPECT_EQ(frame.column("v").type(), ColumnType::kString);
}

TEST(CsvRead, QuotedFieldsWithDelimitersAndNewlines) {
  const DataFrame frame = read_csv_string("a,b\n\"x,y\",\"line1\nline2\"\n");
  EXPECT_EQ(frame.column("a").strings()[0], "x,y");
  EXPECT_EQ(frame.column("b").strings()[0], "line1\nline2");
}

TEST(CsvRead, EscapedQuotes) {
  const DataFrame frame = read_csv_string("a\n\"he said \"\"hi\"\"\"\n");
  EXPECT_EQ(frame.column("a").strings()[0], "he said \"hi\"");
}

TEST(CsvRead, CrlfLineEndings) {
  const DataFrame frame = read_csv_string("a,b\r\n1,2\r\n3,4\r\n");
  EXPECT_EQ(frame.num_rows(), 2u);
  EXPECT_EQ(frame.column("b").ints()[1], 4);
}

TEST(CsvRead, MissingFinalNewlineIsFine) {
  const DataFrame frame = read_csv_string("a\n42");
  EXPECT_EQ(frame.num_rows(), 1u);
  EXPECT_EQ(frame.column("a").ints()[0], 42);
}

TEST(CsvRead, EmptyFieldsBecomeStrings) {
  const DataFrame frame = read_csv_string("a,b\n1,\n2,x\n");
  EXPECT_EQ(frame.column("b").type(), ColumnType::kString);
  EXPECT_EQ(frame.column("b").strings()[0], "");
}

TEST(CsvRead, HeaderOnlyGivesEmptyStringColumns) {
  const DataFrame frame = read_csv_string("a,b\n");
  EXPECT_EQ(frame.num_rows(), 0u);
  EXPECT_EQ(frame.num_cols(), 2u);
}

TEST(CsvRead, RaggedRowThrows) {
  EXPECT_THROW(read_csv_string("a,b\n1\n"), ParseError);
  EXPECT_THROW(read_csv_string("a,b\n1,2,3\n"), ParseError);
}

TEST(CsvRead, UnterminatedQuoteThrows) {
  EXPECT_THROW(read_csv_string("a\n\"oops\n"), ParseError);
}

TEST(CsvRead, EmptyDocumentThrows) {
  EXPECT_THROW(read_csv_string(""), ParseError);
}

TEST(CsvRead, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  const DataFrame frame = read_csv_string("a;b\n1;2\n", options);
  EXPECT_EQ(frame.column("b").ints()[0], 2);
}

TEST(CsvWrite, RoundTripPreservesValues) {
  DataFrame frame;
  frame.add_column("id", Column(std::vector<std::int64_t>{1, 2}));
  frame.add_column("x", Column(std::vector<double>{1.25, -3.5}));
  frame.add_column("s", Column(std::vector<std::string>{"plain", "with,comma"}));

  const DataFrame back = read_csv_string(write_csv_string(frame));
  EXPECT_EQ(back.column("id").ints(), frame.column("id").ints());
  EXPECT_EQ(back.column("x").doubles(), frame.column("x").doubles());
  EXPECT_EQ(back.column("s").strings(), frame.column("s").strings());
}

TEST(CsvWrite, RoundTripPreservesFullDoublePrecision) {
  DataFrame frame;
  frame.add_column("v", Column(std::vector<double>{1.0 / 3.0, 1e-17, 12345.678901234567}));
  const DataFrame back = read_csv_string(write_csv_string(frame));
  EXPECT_EQ(back.column("v").doubles(), frame.column("v").doubles());
}

TEST(CsvFile, WriteAndReadBack) {
  const auto path = std::filesystem::temp_directory_path() / "bw_csv_test.csv";
  DataFrame frame;
  frame.add_column("a", Column(std::vector<std::int64_t>{7}));
  write_csv_file(frame, path.string());
  const DataFrame back = read_csv_file(path.string());
  EXPECT_EQ(back.column("a").ints()[0], 7);
  std::filesystem::remove(path);
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"), ParseError);
}

}  // namespace
}  // namespace bw::df
