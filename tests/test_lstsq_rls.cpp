// Tests for least-squares fitting and recursive least squares
// (linalg/lstsq, linalg/rls) — the regression engine behind Algorithm 1.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/intercept.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/rls.hpp"

namespace bw::linalg {
namespace {

TEST(FitLinear, RecoversExactLine) {
  // y = 2x + 3, noiseless.
  Matrix x(4, 1);
  Vector y(4);
  for (std::size_t i = 0; i < 4; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = 2.0 * static_cast<double>(i) + 3.0;
  }
  const FitResult fit = fit_linear(x, y);
  EXPECT_NEAR(fit.model.weights[0], 2.0, 1e-10);
  EXPECT_NEAR(fit.model.bias, 3.0, 1e-10);
  EXPECT_NEAR(fit.train_rmse, 0.0, 1e-10);
  EXPECT_NEAR(fit.train_r_squared, 1.0, 1e-12);
}

TEST(FitLinear, NoInterceptOption) {
  Matrix x(3, 1);
  Vector y(3);
  for (std::size_t i = 0; i < 3; ++i) {
    x(i, 0) = static_cast<double>(i + 1);
    y[i] = 5.0 * x(i, 0);
  }
  FitOptions options;
  options.intercept = false;
  const FitResult fit = fit_linear(x, y, options);
  EXPECT_NEAR(fit.model.weights[0], 5.0, 1e-10);
  EXPECT_EQ(fit.model.bias, 0.0);
}

TEST(FitLinear, SingleObservationUsesRidgeFallback) {
  Matrix x(1, 2);
  x(0, 0) = 1.0;
  x(0, 1) = 2.0;
  const Vector y = {10.0};
  const FitResult fit = fit_linear(x, y);  // underdetermined
  // Prediction at the training point should be close to the target.
  EXPECT_NEAR(fit.model.predict(std::vector<double>{1.0, 2.0}), 10.0, 1e-3);
}

TEST(FitLinear, CollinearFeaturesHandledByFallback) {
  // Second feature is an exact copy of the first: rank deficient.
  Matrix x(5, 2);
  Vector y(5);
  for (std::size_t i = 0; i < 5; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = static_cast<double>(i);
    y[i] = 4.0 * static_cast<double>(i) + 1.0;
  }
  const FitResult fit = fit_linear(x, y);
  // Predictions remain correct even though individual weights are not
  // identifiable.
  EXPECT_NEAR(fit.model.predict(std::vector<double>{2.0, 2.0}), 9.0, 1e-4);
}

TEST(FitLinear, RidgeShrinksWeights) {
  bw::Rng rng(3);
  Matrix x(30, 2);
  Vector y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = 10.0 * x(i, 0) - 7.0 * x(i, 1);
  }
  FitOptions heavy;
  heavy.ridge = 1000.0;
  const double free_norm = norm2(fit_linear(x, y).model.weights);
  const double ridge_norm = norm2(fit_linear(x, y, heavy).model.weights);
  EXPECT_LT(ridge_norm, free_norm * 0.5);
}

TEST(FitLinear, RejectsBadInput) {
  Matrix x(2, 1);
  EXPECT_THROW(fit_linear(x, Vector{1.0}), InvalidArgument);          // size mismatch
  EXPECT_THROW(fit_linear(Matrix(0, 1), Vector{}), InvalidArgument);  // empty
  Matrix bad(1, 1);
  bad(0, 0) = std::nan("");
  EXPECT_THROW(fit_linear(bad, Vector{1.0}), InvalidArgument);  // non-finite
  Matrix ok(1, 1);
  EXPECT_THROW(fit_linear(ok, Vector{INFINITY}), InvalidArgument);
}

TEST(FitLinear1d, MatchesMatrixPath) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
  const FitResult fit = fit_linear_1d(x, y);
  EXPECT_NEAR(fit.model.weights[0], 2.0, 1e-10);
  EXPECT_NEAR(fit.model.bias, 1.0, 1e-10);
}

TEST(LinearModel, PredictRejectsWrongDimension) {
  LinearModel model;
  model.weights = {1.0, 2.0};
  EXPECT_THROW(model.predict(std::vector<double>{1.0}), InvalidArgument);
}

// Property: planted coefficients are recovered within noise tolerance.
struct PlantedCase {
  std::size_t dim;
  double noise;
};

class PlantedRecovery : public ::testing::TestWithParam<PlantedCase> {};

TEST_P(PlantedRecovery, RecoversCoefficients) {
  const auto [dim, noise] = GetParam();
  bw::Rng rng(dim * 1000 + static_cast<std::uint64_t>(noise * 100));
  Vector w_true(dim);
  for (auto& w : w_true) w = rng.uniform(-5.0, 5.0);
  const double b_true = rng.uniform(-10.0, 10.0);

  const std::size_t n = 400;
  Matrix x(n, dim);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double dot_val = b_true;
    for (std::size_t c = 0; c < dim; ++c) {
      x(i, c) = rng.uniform(-2.0, 2.0);
      dot_val += w_true[c] * x(i, c);
    }
    y[i] = dot_val + rng.normal(0.0, noise);
  }
  const FitResult fit = fit_linear(x, y);
  const double tolerance = 5.0 * noise / std::sqrt(static_cast<double>(n)) + 1e-8;
  for (std::size_t c = 0; c < dim; ++c) {
    EXPECT_NEAR(fit.model.weights[c], w_true[c], tolerance) << "weight " << c;
  }
  EXPECT_NEAR(fit.model.bias, b_true, 3.0 * tolerance);
}

INSTANTIATE_TEST_SUITE_P(DimsAndNoise, PlantedRecovery,
                         ::testing::Values(PlantedCase{1, 0.0}, PlantedCase{1, 0.5},
                                           PlantedCase{3, 0.0}, PlantedCase{3, 1.0},
                                           PlantedCase{7, 0.1}, PlantedCase{7, 2.0}));

// ---- RLS -----------------------------------------------------------------

TEST(Rls, StartsAtZeroPrediction) {
  RecursiveLeastSquares rls(2);
  EXPECT_EQ(rls.predict(std::vector<double>{1.0, 1.0}), 0.0);
  EXPECT_EQ(rls.n_observations(), 0u);
}

TEST(Rls, RequiresPositiveRidge) {
  EXPECT_THROW(RecursiveLeastSquares(2, 0.0), InvalidArgument);
}

TEST(Rls, LearnsExactLineQuickly) {
  RecursiveLeastSquares rls(1, 1e-8);
  for (int i = 0; i < 10; ++i) {
    const double x = static_cast<double>(i);
    rls.update(std::vector<double>{x}, 3.0 * x + 1.0);
  }
  EXPECT_NEAR(rls.weights()[0], 3.0, 1e-5);
  EXPECT_NEAR(rls.bias(), 1.0, 1e-4);
}

TEST(Rls, VarianceProxyShrinksWithData) {
  RecursiveLeastSquares rls(1, 1.0);
  const std::vector<double> x = {1.0};
  const double before = rls.variance_proxy(x);
  for (int i = 0; i < 20; ++i) rls.update(x, 2.0);
  EXPECT_LT(rls.variance_proxy(x), before * 0.1);
}

TEST(Rls, ResetRestoresPrior) {
  RecursiveLeastSquares rls(1, 1e-3);
  rls.update(std::vector<double>{1.0}, 5.0);
  rls.reset();
  EXPECT_EQ(rls.n_observations(), 0u);
  EXPECT_EQ(rls.predict(std::vector<double>{1.0}), 0.0);
}

TEST(Rls, RejectsBadFeatures) {
  RecursiveLeastSquares rls(2);
  EXPECT_THROW(rls.update(std::vector<double>{1.0}, 1.0), InvalidArgument);
  EXPECT_THROW(rls.update(std::vector<double>{1.0, std::nan("")}, 1.0), InvalidArgument);
}

// Property: RLS equals batch ridge regression on the same stream.
class RlsEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RlsEquivalence, MatchesBatchRidge) {
  bw::Rng rng(static_cast<std::uint64_t>(GetParam()) + 7);
  const std::size_t dim = 1 + GetParam() % 4;
  const double ridge = 1e-4;
  RecursiveLeastSquares rls(dim, ridge);

  const std::size_t n = 40;
  Matrix x(n, dim);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> xi(dim);
    for (std::size_t c = 0; c < dim; ++c) {
      xi[c] = rng.uniform(-3.0, 3.0);
      x(i, c) = xi[c];
    }
    y[i] = rng.uniform(-5.0, 5.0);
    rls.update(xi, y[i]);
  }

  FitOptions options;
  options.ridge = ridge;
  const FitResult batch = fit_linear(x, y, options);
  for (std::size_t c = 0; c < dim; ++c) {
    EXPECT_NEAR(rls.weights()[c], batch.model.weights[c], 1e-6) << "weight " << c;
  }
  EXPECT_NEAR(rls.bias(), batch.model.bias, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Streams, RlsEquivalence, ::testing::Range(0, 8));

TEST(Rls, RejectsBadForgetting) {
  EXPECT_THROW(RecursiveLeastSquares(2, 1e-6, 0.0), InvalidArgument);
  EXPECT_THROW(RecursiveLeastSquares(2, 1e-6, -0.5), InvalidArgument);
  EXPECT_THROW(RecursiveLeastSquares(2, 1e-6, 1.5), InvalidArgument);
  EXPECT_THROW(RecursiveLeastSquares(2, 1e-6, std::nan("")), InvalidArgument);
}

TEST(Rls, ForgettingOneIsBitIdenticalToDefault) {
  bw::Rng rng(13);
  RecursiveLeastSquares plain(3, 1e-6);
  RecursiveLeastSquares explicit_one(3, 1e-6, 1.0);
  for (int i = 0; i < 60; ++i) {
    const std::vector<double> x = {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0),
                                   rng.uniform(-2.0, 2.0)};
    const double y = rng.uniform(-5.0, 5.0);
    plain.update(x, y);
    explicit_one.update(x, y);
  }
  // Bit-identical, not merely close: λ = 1 must take the pre-λ code path.
  EXPECT_EQ(plain.theta(), explicit_one.theta());
  EXPECT_EQ(plain.precision_inverse().data(), explicit_one.precision_inverse().data());
}

// Discounted RLS against its definition: θ solves the geometrically
// weighted normal equations (λ^n ridge I + Σ λ^{n-i} x̃ᵢx̃ᵢᵀ) θ = Σ λ^{n-i} yᵢx̃ᵢ.
TEST(Rls, DiscountedMatchesWeightedNormalEquations) {
  const double lambda = 0.9;
  const double ridge = 1e-4;
  const std::size_t dim = 2;
  const std::size_t n = 30;
  bw::Rng rng(31);
  RecursiveLeastSquares rls(dim, ridge, lambda);

  Matrix a(dim + 1, dim + 1);
  Vector b(dim + 1, 0.0);
  for (std::size_t i = 0; i < dim + 1; ++i) a(i, i) = ridge;
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<double> x = {rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
    const double y = rng.uniform(-5.0, 5.0);
    rls.update(x, y);
    const Vector xa = with_intercept(x);
    for (auto& v : a.data()) v *= lambda;
    for (auto& v : b) v *= lambda;
    for (std::size_t r = 0; r < xa.size(); ++r) {
      for (std::size_t c = 0; c < xa.size(); ++c) a(r, c) += xa[r] * xa[c];
      b[r] += y * xa[r];
    }
  }
  const Vector theta = invert_spd(a) * b;
  for (std::size_t c = 0; c < dim + 1; ++c) {
    EXPECT_NEAR(rls.theta()[c], theta[c], 1e-8) << "theta " << c;
  }
}

TEST(Rls, DiscountedTracksTargetShift) {
  const std::size_t dim = 1;
  RecursiveLeastSquares discounted(dim, 1e-8, 0.9);
  RecursiveLeastSquares undiscounted(dim, 1e-8, 1.0);
  bw::Rng rng(41);
  auto feed = [&](double slope, int count) {
    for (int i = 0; i < count; ++i) {
      const std::vector<double> x = {rng.uniform(-2.0, 2.0)};
      discounted.update(x, slope * x[0]);
      undiscounted.update(x, slope * x[0]);
    }
  };
  feed(3.0, 400);   // long stationary prefix
  feed(-5.0, 60);   // regime change: slope flips
  // λ = 0.9 (effective window ~10) has converged to the new slope; λ = 1
  // is still dominated by the 400 old observations.
  EXPECT_NEAR(discounted.weights()[0], -5.0, 0.05);
  EXPECT_GT(std::abs(undiscounted.weights()[0] - (-5.0)), 1.0);
}

// Regression pin: the discounted downdate must keep P exactly symmetric.
// An FP-asymmetric rank-one downdate (dividing the gain into one factor
// before the outer product) seeds a ~1e-16 asymmetry that the symmetric
// downdate never contracts; the 1/λ rescale then amplifies it by λ^-n
// until P — and θ — diverge after a few thousand updates.
TEST(Rls, DiscountedPrecisionStaysExactlySymmetric) {
  const std::size_t dim = 3;
  RecursiveLeastSquares rls(dim, 1e-8, 0.98);
  bw::Rng rng(53);
  for (int i = 0; i < 4000; ++i) {
    const std::vector<double> x = {rng.uniform(1.0, 10.0), rng.uniform(1.0, 10.0),
                                   rng.uniform(1.0, 10.0)};
    // Regime change halfway through: the old windup bug needed a large
    // error signal to surface in θ, not just in P.
    const double y = i < 2000 ? x[0] + 2.0 * x[1] : 10.0 * x[0] - x[2];
    rls.update(x, y);
  }
  const Matrix& p = rls.precision_inverse();
  for (std::size_t r = 0; r < p.rows(); ++r) {
    for (std::size_t c = 0; c < r; ++c) {
      EXPECT_EQ(p(r, c), p(c, r)) << "P asymmetric at (" << r << "," << c << ")";
    }
  }
  // And θ has tracked the shifted target instead of diverging.
  const std::vector<double> probe = {5.0, 5.0, 5.0};
  EXPECT_NEAR(rls.predict(probe), 10.0 * 5.0 - 5.0, 1e-3);
}

TEST(Rls, RestoreRoundTripsSufficientStatistics) {
  bw::Rng rng(21);
  RecursiveLeastSquares original(3, 1e-6);
  auto feed = [&rng](RecursiveLeastSquares& rls, int count) {
    for (int i = 0; i < count; ++i) {
      std::vector<double> x = {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0),
                               rng.uniform(-2.0, 2.0)};
      rls.update(x, rng.uniform(-5.0, 5.0));
    }
  };
  feed(original, 25);

  RecursiveLeastSquares restored(3, 1e-6);
  restored.restore(original.precision_inverse(), original.theta(),
                   original.n_observations());
  EXPECT_EQ(restored.n_observations(), 25u);
  // Restored state is bit-identical, so future updates stay in lockstep.
  const std::vector<double> probe = {0.5, -1.0, 2.0};
  EXPECT_EQ(restored.predict(probe), original.predict(probe));
  original.update(probe, 3.0);
  restored.update(probe, 3.0);
  EXPECT_EQ(restored.predict(probe), original.predict(probe));
  EXPECT_EQ(restored.theta(), original.theta());
}

TEST(Rls, RestoreRejectsBadShapes) {
  RecursiveLeastSquares rls(2);
  EXPECT_THROW(rls.restore(Matrix(2, 2), Vector(3, 0.0), 1), InvalidArgument);
  EXPECT_THROW(rls.restore(Matrix(3, 3), Vector(2, 0.0), 1), InvalidArgument);
  Matrix bad(3, 3);
  bad(0, 0) = std::nan("");
  EXPECT_THROW(rls.restore(bad, Vector(3, 0.0), 1), InvalidArgument);
}

// The shared [x; 1] helper is the single definition of the intercept
// layout; both the batch fitter and the recursive updater build on it.
TEST(Intercept, VectorAndMatrixFormsAgree) {
  const std::vector<double> x = {3.0, -1.5};
  const Vector xa = with_intercept(x);
  ASSERT_EQ(xa.size(), 3u);
  EXPECT_EQ(xa[0], 3.0);
  EXPECT_EQ(xa[1], -1.5);
  EXPECT_EQ(xa[2], 1.0);

  Vector reused = {9.0, 9.0, 9.0, 9.0};  // shrinks and overwrites
  with_intercept_into(x, reused);
  EXPECT_EQ(reused, xa);

  Matrix m(2, 2);
  m(0, 0) = 3.0;
  m(0, 1) = -1.5;
  m(1, 0) = 7.0;
  m(1, 1) = 0.25;
  const Matrix augmented = with_intercept_column(m);
  ASSERT_EQ(augmented.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(augmented(r, 0), m(r, 0));
    EXPECT_EQ(augmented(r, 1), m(r, 1));
    EXPECT_EQ(augmented(r, 2), 1.0);
  }
}

}  // namespace
}  // namespace bw::linalg
