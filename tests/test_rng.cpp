// Tests for the deterministic RNG substrate (common/rng).

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"

namespace bw {
namespace {

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64_next(state);
  const std::uint64_t second = splitmix64_next(state);
  // Reference values of splitmix64 seeded with 0.
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ULL);
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(123);
  Xoshiro256 b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, JumpDecorrelates) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 9.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 9.25);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(1.0, 0.0), InvalidArgument);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(7);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(8);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.08);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(12);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
  EXPECT_THROW(rng.exponential(-1.0), InvalidArgument);
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(14);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(15);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 20u);
  for (std::size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(16);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(17);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), InvalidArgument);
}

TEST(Rng, ChildSeedsAreDistinctAndStable) {
  Rng rng(42);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(rng.child_seed(i));
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_EQ(Rng(42).child_seed(3), rng.child_seed(3));
}

TEST(Rng, ChildStreamsDecorrelated) {
  Rng parent(99);
  Rng child_a(parent.child_seed(0));
  Rng child_b(parent.child_seed(1));
  // Crude decorrelation check: sign agreement near 50%.
  int agree = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) agree += ((child_a.uniform() < 0.5) == (child_b.uniform() < 0.5));
  EXPECT_NEAR(static_cast<double>(agree) / n, 0.5, 0.03);
}

// Property: every distribution is reproducible for any seed.
class RngSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedProperty, StreamsAreReproducible) {
  Rng a(GetParam());
  Rng b(GetParam());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.normal(), b.normal());
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    EXPECT_EQ(a.exponential(2.0), b.exponential(2.0));
  }
}

TEST_P(RngSeedProperty, PermutationReproducible) {
  Rng a(GetParam());
  Rng b(GetParam());
  EXPECT_EQ(a.permutation(64), b.permutation(64));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedProperty,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace bw
