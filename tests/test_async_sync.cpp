// Deterministic tests for the async cross-shard sync pipeline: the
// schedule harness (sched_harness.hpp) replays seeded interleavings of
// recommend/observe/sync-phase/snapshot ops on a virtual clock, so every
// assertion here is reproducible bit-for-bit from the seed — no real
// threads, no timing dependence. Directed tests cover the generation
// algebra: late-arriving observations re-folded at publish, stale rounds
// abandoned after an inline sync wins the race, snapshots capturing a
// consistent generation mid-round.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "hardware/catalog.hpp"
#include "sched_harness.hpp"
#include "serve/bandit_server.hpp"

namespace bw::serve {
namespace {

using testing::ScheduleDriver;
using testing::ScheduleResult;
using testing::ScheduleWeights;

core::FeatureVector features_for(double num_tasks) { return {num_tasks}; }

BanditServerConfig async_config(std::size_t shards, std::uint64_t seed = 7) {
  BanditServerConfig config;
  config.num_shards = shards;
  config.sharding = ShardingPolicy::kRoundRobin;
  config.sync_mode = SyncMode::kAsync;
  config.seed = seed;
  return config;
}

BanditServerConfig async_policy_config(std::size_t shards, core::PolicyKind kind) {
  BanditServerConfig config = async_config(shards);
  config.bandit.policy_kind = kind;
  return config;
}

ScheduleDriver make_driver(std::size_t shards, ScheduleWeights weights,
                           std::size_t ticks = 400, std::size_t batch = 8) {
  return ScheduleDriver(async_config(shards), hw::ndp_catalog(), batch, ticks,
                        weights);
}

constexpr std::uint64_t kSeeds[] = {11, 23, 47};  // >= 3 distinct seeds (CI)

TEST(AsyncSyncSchedule, SameSeedAndScheduleIsByteIdentical) {
  // The acceptance bar: same seed + schedule => identical decision trace
  // and byte-identical final server snapshot, across >= 3 distinct seeds.
  const ScheduleDriver driver = make_driver(4, ScheduleWeights{8, 4, 1, 1});
  for (const std::uint64_t seed : kSeeds) {
    const ScheduleResult a = driver.run(seed);
    const ScheduleResult b = driver.run(seed);
    EXPECT_EQ(a.decisions, b.decisions) << "seed=" << seed;
    EXPECT_EQ(a.final_state, b.final_state) << "seed=" << seed;
    EXPECT_EQ(a.syncs, b.syncs) << "seed=" << seed;
    EXPECT_EQ(a.abandoned_rounds, b.abandoned_rounds) << "seed=" << seed;
    EXPECT_GT(a.decisions.size(), 0u);
  }
}

TEST(AsyncSyncSchedule, LinUcbScheduleIsDeterministicAndBalanced) {
  // The policy axis must not disturb the harness's reproducibility bar:
  // a LinUCB-driven fleet (deterministic optimism instead of the ε-coin)
  // replays byte-identically from the seed, and whatever the interleaving
  // the books balance after quiesce.
  const ScheduleDriver driver(async_policy_config(4, core::PolicyKind::kLinUcb),
                              hw::ndp_catalog(), 8, 400, ScheduleWeights{8, 4, 1, 1});
  for (const std::uint64_t seed : kSeeds) {
    const ScheduleResult a = driver.run(seed);
    const ScheduleResult b = driver.run(seed);
    EXPECT_EQ(a.decisions, b.decisions) << "seed=" << seed;
    EXPECT_EQ(a.final_state, b.final_state) << "seed=" << seed;
    EXPECT_EQ(a.observations, a.observations_fed) << "seed=" << seed;
    EXPECT_EQ(a.inconsistent_snapshots, 0u) << "seed=" << seed;
    EXPECT_GT(a.decisions.size(), 0u);
    // The v4 snapshot must carry the policy token end-to-end.
    EXPECT_EQ(a.final_state.rfind("banditserver-state v4\n", 0), 0u);
    EXPECT_NE(a.final_state.find("policy linucb"), std::string::npos);
  }
}

TEST(AsyncSyncSchedule, ThompsonScheduleIsDeterministicAndBalanced) {
  // Same bar for Thompson: its exploration consumes the per-shard RNG
  // (posterior draws), which the virtual-clock schedule serializes — same
  // seed + schedule must still replay bit-for-bit.
  const ScheduleDriver driver(async_policy_config(4, core::PolicyKind::kThompson),
                              hw::ndp_catalog(), 8, 400, ScheduleWeights{8, 4, 1, 1});
  for (const std::uint64_t seed : kSeeds) {
    const ScheduleResult a = driver.run(seed);
    const ScheduleResult b = driver.run(seed);
    EXPECT_EQ(a.decisions, b.decisions) << "seed=" << seed;
    EXPECT_EQ(a.final_state, b.final_state) << "seed=" << seed;
    EXPECT_EQ(a.observations, a.observations_fed) << "seed=" << seed;
    EXPECT_EQ(a.inconsistent_snapshots, 0u) << "seed=" << seed;
    EXPECT_GT(a.decisions.size(), 0u);
    EXPECT_EQ(a.final_state.rfind("banditserver-state v4\n", 0), 0u);
    EXPECT_NE(a.final_state.find("policy thompson"), std::string::npos);
  }
}

TEST(AsyncSyncSchedule, DiscountedScheduleIsDeterministicAndBalanced) {
  // λ < 1 through the full async machinery — staged rounds, late refolds,
  // inline-sync races — must keep the harness's bars: byte-identical replay
  // from the seed, every observation accounted for, no inconsistent cuts.
  BanditServerConfig config = async_config(4);
  config.bandit.policy.fit.forgetting = 0.97;
  const ScheduleDriver driver(config, hw::ndp_catalog(), 8, 400,
                              ScheduleWeights{8, 4, 1, 1});
  for (const std::uint64_t seed : kSeeds) {
    const ScheduleResult a = driver.run(seed);
    const ScheduleResult b = driver.run(seed);
    EXPECT_EQ(a.decisions, b.decisions) << "seed=" << seed;
    EXPECT_EQ(a.final_state, b.final_state) << "seed=" << seed;
    EXPECT_EQ(a.observations, a.observations_fed) << "seed=" << seed;
    EXPECT_EQ(a.inconsistent_snapshots, 0u) << "seed=" << seed;
    EXPECT_GT(a.decisions.size(), 0u);
    // Discounted state rides the v5 header with its lambda token.
    EXPECT_EQ(a.final_state.rfind("banditserver-state v5\n", 0), 0u);
    EXPECT_NE(a.final_state.find(" lambda 0.9"), std::string::npos);
  }
}

TEST(AsyncSyncSchedule, DifferentSeedsExploreDifferentInterleavings) {
  // Sanity check that the harness actually varies the schedule: distinct
  // seeds must not all collapse onto one trace.
  const ScheduleDriver driver = make_driver(4, ScheduleWeights{8, 4, 1, 1});
  const ScheduleResult a = driver.run(kSeeds[0]);
  const ScheduleResult b = driver.run(kSeeds[1]);
  EXPECT_NE(a.final_state, b.final_state);
}

TEST(AsyncSyncSchedule, NoObservationLostOrDoubleCountedAcrossGenerations) {
  // Whatever the interleaving — rounds publishing mid-stream, rounds
  // abandoned by inline syncs, snapshots cutting between phases — after
  // quiesce the engine must account for exactly the observations fed in.
  for (const std::uint64_t seed : kSeeds) {
    for (const auto& weights :
         {ScheduleWeights{8, 4, 0, 1}, ScheduleWeights{8, 4, 2, 1},
          ScheduleWeights{4, 8, 1, 0}}) {
      const ScheduleResult result = make_driver(4, weights).run(seed);
      EXPECT_EQ(result.observations, result.observations_fed)
          << "seed=" << seed << " serve=" << weights.serve
          << " fuser=" << weights.fuser_step << " inline=" << weights.inline_sync;
      EXPECT_EQ(result.inconsistent_snapshots, 0u);
    }
  }
}

TEST(AsyncSyncSchedule, InlineSyncRacesAbandonStaleRoundsSafely) {
  // With an aggressive inline-sync antagonist the generation check must
  // abandon staged rounds (this schedule is chosen to hit that path) and
  // the books must still balance.
  const ScheduleDriver driver = make_driver(4, ScheduleWeights{6, 6, 4, 1});
  std::size_t abandoned_total = 0;
  for (const std::uint64_t seed : kSeeds) {
    const ScheduleResult result = driver.run(seed);
    abandoned_total += result.abandoned_rounds;
    EXPECT_EQ(result.observations, result.observations_fed) << "seed=" << seed;
  }
  // At least one schedule must actually exercise the abandon path, or this
  // test is vacuous.
  EXPECT_GT(abandoned_total, 0u);
}

TEST(AsyncSyncSchedule, AsyncRegretConvergesLikeInlineSync) {
  // The statistical acceptance bar: with a schedule where the fuser keeps
  // pace (~one full round per serve batch, the cadence ROADMAP
  // recommends), the async path must land at the same regret ratio as
  // inline sync — within 1.1x of it — both in total (exploration included)
  // and on greedy decisions alone (pure learned-model quality; the
  // long-stream <= 1.1x-of-1-shard gate runs in the CI perf-smoke bench).
  for (const std::uint64_t seed : kSeeds) {
    // Baseline: one shard, no fusion actors at all (same served volume).
    const ScheduleResult single =
        make_driver(1, ScheduleWeights{1, 0, 0, 0}, 300).run(seed);
    // Inline: every fusion op is a stop-the-world sync.
    const ScheduleResult inline_sync =
        make_driver(4, ScheduleWeights{1, 0, 3, 0}, 1200).run(seed);
    // Async: three pipeline phases ~ one full round per serve batch.
    const ScheduleResult async_sync =
        make_driver(4, ScheduleWeights{1, 3, 0, 0}, 1200).run(seed);
    ASSERT_GT(single.mean_regret, 0.0);
    const double async_ratio = async_sync.mean_regret / single.mean_regret;
    const double inline_ratio = inline_sync.mean_regret / single.mean_regret;
    EXPECT_LE(async_ratio, 1.1 * inline_ratio) << "seed=" << seed;
    EXPECT_LE(async_sync.greedy_regret, 1.1 * inline_sync.greedy_regret + 1e-12)
        << "seed=" << seed;
    // In this synthetic world one arm dominates everywhere, so a converged
    // model must make every greedy decision optimally — staleness from the
    // async pipeline must not change that.
    EXPECT_LE(async_sync.greedy_regret, single.greedy_regret + 1e-12)
        << "seed=" << seed;
  }
}

TEST(AsyncSyncSchedule, QuiescedAsyncMatchesSingleStreamExactly) {
  // After quiesce (drain + final sync) the fused model must equal a single
  // facade that saw the whole stream — the async path is the same exact
  // algebra as inline, just pipelined. All three policies sit on the same
  // information-form statistics, so the 1e-9 bar holds for each.
  for (const core::PolicyKind kind :
       {core::PolicyKind::kEpsilonGreedy, core::PolicyKind::kLinUcb,
        core::PolicyKind::kThompson}) {
    BanditServerConfig config = async_config(4);
    config.bandit.policy_kind = kind;
    config.bandit.policy.fit.ridge = 1e-6;
    BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
    const hw::HardwareCatalog catalog = hw::ndp_catalog();
    core::BanditWare reference(catalog, {"num_tasks"}, config.bandit);

    int phase = 0;
    for (int i = 0; i < 240; ++i) {
      const double tasks = 20.0 + 9.0 * (i % 41);
      const auto x = features_for(tasks);
      const auto arm = static_cast<core::ArmIndex>(i % 3);
      const double runtime = ScheduleDriver::synthetic_runtime(catalog[arm], tasks);
      server.observe_one({static_cast<std::size_t>(i % 4), arm, x, runtime});
      reference.observe(arm, x, runtime);
      if (i % 7 == 6) {
        // Interleave pipeline phases with the stream: one phase per 7 obs.
        switch (phase % 3) {
          case 0:
            server.sync_stage();
            break;
          case 1:
            server.sync_fuse();
            break;
          case 2:
            server.sync_publish();
            break;
        }
        ++phase;
      }
    }
    // Finish the in-flight round, then fold the remaining deltas.
    while (phase % 3 != 0) {
      if (phase % 3 == 1) server.sync_fuse();
      if (phase % 3 == 2) server.sync_publish();
      ++phase;
    }
    server.sync_shards();

    EXPECT_EQ(server.num_observations(), 240u) << core::to_string(kind);
    for (double tasks : {33.0, 150.0, 371.0}) {
      const auto x = features_for(tasks);
      const auto want = reference.predictions(x);
      for (std::size_t s = 0; s < server.num_shards(); ++s) {
        const auto got = server.predictions(s, x);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t arm = 0; arm < want.size(); ++arm) {
          EXPECT_NEAR(got[arm], want[arm], 1e-9)
              << core::to_string(kind) << " shard=" << s << " arm=" << arm;
        }
      }
    }
  }
}

TEST(AsyncSyncPipeline, DiscountedRoundMatchesCanonicalShardOrder) {
  // Under λ < 1 observation order matters, so "the model that saw the whole
  // stream" must be pinned, not assumed: the generation algebra defines the
  // fused estimator as one facade that saw the base stream, then each
  // shard's new slice in shard index order (sync_fuse folds staged
  // snapshots against the round's base in that order). Observations arrive
  // temporally interleaved across shards — exactly the case where the
  // canonical order differs from arrival order — and the 1e-9 bound must
  // still hold for every policy, across two full pipeline rounds.
  for (const core::PolicyKind kind :
       {core::PolicyKind::kEpsilonGreedy, core::PolicyKind::kLinUcb,
        core::PolicyKind::kThompson}) {
    BanditServerConfig config = async_config(2);
    config.bandit.policy_kind = kind;
    config.bandit.policy.fit.ridge = 1e-6;
    config.bandit.policy.fit.forgetting = 0.97;
    BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
    const hw::HardwareCatalog catalog = hw::ndp_catalog();
    core::BanditWare reference(catalog, {"num_tasks"}, config.bandit);

    int i = 0;
    for (int round = 0; round < 2; ++round) {
      std::vector<std::vector<std::pair<core::ArmIndex, double>>> slices(2);
      for (int k = 0; k < 36; ++k) {
        const std::size_t shard = static_cast<std::size_t>(k % 2);
        const double tasks = 20.0 + 9.0 * (i % 41);
        const auto arm = static_cast<core::ArmIndex>(i % 3);
        server.observe_one({shard, arm, features_for(tasks),
                            ScheduleDriver::synthetic_runtime(catalog[arm], tasks)});
        slices[shard].emplace_back(arm, tasks);
        ++i;
      }
      ASSERT_TRUE(server.sync_stage());
      server.sync_fuse();
      ASSERT_TRUE(server.sync_publish());
      for (const auto& slice : slices) {  // canonical: shard index order
        for (const auto& [arm, tasks] : slice) {
          reference.observe(arm, features_for(tasks),
                            ScheduleDriver::synthetic_runtime(catalog[arm], tasks));
        }
      }
    }

    EXPECT_EQ(server.num_observations(), 72u) << core::to_string(kind);
    for (double tasks : {33.0, 150.0, 371.0}) {
      const auto x = features_for(tasks);
      const auto want = reference.predictions(x);
      for (std::size_t s = 0; s < server.num_shards(); ++s) {
        const auto got = server.predictions(s, x);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t arm = 0; arm < want.size(); ++arm) {
          EXPECT_NEAR(got[arm], want[arm], 1e-9)
              << core::to_string(kind) << " shard=" << s << " arm=" << arm;
        }
      }
    }
  }
}

TEST(AsyncSyncPipeline, LateObservationsAreRefoldedAtPublish) {
  // Observations landing between stage and publish belong to no staged
  // snapshot; publish must fold them into the new generation, not lose
  // them to the swap.
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, async_config(2));
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  auto feed = [&](std::size_t shard, double tasks) {
    server.observe_one({shard, 0, features_for(tasks),
                        ScheduleDriver::synthetic_runtime(catalog[0], tasks)});
  };
  feed(0, 100.0);
  feed(1, 200.0);
  ASSERT_TRUE(server.sync_stage());
  // Late arrivals: after the stage snapshot, before publish.
  feed(0, 300.0);
  feed(1, 400.0);
  server.sync_fuse();
  ASSERT_TRUE(server.sync_publish());
  EXPECT_EQ(server.generation(), 1u);
  // 2 staged + 2 late: all four must be accounted for...
  EXPECT_EQ(server.num_observations(), 4u);
  // ...and a follow-up round must not double-count the late ones.
  ASSERT_TRUE(server.sync_stage());
  server.sync_fuse();
  ASSERT_TRUE(server.sync_publish());
  EXPECT_EQ(server.num_observations(), 4u);
  // Both shards now carry the full fused stream.
  const auto x = features_for(250.0);
  EXPECT_EQ(server.predictions(0, x), server.predictions(1, x));
}

TEST(AsyncSyncPipeline, StaleGenerationRoundIsAbandoned) {
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, async_config(2));
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  server.observe_one({0, 0, features_for(100.0),
                      ScheduleDriver::synthetic_runtime(catalog[0], 100.0)});
  server.observe_one({1, 1, features_for(150.0),
                      ScheduleDriver::synthetic_runtime(catalog[1], 150.0)});
  ASSERT_TRUE(server.sync_stage());
  server.sync_fuse();
  // An inline sync wins the race: the generation moves under the round.
  server.sync_shards();
  EXPECT_EQ(server.generation(), 1u);
  // The staged round must abandon (publishing would double-count what the
  // inline sync already folded).
  EXPECT_FALSE(server.sync_publish());
  EXPECT_EQ(server.generation(), 1u);
  EXPECT_EQ(server.num_observations(), 2u);
  // The next round proceeds normally.
  ASSERT_TRUE(server.sync_stage());
  server.sync_fuse();
  EXPECT_TRUE(server.sync_publish());
  EXPECT_EQ(server.num_observations(), 2u);
}

TEST(AsyncSyncPipeline, SnapshotMidRoundCapturesConsistentGeneration) {
  // A snapshot between any two pipeline phases must be a loadable,
  // byte-stable cut whose books balance — staged-but-unpublished rounds
  // are not durable state (their evidence lives in the shard models, which
  // are serialized).
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, async_config(3));
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  for (int i = 0; i < 30; ++i) {
    const double tasks = 40.0 + 13.0 * i;
    const auto arm = static_cast<core::ArmIndex>(i % 3);
    server.observe_one({static_cast<std::size_t>(i % 3), arm, features_for(tasks),
                        ScheduleDriver::synthetic_runtime(catalog[arm], tasks)});
  }
  auto verify_cut = [&server](const char* where) {
    const std::string saved = server.save_state();
    BanditServer restored = BanditServer::load_state(saved);
    EXPECT_EQ(restored.save_state(), saved) << where;
    EXPECT_EQ(restored.num_observations(), server.num_observations()) << where;
  };
  verify_cut("before stage");
  ASSERT_TRUE(server.sync_stage());
  verify_cut("after stage");
  server.sync_fuse();
  verify_cut("after fuse");
  ASSERT_TRUE(server.sync_publish());
  verify_cut("after publish");
}

TEST(AsyncSyncPipeline, SingleShardHasNothingToStage) {
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, async_config(1));
  EXPECT_FALSE(server.sync_stage());
  EXPECT_THROW(server.sync_fuse(), InvalidArgument);  // nothing staged
  server.request_sync();  // no-op, must not spawn a fuser or sync
  server.drain_sync();
  EXPECT_EQ(server.sync_count(), 0u);
  EXPECT_EQ(server.generation(), 0u);
}

TEST(AsyncSyncPipeline, RequestSyncAndDrainPublishViaBackgroundFuser) {
  // The real background-thread path: request_sync wakes the fuser,
  // drain_sync waits for the round, and the fused result matches what the
  // stepwise pipeline produces.
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, async_config(2));
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  for (int i = 0; i < 20; ++i) {
    const double tasks = 30.0 + 7.0 * i;
    const auto arm = static_cast<core::ArmIndex>(i % 3);
    server.observe_one({static_cast<std::size_t>(i % 2), arm, features_for(tasks),
                        ScheduleDriver::synthetic_runtime(catalog[arm], tasks)});
  }
  server.request_sync();
  server.drain_sync();
  EXPECT_GE(server.sync_count(), 1u);
  EXPECT_GE(server.generation(), 1u);
  EXPECT_EQ(server.num_observations(), 20u);
  const auto x = features_for(123.0);
  EXPECT_EQ(server.predictions(0, x), server.predictions(1, x));
}

// ---------------------------------------------------------------------------
// ReadPublication: the lock-free read path (atomically swapped immutable
// snapshots) interleaved with every writer the engine has — observe batches,
// the stepwise async pipeline, inline-sync antagonists, snapshotters. The
// harness serializes the schedule, so after each writer tick the published
// snapshot must agree bit-for-bit with the live locked model, and epochs
// must only move forward.
// ---------------------------------------------------------------------------

TEST(ReadPublication, SameSeedWithReadersIsByteIdentical) {
  // Adding lock-free readers must not cost the harness its acceptance bar:
  // same seed + schedule => identical trace and byte-identical snapshot.
  const ScheduleDriver driver = make_driver(4, ScheduleWeights{8, 4, 1, 1, 6});
  for (const std::uint64_t seed : kSeeds) {
    const ScheduleResult a = driver.run(seed);
    const ScheduleResult b = driver.run(seed);
    EXPECT_EQ(a.decisions, b.decisions) << "seed=" << seed;
    EXPECT_EQ(a.final_state, b.final_state) << "seed=" << seed;
    EXPECT_EQ(a.read_decisions, b.read_decisions) << "seed=" << seed;
    EXPECT_GT(a.read_decisions, 0u) << "seed=" << seed;
  }
}

TEST(ReadPublication, ReaderNeverObservesStaleOrTornSnapshot) {
  // The publication protocol's two invariants, checked after every read:
  // the published snapshot decides exactly like the live model (writers
  // republish before releasing the shard lock, so a serialized reader can
  // never see a half-published generation), and no shard's epoch moves
  // backwards. Reader-heavy schedule with both sync antagonists racing.
  const ScheduleDriver driver = make_driver(4, ScheduleWeights{4, 6, 2, 1, 10});
  for (const std::uint64_t seed : kSeeds) {
    const ScheduleResult result = driver.run(seed);
    EXPECT_GT(result.read_checks, 0u) << "seed=" << seed;
    EXPECT_EQ(result.read_mismatches, 0u) << "seed=" << seed;
    EXPECT_EQ(result.epoch_regressions, 0u) << "seed=" << seed;
    EXPECT_EQ(result.observations, result.observations_fed) << "seed=" << seed;
  }
}

TEST(ReadPublication, ReadersSeeEveryPolicyIdentically) {
  // The frozen snapshot carries only the shared greedy surface, so the
  // publication invariants are policy-independent: LinUCB and Thompson
  // fleets pass the same mismatch/epoch bars.
  for (const core::PolicyKind kind :
       {core::PolicyKind::kLinUcb, core::PolicyKind::kThompson}) {
    const ScheduleDriver driver(async_policy_config(4, kind), hw::ndp_catalog(), 8,
                                400, ScheduleWeights{6, 4, 1, 1, 8});
    const ScheduleResult result = driver.run(kSeeds[0]);
    EXPECT_GT(result.read_checks, 0u);
    EXPECT_EQ(result.read_mismatches, 0u);
    EXPECT_EQ(result.epoch_regressions, 0u);
  }
}

}  // namespace
}  // namespace bw::serve
