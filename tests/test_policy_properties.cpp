// Cross-policy property suite: every policy implementation is run through
// the same replay invariants on several synthetic table shapes. This is
// the safety net that lets new policies (the paper's future work) be added
// without re-deriving the evaluator contracts.

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "core/baselines.hpp"
#include "core/epsilon_greedy.hpp"
#include "core/evaluator.hpp"
#include "core/linucb.hpp"
#include "core/thompson.hpp"

namespace bw::core {
namespace {

enum class PolicyKind { kEpsGreedy, kLinUcb, kThompson, kUcb1, kMeanEps, kRandom };

const char* kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kEpsGreedy: return "EpsGreedy";
    case PolicyKind::kLinUcb: return "LinUcb";
    case PolicyKind::kThompson: return "Thompson";
    case PolicyKind::kUcb1: return "Ucb1";
    case PolicyKind::kMeanEps: return "MeanEps";
    case PolicyKind::kRandom: return "Random";
  }
  return "?";
}

enum class TableKind { kSeparable, kInterchangeable, kSingleArm };

const char* table_name(TableKind kind) {
  switch (kind) {
    case TableKind::kSeparable: return "Separable";
    case TableKind::kInterchangeable: return "Interchangeable";
    case TableKind::kSingleArm: return "SingleArm";
  }
  return "?";
}

std::unique_ptr<Policy> make_policy(PolicyKind kind, const hw::HardwareCatalog& catalog,
                                    std::size_t dims) {
  switch (kind) {
    case PolicyKind::kEpsGreedy:
      return std::make_unique<DecayingEpsilonGreedy>(catalog, dims, EpsilonGreedyConfig{});
    case PolicyKind::kLinUcb:
      return std::make_unique<LinUcb>(catalog, dims, LinUcbConfig{});
    case PolicyKind::kThompson:
      return std::make_unique<LinearThompson>(catalog, dims, ThompsonConfig{});
    case PolicyKind::kUcb1:
      return std::make_unique<Ucb1>(catalog.size());
    case PolicyKind::kMeanEps:
      return std::make_unique<MeanEpsilonGreedy>(catalog.size(), 0.1);
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>(catalog.size());
  }
  return nullptr;
}

RunTable make_table(TableKind kind, Rng& rng) {
  switch (kind) {
    case TableKind::kSeparable: {
      // Three arms, slopes 9 / 5 / 1 + small noise: arm 2 always best.
      const std::size_t groups = 30;
      linalg::Matrix features(groups, 1);
      linalg::Matrix runtimes(groups, 3);
      for (std::size_t g = 0; g < groups; ++g) {
        const double x = 1.0 + static_cast<double>(g % 10);
        features(g, 0) = x;
        runtimes(g, 0) = 9.0 * x + rng.uniform(0.0, 0.5);
        runtimes(g, 1) = 5.0 * x + rng.uniform(0.0, 0.5);
        runtimes(g, 2) = 1.0 * x + rng.uniform(0.0, 0.5);
      }
      return RunTable({"x"}, std::move(features), std::move(runtimes),
                      hw::HardwareCatalog({{"A", 1, 4.0}, {"B", 2, 8.0}, {"C", 4, 16.0}}));
    }
    case TableKind::kInterchangeable: {
      // Arms statistically identical: pure noise around 10x.
      const std::size_t groups = 30;
      linalg::Matrix features(groups, 1);
      linalg::Matrix runtimes(groups, 3);
      for (std::size_t g = 0; g < groups; ++g) {
        const double x = 1.0 + static_cast<double>(g % 7);
        features(g, 0) = x;
        for (std::size_t a = 0; a < 3; ++a) {
          runtimes(g, a) = 10.0 * x * rng.uniform(0.8, 1.2);
        }
      }
      return RunTable({"x"}, std::move(features), std::move(runtimes),
                      hw::HardwareCatalog({{"A", 1, 4.0}, {"B", 2, 8.0}, {"C", 4, 16.0}}));
    }
    case TableKind::kSingleArm: {
      const std::size_t groups = 10;
      linalg::Matrix features(groups, 1);
      linalg::Matrix runtimes(groups, 1);
      for (std::size_t g = 0; g < groups; ++g) {
        features(g, 0) = static_cast<double>(g + 1);
        runtimes(g, 0) = 3.0 * features(g, 0);
      }
      return RunTable({"x"}, std::move(features), std::move(runtimes),
                      hw::HardwareCatalog({{"only", 1, 4.0}}));
    }
  }
  throw InvalidArgument("unknown table kind");
}

struct Case {
  PolicyKind policy;
  TableKind table;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return std::string(kind_name(info.param.policy)) + "On" +
         table_name(info.param.table);
}

class PolicyReplayProperty : public ::testing::TestWithParam<Case> {};

TEST_P(PolicyReplayProperty, ReplayInvariantsHold) {
  Rng table_rng(99);
  const RunTable table = make_table(GetParam().table, table_rng);
  auto policy = make_policy(GetParam().policy, table.catalog(), table.num_features());

  ReplayConfig config;
  config.num_rounds = 40;
  config.seed = 1234;
  const ReplayResult result = replay(*policy, table, config);

  ASSERT_EQ(result.chosen_arm.size(), 40u);
  for (ArmIndex arm : result.chosen_arm) EXPECT_LT(arm, table.num_arms());
  for (double regret : result.instant_regret) EXPECT_GE(regret, -1e-12);
  for (double accuracy : result.accuracy) {
    EXPECT_GE(accuracy, 0.0);
    EXPECT_LE(accuracy, 1.0);
  }
  for (double rmse : result.rmse) EXPECT_GE(rmse, 0.0);
  EXPECT_GE(result.cumulative_regret, 0.0);
}

TEST_P(PolicyReplayProperty, ReplayIsDeterministicPerSeed) {
  Rng table_rng(7);
  const RunTable table = make_table(GetParam().table, table_rng);
  auto run_once = [&] {
    auto policy = make_policy(GetParam().policy, table.catalog(), table.num_features());
    ReplayConfig config;
    config.num_rounds = 25;
    config.seed = 777;
    return replay(*policy, table, config);
  };
  const ReplayResult a = run_once();
  const ReplayResult b = run_once();
  EXPECT_EQ(a.chosen_arm, b.chosen_arm);
  EXPECT_EQ(a.observed_runtime, b.observed_runtime);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyReplayProperty,
    ::testing::Values(Case{PolicyKind::kEpsGreedy, TableKind::kSeparable},
                      Case{PolicyKind::kEpsGreedy, TableKind::kInterchangeable},
                      Case{PolicyKind::kEpsGreedy, TableKind::kSingleArm},
                      Case{PolicyKind::kLinUcb, TableKind::kSeparable},
                      Case{PolicyKind::kLinUcb, TableKind::kInterchangeable},
                      Case{PolicyKind::kLinUcb, TableKind::kSingleArm},
                      Case{PolicyKind::kThompson, TableKind::kSeparable},
                      Case{PolicyKind::kThompson, TableKind::kInterchangeable},
                      Case{PolicyKind::kThompson, TableKind::kSingleArm},
                      Case{PolicyKind::kUcb1, TableKind::kSeparable},
                      Case{PolicyKind::kUcb1, TableKind::kInterchangeable},
                      Case{PolicyKind::kMeanEps, TableKind::kSeparable},
                      Case{PolicyKind::kMeanEps, TableKind::kInterchangeable},
                      Case{PolicyKind::kRandom, TableKind::kSeparable},
                      Case{PolicyKind::kRandom, TableKind::kSingleArm}),
    case_name);

// Contextual policies must beat the random baseline on separable data.
class ContextualBeatsRandom : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(ContextualBeatsRandom, LowerRegretThanRandom) {
  Rng table_rng(11);
  const RunTable table = make_table(TableKind::kSeparable, table_rng);

  ReplayConfig config;
  config.num_rounds = 80;
  config.per_round_metrics = false;
  config.seed = 4321;

  auto contextual = make_policy(GetParam(), table.catalog(), table.num_features());
  const double contextual_regret = replay(*contextual, table, config).cumulative_regret;

  RandomPolicy random(table.num_arms());
  const double random_regret = replay(random, table, config).cumulative_regret;

  EXPECT_LT(contextual_regret, random_regret * 0.8)
      << kind_name(GetParam()) << " vs random";
}

INSTANTIATE_TEST_SUITE_P(Contextual, ContextualBeatsRandom,
                         ::testing::Values(PolicyKind::kEpsGreedy, PolicyKind::kLinUcb,
                                           PolicyKind::kThompson));

// Tolerance monotonicity at the system level: widening tolerance_seconds
// never increases the mean resource cost of final recommendations.
class ToleranceMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(ToleranceMonotonicity, WiderToleranceNeverCostsMore) {
  Rng table_rng(13);
  const RunTable table = make_table(TableKind::kSeparable, table_rng);

  auto final_cost = [&](double seconds) {
    EpsilonGreedyConfig policy_config;
    policy_config.tolerance.seconds = seconds;
    DecayingEpsilonGreedy policy(table.catalog(), table.num_features(), policy_config);
    ReplayConfig config;
    config.num_rounds = 60;
    config.accuracy_tolerance.seconds = seconds;
    config.seed = 31;
    return replay(policy, table, config).mean_resource_cost.back();
  };

  const double narrow = final_cost(GetParam());
  const double wide = final_cost(GetParam() + 50.0);
  EXPECT_LE(wide, narrow + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seconds, ToleranceMonotonicity,
                         ::testing::Values(0.0, 5.0, 20.0));

}  // namespace
}  // namespace bw::core
