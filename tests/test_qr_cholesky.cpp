// Tests for the QR and Cholesky factorizations (linalg/qr, linalg/cholesky).

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"

namespace bw::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, bw::Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data()) v = rng.uniform(-5.0, 5.0);
  return m;
}

// ---- Cholesky -----------------------------------------------------------

TEST(Cholesky, FactorsKnownSpdMatrix) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Matrix& l = chol->lower();
  EXPECT_DOUBLE_EQ(l(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(l(1, 0), 1.0);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const Vector x_true = {1.0, -2.0};
  const Vector b = a * x_true;
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Vector x = chol->solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
}

TEST(Cholesky, RejectsNonPositiveDefinite) {
  const Matrix indefinite{{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_FALSE(Cholesky::factor(indefinite).has_value());
  const Matrix zero(2, 2);
  EXPECT_FALSE(Cholesky::factor(zero).has_value());
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(Cholesky::factor(Matrix(2, 3)), InvalidArgument);
}

TEST(Cholesky, LogDetMatchesKnownValue) {
  const Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_NEAR(chol->log_det(), std::log(36.0), 1e-12);
}

TEST(SolveSpd, JitterRescuesSemidefinite) {
  // Rank-1 PSD matrix; plain Cholesky fails, jitter makes it solvable.
  const Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  const Vector b = {2.0, 2.0};
  const Vector x = solve_spd(a, b, 1e-8);
  // Solution of the regularized system is close to [1, 1].
  EXPECT_NEAR(x[0], 1.0, 1e-3);
  EXPECT_NEAR(x[1], 1.0, 1e-3);
}

TEST(SolveSpd, ThrowsWhenHopeless) {
  const Matrix a{{0.0, 0.0}, {0.0, -1.0}};
  // Negative diagonal stays non-PD under small jitter escalation.
  EXPECT_THROW(solve_spd(a, {1.0, 1.0}, 1e-12), NumericalError);
}

// Property: for random SPD matrices (A = B^T B + I), solve returns the
// planted solution.
class CholeskyProperty : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyProperty, SolvesRandomSpdSystems) {
  bw::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + GetParam() % 6;
  const Matrix b = random_matrix(n, n, rng);
  Matrix a = b.transposed() * b;
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;

  Vector x_true(n);
  for (auto& v : x_true) v = rng.uniform(-3.0, 3.0);
  const Vector rhs = a * x_true;

  const auto chol = Cholesky::factor(a);
  ASSERT_TRUE(chol.has_value());
  const Vector x = chol->solve(rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);

  // L L^T must reconstruct A.
  const Matrix& l = chol->lower();
  EXPECT_LT((l * l.transposed()).max_abs_diff(a), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSpd, CholeskyProperty, ::testing::Range(0, 8));

// ---- Householder QR -------------------------------------------------------

TEST(HouseholderQr, SolvesSquareSystemExactly) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x_true = {3.0, -1.0};
  const Vector b = a * x_true;
  HouseholderQr qr(a);
  const Vector x = qr.solve(b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], -1.0, 1e-12);
}

TEST(HouseholderQr, RejectsWideMatrices) {
  EXPECT_THROW(HouseholderQr(Matrix(2, 3)), InvalidArgument);
  EXPECT_THROW(HouseholderQr(Matrix(0, 0)), InvalidArgument);
}

TEST(HouseholderQr, DetectsSingularity) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};  // rank 1
  HouseholderQr qr(a);
  EXPECT_LT(qr.min_diag_abs(), 1e-10);
  EXPECT_THROW(qr.solve({1.0, 2.0, 3.0}), NumericalError);
}

TEST(HouseholderQr, LeastSquaresMatchesNormalEquations) {
  bw::Rng rng(77);
  const Matrix a = random_matrix(20, 4, rng);
  Vector b(20);
  for (auto& v : b) v = rng.uniform(-10.0, 10.0);

  HouseholderQr qr(a);
  const Vector x_qr = qr.solve(b);

  // Normal equations: (A^T A) x = A^T b.
  const Matrix ata = a.transposed() * a;
  Vector atb(4, 0.0);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 4; ++c) atb[c] += a(r, c) * b[r];
  }
  const Vector x_ne = solve_spd(ata, atb);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x_qr[i], x_ne[i], 1e-8);
}

// Property: QR residual is orthogonal to the column space, and R matches
// the Gram factor.
class QrProperty : public ::testing::TestWithParam<int> {};

TEST_P(QrProperty, ResidualOrthogonalToColumns) {
  bw::Rng rng(static_cast<std::uint64_t>(GetParam()) + 31);
  const std::size_t m = 8 + GetParam() % 10;
  const std::size_t n = 2 + GetParam() % 4;
  const Matrix a = random_matrix(m, n, rng);
  Vector b(m);
  for (auto& v : b) v = rng.uniform(-4.0, 4.0);

  HouseholderQr qr(a);
  const Vector x = qr.solve(b);

  // residual r = b - A x; A^T r must be ~0.
  Vector ax = a * x;
  for (std::size_t c = 0; c < n; ++c) {
    double dot_col = 0.0;
    for (std::size_t r = 0; r < m; ++r) dot_col += a(r, c) * (b[r] - ax[r]);
    EXPECT_NEAR(dot_col, 0.0, 1e-8);
  }
}

TEST_P(QrProperty, RMatchesGramCholesky) {
  bw::Rng rng(static_cast<std::uint64_t>(GetParam()) + 57);
  const std::size_t m = 10 + GetParam();
  const std::size_t n = 3;
  const Matrix a = random_matrix(m, n, rng);
  HouseholderQr qr(a);
  const Matrix r = qr.r();
  // R^T R == A^T A (up to sign conventions absorbed by the product).
  const Matrix rtr = r.transposed() * r;
  const Matrix ata = a.transposed() * a;
  EXPECT_LT(rtr.max_abs_diff(ata), 1e-8 * ata.frobenius_norm());
}

INSTANTIATE_TEST_SUITE_P(RandomTall, QrProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace bw::linalg
