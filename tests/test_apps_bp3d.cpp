// Tests for the fire-spread CA and the BP3D workload model (apps/firesim,
// apps/bp3d).

#include <gtest/gtest.h>

#include "apps/bp3d.hpp"
#include "apps/firesim.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace bw::apps {
namespace {

const geo::BurnUnit& small_unit() { return geo::builtin_burn_units().front(); }

WeatherInputs mild_weather() {
  WeatherInputs weather;
  weather.surface_moisture = 0.08;
  weather.canopy_moisture = 0.5;
  weather.wind_direction_deg = 90.0;
  weather.wind_speed_ms = 6.0;
  weather.sim_time_steps = 400;
  return weather;
}

TEST(FireSim, BurnsSomethingUnderMildWeather) {
  Rng rng(1);
  const FireSimResult result = run_fire_sim(small_unit(), mild_weather(), {}, rng);
  EXPECT_GT(result.fuel_cells, 0u);
  EXPECT_GT(result.burned_cells, 1u);
  EXPECT_GT(result.cell_updates, 0u);
  EXPECT_LE(result.burned_cells, result.fuel_cells);
  EXPECT_GT(result.steps_executed, 0);
}

TEST(FireSim, FuelCellsTrackPolygonArea) {
  Rng rng(2);
  FireSimConfig config;
  config.cell_size_m = 20.0;
  const FireSimResult result = run_fire_sim(small_unit(), mild_weather(), config, rng);
  const double expected_cells = small_unit().area_m2() / (20.0 * 20.0);
  EXPECT_NEAR(static_cast<double>(result.fuel_cells), expected_cells, expected_cells * 0.05);
}

TEST(FireSim, DeterministicGivenSeed) {
  Rng rng_a(3);
  Rng rng_b(3);
  const FireSimResult a = run_fire_sim(small_unit(), mild_weather(), {}, rng_a);
  const FireSimResult b = run_fire_sim(small_unit(), mild_weather(), {}, rng_b);
  EXPECT_EQ(a.burned_cells, b.burned_cells);
  EXPECT_EQ(a.steps_executed, b.steps_executed);
  EXPECT_EQ(a.cell_updates, b.cell_updates);
}

TEST(FireSim, HighMoistureSuppressesSpread) {
  WeatherInputs wet = mild_weather();
  wet.surface_moisture = 0.34;
  wet.canopy_moisture = 1.2;
  Rng rng_dry(4);
  Rng rng_wet(4);
  const FireSimResult dry = run_fire_sim(small_unit(), mild_weather(), {}, rng_dry);
  const FireSimResult moist = run_fire_sim(small_unit(), wet, {}, rng_wet);
  EXPECT_LT(moist.burned_cells, dry.burned_cells);
}

TEST(FireSim, SimTimeCapsSteps) {
  WeatherInputs brief = mild_weather();
  brief.sim_time_steps = 5;
  Rng rng(5);
  const FireSimResult result = run_fire_sim(small_unit(), brief, {}, rng);
  EXPECT_LE(result.steps_executed, 5);
}

TEST(FireSim, RejectsInvalidInputs) {
  Rng rng(6);
  WeatherInputs bad = mild_weather();
  bad.sim_time_steps = 0;
  EXPECT_THROW(run_fire_sim(small_unit(), bad, {}, rng), InvalidArgument);
  bad = mild_weather();
  bad.surface_moisture = 1.5;
  EXPECT_THROW(run_fire_sim(small_unit(), bad, {}, rng), InvalidArgument);
  bad = mild_weather();
  bad.wind_speed_ms = -1.0;
  EXPECT_THROW(run_fire_sim(small_unit(), bad, {}, rng), InvalidArgument);
  FireSimConfig config;
  config.cell_size_m = 0.0;
  EXPECT_THROW(run_fire_sim(small_unit(), mild_weather(), config, rng), InvalidArgument);
}

TEST(FireSim, StrongerWindBurnsMoreDownwind) {
  WeatherInputs calm = mild_weather();
  calm.wind_speed_ms = 0.5;
  WeatherInputs windy = mild_weather();
  windy.wind_speed_ms = 18.0;
  bw::RunningStats calm_burn, windy_burn;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng_calm(seed);
    Rng rng_windy(seed);
    calm_burn.add(static_cast<double>(
        run_fire_sim(small_unit(), calm, {}, rng_calm).burned_cells));
    windy_burn.add(static_cast<double>(
        run_fire_sim(small_unit(), windy, {}, rng_windy).burned_cells));
  }
  // Wind accelerates spread along its axis; with a generous step budget the
  // windy fire reaches at least as much fuel on average.
  EXPECT_GE(windy_burn.mean(), calm_burn.mean() * 0.9);
}

// ---- workload model -----------------------------------------------------------

TEST(Bp3dModel, WorkGrowsWithBurnedCellsAndSimTime) {
  FireSimResult fire;
  fire.burned_cells = 1000;
  WeatherInputs weather = mild_weather();
  const Bp3dConfig config;
  const double base = bp3d_work_units(fire, weather, config);
  fire.burned_cells = 2000;
  EXPECT_GT(bp3d_work_units(fire, weather, config), base);
  fire.burned_cells = 1000;
  weather.sim_time_steps = 800;
  EXPECT_GT(bp3d_work_units(fire, weather, config), base);
}

TEST(Bp3dModel, RuntimeNoiseIsMeanPreserving) {
  const Bp3dConfig config;
  const hw::HardwareSpec h0{"H0", 2, 16.0};
  Rng rng(7);
  bw::RunningStats stats;
  for (int i = 0; i < 4000; ++i) {
    stats.add(simulate_bp3d_runtime(10000.0, 2.0, h0, config, rng));
  }
  const hw::PerfModel perf(config.perf);
  const double expected = perf.execution_seconds(10000.0, h0, 2.0);
  EXPECT_NEAR(stats.mean(), expected, expected * 0.05);
}

TEST(Bp3dModel, NdpHardwareNearlyInterchangeable) {
  // The defining property of Experiment 2: speedups differ by only a few
  // percent across H0/H1/H2.
  const Bp3dConfig config;
  const hw::PerfModel perf(config.perf);
  const auto catalog = hw::ndp_catalog();
  const double s0 = perf.speedup(catalog[0]);
  const double s2 = perf.speedup(catalog[2]);
  EXPECT_GT(s2, s0);             // more cores still help a little...
  EXPECT_LT(s2 / s0, 1.10);      // ...but by less than 10%
}

TEST(Bp3dFrames, SchemaMatchesPaperTable1) {
  const auto catalog = hw::ndp_catalog();
  Bp3dDatasetOptions options;
  options.num_groups = 30;
  const auto frames = build_bp3d_frames(catalog, Bp3dConfig{}, options);
  ASSERT_EQ(frames.size(), 3u);
  for (const auto& name : bp3d_feature_names()) {
    EXPECT_TRUE(frames[0].has_column(name)) << name;
  }
  EXPECT_TRUE(frames[0].has_column("runtime"));
  EXPECT_EQ(frames[0].num_rows(), 30u);
}

TEST(Bp3dFrames, FeaturesSharedAcrossHardware) {
  const auto catalog = hw::ndp_catalog();
  Bp3dDatasetOptions options;
  options.num_groups = 12;
  const auto frames = build_bp3d_frames(catalog, Bp3dConfig{}, options);
  for (std::size_t arm = 1; arm < frames.size(); ++arm) {
    EXPECT_EQ(frames[arm].column("area").doubles(), frames[0].column("area").doubles());
    EXPECT_EQ(frames[arm].column("wind_speed").doubles(),
              frames[0].column("wind_speed").doubles());
    // Runtimes must differ (independent noise draws per arm).
    EXPECT_NE(frames[arm].column("runtime").doubles(),
              frames[0].column("runtime").doubles());
  }
}

TEST(Bp3dFrames, FeatureRangesMatchDocumentedSampling) {
  const auto catalog = hw::ndp_catalog();
  Bp3dDatasetOptions options;
  options.num_groups = 60;
  const auto frames = build_bp3d_frames(catalog, Bp3dConfig{}, options);
  for (double v : frames[0].column("surface_moisture").doubles()) {
    EXPECT_GE(v, 0.03);
    EXPECT_LE(v, 0.30);
  }
  for (double v : frames[0].column("wind_direction").doubles()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 360.0);
  }
  for (double v : frames[0].column("area").doubles()) {
    EXPECT_GE(v, 1.0e6);
    EXPECT_LE(v, 2.55e6);
  }
  for (double v : frames[0].column("runtime").doubles()) EXPECT_GT(v, 0.0);
}

TEST(Bp3dFrames, SixBurnUnitsRotate) {
  const auto catalog = hw::ndp_catalog();
  Bp3dDatasetOptions options;
  options.num_groups = 12;
  const auto frames = build_bp3d_frames(catalog, Bp3dConfig{}, options);
  const auto& areas = frames[0].column("area").doubles();
  // Groups cycle through the six builtin units: areas repeat with period 6.
  for (std::size_t g = 6; g < areas.size(); ++g) {
    EXPECT_DOUBLE_EQ(areas[g], areas[g - 6]);
  }
}

TEST(Bp3dFrames, DeterministicBySeed) {
  const auto catalog = hw::ndp_catalog();
  Bp3dDatasetOptions options;
  options.num_groups = 8;
  options.seed = 123;
  const auto a = build_bp3d_frames(catalog, Bp3dConfig{}, options);
  const auto b = build_bp3d_frames(catalog, Bp3dConfig{}, options);
  EXPECT_EQ(a[1].column("runtime").doubles(), b[1].column("runtime").doubles());
}

}  // namespace
}  // namespace bw::apps
