// Golden-snapshot fixtures: small v1 and v2 `banditware-state` files are
// checked in under tests/data/, and load -> save output is pinned byte-for-
// byte against them. A change to the snapshot writer or readers that alters
// bytes (or silently mis-migrates a legacy v1 file) fails here loudly,
// instead of shipping a format drift that corrupts deployed state files.
//
// Regenerating fixtures after an *intentional* format change: the expected
// bytes are exactly `BanditWare::load_state(<fixture>).save_state()` — see
// the comments on each fixture below for its provenance.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/banditware.hpp"
#include "core/run_table.hpp"
#include "fleet/fleet_node.hpp"
#include "hardware/catalog.hpp"
#include "io/fleet_wire.hpp"
#include "io/run_table_io.hpp"
#include "io/state_io.hpp"
#include "serve/bandit_server.hpp"

namespace bw::core {
namespace {

std::string data_path(const std::string& name) {
  return std::string(BW_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(SnapshotGolden, V2StatsFixtureRoundTripsByteIdentical) {
  // Incremental arms (sufficient statistics records). Produced by training
  // the NDP catalog on a short deterministic stream and saving.
  const std::string fixture = read_file(data_path("state_v2_stats.bw"));
  ASSERT_FALSE(fixture.empty());
  const BanditWare bandit = BanditWare::load_state(fixture);
  EXPECT_EQ(bandit.save_state(), fixture);
  EXPECT_EQ(bandit.num_arms(), 3u);
  EXPECT_EQ(bandit.num_observations(), 9u);
}

TEST(SnapshotGolden, V2ExactHistoryFixtureRoundTripsByteIdentical) {
  // exact_history arms (raw observation rows inside a v2 envelope).
  const std::string fixture = read_file(data_path("state_v2_obs.bw"));
  ASSERT_FALSE(fixture.empty());
  const BanditWare bandit = BanditWare::load_state(fixture);
  EXPECT_EQ(bandit.save_state(), fixture);
  EXPECT_TRUE(bandit.config().policy.exact_history);
  EXPECT_EQ(bandit.num_observations(), 6u);
}

TEST(SnapshotGolden, V1FixtureMigratesToPinnedV2Bytes) {
  // Legacy v1 (raw rows, no gpus column, no exact_history flag) must keep
  // loading by replay and re-save as exactly the pinned v2 migration — any
  // drift in the replay or the writer shows up as a byte diff here.
  const std::string fixture = read_file(data_path("state_v1.bw"));
  const std::string expected = read_file(data_path("state_v1_migrated.bw"));
  ASSERT_FALSE(fixture.empty());
  ASSERT_FALSE(expected.empty());
  const BanditWare bandit = BanditWare::load_state(fixture);
  const std::string migrated = bandit.save_state();
  EXPECT_EQ(migrated, expected);
  EXPECT_EQ(migrated.rfind("banditware-state v2\n", 0), 0u);
  // The migration itself must be stable under a second round trip.
  EXPECT_EQ(BanditWare::load_state(migrated).save_state(), migrated);
}

TEST(SnapshotGolden, V2ServerFixtureMigratesToPinnedV3Bytes) {
  // Legacy `banditserver-state v2` (no sync_mode token) carrying a
  // NON-TRIVIAL sync baseline: 2 round-robin shards, sync_every=2, one
  // auto-sync fused 12 observations into the baseline, then one more
  // mid-cadence batch left per-shard deltas on top. Produced by the v2
  // writer before the v3 (sync_mode) bump. It must keep loading — inline
  // mode default, baseline intact (no double-counting on the next sync) —
  // and re-save as exactly the pinned v3 migration.
  const std::string fixture = read_file(data_path("server_state_v2.bw"));
  const std::string expected = read_file(data_path("server_state_v2_migrated.bw"));
  ASSERT_FALSE(fixture.empty());
  ASSERT_FALSE(expected.empty());
  ASSERT_EQ(fixture.rfind("banditserver-state v2\n", 0), 0u);

  serve::BanditServer server = serve::BanditServer::load_state(fixture);
  EXPECT_EQ(server.num_shards(), 2u);
  EXPECT_EQ(server.config().sync_mode, serve::SyncMode::kInline);
  EXPECT_EQ(server.config().sync_every, 2u);
  // 3 batches x 6 observations; the baseline carries the 12 fused at the
  // auto-sync, each shard 12 fused + 3 own: 30 raw - 12 shared = 18.
  EXPECT_EQ(server.num_observations(), 18u);
  EXPECT_EQ(server.shard_observation_counts(), (std::vector<std::size_t>{15, 15}));

  const std::string migrated = server.save_state();
  EXPECT_EQ(migrated, expected);
  EXPECT_EQ(migrated.rfind("banditserver-state v3\n", 0), 0u);
  // The migration itself must be stable under a second round trip.
  EXPECT_EQ(serve::BanditServer::load_state(migrated).save_state(), migrated);
}

TEST(SnapshotGolden, V3LinUcbFixtureRoundTripsByteIdentical) {
  // Policy-axis format: LinUCB (alpha 1.5) over the NDP catalog, trained on
  // a short deterministic stream. The `policy` line is the only addition
  // over the v2 body; the bytes are pinned so the policy token and its
  // scalar can never drift silently.
  const std::string fixture = read_file(data_path("state_v3_linucb.bw"));
  ASSERT_FALSE(fixture.empty());
  ASSERT_EQ(fixture.rfind("banditware-state v3\npolicy linucb alpha 1.5\n", 0), 0u);
  const BanditWare bandit = BanditWare::load_state(fixture);
  EXPECT_EQ(bandit.save_state(), fixture);
  EXPECT_EQ(bandit.policy_kind(), PolicyKind::kLinUcb);
  EXPECT_DOUBLE_EQ(bandit.config().alpha, 1.5);
  EXPECT_EQ(bandit.num_observations(), 9u);
}

TEST(SnapshotGolden, V4ThompsonServerFixtureRoundTripsByteIdentical) {
  // `banditserver-state v4`: 2 round-robin shards, sync_every=2, Thompson
  // (v=1.25); the auto-sync at batch 2 fused 8 observations into the
  // baseline and batch 3 left per-shard deltas — so the policy axis is
  // pinned together with a real sync baseline, not a fresh engine.
  const std::string fixture = read_file(data_path("server_state_v4_thompson.bw"));
  ASSERT_FALSE(fixture.empty());
  ASSERT_EQ(fixture.rfind("banditserver-state v4\n", 0), 0u);
  serve::BanditServer server = serve::BanditServer::load_state(fixture);
  EXPECT_EQ(server.config().bandit.policy_kind, PolicyKind::kThompson);
  EXPECT_DOUBLE_EQ(server.config().bandit.posterior_scale, 1.25);
  EXPECT_EQ(server.num_shards(), 2u);
  EXPECT_EQ(server.num_observations(), 12u);
  EXPECT_EQ(server.save_state(), fixture);
  // A sync on the restored engine must not double-count the fused baseline.
  server.sync_shards();
  EXPECT_EQ(server.num_observations(), 12u);
}

TEST(SnapshotGolden, LegacyFixturesRestoreAsEpsilonGreedyByteForByte) {
  // The pre-policy-axis formats carry no policy token; they must restore as
  // ε-greedy and re-save to exactly their own bytes — the v2 (banditware)
  // and v3 (banditserver) encodings ARE the ε-greedy encodings, so the
  // legacy->current "migration" is pinned as the identity.
  const std::string bandit_fixture = read_file(data_path("state_v2_stats.bw"));
  const BanditWare bandit = BanditWare::load_state(bandit_fixture);
  EXPECT_EQ(bandit.policy_kind(), PolicyKind::kEpsilonGreedy);
  EXPECT_EQ(bandit.save_state(), bandit_fixture);

  const std::string server_fixture = read_file(data_path("server_state_v2_migrated.bw"));
  ASSERT_EQ(server_fixture.rfind("banditserver-state v3\n", 0), 0u);
  serve::BanditServer server = serve::BanditServer::load_state(server_fixture);
  EXPECT_EQ(server.config().bandit.policy_kind, PolicyKind::kEpsilonGreedy);
  EXPECT_EQ(server.save_state(), server_fixture);
}

TEST(SnapshotGolden, V4LambdaFixtureRoundTripsByteIdentical) {
  // `banditware-state v4`: the discount superset — a `lambda 0.5` line
  // before the (now always present) policy line. LinUCB (alpha 1.5) over
  // the NDP catalog on the standard 9-observation stream, λ = 0.5 chosen
  // exactly representable so the text bytes are platform-stable.
  const std::string fixture = read_file(data_path("state_v4_lambda.bw"));
  ASSERT_FALSE(fixture.empty());
  ASSERT_EQ(
      fixture.rfind("banditware-state v4\nlambda 0.5\npolicy linucb alpha 1.5\n", 0),
      0u);
  const BanditWare bandit = BanditWare::load_state(fixture);
  EXPECT_EQ(bandit.save_state(), fixture);
  EXPECT_EQ(bandit.config().policy.fit.forgetting, 0.5);
  EXPECT_EQ(bandit.policy_kind(), PolicyKind::kLinUcb);
  EXPECT_EQ(bandit.num_observations(), 9u);
}

TEST(SnapshotGolden, V5LambdaServerFixtureRoundTripsByteIdentical) {
  // `banditserver-state v5`: the header's ` lambda 0.5` token ahead of the
  // policy token, Thompson (v=1.25), 2 shards, one auto-sync baseline —
  // pins the discounted header together with discounted shard/base blobs
  // (each a v4 bandit blob whose lambda must agree with the header).
  const std::string fixture = read_file(data_path("server_state_v5_lambda.bw"));
  ASSERT_FALSE(fixture.empty());
  ASSERT_EQ(fixture.rfind("banditserver-state v5\n", 0), 0u);
  ASSERT_NE(fixture.find(" lambda 0.5 "), std::string::npos);
  serve::BanditServer server = serve::BanditServer::load_state(fixture);
  EXPECT_EQ(server.config().bandit.policy.fit.forgetting, 0.5);
  EXPECT_EQ(server.config().bandit.policy_kind, PolicyKind::kThompson);
  EXPECT_EQ(server.num_shards(), 2u);
  EXPECT_EQ(server.save_state(), fixture);
  // Discounted baseline algebra survives the round trip: a sync must not
  // double-count what the snapshot already fused.
  const std::size_t before = server.num_observations();
  server.sync_shards();
  EXPECT_EQ(server.num_observations(), before);
}

// ---- binary container fixtures ------------------------------------------
// Checked-in .bwb/.bwt files pin the binary container encoding the same
// way the .bw files pin the text formats: load (through io:: auto-
// detection) -> re-save must reproduce the fixture bytes exactly, so a
// framing, checksum, or field-layout drift fails loudly instead of
// corrupting deployed binary snapshots. Regenerating after an intentional
// format change: the expected bytes are exactly
// `io::save_state(os, io::load_state(<fixture>), Format::kBinary)`.

template <typename State>
std::string save_binary(const State& state) {
  std::ostringstream os(std::ios::binary);
  io::save_state(os, state, io::Format::kBinary);
  return os.str();
}

TEST(SnapshotGolden, BinaryStateFixtureRoundTripsByteIdentical) {
  // ε-greedy over the NDP catalog, 9 deterministic observations, saved by
  // the v1 binary writer (container version byte 1).
  const std::string fixture = read_file(data_path("state_bin_v1.bwb"));
  ASSERT_FALSE(fixture.empty());
  std::istringstream is(fixture, std::ios::binary);
  io::LoadInfo info;
  const BanditWare bandit = io::load_state(is, &info);
  EXPECT_EQ(info.format, io::Format::kBinary);
  EXPECT_EQ(info.version, 1);
  EXPECT_FALSE(info.truncated);
  EXPECT_EQ(bandit.policy_kind(), PolicyKind::kEpsilonGreedy);
  EXPECT_EQ(bandit.num_arms(), 3u);
  EXPECT_EQ(bandit.num_observations(), 9u);
  EXPECT_EQ(save_binary(bandit), fixture);
}

TEST(SnapshotGolden, BinaryLinUcbFixtureRoundTripsByteIdentical) {
  // Same stream under LinUCB (alpha 1.5): pins the policy-kind byte and
  // scalar slots of the binary header packet.
  const std::string fixture = read_file(data_path("state_bin_v1_linucb.bwb"));
  ASSERT_FALSE(fixture.empty());
  std::istringstream is(fixture, std::ios::binary);
  const BanditWare bandit = io::load_state(is);
  EXPECT_EQ(bandit.policy_kind(), PolicyKind::kLinUcb);
  EXPECT_DOUBLE_EQ(bandit.config().alpha, 1.5);
  EXPECT_EQ(bandit.num_observations(), 9u);
  EXPECT_EQ(save_binary(bandit), fixture);
}

TEST(SnapshotGolden, BinaryServerFixtureRoundTripsByteIdentical) {
  // 2 round-robin shards, sync_every=2, one auto-sync baseline — the same
  // non-trivial engine shape the text server fixtures pin, as packets.
  const std::string fixture = read_file(data_path("server_state_bin_v1.bwb"));
  ASSERT_FALSE(fixture.empty());
  std::istringstream is(fixture, std::ios::binary);
  io::LoadInfo info;
  serve::BanditServer server = io::load_server_state(is, &info);
  EXPECT_FALSE(info.truncated);
  EXPECT_EQ(server.num_shards(), 2u);
  EXPECT_EQ(server.config().sync_every, 2u);
  EXPECT_EQ(save_binary(server), fixture);
  // The restored baseline threads through the merge algebra: a sync must
  // not double-count what the snapshot already fused.
  const std::size_t before = server.num_observations();
  server.sync_shards();
  EXPECT_EQ(server.num_observations(), before);
}

TEST(SnapshotGolden, BinaryRunTableFixtureRoundTripsByteIdentical) {
  // 10 groups x 2 features over the NDP arms, one row block + end sentinel.
  const std::string fixture = read_file(data_path("runs_bin_v1.bwt"));
  ASSERT_FALSE(fixture.empty());
  std::istringstream is(fixture, std::ios::binary);
  io::LoadInfo info;
  const RunTable table = io::read_run_table(is, &info);
  EXPECT_FALSE(info.truncated);
  EXPECT_EQ(table.num_groups(), 10u);
  EXPECT_EQ(table.num_features(), 2u);
  EXPECT_EQ(table.num_arms(), 3u);
  std::ostringstream os(std::ios::binary);
  io::write_run_table(os, table);
  EXPECT_EQ(os.str(), fixture);
}

TEST(SnapshotGolden, BinaryLambdaFixturesRoundTripByteIdentical) {
  // The 0x04 (bandit) and 0x13 (server) lambda extension packets, pinned as
  // checked-in bytes: the same discounted instances as the text fixtures,
  // through the binary container. The lambda packet rides between the magic
  // and the header, uncounted by the end sentinel — old readers skip it.
  {
    const std::string fixture = read_file(data_path("state_bin_v1_lambda.bwb"));
    ASSERT_FALSE(fixture.empty());
    std::istringstream is(fixture, std::ios::binary);
    io::LoadInfo info;
    const BanditWare bandit = io::load_state(is, &info);
    EXPECT_FALSE(info.truncated);
    EXPECT_EQ(bandit.config().policy.fit.forgetting, 0.5);
    EXPECT_EQ(bandit.policy_kind(), PolicyKind::kLinUcb);
    EXPECT_EQ(bandit.num_observations(), 9u);
    EXPECT_EQ(save_binary(bandit), fixture);
    // Binary and text fixtures pin the same model.
    EXPECT_EQ(bandit.save_state(), read_file(data_path("state_v4_lambda.bw")));
  }
  {
    const std::string fixture =
        read_file(data_path("server_state_bin_v1_lambda.bwb"));
    ASSERT_FALSE(fixture.empty());
    std::istringstream is(fixture, std::ios::binary);
    io::LoadInfo info;
    serve::BanditServer server = io::load_server_state(is, &info);
    EXPECT_FALSE(info.truncated);
    EXPECT_EQ(server.config().bandit.policy.fit.forgetting, 0.5);
    EXPECT_EQ(save_binary(server), fixture);
    EXPECT_EQ(server.save_state(),
              read_file(data_path("server_state_v5_lambda.bw")));
  }
}

// ---- fleet wire fixtures -------------------------------------------------
// Kind-4 (gossip delta) and kind-5 (node snapshot) containers, pinned the
// same way: load -> re-save must reproduce the fixture bytes exactly, so
// the delta framing a whole fleet gossips over can never drift silently.
// Regenerating after an intentional format change:
//   ./build/tools/gen_fleet_fixtures --out-dir tests/data
// (the generator's fixture_node() must stay in lockstep with the helper
// below — both build node 1 after one gossip hop from node 0).

fleet::FleetNode fleet_fixture_node(std::uint32_t node_id, PolicyKind kind,
                                    double forgetting) {
  fleet::FleetNodeConfig config;
  config.node_id = node_id;
  config.server.num_shards = 1;
  config.server.seed = 17 + node_id;
  config.server.bandit.policy_kind = kind;
  config.server.bandit.alpha = 1.5;
  config.server.bandit.posterior_scale = 1.25;
  config.server.bandit.policy.fit.forgetting = forgetting;
  config.server.bandit.policy.fit.ridge = 1e-3;
  fleet::FleetNode node(hw::ndp_catalog(), {"num_tasks", "mem_gb"}, config);
  std::vector<serve::ServeObservation> observations;
  for (int i = 0; i < 8; ++i) {
    const double tasks = 20.0 + 5.0 * i + 3.0 * node_id;
    const double mem = 4.0 + (i % 3);
    observations.push_back(
        {0, static_cast<ArmIndex>(i % 3), {tasks, mem}, 4.0 + tasks / 16.0});
  }
  node.observe_batch(observations);
  return node;
}

TEST(SnapshotGolden, FleetDeltaFixturesRoundTripByteIdentical) {
  struct Case {
    const char* file;
    PolicyKind kind;
    double forgetting;
  };
  const std::vector<Case> cases = {
      {"fleet_delta_v1_eps.bwf", PolicyKind::kEpsilonGreedy, 1.0},
      {"fleet_delta_v1_linucb.bwf", PolicyKind::kLinUcb, 1.0},
      {"fleet_delta_v1_lambda.bwf", PolicyKind::kThompson, 0.5},
  };
  for (const Case& c : cases) {
    const std::string fixture = read_file(data_path(c.file));
    ASSERT_FALSE(fixture.empty()) << c.file;
    bool truncated = true;
    const io::FleetDelta delta = io::load_fleet_delta(fixture, &truncated);
    EXPECT_FALSE(truncated) << c.file;
    EXPECT_EQ(delta.sender, 1u) << c.file;
    EXPECT_EQ(delta.sender_incarnation, 1u) << c.file;
    EXPECT_EQ(delta.config.policy, c.kind) << c.file;
    EXPECT_DOUBLE_EQ(delta.config.lambda, c.forgetting) << c.file;
    EXPECT_DOUBLE_EQ(delta.config.ridge, 1e-3) << c.file;
    EXPECT_EQ(delta.config.num_features, 2u) << c.file;
    EXPECT_EQ(delta.config.num_arms, 3u) << c.file;
    // Node 1 after one gossip hop holds its own stream and node 0's.
    EXPECT_EQ(delta.origins.size(), 2u) << c.file;
    EXPECT_EQ(delta.version_vector.size(), 2u) << c.file;
    EXPECT_EQ(io::save_fleet_delta(delta), fixture) << c.file;
    // The pinned bytes stay semantically live: a receiver built with the
    // canonical fixture config must accept and fold every entry.
    fleet::FleetNode receiver = fleet_fixture_node(9, c.kind, c.forgetting);
    const fleet::ApplyResult applied = receiver.apply_delta(delta);
    EXPECT_EQ(applied.applied, 6u) << c.file;  // 2 origins x 3 arms
    EXPECT_TRUE(applied.changed) << c.file;
  }
}

TEST(SnapshotGolden, FleetNodeFixtureRestoresAndRoundTripsByteIdentical) {
  const std::string fixture = read_file(data_path("fleet_node_v1.bwf"));
  ASSERT_FALSE(fixture.empty());
  bool truncated = true;
  const io::FleetNodeState state = io::load_fleet_node(fixture, &truncated);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(state.node, 1u);
  EXPECT_EQ(state.incarnation, 1u);
  EXPECT_EQ(state.config.policy, PolicyKind::kEpsilonGreedy);
  EXPECT_FALSE(state.server_blob.empty());
  EXPECT_EQ(state.origins.size(), 2u);
  EXPECT_EQ(io::save_fleet_node(state), fixture);
  // The snapshot must keep restarting: next incarnation, both origin
  // streams intact (2 nodes x 8 observations).
  const fleet::FleetNode node = fleet::FleetNode::restore(fixture);
  EXPECT_EQ(node.node_id(), 1u);
  EXPECT_EQ(node.incarnation(), 2u);
  EXPECT_EQ(node.total_observations(), 16u);
  EXPECT_EQ(node.num_origins(), 3u);  // restored streams + the fresh self
}

TEST(SnapshotGolden, MigratedServerBaselineKeepsSyncExact) {
  // The restored baseline must thread through the merge algebra: syncing
  // the restored server must not double-count the 12 shared observations.
  const std::string fixture = read_file(data_path("server_state_v2.bw"));
  serve::BanditServer server = serve::BanditServer::load_state(fixture);
  const std::size_t before = server.num_observations();
  server.sync_shards();
  EXPECT_EQ(server.num_observations(), before);
  // Post-sync both replicas serve the identical fused model.
  const core::FeatureVector x = {123.0};
  EXPECT_EQ(server.predictions(0, x), server.predictions(1, x));
}

}  // namespace
}  // namespace bw::core
