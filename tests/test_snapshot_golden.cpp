// Golden-snapshot fixtures: small v1 and v2 `banditware-state` files are
// checked in under tests/data/, and load -> save output is pinned byte-for-
// byte against them. A change to the snapshot writer or readers that alters
// bytes (or silently mis-migrates a legacy v1 file) fails here loudly,
// instead of shipping a format drift that corrupts deployed state files.
//
// Regenerating fixtures after an *intentional* format change: the expected
// bytes are exactly `BanditWare::load_state(<fixture>).save_state()` — see
// the comments on each fixture below for its provenance.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/banditware.hpp"

namespace bw::core {
namespace {

std::string data_path(const std::string& name) {
  return std::string(BW_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(SnapshotGolden, V2StatsFixtureRoundTripsByteIdentical) {
  // Incremental arms (sufficient statistics records). Produced by training
  // the NDP catalog on a short deterministic stream and saving.
  const std::string fixture = read_file(data_path("state_v2_stats.bw"));
  ASSERT_FALSE(fixture.empty());
  const BanditWare bandit = BanditWare::load_state(fixture);
  EXPECT_EQ(bandit.save_state(), fixture);
  EXPECT_EQ(bandit.num_arms(), 3u);
  EXPECT_EQ(bandit.num_observations(), 9u);
}

TEST(SnapshotGolden, V2ExactHistoryFixtureRoundTripsByteIdentical) {
  // exact_history arms (raw observation rows inside a v2 envelope).
  const std::string fixture = read_file(data_path("state_v2_obs.bw"));
  ASSERT_FALSE(fixture.empty());
  const BanditWare bandit = BanditWare::load_state(fixture);
  EXPECT_EQ(bandit.save_state(), fixture);
  EXPECT_TRUE(bandit.config().policy.exact_history);
  EXPECT_EQ(bandit.num_observations(), 6u);
}

TEST(SnapshotGolden, V1FixtureMigratesToPinnedV2Bytes) {
  // Legacy v1 (raw rows, no gpus column, no exact_history flag) must keep
  // loading by replay and re-save as exactly the pinned v2 migration — any
  // drift in the replay or the writer shows up as a byte diff here.
  const std::string fixture = read_file(data_path("state_v1.bw"));
  const std::string expected = read_file(data_path("state_v1_migrated.bw"));
  ASSERT_FALSE(fixture.empty());
  ASSERT_FALSE(expected.empty());
  const BanditWare bandit = BanditWare::load_state(fixture);
  const std::string migrated = bandit.save_state();
  EXPECT_EQ(migrated, expected);
  EXPECT_EQ(migrated.rfind("banditware-state v2\n", 0), 0u);
  // The migration itself must be stable under a second round trip.
  EXPECT_EQ(BanditWare::load_state(migrated).save_state(), migrated);
}

}  // namespace
}  // namespace bw::core
