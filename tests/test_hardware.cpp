// Tests for the hardware model (hardware/spec, catalog, perf_model).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hardware/catalog.hpp"
#include "hardware/perf_model.hpp"
#include "hardware/spec.hpp"

namespace bw::hw {
namespace {

TEST(Spec, ToStringMatchesPaperNotation) {
  const HardwareSpec h0{"H0", 2, 16.0};
  EXPECT_EQ(h0.to_string(), "(2, 16)");
  const HardwareSpec frac{"X", 1, 1.5};
  EXPECT_EQ(frac.to_string(), "(1, 1.5)");
}

TEST(Spec, ParseAcceptsPaperForms) {
  const HardwareSpec a = parse_spec("H1", "(3, 24)");
  EXPECT_EQ(a.cpus, 3);
  EXPECT_EQ(a.memory_gb, 24.0);
  const HardwareSpec b = parse_spec("H2", "4,16");
  EXPECT_EQ(b.cpus, 4);
}

TEST(Spec, ParseRejectsMalformed) {
  EXPECT_THROW(parse_spec("X", "(2)"), ParseError);
  EXPECT_THROW(parse_spec("X", "(2, 16, 3, 4)"), ParseError);
  EXPECT_THROW(parse_spec("X", "(a, b)"), ParseError);
  EXPECT_THROW(parse_spec("X", "(0, 16)"), ParseError);
  EXPECT_THROW(parse_spec("X", "(2, -1)"), ParseError);
  EXPECT_THROW(parse_spec("X", "(2, 16, -1)"), ParseError);
}

TEST(Spec, GpuAwareSpecs) {
  // Paper future work: GPU information in the hardware description.
  const HardwareSpec gpu_node = parse_spec("G1", "(8, 64, 2)");
  EXPECT_EQ(gpu_node.gpus, 2);
  EXPECT_EQ(gpu_node.to_string(), "(8, 64, 2)");
  const HardwareSpec cpu_node = parse_spec("C1", "(8, 64)");
  EXPECT_EQ(cpu_node.gpus, 0);
  EXPECT_EQ(cpu_node.to_string(), "(8, 64)");
  // One GPU outweighs many CPUs in the efficiency ordering by default.
  EXPECT_GT(gpu_node.resource_cost(), cpu_node.resource_cost() + 8.0);
}

TEST(Spec, ResourceCostOrdersNdpCatalogAsExpected) {
  // With default weights: H0=(2,16) < H1=(3,24) < H2=(4,16).
  const HardwareCatalog ndp = ndp_catalog();
  const auto costs = ndp.resource_costs();
  EXPECT_LT(costs[0], costs[1]);
  EXPECT_LT(costs[1], costs[2]);
}

TEST(Spec, CustomWeightsChangeOrdering) {
  ResourceWeights memory_heavy;
  memory_heavy.cpu_weight = 0.0;
  memory_heavy.mem_weight_per_gb = 1.0;
  const HardwareSpec h1{"H1", 3, 24.0};
  const HardwareSpec h2{"H2", 4, 16.0};
  EXPECT_GT(h1.resource_cost(memory_heavy), h2.resource_cost(memory_heavy));
}

TEST(Catalog, AddAndLookup) {
  HardwareCatalog catalog;
  const std::size_t i = catalog.add({"A", 2, 8.0});
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.index_of("A"), std::optional<std::size_t>{0});
  EXPECT_FALSE(catalog.index_of("missing").has_value());
  EXPECT_THROW(catalog[5], InvalidArgument);
}

TEST(Catalog, RejectsDuplicatesAndBadSpecs) {
  HardwareCatalog catalog;
  catalog.add({"A", 2, 8.0});
  EXPECT_THROW(catalog.add({"A", 4, 8.0}), InvalidArgument);
  EXPECT_THROW(catalog.add({"", 4, 8.0}), InvalidArgument);
  EXPECT_THROW(catalog.add({"B", 0, 8.0}), InvalidArgument);
}

TEST(Catalog, EfficiencyOrderIsStableAscending) {
  const HardwareCatalog catalog({{"big", 8, 32.0}, {"small", 1, 4.0}, {"mid", 4, 16.0}});
  const auto order = catalog.efficiency_order();
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Catalog, PaperPresetsHaveDocumentedShapes) {
  EXPECT_EQ(ndp_catalog().size(), 3u);
  EXPECT_EQ(synthetic_cycles_catalog().size(), 4u);
  EXPECT_EQ(matmul_catalog().size(), 5u);
  EXPECT_EQ(ndp_catalog()[0].to_string(), "(2, 16)");
  EXPECT_EQ(ndp_catalog()[1].to_string(), "(3, 24)");
  EXPECT_EQ(ndp_catalog()[2].to_string(), "(4, 16)");
}

TEST(PerfModel, SingleCoreHasUnitSpeedup) {
  const PerfModel perf;
  EXPECT_DOUBLE_EQ(perf.speedup({"one", 1, 4.0}), 1.0);
}

TEST(PerfModel, SpeedupMonotoneButBounded) {
  const PerfModel perf;
  double previous = 0.0;
  for (int c : {1, 2, 4, 8, 16, 32}) {
    const double s = perf.speedup({"x", c, 8.0});
    EXPECT_GT(s, previous);
    previous = s;
  }
  // Amdahl ceiling: 1 / (1 - p).
  const double ceiling = 1.0 / (1.0 - perf.params().parallel_fraction);
  EXPECT_LT(previous, ceiling);
}

TEST(PerfModel, SerialWorkloadIgnoresCores) {
  PerfModelParams params;
  params.parallel_fraction = 0.0;
  const PerfModel perf(params);
  EXPECT_DOUBLE_EQ(perf.speedup({"x", 16, 8.0}), 1.0);
}

TEST(PerfModel, ExecutionSecondsScalesWithWork) {
  const PerfModel perf;
  const HardwareSpec spec{"x", 2, 8.0};
  const double t1 = perf.execution_seconds(100.0, spec);
  const double t2 = perf.execution_seconds(200.0, spec);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
  EXPECT_EQ(perf.execution_seconds(0.0, spec), 0.0);
  EXPECT_THROW(perf.execution_seconds(-1.0, spec), InvalidArgument);
}

TEST(PerfModel, MemoryPressureSlowsExecution) {
  const PerfModel perf;
  const HardwareSpec small{"s", 2, 4.0};
  const double fits = perf.execution_seconds(100.0, small, 2.0);
  const double overflows = perf.execution_seconds(100.0, small, 8.0);
  EXPECT_GT(overflows, fits);
}

TEST(PerfModel, ContentionFreeBelowThreshold) {
  EXPECT_DOUBLE_EQ(PerfModel::contention_inflation(0.0), 1.0);
  EXPECT_DOUBLE_EQ(PerfModel::contention_inflation(0.6), 1.0);
}

TEST(PerfModel, ContentionGrowsAboveThreshold) {
  const double at80 = PerfModel::contention_inflation(0.8);
  const double at100 = PerfModel::contention_inflation(1.0);
  EXPECT_GT(at80, 1.0);
  EXPECT_GT(at100, at80);
}

TEST(PerfModel, RejectsInvalidParams) {
  PerfModelParams params;
  params.parallel_fraction = 1.5;
  EXPECT_THROW(PerfModel{params}, InvalidArgument);
  params.parallel_fraction = 0.5;
  params.base_throughput = 0.0;
  EXPECT_THROW(PerfModel{params}, InvalidArgument);
}

// Property: speedup(c) is within the classical Amdahl bounds for any
// parallel fraction.
class AmdahlProperty : public ::testing::TestWithParam<double> {};

TEST_P(AmdahlProperty, WithinBounds) {
  PerfModelParams params;
  params.parallel_fraction = GetParam();
  params.sync_overhead = 0.0;  // pure Amdahl when overhead-free
  const PerfModel perf(params);
  for (int c : {1, 2, 3, 4, 8, 16}) {
    const double s = perf.speedup({"x", c, 8.0});
    const double amdahl =
        1.0 / ((1.0 - GetParam()) + GetParam() / static_cast<double>(c));
    EXPECT_NEAR(s, amdahl, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, AmdahlProperty,
                         ::testing::Values(0.0, 0.15, 0.5, 0.9, 0.97, 1.0));

}  // namespace
}  // namespace bw::hw
