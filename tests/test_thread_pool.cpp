// Tests for the thread pool (common/thread_pool).

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bw {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRespectsRangeOffsets) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&calls](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(6, 5, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForRethrowsWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("bad index");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SingleWorkerStillCorrect) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex m;
  pool.parallel_for(0, 10, [&](std::size_t i) {
    std::lock_guard lock(m);
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // one worker executes in order
}

// --- contention coverage: the serving engine submits batches to one shared
// --- pool from many request threads at once, so the pool must stay correct
// --- when the submission side itself is parallel.

TEST(ThreadPool, ManyProducersManySmallTasks) {
  ThreadPool pool(4);
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 500;
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &counter] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksPerProducer);
      for (int i = 0; i < kTasksPerProducer; ++i) {
        futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(counter.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPool, ConcurrentParallelForCallsStayIsolated) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr std::size_t kRange = 400;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& caller_hits : hits) {
    caller_hits = std::vector<std::atomic<int>>(kRange);
  }
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      pool.parallel_for(0, kRange, [&hits, c](std::size_t i) {
        hits[c][i].fetch_add(1);
      });
    });
  }
  for (auto& caller : callers) caller.join();
  for (int c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kRange; ++i) EXPECT_EQ(hits[c][i].load(), 1);
  }
}

TEST(ThreadPool, MixedProducersSurviveTaskExceptions) {
  ThreadPool pool(3);
  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 6; ++p) {
    producers.emplace_back([&pool, &ok, &failed, p] {
      for (int i = 0; i < 100; ++i) {
        auto future = pool.submit([p, i]() -> int {
          if ((p + i) % 7 == 0) throw std::runtime_error("injected");
          return i;
        });
        try {
          future.get();
          ok.fetch_add(1);
        } catch (const std::runtime_error&) {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(ok.load() + failed.load(), 600);
  EXPECT_GT(failed.load(), 0);  // the injected failures really propagated
}

TEST(ThreadPool, NestedSubmitFromTaskDoesNotDeadlock) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 7; });
    return inner.get();
  });
  EXPECT_EQ(outer.get(), 7);
}

}  // namespace
}  // namespace bw
