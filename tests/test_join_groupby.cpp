// Tests for join and group-by (dataframe/join, dataframe/groupby) — the
// "Merge" step of paper Fig. 1.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dataframe/groupby.hpp"
#include "dataframe/join.hpp"

namespace bw::df {
namespace {

DataFrame left_frame() {
  DataFrame frame;
  frame.add_column("run_id", Column(std::vector<std::int64_t>{1, 2, 3}));
  frame.add_column("num_tasks", Column(std::vector<std::int64_t>{100, 200, 300}));
  frame.add_column("runtime", Column(std::vector<double>{10.0, 20.0, 30.0}));
  return frame;
}

DataFrame right_frame() {
  DataFrame frame;
  frame.add_column("run_id", Column(std::vector<std::int64_t>{2, 3, 4}));
  frame.add_column("runtime", Column(std::vector<double>{21.0, 31.0, 41.0}));
  return frame;
}

TEST(InnerJoin, KeepsOnlyMatchingKeys) {
  const DataFrame joined = inner_join(left_frame(), right_frame(), "run_id");
  EXPECT_EQ(joined.num_rows(), 2u);
  EXPECT_EQ(joined.column("run_id").ints(), (std::vector<std::int64_t>{2, 3}));
}

TEST(InnerJoin, SuffixesClashingColumns) {
  const DataFrame joined = inner_join(left_frame(), right_frame(), "run_id");
  EXPECT_TRUE(joined.has_column("runtime_x"));
  EXPECT_TRUE(joined.has_column("runtime_y"));
  EXPECT_EQ(joined.column("runtime_x").doubles(), (std::vector<double>{20.0, 30.0}));
  EXPECT_EQ(joined.column("runtime_y").doubles(), (std::vector<double>{21.0, 31.0}));
}

TEST(InnerJoin, NonClashingColumnsKeepNames) {
  const DataFrame joined = inner_join(left_frame(), right_frame(), "run_id");
  EXPECT_TRUE(joined.has_column("num_tasks"));
  EXPECT_EQ(joined.column("num_tasks").ints(), (std::vector<std::int64_t>{200, 300}));
}

TEST(InnerJoin, CustomSuffixes) {
  JoinOptions options;
  options.left_suffix = "_H0";
  options.right_suffix = "_H1";
  const DataFrame joined = inner_join(left_frame(), right_frame(), "run_id", options);
  EXPECT_TRUE(joined.has_column("runtime_H0"));
  EXPECT_TRUE(joined.has_column("runtime_H1"));
}

TEST(InnerJoin, DuplicateKeysProduceCartesianPerKey) {
  DataFrame left;
  left.add_column("k", Column(std::vector<std::int64_t>{1, 1}));
  left.add_column("a", Column(std::vector<std::int64_t>{10, 11}));
  DataFrame right;
  right.add_column("k", Column(std::vector<std::int64_t>{1, 1, 1}));
  right.add_column("b", Column(std::vector<std::int64_t>{20, 21, 22}));
  const DataFrame joined = inner_join(left, right, "k");
  EXPECT_EQ(joined.num_rows(), 6u);  // 2 x 3
}

TEST(InnerJoin, StringKeysWork) {
  DataFrame left;
  left.add_column("name", Column(std::vector<std::string>{"a", "b"}));
  left.add_column("v", Column(std::vector<std::int64_t>{1, 2}));
  DataFrame right;
  right.add_column("name", Column(std::vector<std::string>{"b", "c"}));
  right.add_column("w", Column(std::vector<std::int64_t>{3, 4}));
  const DataFrame joined = inner_join(left, right, "name");
  EXPECT_EQ(joined.num_rows(), 1u);
  EXPECT_EQ(joined.column("name").strings()[0], "b");
}

TEST(InnerJoin, EmptyResultKeepsSchema) {
  DataFrame left;
  left.add_column("k", Column(std::vector<std::int64_t>{1}));
  left.add_column("a", Column(std::vector<std::int64_t>{1}));
  DataFrame right;
  right.add_column("k", Column(std::vector<std::int64_t>{2}));
  right.add_column("b", Column(std::vector<std::int64_t>{2}));
  const DataFrame joined = inner_join(left, right, "k");
  EXPECT_EQ(joined.num_rows(), 0u);
  EXPECT_TRUE(joined.has_column("a"));
  EXPECT_TRUE(joined.has_column("b"));
}

TEST(InnerJoin, ErrorsOnBadKeys) {
  EXPECT_THROW(inner_join(left_frame(), right_frame(), "nope"), InvalidArgument);
  DataFrame right;
  right.add_column("run_id", Column(std::vector<std::string>{"1"}));  // type clash
  right.add_column("x", Column(std::vector<std::int64_t>{5}));
  EXPECT_THROW(inner_join(left_frame(), right, "run_id"), InvalidArgument);
}

// ---- group_by --------------------------------------------------------------

DataFrame runs_frame() {
  DataFrame frame;
  frame.add_column("hw", Column(std::vector<std::string>{"H0", "H1", "H0", "H1", "H0"}));
  frame.add_column("runtime", Column(std::vector<double>{10.0, 20.0, 14.0, 24.0, 12.0}));
  return frame;
}

TEST(GroupBy, MeanPerGroup) {
  const DataFrame grouped =
      group_by(runs_frame(), "hw", {{"runtime", Aggregation::kMean}});
  ASSERT_EQ(grouped.num_rows(), 2u);
  EXPECT_EQ(grouped.column("hw").strings(), (std::vector<std::string>{"H0", "H1"}));
  EXPECT_EQ(grouped.column("runtime_mean").doubles(), (std::vector<double>{12.0, 22.0}));
}

TEST(GroupBy, MinMaxSumCount) {
  const DataFrame grouped = group_by(runs_frame(), "hw",
                                     {{"runtime", Aggregation::kMin},
                                      {"runtime", Aggregation::kMax},
                                      {"runtime", Aggregation::kSum},
                                      {"runtime", Aggregation::kCount}});
  EXPECT_EQ(grouped.column("runtime_min").doubles()[0], 10.0);
  EXPECT_EQ(grouped.column("runtime_max").doubles()[0], 14.0);
  EXPECT_EQ(grouped.column("runtime_sum").doubles()[1], 44.0);
  EXPECT_EQ(grouped.column("runtime_count").doubles()[0], 3.0);
}

TEST(GroupBy, FirstAppearanceOrder) {
  DataFrame frame;
  frame.add_column("k", Column(std::vector<std::string>{"z", "a", "z", "m"}));
  frame.add_column("v", Column(std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  const DataFrame grouped = group_by(frame, "k", {{"v", Aggregation::kCount}});
  EXPECT_EQ(grouped.column("k").strings(), (std::vector<std::string>{"z", "a", "m"}));
}

TEST(GroupBy, IntKeysWork) {
  DataFrame frame;
  frame.add_column("k", Column(std::vector<std::int64_t>{5, 5, 6}));
  frame.add_column("v", Column(std::vector<double>{1.0, 3.0, 10.0}));
  const DataFrame grouped = group_by(frame, "k", {{"v", Aggregation::kMean}});
  EXPECT_EQ(grouped.column("v_mean").doubles(), (std::vector<double>{2.0, 10.0}));
}

TEST(GroupBy, MissingColumnsThrow) {
  EXPECT_THROW(group_by(runs_frame(), "nope", {}), InvalidArgument);
  EXPECT_THROW(group_by(runs_frame(), "hw", {{"nope", Aggregation::kMean}}),
               InvalidArgument);
}

}  // namespace
}  // namespace bw::df
