#pragma once
// Deterministic concurrency harness for the sharded serving engine's async
// cross-shard sync pipeline (tests/test_async_sync.cpp).
//
// Real-thread stress tests (test_serve.cpp) prove the locking is clean, but
// they cannot replay a failing interleaving. This driver replaces threads
// with a virtual clock: every "concurrent" actor — serving workers, the
// background fuser, a snapshotter, an inline-sync antagonist, a lock-free
// reader probing the published snapshots — becomes a step function, and a
// seeded RNG picks which actor advances at each tick.
// All ops run serialized on the calling thread, so one (seed, weights,
// ticks) triple reproduces the exact interleaving every time: same seed ⇒
// byte-identical final snapshot, same decision trace, same regret. The
// fuser actor drives the real pipeline (sync_stage / sync_fuse /
// sync_publish — the same code the background thread runs), one phase per
// activation, so serving ops interleave *between* the phases of a round.

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/tolerant.hpp"
#include "serve/bandit_server.hpp"

namespace bw::serve::testing {

/// Relative frequency of each actor in the schedule (0 disables).
struct ScheduleWeights {
  int serve = 8;        ///< one recommend_batch + observe_batch cycle
  int fuser_step = 4;   ///< advance the async pipeline by one phase
  int inline_sync = 0;  ///< stop-the-world sync_shards() racing the pipeline
  int snapshot = 1;     ///< save_state + load + consistency assertions
  int read = 0;         ///< lock-free recommend_greedy + publication checks
};

struct ScheduleResult {
  std::vector<core::ArmIndex> decisions;  ///< full decision trace, in order
  std::string final_state;   ///< snapshot after quiesce (drain + final sync)
  double mean_regret = 0.0;  ///< chosen minus best runtime, per decision
  /// Same, over non-explored decisions only: measures learned-model quality
  /// without the noise of which arms the ε-schedule happened to explore.
  double greedy_regret = 0.0;
  std::size_t observations = 0;      ///< num_observations() after quiesce
  std::size_t observations_fed = 0;  ///< ground truth the harness fed in
  std::size_t syncs = 0;             ///< completed fusions
  std::size_t abandoned_rounds = 0;  ///< publishes dropped (stale generation)
  std::size_t snapshots_checked = 0;
  std::size_t inconsistent_snapshots = 0;  ///< mid-sync cuts that failed checks
  // Read actor (lock-free publication path):
  std::size_t read_decisions = 0;     ///< recommend_greedy calls issued
  std::size_t read_checks = 0;        ///< reads cross-checked against live model
  std::size_t read_mismatches = 0;    ///< published decision != live-model decision
  std::size_t epoch_regressions = 0;  ///< a shard's published epoch went backwards
};

/// Virtual-clock schedule driver. The server must be configured with
/// sync_every = 0: the harness owns the pipeline (the background fuser
/// thread only spawns via request_sync, which the harness never calls), so
/// it is the single driver the stepwise API requires.
class ScheduleDriver {
 public:
  ScheduleDriver(BanditServerConfig config, hw::HardwareCatalog catalog,
                 std::size_t batch, std::size_t ticks, ScheduleWeights weights = {})
      : config_(std::move(config)),
        catalog_(std::move(catalog)),
        batch_(batch),
        ticks_(ticks),
        weights_(weights) {
    BW_CHECK_MSG(config_.sync_every == 0,
                 "ScheduleDriver drives the pipeline itself; set sync_every = 0");
  }

  /// Deterministic runtime model shared with the regret accounting: bigger
  /// workflows on fewer CPUs run longer.
  static double synthetic_runtime(const hw::HardwareSpec& spec, double num_tasks) {
    return 5.0 + num_tasks / spec.cpus;
  }

  ScheduleResult run(std::uint64_t seed) const {
    BanditServer server(catalog_, {"num_tasks"}, config_);
    Rng schedule_rng(seed);
    Rng workload_rng(schedule_rng.child_seed(1));
    ScheduleResult result;
    double regret = 0.0;
    double greedy_regret = 0.0;
    std::size_t greedy_decisions = 0;

    // Fuser actor state machine: which phase the in-flight round is in.
    enum class Phase { kStage, kFuse, kPublish };
    Phase phase = Phase::kStage;

    // Read actor state: the highest published epoch each shard has shown a
    // reader, for the monotonicity check.
    std::vector<std::uint64_t> last_epoch(server.num_shards(), 0);

    const int total_weight = weights_.serve + weights_.fuser_step +
                             weights_.inline_sync + weights_.snapshot + weights_.read;
    BW_CHECK_MSG(total_weight > 0, "ScheduleDriver needs at least one actor");

    for (std::size_t tick = 0; tick < ticks_; ++tick) {
      int pick = static_cast<int>(
          schedule_rng.uniform_int(0, static_cast<std::int64_t>(total_weight) - 1));
      if (pick < weights_.serve) {
        serve_one_batch(server, workload_rng, regret, greedy_regret,
                        greedy_decisions, result);
        continue;
      }
      pick -= weights_.serve;
      if (pick < weights_.fuser_step) {
        if (server.num_shards() > 1) {
          switch (phase) {
            case Phase::kStage:
              if (server.sync_stage()) phase = Phase::kFuse;
              break;
            case Phase::kFuse:
              server.sync_fuse();
              phase = Phase::kPublish;
              break;
            case Phase::kPublish:
              if (!server.sync_publish()) ++result.abandoned_rounds;
              phase = Phase::kStage;
              break;
          }
        }
        continue;
      }
      pick -= weights_.fuser_step;
      if (pick < weights_.inline_sync) {
        server.sync_shards();
        continue;
      }
      pick -= weights_.inline_sync;
      if (pick < weights_.snapshot) {
        check_snapshot(server, result);
        continue;
      }
      read_one(server, workload_rng, last_epoch, result);
    }

    // Quiesce: finish the in-flight round (published or abandoned — either
    // way the evidence is in the shards), then fold every remaining
    // per-shard delta with one inline sync.
    if (phase == Phase::kFuse) {
      server.sync_fuse();
      phase = Phase::kPublish;
    }
    if (phase == Phase::kPublish) {
      if (!server.sync_publish()) ++result.abandoned_rounds;
    }
    server.sync_shards();

    result.final_state = server.save_state();
    result.observations = server.num_observations();
    result.syncs = server.sync_count();
    result.mean_regret =
        result.decisions.empty()
            ? 0.0
            : regret / static_cast<double>(result.decisions.size());
    result.greedy_regret =
        greedy_decisions == 0
            ? 0.0
            : greedy_regret / static_cast<double>(greedy_decisions);
    return result;
  }

 private:
  void serve_one_batch(BanditServer& server, Rng& workload_rng, double& regret,
                       double& greedy_regret, std::size_t& greedy_decisions,
                       ScheduleResult& result) const {
    std::vector<core::FeatureVector> xs;
    xs.reserve(batch_);
    for (std::size_t i = 0; i < batch_; ++i) {
      xs.push_back({static_cast<double>(workload_rng.uniform_int(20, 500))});
    }
    const auto decisions = server.recommend_batch(xs);
    std::vector<ServeObservation> observations;
    observations.reserve(batch_);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double runtime = synthetic_runtime(*decisions[i].spec, xs[i][0]);
      double best = runtime;
      for (std::size_t arm = 0; arm < catalog_.size(); ++arm) {
        best = std::min(best, synthetic_runtime(catalog_[arm], xs[i][0]));
      }
      regret += runtime - best;
      if (!decisions[i].explored) {
        greedy_regret += runtime - best;
        ++greedy_decisions;
      }
      result.decisions.push_back(decisions[i].arm);
      observations.push_back({decisions[i].shard, decisions[i].arm, xs[i], runtime});
    }
    server.observe_batch(observations);
    result.observations_fed += observations.size();
  }

  /// One lock-free read plus the two publication invariants. The harness is
  /// serialized, so every writer has republished before this actor runs:
  /// the published snapshot must decide exactly like the live (locked)
  /// model, and no shard's epoch may ever move backwards. A reader that
  /// caught a half-published generation would fail the first check; a torn
  /// or reordered swap would fail the second.
  void read_one(BanditServer& server, Rng& workload_rng,
                std::vector<std::uint64_t>& last_epoch, ScheduleResult& result) const {
    const core::FeatureVector x{
        static_cast<double>(workload_rng.uniform_int(20, 500))};
    const ServeDecision decision = server.recommend_greedy(x);
    ++result.read_decisions;

    const std::uint64_t epoch = server.published_epoch(decision.shard);
    if (epoch < last_epoch[decision.shard]) ++result.epoch_regressions;
    last_epoch[decision.shard] = std::max(last_epoch[decision.shard], epoch);

    ++result.read_checks;
    const std::vector<double> live = server.predictions(decision.shard, x);
    const core::TolerantChoice expected = core::tolerant_select(
        live, catalog_.resource_costs(config_.bandit.policy.resource_weights),
        config_.bandit.policy.tolerance);
    if (expected.arm != decision.arm ||
        expected.predicted_runtime != decision.predicted_runtime_s) {
      ++result.read_mismatches;
    }
  }

  /// A snapshot taken at any tick — including between stage/fuse/publish —
  /// must be a loadable, byte-stable, consistent generation.
  void check_snapshot(const BanditServer& server, ScheduleResult& result) const {
    ++result.snapshots_checked;
    const std::string saved = server.save_state();
    try {
      BanditServer restored = BanditServer::load_state(saved);
      if (restored.save_state() != saved ||
          restored.num_observations() != server.num_observations()) {
        ++result.inconsistent_snapshots;
      }
    } catch (const bw::Error&) {
      ++result.inconsistent_snapshots;
    }
  }

  BanditServerConfig config_;
  hw::HardwareCatalog catalog_;
  std::size_t batch_;
  std::size_t ticks_;
  ScheduleWeights weights_;
};

}  // namespace bw::serve::testing
