// Tests for JSON parsing, polygon geometry and burn units (geo/).

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "geo/burn_units.hpp"
#include "geo/geojson.hpp"
#include "geo/json.hpp"
#include "geo/polygon.hpp"

namespace bw::geo {
namespace {

// ---- JSON -----------------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(parse_json("-1e3").as_number(), -1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v = parse_json(R"({"a": [1, 2, {"b": "c"}], "d": {}})");
  EXPECT_TRUE(v.is_object());
  const auto& arr = v.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[2].at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").as_object().empty());
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("zzz"));
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(parse_json(R"("q\"q")").as_string(), "q\"q");
  EXPECT_EQ(parse_json(R"("A")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("back\\slash")").as_string(), "back\\slash");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), ParseError);
  EXPECT_THROW(parse_json("{"), ParseError);
  EXPECT_THROW(parse_json("[1, ]"), ParseError);
  EXPECT_THROW(parse_json("{\"a\" 1}"), ParseError);
  EXPECT_THROW(parse_json("{1: 2}"), ParseError);
  EXPECT_THROW(parse_json("tru"), ParseError);
  EXPECT_THROW(parse_json("\"unterminated"), ParseError);
  EXPECT_THROW(parse_json("1 2"), ParseError);  // trailing garbage
  EXPECT_THROW(parse_json(R"("bad\x")"), ParseError);
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW(parse_json(deep), ParseError);
}

TEST(Json, TypeMismatchAccessThrows) {
  const JsonValue v = parse_json("42");
  EXPECT_THROW(v.as_string(), ParseError);
  EXPECT_THROW(v.as_array(), ParseError);
  EXPECT_THROW(v.at("k"), ParseError);
  EXPECT_THROW(parse_json("{}").at("missing"), ParseError);
}

// ---- polygon geometry -------------------------------------------------------

// A 0.01° x 0.01° square at the equator is ~1.1129 km on each side.
Polygon unit_square_at_equator() {
  return Polygon({{0.0, 0.0}, {0.01, 0.0}, {0.01, 0.01}, {0.0, 0.01}});
}

TEST(Polygon, RectangleAreaMatchesAnalytic) {
  const Polygon square = unit_square_at_equator();
  const double side_m = 0.01 * meters_per_degree_lat();
  EXPECT_NEAR(square.area_m2(), side_m * side_m, side_m * side_m * 0.001);
}

TEST(Polygon, HolesSubtract) {
  // Outer square with an inner square hole of 1/4 the side length.
  const Polygon with_hole(
      {{0.0, 0.0}, {0.01, 0.0}, {0.01, 0.01}, {0.0, 0.01}},
      {{{0.004, 0.004}, {0.0065, 0.004}, {0.0065, 0.0065}, {0.004, 0.0065}}});
  const Polygon solid = unit_square_at_equator();
  EXPECT_LT(with_hole.area_m2(), solid.area_m2());
  EXPECT_NEAR(with_hole.area_m2() / solid.area_m2(), 1.0 - 0.0625, 0.01);
}

TEST(Polygon, ClosedAndOpenRingsEquivalent) {
  const Polygon open({{0.0, 0.0}, {0.01, 0.0}, {0.01, 0.01}});
  const Polygon closed({{0.0, 0.0}, {0.01, 0.0}, {0.01, 0.01}, {0.0, 0.0}});
  EXPECT_NEAR(open.area_m2(), closed.area_m2(), 1e-6);
}

TEST(Polygon, WindingOrderDoesNotFlipSign) {
  const Polygon ccw({{0.0, 0.0}, {0.01, 0.0}, {0.01, 0.01}});
  const Polygon cw({{0.0, 0.0}, {0.01, 0.01}, {0.01, 0.0}});
  EXPECT_NEAR(ccw.area_m2(), cw.area_m2(), 1e-6);
  EXPECT_GT(ccw.area_m2(), 0.0);
}

TEST(Polygon, RejectsDegenerateRings) {
  EXPECT_THROW(Polygon({{0.0, 0.0}, {1.0, 1.0}}), InvalidArgument);
  // A "triangle" that closes immediately: only 2 distinct points.
  EXPECT_THROW(Polygon({{0.0, 0.0}, {1.0, 1.0}, {0.0, 0.0}}), InvalidArgument);
}

TEST(Polygon, BoundingBoxAndContains) {
  const Polygon square = unit_square_at_equator();
  const BoundingBox box = square.bounding_box();
  EXPECT_DOUBLE_EQ(box.min_lon, 0.0);
  EXPECT_DOUBLE_EQ(box.max_lat, 0.01);
  EXPECT_GT(box.width_m(), 1000.0);
  EXPECT_TRUE(square.contains({0.005, 0.005}));
  EXPECT_FALSE(square.contains({0.02, 0.005}));
}

TEST(Polygon, MetersPerDegreeShrinkWithLatitude) {
  EXPECT_GT(meters_per_degree_lon(0.0), meters_per_degree_lon(45.0));
  EXPECT_NEAR(meters_per_degree_lon(60.0), meters_per_degree_lat() * 0.5, 1.0);
}

// ---- GeoJSON ------------------------------------------------------------------

TEST(GeoJson, ParsesBarePolygon) {
  const auto polys = parse_geojson_polygons(
      R"({"type": "Polygon", "coordinates": [[[0,0],[0.01,0],[0.01,0.01],[0,0]]]})");
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_GT(polys[0].area_m2(), 0.0);
}

TEST(GeoJson, ParsesFeatureAndCollection) {
  const std::string feature =
      R"({"type": "Feature", "properties": {},
          "geometry": {"type": "Polygon", "coordinates": [[[0,0],[0.01,0],[0,0.01]]]}})";
  EXPECT_EQ(parse_geojson_polygons(feature).size(), 1u);
  const std::string collection =
      R"({"type": "FeatureCollection", "features": [)" + feature + "," + feature + "]}";
  EXPECT_EQ(parse_geojson_polygons(collection).size(), 2u);
}

TEST(GeoJson, MultiPolygonYieldsParts) {
  const std::string doc =
      R"({"type": "MultiPolygon", "coordinates":
          [[[[0,0],[0.01,0],[0,0.01]]], [[[1,1],[1.01,1],[1,1.01]]]]})";
  EXPECT_EQ(parse_geojson_polygons(doc).size(), 2u);
}

TEST(GeoJson, RejectsUnsupportedGeometry) {
  EXPECT_THROW(parse_geojson_polygons(R"({"type": "Point", "coordinates": [0,0]})"),
               ParseError);
  EXPECT_THROW(parse_geojson_polygons(R"({"type": "Polygon", "coordinates": []})"),
               ParseError);
}

TEST(GeoJson, FeatureRoundTrip) {
  const Polygon original({{-116.6, 34.4}, {-116.59, 34.4}, {-116.59, 34.41}});
  const std::string doc = to_geojson_feature(original, "test_unit");
  const Polygon parsed = parse_geojson_polygon(doc);
  EXPECT_NEAR(parsed.area_m2(), original.area_m2(), original.area_m2() * 1e-9);
}

// ---- burn units -----------------------------------------------------------------

TEST(BurnUnits, SixBuiltinsCoverPaperAreaRange) {
  const auto& units = builtin_burn_units();
  ASSERT_EQ(units.size(), 6u);
  // Paper Fig. 6 x-axis: 1M to 2.5M square meters.
  for (const auto& unit : units) {
    EXPECT_GE(unit.area_m2(), 1.0e6);
    EXPECT_LE(unit.area_m2(), 2.55e6);
  }
  // Ordered by ascending area.
  for (std::size_t i = 1; i < units.size(); ++i) {
    EXPECT_GT(units[i].area_m2(), units[i - 1].area_m2());
  }
}

TEST(BurnUnits, AreasMatchConstructionWithinOnePercent) {
  const std::vector<double> expected = {1.05e6, 1.30e6, 1.60e6, 1.90e6, 2.20e6, 2.50e6};
  const auto& units = builtin_burn_units();
  for (std::size_t i = 0; i < units.size(); ++i) {
    EXPECT_NEAR(units[i].area_m2(), expected[i], expected[i] * 0.01) << units[i].name;
  }
}

TEST(BurnUnits, GeojsonDocumentsParseBack) {
  for (const auto& unit : builtin_burn_units()) {
    const Polygon parsed = parse_geojson_polygon(unit.geojson);
    EXPECT_NEAR(parsed.area_m2(), unit.area_m2(), unit.area_m2() * 1e-6) << unit.name;
  }
}

TEST(BurnUnits, LookupByName) {
  EXPECT_EQ(burn_unit_by_name("pine_flat").name, "pine_flat");
  EXPECT_THROW(burn_unit_by_name("atlantis"), InvalidArgument);
}

}  // namespace
}  // namespace bw::geo
