// Failure injection across module boundaries: feeding malformed, corrupt
// or adversarial inputs through the public APIs must produce typed
// exceptions (never UB, never silent garbage).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "apps/cycles.hpp"
#include "common/error.hpp"
#include "core/banditware.hpp"
#include "core/evaluator.hpp"
#include "dataframe/csv.hpp"
#include "experiments/datasets.hpp"
#include "geo/geojson.hpp"

namespace bw {
namespace {

// ---- non-finite values at every entry point ---------------------------------

TEST(FailureInjection, NanFeaturesRejectedByBanditWare) {
  core::BanditWare bandit(hw::ndp_catalog(), {"a", "b"}, {});
  const double nan = std::nan("");
  EXPECT_THROW(bandit.observe(0, {nan, 1.0}, 10.0), InvalidArgument);
  EXPECT_THROW(bandit.observe(0, {1.0, 1.0}, nan), InvalidArgument);
  EXPECT_THROW(bandit.observe(0, {1.0, 1.0}, INFINITY), InvalidArgument);
}

TEST(FailureInjection, NonFiniteRuntimesRejectedByRunTable) {
  linalg::Matrix features(2, 1, 1.0);
  linalg::Matrix runtimes(2, 1, 1.0);
  runtimes(1, 0) = std::numeric_limits<double>::infinity();
  EXPECT_THROW(core::RunTable({"x"}, features, runtimes,
                              hw::HardwareCatalog({{"A", 1, 4.0}})),
               InvalidArgument);
}

TEST(FailureInjection, NanInCsvStaysStringTyped) {
  // "nan" strings must not silently become numeric columns.
  const df::DataFrame frame = df::read_csv_string("v\nnan\n1.5\n");
  // strtod accepts "nan" — the column parses as double; the pipeline must
  // then reject it at the RunTable boundary rather than propagate NaN.
  if (frame.column("v").type() == df::ColumnType::kDouble) {
    linalg::Matrix features(2, 1);
    features(0, 0) = frame.column("v").doubles()[0];
    features(1, 0) = frame.column("v").doubles()[1];
    linalg::Matrix runtimes(2, 1, 1.0);
    EXPECT_THROW(core::RunTable({"v"}, features, runtimes,
                                hw::HardwareCatalog({{"A", 1, 4.0}})),
                 InvalidArgument);
  }
}

// ---- corrupt pipeline inputs ---------------------------------------------------

TEST(FailureInjection, MergeRejectsFramesMissingColumns) {
  hw::HardwareCatalog catalog({{"A", 1, 4.0}});
  std::vector<df::DataFrame> frames(1);
  frames[0].add_column("run_id", df::Column(std::vector<std::int64_t>{0}));
  // No runtime column at all.
  EXPECT_THROW(exp::merge_frames_to_table(frames, "run_id", {}, catalog),
               InvalidArgument);
}

TEST(FailureInjection, MergeRejectsDisjointRunIds) {
  hw::HardwareCatalog catalog({{"A", 1, 4.0}, {"B", 2, 8.0}});
  std::vector<df::DataFrame> frames(2);
  frames[0].add_column("run_id", df::Column(std::vector<std::int64_t>{0}));
  frames[0].add_column("runtime", df::Column(std::vector<double>{1.0}));
  frames[1].add_column("run_id", df::Column(std::vector<std::int64_t>{99}));
  frames[1].add_column("runtime", df::Column(std::vector<double>{2.0}));
  // Inner join yields zero groups -> typed error, not an empty table.
  EXPECT_THROW(exp::merge_frames_to_table(frames, "run_id", {}, catalog), Error);
}

TEST(FailureInjection, CsvBinaryGarbage) {
  const std::string garbage("\x01\x02,\x03\n\xff\xfe,\x00x", 14);
  // Bytes are data, not structure: parsing must not crash, and the header
  // must round-trip as strings.
  const df::DataFrame frame = df::read_csv_string(garbage);
  EXPECT_EQ(frame.num_cols(), 2u);
}

TEST(FailureInjection, GeoJsonWithWrongShapes) {
  EXPECT_THROW(geo::parse_geojson_polygons(R"({"type": "Polygon"})"), ParseError);
  EXPECT_THROW(geo::parse_geojson_polygons(
                   R"({"type": "Polygon", "coordinates": [[[1], [2], [3]]]})"),
               ParseError);
  EXPECT_THROW(geo::parse_geojson_polygons(
                   R"({"type": "FeatureCollection", "features": []})"),
               ParseError);
  // Degenerate polygon: two distinct points only.
  EXPECT_THROW(geo::parse_geojson_polygons(
                   R"({"type": "Polygon", "coordinates": [[[0,0],[1,1],[0,0]]]})"),
               Error);
}

// ---- corrupted persistent state -------------------------------------------------

core::BanditWare trained_bandit() {
  core::BanditWare bandit(hw::ndp_catalog(), {"x"}, {});
  Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    const core::FeatureVector x = {static_cast<double>(i)};
    const auto decision = bandit.next(x, rng);
    bandit.observe(decision.arm, x, 10.0 * x[0] + 1.0);
  }
  return bandit;
}

TEST(FailureInjection, StateWithFlippedHeaderRejected) {
  std::string snapshot = trained_bandit().save_state();
  snapshot[0] = 'X';
  EXPECT_THROW(core::BanditWare::load_state(snapshot), ParseError);
}

TEST(FailureInjection, StateWithNegativeArmCountRejected) {
  std::string snapshot = trained_bandit().save_state();
  const auto pos = snapshot.find("arms 3");
  ASSERT_NE(pos, std::string::npos);
  snapshot.replace(pos, 6, "arms 0");
  EXPECT_THROW(core::BanditWare::load_state(snapshot), ParseError);
}

TEST(FailureInjection, StateWithTruncatedTailRejected) {
  const std::string snapshot = trained_bandit().save_state();
  for (std::size_t keep : {snapshot.size() / 4, snapshot.size() / 2}) {
    EXPECT_THROW(core::BanditWare::load_state(snapshot.substr(0, keep)), ParseError)
        << "kept " << keep << " bytes";
  }
}

TEST(FailureInjection, StateSurvivesWhitespaceTail) {
  // Trailing newlines are not corruption.
  const std::string snapshot = trained_bandit().save_state() + "\n\n";
  EXPECT_NO_THROW(core::BanditWare::load_state(snapshot));
}

// ---- evaluator misuse --------------------------------------------------------------

TEST(FailureInjection, EvaluatorRejectsForeignPolicy) {
  const exp::CyclesDataset dataset = exp::build_cycles_dataset(10, 1);
  core::DecayingEpsilonGreedy two_arms(hw::HardwareCatalog({{"A", 1, 1.0}, {"B", 2, 2.0}}),
                                       1, {});
  core::ReplayConfig config;
  EXPECT_THROW(core::replay(two_arms, dataset.table, config), InvalidArgument);
}

TEST(FailureInjection, RecommendFunctionReturningBadArmIsCaught) {
  const exp::CyclesDataset dataset = exp::build_cycles_dataset(5, 2);
  const auto predict = [](core::ArmIndex, const core::FeatureVector&) { return 0.0; };
  const auto bad_recommend = [](const core::FeatureVector&) {
    return core::ArmIndex{999};
  };
  EXPECT_THROW(core::evaluate_on_table(dataset.table, predict, bad_recommend, {}),
               InvalidArgument);
}

// ---- hardware spec fuzz -------------------------------------------------------------

TEST(FailureInjection, SpecParserSurvivesFuzzInputs) {
  const char* inputs[] = {"",       "()",     "(,)",      ",",     "(2,,16)",
                          "(2 16)", "(1e9,16)", "2,16,", "(2;16)", "(2,16,3,4)"};
  for (const char* input : inputs) {
    EXPECT_THROW(hw::parse_spec("X", input), ParseError) << "input: " << input;
  }
}

TEST(FailureInjection, SpecParserAcceptsDecorationVariants) {
  // Parentheses and whitespace are decoration, not structure.
  EXPECT_EQ(hw::parse_spec("X", " ( 2 , 16 ) ").cpus, 2);
  EXPECT_EQ(hw::parse_spec("X", "2,16").memory_gb, 16.0);
  EXPECT_EQ(hw::parse_spec("X", "((2,16))").cpus, 2);
}

}  // namespace
}  // namespace bw
