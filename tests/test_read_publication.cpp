// The lock-free read path: every shard publishes its greedy serving surface
// as an immutable FrozenModel behind an atomically-swapped shared_ptr, and
// pure-exploitation recommends are a wait-free pointer load + predict. These
// tests pin the contract from both ends:
//
//   * equivalence — a frozen decision is byte-identical to the decision the
//     live locked model makes (per policy kind, before and after training);
//   * freshness — every writer (observe_one, observe_batch, inline sync)
//     republishes before releasing the shard lock, so the snapshot never
//     lags the live model at a quiescent point;
//   * structural sharing — refreeze reuses the untouched arms' nodes (pinned
//     by pointer identity) and the shared resource-cost table;
//   * concurrency — real reader/writer/syncer threads race freely (the TSan
//     CI job runs this file); readers assert per-shard epoch monotonicity.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/banditware.hpp"
#include "core/frozen_model.hpp"
#include "core/tolerant.hpp"
#include "hardware/catalog.hpp"
#include "serve/bandit_server.hpp"

namespace bw::serve {
namespace {

core::FeatureVector features_for(double num_tasks) { return {num_tasks}; }

double synthetic_runtime(const hw::HardwareSpec& spec, double num_tasks) {
  return 5.0 + num_tasks / spec.cpus;
}

BanditServerConfig serving_config(
    std::size_t shards, core::PolicyKind kind = core::PolicyKind::kEpsilonGreedy) {
  BanditServerConfig config;
  config.num_shards = shards;
  config.sharding = ShardingPolicy::kFeatureHash;
  config.seed = 42;
  config.explore = false;
  config.bandit.policy_kind = kind;
  return config;
}

/// Trains `n` deterministic observations through every shard.
void train(BanditServer& server, const hw::HardwareCatalog& catalog, int n,
           double offset = 0.0) {
  for (int i = 0; i < n; ++i) {
    const double tasks = 25.0 + 13.0 * i + offset;
    const auto x = features_for(tasks);
    const auto arm = static_cast<core::ArmIndex>(i % catalog.size());
    server.observe_one({server.shard_of(x), arm, x,
                        synthetic_runtime(catalog[arm], tasks)});
  }
}

/// The reference decision: tolerant-greedy recomputed from the live locked
/// model's predictions — what a shared-lock recommend would have returned.
core::TolerantChoice live_choice(const BanditServer& server,
                                 const hw::HardwareCatalog& catalog,
                                 const BanditServerConfig& config, std::size_t shard,
                                 const core::FeatureVector& x) {
  return core::tolerant_select(
      server.predictions(shard, x),
      catalog.resource_costs(config.bandit.policy.resource_weights),
      config.bandit.policy.tolerance);
}

TEST(ReadPublication, FrozenDecisionMatchesLiveModelBitForBit) {
  // Across policy kinds and training depths, recommend_greedy (the frozen
  // path) must agree with the live locked model exactly — same arm, same
  // predicted runtime double.
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  for (const core::PolicyKind kind :
       {core::PolicyKind::kEpsilonGreedy, core::PolicyKind::kLinUcb,
        core::PolicyKind::kThompson}) {
    const BanditServerConfig config = serving_config(3, kind);
    BanditServer server(catalog, {"num_tasks"}, config);
    for (const int rounds : {0, 5, 40}) {
      train(server, catalog, rounds, 0.25 * rounds);
      for (double tasks = 20.0; tasks <= 500.0; tasks += 31.0) {
        const auto x = features_for(tasks);
        const ServeDecision decision = server.recommend_greedy(x);
        const core::TolerantChoice expected =
            live_choice(server, catalog, config, decision.shard, x);
        EXPECT_EQ(decision.arm, expected.arm) << "tasks=" << tasks;
        EXPECT_EQ(decision.predicted_runtime_s, expected.predicted_runtime)
            << "tasks=" << tasks;
        EXPECT_FALSE(decision.explored);
        ASSERT_NE(decision.spec, nullptr);
        EXPECT_EQ(decision.spec->name, catalog[decision.arm].name);
      }
    }
  }
}

TEST(ReadPublication, RecommendOneAndBatchUseThePublishedPath) {
  // With explore off, recommend_one and recommend_batch must route through
  // the same snapshot recommend_greedy reads: all three agree per input.
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  BanditServer server(catalog, {"num_tasks"}, serving_config(4));
  train(server, catalog, 60);
  std::vector<core::FeatureVector> xs;
  for (double tasks = 20.0; tasks <= 500.0; tasks += 17.0) {
    xs.push_back(features_for(tasks));
  }
  const auto batch = server.recommend_batch(xs);
  ASSERT_EQ(batch.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const ServeDecision greedy = server.recommend_greedy(xs[i]);
    const ServeDecision one = server.recommend_one(xs[i]);
    EXPECT_EQ(batch[i].arm, greedy.arm);
    EXPECT_EQ(batch[i].predicted_runtime_s, greedy.predicted_runtime_s);
    EXPECT_EQ(batch[i].shard, greedy.shard);
    EXPECT_EQ(one.arm, greedy.arm);
    EXPECT_EQ(one.predicted_runtime_s, greedy.predicted_runtime_s);
  }
}

TEST(ReadPublication, EveryWriterRepublishesBeforeReleasingTheLock) {
  // observe_one, observe_batch, and sync_shards each leave the published
  // snapshot agreeing with the live model and bump the shard's epoch.
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  const BanditServerConfig config = serving_config(2);
  BanditServer server(catalog, {"num_tasks"}, config);
  const auto x = features_for(120.0);
  const std::size_t shard = server.shard_of(x);
  std::uint64_t epoch = server.published_epoch(shard);

  server.observe_one({shard, 0, x, synthetic_runtime(catalog[0], 120.0)});
  EXPECT_GT(server.published_epoch(shard), epoch);
  epoch = server.published_epoch(shard);
  {
    const ServeDecision decision = server.recommend_greedy(x);
    const auto expected = live_choice(server, catalog, config, shard, x);
    EXPECT_EQ(decision.arm, expected.arm);
    EXPECT_EQ(decision.predicted_runtime_s, expected.predicted_runtime);
  }

  std::vector<ServeObservation> batch;
  for (int i = 0; i < 12; ++i) {
    const double tasks = 40.0 + 9.0 * i;
    const auto bx = features_for(tasks);
    const auto arm = static_cast<core::ArmIndex>(i % catalog.size());
    batch.push_back({server.shard_of(bx), arm, bx,
                     synthetic_runtime(catalog[arm], tasks)});
  }
  server.observe_batch(batch);
  EXPECT_GT(server.published_epoch(shard), epoch);
  epoch = server.published_epoch(shard);
  {
    const ServeDecision decision = server.recommend_greedy(x);
    const auto expected = live_choice(server, catalog, config, shard, x);
    EXPECT_EQ(decision.arm, expected.arm);
    EXPECT_EQ(decision.predicted_runtime_s, expected.predicted_runtime);
  }

  server.sync_shards();
  EXPECT_GT(server.published_epoch(shard), epoch);
  // After a sync every shard serves the fused model: published snapshots
  // agree with the (identical) live models on both shards.
  for (std::size_t s = 0; s < server.num_shards(); ++s) {
    const auto model = server.published_model(s);
    const auto expected = live_choice(server, catalog, config, s, x);
    const auto frozen = model->recommend_choice(x);
    EXPECT_EQ(frozen.arm, expected.arm) << "shard=" << s;
    EXPECT_EQ(frozen.predicted_runtime, expected.predicted_runtime) << "shard=" << s;
  }
}

TEST(ReadPublication, RefreezeSharesUntouchedArmNodes) {
  // The structural-sharing contract, pinned by pointer identity: an observe
  // batch touching one arm must republish a snapshot that allocates a new
  // node for that arm only, sharing every other node and the resource-cost
  // table with the previous snapshot.
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  BanditServer server(catalog, {"num_tasks"}, serving_config(1));
  train(server, catalog, 30);
  const auto before = server.published_model(0);

  const auto x = features_for(77.0);
  const core::ArmIndex dirty = 1;
  server.observe_one({0, dirty, x, synthetic_runtime(catalog[dirty], 77.0)});
  const auto after = server.published_model(0);

  ASSERT_NE(before, after);
  EXPECT_EQ(after->epoch(), before->epoch() + 1);
  EXPECT_EQ(after->shared_resource_costs(), before->shared_resource_costs());
  for (core::ArmIndex arm = 0; arm < before->num_arms(); ++arm) {
    if (arm == dirty) {
      EXPECT_NE(after->arm_node(arm), before->arm_node(arm));
    } else {
      EXPECT_EQ(after->arm_node(arm), before->arm_node(arm)) << "arm=" << arm;
    }
  }
}

TEST(ReadPublication, SnapshotIsImmutableAfterSwap) {
  // A reader holding the old snapshot keeps deciding from it unchanged
  // while writers republish underneath — the RCU guarantee.
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  BanditServer server(catalog, {"num_tasks"}, serving_config(1));
  train(server, catalog, 30);
  const auto held = server.published_model(0);
  const auto x = features_for(200.0);
  const auto before = held->recommend_choice(x);
  train(server, catalog, 50, 3.0);  // heavy churn republishes many times
  const auto after = held->recommend_choice(x);
  EXPECT_EQ(before.arm, after.arm);
  EXPECT_EQ(before.predicted_runtime, after.predicted_runtime);
  EXPECT_GT(server.published_epoch(0), held->epoch());
}

TEST(ReadPublication, FreezeValidatesShape) {
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  core::BanditWare small(catalog, {"num_tasks"});
  core::BanditWare wide(catalog, {"num_tasks", "gb"});
  const auto snapshot = small.freeze(1);
  const core::ArmIndex dirty[] = {0};
  EXPECT_THROW((void)wide.refreeze(*snapshot, dirty, 2), bw::InvalidArgument);
  const core::ArmIndex out_of_range[] = {static_cast<core::ArmIndex>(catalog.size())};
  EXPECT_THROW((void)small.refreeze(*snapshot, out_of_range, 2), bw::InvalidArgument);
}

TEST(ReadPublication, ConcurrentReadersNeverSeeEpochsMoveBackwards) {
  // Real threads, real races: readers hammer the lock-free path while
  // writers observe and a syncer forces full republishes. Run under TSan in
  // CI. Each reader asserts per-shard epoch monotonicity — the one ordering
  // guarantee the protocol makes to a wait-free reader.
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  const BanditServerConfig config = serving_config(2);
  BanditServer server(catalog, {"num_tasks"}, config);
  train(server, catalog, 20);

  constexpr int kReaders = 3;
  constexpr int kWriters = 2;
  constexpr int kReadsPerReader = 2000;
  constexpr int kWritesPerWriter = 400;
  std::atomic<bool> start{false};
  std::atomic<int> epoch_regressions{0};

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      while (!start.load(std::memory_order_acquire)) {
      }
      std::vector<std::uint64_t> last(server.num_shards(), 0);
      for (int i = 0; i < kReadsPerReader; ++i) {
        const auto x = features_for(20.0 + ((r * 131 + i * 17) % 480));
        const ServeDecision decision = server.recommend_greedy(x);
        const auto model = server.published_model(decision.shard);
        if (model->epoch() < last[decision.shard]) ++epoch_regressions;
        if (model->epoch() > last[decision.shard]) {
          last[decision.shard] = model->epoch();
        }
        if (decision.spec == nullptr) ++epoch_regressions;  // torn decision
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kWritesPerWriter; ++i) {
        const double tasks = 30.0 + ((w * 241 + i * 7) % 450);
        const auto x = features_for(tasks);
        const auto arm = static_cast<core::ArmIndex>(i % catalog.size());
        server.observe_one({server.shard_of(x), arm, x,
                            synthetic_runtime(catalog[arm], tasks)});
      }
    });
  }
  threads.emplace_back([&] {
    while (!start.load(std::memory_order_acquire)) {
    }
    for (int i = 0; i < 25; ++i) server.sync_shards();
  });

  start.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(epoch_regressions.load(), 0);
  // Quiescent: the final published snapshots agree with the live models.
  const auto x = features_for(123.0);
  for (std::size_t s = 0; s < server.num_shards(); ++s) {
    const auto frozen = server.published_model(s)->recommend_choice(x);
    const auto expected = live_choice(server, catalog, config, s, x);
    EXPECT_EQ(frozen.arm, expected.arm) << "shard=" << s;
    EXPECT_EQ(frozen.predicted_runtime, expected.predicted_runtime) << "shard=" << s;
  }
  EXPECT_EQ(server.num_observations(),
            20u + static_cast<std::size_t>(kWriters) * kWritesPerWriter);
}

}  // namespace
}  // namespace bw::serve
