// Tests for the Cycles workload simulator and dataset builder (apps/cycles).

#include "apps/cycles.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "linalg/lstsq.hpp"

namespace bw::apps {
namespace {

CyclesConfig quiet_config() {
  CyclesConfig config;
  config.task_jitter_sd = 0.0;
  config.system_noise_sd = 0.0;
  return config;
}

TEST(CyclesSim, ProducesPositiveMakespans) {
  Rng rng(1);
  const double makespan = simulate_cycles_run(100, {"H", 2, 16.0}, CyclesConfig{}, rng);
  EXPECT_GT(makespan, 0.0);
}

TEST(CyclesSim, RejectsEmptyWorkflow) {
  Rng rng(2);
  EXPECT_THROW(simulate_cycles_run(0, {"H", 2, 16.0}, CyclesConfig{}, rng),
               InvalidArgument);
}

TEST(CyclesSim, MoreCoresRunFaster) {
  const CyclesConfig config = quiet_config();
  Rng rng_a(3);
  Rng rng_b(3);
  const double slow = simulate_cycles_run(200, {"H", 1, 8.0}, config, rng_a);
  const double fast = simulate_cycles_run(200, {"H", 8, 32.0}, config, rng_b);
  EXPECT_GT(slow, 3.0 * fast);
}

TEST(CyclesSim, DeterministicGivenSeed) {
  Rng rng_a(4);
  Rng rng_b(4);
  const CyclesConfig config;
  EXPECT_DOUBLE_EQ(simulate_cycles_run(150, {"H", 2, 16.0}, config, rng_a),
                   simulate_cycles_run(150, {"H", 2, 16.0}, config, rng_b));
}

TEST(CyclesSim, NoiseFreeMakespanMatchesAnalyticModel) {
  const CyclesConfig config = quiet_config();
  const hw::HardwareSpec spec{"H", 4, 16.0};
  Rng rng(5);
  const double simulated = simulate_cycles_run(400, spec, config, rng);
  const double expected = expected_cycles_makespan(400, spec, config);
  EXPECT_NEAR(simulated, expected, expected * 0.05);
}

TEST(CyclesSim, MakespanApproximatelyLinearInTasks) {
  // The ground-truth regime of paper Fig. 3: fit the simulated makespans
  // and check the slope against the analytic model.
  const CyclesConfig config = quiet_config();
  const hw::HardwareSpec spec{"H", 2, 16.0};
  std::vector<double> xs, ys;
  Rng rng(6);
  for (std::size_t n = 100; n <= 500; n += 50) {
    xs.push_back(static_cast<double>(n));
    ys.push_back(simulate_cycles_run(n, spec, config, rng));
  }
  const auto fit = linalg::fit_linear_1d(xs, ys);
  const double expected_slope = config.mean_task_s *
                                (1.0 + config.perf.sync_overhead) / 2.0;
  EXPECT_NEAR(fit.model.weights[0], expected_slope, expected_slope * 0.05);
  EXPECT_GT(fit.train_r_squared, 0.999);
}

TEST(CyclesFrames, SchemaAndShape) {
  const hw::HardwareCatalog catalog = hw::synthetic_cycles_catalog();
  CyclesDatasetOptions options;
  options.num_groups = 20;
  const auto frames = build_cycles_frames(catalog, CyclesConfig{}, options);
  ASSERT_EQ(frames.size(), 4u);
  for (const auto& frame : frames) {
    EXPECT_EQ(frame.num_rows(), 20u);
    EXPECT_TRUE(frame.has_column("run_id"));
    EXPECT_TRUE(frame.has_column("num_tasks"));
    EXPECT_TRUE(frame.has_column("runtime"));
    EXPECT_TRUE(frame.has_column("cpus"));
  }
}

TEST(CyclesFrames, GroupsShareWorkflowSizesAcrossHardware) {
  const hw::HardwareCatalog catalog = hw::synthetic_cycles_catalog();
  CyclesDatasetOptions options;
  options.num_groups = 15;
  const auto frames = build_cycles_frames(catalog, CyclesConfig{}, options);
  for (std::size_t arm = 1; arm < frames.size(); ++arm) {
    EXPECT_EQ(frames[arm].column("num_tasks").ints(),
              frames[0].column("num_tasks").ints());
    EXPECT_EQ(frames[arm].column("run_id").ints(), frames[0].column("run_id").ints());
  }
}

TEST(CyclesFrames, SizesWithinRequestedRange) {
  const hw::HardwareCatalog catalog({{"A", 1, 8.0}});
  CyclesDatasetOptions options;
  options.num_groups = 50;
  options.min_tasks = 100;
  options.max_tasks = 500;
  const auto frames = build_cycles_frames(catalog, CyclesConfig{}, options);
  for (std::int64_t n : frames[0].column("num_tasks").ints()) {
    EXPECT_GE(n, 100);
    EXPECT_LE(n, 500);
  }
}

TEST(CyclesFrames, DeterministicBySeed) {
  const hw::HardwareCatalog catalog({{"A", 2, 8.0}});
  CyclesDatasetOptions options;
  options.num_groups = 5;
  options.seed = 99;
  const auto a = build_cycles_frames(catalog, CyclesConfig{}, options);
  const auto b = build_cycles_frames(catalog, CyclesConfig{}, options);
  EXPECT_EQ(a[0].column("runtime").doubles(), b[0].column("runtime").doubles());
}

TEST(CyclesFrames, RejectsBadOptions) {
  const hw::HardwareCatalog catalog({{"A", 2, 8.0}});
  CyclesDatasetOptions options;
  options.num_groups = 0;
  EXPECT_THROW(build_cycles_frames(catalog, CyclesConfig{}, options), InvalidArgument);
  options.num_groups = 5;
  options.min_tasks = 10;
  options.max_tasks = 5;
  EXPECT_THROW(build_cycles_frames(catalog, CyclesConfig{}, options), InvalidArgument);
  EXPECT_THROW(build_cycles_frames(hw::HardwareCatalog{}, CyclesConfig{}, {}),
               InvalidArgument);
}

// Property: per-hardware slopes decrease with core count (the separated
// lines of paper Fig. 3).
TEST(CyclesFrames, SlopesDecreaseWithCores) {
  const hw::HardwareCatalog catalog = hw::synthetic_cycles_catalog();
  CyclesDatasetOptions options;
  options.num_groups = 60;
  const auto frames = build_cycles_frames(catalog, CyclesConfig{}, options);
  double previous_slope = 1e30;
  for (std::size_t arm = 0; arm < frames.size(); ++arm) {
    const auto xs = frames[arm].column("num_tasks").as_doubles();
    const auto& ys = frames[arm].column("runtime").doubles();
    const auto fit = linalg::fit_linear_1d(xs, ys);
    EXPECT_LT(fit.model.weights[0], previous_slope);
    previous_slope = fit.model.weights[0];
  }
}

}  // namespace
}  // namespace bw::apps
