// The decision kernel's byte-identity contract (ROADMAP "Decision kernel").
//
// The SoA scoring substrate (linalg/gemm, the FrozenModel coefficient
// plane, the ArmBank theta plane) promises decisions that are BITWISE
// identical to the per-arm scalar walks it replaced — same arm, same
// predicted-runtime double, same tolerant limit. These tests pin that
// contract end to end:
//
//   * kernel — gemm_rm / score_block against a naive k-ascending loop;
//   * frozen — recommend_choice and recommend_greedy_batch against
//     recommend_choice_scalar across policies x dims x arm counts,
//     including the negative-R̂ tolerant edge;
//   * bank — predict_all / variance_proxy_all against the per-arm calls,
//     LinUCB's select against the lcb() argmin, Thompson's select against
//     a cloned-seed per-arm reference stream;
//   * lifecycle — refreeze-after-dirty-write (delta plane vs full rebuild,
//     node sharing by pointer identity), the dirty-plane scalar fallback
//     after a direct arm mutation, and the empty-catalog ctor guard (the
//     former ArmBank::dim() UB).
//
// The ASan and TSan CI jobs both run this file.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/banditware.hpp"
#include "core/epsilon_greedy.hpp"
#include "core/frozen_model.hpp"
#include "core/linucb.hpp"
#include "core/thompson.hpp"
#include "core/tolerant.hpp"
#include "hardware/catalog.hpp"
#include "linalg/gemm.hpp"
#include "serve/bandit_server.hpp"

namespace bw::core {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Bitwise choice equality: arm, candidates, and the tie-break flag must
/// match exactly, and the two doubles must match bit for bit (EXPECT_EQ on
/// doubles would accept -0.0 == 0.0).
void expect_choice_identical(const TolerantChoice& a, const TolerantChoice& b) {
  EXPECT_EQ(a.arm, b.arm);
  EXPECT_EQ(bits(a.predicted_runtime), bits(b.predicted_runtime));
  EXPECT_EQ(bits(a.limit), bits(b.limit));
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.efficiency_tie_break, b.efficiency_tie_break);
}

hw::HardwareCatalog synth_catalog(std::size_t arms) {
  hw::HardwareCatalog catalog;
  for (std::size_t i = 0; i < arms; ++i) {
    catalog.add({"S" + std::to_string(i), static_cast<int>(1 + i % 64),
                 8.0 * static_cast<double>(1 + i % 32)});
  }
  return catalog;
}

FeatureVector random_features(Rng& rng, std::size_t d) {
  FeatureVector x(d);
  for (auto& v : x) v = rng.uniform(0.5, 40.0);
  return x;
}

double synth_runtime(const hw::HardwareSpec& spec, const FeatureVector& x) {
  double load = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) load += (1.0 + 0.25 * i) * x[i];
  return 5.0 + load / spec.cpus;
}

// ---- kernel primitives -------------------------------------------------------

/// The reference the contract names: every output element as one
/// k-ascending dot from a 0.0 start.
void naive_gemm(const double* a, std::size_t m, std::size_t k, const double* b,
                std::size_t n, double* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = acc;
    }
  }
}

TEST(DecisionKernel, GemmRmMatchesNaiveLoopBitwise) {
  // Shapes straddle every internal boundary: the n == 1 fast path, the kk
  // unroll remainder (k % 4), and n not a multiple of any vector width.
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 9, 1},  {5, 34, 16}, {3, 7, 17},  {2, 9, 33},
                {1, 4, 512}, {4, 1, 5},   {1, 3, 1000}, {7, 8, 2}};
  bw::Rng rng(7);
  for (const auto& s : shapes) {
    std::vector<double> a(s.m * s.k), b(s.k * s.n);
    for (auto& v : a) v = rng.uniform(-3.0, 3.0);
    for (auto& v : b) v = rng.uniform(-3.0, 3.0);
    std::vector<double> got(s.m * s.n, -1.0), want(s.m * s.n, -2.0);
    linalg::gemm_rm(a.data(), s.m, s.k, b.data(), s.n, got.data());
    naive_gemm(a.data(), s.m, s.k, b.data(), s.n, want.data());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(bits(got[i]), bits(want[i]))
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " elt=" << i;
    }
  }
}

TEST(DecisionKernel, ScoreBlockMatchesPerArmDotBitwise) {
  // score_block takes the TRANSPOSED plane (k x arms); out[j*arms + i] must
  // equal the k-ascending dot of context row j against arm i's column.
  bw::Rng rng(11);
  for (const std::size_t arms : {1u, 16u, 17u, 100u}) {
    for (const std::size_t n : {1u, 3u, 64u}) {
      const std::size_t k = 9;
      std::vector<double> plane_t(k * arms), ctx(n * k), out(n * arms);
      for (auto& v : plane_t) v = rng.uniform(-2.0, 2.0);
      for (auto& v : ctx) v = rng.uniform(-2.0, 2.0);
      linalg::score_block(plane_t.data(), arms, k, ctx.data(), n, out.data());
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < arms; ++i) {
          double acc = 0.0;
          for (std::size_t kk = 0; kk < k; ++kk) {
            acc += ctx[j * k + kk] * plane_t[kk * arms + i];
          }
          ASSERT_EQ(bits(out[j * arms + i]), bits(acc))
              << "arms=" << arms << " n=" << n << " j=" << j << " i=" << i;
        }
      }
    }
  }
}

// ---- frozen plane vs scalar node walk ----------------------------------------

BanditWareConfig config_for(PolicyKind kind) {
  BanditWareConfig config;
  config.policy_kind = kind;
  config.policy.initial_epsilon = 0.0;  // decisions only; no exploration
  config.policy.tolerance.ratio = 0.10;
  config.policy.tolerance.seconds = 2.0;
  return config;
}

BanditWare trained_instance(PolicyKind kind, std::size_t d, std::size_t arms,
                            double runtime_scale = 1.0) {
  const hw::HardwareCatalog catalog = synth_catalog(arms);
  BanditWare bandit(catalog, std::vector<std::string>(d, "f"), config_for(kind));
  bw::Rng rng(101 + d + arms);
  // Two observations per arm, capped so the 1000-arm cells stay fast; the
  // untouched tail keeps its zero init, which the plane must mirror too.
  const std::size_t trained = std::min<std::size_t>(arms, 192);
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t arm = 0; arm < trained; ++arm) {
      const auto x = random_features(rng, d);
      bandit.observe(static_cast<ArmIndex>(arm), x,
                     runtime_scale * synth_runtime(catalog[arm], x));
    }
  }
  return bandit;
}

TEST(DecisionKernel, FrozenVectorizedMatchesScalarAcrossGrid) {
  for (const PolicyKind kind :
       {PolicyKind::kEpsilonGreedy, PolicyKind::kLinUcb, PolicyKind::kThompson}) {
    for (const std::size_t d : {1u, 4u, 8u, 33u}) {
      for (const std::size_t arms : {1u, 7u, 256u, 1000u}) {
        const BanditWare bandit = trained_instance(kind, d, arms);
        const auto frozen = bandit.freeze(1);
        bw::Rng rng(23);
        std::vector<FeatureVector> xs;
        for (int q = 0; q < 8; ++q) xs.push_back(random_features(rng, d));
        for (const auto& x : xs) {
          const TolerantChoice vec = frozen->recommend_choice(x);
          const TolerantChoice ref = frozen->recommend_choice_scalar(x);
          expect_choice_identical(vec, ref);
        }
        // The batched panel path must agree with the one-context path.
        const auto batch = frozen->recommend_greedy_batch(xs);
        ASSERT_EQ(batch.size(), xs.size());
        for (std::size_t j = 0; j < xs.size(); ++j) {
          expect_choice_identical(batch[j], frozen->recommend_choice(xs[j]));
        }
      }
    }
  }
}

TEST(DecisionKernel, NegativePredictionsStayIdentical) {
  // An extrapolating model predicts negative runtimes; the tolerant limit
  // then takes its max(R̂, 0) branch. The vectorized path must track the
  // scalar one through that edge bit for bit.
  const hw::HardwareCatalog catalog = synth_catalog(5);
  BanditWareConfig config = config_for(PolicyKind::kEpsilonGreedy);
  config.policy.tolerance.ratio = 0.5;
  config.policy.tolerance.seconds = 5.0;
  BanditWare bandit(catalog, {"f"}, config);
  for (const double x : {1.0, 2.0, 3.0}) {
    for (std::size_t arm = 0; arm < catalog.size(); ++arm) {
      // Steeply decreasing in x, so large x extrapolates below zero.
      bandit.observe(static_cast<ArmIndex>(arm), {x},
                     100.0 - 30.0 * x - static_cast<double>(arm));
    }
  }
  const auto frozen = bandit.freeze(1);
  const FeatureVector far{25.0};
  const TolerantChoice ref = frozen->recommend_choice_scalar(far);
  ASSERT_LT(ref.predicted_runtime, 0.0) << "edge case not reached";
  expect_choice_identical(frozen->recommend_choice(far), ref);
  expect_choice_identical(frozen->recommend_greedy_batch(
                              std::vector<FeatureVector>{far})[0],
                          ref);
}

TEST(DecisionKernel, RefreezeAfterDirtyWriteMatchesFullFreeze) {
  BanditWare bandit = trained_instance(PolicyKind::kEpsilonGreedy, 4, 64);
  const auto prev = bandit.freeze(1);
  // Dirty a scattered subset, including arm 0 and the last arm.
  const std::vector<ArmIndex> dirty = {0, 17, 40, 63};
  bw::Rng rng(5);
  for (const ArmIndex arm : dirty) {
    const auto x = random_features(rng, 4);
    bandit.observe(arm, x, 7.0 + static_cast<double>(arm));
  }
  const auto delta = bandit.refreeze(*prev, dirty, 2);
  const auto full = bandit.freeze(2);
  // Structural sharing: untouched nodes are the same allocation.
  for (ArmIndex arm = 0; arm < 64; ++arm) {
    const bool is_dirty =
        std::find(dirty.begin(), dirty.end(), arm) != dirty.end();
    if (is_dirty) {
      EXPECT_NE(delta->arm_node(arm).get(), prev->arm_node(arm).get());
    } else {
      EXPECT_EQ(delta->arm_node(arm).get(), prev->arm_node(arm).get());
    }
  }
  // The delta-copied plane must decide exactly like a fully rebuilt one —
  // and like the scalar node walk.
  for (int q = 0; q < 16; ++q) {
    const auto x = random_features(rng, 4);
    const TolerantChoice from_delta = delta->recommend_choice(x);
    expect_choice_identical(from_delta, full->recommend_choice(x));
    expect_choice_identical(from_delta, delta->recommend_choice_scalar(x));
  }
  // And the gathered plane columns match the nodes they were copied from.
  for (ArmIndex arm = 0; arm < 64; ++arm) {
    const auto row = delta->weight_row(arm);
    const auto& model = delta->arm_node(arm)->model;
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(bits(row[i]), bits(model.weights[i]));
    }
    EXPECT_EQ(bits(row[4]), bits(model.bias));
  }
}

// ---- live bank: batched reads vs per-arm calls -------------------------------

TEST(DecisionKernel, BankPredictAllMatchesPerArmBitwise) {
  LinUcbConfig config;
  LinUcb policy(synth_catalog(33), 3, config);
  bw::Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const auto x = random_features(rng, 3);
    policy.observe(static_cast<ArmIndex>(i % 33), x, rng.uniform(1.0, 50.0));
  }
  for (int q = 0; q < 8; ++q) {
    const auto x = random_features(rng, 3);
    const std::vector<double> all = policy.bank().predict_all(x);
    ASSERT_EQ(all.size(), 33u);
    std::vector<double> vars(33);
    policy.bank().variance_proxy_all(x, vars);
    for (ArmIndex arm = 0; arm < 33; ++arm) {
      EXPECT_EQ(bits(all[arm]), bits(policy.bank().predict(arm, x)));
      EXPECT_EQ(bits(vars[arm]), bits(policy.bank().variance_proxy(arm, x)));
    }
  }
}

TEST(DecisionKernel, LinUcbSelectMatchesLcbArgmin) {
  LinUcbConfig config;
  config.alpha = 1.7;
  LinUcb policy(synth_catalog(21), 2, config);
  bw::Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    const auto x = random_features(rng, 2);
    policy.observe(static_cast<ArmIndex>(i % 21), x, rng.uniform(1.0, 40.0));
  }
  bw::Rng select_rng(1);
  for (int q = 0; q < 20; ++q) {
    const auto x = random_features(rng, 2);
    // Reference: the scalar lcb() walk, strict < from arm 0.
    ArmIndex want = 0;
    double best = policy.lcb(0, x);
    for (ArmIndex arm = 1; arm < 21; ++arm) {
      const double value = policy.lcb(arm, x);
      if (value < best) {
        best = value;
        want = arm;
      }
    }
    EXPECT_EQ(policy.select(x, select_rng), want);
  }
}

TEST(DecisionKernel, ThompsonSelectMatchesClonedSeedReference) {
  ThompsonConfig config;
  config.posterior_scale = 2.5;
  LinearThompson policy(synth_catalog(17), 2, config);
  bw::Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    const auto x = random_features(rng, 2);
    policy.observe(static_cast<ArmIndex>(i % 17), x, rng.uniform(1.0, 30.0));
  }
  // Two Rngs from the same seed: the bank-level sweep must consume exactly
  // one normal() per arm in ascending order, like the per-arm walk did.
  bw::Rng policy_rng(77);
  bw::Rng reference_rng(77);
  for (int q = 0; q < 20; ++q) {
    const auto x = random_features(rng, 2);
    ArmIndex want = 0;
    double best = 0.0;
    for (ArmIndex arm = 0; arm < 17; ++arm) {
      const double sample =
          policy.predict(arm, x) +
          config.posterior_scale *
              std::sqrt(std::max(0.0, policy.bank().variance_proxy(arm, x))) *
              reference_rng.normal();
      if (arm == 0 || sample < best) {
        best = sample;
        want = arm;
      }
    }
    EXPECT_EQ(policy.select(x, policy_rng), want);
  }
}

TEST(DecisionKernel, DirtyPlaneFallsBackToScalarUntilNextObserve) {
  EpsilonGreedyConfig config;
  DecayingEpsilonGreedy policy(synth_catalog(9), 2, config);
  bw::Rng rng(31);
  for (int i = 0; i < 30; ++i) {
    const auto x = random_features(rng, 2);
    policy.observe(static_cast<ArmIndex>(i % 9), x, rng.uniform(1.0, 20.0));
  }
  // Mutate an arm behind the bank's back — the merge/restore/widen channel.
  // The theta plane is now stale; reads must fall back to the per-arm walk.
  policy.arm_model(4).observe(std::vector<double>{3.0, 5.0}, 42.0);
  for (int q = 0; q < 4; ++q) {
    const auto x = random_features(rng, 2);
    const std::vector<double> all = policy.bank().predict_all(x);
    for (ArmIndex arm = 0; arm < 9; ++arm) {
      EXPECT_EQ(bits(all[arm]), bits(policy.bank().predict(arm, x)));
    }
  }
  // The next observe() rebuilds the plane; reads stay identical after it.
  const auto x0 = random_features(rng, 2);
  policy.observe(2, x0, 11.0);
  for (int q = 0; q < 4; ++q) {
    const auto x = random_features(rng, 2);
    const std::vector<double> all = policy.bank().predict_all(x);
    for (ArmIndex arm = 0; arm < 9; ++arm) {
      EXPECT_EQ(bits(all[arm]), bits(policy.bank().predict(arm, x)));
    }
  }
}

// ---- construction guards -----------------------------------------------------

TEST(DecisionKernel, EmptyCatalogThrowsEverywhere) {
  // Regression for the ArmBank::dim() UB: an empty catalog must be a loud
  // InvalidArgument from every entry point, never an arms_.front() on an
  // empty vector.
  const hw::HardwareCatalog empty;
  EXPECT_THROW(DecayingEpsilonGreedy(empty, 1, {}), InvalidArgument);
  EXPECT_THROW(LinUcb(empty, 1, {}), InvalidArgument);
  EXPECT_THROW(LinearThompson(empty, 1, {}), InvalidArgument);
  EXPECT_THROW(BanditWare(empty, {"f"}, {}), InvalidArgument);
}

// ---- serve layer -------------------------------------------------------------

TEST(DecisionKernel, ServerBatchMatchesPerItemGreedy) {
  serve::BanditServerConfig config;
  config.num_shards = 2;
  config.sharding = serve::ShardingPolicy::kFeatureHash;
  config.seed = 42;
  config.explore = false;
  const hw::HardwareCatalog catalog = synth_catalog(24);
  serve::BanditServer server(catalog, {"a", "b"}, config);
  bw::Rng rng(17);
  for (int i = 0; i < 80; ++i) {
    const auto x = random_features(rng, 2);
    const auto arm = static_cast<ArmIndex>(i % catalog.size());
    server.observe_one(
        {server.shard_of(x), arm, x, synth_runtime(catalog[arm], x)});
  }
  std::vector<FeatureVector> xs;
  for (int i = 0; i < 37; ++i) xs.push_back(random_features(rng, 2));
  const auto batched = server.recommend_batch(xs);
  ASSERT_EQ(batched.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto single = server.recommend_greedy(xs[i]);
    EXPECT_EQ(batched[i].shard, single.shard);
    EXPECT_EQ(batched[i].arm, single.arm);
    EXPECT_EQ(bits(batched[i].predicted_runtime_s),
              bits(single.predicted_runtime_s));
    EXPECT_FALSE(batched[i].explored);
    EXPECT_EQ(batched[i].spec, single.spec);
  }
}

}  // namespace
}  // namespace bw::core
