// Tests for the dense matrix/vector substrate (linalg/matrix).

#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace bw::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW(Matrix({{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(Matrix, IndexOutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), InvalidArgument);
  EXPECT_THROW(m(0, 2), InvalidArgument);
}

TEST(Matrix, IdentityTimesAnything) {
  const Matrix eye = Matrix::identity(3);
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  EXPECT_EQ((eye * a), a);
  EXPECT_EQ((a * eye), a);
}

TEST(Matrix, KnownProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix expected{{19.0, 22.0}, {43.0, 50.0}};
  EXPECT_EQ(a * b, expected);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, InvalidArgument);
}

TEST(Matrix, TransposeRoundTrip) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(0, 1), 4.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(Matrix, AddSubtract) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{3.0, 5.0}};
  EXPECT_EQ((a + b), Matrix({{4.0, 7.0}}));
  EXPECT_EQ((b - a), Matrix({{2.0, 3.0}}));
  EXPECT_THROW(a + Matrix(2, 2), InvalidArgument);
}

TEST(Matrix, ScalarScale) {
  const Matrix a{{1.0, -2.0}};
  EXPECT_EQ(a * 2.0, Matrix({{2.0, -4.0}}));
}

TEST(Matrix, MatVec) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector x = {1.0, 1.0};
  const Vector y = a * x;
  ASSERT_EQ(y.size(), 2u);
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[1], 7.0);
  EXPECT_THROW(a * Vector{1.0}, InvalidArgument);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix a{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{1.5, 1.0}};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.0);
}

TEST(VecOps, DotNormAxpy) {
  const Vector a = {1.0, 2.0, 3.0};
  const Vector b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(Vector{3.0, 4.0}), 5.0);
  Vector acc = {1.0, 1.0, 1.0};
  axpy(2.0, a, acc);
  EXPECT_EQ(acc, (Vector{3.0, 5.0, 7.0}));
}

TEST(VecOps, AddSubtractScale) {
  const Vector a = {1.0, 2.0};
  const Vector b = {3.0, 4.0};
  EXPECT_EQ(add(a, b), (Vector{4.0, 6.0}));
  EXPECT_EQ(subtract(b, a), (Vector{2.0, 2.0}));
  EXPECT_EQ(scale(a, 3.0), (Vector{3.0, 6.0}));
  EXPECT_THROW(dot(a, Vector{1.0}), InvalidArgument);
}

TEST(VecOps, Outer) {
  const Vector a = {1.0, 2.0};
  const Vector b = {3.0, 4.0, 5.0};
  const Matrix o = outer(a, b);
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_EQ(o(1, 2), 10.0);
}

TEST(VecOps, AllFinite) {
  EXPECT_TRUE(all_finite(Vector{1.0, 2.0}));
  EXPECT_FALSE(all_finite(Vector{1.0, std::nan("")}));
  EXPECT_FALSE(all_finite(Vector{INFINITY}));
  EXPECT_TRUE(all_finite(Vector{}));
}

// Property: (AB)^T == B^T A^T on random matrices.
class MatrixAlgebraProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatrixAlgebraProperty, TransposeOfProduct) {
  bw::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 2 + GetParam() % 4;
  const std::size_t k = 3 + GetParam() % 3;
  const std::size_t n = 2 + GetParam() % 5;
  Matrix a(m, k);
  Matrix b(k, n);
  for (auto& v : a.data()) v = rng.uniform(-2.0, 2.0);
  for (auto& v : b.data()) v = rng.uniform(-2.0, 2.0);
  const Matrix left = (a * b).transposed();
  const Matrix right = b.transposed() * a.transposed();
  EXPECT_LT(left.max_abs_diff(right), 1e-12);
}

TEST_P(MatrixAlgebraProperty, MatVecMatchesMatMat) {
  bw::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const std::size_t m = 3 + GetParam() % 4;
  const std::size_t n = 2 + GetParam() % 4;
  Matrix a(m, n);
  Matrix xcol(n, 1);
  for (auto& v : a.data()) v = rng.uniform(-1.0, 1.0);
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-1.0, 1.0);
    xcol(i, 0) = x[i];
  }
  const Vector y = a * x;
  const Matrix ycol = a * xcol;
  for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(y[i], ycol(i, 0), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, MatrixAlgebraProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace bw::linalg
