// Tests for the BanditWare facade (core/banditware), including state
// snapshots.

#include "core/banditware.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace bw::core {
namespace {

BanditWare make_bandit(BanditWareConfig config = {}) {
  return BanditWare(hw::ndp_catalog(), {"num_tasks", "area"}, config);
}

TEST(BanditWare, ConstructionExposesCatalogAndFeatures) {
  const BanditWare bandit = make_bandit();
  EXPECT_EQ(bandit.num_arms(), 3u);
  EXPECT_EQ(bandit.feature_names().size(), 2u);
  EXPECT_EQ(bandit.num_observations(), 0u);
  EXPECT_THROW(BanditWare(hw::ndp_catalog(), {}), InvalidArgument);
}

TEST(BanditWare, NextReturnsValidDecision) {
  BanditWare bandit = make_bandit();
  Rng rng(1);
  const auto decision = bandit.next({100.0, 2.0}, rng);
  EXPECT_LT(decision.arm, 3u);
  ASSERT_NE(decision.spec, nullptr);
  EXPECT_EQ(decision.spec->name, bandit.catalog()[decision.arm].name);
}

TEST(BanditWare, UntrainedRecommendationIsMostEfficient) {
  const BanditWare bandit = make_bandit();
  EXPECT_EQ(bandit.recommend_index({1.0, 1.0}), 0u);  // H0 = (2,16)
  EXPECT_EQ(bandit.recommend({1.0, 1.0}).name, "H0");
}

TEST(BanditWare, ObserveUpdatesPredictionsAndEpsilon) {
  BanditWareConfig config;
  config.policy.decay = 0.9;
  BanditWare bandit = make_bandit(config);
  const double eps_before = bandit.epsilon();
  bandit.observe(1, {2.0, 3.0}, 50.0);
  EXPECT_LT(bandit.epsilon(), eps_before);
  EXPECT_EQ(bandit.num_observations(), 1u);
  const auto predictions = bandit.predictions({2.0, 3.0});
  EXPECT_NEAR(predictions[1], 50.0, 1.0);
  EXPECT_EQ(predictions[0], 0.0);  // untouched arms stay at the zero init
}

TEST(BanditWare, LearnsToRecommendFasterHardware) {
  BanditWareConfig config;
  config.policy.initial_epsilon = 0.0;
  BanditWare bandit = make_bandit(config);
  for (double x : {1.0, 2.0, 3.0}) {
    bandit.observe(0, {x, x}, 100.0 * x);
    bandit.observe(1, {x, x}, 80.0 * x);
    bandit.observe(2, {x, x}, 20.0 * x);
  }
  EXPECT_EQ(bandit.recommend_index({2.0, 2.0}), 2u);
}

TEST(BanditWare, FeatureSizeMismatchThrows) {
  BanditWare bandit = make_bandit();
  Rng rng(2);
  EXPECT_THROW(bandit.next({1.0}, rng), InvalidArgument);
  EXPECT_THROW(bandit.observe(0, {1.0}, 1.0), InvalidArgument);
  EXPECT_THROW(bandit.recommend({1.0, 2.0, 3.0}), InvalidArgument);
  EXPECT_THROW(bandit.predictions({1.0}), InvalidArgument);
}

TEST(BanditWare, SaveLoadRoundTripPreservesBehavior) {
  BanditWareConfig config;
  config.policy.decay = 0.95;
  config.policy.tolerance.seconds = 20.0;
  BanditWare original = make_bandit(config);
  Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    const FeatureVector x = {static_cast<double>(i % 5 + 1), static_cast<double>(i % 3)};
    const auto decision = original.next(x, rng);
    original.observe(decision.arm, x, 10.0 * x[0] + 3.0 * x[1] + decision.arm);
  }

  const std::string snapshot = original.save_state();
  BanditWare restored = BanditWare::load_state(snapshot);

  EXPECT_EQ(restored.num_arms(), original.num_arms());
  EXPECT_EQ(restored.feature_names(), original.feature_names());
  EXPECT_EQ(restored.num_observations(), original.num_observations());
  EXPECT_NEAR(restored.epsilon(), original.epsilon(), 1e-12);
  for (double x0 : {1.0, 2.5, 7.0}) {
    const FeatureVector x = {x0, 1.5};
    const auto p_original = original.predictions(x);
    const auto p_restored = restored.predictions(x);
    for (std::size_t arm = 0; arm < 3; ++arm) {
      EXPECT_NEAR(p_restored[arm], p_original[arm], 1e-9);
    }
    EXPECT_EQ(restored.recommend_index(x), original.recommend_index(x));
  }
}

TEST(BanditWare, SaveLoadPreservesConfigTolerance) {
  BanditWareConfig config;
  config.policy.tolerance.ratio = 0.05;
  config.policy.tolerance.seconds = 7.5;
  const BanditWare original = make_bandit(config);
  const BanditWare restored = BanditWare::load_state(original.save_state());
  EXPECT_DOUBLE_EQ(restored.policy().config().tolerance.ratio, 0.05);
  EXPECT_DOUBLE_EQ(restored.policy().config().tolerance.seconds, 7.5);
}

TEST(BanditWare, LoadRejectsGarbage) {
  EXPECT_THROW(BanditWare::load_state(""), ParseError);
  EXPECT_THROW(BanditWare::load_state("not a snapshot"), ParseError);
  EXPECT_THROW(BanditWare::load_state("banditware-state v1\nepsilon0"), ParseError);
}

TEST(BanditWare, LoadRejectsTruncatedObservations) {
  BanditWare original = make_bandit();
  original.observe(0, {1.0, 2.0}, 3.0);
  std::string snapshot = original.save_state();
  snapshot.resize(snapshot.size() - 5);  // chop the last observation
  EXPECT_THROW(BanditWare::load_state(snapshot), ParseError);
}

TEST(BanditWare, ExploredFlagReflectsEpsilon) {
  BanditWareConfig never_explore;
  never_explore.policy.initial_epsilon = 0.0;
  BanditWare greedy = make_bandit(never_explore);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(greedy.next({1.0, 1.0}, rng).explored);
  }
  BanditWareConfig always_explore;
  always_explore.policy.initial_epsilon = 1.0;
  always_explore.policy.decay = 1.0;
  BanditWare explorer = make_bandit(always_explore);
  int explored = 0;
  for (int i = 0; i < 20; ++i) explored += explorer.next({1.0, 1.0}, rng).explored;
  EXPECT_EQ(explored, 20);
}

}  // namespace
}  // namespace bw::core
