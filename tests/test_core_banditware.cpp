// Tests for the BanditWare facade (core/banditware), including state
// snapshots.

#include "core/banditware.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace bw::core {
namespace {

BanditWare make_bandit(BanditWareConfig config = {}) {
  return BanditWare(hw::ndp_catalog(), {"num_tasks", "area"}, config);
}

TEST(BanditWare, ConstructionExposesCatalogAndFeatures) {
  const BanditWare bandit = make_bandit();
  EXPECT_EQ(bandit.num_arms(), 3u);
  EXPECT_EQ(bandit.feature_names().size(), 2u);
  EXPECT_EQ(bandit.num_observations(), 0u);
  EXPECT_THROW(BanditWare(hw::ndp_catalog(), {}), InvalidArgument);
}

TEST(BanditWare, NextReturnsValidDecision) {
  BanditWare bandit = make_bandit();
  Rng rng(1);
  const auto decision = bandit.next({100.0, 2.0}, rng);
  EXPECT_LT(decision.arm, 3u);
  ASSERT_NE(decision.spec, nullptr);
  EXPECT_EQ(decision.spec->name, bandit.catalog()[decision.arm].name);
}

TEST(BanditWare, UntrainedRecommendationIsMostEfficient) {
  const BanditWare bandit = make_bandit();
  EXPECT_EQ(bandit.recommend_index({1.0, 1.0}), 0u);  // H0 = (2,16)
  EXPECT_EQ(bandit.recommend({1.0, 1.0}).name, "H0");
}

TEST(BanditWare, ObserveUpdatesPredictionsAndEpsilon) {
  BanditWareConfig config;
  config.policy.decay = 0.9;
  BanditWare bandit = make_bandit(config);
  const double eps_before = bandit.epsilon();
  bandit.observe(1, {2.0, 3.0}, 50.0);
  EXPECT_LT(bandit.epsilon(), eps_before);
  EXPECT_EQ(bandit.num_observations(), 1u);
  const auto predictions = bandit.predictions({2.0, 3.0});
  EXPECT_NEAR(predictions[1], 50.0, 1.0);
  EXPECT_EQ(predictions[0], 0.0);  // untouched arms stay at the zero init
}

TEST(BanditWare, LearnsToRecommendFasterHardware) {
  BanditWareConfig config;
  config.policy.initial_epsilon = 0.0;
  BanditWare bandit = make_bandit(config);
  for (double x : {1.0, 2.0, 3.0}) {
    bandit.observe(0, {x, x}, 100.0 * x);
    bandit.observe(1, {x, x}, 80.0 * x);
    bandit.observe(2, {x, x}, 20.0 * x);
  }
  EXPECT_EQ(bandit.recommend_index({2.0, 2.0}), 2u);
}

TEST(BanditWare, FeatureSizeMismatchThrows) {
  BanditWare bandit = make_bandit();
  Rng rng(2);
  EXPECT_THROW(bandit.next({1.0}, rng), InvalidArgument);
  EXPECT_THROW(bandit.observe(0, {1.0}, 1.0), InvalidArgument);
  EXPECT_THROW(bandit.recommend({1.0, 2.0, 3.0}), InvalidArgument);
  EXPECT_THROW(bandit.predictions({1.0}), InvalidArgument);
}

TEST(BanditWare, SaveLoadRoundTripPreservesBehavior) {
  BanditWareConfig config;
  config.policy.decay = 0.95;
  config.policy.tolerance.seconds = 20.0;
  BanditWare original = make_bandit(config);
  Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    const FeatureVector x = {static_cast<double>(i % 5 + 1), static_cast<double>(i % 3)};
    const auto decision = original.next(x, rng);
    original.observe(decision.arm, x, 10.0 * x[0] + 3.0 * x[1] + decision.arm);
  }

  const std::string snapshot = original.save_state();
  BanditWare restored = BanditWare::load_state(snapshot);

  EXPECT_EQ(restored.num_arms(), original.num_arms());
  EXPECT_EQ(restored.feature_names(), original.feature_names());
  EXPECT_EQ(restored.num_observations(), original.num_observations());
  EXPECT_NEAR(restored.epsilon(), original.epsilon(), 1e-12);
  for (double x0 : {1.0, 2.5, 7.0}) {
    const FeatureVector x = {x0, 1.5};
    const auto p_original = original.predictions(x);
    const auto p_restored = restored.predictions(x);
    for (std::size_t arm = 0; arm < 3; ++arm) {
      EXPECT_NEAR(p_restored[arm], p_original[arm], 1e-9);
    }
    EXPECT_EQ(restored.recommend_index(x), original.recommend_index(x));
  }
}

TEST(BanditWare, SaveLoadPreservesConfigTolerance) {
  BanditWareConfig config;
  config.policy.tolerance.ratio = 0.05;
  config.policy.tolerance.seconds = 7.5;
  const BanditWare original = make_bandit(config);
  const BanditWare restored = BanditWare::load_state(original.save_state());
  EXPECT_DOUBLE_EQ(restored.policy().config().tolerance.ratio, 0.05);
  EXPECT_DOUBLE_EQ(restored.policy().config().tolerance.seconds, 7.5);
}

TEST(BanditWare, SaveStateIsV2AndByteStableAcrossRoundTrip) {
  BanditWare original = make_bandit();
  Rng rng(9);
  for (int i = 0; i < 25; ++i) {
    const FeatureVector x = {static_cast<double>(i % 7 + 1), 0.5 * (i % 4)};
    const auto decision = original.next(x, rng);
    original.observe(decision.arm, x, 4.0 * x[0] + x[1]);
  }
  const std::string saved = original.save_state();
  EXPECT_EQ(saved.rfind("banditware-state v2\n", 0), 0u);
  // save -> load -> save must be byte-identical (sufficient statistics
  // serialize exactly at 17 significant digits).
  BanditWare restored = BanditWare::load_state(saved);
  EXPECT_EQ(restored.save_state(), saved);
  // And the restored model is numerically *identical*, not merely close.
  const FeatureVector probe = {3.5, 1.0};
  EXPECT_EQ(restored.predictions(probe), original.predictions(probe));
}

TEST(BanditWare, ExactHistoryModeRoundTripsThroughV2) {
  BanditWareConfig config;
  config.policy.exact_history = true;
  BanditWare original = make_bandit(config);
  Rng rng(10);
  for (int i = 0; i < 15; ++i) {
    const FeatureVector x = {static_cast<double>(i + 1), 2.0};
    const auto decision = original.next(x, rng);
    original.observe(decision.arm, x, 7.0 * x[0] + decision.arm);
  }
  const std::string saved = original.save_state();
  BanditWare restored = BanditWare::load_state(saved);
  EXPECT_TRUE(restored.policy().config().exact_history);
  EXPECT_EQ(restored.save_state(), saved);
  EXPECT_EQ(restored.num_observations(), original.num_observations());
  const FeatureVector probe = {4.0, 2.0};
  const auto p_original = original.predictions(probe);
  const auto p_restored = restored.predictions(probe);
  for (std::size_t arm = 0; arm < 3; ++arm) {
    EXPECT_NEAR(p_restored[arm], p_original[arm], 1e-9);
  }
}

TEST(BanditWare, InterceptFreeFitSnapshotStillLoads) {
  BanditWareConfig config;
  config.policy.fit.intercept = false;  // forces the batch backend per-arm
  BanditWare original = make_bandit(config);
  original.observe(0, {1.0, 2.0}, 3.0);
  const std::string saved = original.save_state();
  // Fit options are not serialized (documented limitation), but the
  // snapshot must at least load and round-trip: save_state writes the
  // arms' *effective* backend, not the raw exact_history config flag.
  BanditWare restored = BanditWare::load_state(saved);
  EXPECT_TRUE(restored.policy().config().exact_history);
  EXPECT_EQ(restored.save_state(), saved);
}

TEST(BanditWare, V1SnapshotMigratesToV2Model) {
  // A legacy v1 snapshot (raw observation rows) must load into the current
  // incremental model with matching predictions, and re-save as v2.
  const std::string v1 =
      "banditware-state v1\n"
      "epsilon0 1 decay 0.98999999999999999 tol_ratio 0 tol_seconds 0\n"
      "epsilon 0.9414801494009999\n"
      "features 2 num_tasks area\n"
      "arms 3\n"
      "arm H0 2 16 obs 3\n"
      "1 2 21\n"
      "2 1 33\n"
      "3 3 50\n"
      "arm H1 3 24 obs 2\n"
      "1.5 2 24\n"
      "4 1 55\n"
      "arm H2 4 16 obs 1\n"
      "2 2 30\n";
  BanditWare migrated = BanditWare::load_state(v1);
  EXPECT_EQ(migrated.num_arms(), 3u);
  EXPECT_EQ(migrated.num_observations(), 6u);
  EXPECT_NEAR(migrated.epsilon(), 0.9414801494009999, 1e-15);

  // Reference: the same observations fed through the current API.
  BanditWare reference = make_bandit();
  reference.observe(0, {1.0, 2.0}, 21.0);
  reference.observe(0, {2.0, 1.0}, 33.0);
  reference.observe(0, {3.0, 3.0}, 50.0);
  reference.observe(1, {1.5, 2.0}, 24.0);
  reference.observe(1, {4.0, 1.0}, 55.0);
  reference.observe(2, {2.0, 2.0}, 30.0);
  for (double x0 : {1.0, 2.5, 6.0}) {
    const FeatureVector x = {x0, 2.0};
    const auto p_migrated = migrated.predictions(x);
    const auto p_reference = reference.predictions(x);
    for (std::size_t arm = 0; arm < 3; ++arm) {
      EXPECT_NEAR(p_migrated[arm], p_reference[arm], 1e-9);
    }
  }

  // Migration completes on the next save: the re-saved snapshot is v2 and
  // round-trips byte-identically from then on.
  const std::string v2 = migrated.save_state();
  EXPECT_EQ(v2.rfind("banditware-state v2\n", 0), 0u);
  BanditWare reloaded = BanditWare::load_state(v2);
  EXPECT_EQ(reloaded.save_state(), v2);
  EXPECT_EQ(reloaded.predictions({2.0, 2.0}), migrated.predictions({2.0, 2.0}));
}

TEST(BanditWare, LoadRejectsDuplicateArmNames) {
  const std::string v1 =
      "banditware-state v1\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0\n"
      "epsilon 1\n"
      "features 1 num_tasks\n"
      "arms 2\n"
      "arm H0 2 16 obs 0\n"
      "arm H0 4 32 obs 0\n";
  EXPECT_THROW(BanditWare::load_state(v1), ParseError);

  BanditWare original = make_bandit();
  original.observe(0, {1.0, 2.0}, 3.0);
  std::string v2 = original.save_state();
  const auto pos = v2.find("arm H1");
  ASSERT_NE(pos, std::string::npos);
  v2.replace(pos, 6, "arm H0");  // clone the first arm's name
  EXPECT_THROW(BanditWare::load_state(v2), ParseError);
}

TEST(BanditWare, LoadRejectsNegativeOrOverflowingObsCounts) {
  const std::string header =
      "banditware-state v1\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0\n"
      "epsilon 1\n"
      "features 1 num_tasks\n"
      "arms 1\n";
  // Negative counts must be rejected, not wrapped into a huge unsigned.
  EXPECT_THROW(BanditWare::load_state(header + "arm H0 2 16 obs -3\n"), ParseError);
  // Counts beyond the sanity cap must be rejected before any allocation.
  EXPECT_THROW(BanditWare::load_state(header + "arm H0 2 16 obs 999999999999\n"),
               ParseError);
  // Counts that overflow the integer reader must set failbit and throw.
  EXPECT_THROW(
      BanditWare::load_state(header + "arm H0 2 16 obs 99999999999999999999999\n"),
      ParseError);
  // Garbage where a count should be is malformed, not zero.
  EXPECT_THROW(BanditWare::load_state(header + "arm H0 2 16 obs lots\n"), ParseError);
}

TEST(BanditWare, LoadRejectsGarbage) {
  EXPECT_THROW(BanditWare::load_state(""), ParseError);
  EXPECT_THROW(BanditWare::load_state("not a snapshot"), ParseError);
  EXPECT_THROW(BanditWare::load_state("banditware-state v1\nepsilon0"), ParseError);
}

TEST(BanditWare, LoadRejectsTruncatedObservations) {
  BanditWare original = make_bandit();
  original.observe(0, {1.0, 2.0}, 3.0);
  std::string snapshot = original.save_state();
  snapshot.resize(snapshot.size() - 5);  // chop the last observation
  EXPECT_THROW(BanditWare::load_state(snapshot), ParseError);
}

TEST(BanditWare, ExploredFlagReflectsEpsilon) {
  BanditWareConfig never_explore;
  never_explore.policy.initial_epsilon = 0.0;
  BanditWare greedy = make_bandit(never_explore);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(greedy.next({1.0, 1.0}, rng).explored);
  }
  BanditWareConfig always_explore;
  always_explore.policy.initial_epsilon = 1.0;
  always_explore.policy.decay = 1.0;
  BanditWare explorer = make_bandit(always_explore);
  int explored = 0;
  for (int i = 0; i < 20; ++i) explored += explorer.next({1.0, 1.0}, rng).explored;
  EXPECT_EQ(explored, 20);
}

}  // namespace
}  // namespace bw::core
