// Tests for dataset metrics and the replay evaluator (core/metrics,
// core/evaluator).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "core/epsilon_greedy.hpp"
#include "core/evaluator.hpp"
#include "core/baselines.hpp"

namespace bw::core {
namespace {

/// Noiseless two-arm table: arm 0 runtime = 10x, arm 1 runtime = 5x + 2.
/// Arm 1 is best for x > 0.4, arm 0 never (x >= 1 in this table).
RunTable clean_table(std::size_t groups = 20) {
  linalg::Matrix features(groups, 1);
  linalg::Matrix runtimes(groups, 2);
  for (std::size_t g = 0; g < groups; ++g) {
    const double x = 1.0 + static_cast<double>(g);
    features(g, 0) = x;
    runtimes(g, 0) = 10.0 * x;
    runtimes(g, 1) = 5.0 * x + 2.0;
  }
  hw::HardwareCatalog catalog({{"A", 2, 8.0}, {"B", 4, 16.0}});
  return RunTable({"x"}, std::move(features), std::move(runtimes), std::move(catalog));
}

// ---- RunTable -------------------------------------------------------------

TEST(RunTable, ShapeAccessors) {
  const RunTable table = clean_table(5);
  EXPECT_EQ(table.num_groups(), 5u);
  EXPECT_EQ(table.num_features(), 1u);
  EXPECT_EQ(table.num_arms(), 2u);
  EXPECT_EQ(table.features_of(2), (FeatureVector{3.0}));
  EXPECT_DOUBLE_EQ(table.runtime(0, 0), 10.0);
}

TEST(RunTable, BestArmAndRuntime) {
  const RunTable table = clean_table(3);
  for (std::size_t g = 0; g < 3; ++g) {
    EXPECT_EQ(table.best_arm(g), 1u);
    EXPECT_DOUBLE_EQ(table.best_runtime(g), table.runtime(g, 1));
  }
}

TEST(RunTable, FilterGroupsKeepsSubset) {
  const RunTable table = clean_table(10);
  std::vector<bool> keep(10, false);
  keep[0] = keep[9] = true;
  const RunTable filtered = table.filter_groups(keep);
  EXPECT_EQ(filtered.num_groups(), 2u);
  EXPECT_DOUBLE_EQ(filtered.features()(1, 0), 10.0);
  EXPECT_THROW(table.filter_groups(std::vector<bool>(3, true)), InvalidArgument);
  EXPECT_THROW(table.filter_groups(std::vector<bool>(10, false)), InvalidArgument);
}

TEST(RunTable, SelectFeaturesReorders) {
  linalg::Matrix features(2, 2);
  features(0, 0) = 1.0;
  features(0, 1) = 10.0;
  features(1, 0) = 2.0;
  features(1, 1) = 20.0;
  linalg::Matrix runtimes(2, 1, 5.0);
  RunTable table({"a", "b"}, features, runtimes, hw::HardwareCatalog({{"X", 1, 4.0}}));
  const RunTable selected = table.select_features({"b"});
  EXPECT_EQ(selected.num_features(), 1u);
  EXPECT_DOUBLE_EQ(selected.features()(1, 0), 20.0);
  EXPECT_THROW(table.select_features({"zzz"}), InvalidArgument);
  EXPECT_THROW(table.select_features({}), InvalidArgument);
}

TEST(RunTable, ValidatesConstruction) {
  linalg::Matrix features(2, 1, 1.0);
  linalg::Matrix runtimes(2, 1, 1.0);
  hw::HardwareCatalog catalog({{"X", 1, 4.0}});
  EXPECT_THROW(RunTable({"a", "b"}, features, runtimes, catalog), InvalidArgument);
  EXPECT_THROW(RunTable({"a"}, features, linalg::Matrix(3, 1, 1.0), catalog),
               InvalidArgument);
  linalg::Matrix bad = features;
  bad(0, 0) = std::nan("");
  EXPECT_THROW(RunTable({"a"}, bad, runtimes, catalog), InvalidArgument);
}

// ---- metrics ---------------------------------------------------------------

TEST(Metrics, PerfectPredictorScoresPerfectly) {
  const RunTable table = clean_table();
  const auto predict = [&table](ArmIndex arm, const FeatureVector& x) {
    return arm == 0 ? 10.0 * x[0] : 5.0 * x[0] + 2.0;
  };
  const auto recommend = [](const FeatureVector&) { return ArmIndex{1}; };
  const DatasetMetrics metrics = evaluate_on_table(table, predict, recommend, {});
  EXPECT_NEAR(metrics.rmse, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(metrics.accuracy, 1.0);
}

TEST(Metrics, WrongRecommenderScoresZeroWithoutTolerance) {
  const RunTable table = clean_table();
  const auto predict = [](ArmIndex, const FeatureVector&) { return 0.0; };
  const auto recommend = [](const FeatureVector&) { return ArmIndex{0}; };
  const DatasetMetrics metrics = evaluate_on_table(table, predict, recommend, {});
  EXPECT_DOUBLE_EQ(metrics.accuracy, 0.0);
  EXPECT_GT(metrics.rmse, 0.0);
}

TEST(Metrics, ToleranceForgivesSmallGaps) {
  const RunTable table = clean_table(3);  // x in {1,2,3}: gap 5x-2 <= 13
  const auto predict = [](ArmIndex, const FeatureVector&) { return 0.0; };
  const auto recommend = [](const FeatureVector&) { return ArmIndex{0}; };
  ToleranceParams tolerance;
  tolerance.seconds = 13.0;
  const DatasetMetrics metrics = evaluate_on_table(table, predict, recommend, tolerance);
  EXPECT_DOUBLE_EQ(metrics.accuracy, 1.0);
}

TEST(Metrics, ResourceCostTracksRecommendedArm) {
  const RunTable table = clean_table(4);
  const auto predict = [](ArmIndex, const FeatureVector&) { return 0.0; };
  const auto cheap = [](const FeatureVector&) { return ArmIndex{0}; };
  const auto costly = [](const FeatureVector&) { return ArmIndex{1}; };
  const double cost0 = evaluate_on_table(table, predict, cheap, {}).mean_resource_cost;
  const double cost1 = evaluate_on_table(table, predict, costly, {}).mean_resource_cost;
  EXPECT_LT(cost0, cost1);
}

TEST(Metrics, FullFitOnNoiselessTableIsExact) {
  const RunTable table = clean_table();
  const FullFit fit = fit_full_table(table, {});
  EXPECT_NEAR(fit.metrics.rmse, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(fit.metrics.accuracy, 1.0);
  EXPECT_NEAR(fit.arm_models[0].weights[0], 10.0, 1e-9);
  EXPECT_NEAR(fit.arm_models[1].bias, 2.0, 1e-8);
}

TEST(Metrics, MajorityBestArmAccuracy) {
  const RunTable table = clean_table();
  EXPECT_DOUBLE_EQ(majority_best_arm_accuracy(table, {}), 1.0);  // arm 1 always best
}

// ---- replay -----------------------------------------------------------------

TEST(Replay, LearnsCleanTableAndConverges) {
  const RunTable table = clean_table();
  EpsilonGreedyConfig config;
  DecayingEpsilonGreedy policy(table.catalog(), 1, config);
  ReplayConfig replay_config;
  replay_config.num_rounds = 60;
  replay_config.seed = 5;
  const ReplayResult result = replay(policy, table, replay_config);
  ASSERT_EQ(result.rmse.size(), 60u);
  // Final model must be essentially exact on this noiseless table.
  EXPECT_LT(result.rmse.back(), result.rmse.front());
  EXPECT_LT(result.rmse.back(), 1.0);
  EXPECT_DOUBLE_EQ(result.accuracy.back(), 1.0);
  EXPECT_DOUBLE_EQ(result.final_metrics.accuracy, 1.0);
}

TEST(Replay, DeterministicGivenSeed) {
  const RunTable table = clean_table();
  auto run_once = [&table] {
    DecayingEpsilonGreedy policy(table.catalog(), 1, {});
    ReplayConfig config;
    config.num_rounds = 20;
    config.seed = 99;
    return replay(policy, table, config);
  };
  const ReplayResult a = run_once();
  const ReplayResult b = run_once();
  EXPECT_EQ(a.chosen_arm, b.chosen_arm);
  EXPECT_EQ(a.rmse, b.rmse);
  EXPECT_EQ(a.cumulative_regret, b.cumulative_regret);
}

TEST(Replay, RegretIsNonNegativeAndAccumulates) {
  const RunTable table = clean_table();
  DecayingEpsilonGreedy policy(table.catalog(), 1, {});
  ReplayConfig config;
  config.num_rounds = 30;
  const ReplayResult result = replay(policy, table, config);
  double sum = 0.0;
  for (double r : result.instant_regret) {
    EXPECT_GE(r, 0.0);
    sum += r;
  }
  EXPECT_DOUBLE_EQ(sum, result.cumulative_regret);
}

TEST(Replay, SkippingPerRoundMetricsStillGivesFinal) {
  const RunTable table = clean_table();
  DecayingEpsilonGreedy policy(table.catalog(), 1, {});
  ReplayConfig config;
  config.num_rounds = 25;
  config.per_round_metrics = false;
  const ReplayResult result = replay(policy, table, config);
  EXPECT_TRUE(result.rmse.empty());
  EXPECT_GT(result.final_metrics.accuracy, 0.0);
}

TEST(Replay, RejectsMismatchedPolicy) {
  const RunTable table = clean_table();
  DecayingEpsilonGreedy wrong_arms(hw::HardwareCatalog({{"X", 1, 1.0}}), 1, {});
  ReplayConfig config;
  EXPECT_THROW(replay(wrong_arms, table, config), InvalidArgument);
  DecayingEpsilonGreedy ok(table.catalog(), 1, {});
  config.num_rounds = 0;
  EXPECT_THROW(replay(ok, table, config), InvalidArgument);
}

TEST(Replay, RandomPolicyShowsNoLearning) {
  const RunTable table = clean_table();
  RandomPolicy policy(table.num_arms());
  ReplayConfig config;
  config.num_rounds = 40;
  const ReplayResult result = replay(policy, table, config);
  EXPECT_GT(result.cumulative_regret, 0.0);
}

// ---- multi-sim runner ----------------------------------------------------------

TEST(MultiSim, AggregatesAcrossSeeds) {
  const RunTable table = clean_table();
  ReplayConfig config;
  config.num_rounds = 15;
  config.seed = 7;
  const MultiSimResult result = run_simulations(
      [&table] { return std::make_unique<DecayingEpsilonGreedy>(table.catalog(), 1,
                                                                EpsilonGreedyConfig{}); },
      table, config, 8);
  EXPECT_EQ(result.rmse.rounds(), 15u);
  EXPECT_EQ(result.final_rmse.size(), 8u);
  EXPECT_EQ(result.cumulative_regret.size(), 8u);
  // Full-fit baseline on the noiseless table is exact.
  EXPECT_NEAR(result.full_fit_metrics.rmse, 0.0, 1e-9);
  // Simulations differ (different seeds -> nonzero spread early on).
  EXPECT_GT(result.rmse.stddev[0], 0.0);
}

TEST(MultiSim, ParallelMatchesSequential) {
  const RunTable table = clean_table();
  ReplayConfig config;
  config.num_rounds = 10;
  config.seed = 11;
  const PolicyFactory factory = [&table] {
    return std::make_unique<DecayingEpsilonGreedy>(table.catalog(), 1,
                                                   EpsilonGreedyConfig{});
  };
  const MultiSimResult sequential = run_simulations(factory, table, config, 6, nullptr);
  ThreadPool pool(3);
  const MultiSimResult parallel = run_simulations(factory, table, config, 6, &pool);
  EXPECT_EQ(sequential.rmse.mean, parallel.rmse.mean);
  EXPECT_EQ(sequential.final_accuracy, parallel.final_accuracy);
}

TEST(MultiSim, RejectsBadArguments) {
  const RunTable table = clean_table();
  ReplayConfig config;
  EXPECT_THROW(run_simulations(nullptr, table, config, 2), InvalidArgument);
  EXPECT_THROW(run_simulations(
                   [&table] {
                     return std::make_unique<DecayingEpsilonGreedy>(
                         table.catalog(), 1, EpsilonGreedyConfig{});
                   },
                   table, config, 0),
               InvalidArgument);
}

}  // namespace
}  // namespace bw::core
