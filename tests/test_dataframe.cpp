// Tests for the DataFrame substrate (dataframe/column, dataframe/dataframe).

#include "dataframe/dataframe.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace bw::df {
namespace {

DataFrame sample_frame() {
  DataFrame frame;
  frame.add_column("id", Column(std::vector<std::int64_t>{1, 2, 3, 4}));
  frame.add_column("runtime", Column(std::vector<double>{10.5, 20.0, 15.25, 8.0}));
  frame.add_column("app", Column(std::vector<std::string>{"a", "b", "a", "c"}));
  return frame;
}

TEST(Column, TypesAndSizes) {
  EXPECT_EQ(Column(std::vector<double>{1.0}).type(), ColumnType::kDouble);
  EXPECT_EQ(Column(std::vector<std::int64_t>{1}).type(), ColumnType::kInt64);
  EXPECT_EQ(Column(std::vector<std::string>{"x"}).type(), ColumnType::kString);
  EXPECT_EQ(Column(std::vector<double>{1.0, 2.0}).size(), 2u);
  EXPECT_TRUE(Column().empty());
}

TEST(Column, WrongTypeAccessThrows) {
  const Column c(std::vector<double>{1.0});
  EXPECT_THROW(c.ints(), InvalidArgument);
  EXPECT_THROW(c.strings(), InvalidArgument);
}

TEST(Column, AsDoublesWidensInts) {
  const Column c(std::vector<std::int64_t>{1, 2});
  const auto d = c.as_doubles();
  EXPECT_EQ(d, (std::vector<double>{1.0, 2.0}));
  EXPECT_THROW(Column(std::vector<std::string>{"x"}).as_doubles(), InvalidArgument);
}

TEST(Column, NumericAtAndCellToString) {
  const Column c(std::vector<std::int64_t>{42});
  EXPECT_EQ(c.numeric_at(0), 42.0);
  EXPECT_EQ(c.cell_to_string(0), "42");
  EXPECT_THROW(c.numeric_at(1), InvalidArgument);
  const Column s(std::vector<std::string>{"hi"});
  EXPECT_THROW(s.numeric_at(0), InvalidArgument);
  EXPECT_EQ(s.cell_to_string(0), "hi");
}

TEST(Column, TakeSelectsRowsInOrder) {
  const Column c(std::vector<double>{1.0, 2.0, 3.0});
  const Column t = c.take({2, 0, 2});
  EXPECT_EQ(t.doubles(), (std::vector<double>{3.0, 1.0, 3.0}));
  EXPECT_THROW(c.take({5}), InvalidArgument);
}

TEST(DataFrame, BasicShape) {
  const DataFrame frame = sample_frame();
  EXPECT_EQ(frame.num_rows(), 4u);
  EXPECT_EQ(frame.num_cols(), 3u);
  EXPECT_TRUE(frame.has_column("runtime"));
  EXPECT_FALSE(frame.has_column("nope"));
  EXPECT_THROW(frame.column("nope"), InvalidArgument);
}

TEST(DataFrame, RejectsDuplicateAndMismatchedColumns) {
  DataFrame frame;
  frame.add_column("a", Column(std::vector<double>{1.0}));
  EXPECT_THROW(frame.add_column("a", Column(std::vector<double>{2.0})), InvalidArgument);
  EXPECT_THROW(frame.add_column("b", Column(std::vector<double>{1.0, 2.0})), InvalidArgument);
  EXPECT_THROW(frame.add_column("", Column(std::vector<double>{1.0})), InvalidArgument);
}

TEST(DataFrame, SelectPreservesOrder) {
  const DataFrame sel = sample_frame().select({"app", "id"});
  EXPECT_EQ(sel.column_names(), (std::vector<std::string>{"app", "id"}));
  EXPECT_EQ(sel.num_rows(), 4u);
}

TEST(DataFrame, FilterByPredicate) {
  const DataFrame frame = sample_frame();
  const DataFrame fast = frame.filter_numeric("runtime", [](double r) { return r < 16.0; });
  EXPECT_EQ(fast.num_rows(), 3u);
  EXPECT_EQ(fast.column("id").ints(), (std::vector<std::int64_t>{1, 3, 4}));
}

TEST(DataFrame, FilterToEmptyIsAllowed) {
  const DataFrame none =
      sample_frame().filter_numeric("runtime", [](double r) { return r > 1000.0; });
  EXPECT_EQ(none.num_rows(), 0u);
  EXPECT_EQ(none.num_cols(), 3u);
}

TEST(DataFrame, TakeDuplicatesRows) {
  const DataFrame taken = sample_frame().take({0, 0, 3});
  EXPECT_EQ(taken.num_rows(), 3u);
  EXPECT_EQ(taken.column("id").ints(), (std::vector<std::int64_t>{1, 1, 4}));
}

TEST(DataFrame, HeadClamps) {
  EXPECT_EQ(sample_frame().head(2).num_rows(), 2u);
  EXPECT_EQ(sample_frame().head(100).num_rows(), 4u);
}

TEST(DataFrame, AppendRowsChecksSchema) {
  DataFrame a = sample_frame();
  a.append_rows(sample_frame());
  EXPECT_EQ(a.num_rows(), 8u);

  DataFrame wrong;
  wrong.add_column("id", Column(std::vector<std::int64_t>{9}));
  EXPECT_THROW(a.append_rows(wrong), InvalidArgument);
}

TEST(DataFrame, ToRowMajorFlattensNumerics) {
  const DataFrame frame = sample_frame();
  const auto flat = frame.to_row_major({"id", "runtime"});
  ASSERT_EQ(flat.size(), 8u);
  EXPECT_EQ(flat[0], 1.0);
  EXPECT_EQ(flat[1], 10.5);
  EXPECT_EQ(flat[6], 4.0);
  EXPECT_THROW(frame.to_row_major({"app"}), InvalidArgument);
}

TEST(DataFrame, DescribeSkipsStrings) {
  const auto described = sample_frame().describe();
  ASSERT_EQ(described.size(), 2u);  // id and runtime, not app
  EXPECT_EQ(described[0].first, "id");
  EXPECT_EQ(described[1].first, "runtime");
  EXPECT_DOUBLE_EQ(described[1].second.min, 8.0);
}

TEST(DataFrame, SetColumnReplaces) {
  DataFrame frame = sample_frame();
  frame.set_column("runtime", Column(std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  EXPECT_EQ(frame.column("runtime").doubles()[0], 1.0);
  EXPECT_THROW(frame.set_column("runtime", Column(std::vector<double>{1.0})),
               InvalidArgument);
}

TEST(DataFrame, ToStringShowsTruncation) {
  const std::string out = sample_frame().to_string(2);
  EXPECT_NE(out.find("4 rows total"), std::string::npos);
  EXPECT_EQ(DataFrame().to_string(), "(empty frame)\n");
}

}  // namespace
}  // namespace bw::df
