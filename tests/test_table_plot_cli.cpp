// Tests for table rendering, ASCII plots and the CLI parser (common/).

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "common/ascii_plot.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace bw {
namespace {

// ---- format_double ---------------------------------------------------------

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5000, 4), "1.5");
  EXPECT_EQ(format_double(2.0, 4), "2.0");
  EXPECT_EQ(format_double(0.1234, 4), "0.1234");
}

TEST(FormatDouble, HandlesSpecials) {
  EXPECT_EQ(format_double(std::nan(""), 4), "nan");
  EXPECT_EQ(format_double(INFINITY, 4), "inf");
  EXPECT_EQ(format_double(-INFINITY, 4), "-inf");
}

// ---- Table ------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(Table, RejectsWrongWidthRows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), InvalidArgument);
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(Table, NumericRowFormatting) {
  Table table({"v"});
  table.add_row_numeric({3.14159}, 2);
  EXPECT_NE(table.to_string().find("3.14"), std::string::npos);
}

TEST(Table, MarkdownShape) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table table({"a"});
  table.add_row({"x,y"});
  table.add_row({"he said \"hi\""});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

// ---- ascii plots --------------------------------------------------------------

TEST(AsciiPlot, RendersMarkersAndLegend) {
  Series s;
  s.name = "rmse";
  s.marker = '*';
  s.ys = {10.0, 5.0, 2.0, 1.0};
  const std::string out = plot_lines({s});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("rmse"), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesSaysNoData) {
  EXPECT_NE(plot_lines({}).find("(no data)"), std::string::npos);
}

TEST(AsciiPlot, FlatSeriesDoesNotDivideByZero) {
  Series s;
  s.ys = {3.0, 3.0, 3.0};
  const std::string out = plot_lines({s});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, RejectsTinyCanvas) {
  Series s;
  s.ys = {1.0};
  PlotOptions options;
  options.width = 2;
  EXPECT_THROW(plot_lines({s}, options), InvalidArgument);
}

TEST(AsciiPlot, HistogramCountsSum) {
  std::vector<double> values = {1.0, 1.1, 1.2, 5.0, 9.9};
  const std::string out = plot_histogram(values, 3);
  // All 5 values must appear across the bin counts ("# k" suffixes).
  int total = 0;
  for (std::size_t pos = 0; pos < out.size(); ++pos) {
    if (out[pos] == ' ' && pos + 1 < out.size() && std::isdigit(out[pos + 1]) &&
        (pos + 2 == out.size() || out[pos + 2] == '\n')) {
      total += out[pos + 1] - '0';
    }
  }
  EXPECT_EQ(total, 5);
}

TEST(AsciiPlot, BandPlotsThreeSeries) {
  std::vector<double> mean = {5.0, 4.0, 3.0};
  std::vector<double> sd = {1.0, 0.5, 0.25};
  const std::string out = plot_band(mean, sd);
  EXPECT_NE(out.find("mean+sd"), std::string::npos);
  EXPECT_NE(out.find("mean-sd"), std::string::npos);
}

TEST(AsciiPlot, BandSizeMismatchThrows) {
  std::vector<double> mean = {1.0, 2.0};
  std::vector<double> sd = {0.1};
  EXPECT_THROW(plot_band(mean, sd), InvalidArgument);
}

// ---- CLI ------------------------------------------------------------------

TEST(Cli, ParsesEqualsAndSpaceForms) {
  CliParser cli("test");
  cli.add_flag("rounds", "50", "rounds");
  cli.add_flag("name", "x", "name");
  const char* argv[] = {"prog", "--rounds=100", "--name", "bp3d"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("rounds"), 100);
  EXPECT_EQ(cli.get("name"), "bp3d");
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli("test");
  cli.add_flag("x", "7", "x");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("x"), 7);
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(cli.parse(2, argv), InvalidArgument);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("test");
  cli.add_flag("x", "", "x");
  const char* argv[] = {"prog", "--x"};
  EXPECT_THROW(cli.parse(2, argv), InvalidArgument);
}

TEST(Cli, TypeErrorsThrow) {
  CliParser cli("test");
  cli.add_flag("n", "abc", "n");
  cli.add_flag("d", "1.2.3", "d");
  cli.add_flag("b", "maybe", "b");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW(cli.get_int("n"), InvalidArgument);
  EXPECT_THROW(cli.get_double("d"), InvalidArgument);
  EXPECT_THROW(cli.get_bool("b"), InvalidArgument);
}

TEST(Cli, BoolAcceptsCommonSpellings) {
  CliParser cli("test");
  cli.add_flag("a", "true", "");
  cli.add_flag("b", "0", "");
  cli.add_flag("c", "yes", "");
  cli.add_flag("d", "off", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_TRUE(cli.get_bool("a"));
  EXPECT_FALSE(cli.get_bool("b"));
  EXPECT_TRUE(cli.get_bool("c"));
  EXPECT_FALSE(cli.get_bool("d"));
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli("test");
  const char* argv[] = {"prog", "one", "two"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "one");
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("test tool");
  cli.add_flag("x", "1", "the x flag");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.help().find("the x flag"), std::string::npos);
}

TEST(Cli, UnregisteredGetThrows) {
  CliParser cli("test");
  EXPECT_THROW(cli.get("ghost"), InvalidArgument);
}

}  // namespace
}  // namespace bw
