// Tests for tolerant selection (core/tolerant) — Algorithm 1 line 7.

#include "core/tolerant.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace bw::core {
namespace {

const std::vector<double> kCosts = {1.0, 2.0, 3.0};  // arm 0 most efficient

TEST(TolerantSelect, ZeroToleranceIsArgmin) {
  const TolerantChoice choice = tolerant_select({5.0, 3.0, 4.0}, kCosts, {});
  EXPECT_EQ(choice.arm, 1u);
  EXPECT_DOUBLE_EQ(choice.predicted_runtime, 3.0);
  EXPECT_EQ(choice.candidates, 1u);
  EXPECT_FALSE(choice.efficiency_tie_break);
}

TEST(TolerantSelect, SecondsToleranceAdmitsCheaperArm) {
  // Arm 1 fastest (100), arm 0 within 20 s and cheaper -> arm 0 wins.
  ToleranceParams tolerance;
  tolerance.seconds = 20.0;
  const TolerantChoice choice = tolerant_select({115.0, 100.0, 130.0}, kCosts, tolerance);
  EXPECT_EQ(choice.arm, 0u);
  EXPECT_TRUE(choice.efficiency_tie_break);
  EXPECT_EQ(choice.candidates, 2u);
  EXPECT_DOUBLE_EQ(choice.limit, 120.0);
}

TEST(TolerantSelect, RatioToleranceScalesWithRuntime) {
  ToleranceParams tolerance;
  tolerance.ratio = 0.05;
  // 5% of 1000 = 50: arm 0 at 1040 qualifies, arm 2 at 1100 does not.
  const TolerantChoice choice = tolerant_select({1040.0, 1000.0, 1100.0}, kCosts, tolerance);
  EXPECT_EQ(choice.arm, 0u);
  EXPECT_EQ(choice.candidates, 2u);
}

TEST(TolerantSelect, CombinedToleranceUsesBoth) {
  ToleranceParams tolerance;
  tolerance.ratio = 0.10;
  tolerance.seconds = 5.0;
  // limit = 100 * 1.1 + 5 = 115.
  const TolerantChoice choice = tolerant_select({115.0, 100.0, 116.0}, kCosts, tolerance);
  EXPECT_EQ(choice.arm, 0u);
  EXPECT_EQ(choice.candidates, 2u);
}

TEST(TolerantSelect, FastestWinsWhenAlone) {
  ToleranceParams tolerance;
  tolerance.seconds = 1.0;
  const TolerantChoice choice = tolerant_select({100.0, 50.0, 200.0}, kCosts, tolerance);
  EXPECT_EQ(choice.arm, 1u);
}

TEST(TolerantSelect, NegativePredictionsStillSelectFastest) {
  // An untrained model can extrapolate below zero; the fastest arm must
  // remain admissible (see header note on the max(R̂,0) guard).
  ToleranceParams tolerance;
  tolerance.ratio = 0.5;
  const TolerantChoice choice = tolerant_select({-100.0, 50.0, 60.0}, kCosts, tolerance);
  EXPECT_EQ(choice.arm, 0u);
  EXPECT_GE(choice.candidates, 1u);
}

TEST(TolerantSelect, NegativeFastestWithSecondsTolerance) {
  ToleranceParams tolerance;
  tolerance.seconds = 30.0;
  // limit = -10 + 30 = 20: arms 0 (-10) and 1 (15) qualify; arm 0 cheaper.
  const TolerantChoice choice = tolerant_select({-10.0, 15.0, 25.0}, kCosts, tolerance);
  EXPECT_EQ(choice.arm, 0u);
  EXPECT_EQ(choice.candidates, 2u);
}

TEST(TolerantSelect, AllEqualPredictionsPickMostEfficient) {
  // The untrained state of Algorithm 1: all estimates are 0.
  const TolerantChoice choice = tolerant_select({0.0, 0.0, 0.0}, {3.0, 1.0, 2.0}, {});
  EXPECT_EQ(choice.arm, 1u);
  EXPECT_EQ(choice.candidates, 3u);
}

TEST(TolerantSelect, CostTiesKeepLowestIndex) {
  ToleranceParams tolerance;
  tolerance.seconds = 100.0;
  const TolerantChoice choice = tolerant_select({1.0, 2.0, 3.0}, {5.0, 5.0, 5.0}, tolerance);
  EXPECT_EQ(choice.arm, 0u);
}

TEST(TolerantSelect, SingleArm) {
  const TolerantChoice choice = tolerant_select({42.0}, {1.0}, {});
  EXPECT_EQ(choice.arm, 0u);
  EXPECT_EQ(choice.candidates, 1u);
}

TEST(TolerantSelect, RejectsInvalidInput) {
  // Empty braced lists would be ambiguous between the span and vector
  // overloads; spell the type to pin the empty-input contract itself.
  EXPECT_THROW(tolerant_select(std::vector<double>{}, {}, {}), InvalidArgument);
  EXPECT_THROW(tolerant_select({1.0}, {1.0, 2.0}, {}), InvalidArgument);
  ToleranceParams negative;
  negative.ratio = -0.1;
  EXPECT_THROW(tolerant_select({1.0}, {1.0}, negative), InvalidArgument);
  negative.ratio = 0.0;
  negative.seconds = -1.0;
  EXPECT_THROW(tolerant_select({1.0}, {1.0}, negative), InvalidArgument);
  EXPECT_THROW(tolerant_select({std::nan("")}, {1.0}, {}), InvalidArgument);
}

// Properties over random inputs.
class TolerantProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TolerantProperty, ChosenArmAlwaysWithinLimit) {
  bw::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t arms = 1 + rng.index(6);
    std::vector<double> predictions(arms);
    std::vector<double> costs(arms);
    for (std::size_t i = 0; i < arms; ++i) {
      predictions[i] = rng.uniform(-50.0, 500.0);
      costs[i] = rng.uniform(0.5, 10.0);
    }
    ToleranceParams tolerance;
    tolerance.ratio = rng.uniform(0.0, 0.5);
    tolerance.seconds = rng.uniform(0.0, 50.0);
    const TolerantChoice choice = tolerant_select(predictions, costs, tolerance);
    EXPECT_LE(predictions[choice.arm], choice.limit + 1e-12);
    EXPECT_GE(choice.candidates, 1u);
  }
}

TEST_P(TolerantProperty, WideningToleranceNeverIncreasesCost) {
  bw::Rng rng(GetParam() + 17);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t arms = 2 + rng.index(5);
    std::vector<double> predictions(arms);
    std::vector<double> costs(arms);
    for (std::size_t i = 0; i < arms; ++i) {
      predictions[i] = rng.uniform(0.0, 500.0);
      costs[i] = rng.uniform(0.5, 10.0);
    }
    ToleranceParams narrow;
    narrow.seconds = rng.uniform(0.0, 20.0);
    ToleranceParams wide = narrow;
    wide.seconds += rng.uniform(0.0, 100.0);
    const double cost_narrow = costs[tolerant_select(predictions, costs, narrow).arm];
    const double cost_wide = costs[tolerant_select(predictions, costs, wide).arm];
    EXPECT_LE(cost_wide, cost_narrow + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, TolerantProperty, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace bw::core
