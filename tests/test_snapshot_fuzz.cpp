// Fuzz-style property tests for the snapshot parsers: seeded mutations of
// valid `banditware-state` (v1/v2/v3) and `banditserver-state` (v1-v4)
// texts and of the binary containers (all three payload kinds) —
// truncations, byte flips, deleted/duplicated spans, corrupted
// numbers, policy-token garbage — must either load cleanly (a benign
// mutation, in which case the result must round-trip) or fail with a clean
// bw::Error. Never a crash,
// never an unbounded allocation, never a foreign exception type. The
// loaders are static factories, so "partially applied" state is impossible
// by construction — what this pins is that every rejection is the
// documented ParseError/InvalidArgument, not std::length_error from a
// corrupted count reaching a resize().
//
// ~1k cases per run, deterministic (seeded xoshiro), ASan-clean in CI.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/banditware.hpp"
#include "core/run_table.hpp"
#include "hardware/catalog.hpp"
#include "io/run_table_io.hpp"
#include "io/state_io.hpp"
#include "serve/bandit_server.hpp"

namespace bw {
namespace {

core::BanditWare trained_instance(bool exact_history, double forgetting = 1.0) {
  core::BanditWareConfig config;
  config.policy.exact_history = exact_history;
  config.policy.fit.forgetting = forgetting;
  core::BanditWare bandit(hw::ndp_catalog(), {"num_tasks", "mem_req"}, config);
  for (int i = 0; i < 9; ++i) {
    const core::FeatureVector x = {50.0 + 13.0 * i, 4.0 + (i % 3)};
    bandit.observe(static_cast<core::ArmIndex>(i % 3), x, 10.0 + 0.3 * i);
  }
  return bandit;
}

/// A trained instance running a non-default policy kind — its snapshot is
/// the v3 format (policy token + scalar), which the mutation corpus must
/// cover too.
core::BanditWare trained_policy_instance(core::PolicyKind kind) {
  core::BanditWareConfig config;
  config.policy_kind = kind;
  config.alpha = 1.5;
  config.posterior_scale = 1.25;
  core::BanditWare bandit(hw::ndp_catalog(), {"num_tasks", "mem_req"}, config);
  for (int i = 0; i < 9; ++i) {
    const core::FeatureVector x = {50.0 + 13.0 * i, 4.0 + (i % 3)};
    bandit.observe(static_cast<core::ArmIndex>(i % 3), x, 10.0 + 0.3 * i);
  }
  return bandit;
}

serve::BanditServer trained_server(
    core::PolicyKind kind = core::PolicyKind::kEpsilonGreedy,
    double forgetting = 1.0) {
  serve::BanditServerConfig config;
  config.num_shards = 2;
  config.sharding = serve::ShardingPolicy::kRoundRobin;
  config.sync_every = 2;
  config.bandit.policy_kind = kind;
  config.bandit.policy.fit.forgetting = forgetting;
  serve::BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<serve::ServeObservation> observations;
    for (int i = 0; i < 4; ++i) {
      const double tasks = 30.0 + 7.0 * (batch * 4 + i);
      observations.push_back({static_cast<std::size_t>(i % 2),
                              static_cast<core::ArmIndex>(i % 3),
                              {tasks},
                              5.0 + tasks / catalog[i % 3].cpus});
    }
    server.observe_batch(observations);  // auto-sync at batch 2: real baseline
  }
  return server;
}

/// Legacy v1 banditware text (raw rows, no gpus column, no exact_history).
std::string v1_banditware_text() {
  return "banditware-state v1\n"
         "epsilon0 1 decay 0.99 tol_ratio 0.1 tol_seconds 5\n"
         "epsilon 0.9414801494009999\n"
         "features 2 num_tasks mem_req\n"
         "arms 2\n"
         "arm H0 1 8 obs 2\n"
         "50 4 10.5\n"
         "63 5 11.2\n"
         "arm H1 2 16 obs 1\n"
         "76 6 9.1\n";
}

/// Legacy v1 banditserver text (no sync_every/sync_mode, no baseline blob).
std::string v1_banditserver_text() {
  core::BanditWare replica = trained_instance(false);
  const std::string blob = replica.save_state();
  std::string text = "banditserver-state v1\n";
  text += "shards 1 sharding feature-hash seed 42 threads 0 explore 1 rr_counter 5\n";
  text += "shard 0 bytes " + std::to_string(blob.size()) + "\n" + blob;
  return text;
}

/// One seeded mutation: truncate, flip, delete a span, duplicate a span,
/// insert garbage, or corrupt a number into something hostile.
std::string mutate(const std::string& base, Rng& rng) {
  std::string text = base;
  const int kind = static_cast<int>(rng.uniform_int(0, 5));
  if (text.empty()) return text;
  const std::size_t pos = rng.index(text.size());
  switch (kind) {
    case 0:  // truncate
      text.resize(pos);
      break;
    case 1:  // flip one byte to a random printable (or NUL) character
      text[pos] = static_cast<char>(rng.uniform_int(0, 126));
      break;
    case 2: {  // delete a span
      const std::size_t len = 1 + rng.index(std::min<std::size_t>(64, text.size() - pos));
      text.erase(pos, len);
      break;
    }
    case 3: {  // duplicate a span (shifts every later offset)
      const std::size_t len = 1 + rng.index(std::min<std::size_t>(64, text.size() - pos));
      text.insert(pos, text.substr(pos, len));
      break;
    }
    case 4: {  // insert a garbage token (including a real embedded NUL)
      static const std::string kTokens[] = {
          "-3",  "999999999999999999999", "nan",
          "inf", "arm",                   "end",
          std::string("\0", 1),           "1e308",
          "shards",                       "policy",
          "linucb"};
      text.insert(pos, kTokens[rng.index(std::size(kTokens))]);
      break;
    }
    default: {  // corrupt the first digit-run at/after pos into a huge value
      std::size_t digit = text.find_first_of("0123456789", pos);
      if (digit == std::string::npos) {
        text.resize(pos);
      } else {
        text.replace(digit, 1, rng.bernoulli(0.5) ? "98765432109876543210" : "-7");
      }
      break;
    }
  }
  return text;
}

/// Exercise one parser on a mutated text. Whatever happens must be either a
/// clean load (then the round trip must be stable) or a clean bw::Error.
template <typename Loader>
void check_one(const std::string& mutated, Loader&& load, const char* what,
               int case_index) {
  try {
    load(mutated);
  } catch (const bw::Error&) {
    // Clean, typed rejection: the contract.
  } catch (const std::exception& error) {
    ADD_FAILURE() << what << " case " << case_index
                  << ": foreign exception type: " << error.what();
  } catch (...) {
    ADD_FAILURE() << what << " case " << case_index << ": unknown exception";
  }
}

TEST(SnapshotFuzz, BanditWareParsersRejectMutationsCleanly) {
  const std::vector<std::string> corpus = {
      trained_instance(false).save_state(),  // v2 stats records
      trained_instance(true).save_state(),   // v2 raw-row records
      v1_banditware_text(),                  // legacy v1
      // v3 policy-token formats: mutations hit the policy line and its
      // scalar as often as the rest of the header.
      trained_policy_instance(core::PolicyKind::kLinUcb).save_state(),
      trained_policy_instance(core::PolicyKind::kThompson).save_state(),
      // v4 discount superset: mutations hit the lambda line too.
      trained_instance(false, 0.5).save_state(),
  };
  Rng rng(20260730);
  constexpr int kCasesPerBase = 220;
  for (std::size_t b = 0; b < corpus.size(); ++b) {
    for (int i = 0; i < kCasesPerBase; ++i) {
      std::string mutated = mutate(corpus[b], rng);
      if (rng.bernoulli(0.33)) mutated = mutate(mutated, rng);  // stacked
      check_one(
          mutated,
          [](const std::string& text) {
            const core::BanditWare bandit = core::BanditWare::load_state(text);
            // A benign mutation that still parses must round-trip stably.
            const std::string resaved = bandit.save_state();
            EXPECT_EQ(core::BanditWare::load_state(resaved).save_state(), resaved);
          },
          "banditware", i);
    }
  }
}

TEST(SnapshotFuzz, BanditServerParsersRejectMutationsCleanly) {
  const std::vector<std::string> corpus = {
      trained_server().save_state(),  // current v3 (shard + baseline blobs)
      v1_banditserver_text(),         // legacy v1
      // v4 (policy token in the header, v3 blobs inside).
      trained_server(core::PolicyKind::kLinUcb).save_state(),
      trained_server(core::PolicyKind::kThompson).save_state(),
      // v5 discount superset: header lambda token + discounted blobs.
      trained_server(core::PolicyKind::kEpsilonGreedy, 0.5).save_state(),
  };
  Rng rng(9143071);
  constexpr int kCasesPerBase = 220;
  for (std::size_t b = 0; b < corpus.size(); ++b) {
    for (int i = 0; i < kCasesPerBase; ++i) {
      std::string mutated = mutate(corpus[b], rng);
      if (rng.bernoulli(0.33)) mutated = mutate(mutated, rng);
      check_one(
          mutated,
          [](const std::string& text) {
            serve::BanditServer server = serve::BanditServer::load_state(text);
            const std::string resaved = server.save_state();
            EXPECT_EQ(serve::BanditServer::load_state(resaved).save_state(), resaved);
          },
          "banditserver", i);
    }
  }
}

TEST(SnapshotFuzz, HostileCountsFailWithoutAllocating) {
  // Directed cases for every bounded count: each must produce a clean
  // ParseError, not a resize() into bad_alloc or a replay of 10^18 rows.
  const std::vector<std::string> hostile = {
      "banditware-state v2\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 999999999999999999 a\narms 1\n",
      "banditware-state v2\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 888888888888\n",
      "banditware-state v1\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\narm H0 1 8 obs 999999999999\n",
      "banditserver-state v3\n"
      "shards 77777777777777 sharding feature-hash seed 1 threads 0 explore 1 "
      "sync_every 0 sync_mode inline observe_batches 0 rr_counter 0\n",
      // "-7" wraps to ~1.8e19 in the unsigned extraction: must be a clean
      // ParseError, not a ThreadPool trying to reserve that many workers.
      "banditserver-state v3\n"
      "shards 1 sharding feature-hash seed 1 threads -7 explore 1 "
      "sync_every 0 sync_mode inline observe_batches 0 rr_counter 0\n",
      "banditserver-state v3\n"
      "shards 1 sharding feature-hash seed 1 threads 0 explore 1 sync_every 0 "
      "sync_mode inline observe_batches 0 rr_counter 0\n"
      "shard 0 bytes 888888888888888\nbanditware-state v2\n",
      // Policy-token corruption: an unknown kind and a missing scalar must
      // both be clean ParseErrors, not partially-parsed configs.
      "banditware-state v3\n"
      "policy warp-drive\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditware-state v3\n"
      "policy linucb width 2\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      // Out-of-range policy scalars must be the documented ParseError, not
      // the policy constructors' InvalidArgument leaking through the loader.
      "banditware-state v3\n"
      "policy linucb alpha -1\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditware-state v3\n"
      "policy thompson posterior_scale 0\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditware-state v3\n"
      "policy thompson posterior_scale nan\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditserver-state v4\n"
      "shards 1 sharding feature-hash seed 1 threads 0 explore 1 sync_every 0 "
      "sync_mode inline policy warp-drive observe_batches 0 rr_counter 0\n",
      // Discount-token corruption: out-of-range, non-finite, or
      // backend-incompatible lambdas must all be clean ParseErrors.
      "banditware-state v4\n"
      "lambda 1.5\n"
      "policy epsilon-greedy\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditware-state v4\n"
      "lambda 0\n"
      "policy epsilon-greedy\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditware-state v4\n"
      "lambda nan\n"
      "policy epsilon-greedy\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditware-state v4\n"
      "lambda 0.5\n"
      "policy epsilon-greedy\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 1\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditserver-state v5\n"
      "shards 1 sharding feature-hash seed 1 threads 0 explore 1 sync_every 0 "
      "sync_mode inline lambda -1 policy epsilon-greedy observe_batches 0 "
      "rr_counter 0\n",
      "banditserver-state v5\n"
      "shards 1 sharding feature-hash seed 1 threads 0 explore 1 sync_every 0 "
      "sync_mode inline lambda inf policy epsilon-greedy observe_batches 0 "
      "rr_counter 0\n",
  };
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    if (hostile[i].rfind("banditserver", 0) == 0) {
      EXPECT_THROW(serve::BanditServer::load_state(hostile[i]), ParseError) << i;
    } else {
      EXPECT_THROW(core::BanditWare::load_state(hostile[i]), ParseError) << i;
    }
  }
}

// ---- binary container corpus --------------------------------------------
// The same mutation engine against the packet-framed binary formats. Most
// byte damage lands in a checksummed payload, which the reader absorbs as
// a tolerant truncation — so a "clean load with info.truncated set" is as
// common an outcome here as ParseError. Both are fine; foreign exceptions,
// crashes, and bad_alloc are not.

template <typename State>
std::string binary_blob(const State& state) {
  std::ostringstream os(std::ios::binary);
  io::save_state(os, state, io::Format::kBinary);
  return os.str();
}

TEST(SnapshotFuzz, BinaryStateContainersRejectMutationsCleanly) {
  const std::vector<std::string> bandit_corpus = {
      binary_blob(trained_instance(false)),
      binary_blob(trained_instance(true)),
      binary_blob(trained_policy_instance(core::PolicyKind::kLinUcb)),
      binary_blob(trained_policy_instance(core::PolicyKind::kThompson)),
  };
  const std::vector<std::string> server_corpus = {
      binary_blob(trained_server()),
      binary_blob(trained_server(core::PolicyKind::kThompson)),
  };
  Rng rng(20260808);
  constexpr int kCasesPerBase = 220;
  for (std::size_t b = 0; b < bandit_corpus.size(); ++b) {
    for (int i = 0; i < kCasesPerBase; ++i) {
      std::string mutated = mutate(bandit_corpus[b], rng);
      if (rng.bernoulli(0.33)) mutated = mutate(mutated, rng);
      check_one(
          mutated,
          [](const std::string& bytes) {
            std::istringstream is(bytes, std::ios::binary);
            const core::BanditWare bandit = io::load_state(is);
            // Whatever loaded — full or truncated-tolerant — must be a
            // coherent model whose binary round trip is byte-stable.
            const std::string resaved = binary_blob(bandit);
            std::istringstream is2(resaved, std::ios::binary);
            EXPECT_EQ(binary_blob(io::load_state(is2)), resaved);
          },
          "banditware-binary", i);
    }
  }
  for (std::size_t b = 0; b < server_corpus.size(); ++b) {
    for (int i = 0; i < kCasesPerBase; ++i) {
      std::string mutated = mutate(server_corpus[b], rng);
      if (rng.bernoulli(0.33)) mutated = mutate(mutated, rng);
      check_one(
          mutated,
          [](const std::string& bytes) {
            std::istringstream is(bytes, std::ios::binary);
            serve::BanditServer server = io::load_server_state(is);
            const std::string resaved = binary_blob(server);
            std::istringstream is2(resaved, std::ios::binary);
            EXPECT_EQ(binary_blob(io::load_server_state(is2)), resaved);
          },
          "banditserver-binary", i);
    }
  }
}

TEST(SnapshotFuzz, RunTableContainersRejectMutationsCleanly) {
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  linalg::Matrix features(12, 2);
  linalg::Matrix runtimes(12, catalog.size());
  for (std::size_t g = 0; g < 12; ++g) {
    features(g, 0) = 20.0 + 3.0 * static_cast<double>(g);
    features(g, 1) = 4.0 + static_cast<double>(g % 3);
    for (std::size_t a = 0; a < catalog.size(); ++a) {
      runtimes(g, a) = 2.0 + features(g, 0) / catalog[a].cpus;
    }
  }
  const core::RunTable table({"num_tasks", "mem_req"}, std::move(features),
                             std::move(runtimes), catalog);
  std::ostringstream os(std::ios::binary);
  io::write_run_table(os, table);
  const std::string base = os.str();

  Rng rng(20260809);
  for (int i = 0; i < 330; ++i) {
    std::string mutated = mutate(base, rng);
    if (rng.bernoulli(0.33)) mutated = mutate(mutated, rng);
    check_one(
        mutated,
        [](const std::string& bytes) {
          std::istringstream is(bytes, std::ios::binary);
          const core::RunTable loaded = io::read_run_table(is);
          // Any table that loads is valid by construction (finite values,
          // >= 1 row); its own round trip must be byte-stable.
          std::ostringstream out(std::ios::binary);
          io::write_run_table(out, loaded);
          std::istringstream is2(out.str(), std::ios::binary);
          std::ostringstream out2(std::ios::binary);
          io::write_run_table(out2, io::read_run_table(is2));
          EXPECT_EQ(out2.str(), out.str());
        },
        "run-table", i);
  }
}

}  // namespace
}  // namespace bw
