// Fuzz-style property tests for the snapshot parsers: seeded mutations of
// valid `banditware-state` (v1/v2/v3) and `banditserver-state` (v1-v4)
// texts and of the binary containers (all three payload kinds) —
// truncations, byte flips, deleted/duplicated spans, corrupted
// numbers, policy-token garbage — must either load cleanly (a benign
// mutation, in which case the result must round-trip) or fail with a clean
// bw::Error. Never a crash,
// never an unbounded allocation, never a foreign exception type. The
// loaders are static factories, so "partially applied" state is impossible
// by construction — what this pins is that every rejection is the
// documented ParseError/InvalidArgument, not std::length_error from a
// corrupted count reaching a resize().
//
// ~1k cases per run, deterministic (seeded xoshiro), ASan-clean in CI.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/banditware.hpp"
#include "core/run_table.hpp"
#include "fleet/fleet_node.hpp"
#include "hardware/catalog.hpp"
#include "io/container.hpp"
#include "io/fleet_wire.hpp"
#include "io/run_table_io.hpp"
#include "io/state_io.hpp"
#include "serve/bandit_server.hpp"

namespace bw {
namespace {

core::BanditWare trained_instance(bool exact_history, double forgetting = 1.0) {
  core::BanditWareConfig config;
  config.policy.exact_history = exact_history;
  config.policy.fit.forgetting = forgetting;
  core::BanditWare bandit(hw::ndp_catalog(), {"num_tasks", "mem_req"}, config);
  for (int i = 0; i < 9; ++i) {
    const core::FeatureVector x = {50.0 + 13.0 * i, 4.0 + (i % 3)};
    bandit.observe(static_cast<core::ArmIndex>(i % 3), x, 10.0 + 0.3 * i);
  }
  return bandit;
}

/// A trained instance running a non-default policy kind — its snapshot is
/// the v3 format (policy token + scalar), which the mutation corpus must
/// cover too.
core::BanditWare trained_policy_instance(core::PolicyKind kind) {
  core::BanditWareConfig config;
  config.policy_kind = kind;
  config.alpha = 1.5;
  config.posterior_scale = 1.25;
  core::BanditWare bandit(hw::ndp_catalog(), {"num_tasks", "mem_req"}, config);
  for (int i = 0; i < 9; ++i) {
    const core::FeatureVector x = {50.0 + 13.0 * i, 4.0 + (i % 3)};
    bandit.observe(static_cast<core::ArmIndex>(i % 3), x, 10.0 + 0.3 * i);
  }
  return bandit;
}

serve::BanditServer trained_server(
    core::PolicyKind kind = core::PolicyKind::kEpsilonGreedy,
    double forgetting = 1.0) {
  serve::BanditServerConfig config;
  config.num_shards = 2;
  config.sharding = serve::ShardingPolicy::kRoundRobin;
  config.sync_every = 2;
  config.bandit.policy_kind = kind;
  config.bandit.policy.fit.forgetting = forgetting;
  serve::BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<serve::ServeObservation> observations;
    for (int i = 0; i < 4; ++i) {
      const double tasks = 30.0 + 7.0 * (batch * 4 + i);
      observations.push_back({static_cast<std::size_t>(i % 2),
                              static_cast<core::ArmIndex>(i % 3),
                              {tasks},
                              5.0 + tasks / catalog[i % 3].cpus});
    }
    server.observe_batch(observations);  // auto-sync at batch 2: real baseline
  }
  return server;
}

/// Legacy v1 banditware text (raw rows, no gpus column, no exact_history).
std::string v1_banditware_text() {
  return "banditware-state v1\n"
         "epsilon0 1 decay 0.99 tol_ratio 0.1 tol_seconds 5\n"
         "epsilon 0.9414801494009999\n"
         "features 2 num_tasks mem_req\n"
         "arms 2\n"
         "arm H0 1 8 obs 2\n"
         "50 4 10.5\n"
         "63 5 11.2\n"
         "arm H1 2 16 obs 1\n"
         "76 6 9.1\n";
}

/// Legacy v1 banditserver text (no sync_every/sync_mode, no baseline blob).
std::string v1_banditserver_text() {
  core::BanditWare replica = trained_instance(false);
  const std::string blob = replica.save_state();
  std::string text = "banditserver-state v1\n";
  text += "shards 1 sharding feature-hash seed 42 threads 0 explore 1 rr_counter 5\n";
  text += "shard 0 bytes " + std::to_string(blob.size()) + "\n" + blob;
  return text;
}

/// One seeded mutation: truncate, flip, delete a span, duplicate a span,
/// insert garbage, or corrupt a number into something hostile.
std::string mutate(const std::string& base, Rng& rng) {
  std::string text = base;
  const int kind = static_cast<int>(rng.uniform_int(0, 5));
  if (text.empty()) return text;
  const std::size_t pos = rng.index(text.size());
  switch (kind) {
    case 0:  // truncate
      text.resize(pos);
      break;
    case 1:  // flip one byte to a random printable (or NUL) character
      text[pos] = static_cast<char>(rng.uniform_int(0, 126));
      break;
    case 2: {  // delete a span
      const std::size_t len = 1 + rng.index(std::min<std::size_t>(64, text.size() - pos));
      text.erase(pos, len);
      break;
    }
    case 3: {  // duplicate a span (shifts every later offset)
      const std::size_t len = 1 + rng.index(std::min<std::size_t>(64, text.size() - pos));
      text.insert(pos, text.substr(pos, len));
      break;
    }
    case 4: {  // insert a garbage token (including a real embedded NUL)
      static const std::string kTokens[] = {
          "-3",  "999999999999999999999", "nan",
          "inf", "arm",                   "end",
          std::string("\0", 1),           "1e308",
          "shards",                       "policy",
          "linucb"};
      text.insert(pos, kTokens[rng.index(std::size(kTokens))]);
      break;
    }
    default: {  // corrupt the first digit-run at/after pos into a huge value
      std::size_t digit = text.find_first_of("0123456789", pos);
      if (digit == std::string::npos) {
        text.resize(pos);
      } else {
        text.replace(digit, 1, rng.bernoulli(0.5) ? "98765432109876543210" : "-7");
      }
      break;
    }
  }
  return text;
}

/// Exercise one parser on a mutated text. Whatever happens must be either a
/// clean load (then the round trip must be stable) or a clean bw::Error.
template <typename Loader>
void check_one(const std::string& mutated, Loader&& load, const char* what,
               int case_index) {
  try {
    load(mutated);
  } catch (const bw::Error&) {
    // Clean, typed rejection: the contract.
  } catch (const std::exception& error) {
    ADD_FAILURE() << what << " case " << case_index
                  << ": foreign exception type: " << error.what();
  } catch (...) {
    ADD_FAILURE() << what << " case " << case_index << ": unknown exception";
  }
}

TEST(SnapshotFuzz, BanditWareParsersRejectMutationsCleanly) {
  const std::vector<std::string> corpus = {
      trained_instance(false).save_state(),  // v2 stats records
      trained_instance(true).save_state(),   // v2 raw-row records
      v1_banditware_text(),                  // legacy v1
      // v3 policy-token formats: mutations hit the policy line and its
      // scalar as often as the rest of the header.
      trained_policy_instance(core::PolicyKind::kLinUcb).save_state(),
      trained_policy_instance(core::PolicyKind::kThompson).save_state(),
      // v4 discount superset: mutations hit the lambda line too.
      trained_instance(false, 0.5).save_state(),
  };
  Rng rng(20260730);
  constexpr int kCasesPerBase = 220;
  for (std::size_t b = 0; b < corpus.size(); ++b) {
    for (int i = 0; i < kCasesPerBase; ++i) {
      std::string mutated = mutate(corpus[b], rng);
      if (rng.bernoulli(0.33)) mutated = mutate(mutated, rng);  // stacked
      check_one(
          mutated,
          [](const std::string& text) {
            const core::BanditWare bandit = core::BanditWare::load_state(text);
            // A benign mutation that still parses must round-trip stably.
            const std::string resaved = bandit.save_state();
            EXPECT_EQ(core::BanditWare::load_state(resaved).save_state(), resaved);
          },
          "banditware", i);
    }
  }
}

TEST(SnapshotFuzz, BanditServerParsersRejectMutationsCleanly) {
  const std::vector<std::string> corpus = {
      trained_server().save_state(),  // current v3 (shard + baseline blobs)
      v1_banditserver_text(),         // legacy v1
      // v4 (policy token in the header, v3 blobs inside).
      trained_server(core::PolicyKind::kLinUcb).save_state(),
      trained_server(core::PolicyKind::kThompson).save_state(),
      // v5 discount superset: header lambda token + discounted blobs.
      trained_server(core::PolicyKind::kEpsilonGreedy, 0.5).save_state(),
  };
  Rng rng(9143071);
  constexpr int kCasesPerBase = 220;
  for (std::size_t b = 0; b < corpus.size(); ++b) {
    for (int i = 0; i < kCasesPerBase; ++i) {
      std::string mutated = mutate(corpus[b], rng);
      if (rng.bernoulli(0.33)) mutated = mutate(mutated, rng);
      check_one(
          mutated,
          [](const std::string& text) {
            serve::BanditServer server = serve::BanditServer::load_state(text);
            const std::string resaved = server.save_state();
            EXPECT_EQ(serve::BanditServer::load_state(resaved).save_state(), resaved);
          },
          "banditserver", i);
    }
  }
}

TEST(SnapshotFuzz, HostileCountsFailWithoutAllocating) {
  // Directed cases for every bounded count: each must produce a clean
  // ParseError, not a resize() into bad_alloc or a replay of 10^18 rows.
  const std::vector<std::string> hostile = {
      "banditware-state v2\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 999999999999999999 a\narms 1\n",
      "banditware-state v2\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 888888888888\n",
      "banditware-state v1\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\narm H0 1 8 obs 999999999999\n",
      "banditserver-state v3\n"
      "shards 77777777777777 sharding feature-hash seed 1 threads 0 explore 1 "
      "sync_every 0 sync_mode inline observe_batches 0 rr_counter 0\n",
      // "-7" wraps to ~1.8e19 in the unsigned extraction: must be a clean
      // ParseError, not a ThreadPool trying to reserve that many workers.
      "banditserver-state v3\n"
      "shards 1 sharding feature-hash seed 1 threads -7 explore 1 "
      "sync_every 0 sync_mode inline observe_batches 0 rr_counter 0\n",
      "banditserver-state v3\n"
      "shards 1 sharding feature-hash seed 1 threads 0 explore 1 sync_every 0 "
      "sync_mode inline observe_batches 0 rr_counter 0\n"
      "shard 0 bytes 888888888888888\nbanditware-state v2\n",
      // Policy-token corruption: an unknown kind and a missing scalar must
      // both be clean ParseErrors, not partially-parsed configs.
      "banditware-state v3\n"
      "policy warp-drive\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditware-state v3\n"
      "policy linucb width 2\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      // Out-of-range policy scalars must be the documented ParseError, not
      // the policy constructors' InvalidArgument leaking through the loader.
      "banditware-state v3\n"
      "policy linucb alpha -1\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditware-state v3\n"
      "policy thompson posterior_scale 0\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditware-state v3\n"
      "policy thompson posterior_scale nan\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditserver-state v4\n"
      "shards 1 sharding feature-hash seed 1 threads 0 explore 1 sync_every 0 "
      "sync_mode inline policy warp-drive observe_batches 0 rr_counter 0\n",
      // Discount-token corruption: out-of-range, non-finite, or
      // backend-incompatible lambdas must all be clean ParseErrors.
      "banditware-state v4\n"
      "lambda 1.5\n"
      "policy epsilon-greedy\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditware-state v4\n"
      "lambda 0\n"
      "policy epsilon-greedy\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditware-state v4\n"
      "lambda nan\n"
      "policy epsilon-greedy\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 0\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditware-state v4\n"
      "lambda 0.5\n"
      "policy epsilon-greedy\n"
      "epsilon0 1 decay 0.99 tol_ratio 0 tol_seconds 0 exact_history 1\n"
      "epsilon 1\nfeatures 1 x\narms 1\n",
      "banditserver-state v5\n"
      "shards 1 sharding feature-hash seed 1 threads 0 explore 1 sync_every 0 "
      "sync_mode inline lambda -1 policy epsilon-greedy observe_batches 0 "
      "rr_counter 0\n",
      "banditserver-state v5\n"
      "shards 1 sharding feature-hash seed 1 threads 0 explore 1 sync_every 0 "
      "sync_mode inline lambda inf policy epsilon-greedy observe_batches 0 "
      "rr_counter 0\n",
  };
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    if (hostile[i].rfind("banditserver", 0) == 0) {
      EXPECT_THROW(serve::BanditServer::load_state(hostile[i]), ParseError) << i;
    } else {
      EXPECT_THROW(core::BanditWare::load_state(hostile[i]), ParseError) << i;
    }
  }
}

// ---- binary container corpus --------------------------------------------
// The same mutation engine against the packet-framed binary formats. Most
// byte damage lands in a checksummed payload, which the reader absorbs as
// a tolerant truncation — so a "clean load with info.truncated set" is as
// common an outcome here as ParseError. Both are fine; foreign exceptions,
// crashes, and bad_alloc are not.

template <typename State>
std::string binary_blob(const State& state) {
  std::ostringstream os(std::ios::binary);
  io::save_state(os, state, io::Format::kBinary);
  return os.str();
}

TEST(SnapshotFuzz, BinaryStateContainersRejectMutationsCleanly) {
  const std::vector<std::string> bandit_corpus = {
      binary_blob(trained_instance(false)),
      binary_blob(trained_instance(true)),
      binary_blob(trained_policy_instance(core::PolicyKind::kLinUcb)),
      binary_blob(trained_policy_instance(core::PolicyKind::kThompson)),
  };
  const std::vector<std::string> server_corpus = {
      binary_blob(trained_server()),
      binary_blob(trained_server(core::PolicyKind::kThompson)),
  };
  Rng rng(20260808);
  constexpr int kCasesPerBase = 220;
  for (std::size_t b = 0; b < bandit_corpus.size(); ++b) {
    for (int i = 0; i < kCasesPerBase; ++i) {
      std::string mutated = mutate(bandit_corpus[b], rng);
      if (rng.bernoulli(0.33)) mutated = mutate(mutated, rng);
      check_one(
          mutated,
          [](const std::string& bytes) {
            std::istringstream is(bytes, std::ios::binary);
            const core::BanditWare bandit = io::load_state(is);
            // Whatever loaded — full or truncated-tolerant — must be a
            // coherent model whose binary round trip is byte-stable.
            const std::string resaved = binary_blob(bandit);
            std::istringstream is2(resaved, std::ios::binary);
            EXPECT_EQ(binary_blob(io::load_state(is2)), resaved);
          },
          "banditware-binary", i);
    }
  }
  for (std::size_t b = 0; b < server_corpus.size(); ++b) {
    for (int i = 0; i < kCasesPerBase; ++i) {
      std::string mutated = mutate(server_corpus[b], rng);
      if (rng.bernoulli(0.33)) mutated = mutate(mutated, rng);
      check_one(
          mutated,
          [](const std::string& bytes) {
            std::istringstream is(bytes, std::ios::binary);
            serve::BanditServer server = io::load_server_state(is);
            const std::string resaved = binary_blob(server);
            std::istringstream is2(resaved, std::ios::binary);
            EXPECT_EQ(binary_blob(io::load_server_state(is2)), resaved);
          },
          "banditserver-binary", i);
    }
  }
}

TEST(SnapshotFuzz, RunTableContainersRejectMutationsCleanly) {
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  linalg::Matrix features(12, 2);
  linalg::Matrix runtimes(12, catalog.size());
  for (std::size_t g = 0; g < 12; ++g) {
    features(g, 0) = 20.0 + 3.0 * static_cast<double>(g);
    features(g, 1) = 4.0 + static_cast<double>(g % 3);
    for (std::size_t a = 0; a < catalog.size(); ++a) {
      runtimes(g, a) = 2.0 + features(g, 0) / catalog[a].cpus;
    }
  }
  const core::RunTable table({"num_tasks", "mem_req"}, std::move(features),
                             std::move(runtimes), catalog);
  std::ostringstream os(std::ios::binary);
  io::write_run_table(os, table);
  const std::string base = os.str();

  Rng rng(20260809);
  for (int i = 0; i < 330; ++i) {
    std::string mutated = mutate(base, rng);
    if (rng.bernoulli(0.33)) mutated = mutate(mutated, rng);
    check_one(
        mutated,
        [](const std::string& bytes) {
          std::istringstream is(bytes, std::ios::binary);
          const core::RunTable loaded = io::read_run_table(is);
          // Any table that loads is valid by construction (finite values,
          // >= 1 row); its own round trip must be byte-stable.
          std::ostringstream out(std::ios::binary);
          io::write_run_table(out, loaded);
          std::istringstream is2(out.str(), std::ios::binary);
          std::ostringstream out2(std::ios::binary);
          io::write_run_table(out2, io::read_run_table(is2));
          EXPECT_EQ(out2.str(), out.str());
        },
        "run-table", i);
  }
}

// ---- fleet wire corpus ---------------------------------------------------
// The gossip delta (kind 4) and node snapshot (kind 5) under the same
// mutation engine, plus directed hostile packets against every bounded
// count in the fleet readers. Deltas that survive a mutation are also
// pushed through the semantic apply path of a live FleetNode — whatever
// the wire layer tolerated must fold cleanly or reject with a typed error,
// never corrupt the receiver.

/// A fleet node with a deterministic local stream. All nodes built here
/// share one config envelope so their deltas fuse into each other.
fleet::FleetNode trained_fleet_node(std::uint32_t node_id, core::PolicyKind kind,
                                    double forgetting) {
  fleet::FleetNodeConfig config;
  config.node_id = node_id;
  config.server.num_shards = 1;
  config.server.seed = 17 + node_id;
  config.server.bandit.policy_kind = kind;
  config.server.bandit.alpha = 1.5;
  config.server.bandit.posterior_scale = 1.25;
  config.server.bandit.policy.fit.forgetting = forgetting;
  config.server.bandit.policy.fit.ridge = 1e-3;
  fleet::FleetNode node(hw::ndp_catalog(), {"num_tasks"}, config);
  std::vector<serve::ServeObservation> observations;
  for (int i = 0; i < 8; ++i) {
    const double tasks = 20.0 + 5.0 * i + 3.0 * node_id;
    observations.push_back(
        {0, static_cast<core::ArmIndex>(i % 3), {tasks}, 4.0 + tasks / 16.0});
  }
  node.observe_batch(observations);
  return node;
}

/// A delta carrying TWO origin streams (the sender's own plus one learned
/// via gossip) and a version vector — the richest kind-4 shape.
std::string fleet_delta_bytes(core::PolicyKind kind, double forgetting) {
  fleet::FleetNode a = trained_fleet_node(0, kind, forgetting);
  fleet::FleetNode b = trained_fleet_node(1, kind, forgetting);
  b.apply_delta(io::load_fleet_delta(io::save_fleet_delta(a.make_delta(1))));
  return io::save_fleet_delta(b.make_delta(2));
}

std::string fleet_node_bytes(core::PolicyKind kind, double forgetting) {
  fleet::FleetNode a = trained_fleet_node(0, kind, forgetting);
  fleet::FleetNode b = trained_fleet_node(1, kind, forgetting);
  b.apply_delta(io::load_fleet_delta(io::save_fleet_delta(a.make_delta(1))));
  return b.save_snapshot();
}

TEST(SnapshotFuzz, FleetWireContainersRejectMutationsCleanly) {
  struct DeltaBase {
    std::string bytes;
    core::PolicyKind kind;
    double forgetting;
  };
  const std::vector<DeltaBase> delta_corpus = {
      {fleet_delta_bytes(core::PolicyKind::kEpsilonGreedy, 1.0),
       core::PolicyKind::kEpsilonGreedy, 1.0},
      {fleet_delta_bytes(core::PolicyKind::kLinUcb, 1.0), core::PolicyKind::kLinUcb,
       1.0},
      // Discounted: mutations hit the λ slot of the config envelope too.
      {fleet_delta_bytes(core::PolicyKind::kThompson, 0.5),
       core::PolicyKind::kThompson, 0.5},
  };
  const std::vector<std::string> node_corpus = {
      fleet_node_bytes(core::PolicyKind::kEpsilonGreedy, 1.0),
      fleet_node_bytes(core::PolicyKind::kLinUcb, 0.5),
  };
  Rng rng(20260810);
  constexpr int kCasesPerBase = 220;
  for (const DeltaBase& base : delta_corpus) {
    // One long-lived receiver per base: mutated-but-parseable deltas must
    // fold into it (or reject cleanly) without ever poisoning later applies.
    fleet::FleetNode receiver = trained_fleet_node(9, base.kind, base.forgetting);
    for (int i = 0; i < kCasesPerBase; ++i) {
      std::string mutated = mutate(base.bytes, rng);
      if (rng.bernoulli(0.33)) mutated = mutate(mutated, rng);
      check_one(
          mutated,
          [&receiver](const std::string& bytes) {
            bool truncated = false;
            const io::FleetDelta delta = io::load_fleet_delta(bytes, &truncated);
            // Whatever loaded — full or truncated-tolerant — must re-save
            // byte-stably...
            const std::string resaved = io::save_fleet_delta(delta);
            EXPECT_EQ(io::save_fleet_delta(io::load_fleet_delta(resaved)), resaved);
            // ...and apply cleanly: a partial apply before a typed rejection
            // is fine (replace-if-larger-n makes it harmless), corruption or
            // a foreign exception is not.
            receiver.apply_delta(delta);
          },
          "fleet-delta", i);
    }
  }
  for (const std::string& base : node_corpus) {
    for (int i = 0; i < kCasesPerBase; ++i) {
      std::string mutated = mutate(base, rng);
      if (rng.bernoulli(0.33)) mutated = mutate(mutated, rng);
      check_one(
          mutated,
          [](const std::string& bytes) {
            bool truncated = false;
            const io::FleetNodeState state = io::load_fleet_node(bytes, &truncated);
            const std::string resaved = io::save_fleet_node(state);
            EXPECT_EQ(io::save_fleet_node(io::load_fleet_node(resaved)), resaved);
            // The semantic layer on top: a restart from these bytes must
            // come up coherent or reject with a typed error (the nested
            // engine blob and the envelope are cross-checked there).
            const fleet::FleetNode node = fleet::FleetNode::restore(bytes);
            EXPECT_GE(node.incarnation(), 2u);
          },
          "fleet-node", i);
    }
  }
}

// Hand-framed fleet packets: helpers to write syntactically valid
// containers whose *contents* are hostile — every byte CRC-clean, so the
// semantic checks (not the checksum) must be what rejects them.

constexpr std::uint8_t kFzDeltaHeader = 0x30;
constexpr std::uint8_t kFzOriginBlock = 0x31;
constexpr std::uint8_t kFzVersionVector = 0x32;
constexpr std::uint8_t kFzNodeHeader = 0x40;
constexpr std::uint8_t kFzServerBlob = 0x41;
constexpr std::uint8_t kFzNodeOriginBlock = 0x42;
constexpr std::uint8_t kFzEnd = 0x7F;

std::string fleet_stream(io::PayloadKind kind,
                         const std::vector<std::pair<std::uint8_t, std::string>>&
                             packets) {
  std::ostringstream os(std::ios::binary);
  io::write_container_magic(os, kind);
  for (const auto& [type, payload] : packets) io::write_packet(os, type, payload);
  return os.str();
}

/// Header payload for 1 feature x 3 arms (dim_aug = 2) unless overridden.
std::string fleet_header_payload(std::uint8_t policy_token, double alpha,
                                 double lambda, std::uint32_t num_features = 1,
                                 std::uint32_t num_arms = 3,
                                 std::uint8_t wire_version = 1) {
  std::string p;
  io::put_u8(p, wire_version);
  io::put_u32(p, 7);  // sender / node
  io::put_u32(p, 1);  // incarnation
  io::put_u8(p, policy_token);
  io::put_f64(p, alpha);
  io::put_f64(p, 1.25);  // posterior_scale
  io::put_f64(p, 1.0);   // initial_epsilon
  io::put_f64(p, 0.99);  // decay
  io::put_f64(p, lambda);
  io::put_f64(p, 1e-3);  // ridge
  io::put_u32(p, num_features);
  io::put_u32(p, num_arms);
  return p;
}

constexpr std::uint8_t kFzEps =
    static_cast<std::uint8_t>(core::PolicyKind::kEpsilonGreedy);

/// One (arm, n, θ, P) entry for dim_aug = 2 (1 feature + intercept).
std::string fleet_arm_entry(std::uint32_t arm, std::uint64_t n, double value) {
  std::string p;
  io::put_u32(p, arm);
  io::put_u64(p, n);
  io::put_f64(p, value);  // theta[0]
  io::put_f64(p, value);  // theta[1]
  io::put_f64(p, value);  // P(0,0)
  io::put_f64(p, 0.0);    // P(0,1)
  io::put_f64(p, 0.0);    // P(1,0)
  io::put_f64(p, value);  // P(1,1)
  return p;
}

std::string fleet_origin_payload(std::uint32_t node, std::uint32_t incarnation,
                                 std::uint32_t claimed_count,
                                 const std::string& entries) {
  std::string p;
  io::put_u32(p, node);
  io::put_u32(p, incarnation);
  io::put_u32(p, claimed_count);
  p += entries;
  return p;
}

std::string fleet_end_payload(std::uint64_t count) {
  std::string p;
  io::put_u64(p, count);
  return p;
}

TEST(SnapshotFuzz, HostileFleetPacketsFailWithoutAllocating) {
  const std::string header = fleet_header_payload(kFzEps, 1.5, 1.0);
  const std::string good_origin =
      fleet_origin_payload(2, 1, 1, fleet_arm_entry(0, 4, 2.0));
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();

  using Packets = std::vector<std::pair<std::uint8_t, std::string>>;
  const std::vector<Packets> hostile_deltas = {
      // Stitched messages: duplicate header / duplicate origin block.
      {{kFzDeltaHeader, header}, {kFzDeltaHeader, header}},
      {{kFzDeltaHeader, header},
       {kFzOriginBlock, good_origin},
       {kFzOriginBlock, good_origin},
       {kFzEnd, fleet_end_payload(2)}},
      // Body packets ahead of the header they depend on.
      {{kFzOriginBlock, good_origin}},
      {{kFzVersionVector, std::string(4, '\0')}},
      {{kFzEnd, fleet_end_payload(0)}},
      // Unknown wire version / policy token; λ outside (0, 1]; non-finite
      // scalar; shape counts out of range.
      {{kFzDeltaHeader, fleet_header_payload(kFzEps, 1.5, 1.0, 1, 3, 9)}},
      {{kFzDeltaHeader, fleet_header_payload(99, 1.5, 1.0)}},
      {{kFzDeltaHeader, fleet_header_payload(kFzEps, 1.5, 0.0)}},
      {{kFzDeltaHeader, fleet_header_payload(kFzEps, 1.5, 1.5)}},
      {{kFzDeltaHeader, fleet_header_payload(kFzEps, nan, 1.0)}},
      {{kFzDeltaHeader, fleet_header_payload(kFzEps, 1.5, 1.0, 1, 0)}},
      {{kFzDeltaHeader, fleet_header_payload(kFzEps, 1.5, 1.0, 1, 5000)}},
      {{kFzDeltaHeader, fleet_header_payload(kFzEps, 1.5, 1.0, 600, 3)}},
      // Origin block pathologies: hostile entry count vs. actual bytes,
      // count above the arm count, unknown arm, duplicate arm, n = 0,
      // n above the per-arm ceiling, non-finite statistics.
      {{kFzDeltaHeader, header},
       {kFzOriginBlock, fleet_origin_payload(2, 1, 2, fleet_arm_entry(0, 4, 2.0))}},
      {{kFzDeltaHeader, header},
       {kFzOriginBlock,
        fleet_origin_payload(2, 1, 4,
                             fleet_arm_entry(0, 4, 2.0) + fleet_arm_entry(1, 4, 2.0) +
                                 fleet_arm_entry(2, 4, 2.0) +
                                 fleet_arm_entry(0, 5, 2.0))}},
      {{kFzDeltaHeader, header},
       {kFzOriginBlock, fleet_origin_payload(2, 1, 1, fleet_arm_entry(3, 4, 2.0))}},
      {{kFzDeltaHeader, header},
       {kFzOriginBlock,
        fleet_origin_payload(2, 1, 2,
                             fleet_arm_entry(0, 4, 2.0) +
                                 fleet_arm_entry(0, 5, 2.0))}},
      {{kFzDeltaHeader, header},
       {kFzOriginBlock, fleet_origin_payload(2, 1, 1, fleet_arm_entry(0, 0, 2.0))}},
      {{kFzDeltaHeader, header},
       {kFzOriginBlock,
        fleet_origin_payload(2, 1, 1, fleet_arm_entry(0, 200'000'000, 2.0))}},
      {{kFzDeltaHeader, header},
       {kFzOriginBlock, fleet_origin_payload(2, 1, 1, fleet_arm_entry(0, 4, inf))}},
      {{kFzDeltaHeader, header},
       {kFzOriginBlock, fleet_origin_payload(2, 1, 1, fleet_arm_entry(0, 4, nan))}},
      // Version-vector pathologies: hostile origin count with no bytes
      // behind it, truncated entry bytes, duplicate origin, per-arm count
      // above the ceiling, duplicate vv packet.
      {{kFzDeltaHeader, header},
       {kFzVersionVector,
        [] {
          std::string p;
          io::put_u32(p, 0xFFFFFFFFu);
          return p;
        }()}},
      {{kFzDeltaHeader, header},
       {kFzVersionVector,
        [] {
          std::string p;
          io::put_u32(p, 2);  // claims 2 entries, carries 1
          io::put_u32(p, 0);
          io::put_u32(p, 1);
          for (int arm = 0; arm < 3; ++arm) io::put_u64(p, 4);
          return p;
        }()}},
      {{kFzDeltaHeader, header},
       {kFzVersionVector,
        [] {
          std::string p;
          io::put_u32(p, 2);
          for (int rep = 0; rep < 2; ++rep) {
            io::put_u32(p, 0);
            io::put_u32(p, 1);
            for (int arm = 0; arm < 3; ++arm) io::put_u64(p, 4);
          }
          return p;
        }()}},
      {{kFzDeltaHeader, header},
       {kFzVersionVector,
        [] {
          std::string p;
          io::put_u32(p, 1);
          io::put_u32(p, 0);
          io::put_u32(p, 1);
          for (int arm = 0; arm < 3; ++arm) io::put_u64(p, 200'000'000);
          return p;
        }()}},
      {{kFzDeltaHeader, header},
       {kFzVersionVector, std::string(4, '\0')},
       {kFzVersionVector, std::string(4, '\0')}},
      // End-sentinel pathologies: wrong origin count, data after the end.
      {{kFzDeltaHeader, header}, {kFzEnd, fleet_end_payload(3)}},
      {{kFzDeltaHeader, header},
       {kFzEnd, fleet_end_payload(0)},
       {kFzOriginBlock, good_origin}},
  };
  for (std::size_t i = 0; i < hostile_deltas.size(); ++i) {
    const std::string bytes =
        fleet_stream(io::PayloadKind::kFleetDelta, hostile_deltas[i]);
    EXPECT_THROW(io::load_fleet_delta(bytes), ParseError) << "delta case " << i;
  }

  const std::vector<Packets> hostile_nodes = {
      // Engine blob is mandatory; so is exactly one of it.
      {{kFzNodeHeader, header}, {kFzEnd, fleet_end_payload(0)}},
      {{kFzNodeHeader, header},
       {kFzServerBlob, "blob"},
       {kFzServerBlob, "blob"},
       {kFzEnd, fleet_end_payload(2)}},
      {{kFzServerBlob, "blob"}},
      // Stitched snapshot: duplicate header / duplicate origin / data after
      // the end sentinel / end count that omits the blob.
      {{kFzNodeHeader, header}, {kFzNodeHeader, header}},
      {{kFzNodeHeader, header},
       {kFzServerBlob, "blob"},
       {kFzNodeOriginBlock, good_origin},
       {kFzNodeOriginBlock, good_origin},
       {kFzEnd, fleet_end_payload(3)}},
      {{kFzNodeHeader, header},
       {kFzServerBlob, "blob"},
       {kFzEnd, fleet_end_payload(1)},
       {kFzServerBlob, "blob"}},
      {{kFzNodeHeader, header},
       {kFzServerBlob, "blob"},
       {kFzEnd, fleet_end_payload(0)}},
  };
  for (std::size_t i = 0; i < hostile_nodes.size(); ++i) {
    const std::string bytes =
        fleet_stream(io::PayloadKind::kFleetNode, hostile_nodes[i]);
    EXPECT_THROW(io::load_fleet_node(bytes), ParseError) << "node case " << i;
  }

  // Kind cross-feeding and headerless tears are hard errors too: a delta
  // stream is not a snapshot, and a stream torn before its header carries
  // nothing applicable.
  const std::string delta = fleet_delta_bytes(core::PolicyKind::kEpsilonGreedy, 1.0);
  const std::string node = fleet_node_bytes(core::PolicyKind::kEpsilonGreedy, 1.0);
  EXPECT_THROW(io::load_fleet_node(delta), ParseError);
  EXPECT_THROW(io::load_fleet_delta(node), ParseError);
  EXPECT_THROW(io::load_fleet_delta(delta.substr(0, 12)), ParseError);
  EXPECT_THROW(io::load_fleet_node(node.substr(0, 12)), ParseError);
}

}  // namespace
}  // namespace bw
