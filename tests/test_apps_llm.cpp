// Tests for the LLM-inference workload model (apps/llm) — the GPU-aware
// future-work application.

#include "apps/llm.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace bw::apps {
namespace {

const hw::HardwareSpec kCpu{"C16", 16, 64.0, 0};
const hw::HardwareSpec kGpu{"G2", 16, 128.0, 2};

LlmRequest chat_request() {
  LlmRequest request;
  request.model_params_b = 7.0;
  request.prompt_tokens = 256;
  request.output_tokens = 16;
  request.batch_size = 1;
  return request;
}

LlmRequest report_request() {
  LlmRequest request;
  request.model_params_b = 7.0;
  request.prompt_tokens = 2048;
  request.output_tokens = 4096;
  request.batch_size = 1;
  return request;
}

TEST(LlmModel, CpuWinsShortGenerations) {
  // GPU pays the weight-staging tax; a 16-token chat cannot amortize it.
  const double cpu = llm_expected_latency(chat_request(), kCpu);
  const double gpu = llm_expected_latency(chat_request(), kGpu);
  EXPECT_LT(cpu, gpu);
}

TEST(LlmModel, GpuWinsLongGenerations) {
  const double cpu = llm_expected_latency(report_request(), kCpu);
  const double gpu = llm_expected_latency(report_request(), kGpu);
  EXPECT_GT(cpu, 3.0 * gpu);
}

TEST(LlmModel, LatencyGrowsWithModelSize) {
  LlmRequest small = report_request();
  LlmRequest large = report_request();
  large.model_params_b = 34.0;
  EXPECT_GT(llm_expected_latency(large, kGpu), llm_expected_latency(small, kGpu));
}

TEST(LlmModel, MoreGpusDecodeFaster) {
  const hw::HardwareSpec one_gpu{"G1", 8, 64.0, 1};
  const hw::HardwareSpec four_gpus{"G4", 16, 256.0, 4};
  EXPECT_GT(llm_expected_latency(report_request(), one_gpu),
            llm_expected_latency(report_request(), four_gpus));
}

TEST(LlmModel, MoreCpusHelpSublinearly) {
  const hw::HardwareSpec c4{"C4", 4, 64.0, 0};
  const hw::HardwareSpec c16{"C16b", 16, 64.0, 0};
  const double t4 = llm_expected_latency(report_request(), c4);
  const double t16 = llm_expected_latency(report_request(), c16);
  EXPECT_LT(t16, t4);
  EXPECT_GT(t16, t4 / 4.0);  // sublinear: 4x cores < 4x speedup
}

TEST(LlmModel, OversizedModelPaysOffloadPenalty) {
  LlmRequest huge = report_request();
  huge.model_params_b = 70.0;  // 70B * 2B * 1.4 = 196 GB > any node here
  const LlmModelConfig config;
  const double fits_lat = llm_expected_latency(report_request(), kGpu, config);
  const double offload_lat = llm_expected_latency(huge, kGpu, config);
  // Offloading multiplies on top of the 10x model-size slowdown.
  EXPECT_GT(offload_lat, fits_lat * 10.0 * config.offload_slowdown * 0.5);
}

TEST(LlmModel, BatchingAmortizes) {
  LlmRequest single = report_request();
  LlmRequest batched = report_request();
  batched.batch_size = 4;
  const double t1 = llm_expected_latency(single, kGpu);
  const double t4 = llm_expected_latency(batched, kGpu);
  // 4x the tokens in less than 4x the time (sqrt-batch throughput gain).
  EXPECT_GT(t4, t1);
  EXPECT_LT(t4, 4.0 * t1);
}

TEST(LlmModel, RejectsInvalidRequests) {
  LlmRequest bad = chat_request();
  bad.model_params_b = 0.0;
  EXPECT_THROW(llm_expected_latency(bad, kCpu), InvalidArgument);
  bad = chat_request();
  bad.output_tokens = -1;
  EXPECT_THROW(llm_expected_latency(bad, kCpu), InvalidArgument);
  bad = chat_request();
  bad.batch_size = 0;
  EXPECT_THROW(llm_expected_latency(bad, kCpu), InvalidArgument);
}

TEST(LlmModel, NoiseIsMultiplicativeAndPositive) {
  const LlmModelConfig config;
  Rng rng(3);
  const double expected = llm_expected_latency(chat_request(), kCpu, config);
  for (int i = 0; i < 200; ++i) {
    const double observed = simulate_llm_latency(chat_request(), kCpu, config, rng);
    EXPECT_GT(observed, expected * 0.5);
    EXPECT_LT(observed, expected * 2.0);
  }
}

TEST(LlmCatalog, MixedFleetShape) {
  const hw::HardwareCatalog catalog = llm_catalog();
  ASSERT_EQ(catalog.size(), 5u);
  int gpu_nodes = 0;
  for (const auto& spec : catalog.specs()) gpu_nodes += (spec.gpus > 0);
  EXPECT_EQ(gpu_nodes, 3);
  // GPU nodes never undercut comparable CPU nodes in the efficiency
  // ordering, and the 4-GPU box is the priciest of all.
  EXPECT_GE(catalog[2].resource_cost(), catalog[0].resource_cost());
  for (std::size_t arm = 0; arm + 1 < catalog.size(); ++arm) {
    EXPECT_GT(catalog[4].resource_cost(), catalog[arm].resource_cost());
  }
}

TEST(LlmFrames, SchemaAndSharedFeatures) {
  LlmDatasetOptions options;
  options.num_groups = 40;
  const auto frames = build_llm_frames(llm_catalog(), LlmModelConfig{}, options);
  ASSERT_EQ(frames.size(), 5u);
  for (const auto& name : llm_feature_names()) {
    EXPECT_TRUE(frames[0].has_column(name)) << name;
  }
  EXPECT_EQ(frames[0].num_rows(), 40u);
  EXPECT_EQ(frames[1].column("output_tokens").doubles(),
            frames[0].column("output_tokens").doubles());
  EXPECT_NE(frames[1].column("runtime").doubles(), frames[0].column("runtime").doubles());
}

TEST(LlmFrames, DeterministicBySeed) {
  LlmDatasetOptions options;
  options.num_groups = 10;
  options.seed = 77;
  const auto a = build_llm_frames(llm_catalog(), LlmModelConfig{}, options);
  const auto b = build_llm_frames(llm_catalog(), LlmModelConfig{}, options);
  EXPECT_EQ(a[2].column("runtime").doubles(), b[2].column("runtime").doubles());
}

TEST(LlmFrames, RejectsEmptyOptions) {
  LlmDatasetOptions options;
  options.num_groups = 0;
  EXPECT_THROW(build_llm_frames(llm_catalog(), LlmModelConfig{}, options),
               InvalidArgument);
}

// Property: for every model size, there is a generation length beyond
// which the GPU node beats the CPU node (the crossover the bandit learns).
class LlmCrossover : public ::testing::TestWithParam<double> {};

TEST_P(LlmCrossover, GpuOvertakesCpuAsOutputGrows) {
  LlmRequest request;
  request.model_params_b = GetParam();
  request.prompt_tokens = 512;
  request.batch_size = 1;

  bool gpu_wins_eventually = false;
  bool cpu_wins_somewhere = false;
  for (double output : {1.0, 8.0, 64.0, 512.0, 4096.0, 16384.0}) {
    request.output_tokens = output;
    const double cpu = llm_expected_latency(request, kCpu);
    const double gpu = llm_expected_latency(request, kGpu);
    if (gpu < cpu) gpu_wins_eventually = true;
    if (cpu < gpu) cpu_wins_somewhere = true;
  }
  EXPECT_TRUE(gpu_wins_eventually) << "GPU never won at " << GetParam() << "B";
  // For small models the CPU should win the shortest generations.
  if (GetParam() <= 13.0) {
    EXPECT_TRUE(cpu_wins_somewhere);
  }
}

INSTANTIATE_TEST_SUITE_P(ModelSizes, LlmCrossover, ::testing::Values(1.0, 3.0, 7.0, 13.0));

}  // namespace
}  // namespace bw::apps
