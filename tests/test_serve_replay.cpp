// Tests for the throughput replay harness (serve/replay) on a small
// synthetic RunTable.

#include "serve/replay.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "hardware/catalog.hpp"
#include "linalg/matrix.hpp"

namespace bw::serve {
namespace {

/// 8 workflow groups x 3 NDP arms; runtime = tasks / cpus, so the 4-CPU
/// arm is optimal everywhere.
core::RunTable make_table() {
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  const std::size_t groups = 8;
  linalg::Matrix features(groups, 1);
  linalg::Matrix runtimes(groups, catalog.size());
  for (std::size_t g = 0; g < groups; ++g) {
    const double tasks = 100.0 + 40.0 * static_cast<double>(g);
    features(g, 0) = tasks;
    for (std::size_t arm = 0; arm < catalog.size(); ++arm) {
      runtimes(g, arm) = tasks / catalog[arm].cpus;
    }
  }
  return core::RunTable({"num_tasks"}, features, runtimes, catalog);
}

BanditServer make_server(std::size_t shards) {
  BanditServerConfig config;
  config.num_shards = shards;
  config.seed = 5;
  return BanditServer(hw::ndp_catalog(), {"num_tasks"}, config);
}

TEST(ServeReplay, ServesEveryRequestedDecisionExactlyOnce) {
  BanditServer server = make_server(4);
  ReplayOptions options;
  options.batch = 16;
  options.rounds = 5;
  const ReplayReport report = replay_run_table(server, make_table(), options);
  EXPECT_EQ(report.decisions, 80u);
  EXPECT_GT(report.decisions_per_s, 0.0);
  EXPECT_GE(report.mean_regret_s, 0.0);
  EXPECT_LE(report.batch_p50_ms, report.batch_p95_ms);
  EXPECT_LE(report.batch_p95_ms, report.batch_p99_ms);
  // Every decision was observed back into some shard.
  const std::size_t observed = std::accumulate(report.shard_observations.begin(),
                                               report.shard_observations.end(), 0ull);
  EXPECT_EQ(observed, report.decisions);
  EXPECT_EQ(server.num_observations(), report.decisions);
}

TEST(ServeReplay, RegretShrinksAsExplorationDecays) {
  // Early batches explore (high regret); once epsilon has decayed the
  // tolerant-greedy path should mostly pick the dominant 4-CPU arm.
  BanditServer server = make_server(1);
  ReplayOptions warmup;
  warmup.batch = 32;
  warmup.rounds = 20;
  const ReplayReport early = replay_run_table(server, make_table(), warmup);
  ReplayOptions steady = warmup;
  steady.seed = 99;
  const ReplayReport late = replay_run_table(server, make_table(), steady);
  EXPECT_LT(late.mean_regret_s, early.mean_regret_s);
}

TEST(ServeReplay, RejectsMismatchedInputs) {
  BanditServer server = make_server(2);
  EXPECT_THROW(replay_run_table(server, core::RunTable{}), InvalidArgument);

  BanditServerConfig config;
  config.num_shards = 2;
  BanditServer wide(hw::ndp_catalog(), {"num_tasks", "ram"}, config);
  EXPECT_THROW(replay_run_table(wide, make_table()), InvalidArgument);

  ReplayOptions zero_batch;
  zero_batch.batch = 0;
  EXPECT_THROW(replay_run_table(server, make_table(), zero_batch), InvalidArgument);
}

}  // namespace
}  // namespace bw::serve
