// Tests for the statistics kit (common/stats).

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace bw {
namespace {

TEST(RunningStats, EmptyAccumulator) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_THROW(rs.min(), InvalidArgument);
  EXPECT_THROW(rs.max(), InvalidArgument);
}

TEST(RunningStats, KnownSample) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats rs;
  rs.add(3.25);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
}

TEST(Percentile, UnsortedInputIsSortedInternally) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Percentile, RejectsBadInput) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile({}, 50.0), InvalidArgument);
  EXPECT_THROW(percentile(xs, -1.0), InvalidArgument);
  EXPECT_THROW(percentile(xs, 101.0), InvalidArgument);
}

TEST(Summarize, KnownValues) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 30.0);
  EXPECT_DOUBLE_EQ(s.median, 30.0);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 50.0);
  EXPECT_DOUBLE_EQ(s.range(), 40.0);
}

TEST(Summarize, EmptyGivesZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Rmse, KnownValue) {
  const std::vector<double> pred = {1.0, 2.0, 3.0};
  const std::vector<double> actual = {1.0, 4.0, 1.0};
  EXPECT_NEAR(rmse(pred, actual), std::sqrt((0.0 + 4.0 + 4.0) / 3.0), 1e-12);
}

TEST(Rmse, PerfectPredictionIsZero) {
  const std::vector<double> v = {5.0, -3.0, 2.5};
  EXPECT_EQ(rmse(v, v), 0.0);
}

TEST(Rmse, RejectsMismatchedOrEmpty) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(rmse(a, b), InvalidArgument);
  EXPECT_THROW(rmse({}, {}), InvalidArgument);
}

TEST(RSquared, PerfectFitIsOne) {
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(y, y), 1.0);
}

TEST(RSquared, MeanPredictorIsZero) {
  const std::vector<double> pred = {2.0, 2.0, 2.0};
  const std::vector<double> actual = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(pred, actual), 0.0);
}

TEST(RSquared, ConstantTargetEdgeCases) {
  const std::vector<double> constant = {5.0, 5.0};
  const std::vector<double> off = {4.0, 6.0};
  EXPECT_DOUBLE_EQ(r_squared(constant, constant), 1.0);
  EXPECT_DOUBLE_EQ(r_squared(off, constant), 0.0);
}

TEST(AggregateRounds, MeanAndSpread) {
  const std::vector<std::vector<double>> per_sim = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const RoundAggregate agg = aggregate_rounds(per_sim);
  ASSERT_EQ(agg.rounds(), 2u);
  EXPECT_DOUBLE_EQ(agg.mean[0], 3.0);
  EXPECT_DOUBLE_EQ(agg.mean[1], 4.0);
  EXPECT_DOUBLE_EQ(agg.min[0], 1.0);
  EXPECT_DOUBLE_EQ(agg.max[1], 6.0);
  EXPECT_NEAR(agg.stddev[0], 2.0, 1e-12);
}

TEST(AggregateRounds, RaggedInputThrows) {
  EXPECT_THROW(aggregate_rounds({{1.0}, {1.0, 2.0}}), InvalidArgument);
}

TEST(AggregateRounds, EmptyInputIsEmpty) {
  EXPECT_EQ(aggregate_rounds({}).rounds(), 0u);
}

// Property: Welford matches the two-pass computation for random samples.
class WelfordProperty : public ::testing::TestWithParam<int> {};

TEST_P(WelfordProperty, MatchesTwoPass) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  RunningStats rs;
  const int n = 100 + GetParam() * 37;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-100.0, 100.0);
    xs.push_back(x);
    rs.add(x);
  }
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double two_pass_mean = sum / n;
  double ss = 0.0;
  for (double x : xs) ss += (x - two_pass_mean) * (x - two_pass_mean);
  EXPECT_NEAR(rs.mean(), two_pass_mean, 1e-9);
  EXPECT_NEAR(rs.variance(), ss / (n - 1), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Samples, WelfordProperty, ::testing::Range(1, 8));

}  // namespace
}  // namespace bw
