// Property suite for the O(d^2) incremental learning hot path: the
// RLS-backed default DecayingEpsilonGreedy must be indistinguishable from
// the paper-literal exact_history batch refit over randomized
// 500-observation streams. Two layers of the contract:
//
//  1. With identical regression options (a shared explicit ridge) the two
//     backends solve the *same* problem, so predictions must agree within
//     1e-9 once an arm is determined (the warm-up solves are conditioned
//     like ||x||^2 / ridge, so rounding there is visible at ~cond * eps,
//     and the recursion carries a damped residue of it).
//  2. With the library defaults the batch path runs unregularized QR while
//     the incremental path keeps its 1e-8 prior — a bias that decays as
//     1/n. Discrete behavior (selects, recommends, epsilon) must still be
//     identical across the whole stream.
//
// This is the contract that lets the serving engine run the cheap backend
// while the paper-figure benchmarks keep the literal Algorithm 1.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/epsilon_greedy.hpp"
#include "hardware/catalog.hpp"

namespace bw::core {
namespace {

hw::HardwareCatalog test_catalog() {
  return hw::HardwareCatalog({{"A", 2, 16.0}, {"B", 3, 24.0}, {"C", 4, 16.0}});
}

constexpr std::size_t kDim = 4;
constexpr std::size_t kSteps = 500;

struct StreamStep {
  FeatureVector x;
  double runtime = 0.0;
};

std::vector<StreamStep> make_stream(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w_true(kDim);
  for (auto& w : w_true) w = rng.uniform(0.2, 1.5);
  std::vector<StreamStep> steps(kSteps);
  for (auto& step : steps) {
    step.x.resize(kDim);
    step.runtime = 0.5;
    for (std::size_t c = 0; c < kDim; ++c) {
      step.x[c] = rng.uniform(0.0, 2.0);
      step.runtime += w_true[c] * step.x[c];
    }
    step.runtime += rng.normal(0.0, 0.05);
  }
  return steps;
}

class IncrementalEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalEquivalence, PredictionsMatchBatchWithin1e9) {
  const std::uint64_t seed = GetParam();
  // Shared explicit ridge: both backends solve (X^T X + 1e-6 I) theta =
  // X^T y, the incremental one recursively, the exact one from scratch per
  // observation. 1e-6 keeps the warm-up (n < d+1) solves conditioned to
  // ~1e6, so the recursion's remembered warm-up rounding stays ~1e-10;
  // with a 1e-8 prior it sits right at the 1e-9 boundary.
  EpsilonGreedyConfig incremental_config;
  incremental_config.fit.ridge = 1e-6;
  EpsilonGreedyConfig exact_config = incremental_config;
  exact_config.exact_history = true;

  const hw::HardwareCatalog catalog = test_catalog();
  DecayingEpsilonGreedy incremental(catalog, kDim, incremental_config);
  DecayingEpsilonGreedy exact(catalog, kDim, exact_config);
  ASSERT_FALSE(incremental.arm_model(0).exact_history());
  ASSERT_TRUE(exact.arm_model(0).exact_history());

  // Identically seeded selection RNGs: as long as the two policies keep
  // agreeing, their exploration streams stay in lockstep too.
  Rng rng_incremental(seed * 31 + 1);
  Rng rng_exact(seed * 31 + 1);

  const auto stream = make_stream(seed);
  for (std::size_t t = 0; t < kSteps; ++t) {
    const auto& [x, runtime] = stream[t];
    const ArmIndex chosen = incremental.select(x, rng_incremental);
    ASSERT_EQ(chosen, exact.select(x, rng_exact)) << "step " << t;

    incremental.observe(chosen, x, runtime);
    exact.observe(chosen, x, runtime);

    for (ArmIndex arm = 0; arm < catalog.size(); ++arm) {
      // Warm-up solves are ill-conditioned (cond ~ ||x||^2 / ridge) and
      // both backends round differently there, so the strict bound kicks
      // in once the arm's Gram matrix is comfortably determined; measured
      // determined-phase disagreement is ~3e-11 (30x margin).
      const bool determined = incremental.arm_model(arm).count() >= 30;
      ASSERT_NEAR(incremental.predict(arm, x), exact.predict(arm, x),
                  determined ? 1e-9 : 1e-6)
          << "step " << t << " arm " << arm;
    }
    ASSERT_EQ(incremental.recommend(x), exact.recommend(x)) << "step " << t;
  }

  for (ArmIndex arm = 0; arm < catalog.size(); ++arm) {
    EXPECT_EQ(incremental.arm_model(arm).count(), exact.arm_model(arm).count());
  }
  EXPECT_DOUBLE_EQ(incremental.epsilon(), exact.epsilon());
}

TEST_P(IncrementalEquivalence, ChoicesMatchBatchWithDefaultOptions) {
  const std::uint64_t seed = GetParam();
  EpsilonGreedyConfig incremental_config;  // default: incremental backend
  EpsilonGreedyConfig exact_config;
  exact_config.exact_history = true;  // default fit: unregularized QR

  const hw::HardwareCatalog catalog = test_catalog();
  DecayingEpsilonGreedy incremental(catalog, kDim, incremental_config);
  DecayingEpsilonGreedy exact(catalog, kDim, exact_config);
  Rng rng_incremental(seed * 131 + 5);
  Rng rng_exact(seed * 131 + 5);

  const auto stream = make_stream(seed + 1000);
  for (std::size_t t = 0; t < kSteps; ++t) {
    const auto& [x, runtime] = stream[t];
    const ArmIndex chosen = incremental.select(x, rng_incremental);
    ASSERT_EQ(chosen, exact.select(x, rng_exact)) << "step " << t;
    incremental.observe(chosen, x, runtime);
    exact.observe(chosen, x, runtime);
    ASSERT_EQ(incremental.recommend(x), exact.recommend(x)) << "step " << t;
    // The 1e-8 prior's bias against the unregularized QR decays as 1/n;
    // it must stay far below anything behavior-relevant.
    for (ArmIndex arm = 0; arm < catalog.size(); ++arm) {
      ASSERT_NEAR(incremental.predict(arm, x), exact.predict(arm, x), 1e-5)
          << "step " << t << " arm " << arm;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalence,
                         ::testing::Values(1u, 7u, 42u));

TEST(IncrementalBackend, KeepsNoHistory) {
  LinearArmModel model(3);
  for (int i = 0; i < 50; ++i) {
    model.observe(std::vector<double>{1.0 * i, 2.0, 3.0}, 4.0 * i);
  }
  EXPECT_EQ(model.count(), 50u);
  EXPECT_TRUE(model.observed_features().empty());  // hot path stores no rows
  EXPECT_TRUE(model.observed_runtimes().empty());
}

TEST(IncrementalBackend, NoInterceptFitFallsBackToBatch) {
  linalg::FitOptions fit;
  fit.intercept = false;
  const LinearArmModel model(3, fit, /*exact_history=*/false);
  // The recursive update hard-codes the intercept column, so intercept-free
  // fits must keep the batch backend even when incremental was requested.
  EXPECT_TRUE(model.exact_history());
}

}  // namespace
}  // namespace bw::core
