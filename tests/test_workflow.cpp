// Tests for the workflow DAG engine and list scheduler (workflow/).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "workflow/dag.hpp"
#include "workflow/generators.hpp"
#include "workflow/scheduler.hpp"

namespace bw::wf {
namespace {

TEST(Dag, AddTasksAndEdges) {
  WorkflowDag dag;
  const TaskId a = dag.add_task({"a", 1.0, 0.1});
  const TaskId b = dag.add_task({"b", 2.0, 0.1});
  dag.add_edge(a, b);
  EXPECT_EQ(dag.num_tasks(), 2u);
  EXPECT_EQ(dag.num_edges(), 1u);
  EXPECT_EQ(dag.successors(a), (std::vector<TaskId>{b}));
  EXPECT_EQ(dag.predecessors(b), (std::vector<TaskId>{a}));
  EXPECT_DOUBLE_EQ(dag.total_work_s(), 3.0);
}

TEST(Dag, RejectsBadTasksAndEdges) {
  WorkflowDag dag;
  EXPECT_THROW(dag.add_task({"bad", 0.0, 0.1}), InvalidArgument);
  EXPECT_THROW(dag.add_task({"bad", -1.0, 0.1}), InvalidArgument);
  EXPECT_THROW(dag.add_task({"bad", 1.0, -0.5}), InvalidArgument);
  const TaskId a = dag.add_task({"a", 1.0, 0.1});
  EXPECT_THROW(dag.add_edge(a, a), InvalidArgument);
  EXPECT_THROW(dag.add_edge(a, 99), InvalidArgument);
  EXPECT_THROW(dag.task(42), InvalidArgument);
}

TEST(Dag, DetectsCycles) {
  WorkflowDag dag;
  const TaskId a = dag.add_task({"a", 1.0, 0.1});
  const TaskId b = dag.add_task({"b", 1.0, 0.1});
  const TaskId c = dag.add_task({"c", 1.0, 0.1});
  dag.add_edge(a, b);
  dag.add_edge(b, c);
  dag.add_edge(c, a);
  EXPECT_THROW(dag.validate(), InvalidArgument);
  EXPECT_THROW(dag.topological_order(), InvalidArgument);
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  WorkflowDag dag;
  const TaskId a = dag.add_task({"a", 1.0, 0.1});
  const TaskId b = dag.add_task({"b", 1.0, 0.1});
  const TaskId c = dag.add_task({"c", 1.0, 0.1});
  dag.add_edge(a, c);
  dag.add_edge(b, c);
  const auto order = dag.topological_order();
  const auto pos = [&](TaskId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(c));
}

TEST(Dag, CriticalPathOfChainIsTotalWork) {
  Rng rng(1);
  TaskDurationModel model;
  model.jitter_sd = 0.0;
  const WorkflowDag dag = chain(5, model, rng);
  EXPECT_NEAR(dag.critical_path_s(), dag.total_work_s(), 1e-9);
}

TEST(Dag, CriticalPathOfBagIsLongestTask) {
  WorkflowDag dag;
  dag.add_task({"a", 1.0, 0.1});
  dag.add_task({"b", 5.0, 0.1});
  dag.add_task({"c", 2.0, 0.1});
  EXPECT_DOUBLE_EQ(dag.critical_path_s(), 5.0);
}

// ---- generators ---------------------------------------------------------------

TEST(Generators, ShapesHaveDocumentedCounts) {
  Rng rng(2);
  TaskDurationModel model;
  EXPECT_EQ(bag_of_tasks(10, model, rng).num_tasks(), 10u);
  EXPECT_EQ(bag_of_tasks(10, model, rng).num_edges(), 0u);
  EXPECT_EQ(chain(10, model, rng).num_edges(), 9u);
  const WorkflowDag fj = fork_join(8, model, rng);
  EXPECT_EQ(fj.num_tasks(), 10u);  // source + 8 + sink
  EXPECT_EQ(fj.num_edges(), 16u);
  const WorkflowDag cycles = cycles_workflow(100, model, rng);
  EXPECT_EQ(cycles.num_tasks(), 104u);  // prep + 100 + gather/analyze/report
}

TEST(Generators, CyclesWorkflowIsValidDag) {
  Rng rng(3);
  TaskDurationModel model;
  const WorkflowDag dag = cycles_workflow(50, model, rng);
  EXPECT_NO_THROW(dag.validate());
}

TEST(Generators, DurationsArePositiveAndJittered) {
  Rng rng(4);
  TaskDurationModel model;
  model.mean_s = 10.0;
  model.jitter_sd = 0.5;
  const WorkflowDag dag = bag_of_tasks(100, model, rng);
  std::set<double> distinct;
  for (TaskId id = 0; id < dag.num_tasks(); ++id) {
    EXPECT_GT(dag.task(id).duration_s, 0.0);
    distinct.insert(dag.task(id).duration_s);
  }
  EXPECT_GT(distinct.size(), 90u);  // jitter produces distinct values
}

TEST(Generators, RejectEmptyShapes) {
  Rng rng(5);
  TaskDurationModel model;
  EXPECT_THROW(bag_of_tasks(0, model, rng), InvalidArgument);
  EXPECT_THROW(chain(0, model, rng), InvalidArgument);
  EXPECT_THROW(fork_join(0, model, rng), InvalidArgument);
  EXPECT_THROW(cycles_workflow(0, model, rng), InvalidArgument);
}

// ---- list scheduler -----------------------------------------------------------

hw::HardwareSpec cores(int c) { return {"hw" + std::to_string(c), c, 16.0}; }

TEST(Scheduler, SingleCoreRunsSerially) {
  Rng rng(6);
  TaskDurationModel model;
  model.jitter_sd = 0.0;
  const WorkflowDag dag = bag_of_tasks(7, model, rng);
  hw::PerfModelParams params;
  params.sync_overhead = 0.0;
  const Schedule schedule = list_schedule(dag, cores(1), hw::PerfModel(params));
  EXPECT_NEAR(schedule.makespan_s, dag.total_work_s(), 1e-9);
  EXPECT_NEAR(schedule.utilization(1), 1.0, 1e-9);
}

TEST(Scheduler, UnlimitedCoresHitCriticalPath) {
  Rng rng(7);
  TaskDurationModel model;
  const WorkflowDag dag = fork_join(6, model, rng);
  hw::PerfModelParams params;
  params.sync_overhead = 0.0;
  const Schedule schedule = list_schedule(dag, cores(32), hw::PerfModel(params));
  EXPECT_NEAR(schedule.makespan_s, dag.critical_path_s(), 1e-9);
}

TEST(Scheduler, RespectsDependencies) {
  WorkflowDag dag;
  const TaskId a = dag.add_task({"a", 2.0, 0.1});
  const TaskId b = dag.add_task({"b", 1.0, 0.1});
  dag.add_edge(a, b);
  hw::PerfModelParams params;
  params.sync_overhead = 0.0;
  const Schedule schedule = list_schedule(dag, cores(4), hw::PerfModel(params));
  double start_b = -1.0;
  double finish_a = -1.0;
  for (const auto& t : schedule.tasks) {
    if (t.task == a) finish_a = t.finish_s;
    if (t.task == b) start_b = t.start_s;
  }
  EXPECT_GE(start_b, finish_a);
}

TEST(Scheduler, DeterministicGivenSameInputs) {
  Rng rng_a(8);
  Rng rng_b(8);
  TaskDurationModel model;
  const WorkflowDag dag_a = cycles_workflow(40, model, rng_a);
  const WorkflowDag dag_b = cycles_workflow(40, model, rng_b);
  const Schedule sa = list_schedule(dag_a, cores(3));
  const Schedule sb = list_schedule(dag_b, cores(3));
  EXPECT_DOUBLE_EQ(sa.makespan_s, sb.makespan_s);
}

// Property: for any random DAG and core count, the makespan respects the
// classical list-scheduling bounds.
struct ScheduleCase {
  std::uint64_t seed;
  int num_cores;
};

class SchedulerBounds : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(SchedulerBounds, WithinClassicalBounds) {
  const auto [seed, num_cores] = GetParam();
  Rng rng(seed);
  TaskDurationModel model;
  // Random layered DAG.
  WorkflowDag dag;
  std::vector<TaskId> previous_layer;
  for (int layer = 0; layer < 4; ++layer) {
    std::vector<TaskId> current;
    const std::size_t width = 1 + rng.index(6);
    for (std::size_t i = 0; i < width; ++i) {
      const TaskId id = dag.add_task(
          {"t", rng.uniform(0.5, 4.0), 0.1});
      for (TaskId prev : previous_layer) {
        if (rng.bernoulli(0.5)) dag.add_edge(prev, id);
      }
      current.push_back(id);
    }
    previous_layer = current;
  }

  hw::PerfModelParams params;
  params.sync_overhead = 0.0;
  const Schedule schedule = list_schedule(dag, cores(num_cores), hw::PerfModel(params));
  const double cp = dag.critical_path_s();
  const double work_per_core = dag.total_work_s() / num_cores;
  EXPECT_GE(schedule.makespan_s, std::max(cp, work_per_core) - 1e-9);
  EXPECT_LE(schedule.makespan_s, cp + work_per_core + 1e-9);
  EXPECT_LE(schedule.utilization(static_cast<std::size_t>(num_cores)), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomDags, SchedulerBounds,
                         ::testing::Values(ScheduleCase{1, 1}, ScheduleCase{1, 2},
                                           ScheduleCase{2, 3}, ScheduleCase{3, 4},
                                           ScheduleCase{4, 8}, ScheduleCase{5, 2},
                                           ScheduleCase{6, 16}, ScheduleCase{7, 5}));

}  // namespace
}  // namespace bw::wf
