// Tests for the decision audit log (core/decision_log).

#include "core/decision_log.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dataframe/csv.hpp"

namespace bw::core {
namespace {

DecisionLog logged_session(int decisions, double epsilon0 = 1.0) {
  BanditWareConfig config;
  config.policy.initial_epsilon = epsilon0;
  config.policy.decay = 0.9;
  BanditWare bandit(hw::ndp_catalog(), {"size"}, config);
  DecisionLog log({"size"});
  Rng rng(4);
  for (int i = 0; i < decisions; ++i) {
    const FeatureVector x = {static_cast<double>(10 * (i % 5 + 1))};
    const double epsilon = bandit.epsilon();
    const auto decision = bandit.next(x, rng);
    const double runtime = 2.0 * x[0] + decision.arm;
    bandit.observe(decision.arm, x, runtime);
    log.record(decision, x, runtime, epsilon);
  }
  return log;
}

TEST(DecisionLog, RecordsEveryDecisionInOrder) {
  const DecisionLog log = logged_session(12);
  ASSERT_EQ(log.size(), 12u);
  for (std::size_t i = 0; i < log.size(); ++i) EXPECT_EQ(log[i].index, i);
  EXPECT_THROW(log[99], InvalidArgument);
}

TEST(DecisionLog, ExplorationRateTracksEpsilon) {
  const DecisionLog always = logged_session(30, 1.0);
  EXPECT_GT(always.exploration_rate(), 0.25);  // high early epsilon
  const DecisionLog never = logged_session(30, 0.0);
  EXPECT_EQ(never.exploration_rate(), 0.0);
}

TEST(DecisionLog, MeanObservedRuntime) {
  DecisionLog log({"x"});
  EXPECT_EQ(log.mean_observed_runtime(), 0.0);
  DecisionRecord record;
  record.features = {1.0};
  record.observed_runtime_s = 10.0;
  log.record(record);
  record.observed_runtime_s = 30.0;
  log.record(record);
  EXPECT_DOUBLE_EQ(log.mean_observed_runtime(), 20.0);
}

TEST(DecisionLog, FrameHasDocumentedSchema) {
  const DecisionLog log = logged_session(5);
  const df::DataFrame frame = log.to_frame();
  EXPECT_EQ(frame.num_rows(), 5u);
  for (const char* column : {"decision", "size", "hardware", "explored",
                             "predicted_runtime_s", "observed_runtime_s", "epsilon"}) {
    EXPECT_TRUE(frame.has_column(column)) << column;
  }
  // Epsilon decays monotonically within the session.
  const auto& eps = frame.column("epsilon").doubles();
  for (std::size_t i = 1; i < eps.size(); ++i) EXPECT_LE(eps[i], eps[i - 1]);
}

TEST(DecisionLog, CsvRoundTrips) {
  const DecisionLog log = logged_session(8);
  const df::DataFrame back = df::read_csv_string(log.to_csv());
  EXPECT_EQ(back.num_rows(), 8u);
  EXPECT_EQ(back.column("hardware").strings().size(), 8u);
  // Integral runtimes may round-trip as int64 columns; compare numerically.
  EXPECT_EQ(back.column("observed_runtime_s").as_doubles(),
            log.to_frame().column("observed_runtime_s").as_doubles());
}

TEST(DecisionLog, RejectsBadInput) {
  EXPECT_THROW(DecisionLog({}), InvalidArgument);
  DecisionLog log({"a", "b"});
  DecisionRecord wrong;
  wrong.features = {1.0};  // needs 2
  EXPECT_THROW(log.record(wrong), InvalidArgument);
}

}  // namespace
}  // namespace bw::core
