// Golden-value determinism suite: the README promises bit-reproducible
// simulations across runs and platforms. These tests pin exact outputs of
// every stochastic layer so any accidental change to RNG consumption order,
// simulator logic or dataset construction fails loudly.
//
// If a change here is *intentional* (e.g. a simulator improvement), update
// the pinned values and call it out in the commit message — downstream
// EXPERIMENTS.md numbers shift with them.

#include <gtest/gtest.h>

#include "apps/bp3d.hpp"
#include "apps/cycles.hpp"
#include "apps/llm.hpp"
#include "apps/matmul.hpp"
#include "common/rng.hpp"
#include "core/epsilon_greedy.hpp"
#include "core/evaluator.hpp"
#include "experiments/datasets.hpp"
#include "serve/bandit_server.hpp"

namespace bw {
namespace {

TEST(GoldenValues, XoshiroStream) {
  Xoshiro256 gen(42);
  EXPECT_EQ(gen(), 1546998764402558742ULL);
  EXPECT_EQ(gen(), 6990951692964543102ULL);
}

TEST(GoldenValues, RngUniformAndNormal) {
  Rng rng(42);
  EXPECT_NEAR(rng.uniform(), 0.083862971059882163, 1e-15);
  EXPECT_NEAR(rng.normal(), -0.59278099932293538, 1e-12);
}

TEST(GoldenValues, ChildSeedDerivation) {
  Rng rng(42);
  EXPECT_EQ(rng.child_seed(0), 18062737256950912743ULL);
}

TEST(GoldenValues, CyclesRunIsPinned) {
  Rng rng(7);
  const double makespan =
      apps::simulate_cycles_run(200, {"H", 2, 16.0}, apps::CyclesConfig{}, rng);
  EXPECT_NEAR(makespan, 639.85143260242944, 1e-9);
}

TEST(GoldenValues, FireSimIsPinned) {
  Rng rng(11);
  apps::WeatherInputs weather;
  weather.surface_moisture = 0.10;
  weather.canopy_moisture = 0.60;
  weather.wind_direction_deg = 45.0;
  weather.wind_speed_ms = 8.0;
  weather.sim_time_steps = 300;
  const apps::FireSimResult result =
      apps::run_fire_sim(geo::builtin_burn_units()[2], weather, {}, rng);
  EXPECT_EQ(result.burned_cells, 4000u);
  EXPECT_EQ(result.steps_executed, 89);
}

TEST(GoldenValues, MatmulRuntimeIsPinned) {
  Rng rng(13);
  const double runtime = apps::simulate_matmul_runtime(
      6000, 0.25, {"M2", 4, 16.0}, apps::MatmulModelConfig{}, rng);
  EXPECT_NEAR(runtime, 47.511787849929419, 1e-9);
}

TEST(GoldenValues, LlmLatencyIsPinned) {
  apps::LlmRequest request;
  request.model_params_b = 7.0;
  request.prompt_tokens = 1024;
  request.output_tokens = 256;
  request.batch_size = 2;
  const double cpu = apps::llm_expected_latency(request, {"C16", 16, 64.0, 0});
  EXPECT_NEAR(cpu, 39.597979746446661, 1e-9);
}

TEST(GoldenValues, ReplayTrajectoryIsPinned) {
  const exp::CyclesDataset dataset = exp::build_cycles_dataset(40, 21);
  core::DecayingEpsilonGreedy policy(dataset.table.catalog(), 1, {});
  core::ReplayConfig config;
  config.num_rounds = 8;
  config.per_round_metrics = false;
  config.seed = 3;
  const core::ReplayResult result = core::replay(policy, dataset.table, config);
  const std::vector<core::ArmIndex> expected_arms = {2, 2, 2, 0, 0, 2, 3, 3};
  EXPECT_EQ(result.chosen_arm, expected_arms);
}

TEST(GoldenValues, DatasetBuildersAreStableAcrossCalls) {
  // Same options twice -> byte-identical runtime matrices.
  const exp::Bp3dDataset a = exp::build_bp3d_dataset(25, 99);
  const exp::Bp3dDataset b = exp::build_bp3d_dataset(25, 99);
  EXPECT_EQ(a.table.runtimes().data(), b.table.runtimes().data());
  const exp::MatmulDataset ma = exp::build_matmul_dataset(0.02, 4);
  const exp::MatmulDataset mb = exp::build_matmul_dataset(0.02, 4);
  EXPECT_EQ(ma.table.runtimes().data(), mb.table.runtimes().data());
}

TEST(GoldenValues, DatasetSeedChangesEverything) {
  const exp::Bp3dDataset a = exp::build_bp3d_dataset(25, 99);
  const exp::Bp3dDataset c = exp::build_bp3d_dataset(25, 100);
  EXPECT_NE(a.table.runtimes().data(), c.table.runtimes().data());
}

TEST(GoldenValues, ServeFeatureHashRoutingIsPinned) {
  // The serving engine promises stable feature-hash routing (FNV-1a over
  // the feature bit patterns) — repeat workflows must keep hitting the
  // replica that learned them, across runs and platforms.
  serve::BanditServerConfig config;
  config.num_shards = 4;
  serve::BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
  EXPECT_EQ(server.shard_of({120.0}), 3u);
  EXPECT_EQ(server.shard_of({55.0}), 2u);
  EXPECT_EQ(server.shard_of({129.0}), 1u);
  EXPECT_EQ(server.shard_of({200.0}), 0u);
  EXPECT_EQ(server.shard_of({97.5}), 1u);
  EXPECT_EQ(server.shard_of({120.0, 2.0}), 3u);
}

}  // namespace
}  // namespace bw
