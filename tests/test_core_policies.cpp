// Tests for the bandit policies (core/arm_model, epsilon_greedy, linucb,
// thompson, baselines).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "core/arm_model.hpp"
#include "core/baselines.hpp"
#include "core/epsilon_greedy.hpp"
#include "core/linucb.hpp"
#include "core/thompson.hpp"

namespace bw::core {
namespace {

hw::HardwareCatalog three_arms() {
  return hw::HardwareCatalog({{"H0", 2, 16.0}, {"H1", 3, 24.0}, {"H2", 4, 16.0}});
}

// ---- LinearArmModel ----------------------------------------------------------

TEST(LinearArmModel, StartsAtPaperInit) {
  LinearArmModel model(2);
  EXPECT_EQ(model.predict(std::vector<double>{5.0, 7.0}), 0.0);  // w=0, b=0
  EXPECT_EQ(model.count(), 0u);
}

TEST(LinearArmModel, LearnsExactLineFromTwoPoints) {
  LinearArmModel model(1);
  model.observe(std::vector<double>{1.0}, 10.0);
  model.observe(std::vector<double>{2.0}, 20.0);
  EXPECT_NEAR(model.predict(std::vector<double>{3.0}), 30.0, 1e-5);
}

TEST(LinearArmModel, SingleObservationPredictsNearTarget) {
  LinearArmModel model(1);
  model.observe(std::vector<double>{4.0}, 100.0);
  EXPECT_NEAR(model.predict(std::vector<double>{4.0}), 100.0, 0.1);
}

TEST(LinearArmModel, ResetRestoresZeroState) {
  LinearArmModel model(1);
  model.observe(std::vector<double>{1.0}, 5.0);
  model.reset();
  EXPECT_EQ(model.count(), 0u);
  EXPECT_EQ(model.predict(std::vector<double>{1.0}), 0.0);
}

TEST(LinearArmModel, RejectsBadInput) {
  LinearArmModel model(2);
  EXPECT_THROW(model.observe(std::vector<double>{1.0}, 1.0), InvalidArgument);
  EXPECT_THROW(model.observe(std::vector<double>{1.0, std::nan("")}, 1.0),
               InvalidArgument);
  EXPECT_THROW(model.observe(std::vector<double>{1.0, 2.0}, INFINITY), InvalidArgument);
  EXPECT_THROW(LinearArmModel(0), InvalidArgument);
}

// ---- DecayingEpsilonGreedy -----------------------------------------------------

TEST(EpsilonGreedy, EpsilonDecaysPerObservation) {
  EpsilonGreedyConfig config;
  config.initial_epsilon = 1.0;
  config.decay = 0.9;
  DecayingEpsilonGreedy policy(three_arms(), 1, config);
  EXPECT_DOUBLE_EQ(policy.epsilon(), 1.0);
  policy.observe(0, {1.0}, 10.0);
  EXPECT_DOUBLE_EQ(policy.epsilon(), 0.9);
  policy.observe(1, {1.0}, 10.0);
  EXPECT_DOUBLE_EQ(policy.epsilon(), 0.81);
}

TEST(EpsilonGreedy, FullExplorationIsUniform) {
  EpsilonGreedyConfig config;
  config.initial_epsilon = 1.0;
  config.decay = 1.0;  // never decays
  DecayingEpsilonGreedy policy(three_arms(), 1, config);
  Rng rng(1);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) ++counts[policy.select({1.0}, rng)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 120);
}

TEST(EpsilonGreedy, ZeroEpsilonIsGreedy) {
  EpsilonGreedyConfig config;
  config.initial_epsilon = 0.0;
  DecayingEpsilonGreedy policy(three_arms(), 1, config);
  // Train arm 2 to be clearly fastest, others slow.
  for (double x : {1.0, 2.0}) {
    policy.observe(0, {x}, 100.0 * x);
    policy.observe(1, {x}, 90.0 * x);
    policy.observe(2, {x}, 10.0 * x);
  }
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(policy.select({3.0}, rng), 2u);
    EXPECT_FALSE(policy.last_was_exploration());
  }
}

TEST(EpsilonGreedy, UntrainedRecommendIsMostEfficientArm) {
  DecayingEpsilonGreedy policy(three_arms(), 1, {});
  // All predictions 0 -> tolerant selection picks the cheapest arm (H0).
  EXPECT_EQ(policy.recommend({1.0}), 0u);
}

TEST(EpsilonGreedy, ToleranceSelectsEfficientHardware) {
  EpsilonGreedyConfig config;
  config.initial_epsilon = 0.0;
  config.tolerance.seconds = 25.0;
  DecayingEpsilonGreedy policy(three_arms(), 1, config);
  // H2 fastest at 100, H0 within 25 s at 115 and more efficient.
  for (double x : {1.0, 2.0, 3.0}) {
    policy.observe(0, {x}, 115.0);
    policy.observe(1, {x}, 160.0);
    policy.observe(2, {x}, 100.0);
  }
  EXPECT_EQ(policy.recommend({2.0}), 0u);
}

TEST(EpsilonGreedy, PredictAllMatchesPerArmPredict) {
  DecayingEpsilonGreedy policy(three_arms(), 1, {});
  policy.observe(1, {1.0}, 42.0);
  const auto all = policy.predict_all({1.0});
  ASSERT_EQ(all.size(), 3u);
  for (ArmIndex arm = 0; arm < 3; ++arm) {
    EXPECT_DOUBLE_EQ(all[arm], policy.predict(arm, {1.0}));
  }
}

TEST(EpsilonGreedy, SetEpsilonClamps) {
  DecayingEpsilonGreedy policy(three_arms(), 1, {});
  policy.set_epsilon(2.0);
  EXPECT_DOUBLE_EQ(policy.epsilon(), 1.0);
  policy.set_epsilon(-1.0);
  EXPECT_DOUBLE_EQ(policy.epsilon(), 0.0);
}

TEST(EpsilonGreedy, ResetRestoresEpsilonAndModels) {
  EpsilonGreedyConfig config;
  config.initial_epsilon = 0.7;
  DecayingEpsilonGreedy policy(three_arms(), 1, config);
  policy.observe(0, {1.0}, 5.0);
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.epsilon(), 0.7);
  EXPECT_EQ(policy.arm_model(0).count(), 0u);
}

TEST(EpsilonGreedy, RejectsBadConfigAndArms) {
  EpsilonGreedyConfig config;
  config.initial_epsilon = 1.5;
  EXPECT_THROW(DecayingEpsilonGreedy(three_arms(), 1, config), InvalidArgument);
  config.initial_epsilon = 0.5;
  config.decay = 0.0;
  EXPECT_THROW(DecayingEpsilonGreedy(three_arms(), 1, config), InvalidArgument);
  EXPECT_THROW(DecayingEpsilonGreedy(hw::HardwareCatalog{}, 1, {}), InvalidArgument);
  DecayingEpsilonGreedy policy(three_arms(), 1, {});
  EXPECT_THROW(policy.observe(9, {1.0}, 1.0), InvalidArgument);
  EXPECT_THROW(policy.predict(9, {1.0}), InvalidArgument);
}

// ---- LinUCB ---------------------------------------------------------------------

TEST(LinUcb, ExploresUnseenArmsFirst) {
  LinUcbConfig config;
  config.alpha = 2.0;
  LinUcb policy(three_arms(), 1, config);
  Rng rng(3);
  std::vector<bool> seen(3, false);
  for (int i = 0; i < 3; ++i) {
    const ArmIndex arm = policy.select({1.0}, rng);
    seen[arm] = true;
    policy.observe(arm, {1.0}, 50.0);
  }
  // Wide uncertainty on unplayed arms pulls them in quickly.
  EXPECT_TRUE(seen[0] || seen[1] || seen[2]);
}

TEST(LinUcb, ConvergesToBestArmOnCleanData) {
  LinUcbConfig config;
  config.alpha = 1.0;
  LinUcb policy(three_arms(), 1, config);
  Rng rng(4);
  // Arm 1 always fastest.
  for (int round = 0; round < 60; ++round) {
    const double x = 1.0 + (round % 5);
    const ArmIndex arm = policy.select({x}, rng);
    const double runtime = (arm == 1) ? 10.0 * x : 50.0 * x;
    policy.observe(arm, {x}, runtime);
  }
  EXPECT_EQ(policy.recommend({3.0}), 1u);
}

TEST(LinUcb, LcbIsBelowMean) {
  LinUcbConfig config;
  config.alpha = 1.0;
  LinUcb policy(three_arms(), 1, config);
  policy.observe(0, {1.0}, 20.0);
  EXPECT_LT(policy.lcb(0, {1.0}), policy.predict(0, {1.0}));
}

TEST(LinUcb, ZeroAlphaIsGreedyOnMeans) {
  LinUcbConfig config;
  config.alpha = 0.0;
  LinUcb policy(three_arms(), 1, config);
  policy.observe(0, {1.0}, 5.0);
  policy.observe(1, {1.0}, 50.0);
  policy.observe(2, {1.0}, 50.0);
  Rng rng(5);
  EXPECT_EQ(policy.select({1.0}, rng), 0u);
}

// ---- Thompson -------------------------------------------------------------------

TEST(Thompson, ConvergesToBestArmOnCleanData) {
  ThompsonConfig config;
  LinearThompson policy(three_arms(), 1, config);
  Rng rng(6);
  for (int round = 0; round < 80; ++round) {
    const double x = 1.0 + (round % 4);
    const ArmIndex arm = policy.select({x}, rng);
    const double runtime = (arm == 2) ? 5.0 * x : 40.0 * x;
    policy.observe(arm, {x}, runtime);
  }
  EXPECT_EQ(policy.recommend({2.0}), 2u);
}

TEST(Thompson, SamplesSpreadWhenUncertain) {
  LinearThompson policy(three_arms(), 1, {});
  Rng rng(7);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 300; ++i) ++counts[policy.select({1.0}, rng)];
  // With no data every arm keeps substantial posterior mass.
  for (int c : counts) EXPECT_GT(c, 30);
}

TEST(Thompson, RejectsBadConfig) {
  ThompsonConfig config;
  config.posterior_scale = 0.0;
  EXPECT_THROW(LinearThompson(three_arms(), 1, config), InvalidArgument);
}

// ---- non-contextual baselines -----------------------------------------------------

TEST(Ucb1, PlaysEveryArmOnceFirst) {
  Ucb1 policy(4);
  Rng rng(8);
  std::vector<bool> played(4, false);
  for (int i = 0; i < 4; ++i) {
    const ArmIndex arm = policy.select({}, rng);
    EXPECT_FALSE(played[arm]);
    played[arm] = true;
    policy.observe(arm, {}, 10.0);
  }
}

TEST(Ucb1, ConvergesToLowestMean) {
  Ucb1 policy(3, 0.5);
  Rng rng(9);
  for (int round = 0; round < 200; ++round) {
    const ArmIndex arm = policy.select({}, rng);
    policy.observe(arm, {}, arm == 1 ? 5.0 : 20.0);
  }
  EXPECT_EQ(policy.recommend({}), 1u);
}

TEST(Ucb1, RecommendPrefersPlayedArms) {
  Ucb1 policy(3);
  policy.observe(2, {}, 10.0);
  EXPECT_EQ(policy.recommend({}), 2u);  // unplayed means are unknown, not 0
}

TEST(MeanEpsilonGreedy, TracksPerArmMeans) {
  MeanEpsilonGreedy policy(2, 0.0);
  policy.observe(0, {}, 10.0);
  policy.observe(0, {}, 20.0);
  policy.observe(1, {}, 12.0);
  EXPECT_DOUBLE_EQ(policy.predict(0, {}), 15.0);
  EXPECT_EQ(policy.recommend({}), 1u);
}

TEST(MeanEpsilonGreedy, RecommendExploresUnplayedArmsFirst) {
  MeanEpsilonGreedy policy(3, 0.0);
  policy.observe(0, {}, 1.0);
  EXPECT_EQ(policy.recommend({}), 1u);  // first unplayed arm
}

TEST(RandomPolicy, SelectIsUniform) {
  RandomPolicy policy(4);
  Rng rng(10);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[policy.select({}, rng)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 130);
}

TEST(RandomPolicy, RecommendCyclesDeterministically) {
  RandomPolicy policy(3);
  EXPECT_EQ(policy.recommend({}), 0u);
  EXPECT_EQ(policy.recommend({}), 1u);
  EXPECT_EQ(policy.recommend({}), 2u);
  EXPECT_EQ(policy.recommend({}), 0u);
}

TEST(OraclePolicy, DelegatesToBestArmFunction) {
  OraclePolicy policy(3, [](const FeatureVector& x) {
    return x[0] > 0.5 ? ArmIndex{2} : ArmIndex{0};
  });
  Rng rng(11);
  EXPECT_EQ(policy.select({0.9}, rng), 2u);
  EXPECT_EQ(policy.recommend({0.1}), 0u);
}

TEST(OraclePolicy, ValidatesReturnedArm) {
  OraclePolicy policy(2, [](const FeatureVector&) { return ArmIndex{7}; });
  EXPECT_THROW(policy.recommend({1.0}), InvalidArgument);
  EXPECT_THROW(OraclePolicy(0, nullptr), InvalidArgument);
}

// Property: exploration frequency tracks epsilon for the decaying policy.
class ExplorationFrequency : public ::testing::TestWithParam<double> {};

TEST_P(ExplorationFrequency, MatchesEpsilon) {
  EpsilonGreedyConfig config;
  config.initial_epsilon = GetParam();
  config.decay = 1.0;
  DecayingEpsilonGreedy policy(three_arms(), 1, config);
  Rng rng(12);
  int explored = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    policy.select({1.0}, rng);
    explored += policy.last_was_exploration();
  }
  EXPECT_NEAR(static_cast<double>(explored) / n, GetParam(), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Rates, ExplorationFrequency,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace bw::core
