// Tests for multi-metric objectives and cost/power/price rate models
// (core/objectives, hardware/cost_rates) — the paper's future-work
// "multiple parameter minimization".

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/objectives.hpp"

namespace bw::core {
namespace {

const hw::HardwareSpec kCpuNode{"C", 16, 64.0, 0};
const hw::HardwareSpec kGpuNode{"G", 8, 64.0, 2};

// ---- power / price rates ----------------------------------------------------

TEST(PowerModel, WattsAreAdditive) {
  hw::PowerModel power;
  const double cpu_watts = power.watts(kCpuNode);
  EXPECT_DOUBLE_EQ(cpu_watts, 40.0 + 15.0 * 16 + 0.3 * 64);
  // GPUs dominate node power.
  EXPECT_GT(power.watts(kGpuNode), cpu_watts);
}

TEST(PowerModel, EnergyScalesWithRuntime) {
  hw::PowerModel power;
  EXPECT_DOUBLE_EQ(power.energy_joules(kCpuNode, 10.0),
                   10.0 * power.watts(kCpuNode));
  EXPECT_DOUBLE_EQ(power.energy_joules(kCpuNode, 0.0), 0.0);
  EXPECT_THROW(power.energy_joules(kCpuNode, -1.0), InvalidArgument);
}

TEST(PriceModel, HourlyRateAndProration) {
  hw::PriceModel price;
  const double rate = price.dollars_per_hour(kCpuNode);
  EXPECT_DOUBLE_EQ(rate, 0.04 * 16 + 0.005 * 64);
  EXPECT_DOUBLE_EQ(price.dollars(kCpuNode, 3600.0), rate);
  EXPECT_DOUBLE_EQ(price.dollars(kCpuNode, 1800.0), rate / 2.0);
  EXPECT_THROW(price.dollars(kCpuNode, -5.0), InvalidArgument);
}

TEST(PriceModel, GpusArePremium) {
  hw::PriceModel price;
  EXPECT_GT(price.dollars_per_hour(kGpuNode), price.dollars_per_hour(kCpuNode));
}

// ---- scalar cost ---------------------------------------------------------------

TEST(ScalarCost, RuntimeOnlyIsIdentity) {
  RunMetrics metrics;
  metrics.runtime_s = 42.0;
  metrics.energy_joules = 9999.0;  // ignored at weight 0
  EXPECT_DOUBLE_EQ(scalar_cost(metrics, {}), 42.0);
}

TEST(ScalarCost, CombinesWeightedMetrics) {
  RunMetrics metrics;
  metrics.runtime_s = 10.0;
  metrics.queue_wait_s = 5.0;
  metrics.sched_overhead_s = 1.0;
  metrics.energy_joules = 2000.0;  // 2 kJ
  metrics.dollars = 0.5;
  ObjectiveWeights weights;
  weights.runtime = 1.0;
  weights.queue_wait = 2.0;
  weights.sched_overhead = 3.0;
  weights.energy_kj = 4.0;
  weights.dollars = 10.0;
  EXPECT_DOUBLE_EQ(scalar_cost(metrics, weights), 10.0 + 10.0 + 3.0 + 8.0 + 5.0);
}

TEST(ScalarCost, RejectsInvalidWeights) {
  RunMetrics metrics;
  ObjectiveWeights negative;
  negative.runtime = -1.0;
  EXPECT_THROW(scalar_cost(metrics, negative), InvalidArgument);
  ObjectiveWeights all_zero;
  all_zero.runtime = 0.0;
  EXPECT_THROW(scalar_cost(metrics, all_zero), InvalidArgument);
}

TEST(ScalarCost, WeightsToStringListsActiveTerms) {
  ObjectiveWeights weights;
  weights.energy_kj = 2.0;
  const std::string s = weights.to_string();
  EXPECT_NE(s.find("runtime"), std::string::npos);
  EXPECT_NE(s.find("energy_kJ*2"), std::string::npos);
  EXPECT_EQ(s.find("dollars"), std::string::npos);
}

TEST(RunMetrics, FromRuntimeDerivesEnergyAndDollars) {
  const RunMetrics metrics = RunMetrics::from_runtime(100.0, kGpuNode);
  EXPECT_DOUBLE_EQ(metrics.runtime_s, 100.0);
  EXPECT_GT(metrics.energy_joules, 0.0);
  EXPECT_GT(metrics.dollars, 0.0);
  EXPECT_DOUBLE_EQ(metrics.queue_wait_s, 0.0);
  EXPECT_THROW(RunMetrics::from_runtime(-1.0, kGpuNode), InvalidArgument);
}

// ---- MultiMetricBandit ------------------------------------------------------------

hw::HardwareCatalog cpu_gpu_catalog() {
  hw::HardwareCatalog catalog;
  catalog.add(kCpuNode);
  catalog.add(kGpuNode);
  return catalog;
}

TEST(MultiMetricBandit, ConstructionValidates) {
  EXPECT_THROW(MultiMetricBandit(cpu_gpu_catalog(), {}, {}), InvalidArgument);
  ObjectiveWeights zero;
  zero.runtime = 0.0;
  EXPECT_THROW(MultiMetricBandit(cpu_gpu_catalog(), {"x"}, zero), InvalidArgument);
}

TEST(MultiMetricBandit, NextAndObserveRoundTrip) {
  MultiMetricBandit bandit(cpu_gpu_catalog(), {"x"}, {});
  Rng rng(1);
  const auto decision = bandit.next({1.0}, rng);
  ASSERT_NE(decision.spec, nullptr);
  RunMetrics metrics;
  metrics.runtime_s = 12.0;
  bandit.observe(decision.arm, {1.0}, metrics);
  EXPECT_EQ(bandit.num_observations(), 1u);
  EXPECT_DOUBLE_EQ(bandit.arm_stats(decision.arm).runtime.mean(), 12.0);
}

TEST(MultiMetricBandit, ObjectiveChangesTheWinner) {
  // Arm 0 (CPU): runtime 20 s, low energy. Arm 1 (GPU): runtime 10 s, huge
  // energy. Runtime-only must learn the GPU; energy-heavy must learn the CPU.
  auto run_with = [](const ObjectiveWeights& weights) {
    EpsilonGreedyConfig policy;
    policy.initial_epsilon = 1.0;
    policy.decay = 0.9;
    MultiMetricBandit bandit(cpu_gpu_catalog(), {"x"}, weights, policy);
    Rng rng(7);
    for (int i = 0; i < 60; ++i) {
      const FeatureVector x = {1.0 + (i % 3)};
      const auto decision = bandit.next(x, rng);
      RunMetrics metrics;
      metrics.runtime_s = decision.arm == 0 ? 20.0 : 10.0;
      metrics.energy_joules = decision.arm == 0 ? 4000.0 : 40000.0;
      bandit.observe(decision.arm, x, metrics);
    }
    return bandit.recommend({2.0});
  };

  EXPECT_EQ(run_with({}), 1u);  // runtime-only -> GPU
  ObjectiveWeights energy_heavy;
  energy_heavy.runtime = 1.0;
  energy_heavy.energy_kj = 2.0;  // cost: CPU 20+8=28, GPU 10+80=90
  EXPECT_EQ(run_with(energy_heavy), 0u);
}

TEST(MultiMetricBandit, RejectsBadUsage) {
  MultiMetricBandit bandit(cpu_gpu_catalog(), {"x"}, {});
  Rng rng(2);
  EXPECT_THROW(bandit.next({1.0, 2.0}, rng), InvalidArgument);
  EXPECT_THROW(bandit.observe(9, {1.0}, {}), InvalidArgument);
  EXPECT_THROW(bandit.recommend({}), InvalidArgument);
  EXPECT_THROW(bandit.arm_stats(5), InvalidArgument);
}

TEST(MultiMetricBandit, PredictedCostsMatchArmCount) {
  MultiMetricBandit bandit(cpu_gpu_catalog(), {"x"}, {});
  EXPECT_EQ(bandit.predicted_costs({1.0}).size(), 2u);
}

}  // namespace
}  // namespace bw::core
