// Tests for the experiment drivers (experiments/): dataset pipelines, the
// linear-regression baseline and the per-figure drivers at reduced scale.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/epsilon_greedy.hpp"
#include "experiments/datasets.hpp"
#include "experiments/exp1_cycles.hpp"
#include "experiments/exp2_bp3d.hpp"
#include "experiments/exp3_matmul.hpp"
#include "experiments/linreg_experiment.hpp"
#include "experiments/report.hpp"

namespace bw::exp {
namespace {

// ---- merge pipeline -----------------------------------------------------------

TEST(MergePipeline, CombinesPerHardwareFrames) {
  hw::HardwareCatalog catalog({{"A", 1, 4.0}, {"B", 2, 8.0}});
  std::vector<df::DataFrame> frames(2);
  for (std::size_t arm = 0; arm < 2; ++arm) {
    frames[arm].add_column("run_id", df::Column(std::vector<std::int64_t>{0, 1, 2}));
    frames[arm].add_column("x", df::Column(std::vector<double>{1.0, 2.0, 3.0}));
    frames[arm].add_column(
        "runtime", df::Column(std::vector<double>{10.0 + static_cast<double>(arm),
                                                  20.0 + static_cast<double>(arm),
                                                  30.0 + static_cast<double>(arm)}));
  }
  const core::RunTable table = merge_frames_to_table(frames, "run_id", {"x"}, catalog);
  EXPECT_EQ(table.num_groups(), 3u);
  EXPECT_EQ(table.num_arms(), 2u);
  EXPECT_DOUBLE_EQ(table.runtime(1, 0), 20.0);
  EXPECT_DOUBLE_EQ(table.runtime(1, 1), 21.0);
  EXPECT_DOUBLE_EQ(table.features()(2, 0), 3.0);
}

TEST(MergePipeline, InnerJoinDropsUnmatchedRuns) {
  hw::HardwareCatalog catalog({{"A", 1, 4.0}, {"B", 2, 8.0}});
  std::vector<df::DataFrame> frames(2);
  frames[0].add_column("run_id", df::Column(std::vector<std::int64_t>{0, 1, 2}));
  frames[0].add_column("x", df::Column(std::vector<double>{1.0, 2.0, 3.0}));
  frames[0].add_column("runtime", df::Column(std::vector<double>{1.0, 2.0, 3.0}));
  frames[1].add_column("run_id", df::Column(std::vector<std::int64_t>{1, 2, 5}));
  frames[1].add_column("x", df::Column(std::vector<double>{2.0, 3.0, 9.0}));
  frames[1].add_column("runtime", df::Column(std::vector<double>{2.5, 3.5, 9.5}));
  const core::RunTable table = merge_frames_to_table(frames, "run_id", {"x"}, catalog);
  EXPECT_EQ(table.num_groups(), 2u);  // run ids 1 and 2 survive
}

TEST(MergePipeline, ArmCountMismatchThrows) {
  hw::HardwareCatalog catalog({{"A", 1, 4.0}, {"B", 2, 8.0}});
  std::vector<df::DataFrame> frames(1);
  frames[0].add_column("run_id", df::Column(std::vector<std::int64_t>{0}));
  frames[0].add_column("runtime", df::Column(std::vector<double>{1.0}));
  EXPECT_THROW(merge_frames_to_table(frames, "run_id", {}, catalog), InvalidArgument);
}

// ---- dataset builders ------------------------------------------------------------

TEST(Datasets, CyclesShape) {
  const CyclesDataset dataset = build_cycles_dataset(25, 1);
  EXPECT_EQ(dataset.table.num_groups(), 25u);
  EXPECT_EQ(dataset.table.num_arms(), 4u);
  EXPECT_EQ(dataset.table.feature_names(), (std::vector<std::string>{"num_tasks"}));
}

TEST(Datasets, Bp3dShapeMatchesTable1) {
  const Bp3dDataset dataset = build_bp3d_dataset(18, 2);
  EXPECT_EQ(dataset.table.num_groups(), 18u);
  EXPECT_EQ(dataset.table.num_arms(), 3u);
  EXPECT_EQ(dataset.table.num_features(), 7u);
  EXPECT_EQ(dataset.frames.size(), 3u);
}

TEST(Datasets, MatmulViewsAreConsistent) {
  const MatmulDataset dataset = build_matmul_dataset(0.02, 3);
  EXPECT_EQ(dataset.table.num_arms(), 5u);
  EXPECT_EQ(dataset.size_only.num_features(), 1u);
  EXPECT_EQ(dataset.size_only.num_groups(), dataset.table.num_groups());
  // Subset keeps only size >= 5000 groups.
  for (std::size_t g = 0; g < dataset.subset.num_groups(); ++g) {
    EXPECT_GE(dataset.subset.features()(g, 0), 5000.0);
  }
  EXPECT_LT(dataset.subset.num_groups(), dataset.table.num_groups());
  EXPECT_EQ(dataset.subset.num_groups(), dataset.subset_size_only.num_groups());
  EXPECT_THROW(build_matmul_dataset(0.0, 3), InvalidArgument);
}

// ---- linreg baseline --------------------------------------------------------------

TEST(LinRegExperiment, ProducesRequestedDistribution) {
  const CyclesDataset dataset = build_cycles_dataset(40, 4);
  LinRegExperimentConfig config;
  config.num_models = 12;
  config.samples_per_model = 10;
  const LinRegDistribution dist = run_linreg_experiment(dataset.table, config);
  EXPECT_EQ(dist.rmse_values.size(), 12u);
  EXPECT_EQ(dist.r2_values.size(), 12u);
  EXPECT_GT(dist.rmse.mean, 0.0);
  EXPECT_LE(dist.r2.max, 1.0);
  // Cycles runtimes are strongly linear in num_tasks: R2 must be high.
  EXPECT_GT(dist.r2.median, 0.9);
}

TEST(LinRegExperiment, DeterministicBySeed) {
  const CyclesDataset dataset = build_cycles_dataset(30, 5);
  LinRegExperimentConfig config;
  config.num_models = 5;
  config.samples_per_model = 8;
  const LinRegDistribution a = run_linreg_experiment(dataset.table, config);
  const LinRegDistribution b = run_linreg_experiment(dataset.table, config);
  EXPECT_EQ(a.rmse_values, b.rmse_values);
}

TEST(LinRegExperiment, RejectsBadConfig) {
  const CyclesDataset dataset = build_cycles_dataset(10, 6);
  LinRegExperimentConfig config;
  config.samples_per_model = 50;  // > dataset size
  EXPECT_THROW(run_linreg_experiment(dataset.table, config), InvalidArgument);
  config.samples_per_model = 1;
  EXPECT_THROW(run_linreg_experiment(dataset.table, config), InvalidArgument);
  config.samples_per_model = 5;
  config.num_models = 0;
  EXPECT_THROW(run_linreg_experiment(dataset.table, config), InvalidArgument);
}

// ---- figure drivers (reduced scale) --------------------------------------------------

TEST(Fig3, SlopesSeparateAndMatchGroundTruth) {
  const Fig3Result result = run_fig3_cycles_fit(60, 7);
  ASSERT_EQ(result.arms.size(), 4u);
  for (const auto& arm : result.arms) {
    EXPECT_NEAR(arm.fitted_slope, arm.true_slope, arm.true_slope * 0.10) << arm.hardware;
  }
  for (std::size_t i = 1; i < result.arms.size(); ++i) {
    EXPECT_LT(result.arms[i].fitted_slope, result.arms[i - 1].fitted_slope);
  }
}

TEST(Fig4, BanditConvergesTowardFullFit) {
  const LearningRun run = run_fig4_cycles_learning(3, 40, 120, 8);
  ASSERT_EQ(run.sims.rmse.rounds(), 40u);
  const double final_rmse = run.sims.rmse.mean.back();
  const double initial_rmse = run.sims.rmse.mean.front();
  const double baseline = run.sims.full_fit_metrics.rmse;
  EXPECT_LT(final_rmse, initial_rmse);
  EXPECT_LT(final_rmse, baseline * 3.0);  // near the red line
  // Accuracy (ts = 20 s) improves over time.
  EXPECT_GT(run.sims.accuracy.mean.back(), run.sims.accuracy.mean.front());
}

TEST(Fig5, AreaOnlyModelsAreNoBetterThanAllFeatures) {
  const Bp3dDataset dataset = build_bp3d_dataset(80, 9);
  Fig5Result result;
  {
    LinRegExperimentConfig config;
    config.num_models = 10;
    config.samples_per_model = 20;
    config.seed = 1;
    result.all_features = run_linreg_experiment(dataset.table, config);
    result.area_only =
        run_linreg_experiment(dataset.table.select_features({"area"}), config);
  }
  EXPECT_GT(result.all_features.rmse.mean, 0.0);
  EXPECT_GT(result.area_only.rmse.mean, 0.0);
}

TEST(Fig6, BanditFitTracksBaselineSlope) {
  const Bp3dDataset dataset = build_bp3d_dataset(120, 10);
  // Slopes on the noisy BP3D data are variable per simulation; averaging
  // over 15 simulations of 60 rounds keeps the sign stable.
  const Fig6Result result = run_fig6_bp3d_area_fit(dataset, 15, 60, 11);
  ASSERT_EQ(result.arms.size(), 3u);
  for (const auto& arm : result.arms) {
    // Learned slope has the same sign and order of magnitude as baseline.
    EXPECT_GT(arm.bandit_slope, 0.0);
    EXPECT_GT(arm.baseline_slope, 0.0);
    EXPECT_LT(std::abs(arm.bandit_slope - arm.baseline_slope),
              std::abs(arm.baseline_slope) * 2.0);
  }
  EXPECT_EQ(result.areas.size(), 120u);
}

TEST(Fig7, RmseConvergesAccuracyNearRandom) {
  const Bp3dDataset dataset = build_bp3d_dataset(200, 12);
  const LearningRun run = run_fig7_bp3d_bandit(dataset, 8, 50, 13);
  const double baseline_acc = run.sims.full_fit_metrics.accuracy;
  // The paper's key negative result: near-identical hardware -> accuracy
  // close to random guessing (1/3).
  EXPECT_NEAR(baseline_acc, 1.0 / 3.0, 0.15);
  // Small-sample OLS on 7 features spikes mid-run (the paper's Fig. 7a has
  // the same early instability); assert recovery rather than monotonicity:
  // the final RMSE must be below the worst round and within reach of the
  // full-fit baseline.
  const double worst = *std::max_element(run.sims.rmse.mean.begin(),
                                         run.sims.rmse.mean.end());
  EXPECT_LT(run.sims.rmse.mean.back(), worst);
  EXPECT_LT(run.sims.rmse.mean.back(), run.sims.full_fit_metrics.rmse * 3.0);
}

TEST(Figs9to12, ToleranceLiftsAccuracy) {
  const MatmulDataset dataset = build_matmul_dataset(0.05, 14);
  MatmulLearningOptions no_tol;
  no_tol.num_simulations = 4;
  no_tol.num_rounds = 40;
  const LearningRun full_run = run_matmul_learning(dataset, no_tol);

  MatmulLearningOptions subset_opts = no_tol;
  subset_opts.subset = true;
  const LearningRun subset_run = run_matmul_learning(dataset, subset_opts);

  MatmulLearningOptions tol20 = no_tol;
  tol20.tolerance.seconds = 20.0;
  const LearningRun tolerant_run = run_matmul_learning(dataset, tol20);

  // Paper regimes: subset beats full; tolerance beats no tolerance.
  EXPECT_GT(subset_run.sims.full_fit_metrics.accuracy,
            full_run.sims.full_fit_metrics.accuracy);
  EXPECT_GT(tolerant_run.sims.accuracy.mean.back(), full_run.sims.accuracy.mean.back());
}

// ---- report rendering ----------------------------------------------------------------

TEST(Report, LearningReportContainsSeries) {
  const CyclesDataset dataset = build_cycles_dataset(30, 15);
  core::ReplayConfig config;
  config.num_rounds = 10;
  const core::MultiSimResult sims = core::run_simulations(
      [&dataset] {
        return std::make_unique<core::DecayingEpsilonGreedy>(
            dataset.table.catalog(), 1, core::EpsilonGreedyConfig{});
      },
      dataset.table, config, 2);
  LearningReportOptions options;
  options.title = "test-figure";
  const std::string report = render_learning_report(sims, options);
  EXPECT_NE(report.find("test-figure"), std::string::npos);
  EXPECT_NE(report.find("rmse_mean"), std::string::npos);
  EXPECT_NE(report.find("full-fit baseline"), std::string::npos);
}

TEST(Report, CompareRowFormatsBothValues) {
  const std::string row = compare_row("accuracy", 0.342, 0.40, "regime check");
  EXPECT_NE(row.find("paper=0.342"), std::string::npos);
  EXPECT_NE(row.find("measured=0.4"), std::string::npos);
  EXPECT_NE(row.find("regime check"), std::string::npos);
}

TEST(Table1, RowsMatchPaperSchema) {
  const auto& rows = bp3d_table1_rows();
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows[0].feature, "surface_moisture");
  EXPECT_EQ(rows[6].feature, "area");
  for (const auto& row : rows) EXPECT_FALSE(row.description.empty());
}

}  // namespace
}  // namespace bw::exp
