// Property tests for cross-model merging via sufficient statistics: fusing
// two independently trained models (RLS::merge / LinearArmModel::merge /
// BanditWare::merge_from) must reproduce — within 1e-9 — the model that saw
// both observation streams in one pass under the shared ridge prior. Also
// pins the shared-ancestry form (merge with an explicit base) that replica
// sync builds on: repeated merges must never double-count common evidence.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/banditware.hpp"
#include "hardware/catalog.hpp"
#include "linalg/rls.hpp"

namespace bw {
namespace {

constexpr double kTol = 1e-9;
/// Shared ridge prior for every model in this suite. 1e-3 keeps the
/// Sherman–Morrison warm-up (P0 = I/ridge) well conditioned, so the
/// *sequential* baseline's remembered warm-up rounding stays ~1e-11 and the
/// 1e-9 bound measures the merge algebra, not the recursion's round-off
/// (same reasoning as tests/test_incremental_equivalence.cpp; with a 1e-6
/// prior the sequential path itself sits ~3e-9 from the exact ridge
/// solution on these streams, drowning the property).
constexpr double kRidge = 1e-3;

struct Stream {
  std::vector<core::FeatureVector> xs;
  std::vector<double> ys;
  std::size_t size() const { return xs.size(); }
};

/// Noisy linear ground truth with features in [0.5, 4] — well-conditioned
/// Gram matrices so the 1e-9 bound is a property of the algebra, not luck.
Stream random_stream(std::size_t n, std::size_t dim, Rng& rng) {
  std::vector<double> w(dim);
  for (double& v : w) v = rng.uniform(-2.0, 2.0);
  const double b = rng.uniform(-1.0, 1.0);
  Stream s;
  for (std::size_t i = 0; i < n; ++i) {
    core::FeatureVector x(dim);
    double y = b + 0.05 * rng.normal();
    for (std::size_t j = 0; j < dim; ++j) {
      x[j] = rng.uniform(0.5, 4.0);
      y += w[j] * x[j];
    }
    s.xs.push_back(std::move(x));
    s.ys.push_back(y);
  }
  return s;
}

linalg::RecursiveLeastSquares train_rls(const Stream& s, std::size_t dim,
                                        double forgetting = 1.0) {
  linalg::RecursiveLeastSquares rls(dim, kRidge, forgetting);
  for (std::size_t i = 0; i < s.size(); ++i) rls.update(s.xs[i], s.ys[i]);
  return rls;
}

Stream concat(const Stream& a, const Stream& b) {
  Stream out = a;
  out.xs.insert(out.xs.end(), b.xs.begin(), b.xs.end());
  out.ys.insert(out.ys.end(), b.ys.begin(), b.ys.end());
  return out;
}

void expect_same_predictions(const linalg::RecursiveLeastSquares& got,
                             const linalg::RecursiveLeastSquares& want,
                             std::size_t dim, Rng& rng) {
  for (int probe = 0; probe < 16; ++probe) {
    core::FeatureVector x(dim);
    for (double& v : x) v = rng.uniform(0.0, 5.0);
    EXPECT_NEAR(got.predict(x), want.predict(x), kTol);
  }
}

TEST(RlsMerge, MatchesSingleStreamTrainingAcrossDimensions) {
  for (const std::size_t dim : {1u, 2u, 4u, 8u}) {
    Rng rng(1000 + dim);
    for (int trial = 0; trial < 5; ++trial) {
      const Stream s1 = random_stream(20 + 30 * trial, dim, rng);
      const Stream s2 = random_stream(10 + 45 * trial, dim, rng);
      linalg::RecursiveLeastSquares merged = train_rls(s1, dim);
      const linalg::RecursiveLeastSquares other = train_rls(s2, dim);
      merged.merge(other);
      const linalg::RecursiveLeastSquares reference = train_rls(concat(s1, s2), dim);

      EXPECT_EQ(merged.n_observations(), s1.size() + s2.size());
      for (std::size_t i = 0; i < dim + 1; ++i) {
        EXPECT_NEAR(merged.theta()[i], reference.theta()[i], kTol)
            << "dim=" << dim << " trial=" << trial << " i=" << i;
      }
      expect_same_predictions(merged, reference, dim, rng);
    }
  }
}

TEST(RlsMerge, EmptyAndOneSidedMergesAreExact) {
  const std::size_t dim = 3;
  Rng rng(7);
  const Stream s = random_stream(40, dim, rng);
  const linalg::RecursiveLeastSquares trained = train_rls(s, dim);
  const linalg::RecursiveLeastSquares prior(dim, kRidge);

  // trained ++ empty: untouched (bit-identical, the fast path).
  linalg::RecursiveLeastSquares a = trained;
  a.merge(prior);
  EXPECT_EQ(a.theta(), trained.theta());
  EXPECT_EQ(a.precision_inverse(), trained.precision_inverse());
  EXPECT_EQ(a.n_observations(), trained.n_observations());

  // empty ++ trained: adopts the trained statistics verbatim.
  linalg::RecursiveLeastSquares b(dim, kRidge);
  b.merge(trained);
  EXPECT_EQ(b.theta(), trained.theta());
  EXPECT_EQ(b.n_observations(), trained.n_observations());

  // empty ++ empty: still the prior.
  linalg::RecursiveLeastSquares c(dim, kRidge);
  c.merge(prior);
  EXPECT_EQ(c.n_observations(), 0u);
  EXPECT_NEAR(c.predict(core::FeatureVector(dim, 1.0)), 0.0, kTol);
}

TEST(RlsMerge, BaseMergeNeverDoubleCountsSharedAncestry) {
  // The replica-sync algebra: both models grew from a shared trained base;
  // folding them with that base as the anchor must count the shared prefix
  // once, matching one pass over s0 ++ s1 ++ s2.
  const std::size_t dim = 4;
  Rng rng(21);
  const Stream s0 = random_stream(50, dim, rng);
  const Stream s1 = random_stream(35, dim, rng);
  const Stream s2 = random_stream(60, dim, rng);

  const linalg::RecursiveLeastSquares base = train_rls(s0, dim);
  linalg::RecursiveLeastSquares replica_a = base;
  for (std::size_t i = 0; i < s1.size(); ++i) replica_a.update(s1.xs[i], s1.ys[i]);
  linalg::RecursiveLeastSquares replica_b = base;
  for (std::size_t i = 0; i < s2.size(); ++i) replica_b.update(s2.xs[i], s2.ys[i]);

  linalg::RecursiveLeastSquares fused = base;
  fused.merge(replica_a, &base);
  fused.merge(replica_b, &base);

  const linalg::RecursiveLeastSquares reference =
      train_rls(concat(concat(s0, s1), s2), dim);
  EXPECT_EQ(fused.n_observations(), s0.size() + s1.size() + s2.size());
  for (std::size_t i = 0; i < dim + 1; ++i) {
    EXPECT_NEAR(fused.theta()[i], reference.theta()[i], kTol);
  }
  expect_same_predictions(fused, reference, dim, rng);

  // An idle replica (identical to the base) contributes nothing.
  linalg::RecursiveLeastSquares idle = base;
  linalg::RecursiveLeastSquares fused2 = fused;
  fused2.merge(idle, &base);
  EXPECT_EQ(fused2.n_observations(), fused.n_observations());
  EXPECT_EQ(fused2.theta(), fused.theta());
}

TEST(RlsMerge, DiscountedMergeMatchesCanonicalConcatenation) {
  // Under λ < 1 the fused estimator is defined as the one that saw "self's
  // stream, then other's new slice" in one pass: the observation count is
  // the discount generation, so self's information ages by λ^|s2| during
  // the merge. The 1e-9 bound must hold exactly as in the stationary case.
  const double lambda = 0.95;
  for (const std::size_t dim : {1u, 2u, 4u}) {
    Rng rng(4000 + dim);
    for (int trial = 0; trial < 3; ++trial) {
      const Stream s1 = random_stream(30 + 20 * trial, dim, rng);
      const Stream s2 = random_stream(15 + 25 * trial, dim, rng);
      linalg::RecursiveLeastSquares merged = train_rls(s1, dim, lambda);
      const linalg::RecursiveLeastSquares other = train_rls(s2, dim, lambda);
      merged.merge(other);
      const linalg::RecursiveLeastSquares reference =
          train_rls(concat(s1, s2), dim, lambda);

      EXPECT_EQ(merged.n_observations(), s1.size() + s2.size());
      for (std::size_t i = 0; i < dim + 1; ++i) {
        EXPECT_NEAR(merged.theta()[i], reference.theta()[i], kTol)
            << "dim=" << dim << " trial=" << trial << " i=" << i;
      }
      expect_same_predictions(merged, reference, dim, rng);
    }
  }
}

TEST(RlsMerge, DiscountedBaseMergeNeverDoubleCountsSharedAncestry) {
  // Replica sync under discounting: both replicas grew from a shared base;
  // generation-aligned folding must match one discounted pass over
  // s0 ++ s1 ++ s2, counting the shared prefix once.
  const double lambda = 0.95;
  const std::size_t dim = 3;
  Rng rng(47);
  const Stream s0 = random_stream(40, dim, rng);
  const Stream s1 = random_stream(30, dim, rng);
  const Stream s2 = random_stream(45, dim, rng);

  const linalg::RecursiveLeastSquares base = train_rls(s0, dim, lambda);
  linalg::RecursiveLeastSquares replica_a = base;
  for (std::size_t i = 0; i < s1.size(); ++i) replica_a.update(s1.xs[i], s1.ys[i]);
  linalg::RecursiveLeastSquares replica_b = base;
  for (std::size_t i = 0; i < s2.size(); ++i) replica_b.update(s2.xs[i], s2.ys[i]);

  linalg::RecursiveLeastSquares fused = base;
  fused.merge(replica_a, &base);
  fused.merge(replica_b, &base);

  const linalg::RecursiveLeastSquares reference =
      train_rls(concat(concat(s0, s1), s2), dim, lambda);
  EXPECT_EQ(fused.n_observations(), s0.size() + s1.size() + s2.size());
  for (std::size_t i = 0; i < dim + 1; ++i) {
    EXPECT_NEAR(fused.theta()[i], reference.theta()[i], kTol) << "i=" << i;
  }
  expect_same_predictions(fused, reference, dim, rng);

  // An idle replica still contributes nothing under discounting.
  linalg::RecursiveLeastSquares idle = base;
  linalg::RecursiveLeastSquares fused2 = fused;
  fused2.merge(idle, &base);
  EXPECT_EQ(fused2.n_observations(), fused.n_observations());
  EXPECT_EQ(fused2.theta(), fused.theta());
}

TEST(RlsMerge, RejectsMismatchedForgetting) {
  // Fusing estimators with different discount factors has no exact answer;
  // it must be a hard error like a dim or ridge mismatch.
  linalg::RecursiveLeastSquares a(3, kRidge, 0.95);
  const linalg::RecursiveLeastSquares stationary(3, kRidge);
  const linalg::RecursiveLeastSquares other_lambda(3, kRidge, 0.9);
  EXPECT_THROW(a.merge(stationary), InvalidArgument);
  EXPECT_THROW(a.merge(other_lambda), InvalidArgument);
  const linalg::RecursiveLeastSquares other(3, kRidge, 0.95);
  const linalg::RecursiveLeastSquares bad_base(3, kRidge, 0.9);
  EXPECT_THROW(a.merge(other, &bad_base), InvalidArgument);
}

TEST(RlsMerge, RejectsIncompatibleOperands) {
  linalg::RecursiveLeastSquares a(3, kRidge);
  const linalg::RecursiveLeastSquares wrong_dim(2, kRidge);
  const linalg::RecursiveLeastSquares wrong_ridge(3, 1e-2);
  EXPECT_THROW(a.merge(wrong_dim), InvalidArgument);
  EXPECT_THROW(a.merge(wrong_ridge), InvalidArgument);
  const linalg::RecursiveLeastSquares other(3, kRidge);
  const linalg::RecursiveLeastSquares bad_base(2, kRidge);
  EXPECT_THROW(a.merge(other, &bad_base), InvalidArgument);
}

core::BanditWareConfig shared_ridge_config(bool exact_history = false) {
  core::BanditWareConfig config;
  config.policy.fit.ridge = kRidge;
  config.policy.exact_history = exact_history;
  return config;
}

/// Shared-ridge config running a specific policy kind, with non-default
/// policy scalars so the merge-compatibility checks have something real to
/// compare.
core::BanditWareConfig policy_config(core::PolicyKind kind) {
  core::BanditWareConfig config = shared_ridge_config();
  config.policy_kind = kind;
  config.alpha = 1.5;
  config.posterior_scale = 1.25;
  return config;
}

constexpr core::PolicyKind kAllKinds[] = {core::PolicyKind::kEpsilonGreedy,
                                          core::PolicyKind::kLinUcb,
                                          core::PolicyKind::kThompson};

/// Feeds a stream into a facade, spreading observations over all arms with
/// a per-arm runtime shift so every arm's model is distinct.
void observe_stream(core::BanditWare& bandit, const Stream& s, std::size_t offset) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto arm = static_cast<core::ArmIndex>((offset + i) % bandit.num_arms());
    bandit.observe(arm, s.xs[i], s.ys[i] + 3.0 * static_cast<double>(arm));
  }
}

TEST(BanditWareMerge, MatchesSingleStreamTraining) {
  for (const bool exact_history : {false, true}) {
    const std::size_t dim = 2;
    Rng rng(99);
    const Stream s1 = random_stream(60, dim, rng);
    const Stream s2 = random_stream(45, dim, rng);
    const auto config = shared_ridge_config(exact_history);
    const std::vector<std::string> features = {"f0", "f1"};

    core::BanditWare merged(hw::ndp_catalog(), features, config);
    core::BanditWare other(hw::ndp_catalog(), features, config);
    core::BanditWare reference(hw::ndp_catalog(), features, config);
    observe_stream(merged, s1, 0);
    observe_stream(other, s2, s1.size());
    observe_stream(reference, s1, 0);
    observe_stream(reference, s2, s1.size());

    merged.merge_from(other);
    EXPECT_EQ(merged.num_observations(), reference.num_observations());
    EXPECT_NEAR(merged.epsilon(), reference.epsilon(), 1e-12);
    for (int probe = 0; probe < 8; ++probe) {
      core::FeatureVector x(dim);
      for (double& v : x) v = rng.uniform(0.0, 5.0);
      const auto got = merged.predictions(x);
      const auto want = reference.predictions(x);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t arm = 0; arm < got.size(); ++arm) {
        EXPECT_NEAR(got[arm], want[arm], kTol)
            << "exact_history=" << exact_history << " arm=" << arm;
      }
      EXPECT_EQ(merged.recommend_index(x), reference.recommend_index(x));
    }
  }
}

TEST(BanditWareMerge, MatchesSingleStreamTrainingAcrossPoliciesAndDims) {
  // The policy axis rides on the same information-form statistics, so the
  // merge algebra must stay exact to 1e-9 whichever policy runs — across
  // every dimension the RLS-level suite covers.
  for (const core::PolicyKind kind : kAllKinds) {
    for (const std::size_t dim : {1u, 2u, 4u, 8u}) {
      Rng rng(3000 + 10 * dim + static_cast<std::size_t>(kind));
      const Stream s1 = random_stream(40 + 5 * dim, dim, rng);
      const Stream s2 = random_stream(25 + 9 * dim, dim, rng);
      const auto config = policy_config(kind);
      std::vector<std::string> features;
      for (std::size_t j = 0; j < dim; ++j) features.push_back("f" + std::to_string(j));

      core::BanditWare merged(hw::ndp_catalog(), features, config);
      core::BanditWare other(hw::ndp_catalog(), features, config);
      core::BanditWare reference(hw::ndp_catalog(), features, config);
      observe_stream(merged, s1, 0);
      observe_stream(other, s2, s1.size());
      observe_stream(reference, s1, 0);
      observe_stream(reference, s2, s1.size());

      merged.merge_from(other);
      EXPECT_EQ(merged.num_observations(), reference.num_observations())
          << "kind=" << core::to_string(kind) << " dim=" << dim;
      for (int probe = 0; probe < 8; ++probe) {
        core::FeatureVector x(dim);
        for (double& v : x) v = rng.uniform(0.0, 5.0);
        const auto got = merged.predictions(x);
        const auto want = reference.predictions(x);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t arm = 0; arm < got.size(); ++arm) {
          EXPECT_NEAR(got[arm], want[arm], kTol)
              << "kind=" << core::to_string(kind) << " dim=" << dim << " arm=" << arm;
        }
        EXPECT_EQ(merged.recommend_index(x), reference.recommend_index(x))
            << "kind=" << core::to_string(kind) << " dim=" << dim;
      }
    }
  }
}

TEST(BanditWareMerge, CrossPolicyMergeIsRejected) {
  // All three policies share the arm statistics, which makes a cross-policy
  // fusion *numerically* possible — and semantically meaningless. It must
  // be a hard InvalidArgument, not a silent blend.
  const std::vector<std::string> features = {"f0", "f1"};
  for (const core::PolicyKind kind_a : kAllKinds) {
    for (const core::PolicyKind kind_b : kAllKinds) {
      if (kind_a == kind_b) continue;
      core::BanditWare a(hw::ndp_catalog(), features, policy_config(kind_a));
      const core::BanditWare b(hw::ndp_catalog(), features, policy_config(kind_b));
      EXPECT_THROW(a.merge_from(b), InvalidArgument)
          << core::to_string(kind_a) << " <- " << core::to_string(kind_b);
    }
  }
  // Matching kinds with mismatched policy scalars must also be rejected:
  // the scalar is part of the policy's identity at merge time.
  auto alpha_a = policy_config(core::PolicyKind::kLinUcb);
  auto alpha_b = alpha_a;
  alpha_b.alpha = 2.5;
  core::BanditWare ucb_a(hw::ndp_catalog(), features, alpha_a);
  const core::BanditWare ucb_b(hw::ndp_catalog(), features, alpha_b);
  EXPECT_THROW(ucb_a.merge_from(ucb_b), InvalidArgument);

  auto scale_a = policy_config(core::PolicyKind::kThompson);
  auto scale_b = scale_a;
  scale_b.posterior_scale = 3.0;
  core::BanditWare th_a(hw::ndp_catalog(), features, scale_a);
  const core::BanditWare th_b(hw::ndp_catalog(), features, scale_b);
  EXPECT_THROW(th_a.merge_from(th_b), InvalidArgument);
}

TEST(BanditWareMerge, BaseMergeNeverDoubleCountsAcrossPolicies) {
  // The replica-sync form (merge with a shared ancestor) is what
  // BanditServer::sync_shards runs; it must stay exact for every policy.
  const std::size_t dim = 2;
  const std::vector<std::string> features = {"f0", "f1"};
  for (const core::PolicyKind kind : kAllKinds) {
    Rng rng(71 + static_cast<std::size_t>(kind));
    const Stream s0 = random_stream(40, dim, rng);
    const Stream s1 = random_stream(30, dim, rng);
    const Stream s2 = random_stream(35, dim, rng);
    const auto config = policy_config(kind);

    core::BanditWare base(hw::ndp_catalog(), features, config);
    observe_stream(base, s0, 0);
    core::BanditWare replica_a = base;
    observe_stream(replica_a, s1, s0.size());
    core::BanditWare replica_b = base;
    observe_stream(replica_b, s2, s0.size() + s1.size());

    core::BanditWare fused = base;
    fused.merge_from(replica_a, &base);
    fused.merge_from(replica_b, &base);

    core::BanditWare reference(hw::ndp_catalog(), features, config);
    observe_stream(reference, s0, 0);
    observe_stream(reference, s1, s0.size());
    observe_stream(reference, s2, s0.size() + s1.size());

    EXPECT_EQ(fused.num_observations(), reference.num_observations())
        << core::to_string(kind);
    for (int probe = 0; probe < 8; ++probe) {
      core::FeatureVector x(dim);
      for (double& v : x) v = rng.uniform(0.0, 5.0);
      const auto got = fused.predictions(x);
      const auto want = reference.predictions(x);
      for (std::size_t arm = 0; arm < got.size(); ++arm) {
        EXPECT_NEAR(got[arm], want[arm], kTol)
            << core::to_string(kind) << " arm=" << arm;
      }
    }
  }
}

TEST(BanditWareMerge, DiscountedMergeStaysExactAcrossPolicies) {
  // The generation-aligned discount algebra must survive the facade: a
  // λ < 1 merge matches the model that saw both streams in one pass, for
  // every policy, to the same 1e-9 bound as the stationary suite.
  const std::size_t dim = 2;
  const std::vector<std::string> features = {"f0", "f1"};
  for (const core::PolicyKind kind : kAllKinds) {
    Rng rng(8100 + static_cast<std::size_t>(kind));
    const Stream s1 = random_stream(45, dim, rng);
    const Stream s2 = random_stream(35, dim, rng);
    auto config = policy_config(kind);
    config.policy.fit.forgetting = 0.95;

    core::BanditWare merged(hw::ndp_catalog(), features, config);
    core::BanditWare other(hw::ndp_catalog(), features, config);
    core::BanditWare reference(hw::ndp_catalog(), features, config);
    observe_stream(merged, s1, 0);
    observe_stream(other, s2, s1.size());
    observe_stream(reference, s1, 0);
    observe_stream(reference, s2, s1.size());

    merged.merge_from(other);
    EXPECT_EQ(merged.num_observations(), reference.num_observations())
        << core::to_string(kind);
    for (int probe = 0; probe < 8; ++probe) {
      core::FeatureVector x(dim);
      for (double& v : x) v = rng.uniform(0.0, 5.0);
      const auto got = merged.predictions(x);
      const auto want = reference.predictions(x);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t arm = 0; arm < got.size(); ++arm) {
        EXPECT_NEAR(got[arm], want[arm], kTol)
            << core::to_string(kind) << " arm=" << arm;
      }
    }
  }
}

TEST(BanditWareMerge, MismatchedForgettingIsRejected) {
  const std::vector<std::string> features = {"f0", "f1"};
  auto discounted = shared_ridge_config();
  discounted.policy.fit.forgetting = 0.95;
  core::BanditWare a(hw::ndp_catalog(), features, discounted);
  const core::BanditWare stationary(hw::ndp_catalog(), features,
                                    shared_ridge_config());
  EXPECT_THROW(a.merge_from(stationary), InvalidArgument);
  auto other_lambda = shared_ridge_config();
  other_lambda.policy.fit.forgetting = 0.9;
  const core::BanditWare b(hw::ndp_catalog(), features, other_lambda);
  EXPECT_THROW(a.merge_from(b), InvalidArgument);
}

TEST(BanditWareMerge, DisjointArmsFormTheUnion) {
  // Two sites learned different (overlapping) hardware pools; the merged
  // instance must carry the union, with the shared arm fused exactly.
  const std::size_t dim = 2;
  Rng rng(5);
  const Stream s1 = random_stream(50, dim, rng);
  const Stream s2 = random_stream(40, dim, rng);
  const auto config = shared_ridge_config();
  const std::vector<std::string> features = {"f0", "f1"};

  const hw::HardwareCatalog full = hw::ndp_catalog();  // H0, H1, H2
  hw::HardwareCatalog left;
  left.add(full[0]);
  left.add(full[1]);
  hw::HardwareCatalog right;
  right.add(full[1]);
  right.add(full[2]);

  core::BanditWare merged(left, features, config);
  core::BanditWare other(right, features, config);
  core::BanditWare reference(full, features, config);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    const auto arm = static_cast<core::ArmIndex>(i % 2);  // H0 or H1
    merged.observe(arm, s1.xs[i], s1.ys[i] + static_cast<double>(arm));
    reference.observe(arm, s1.xs[i], s1.ys[i] + static_cast<double>(arm));
  }
  for (std::size_t i = 0; i < s2.size(); ++i) {
    const auto arm = static_cast<core::ArmIndex>(i % 2);  // H1 or H2 in `other`
    other.observe(arm, s2.xs[i], s2.ys[i] + static_cast<double>(arm));
    reference.observe(arm + 1, s2.xs[i], s2.ys[i] + static_cast<double>(arm));
  }

  merged.merge_from(other);
  ASSERT_EQ(merged.num_arms(), 3u);
  EXPECT_EQ(merged.catalog()[0].name, full[0].name);
  EXPECT_EQ(merged.catalog()[1].name, full[1].name);
  EXPECT_EQ(merged.catalog()[2].name, full[2].name);
  EXPECT_EQ(merged.num_observations(), s1.size() + s2.size());
  for (int probe = 0; probe < 8; ++probe) {
    core::FeatureVector x(dim);
    for (double& v : x) v = rng.uniform(0.0, 5.0);
    const auto got = merged.predictions(x);
    const auto want = reference.predictions(x);
    for (std::size_t arm = 0; arm < got.size(); ++arm) {
      EXPECT_NEAR(got[arm], want[arm], kTol) << "arm=" << arm;
    }
  }
}

TEST(BanditWareMerge, RejectsIncompatibleInstances) {
  const std::vector<std::string> features = {"f0", "f1"};
  core::BanditWare a(hw::ndp_catalog(), features, shared_ridge_config());

  const core::BanditWare wrong_features(hw::ndp_catalog(), {"g0", "g1"},
                                        shared_ridge_config());
  EXPECT_THROW(a.merge_from(wrong_features), InvalidArgument);

  auto other_ridge = shared_ridge_config();
  other_ridge.policy.fit.ridge = 1e-2;
  const core::BanditWare wrong_ridge(hw::ndp_catalog(), features, other_ridge);
  EXPECT_THROW(a.merge_from(wrong_ridge), InvalidArgument);

  const core::BanditWare wrong_backend(hw::ndp_catalog(), features,
                                       shared_ridge_config(/*exact_history=*/true));
  EXPECT_THROW(a.merge_from(wrong_backend), InvalidArgument);

  auto other_decay = shared_ridge_config();
  other_decay.policy.decay = 0.5;
  const core::BanditWare wrong_decay(hw::ndp_catalog(), features, other_decay);
  EXPECT_THROW(a.merge_from(wrong_decay), InvalidArgument);

  // Same arm name with a different spec must be a hard error, not a guess.
  hw::HardwareCatalog conflicting;
  conflicting.add({"H0", 64, 512.0, 4});
  conflicting.add({"H1", 3, 24.0, 0});
  conflicting.add({"H2", 4, 16.0, 0});
  const core::BanditWare wrong_spec(conflicting, features, shared_ridge_config());
  EXPECT_THROW(a.merge_from(wrong_spec), InvalidArgument);
}

TEST(BanditWareMerge, MergedStateSurvivesSnapshotRoundTrip) {
  // The fused model must serialize like any other: save -> load -> save is
  // byte-identical and predictions are preserved.
  const std::size_t dim = 2;
  Rng rng(3);
  const Stream s1 = random_stream(30, dim, rng);
  const Stream s2 = random_stream(25, dim, rng);
  const std::vector<std::string> features = {"f0", "f1"};
  core::BanditWare merged(hw::ndp_catalog(), features, shared_ridge_config());
  core::BanditWare other(hw::ndp_catalog(), features, shared_ridge_config());
  observe_stream(merged, s1, 0);
  observe_stream(other, s2, 1);
  merged.merge_from(other);

  const std::string saved = merged.save_state();
  const core::BanditWare restored = core::BanditWare::load_state(saved);
  EXPECT_EQ(restored.save_state(), saved);
  const core::FeatureVector x = {2.0, 3.0};
  EXPECT_EQ(restored.predictions(x), merged.predictions(x));
}

}  // namespace
}  // namespace bw
