// The policy-pluggable facade: BanditWareConfig::policy_kind must route
// next()/recommend_decision()/observe() through the selected policy while
// the substrate (arm models, merge, sufficient statistics, snapshots,
// serving) behaves identically across kinds. Pins the facade-vs-standalone
// equivalence (the facade runs the *same* LinUCB/Thompson the evaluator
// benchmarks), the v2/v3 snapshot format split, the v4 server format, and
// the acceptance bar: per policy, N-shard synced serving == single-stream
// training at 1e-9 with byte-identical snapshot round trips.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/banditware.hpp"
#include "hardware/catalog.hpp"
#include "serve/bandit_server.hpp"

namespace bw {
namespace {

constexpr core::PolicyKind kAllKinds[] = {core::PolicyKind::kEpsilonGreedy,
                                          core::PolicyKind::kLinUcb,
                                          core::PolicyKind::kThompson};

core::BanditWareConfig config_for(core::PolicyKind kind) {
  core::BanditWareConfig config;
  config.policy_kind = kind;
  config.policy.fit.ridge = 1e-3;
  config.alpha = 1.5;
  config.posterior_scale = 1.25;
  return config;
}

/// Deterministic training stream spread over all arms.
void train(core::BanditWare& bandit, int n = 30) {
  for (int i = 0; i < n; ++i) {
    const core::FeatureVector x = {40.0 + 11.0 * (i % 13), 2.0 + (i % 4)};
    bandit.observe(static_cast<core::ArmIndex>(i % bandit.num_arms()), x,
                   8.0 + 0.4 * i);
  }
}

TEST(PolicyFacade, LinUcbFacadeMatchesStandalonePolicy) {
  // The facade must run the same LinUCB the evaluator studies — identical
  // arm bank (same ridge), identical LCB selections, identical predictions.
  const auto config = config_for(core::PolicyKind::kLinUcb);
  core::BanditWare facade(hw::ndp_catalog(), {"num_tasks", "mem"}, config);
  core::LinUcbConfig standalone_config;
  standalone_config.alpha = config.alpha;
  standalone_config.ridge = config.policy.fit.ridge;
  core::LinUcb standalone(hw::ndp_catalog(), 2, standalone_config);

  Rng facade_rng(5);
  Rng standalone_rng(5);
  for (int i = 0; i < 60; ++i) {
    const core::FeatureVector x = {30.0 + 7.0 * (i % 11), 1.0 + (i % 3)};
    const auto decision = facade.next(x, facade_rng);
    const core::ArmIndex want = standalone.select(x, standalone_rng);
    ASSERT_EQ(decision.arm, want) << "i=" << i;
    EXPECT_EQ(decision.predicted_runtime_s, standalone.predict(want, x));
    const double runtime = 6.0 + x[0] / (1.0 + decision.arm);
    facade.observe(decision.arm, x, runtime);
    standalone.observe(want, x, runtime);
  }
  EXPECT_EQ(facade.recommend_index({100.0, 2.0}), standalone.recommend({100.0, 2.0}));
}

TEST(PolicyFacade, ThompsonFacadeMatchesStandalonePolicy) {
  // Same bar for Thompson: the posterior draws consume the caller's RNG, so
  // equal seeds must yield the identical decision sequence.
  const auto config = config_for(core::PolicyKind::kThompson);
  core::BanditWare facade(hw::ndp_catalog(), {"num_tasks"}, config);
  core::ThompsonConfig standalone_config;
  standalone_config.posterior_scale = config.posterior_scale;
  standalone_config.ridge = config.policy.fit.ridge;
  core::LinearThompson standalone(hw::ndp_catalog(), 1, standalone_config);

  Rng facade_rng(9);
  Rng standalone_rng(9);
  for (int i = 0; i < 60; ++i) {
    const core::FeatureVector x = {25.0 + 13.0 * (i % 9)};
    const auto decision = facade.next(x, facade_rng);
    const core::ArmIndex want = standalone.select(x, standalone_rng);
    ASSERT_EQ(decision.arm, want) << "i=" << i;
    const double runtime = 4.0 + x[0] / (2.0 + decision.arm);
    facade.observe(decision.arm, x, runtime);
    standalone.observe(want, x, runtime);
  }
}

TEST(PolicyFacade, EpsilonAccessorsAreEpsilonGreedyOnly) {
  core::BanditWare eps(hw::ndp_catalog(), {"f"}, config_for(kAllKinds[0]));
  EXPECT_EQ(eps.epsilon(), 1.0);
  EXPECT_NO_THROW(eps.policy());

  for (const core::PolicyKind kind :
       {core::PolicyKind::kLinUcb, core::PolicyKind::kThompson}) {
    core::BanditWare bandit(hw::ndp_catalog(), {"f"}, config_for(kind));
    EXPECT_EQ(bandit.epsilon(), 0.0) << core::to_string(kind);
    EXPECT_THROW(bandit.policy(), InvalidArgument) << core::to_string(kind);
    // The policy-agnostic accessor works for every kind.
    EXPECT_EQ(bandit.arm_model(0).count(), 0u);
    bandit.observe(0, {1.0}, 5.0);
    EXPECT_EQ(bandit.arm_model(0).count(), 1u);
    // Non-ε kinds never decay anything on observe.
    EXPECT_EQ(bandit.epsilon(), 0.0);
  }
}

TEST(PolicyFacade, ExactHistoryIsEpsilonGreedyOnly) {
  for (const core::PolicyKind kind :
       {core::PolicyKind::kLinUcb, core::PolicyKind::kThompson}) {
    auto config = config_for(kind);
    config.policy.exact_history = true;
    EXPECT_THROW(core::BanditWare(hw::ndp_catalog(), {"f"}, config), InvalidArgument)
        << core::to_string(kind);
    // intercept=false forces the batch backend, so it is rejected the same
    // way (the confidence width needs the RLS posterior).
    auto no_intercept = config_for(kind);
    no_intercept.policy.fit.intercept = false;
    EXPECT_THROW(core::BanditWare(hw::ndp_catalog(), {"f"}, no_intercept),
                 InvalidArgument)
        << core::to_string(kind);
  }
  // ε-greedy keeps both paths.
  auto eps = config_for(core::PolicyKind::kEpsilonGreedy);
  eps.policy.exact_history = true;
  EXPECT_NO_THROW(core::BanditWare(hw::ndp_catalog(), {"f"}, eps));
}

TEST(PolicyFacade, SnapshotFormatSplitsByPolicyKind) {
  // ε-greedy keeps the pre-policy-axis v2 bytes (no policy line at all);
  // LinUCB/Thompson write the v3 superset with their kind + scalar.
  core::BanditWare eps(hw::ndp_catalog(), {"f0", "f1"}, config_for(kAllKinds[0]));
  train(eps);
  EXPECT_EQ(eps.save_state().rfind("banditware-state v2\n", 0), 0u);
  EXPECT_EQ(eps.save_state().find("policy"), std::string::npos);

  core::BanditWare ucb(hw::ndp_catalog(), {"f0", "f1"},
                       config_for(core::PolicyKind::kLinUcb));
  train(ucb);
  EXPECT_EQ(ucb.save_state().rfind("banditware-state v3\npolicy linucb alpha 1.5\n", 0),
            0u);

  core::BanditWare th(hw::ndp_catalog(), {"f0", "f1"},
                      config_for(core::PolicyKind::kThompson));
  train(th);
  EXPECT_EQ(th.save_state().rfind(
                "banditware-state v3\npolicy thompson posterior_scale 1.25\n", 0),
            0u);
}

TEST(PolicyFacade, SnapshotRoundTripsByteIdenticalPerPolicy) {
  for (const core::PolicyKind kind : kAllKinds) {
    core::BanditWare bandit(hw::ndp_catalog(), {"f0", "f1"}, config_for(kind));
    train(bandit);
    const std::string saved = bandit.save_state();
    const core::BanditWare restored = core::BanditWare::load_state(saved);
    EXPECT_EQ(restored.save_state(), saved) << core::to_string(kind);
    EXPECT_EQ(restored.policy_kind(), kind);
    // Only the active kind's scalar is serialized; the others restore to
    // their defaults.
    if (kind == core::PolicyKind::kLinUcb) {
      EXPECT_EQ(restored.config().alpha, bandit.config().alpha);
    }
    if (kind == core::PolicyKind::kThompson) {
      EXPECT_EQ(restored.config().posterior_scale, bandit.config().posterior_scale);
    }
    const core::FeatureVector x = {123.0, 3.0};
    EXPECT_EQ(restored.predictions(x), bandit.predictions(x)) << core::to_string(kind);
  }
}

TEST(PolicyFacade, StatsExportRoundTripsPerPolicy) {
  // export_stats/from_stats is the async sync staging path; it must be an
  // exact inverse for every kind.
  for (const core::PolicyKind kind : kAllKinds) {
    const auto config = config_for(kind);
    core::BanditWare bandit(hw::ndp_catalog(), {"f0", "f1"}, config);
    train(bandit);
    const auto stats = bandit.export_stats();
    const core::BanditWare restored = core::BanditWare::from_stats(
        hw::ndp_catalog(), {"f0", "f1"}, config, stats);
    EXPECT_EQ(restored.epsilon(), bandit.epsilon()) << core::to_string(kind);
    const core::FeatureVector x = {77.0, 1.0};
    EXPECT_EQ(restored.predictions(x), bandit.predictions(x)) << core::to_string(kind);
    EXPECT_EQ(restored.save_state(), bandit.save_state()) << core::to_string(kind);
  }
}

TEST(PolicyFacade, SyncedServingMatchesSingleStreamPerPolicy) {
  // The acceptance bar: for each policy, an N-shard round-robin fleet with
  // inline sync equals single-stream training to 1e-9, and the server
  // snapshot round-trips byte-identically (v3 for ε-greedy, v4 otherwise).
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  for (const core::PolicyKind kind : kAllKinds) {
    serve::BanditServerConfig config;
    config.num_shards = 3;
    config.sharding = serve::ShardingPolicy::kRoundRobin;
    config.bandit = config_for(kind);
    serve::BanditServer server(catalog, {"num_tasks"}, config);
    core::BanditWare reference(catalog, {"num_tasks"}, config.bandit);

    for (int i = 0; i < 90; ++i) {
      const core::FeatureVector x = {20.0 + 9.0 * (i % 31)};
      const auto arm = static_cast<core::ArmIndex>(i % catalog.size());
      const double runtime = 5.0 + x[0] / catalog[arm].cpus;
      server.observe_one({static_cast<std::size_t>(i % 3), arm, x, runtime});
      reference.observe(arm, x, runtime);
      if (i % 10 == 9) server.sync_shards();
    }
    server.sync_shards();

    EXPECT_EQ(server.num_observations(), 90u) << core::to_string(kind);
    for (double tasks : {40.0, 150.0, 260.0}) {
      const core::FeatureVector x = {tasks};
      const auto want = reference.predictions(x);
      for (std::size_t s = 0; s < server.num_shards(); ++s) {
        const auto got = server.predictions(s, x);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t arm = 0; arm < want.size(); ++arm) {
          EXPECT_NEAR(got[arm], want[arm], 1e-9)
              << core::to_string(kind) << " shard=" << s << " arm=" << arm;
        }
      }
    }

    const std::string saved = server.save_state();
    const char* expected_header = kind == core::PolicyKind::kEpsilonGreedy
                                      ? "banditserver-state v3\n"
                                      : "banditserver-state v4\n";
    EXPECT_EQ(saved.rfind(expected_header, 0), 0u) << core::to_string(kind);
    serve::BanditServer restored = serve::BanditServer::load_state(saved);
    EXPECT_EQ(restored.save_state(), saved) << core::to_string(kind);
    EXPECT_EQ(restored.config().bandit.policy_kind, kind);
  }
}

TEST(PolicyFacade, StitchedServerPolicyHeaderIsRejected) {
  // A v4 header whose policy token contradicts the shard blobs means the
  // snapshot was assembled by hand; the loader must refuse it rather than
  // trust either side.
  serve::BanditServerConfig config;
  config.num_shards = 2;
  config.sharding = serve::ShardingPolicy::kRoundRobin;
  config.bandit = config_for(core::PolicyKind::kLinUcb);
  serve::BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
  server.observe_one({0, 0, {50.0}, 9.0});
  std::string text = server.save_state();
  const std::string from = "policy linucb";
  text.replace(text.find(from), from.size(), "policy thompson");
  EXPECT_THROW(serve::BanditServer::load_state(text), ParseError);
}

TEST(PolicyFacade, LegacySnapshotsLoadAsEpsilonGreedy) {
  // v1/v2 banditware and v1-v3 banditserver predate the policy axis and
  // must keep restoring as ε-greedy (the kind token simply absent).
  core::BanditWare eps(hw::ndp_catalog(), {"f0", "f1"},
                       config_for(core::PolicyKind::kEpsilonGreedy));
  train(eps);
  const core::BanditWare restored = core::BanditWare::load_state(eps.save_state());
  EXPECT_EQ(restored.policy_kind(), core::PolicyKind::kEpsilonGreedy);

  serve::BanditServerConfig config;
  config.num_shards = 2;
  serve::BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
  serve::BanditServer srestored = serve::BanditServer::load_state(server.save_state());
  EXPECT_EQ(srestored.config().bandit.policy_kind, core::PolicyKind::kEpsilonGreedy);
}

}  // namespace
}  // namespace bw
