// Tests for the sharded serving engine (serve/bandit_server): routing
// determinism, batch ordering, snapshot round-trips, a concurrent
// observe-vs-recommend stress run, cross-shard sync (fusion correctness,
// sync-under-load, cadence determinism), and feedback validation.

#include "serve/bandit_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "hardware/catalog.hpp"

namespace bw::serve {
namespace {

core::FeatureVector features_for(double num_tasks) { return {num_tasks}; }

/// Deterministic synthetic runtime: bigger workflows and fewer CPUs -> slower.
double synthetic_runtime(const hw::HardwareSpec& spec, double num_tasks) {
  return 5.0 + num_tasks / spec.cpus;
}

BanditServer make_server(std::size_t shards, ShardingPolicy sharding,
                         bool explore = true) {
  BanditServerConfig config;
  config.num_shards = shards;
  config.sharding = sharding;
  config.explore = explore;
  config.seed = 7;
  return BanditServer(hw::ndp_catalog(), {"num_tasks"}, config);
}

TEST(BanditServer, FeatureHashRoutingIsStable) {
  BanditServer server = make_server(4, ShardingPolicy::kFeatureHash);
  for (double tasks : {10.0, 55.0, 320.0, 499.0}) {
    const auto x = features_for(tasks);
    const std::size_t expected = server.shard_of(x);
    for (int repeat = 0; repeat < 3; ++repeat) {
      EXPECT_EQ(server.shard_of(x), expected);
      EXPECT_EQ(server.recommend_one(x).shard, expected);
    }
  }
}

TEST(BanditServer, RoundRobinSpreadsBatchEvenly) {
  BanditServer server = make_server(4, ShardingPolicy::kRoundRobin);
  const std::vector<core::FeatureVector> xs(16, features_for(100.0));
  const auto decisions = server.recommend_batch(xs);
  ASSERT_EQ(decisions.size(), 16u);
  std::vector<int> served(4, 0);
  for (const auto& decision : decisions) {
    ASSERT_LT(decision.shard, 4u);
    ++served[decision.shard];
  }
  for (int count : served) EXPECT_EQ(count, 4);
}

TEST(BanditServer, RoundRobinSingleThreadSequenceIsExactlyHistorical) {
  // Tickets are claimed in per-thread blocks (one fetch_add per 16
  // requests), but a single-threaded caller consumes each block in counter
  // order — the visible rotation must stay the exact historical 0,1,2,…
  // sequence, request by request.
  BanditServer server = make_server(4, ShardingPolicy::kRoundRobin);
  for (int i = 0; i < 40; ++i) {
    const auto decision = server.recommend_one(features_for(50.0));
    EXPECT_EQ(decision.shard, static_cast<std::size_t>(i) % 4) << "request " << i;
  }
}

TEST(BanditServer, RoundRobinConcurrentSpreadStaysFair) {
  // Fairness regression for the block-claiming allocator: with T threads
  // the spread can skew by at most one partially-consumed block (16
  // tickets) per thread, never more — a stuck or leaked cursor would show
  // up as a shard starved far beyond that bound.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 400;
  constexpr std::size_t kShards = 4;
  BanditServer server = make_server(kShards, ShardingPolicy::kRoundRobin);
  std::vector<std::atomic<std::size_t>> served(kShards);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&server, &served] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const auto decision = server.recommend_one(features_for(50.0));
        served[decision.shard].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  std::size_t total = 0;
  for (const auto& count : served) total += count.load();
  ASSERT_EQ(total, kThreads * kPerThread);
  const std::size_t expected = total / kShards;
  const std::size_t slack = kThreads * 16;  // one in-flight block per thread
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    const std::size_t count = served[shard].load();
    EXPECT_GE(count + slack, expected) << "shard " << shard << " starved";
    EXPECT_LE(count, expected + slack) << "shard " << shard << " hogged";
  }
}

TEST(BanditServer, BatchResultsMatchRequestOrder) {
  BanditServer server = make_server(3, ShardingPolicy::kFeatureHash);
  std::vector<core::FeatureVector> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(features_for(10.0 * (i + 1)));
  const auto decisions = server.recommend_batch(xs);
  ASSERT_EQ(decisions.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(decisions[i].shard, server.shard_of(xs[i]));
    ASSERT_NE(decisions[i].spec, nullptr);
    EXPECT_LT(decisions[i].arm, 3u);
  }
}

TEST(BanditServer, IdenticallySeededServersDecideIdentically) {
  BanditServer a = make_server(4, ShardingPolicy::kFeatureHash);
  BanditServer b = make_server(4, ShardingPolicy::kFeatureHash);
  std::vector<core::FeatureVector> xs;
  for (int i = 0; i < 64; ++i) xs.push_back(features_for(25.0 * (i % 13) + 40.0));
  const auto da = a.recommend_batch(xs);
  const auto db = b.recommend_batch(xs);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].shard, db[i].shard);
    EXPECT_EQ(da[i].arm, db[i].arm);
    EXPECT_EQ(da[i].explored, db[i].explored);
  }
}

TEST(BanditServer, ObservationsTrainTheServingShard) {
  BanditServer server = make_server(2, ShardingPolicy::kFeatureHash, /*explore=*/false);
  // Teach both shards that the 4-CPU arm is fastest for every size.
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  std::vector<ServeObservation> observations;
  for (int round = 0; round < 30; ++round) {
    const double tasks = 50.0 + 17.0 * round;
    const auto x = features_for(tasks);
    const std::size_t shard = server.shard_of(x);
    for (core::ArmIndex arm = 0; arm < 3; ++arm) {
      observations.push_back({shard, arm, x, synthetic_runtime(catalog[arm], tasks)});
    }
  }
  server.observe_batch(observations);
  EXPECT_EQ(server.num_observations(), observations.size());

  const auto x = features_for(400.0);
  const auto predictions = server.predictions(server.shard_of(x), x);
  ASSERT_EQ(predictions.size(), 3u);
  // H2 = (4, 16) dominates on runtime; the trained models must reflect it.
  EXPECT_LT(predictions[2], predictions[0]);
}

TEST(BanditServer, SnapshotRoundTripIsByteIdentical) {
  BanditServer server = make_server(3, ShardingPolicy::kRoundRobin);
  std::vector<core::FeatureVector> xs;
  for (int i = 0; i < 40; ++i) xs.push_back(features_for(30.0 + 11.0 * i));
  const auto decisions = server.recommend_batch(xs);
  std::vector<ServeObservation> observations;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    observations.push_back({decisions[i].shard, decisions[i].arm, xs[i],
                            synthetic_runtime(*decisions[i].spec, xs[i][0])});
  }
  server.observe_batch(observations);

  const std::string saved = server.save_state();
  BanditServer restored = BanditServer::load_state(saved);
  EXPECT_EQ(restored.save_state(), saved);

  EXPECT_EQ(restored.num_shards(), server.num_shards());
  EXPECT_EQ(restored.num_observations(), server.num_observations());
  EXPECT_EQ(restored.shard_observation_counts(), server.shard_observation_counts());
  const auto x = features_for(222.0);
  for (std::size_t s = 0; s < server.num_shards(); ++s) {
    EXPECT_EQ(restored.predictions(s, x), server.predictions(s, x));
  }
}

TEST(BanditServer, LoadStateRejectsMalformedText) {
  EXPECT_THROW(BanditServer::load_state("not a snapshot"), ParseError);
  EXPECT_THROW(BanditServer::load_state("banditserver-state v1\nshards 0\n"),
               ParseError);
}

TEST(BanditServer, ConcurrentObserveAndRecommendStress) {
  BanditServer server = make_server(4, ShardingPolicy::kFeatureHash);
  constexpr int kThreads = 6;
  constexpr int kRoundsPerThread = 200;
  std::atomic<std::size_t> decisions_served{0};
  std::atomic<std::size_t> observations_fed{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &decisions_served, &observations_fed, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        const double tasks = 20.0 + 7.0 * ((t * kRoundsPerThread + round) % 91);
        const auto x = features_for(tasks);
        if ((t + round) % 3 == 0) {
          // Batched path: recommend four workflows, feed all four back.
          const std::vector<core::FeatureVector> xs(4, x);
          const auto batch = server.recommend_batch(xs);
          std::vector<ServeObservation> observations;
          for (const auto& decision : batch) {
            observations.push_back({decision.shard, decision.arm, x,
                                    synthetic_runtime(*decision.spec, tasks)});
          }
          server.observe_batch(observations);
          decisions_served += batch.size();
          observations_fed += observations.size();
        } else {
          const auto decision = server.recommend_one(x);
          server.observe_one({decision.shard, decision.arm, x,
                              synthetic_runtime(*decision.spec, tasks)});
          ++decisions_served;
          ++observations_fed;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(decisions_served.load(), observations_fed.load());
  EXPECT_EQ(server.num_observations(), observations_fed.load());
}

TEST(BanditServer, ConcurrentSharedReadsAreConsistent) {
  // Pure-exploitation serving takes the per-shard lock shared: many reader
  // threads hammering the SAME shard must all see the same trained model
  // (no serialization requirement, no torn reads). A single shard forces
  // maximal reader contention.
  BanditServer server = make_server(1, ShardingPolicy::kFeatureHash, /*explore=*/false);
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  std::vector<ServeObservation> training;
  for (int round = 0; round < 20; ++round) {
    const auto x = features_for(40.0 + 13.0 * round);
    for (core::ArmIndex arm = 0; arm < 3; ++arm) {
      training.push_back({0, arm, x, synthetic_runtime(catalog[arm], x[0])});
    }
  }
  server.observe_batch(training);

  const auto probe = features_for(123.0);
  const auto expected = server.recommend_one(probe);

  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 300;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&server, &probe, &expected, &mismatches] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        const auto decision = server.recommend_one(probe);
        if (decision.arm != expected.arm ||
            decision.predicted_runtime_s != expected.predicted_runtime_s) {
          ++mismatches;
        }
        // Batched reads share the lock too.
        const auto batch = server.recommend_batch({probe, probe});
        if (batch[0].arm != expected.arm || batch[1].arm != expected.arm) {
          ++mismatches;
        }
      }
    });
  }
  // A snapshot (shared locks across every shard) must coexist with readers.
  for (int i = 0; i < 5; ++i) {
    BanditServer restored = BanditServer::load_state(server.save_state());
    EXPECT_EQ(restored.num_observations(), server.num_observations());
  }
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(BanditServer, SyncShardsMatchesSingleStreamLearner) {
  // Spread one observation stream round-robin over 4 replicas, sync, and
  // every replica must predict exactly (1e-9) like a single facade that saw
  // the whole stream — the merge is algebraic, not approximate.
  BanditServerConfig config;
  config.num_shards = 4;
  config.sharding = ShardingPolicy::kRoundRobin;
  config.seed = 7;
  config.bandit.policy.fit.ridge = 1e-6;
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);

  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  core::BanditWare reference(catalog, {"num_tasks"}, config.bandit);
  std::vector<ServeObservation> observations;
  for (int i = 0; i < 120; ++i) {
    const double tasks = 20.0 + 9.0 * (i % 41);
    const auto x = features_for(tasks);
    const auto arm = static_cast<core::ArmIndex>(i % 3);
    const double runtime = synthetic_runtime(catalog[arm], tasks);
    observations.push_back({static_cast<std::size_t>(i % 4), arm, x, runtime});
    reference.observe(arm, x, runtime);
  }
  server.observe_batch(observations);
  EXPECT_EQ(server.num_observations(), observations.size());

  server.sync_shards();
  EXPECT_EQ(server.sync_count(), 1u);
  // The fused total must not double-count: still one stream's worth.
  EXPECT_EQ(server.num_observations(), observations.size());

  for (double tasks : {33.0, 150.0, 371.0}) {
    const auto x = features_for(tasks);
    const auto want = reference.predictions(x);
    for (std::size_t s = 0; s < server.num_shards(); ++s) {
      const auto got = server.predictions(s, x);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t arm = 0; arm < want.size(); ++arm) {
        EXPECT_NEAR(got[arm], want[arm], 1e-9) << "shard=" << s << " arm=" << arm;
      }
    }
  }

  // A second sync with no new evidence must change nothing.
  const std::string before = server.save_state();
  server.sync_shards();
  EXPECT_EQ(server.save_state(), before);
}

TEST(BanditServer, AutoSyncRunsEveryKObserveBatches) {
  BanditServerConfig config;
  config.num_shards = 2;
  config.sharding = ShardingPolicy::kRoundRobin;
  config.sync_every = 3;
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);

  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  for (int batch = 0; batch < 7; ++batch) {
    std::vector<ServeObservation> observations;
    for (int i = 0; i < 4; ++i) {
      const double tasks = 30.0 + 5.0 * (batch * 4 + i);
      observations.push_back({static_cast<std::size_t>(i % 2),
                              static_cast<core::ArmIndex>(i % 3), features_for(tasks),
                              synthetic_runtime(catalog[i % 3], tasks)});
    }
    server.observe_batch(observations);
  }
  EXPECT_EQ(server.sync_count(), 2u);  // after batches 3 and 6
  server.observe_batch({});            // empty batches do not advance the cadence
  EXPECT_EQ(server.sync_count(), 2u);
}

TEST(BanditServer, SyncUnderConcurrentLoadKeepsInvariants) {
  // Recommend/observe batches race sync_shards() from a dedicated thread.
  // Locking must stay clean (TSan-friendly: shard locks + atomics only) and
  // no observation may be lost or double-counted by the fusion.
  BanditServerConfig config;
  config.num_shards = 4;
  config.sharding = ShardingPolicy::kRoundRobin;
  config.seed = 13;
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);

  constexpr int kThreads = 4;
  constexpr int kRoundsPerThread = 60;
  constexpr int kBatch = 8;
  std::atomic<std::size_t> observations_fed{0};
  std::atomic<bool> stop{false};

  std::thread syncer([&server, &stop] {
    while (!stop.load()) server.sync_shards();
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&server, &observations_fed, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        std::vector<core::FeatureVector> xs;
        for (int i = 0; i < kBatch; ++i) {
          xs.push_back(features_for(25.0 + 3.0 * ((t * 100 + round + i) % 83)));
        }
        const auto decisions = server.recommend_batch(xs);
        std::vector<ServeObservation> observations;
        for (std::size_t i = 0; i < xs.size(); ++i) {
          observations.push_back({decisions[i].shard, decisions[i].arm, xs[i],
                                  synthetic_runtime(*decisions[i].spec, xs[i][0])});
        }
        server.observe_batch(observations);
        observations_fed += observations.size();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  stop.store(true);
  syncer.join();

  server.sync_shards();  // quiesce: fold any remaining per-shard deltas
  EXPECT_EQ(server.num_observations(), observations_fed.load());
  // After the final sync every replica serves the same fused model.
  const auto x = features_for(99.0);
  const auto want = server.predictions(0, x);
  for (std::size_t s = 1; s < server.num_shards(); ++s) {
    EXPECT_EQ(server.predictions(s, x), want);
  }
}

TEST(BanditServer, SyncAtFixedCadenceIsDeterministic) {
  // Two identically-seeded servers fed the same stream with the same
  // sync_every must make the same decisions and end byte-identical.
  auto run = [] {
    BanditServerConfig config;
    config.num_shards = 3;
    config.sharding = ShardingPolicy::kRoundRobin;
    config.seed = 31;
    config.sync_every = 2;
    BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
    std::vector<core::ArmIndex> arms;
    for (int round = 0; round < 10; ++round) {
      std::vector<core::FeatureVector> xs;
      for (int i = 0; i < 6; ++i) {
        xs.push_back(features_for(40.0 + 7.0 * (round * 6 + i)));
      }
      const auto decisions = server.recommend_batch(xs);
      std::vector<ServeObservation> observations;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        arms.push_back(decisions[i].arm);
        observations.push_back({decisions[i].shard, decisions[i].arm, xs[i],
                                synthetic_runtime(*decisions[i].spec, xs[i][0])});
      }
      server.observe_batch(observations);
    }
    return std::make_pair(std::move(arms), server.save_state());
  };
  const auto [arms_a, state_a] = run();
  const auto [arms_b, state_b] = run();
  EXPECT_EQ(arms_a, arms_b);
  EXPECT_EQ(state_a, state_b);
}

TEST(BanditServer, ObserveRejectsStaleOrMalformedFeedback) {
  // Regression: a stale shard id (from a decision served under a different
  // shard count) or a bogus arm/feature payload must fail loudly instead of
  // silently training the wrong replica.
  BanditServer rr = make_server(3, ShardingPolicy::kRoundRobin);
  const auto x = features_for(50.0);

  EXPECT_THROW(rr.observe_one({3, 0, x, 10.0}), InvalidArgument);   // shard range
  EXPECT_THROW(rr.observe_one({99, 0, x, 10.0}), InvalidArgument);  // way stale
  EXPECT_THROW(rr.observe_one({0, 7, x, 10.0}), InvalidArgument);   // unknown arm
  EXPECT_THROW(rr.observe_one({0, 0, {1.0, 2.0}, 10.0}), InvalidArgument);  // features

  // Batch validation is all-or-nothing: one bad record, nothing applied.
  std::vector<ServeObservation> batch = {{0, 0, x, 10.0}, {3, 0, x, 10.0}};
  EXPECT_THROW(rr.observe_batch(batch), InvalidArgument);
  EXPECT_EQ(rr.num_observations(), 0u);

  // Feature-hash routing is recomputable, so a mis-echoed shard id is
  // detected even when it is in range.
  BanditServer fh = make_server(4, ShardingPolicy::kFeatureHash);
  const std::size_t right = fh.shard_of(x);
  const std::size_t wrong = (right + 1) % fh.num_shards();
  EXPECT_THROW(fh.observe_one({wrong, 0, x, 10.0}), InvalidArgument);
  fh.observe_one({right, 0, x, 10.0});
  EXPECT_EQ(fh.num_observations(), 1u);
}

TEST(BanditServer, ConfigRejectsAsyncSyncWithExactHistoryArms) {
  // ROADMAP caveat, now enforced: exact_history arms merge by history
  // concatenation, so async sync (which stages compact sufficient
  // statistics) cannot serve them. Rejected at construction, not mid-round.
  BanditServerConfig config;
  config.num_shards = 2;
  config.sync_mode = SyncMode::kAsync;
  config.bandit.policy.exact_history = true;
  EXPECT_THROW(BanditServer(hw::ndp_catalog(), {"num_tasks"}, config),
               InvalidArgument);
  // A fit without intercept forces the batch backend too — same rejection.
  config.bandit.policy.exact_history = false;
  config.bandit.policy.fit.intercept = false;
  EXPECT_THROW(BanditServer(hw::ndp_catalog(), {"num_tasks"}, config),
               InvalidArgument);
  // Inline sync still accepts exact_history (merge by concatenation works,
  // it is just expensive — the documented trade-off).
  config.bandit.policy.fit.intercept = true;
  config.bandit.policy.exact_history = true;
  config.sync_mode = SyncMode::kInline;
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
  EXPECT_EQ(server.num_shards(), 2u);
}

TEST(BanditServer, SingleShardAutoSyncIsANoOp) {
  // sync_every > 0 with one shard has nothing to fuse: the cadence must be
  // skipped entirely — no fusion cost, no sync_count noise — in both modes.
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  for (const SyncMode mode : {SyncMode::kInline, SyncMode::kAsync}) {
    BanditServerConfig config;
    config.num_shards = 1;
    config.sync_every = 1;
    config.sync_mode = mode;
    BanditServer server(catalog, {"num_tasks"}, config);
    for (int batch = 0; batch < 5; ++batch) {
      std::vector<ServeObservation> observations;
      for (int i = 0; i < 4; ++i) {
        const double tasks = 30.0 + 5.0 * (batch * 4 + i);
        observations.push_back({0, static_cast<core::ArmIndex>(i % 3),
                                features_for(tasks),
                                synthetic_runtime(catalog[i % 3], tasks)});
      }
      server.observe_batch(observations);
    }
    server.drain_sync();
    EXPECT_EQ(server.sync_count(), 0u) << to_string(mode);
    EXPECT_EQ(server.num_observations(), 20u) << to_string(mode);
    // Manual sync_shards() on one shard stays a harmless (counted) no-op.
    const std::string before = server.save_state();
    server.sync_shards();
    EXPECT_EQ(server.sync_count(), 1u) << to_string(mode);
    EXPECT_EQ(server.save_state(), before) << to_string(mode);
  }
}

TEST(BanditServer, SyncEveryZeroNeverAutoSyncs) {
  // Pinned semantics: sync_every = 0 means "never sync automatically",
  // regardless of mode or batch count; manual syncs still work.
  BanditServerConfig config;
  config.num_shards = 2;
  config.sharding = ShardingPolicy::kRoundRobin;
  config.sync_every = 0;
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  for (int batch = 0; batch < 8; ++batch) {
    std::vector<ServeObservation> observations;
    for (int i = 0; i < 4; ++i) {
      const double tasks = 25.0 + 3.0 * (batch * 4 + i);
      observations.push_back({static_cast<std::size_t>(i % 2),
                              static_cast<core::ArmIndex>(i % 3), features_for(tasks),
                              synthetic_runtime(catalog[i % 3], tasks)});
    }
    server.observe_batch(observations);
  }
  EXPECT_EQ(server.sync_count(), 0u);
  server.sync_shards();
  EXPECT_EQ(server.sync_count(), 1u);
}

TEST(BanditServer, AsyncAutoSyncConvergesUnderConcurrentLoad) {
  // The real background fuser under real threads: recommend/observe
  // batches race the fuser's stage/fuse/publish. No observation may be
  // lost or double-counted, and after drain + a final quiescing sync every
  // replica serves the same fused model. (The deterministic interleaving
  // coverage lives in test_async_sync.cpp; this is the TSan workhorse.)
  BanditServerConfig config;
  config.num_shards = 4;
  config.sharding = ShardingPolicy::kRoundRobin;
  config.seed = 13;
  config.sync_every = 1;
  config.sync_mode = SyncMode::kAsync;
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);

  constexpr int kThreads = 4;
  constexpr int kRoundsPerThread = 40;
  constexpr int kBatch = 8;
  std::atomic<std::size_t> observations_fed{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&server, &observations_fed, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        std::vector<core::FeatureVector> xs;
        for (int i = 0; i < kBatch; ++i) {
          xs.push_back(features_for(25.0 + 3.0 * ((t * 100 + round + i) % 83)));
        }
        const auto decisions = server.recommend_batch(xs);
        std::vector<ServeObservation> observations;
        for (std::size_t i = 0; i < xs.size(); ++i) {
          observations.push_back({decisions[i].shard, decisions[i].arm, xs[i],
                                  synthetic_runtime(*decisions[i].spec, xs[i][0])});
        }
        server.observe_batch(observations);
        observations_fed += observations.size();
        // Snapshots must stay consistent cuts while the fuser publishes.
        if (round % 16 == 0) {
          const std::string saved = server.save_state();
          BanditServer restored = BanditServer::load_state(saved);
          EXPECT_EQ(restored.save_state(), saved);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  server.drain_sync();
  EXPECT_GE(server.sync_count(), 1u);  // the fuser actually ran
  server.sync_shards();  // quiesce: fold any remaining per-shard deltas
  EXPECT_EQ(server.num_observations(), observations_fed.load());
  const auto x = features_for(99.0);
  const auto want = server.predictions(0, x);
  for (std::size_t s = 1; s < server.num_shards(); ++s) {
    EXPECT_EQ(server.predictions(s, x), want);
  }
}

TEST(BanditServer, SnapshotRoundTripCarriesSyncMode) {
  BanditServerConfig config;
  config.num_shards = 2;
  config.sharding = ShardingPolicy::kRoundRobin;
  config.sync_every = 3;
  config.sync_mode = SyncMode::kAsync;
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
  const std::string saved = server.save_state();
  EXPECT_EQ(saved.rfind("banditserver-state v3\n", 0), 0u);
  BanditServer restored = BanditServer::load_state(saved);
  EXPECT_EQ(restored.config().sync_mode, SyncMode::kAsync);
  EXPECT_EQ(restored.config().sync_every, 3u);
  EXPECT_EQ(restored.save_state(), saved);
}

TEST(BanditServer, LoadsLegacyV2ServerSnapshotsAsInlineMode) {
  // v2 snapshots predate SyncMode: they must keep loading (sync_mode
  // defaults to inline) and re-save in the current format.
  core::BanditWare replica(hw::ndp_catalog(), {"num_tasks"}, {});
  replica.observe(0, features_for(100.0), 55.0);
  const std::string blob = replica.save_state();

  std::string legacy = "banditserver-state v2\n";
  legacy +=
      "shards 1 sharding feature-hash seed 42 threads 0 explore 1 sync_every 2 "
      "observe_batches 5 rr_counter 0\n";
  legacy += "shard 0 bytes " + std::to_string(blob.size()) + "\n" + blob;
  legacy += "base bytes " + std::to_string(blob.size()) + "\n" + blob;

  BanditServer restored = BanditServer::load_state(legacy);
  EXPECT_EQ(restored.config().sync_mode, SyncMode::kInline);
  EXPECT_EQ(restored.config().sync_every, 2u);
  const std::string resaved = restored.save_state();
  EXPECT_EQ(resaved.rfind("banditserver-state v3\n", 0), 0u);
  EXPECT_EQ(BanditServer::load_state(resaved).save_state(), resaved);
}

TEST(BanditServer, LoadsLegacyV1SnapshotsWithPriorSyncBaseline) {
  // v1 snapshots predate cross-shard sync: no sync_every, no baseline blob.
  // They must still load (baseline = untrained prior) and re-save as v2.
  core::BanditWare replica(hw::ndp_catalog(), {"num_tasks"}, {});
  replica.observe(0, features_for(100.0), 55.0);
  replica.observe(2, features_for(200.0), 30.0);
  const std::string blob = replica.save_state();

  std::string legacy = "banditserver-state v1\n";
  legacy += "shards 1 sharding feature-hash seed 42 threads 0 explore 1 rr_counter 5\n";
  legacy += "shard 0 bytes " + std::to_string(blob.size()) + "\n" + blob;

  BanditServer restored = BanditServer::load_state(legacy);
  EXPECT_EQ(restored.num_shards(), 1u);
  EXPECT_EQ(restored.config().sync_every, 0u);
  EXPECT_EQ(restored.num_observations(), 2u);
  const auto x = features_for(150.0);
  EXPECT_EQ(restored.predictions(0, x), replica.predictions(x));
  // Re-saves in the current format, round-trippable as usual.
  const std::string resaved = restored.save_state();
  EXPECT_EQ(resaved.rfind("banditserver-state v3\n", 0), 0u);
  EXPECT_EQ(BanditServer::load_state(resaved).save_state(), resaved);
}

TEST(BanditServer, SyncStateSurvivesSnapshotRoundTrip) {
  // A synced engine must serialize its baseline so a restored server keeps
  // merging without double-counting.
  BanditServerConfig config;
  config.num_shards = 2;
  config.sharding = ShardingPolicy::kRoundRobin;
  config.sync_every = 2;
  BanditServer server(hw::ndp_catalog(), {"num_tasks"}, config);
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  auto make_batch = [&catalog](double base_tasks) {
    std::vector<ServeObservation> observations;
    for (int i = 0; i < 6; ++i) {
      const double tasks = base_tasks + 11.0 * i;
      observations.push_back({static_cast<std::size_t>(i % 2),
                              static_cast<core::ArmIndex>(i % 3), features_for(tasks),
                              synthetic_runtime(catalog[i % 3], tasks)});
    }
    return observations;
  };
  server.observe_batch(make_batch(60.0));  // batch 1
  server.observe_batch(make_batch(90.0));  // batch 2 -> auto-sync
  server.observe_batch(make_batch(35.0));  // batch 3: mid-cadence
  EXPECT_EQ(server.sync_count(), 1u);
  EXPECT_EQ(server.num_observations(), 18u);

  const std::string saved = server.save_state();
  BanditServer restored = BanditServer::load_state(saved);
  EXPECT_EQ(restored.save_state(), saved);
  EXPECT_EQ(restored.config().sync_every, 2u);
  EXPECT_EQ(restored.num_observations(), server.num_observations());

  // Feeding the same next batch to both must sync both (the cadence phase
  // rode along in the snapshot) and land them byte-identical — the fused
  // baseline carried across too, so no evidence is double-counted.
  const auto more = make_batch(44.0);
  server.observe_batch(more);  // batch 4 -> auto-sync on both sides
  restored.observe_batch(more);
  EXPECT_EQ(restored.save_state(), server.save_state());
  EXPECT_EQ(restored.num_observations(), 24u);
}

TEST(BanditServer, SaveStateIsAtomicUnderConcurrentWrites) {
  BanditServer server = make_server(4, ShardingPolicy::kFeatureHash);
  // The writer is bounded (not free-running) so the snapshot loop below
  // cannot chase an ever-growing history: load_state replays every stored
  // observation, which is quadratic if the stream never stops.
  std::atomic<bool> stop{false};
  std::thread writer([&server, &stop] {
    for (int i = 0; i < 400 && !stop.load(); ++i) {
      const auto x = features_for(15.0 + (i % 37));
      const auto decision = server.recommend_one(x);
      server.observe_one({decision.shard, decision.arm, x,
                          synthetic_runtime(*decision.spec, x[0])});
    }
  });
  for (int i = 0; i < 10; ++i) {
    const std::string saved = server.save_state();
    // Every snapshot taken mid-stream must itself be loadable and stable.
    BanditServer restored = BanditServer::load_state(saved);
    EXPECT_EQ(restored.save_state(), saved);
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace bw::serve
