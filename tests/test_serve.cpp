// Tests for the sharded serving engine (serve/bandit_server): routing
// determinism, batch ordering, snapshot round-trips, and a concurrent
// observe-vs-recommend stress run.

#include "serve/bandit_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "hardware/catalog.hpp"

namespace bw::serve {
namespace {

core::FeatureVector features_for(double num_tasks) { return {num_tasks}; }

/// Deterministic synthetic runtime: bigger workflows and fewer CPUs -> slower.
double synthetic_runtime(const hw::HardwareSpec& spec, double num_tasks) {
  return 5.0 + num_tasks / spec.cpus;
}

BanditServer make_server(std::size_t shards, ShardingPolicy sharding,
                         bool explore = true) {
  BanditServerConfig config;
  config.num_shards = shards;
  config.sharding = sharding;
  config.explore = explore;
  config.seed = 7;
  return BanditServer(hw::ndp_catalog(), {"num_tasks"}, config);
}

TEST(BanditServer, FeatureHashRoutingIsStable) {
  BanditServer server = make_server(4, ShardingPolicy::kFeatureHash);
  for (double tasks : {10.0, 55.0, 320.0, 499.0}) {
    const auto x = features_for(tasks);
    const std::size_t expected = server.shard_of(x);
    for (int repeat = 0; repeat < 3; ++repeat) {
      EXPECT_EQ(server.shard_of(x), expected);
      EXPECT_EQ(server.recommend_one(x).shard, expected);
    }
  }
}

TEST(BanditServer, RoundRobinSpreadsBatchEvenly) {
  BanditServer server = make_server(4, ShardingPolicy::kRoundRobin);
  const std::vector<core::FeatureVector> xs(16, features_for(100.0));
  const auto decisions = server.recommend_batch(xs);
  ASSERT_EQ(decisions.size(), 16u);
  std::vector<int> served(4, 0);
  for (const auto& decision : decisions) {
    ASSERT_LT(decision.shard, 4u);
    ++served[decision.shard];
  }
  for (int count : served) EXPECT_EQ(count, 4);
}

TEST(BanditServer, BatchResultsMatchRequestOrder) {
  BanditServer server = make_server(3, ShardingPolicy::kFeatureHash);
  std::vector<core::FeatureVector> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(features_for(10.0 * (i + 1)));
  const auto decisions = server.recommend_batch(xs);
  ASSERT_EQ(decisions.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(decisions[i].shard, server.shard_of(xs[i]));
    ASSERT_NE(decisions[i].spec, nullptr);
    EXPECT_LT(decisions[i].arm, 3u);
  }
}

TEST(BanditServer, IdenticallySeededServersDecideIdentically) {
  BanditServer a = make_server(4, ShardingPolicy::kFeatureHash);
  BanditServer b = make_server(4, ShardingPolicy::kFeatureHash);
  std::vector<core::FeatureVector> xs;
  for (int i = 0; i < 64; ++i) xs.push_back(features_for(25.0 * (i % 13) + 40.0));
  const auto da = a.recommend_batch(xs);
  const auto db = b.recommend_batch(xs);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].shard, db[i].shard);
    EXPECT_EQ(da[i].arm, db[i].arm);
    EXPECT_EQ(da[i].explored, db[i].explored);
  }
}

TEST(BanditServer, ObservationsTrainTheServingShard) {
  BanditServer server = make_server(2, ShardingPolicy::kFeatureHash, /*explore=*/false);
  // Teach both shards that the 4-CPU arm is fastest for every size.
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  std::vector<ServeObservation> observations;
  for (int round = 0; round < 30; ++round) {
    const double tasks = 50.0 + 17.0 * round;
    const auto x = features_for(tasks);
    const std::size_t shard = server.shard_of(x);
    for (core::ArmIndex arm = 0; arm < 3; ++arm) {
      observations.push_back({shard, arm, x, synthetic_runtime(catalog[arm], tasks)});
    }
  }
  server.observe_batch(observations);
  EXPECT_EQ(server.num_observations(), observations.size());

  const auto x = features_for(400.0);
  const auto predictions = server.predictions(server.shard_of(x), x);
  ASSERT_EQ(predictions.size(), 3u);
  // H2 = (4, 16) dominates on runtime; the trained models must reflect it.
  EXPECT_LT(predictions[2], predictions[0]);
}

TEST(BanditServer, SnapshotRoundTripIsByteIdentical) {
  BanditServer server = make_server(3, ShardingPolicy::kRoundRobin);
  std::vector<core::FeatureVector> xs;
  for (int i = 0; i < 40; ++i) xs.push_back(features_for(30.0 + 11.0 * i));
  const auto decisions = server.recommend_batch(xs);
  std::vector<ServeObservation> observations;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    observations.push_back({decisions[i].shard, decisions[i].arm, xs[i],
                            synthetic_runtime(*decisions[i].spec, xs[i][0])});
  }
  server.observe_batch(observations);

  const std::string saved = server.save_state();
  BanditServer restored = BanditServer::load_state(saved);
  EXPECT_EQ(restored.save_state(), saved);

  EXPECT_EQ(restored.num_shards(), server.num_shards());
  EXPECT_EQ(restored.num_observations(), server.num_observations());
  EXPECT_EQ(restored.shard_observation_counts(), server.shard_observation_counts());
  const auto x = features_for(222.0);
  for (std::size_t s = 0; s < server.num_shards(); ++s) {
    EXPECT_EQ(restored.predictions(s, x), server.predictions(s, x));
  }
}

TEST(BanditServer, LoadStateRejectsMalformedText) {
  EXPECT_THROW(BanditServer::load_state("not a snapshot"), ParseError);
  EXPECT_THROW(BanditServer::load_state("banditserver-state v1\nshards 0\n"),
               ParseError);
}

TEST(BanditServer, ConcurrentObserveAndRecommendStress) {
  BanditServer server = make_server(4, ShardingPolicy::kFeatureHash);
  constexpr int kThreads = 6;
  constexpr int kRoundsPerThread = 200;
  std::atomic<std::size_t> decisions_served{0};
  std::atomic<std::size_t> observations_fed{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &decisions_served, &observations_fed, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        const double tasks = 20.0 + 7.0 * ((t * kRoundsPerThread + round) % 91);
        const auto x = features_for(tasks);
        if ((t + round) % 3 == 0) {
          // Batched path: recommend four workflows, feed all four back.
          const std::vector<core::FeatureVector> xs(4, x);
          const auto batch = server.recommend_batch(xs);
          std::vector<ServeObservation> observations;
          for (const auto& decision : batch) {
            observations.push_back({decision.shard, decision.arm, x,
                                    synthetic_runtime(*decision.spec, tasks)});
          }
          server.observe_batch(observations);
          decisions_served += batch.size();
          observations_fed += observations.size();
        } else {
          const auto decision = server.recommend_one(x);
          server.observe_one({decision.shard, decision.arm, x,
                              synthetic_runtime(*decision.spec, tasks)});
          ++decisions_served;
          ++observations_fed;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(decisions_served.load(), observations_fed.load());
  EXPECT_EQ(server.num_observations(), observations_fed.load());
}

TEST(BanditServer, ConcurrentSharedReadsAreConsistent) {
  // Pure-exploitation serving takes the per-shard lock shared: many reader
  // threads hammering the SAME shard must all see the same trained model
  // (no serialization requirement, no torn reads). A single shard forces
  // maximal reader contention.
  BanditServer server = make_server(1, ShardingPolicy::kFeatureHash, /*explore=*/false);
  const hw::HardwareCatalog catalog = hw::ndp_catalog();
  std::vector<ServeObservation> training;
  for (int round = 0; round < 20; ++round) {
    const auto x = features_for(40.0 + 13.0 * round);
    for (core::ArmIndex arm = 0; arm < 3; ++arm) {
      training.push_back({0, arm, x, synthetic_runtime(catalog[arm], x[0])});
    }
  }
  server.observe_batch(training);

  const auto probe = features_for(123.0);
  const auto expected = server.recommend_one(probe);

  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 300;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&server, &probe, &expected, &mismatches] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        const auto decision = server.recommend_one(probe);
        if (decision.arm != expected.arm ||
            decision.predicted_runtime_s != expected.predicted_runtime_s) {
          ++mismatches;
        }
        // Batched reads share the lock too.
        const auto batch = server.recommend_batch({probe, probe});
        if (batch[0].arm != expected.arm || batch[1].arm != expected.arm) {
          ++mismatches;
        }
      }
    });
  }
  // A snapshot (shared locks across every shard) must coexist with readers.
  for (int i = 0; i < 5; ++i) {
    BanditServer restored = BanditServer::load_state(server.save_state());
    EXPECT_EQ(restored.num_observations(), server.num_observations());
  }
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(BanditServer, SaveStateIsAtomicUnderConcurrentWrites) {
  BanditServer server = make_server(4, ShardingPolicy::kFeatureHash);
  // The writer is bounded (not free-running) so the snapshot loop below
  // cannot chase an ever-growing history: load_state replays every stored
  // observation, which is quadratic if the stream never stops.
  std::atomic<bool> stop{false};
  std::thread writer([&server, &stop] {
    for (int i = 0; i < 400 && !stop.load(); ++i) {
      const auto x = features_for(15.0 + (i % 37));
      const auto decision = server.recommend_one(x);
      server.observe_one({decision.shard, decision.arm, x,
                          synthetic_runtime(*decision.spec, x[0])});
    }
  });
  for (int i = 0; i < 10; ++i) {
    const std::string saved = server.save_state();
    // Every snapshot taken mid-stream must itself be loadable and stable.
    BanditServer restored = BanditServer::load_state(saved);
    EXPECT_EQ(restored.save_state(), saved);
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace bw::serve
