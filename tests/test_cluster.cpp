// Tests for the Kubernetes-like cluster simulator (cluster/).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "cluster/cluster_sim.hpp"
#include "cluster/node.hpp"

namespace bw::cluster {
namespace {

std::vector<Node> two_nodes() {
  std::vector<Node> nodes;
  nodes.emplace_back("node-a", 4.0, 16.0);
  nodes.emplace_back("node-b", 8.0, 32.0);
  return nodes;
}

TEST(Node, AllocateAndRelease) {
  Node node("n", 4.0, 16.0);
  EXPECT_TRUE(node.fits(4.0, 16.0));
  node.allocate(2.0, 8.0);
  EXPECT_DOUBLE_EQ(node.cpu_used(), 2.0);
  EXPECT_DOUBLE_EQ(node.cpu_free(), 2.0);
  EXPECT_DOUBLE_EQ(node.utilization(), 0.5);
  node.release(2.0, 8.0);
  EXPECT_DOUBLE_EQ(node.cpu_used(), 0.0);
}

TEST(Node, RejectsOverAllocationAndOverRelease) {
  Node node("n", 2.0, 8.0);
  EXPECT_THROW(node.allocate(3.0, 1.0), InvalidArgument);
  EXPECT_THROW(node.allocate(1.0, 9.0), InvalidArgument);
  node.allocate(1.0, 4.0);
  EXPECT_THROW(node.release(2.0, 1.0), InvalidArgument);
  EXPECT_THROW(node.allocate(-1.0, 1.0), InvalidArgument);
}

TEST(Node, RejectsBadConstruction) {
  EXPECT_THROW(Node("", 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(Node("n", 0.0, 1.0), InvalidArgument);
}

TEST(ClusterSim, SinglePodRunsImmediately) {
  ClusterSim sim(two_nodes());
  const PodId pod = sim.submit(0.0, {"p", 2.0, 4.0, 10.0});
  sim.run_until_idle();
  const PodRecord& record = sim.record(pod);
  EXPECT_EQ(record.phase, PodPhase::kCompleted);
  EXPECT_DOUBLE_EQ(record.start_s, 0.0);
  EXPECT_DOUBLE_EQ(record.wait_s(), 0.0);
  EXPECT_DOUBLE_EQ(record.runtime_s(), 10.0);  // empty node: no inflation
}

TEST(ClusterSim, QueuesWhenFullThenDrainsFifo) {
  std::vector<Node> nodes;
  nodes.emplace_back("only", 2.0, 8.0);
  ClusterSim sim(std::move(nodes));
  const PodId first = sim.submit(0.0, {"first", 2.0, 4.0, 10.0});
  const PodId second = sim.submit(1.0, {"second", 2.0, 4.0, 5.0});
  const PodId third = sim.submit(2.0, {"third", 2.0, 4.0, 5.0});
  sim.run_until_idle();
  EXPECT_DOUBLE_EQ(sim.record(first).start_s, 0.0);
  EXPECT_DOUBLE_EQ(sim.record(second).start_s, sim.record(first).finish_s);
  EXPECT_DOUBLE_EQ(sim.record(third).start_s, sim.record(second).finish_s);
  EXPECT_GT(sim.record(third).wait_s(), 0.0);
}

TEST(ClusterSim, ImpossiblePodRejectedUpfront) {
  ClusterSim sim(two_nodes());
  EXPECT_THROW(sim.submit(0.0, {"giant", 100.0, 4.0, 1.0}), InvalidArgument);
  EXPECT_THROW(sim.submit(0.0, {"zero", 0.0, 4.0, 1.0}), InvalidArgument);
  EXPECT_THROW(sim.submit(0.0, {"nodur", 1.0, 4.0, 0.0}), InvalidArgument);
}

TEST(ClusterSim, SubmitInPastThrows) {
  ClusterSim sim(two_nodes());
  sim.submit(5.0, {"p", 1.0, 1.0, 1.0});
  sim.run_until(10.0);
  EXPECT_THROW(sim.submit(1.0, {"late", 1.0, 1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(sim.run_until(5.0), InvalidArgument);
}

TEST(ClusterSim, ContentionInflatesBusyNodes) {
  std::vector<Node> nodes;
  nodes.emplace_back("hot", 4.0, 32.0);
  ClusterSim sim(std::move(nodes), PlacementPolicy::kFirstFit);
  sim.submit(0.0, {"a", 3.0, 4.0, 100.0});
  const PodId second = sim.submit(1.0, {"b", 1.0, 4.0, 100.0});
  sim.run_until_idle();
  // Second pod lands on a node already at 75% CPU -> inflated runtime.
  EXPECT_GT(sim.record(second).inflation, 1.0);
  EXPECT_GT(sim.record(second).runtime_s(), 100.0);
}

TEST(ClusterSim, SoloPodOnWholeNodeHasNoContention) {
  std::vector<Node> nodes;
  nodes.emplace_back("solo", 4.0, 32.0);
  ClusterSim sim(std::move(nodes));
  const PodId pod = sim.submit(0.0, {"p", 4.0, 32.0, 10.0});
  sim.run_until_idle();
  EXPECT_DOUBLE_EQ(sim.record(pod).inflation, 1.0);
  EXPECT_DOUBLE_EQ(sim.record(pod).runtime_s(), 10.0);
}

TEST(ClusterSim, BestFitPacksTightNodes) {
  // best-fit should pick the node with the least leftover CPU.
  ClusterSim sim(two_nodes(), PlacementPolicy::kBestFit);
  const PodId pod = sim.submit(0.0, {"p", 3.0, 4.0, 1.0});
  sim.run_until(0.5);
  EXPECT_EQ(sim.record(pod).node, std::optional<std::size_t>{0});  // 4-cpu node
}

TEST(ClusterSim, WorstFitSpreadsLoad) {
  ClusterSim sim(two_nodes(), PlacementPolicy::kWorstFit);
  const PodId pod = sim.submit(0.0, {"p", 3.0, 4.0, 1.0});
  sim.run_until(0.5);
  EXPECT_EQ(sim.record(pod).node, std::optional<std::size_t>{1});  // 8-cpu node
}

TEST(ClusterSim, RunUntilAdvancesPartially) {
  ClusterSim sim(two_nodes());
  const PodId pod = sim.submit(0.0, {"p", 1.0, 1.0, 10.0});
  sim.run_until(5.0);
  EXPECT_EQ(sim.record(pod).phase, PodPhase::kRunning);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until_idle();
  EXPECT_EQ(sim.record(pod).phase, PodPhase::kCompleted);
}

TEST(ClusterSim, StatsAggregateCompletedPods) {
  ClusterSim sim(two_nodes());
  sim.submit(0.0, {"a", 1.0, 1.0, 10.0});
  sim.submit(0.0, {"b", 1.0, 1.0, 20.0});
  sim.run_until_idle();
  const ClusterStats stats = sim.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_runtime_s, 15.0);
  EXPECT_DOUBLE_EQ(stats.makespan_s, 20.0);
}

TEST(ClusterSim, ManyPodsConserveResources) {
  ClusterSim sim(two_nodes(), PlacementPolicy::kBestFit);
  for (int i = 0; i < 50; ++i) {
    sim.submit(static_cast<double>(i) * 0.25, {"p" + std::to_string(i), 1.5, 2.0, 3.0});
  }
  sim.run_until_idle();
  EXPECT_EQ(sim.stats().completed, 50u);
  // After the run every node must be fully released.
  for (const auto& node : sim.nodes()) {
    EXPECT_NEAR(node.cpu_used(), 0.0, 1e-9);
    EXPECT_NEAR(node.memory_used_gb(), 0.0, 1e-9);
  }
}

TEST(ClusterSim, NeedsAtLeastOneNode) {
  EXPECT_THROW(ClusterSim({}), InvalidArgument);
}

TEST(PlacementPolicy, NamesAreStable) {
  EXPECT_EQ(to_string(PlacementPolicy::kFirstFit), "first-fit");
  EXPECT_EQ(to_string(PlacementPolicy::kBestFit), "best-fit");
  EXPECT_EQ(to_string(PlacementPolicy::kWorstFit), "worst-fit");
}

}  // namespace
}  // namespace bw::cluster
