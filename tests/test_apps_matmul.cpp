// Tests for the matmul workload: the real tiled kernel and the calibrated
// runtime model (apps/matmul).

#include "apps/matmul.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace bw::apps {
namespace {

TEST(GenerateMatrix, RespectsValueRange) {
  const DenseMatrix m = generate_matrix(20, 0.0, -5, 5, 42);
  for (double v : m.a) {
    EXPECT_GE(v, -5.0);
    EXPECT_LE(v, 5.0);
    EXPECT_EQ(v, std::floor(v));  // integer entries
  }
}

TEST(GenerateMatrix, SparsityFractionApproximatelyHolds) {
  const DenseMatrix m = generate_matrix(100, 0.7, 1, 9, 43);
  std::size_t zeros = 0;
  for (double v : m.a) zeros += (v == 0.0);
  const double ratio = static_cast<double>(zeros) / static_cast<double>(m.a.size());
  EXPECT_NEAR(ratio, 0.7, 0.03);
}

TEST(GenerateMatrix, DeterministicBySeed) {
  const DenseMatrix a = generate_matrix(30, 0.3, -10, 10, 7);
  const DenseMatrix b = generate_matrix(30, 0.3, -10, 10, 7);
  EXPECT_EQ(a.a, b.a);
}

TEST(GenerateMatrix, RejectsBadArguments) {
  EXPECT_THROW(generate_matrix(0, 0.0, 0, 1, 1), InvalidArgument);
  EXPECT_THROW(generate_matrix(5, -0.1, 0, 1, 1), InvalidArgument);
  EXPECT_THROW(generate_matrix(5, 1.1, 0, 1, 1), InvalidArgument);
  EXPECT_THROW(generate_matrix(5, 0.0, 2, 1, 1), InvalidArgument);
}

TEST(NaiveSquare, KnownTwoByTwo) {
  DenseMatrix m;
  m.n = 2;
  m.a = {1.0, 2.0, 3.0, 4.0};
  const DenseMatrix c = naive_square(m);
  EXPECT_EQ(c.a, (std::vector<double>{7.0, 10.0, 15.0, 22.0}));
}

TEST(TiledSquare, IdentityIsFixedPoint) {
  DenseMatrix eye;
  eye.n = 8;
  eye.a.assign(64, 0.0);
  for (std::size_t i = 0; i < 8; ++i) eye.at(i, i) = 1.0;
  const DenseMatrix c = tiled_square(eye, nullptr, 4);
  EXPECT_EQ(c.a, eye.a);
}

TEST(TiledSquare, RejectsZeroBlock) {
  DenseMatrix m;
  m.n = 2;
  m.a = {1.0, 0.0, 0.0, 1.0};
  EXPECT_THROW(tiled_square(m, nullptr, 0), InvalidArgument);
}

// Property: the tiled kernel matches the naive reference for every
// combination of size, block size and thread count.
struct KernelCase {
  std::size_t n;
  std::size_t block;
  std::size_t threads;
};

class KernelEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelEquivalence, TiledMatchesNaive) {
  const auto [n, block, threads] = GetParam();
  const DenseMatrix m = generate_matrix(n, 0.3, -8, 8, n * 31 + block);
  const DenseMatrix reference = naive_square(m);

  DenseMatrix tiled;
  if (threads == 0) {
    tiled = tiled_square(m, nullptr, block);
  } else {
    ThreadPool pool(threads);
    tiled = tiled_square(m, &pool, block);
  }
  ASSERT_EQ(tiled.n, reference.n);
  for (std::size_t i = 0; i < tiled.a.size(); ++i) {
    EXPECT_DOUBLE_EQ(tiled.a[i], reference.a[i]) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesBlocksThreads, KernelEquivalence,
    ::testing::Values(KernelCase{1, 4, 0}, KernelCase{7, 4, 0}, KernelCase{16, 4, 0},
                      KernelCase{33, 8, 2}, KernelCase{64, 16, 4}, KernelCase{50, 64, 2},
                      KernelCase{65, 16, 3}, KernelCase{40, 5, 1}));

TEST(MeasureKernel, ReturnsPositiveSeconds) {
  ThreadPool pool(2);
  EXPECT_GT(measure_tiled_square_seconds(48, pool), 0.0);
}

// ---- runtime model ---------------------------------------------------------

TEST(RuntimeModel, GrowsCubicallyWithSize) {
  const MatmulModelConfig config;
  const hw::HardwareSpec spec{"M", 2, 8.0};
  const double t1 = matmul_expected_runtime(2000, 0.0, spec, config) - config.overhead_s;
  const double t2 = matmul_expected_runtime(4000, 0.0, spec, config) - config.overhead_s;
  // Cache pressure adds a little on top of the pure 8x.
  EXPECT_GT(t2 / t1, 7.9);
  EXPECT_LT(t2 / t1, 9.5);
}

TEST(RuntimeModel, MoreCoresAreFaster) {
  const MatmulModelConfig config;
  double previous = 1e30;
  const hw::HardwareCatalog catalog = hw::matmul_catalog();
  for (const auto& spec : catalog.specs()) {
    const double t = matmul_expected_runtime(8000, 0.0, spec, config);
    EXPECT_LT(t, previous);
    previous = t;
  }
}

TEST(RuntimeModel, SparsityGivesMildSpeedup) {
  const MatmulModelConfig config;
  const hw::HardwareSpec spec{"M", 2, 8.0};
  const double dense = matmul_expected_runtime(6000, 0.0, spec, config);
  const double sparse = matmul_expected_runtime(6000, 0.9, spec, config);
  EXPECT_LT(sparse, dense);
  EXPECT_GT(sparse, dense * 0.85);
}

TEST(RuntimeModel, PaperRegimes) {
  // Paper Section 4.3: size < 5000 stays around a minute; the largest runs
  // approach tens of minutes.
  const MatmulModelConfig config;
  const auto catalog = hw::matmul_catalog();
  const double small_slowest = matmul_expected_runtime(4999, 0.0, catalog[0], config);
  EXPECT_LT(small_slowest, 90.0);
  const double large_slowest = matmul_expected_runtime(12500, 0.0, catalog[0], config);
  EXPECT_GT(large_slowest, 600.0);   // >= 10 minutes
  EXPECT_LT(large_slowest, 2000.0);  // but bounded
}

TEST(RuntimeModel, SimulatedRuntimesArePositive) {
  const MatmulModelConfig config;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GT(simulate_matmul_runtime(100, 0.5, {"M", 2, 8.0}, config, rng), 0.0);
  }
}

TEST(MatmulFrames, SplitCountsMatchOptions) {
  const auto catalog = hw::matmul_catalog();
  MatmulDatasetOptions options;
  options.small_runs = 36;
  options.large_runs = 14;
  const auto frames = build_matmul_frames(catalog, MatmulModelConfig{}, options);
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames[0].num_rows(), 50u);
  std::size_t small = 0;
  for (std::int64_t n : frames[0].column("size").ints()) {
    EXPECT_GE(n, 100);
    EXPECT_LE(n, 12500);
    small += (n < 5000);
  }
  EXPECT_EQ(small, 36u);
}

TEST(MatmulFrames, FeaturesSharedRuntimesDiffer) {
  const auto catalog = hw::matmul_catalog();
  MatmulDatasetOptions options;
  options.small_runs = 10;
  options.large_runs = 5;
  const auto frames = build_matmul_frames(catalog, MatmulModelConfig{}, options);
  EXPECT_EQ(frames[1].column("size").ints(), frames[0].column("size").ints());
  EXPECT_NE(frames[1].column("runtime").doubles(), frames[0].column("runtime").doubles());
}

TEST(MatmulFrames, RejectsBadThresholds) {
  const auto catalog = hw::matmul_catalog();
  MatmulDatasetOptions options;
  options.min_size = 6000;
  options.split_size = 5000;
  EXPECT_THROW(build_matmul_frames(catalog, MatmulModelConfig{}, options),
               InvalidArgument);
}

}  // namespace
}  // namespace bw::apps
