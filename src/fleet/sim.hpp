#pragma once
// FleetSim — deterministic virtual-clock network simulator for FleetNode
// gossip (the fleet-level sibling of tests/sched_harness.hpp). Real sockets
// and timers cannot replay a failing interleaving; here every source of
// fleet nondeterminism — who serves, who gossips with whom, how long a
// message sits in flight, whether it is dropped or duplicated, when a node
// crashes — is drawn from one seeded RNG against a virtual clock, so a
// (seed, config, schedule) triple reproduces the exact run every time:
// same seed ⇒ same decision traces, same message history, byte-identical
// final snapshots.
//
// The network is a priority queue of serialized wire messages keyed by
// (deliver_tick, sequence): a uniform per-message delay reorders naturally,
// drops and duplicates are Bernoulli draws, partitions block edges between
// groups until heal(), and delivery to a crashed node silently drops (the
// protocol must tolerate all of it — FleetNode's replace-if-larger-n apply
// makes every one of these failures benign). Every hop round-trips the real
// wire codec (io::save_fleet_delta / load_fleet_delta), so the simulator
// also exercises serialization on every exchange.
//
// For convergence proofs the simulator keeps the ground truth the fleet
// cannot see: the full per-origin observation log. reference_model()
// replays the *surviving* prefix of every origin stream (per-arm counts
// from node 0's origin store — call quiesce() first so all stores agree)
// into one fresh single learner, in the same canonical ascending-origin
// order FleetNode::fused_model() folds — the gossip fleet must match it to
// float-roundtrip precision, for every policy and every λ.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fleet/fleet_node.hpp"

namespace bw::fleet {

enum class GossipTopology {
  kComplete,  ///< gossip partner drawn uniformly among alive peers
  kRing,      ///< gossip partner is a ring neighbour (random direction)
};

struct FleetSimConfig {
  std::size_t num_nodes = 2;
  std::uint64_t seed = 1;
  serve::BanditServerConfig server{};  ///< per-node engine config
  // Workload: one serve step = batch_size recommend/observe pairs.
  std::size_t batch_size = 4;
  int serve_weight = 4;   ///< relative frequency of a serve step
  int gossip_weight = 2;  ///< relative frequency of a gossip send
  GossipTopology topology = GossipTopology::kComplete;
  // Network faults.
  std::uint64_t min_delay = 1;  ///< ticks a message sits in flight (uniform)
  std::uint64_t max_delay = 1;
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  /// Take a durable snapshot of a node every K of its serve steps (0 =
  /// only the initial snapshot). restart() restores the latest one.
  std::size_t snapshot_every = 0;
};

/// Message/fault accounting for assertions.
struct FleetSimStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;            ///< Bernoulli network loss
  std::uint64_t duplicated = 0;         ///< extra enqueued copies
  std::uint64_t partition_dropped = 0;  ///< blocked by an active partition
  std::uint64_t crash_dropped = 0;      ///< destination was down at delivery
  std::uint64_t entries_applied = 0;    ///< origin-arm entries that advanced
  std::uint64_t entries_stale = 0;      ///< duplicates/echoes ignored
  std::uint64_t observations_fed = 0;   ///< ground truth across all nodes
};

class FleetSim {
 public:
  FleetSim(hw::HardwareCatalog catalog, std::vector<std::string> feature_names,
           FleetSimConfig config);

  std::size_t num_nodes() const { return nodes_.size(); }
  FleetNode& node(std::size_t i) { return *nodes_[i]; }
  const FleetNode& node(std::size_t i) const { return *nodes_[i]; }
  bool alive(std::size_t i) const { return alive_[i]; }
  std::uint64_t now() const { return tick_; }
  const FleetSimStats& stats() const { return stats_; }
  std::size_t in_flight() const { return network_.size(); }

  /// Shared deterministic runtime model (same as the sched harness).
  static double synthetic_runtime(const hw::HardwareSpec& spec, double num_tasks) {
    return 5.0 + num_tasks / spec.cpus;
  }

  /// Advances the virtual clock `ticks` steps: each step delivers every
  /// message due, then a weighted coin picks a serve step or a gossip send
  /// on seeded random alive nodes.
  void run(std::uint64_t ticks);

  // Explicit schedule hooks (all usable alongside run()):
  void serve_batch(std::size_t node);            ///< one recommend+observe batch
  void gossip(std::size_t src, std::size_t dst); ///< send delta through the network
  void exchange(std::size_t src, std::size_t dst);  ///< instant, still via wire bytes
  void crash(std::size_t node);    ///< node down; in-flight mail to it will drop
  void restart(std::size_t node);  ///< restore from its latest snapshot (inc+1)
  void take_snapshot(std::size_t node);
  /// Splits the fleet: messages between different groups drop until heal().
  /// Nodes absent from every group form an implicit final group.
  void partition(const std::vector<std::vector<std::size_t>>& groups);
  void heal();

  /// Delivers everything in flight (advancing the clock past the last
  /// deliver tick). Partitions still apply; crashed nodes still drop.
  void deliver_all();

  /// Drains the network, then runs direct full-mesh exchange rounds among
  /// alive nodes until a whole round applies nothing new (bounded; throws
  /// if the fleet refuses to converge). Afterwards every alive node's
  /// origin store — and therefore its canonical fused model — agrees.
  void quiesce();

  /// Single learner replaying every origin's surviving stream prefix
  /// (per-arm counts taken from `as_seen_by`'s origin store) in canonical
  /// ascending-origin order. With no crashes every logged observation
  /// survives somewhere, so after quiesce() this is the full-information
  /// model the fleet must reproduce.
  core::BanditWare reference_model(std::size_t as_seen_by = 0) const;

 private:
  struct Message {
    std::size_t dst = 0;
    std::string bytes;  ///< serialized FleetDelta
  };
  struct LoggedObs {
    core::ArmIndex arm = 0;
    core::FeatureVector x;
    double runtime_s = 0.0;
  };

  void deliver_due();
  void enqueue(std::size_t src, std::size_t dst, const std::string& bytes);
  bool partitioned(std::size_t a, std::size_t b) const;
  std::size_t pick_alive(Rng& rng, std::size_t excluding) const;

  FleetSimConfig config_;
  hw::HardwareCatalog catalog_;
  std::vector<std::string> feature_names_;
  std::uint64_t tick_ = 0;
  std::uint64_t seq_ = 0;  ///< total-order tiebreak for same-tick delivery
  Rng schedule_rng_;
  Rng workload_rng_;
  Rng network_rng_;
  std::vector<std::unique_ptr<FleetNode>> nodes_;
  std::vector<bool> alive_;
  std::vector<std::string> snapshots_;       ///< latest durable snapshot per node
  std::vector<std::size_t> serve_steps_;     ///< per-node, for snapshot cadence
  std::vector<int> partition_group_;         ///< -1 = unpartitioned
  std::map<std::pair<std::uint64_t, std::uint64_t>, Message> network_;
  /// Ground truth: every observation ever fed, per origin, in stream order.
  std::map<FleetOriginKey, std::vector<LoggedObs>> logs_;
  FleetSimStats stats_;
};

}  // namespace bw::fleet
