#include "fleet/sim.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "common/error.hpp"

namespace bw::fleet {

namespace {
constexpr std::size_t kNoNode = std::numeric_limits<std::size_t>::max();
}  // namespace

FleetSim::FleetSim(hw::HardwareCatalog catalog, std::vector<std::string> feature_names,
                   FleetSimConfig config)
    : config_(std::move(config)),
      catalog_(std::move(catalog)),
      feature_names_(std::move(feature_names)),
      schedule_rng_(config_.seed),
      workload_rng_(schedule_rng_.child_seed(1)),
      network_rng_(schedule_rng_.child_seed(2)) {
  BW_CHECK_MSG(config_.num_nodes >= 1, "FleetSim needs at least one node");
  BW_CHECK_MSG(config_.min_delay <= config_.max_delay,
               "FleetSim: min_delay must not exceed max_delay");
  nodes_.reserve(config_.num_nodes);
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    FleetNodeConfig node_config;
    node_config.node_id = static_cast<std::uint32_t>(i);
    node_config.server = config_.server;
    // Distinct exploration streams per node, derived from one root seed so
    // the whole fleet is reproducible from (seed, num_nodes).
    node_config.server.seed = config_.server.seed + i;
    nodes_.push_back(
        std::make_unique<FleetNode>(catalog_, feature_names_, node_config));
    alive_.push_back(true);
    serve_steps_.push_back(0);
    partition_group_.push_back(-1);
  }
  snapshots_.reserve(config_.num_nodes);
  for (const auto& node : nodes_) snapshots_.push_back(node->save_snapshot());
}

void FleetSim::run(std::uint64_t ticks) {
  const int total_weight = config_.serve_weight + config_.gossip_weight;
  BW_CHECK_MSG(total_weight > 0, "FleetSim::run needs at least one actor enabled");
  for (std::uint64_t step = 0; step < ticks; ++step) {
    ++tick_;
    deliver_due();
    int pick = static_cast<int>(
        schedule_rng_.uniform_int(0, static_cast<std::int64_t>(total_weight) - 1));
    if (pick < config_.serve_weight) {
      const std::size_t who = pick_alive(schedule_rng_, kNoNode);
      if (who != kNoNode) serve_batch(who);
      continue;
    }
    const std::size_t src = pick_alive(schedule_rng_, kNoNode);
    if (src == kNoNode) continue;
    std::size_t dst = kNoNode;
    if (config_.topology == GossipTopology::kRing) {
      // Ring neighbours are fixed regardless of liveness — a sender does
      // not know its neighbour crashed, so the mail drops at delivery.
      const std::size_t n = nodes_.size();
      dst = schedule_rng_.bernoulli(0.5) ? (src + 1) % n : (src + n - 1) % n;
      if (dst == src) dst = kNoNode;
    } else {
      dst = pick_alive(schedule_rng_, src);
    }
    if (dst != kNoNode) gossip(src, dst);
  }
}

void FleetSim::serve_batch(std::size_t node_index) {
  BW_CHECK_MSG(alive_[node_index], "FleetSim: serve on a crashed node");
  FleetNode& node = *nodes_[node_index];
  std::vector<core::FeatureVector> xs;
  xs.reserve(config_.batch_size);
  for (std::size_t i = 0; i < config_.batch_size; ++i) {
    core::FeatureVector x(feature_names_.size());
    for (double& v : x) v = workload_rng_.uniform(1.0, 10.0);
    xs.push_back(std::move(x));
  }
  const std::vector<serve::ServeDecision> decisions = node.recommend_batch(xs);
  std::vector<serve::ServeObservation> observations;
  observations.reserve(decisions.size());
  auto& log = logs_[node.self_origin()];
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const double tasks = std::accumulate(xs[i].begin(), xs[i].end(), 0.0);
    const double runtime = synthetic_runtime(*decisions[i].spec, tasks);
    observations.push_back({decisions[i].shard, decisions[i].arm, xs[i], runtime});
    log.push_back({decisions[i].arm, xs[i], runtime});
  }
  node.observe_batch(observations);
  stats_.observations_fed += observations.size();
  ++serve_steps_[node_index];
  if (config_.snapshot_every > 0 &&
      serve_steps_[node_index] % config_.snapshot_every == 0) {
    take_snapshot(node_index);
  }
}

void FleetSim::gossip(std::size_t src, std::size_t dst) {
  BW_CHECK_MSG(src != dst, "FleetSim: a node does not gossip with itself");
  BW_CHECK_MSG(alive_[src], "FleetSim: gossip from a crashed node");
  const std::string bytes = io::save_fleet_delta(
      nodes_[src]->make_delta(nodes_[dst]->node_id()));
  ++stats_.sent;
  if (partitioned(src, dst)) {
    ++stats_.partition_dropped;
    return;
  }
  if (config_.drop_probability > 0.0 &&
      network_rng_.bernoulli(config_.drop_probability)) {
    ++stats_.dropped;
    return;
  }
  enqueue(src, dst, bytes);
  if (config_.duplicate_probability > 0.0 &&
      network_rng_.bernoulli(config_.duplicate_probability)) {
    ++stats_.duplicated;
    enqueue(src, dst, bytes);
  }
}

void FleetSim::exchange(std::size_t src, std::size_t dst) {
  BW_CHECK_MSG(alive_[src] && alive_[dst], "FleetSim: exchange needs live nodes");
  const std::string bytes = io::save_fleet_delta(
      nodes_[src]->make_delta(nodes_[dst]->node_id()));
  ++stats_.sent;
  const ApplyResult result = nodes_[dst]->apply_delta(io::load_fleet_delta(bytes));
  ++stats_.delivered;
  stats_.entries_applied += result.applied;
  stats_.entries_stale += result.stale;
}

void FleetSim::enqueue(std::size_t src, std::size_t dst, const std::string& bytes) {
  (void)src;
  const std::uint64_t spread = config_.max_delay - config_.min_delay;
  const std::uint64_t delay =
      config_.min_delay +
      (spread > 0 ? static_cast<std::uint64_t>(network_rng_.uniform_int(
                        0, static_cast<std::int64_t>(spread)))
                  : 0);
  network_.emplace(std::make_pair(tick_ + delay, seq_++), Message{dst, bytes});
}

void FleetSim::deliver_due() {
  while (!network_.empty() && network_.begin()->first.first <= tick_) {
    const Message message = std::move(network_.begin()->second);
    network_.erase(network_.begin());
    if (!alive_[message.dst]) {
      ++stats_.crash_dropped;
      continue;
    }
    const ApplyResult result =
        nodes_[message.dst]->apply_delta(io::load_fleet_delta(message.bytes));
    ++stats_.delivered;
    stats_.entries_applied += result.applied;
    stats_.entries_stale += result.stale;
  }
}

void FleetSim::deliver_all() {
  while (!network_.empty()) {
    tick_ = std::max(tick_ + 1, network_.begin()->first.first);
    deliver_due();
  }
}

bool FleetSim::partitioned(std::size_t a, std::size_t b) const {
  return partition_group_[a] >= 0 && partition_group_[b] >= 0 &&
         partition_group_[a] != partition_group_[b];
}

void FleetSim::partition(const std::vector<std::vector<std::size_t>>& groups) {
  std::fill(partition_group_.begin(), partition_group_.end(), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const std::size_t member : groups[g]) {
      BW_CHECK_MSG(member < nodes_.size(), "FleetSim: partition member out of range");
      partition_group_[member] = static_cast<int>(g);
    }
  }
  // Nodes not named in any group form one implicit final group.
  for (int& g : partition_group_) {
    if (g < 0) g = static_cast<int>(groups.size());
  }
}

void FleetSim::heal() {
  std::fill(partition_group_.begin(), partition_group_.end(), -1);
}

void FleetSim::crash(std::size_t node_index) {
  BW_CHECK_MSG(alive_[node_index], "FleetSim: node already down");
  alive_[node_index] = false;
}

void FleetSim::restart(std::size_t node_index) {
  BW_CHECK_MSG(!alive_[node_index], "FleetSim: node is not down");
  nodes_[node_index] =
      std::make_unique<FleetNode>(FleetNode::restore(snapshots_[node_index]));
  alive_[node_index] = true;
}

void FleetSim::take_snapshot(std::size_t node_index) {
  BW_CHECK_MSG(alive_[node_index], "FleetSim: cannot snapshot a crashed node");
  snapshots_[node_index] = nodes_[node_index]->save_snapshot();
}

void FleetSim::quiesce() {
  deliver_all();
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (alive_[i]) live.push_back(i);
  }
  if (live.size() < 2) return;
  // Full-mesh anti-entropy until the fleet runs dry. One zero-apply round
  // is not yet convergence: a round can move no entries while still
  // *correcting knowledge* (a restarted peer's first message voids the
  // stale floors the fleet held for it), and it is the round after the
  // correction that resends. After one dry round every floor matches the
  // actual (unchanged) stores, so a second dry round proves no node lacks
  // anything — stop at two consecutive.
  const std::size_t max_rounds = live.size() + 4;
  std::size_t dry = 0;
  for (std::size_t round = 0; round < max_rounds && dry < 2; ++round) {
    const std::uint64_t before = stats_.entries_applied;
    for (const std::size_t src : live) {
      for (const std::size_t dst : live) {
        if (src != dst) exchange(src, dst);
      }
    }
    dry = stats_.entries_applied == before ? dry + 1 : 0;
  }
  if (dry < 2) {
    throw Error("FleetSim::quiesce: fleet failed to converge — protocol bug");
  }
}

std::size_t FleetSim::pick_alive(Rng& rng, std::size_t excluding) const {
  std::vector<std::size_t> candidates;
  candidates.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (alive_[i] && i != excluding) candidates.push_back(i);
  }
  if (candidates.empty()) return kNoNode;
  return candidates[rng.index(candidates.size())];
}

core::BanditWare FleetSim::reference_model(std::size_t as_seen_by) const {
  const std::vector<io::FleetVvEntry> vv = nodes_[as_seen_by]->version_vector();
  core::BanditWare reference(catalog_, feature_names_, config_.server.bandit);
  for (const auto& entry : vv) {  // ascending origin order, like the fold
    const auto log_it = logs_.find(entry.origin);
    if (log_it == logs_.end()) {
      for (const std::uint64_t n : entry.per_arm_n) {
        BW_CHECK_MSG(n == 0, "FleetSim: store holds evidence the sim never fed");
      }
      continue;
    }
    // Replay the surviving per-arm prefix of this origin's stream: gossip
    // ships cumulative prefixes, so whatever count survived is exactly the
    // first n observations this origin made on that arm.
    std::vector<std::uint64_t> fed(entry.per_arm_n.size(), 0);
    for (const LoggedObs& obs : log_it->second) {
      if (fed[obs.arm] < entry.per_arm_n[obs.arm]) {
        reference.observe(obs.arm, obs.x, obs.runtime_s);
        ++fed[obs.arm];
      }
    }
    for (std::size_t arm = 0; arm < fed.size(); ++arm) {
      BW_CHECK_MSG(fed[arm] == entry.per_arm_n[arm],
                   "FleetSim: surviving count exceeds the origin's logged stream");
    }
  }
  return reference;
}

}  // namespace bw::fleet
