#pragma once
// FleetNode — one member of a multi-node BanditWare fleet, gossiping
// learned evidence as sufficient-statistic deltas (src/io/fleet_wire.hpp).
//
// The unit of replication is the *origin stream*: every observation belongs
// to the (node, incarnation) that absorbed it, and each node keeps, per
// origin, the cumulative per-arm sufficient statistics (P, θ, n) of that
// origin's stream prefix it has seen. Because a stream is appended by
// exactly one writer, the statistics at count n extend the statistics at
// any smaller count — so state exchange needs no increments, acks, or
// ordering: a gossip message carries cumulative entries and the receiver
// applies replace-if-larger-n per (origin, arm). The apply is idempotent
// and commutative; messages may be dropped, delayed, reordered, or
// duplicated freely and evidence is never lost or double-counted.
//
// Serving model: the node's engine (a wrapped serve::BanditServer) adopts
// the *canonical fold* of the origin store — a fresh prior merged with
// every origin's model in ascending (node, incarnation) order via the same
// information-form algebra as cross-shard sync (core::BanditWare::
// merge_from with no base, so exactly one ridge prior survives). Every
// node folds in the same order, so once their origin stores agree their
// serving models agree bit-for-bit with a single learner fed the origin
// streams in that canonical order — including under a forgetting factor
// λ < 1, where the fold order is the discount order. ε-greedy's scalar
// decays once per observation, so an origin's exploration state is derived
// as ε₀ · αⁿ and chains multiplicatively through the fold exactly like the
// single learner's repeated decay.
//
// Anti-entropy: each message also carries the sender's version vector
// (per-origin per-arm counts). Receivers remember the freshest vector per
// peer and send only entries the peer lacks — steady-state gossip is
// version vectors only. The vector is a *floor* on what the peer holds
// (learned from its own messages, never assumed from ours), so a dropped
// message merely leaves the floor low and the entries re-send next round.
//
// Crash/restart: restore() rebuilds a node from its durable snapshot and
// bumps the incarnation, closing the old origin stream forever — the
// pre-crash prefix survives at whatever count any node (including the
// snapshot) holds, and the restarted node appends under the new identity.
// A node is authoritative for its *current* stream: incoming entries for
// (node_id, current incarnation) are counted stale and skipped, while old
// incarnations are accepted like any other origin (a peer may well hold
// more of the pre-crash stream than the snapshot did).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "io/fleet_wire.hpp"
#include "serve/bandit_server.hpp"

namespace bw::fleet {

using io::FleetDelta;
using io::FleetOriginKey;

struct FleetNodeConfig {
  std::uint32_t node_id = 0;
  serve::BanditServerConfig server{};  ///< applied to the wrapped engine
};

/// What FleetNode::apply_delta did with a message.
struct ApplyResult {
  std::size_t applied = 0;  ///< entries that advanced an (origin, arm)
  std::size_t stale = 0;    ///< entries at or behind what we already held
  bool changed = false;     ///< applied > 0 (the serving model was rebuilt)
};

class FleetNode {
 public:
  FleetNode(hw::HardwareCatalog catalog, std::vector<std::string> feature_names,
            FleetNodeConfig config);

  std::uint32_t node_id() const { return node_id_; }
  std::uint32_t incarnation() const { return incarnation_; }
  FleetOriginKey self_origin() const { return {node_id_, incarnation_}; }

  /// The wrapped serving engine (recommend paths; const inspection). Feed
  /// observations through FleetNode::observe_batch, never the engine
  /// directly — the node must mirror them into its origin stream.
  serve::BanditServer& server() { return server_; }
  const serve::BanditServer& server() const { return server_; }

  std::vector<serve::ServeDecision> recommend_batch(
      const std::vector<core::FeatureVector>& xs);

  /// Absorbs local feedback: trains the serving engine and appends the
  /// observations (in batch order) to this node's origin stream.
  void observe_batch(const std::vector<serve::ServeObservation>& observations);

  /// Builds the gossip message for `peer`: every (origin, arm) entry that
  /// is ahead of the freshest version vector the peer has sent us (all
  /// entries, for a peer we have never heard from), plus our own version
  /// vector. Symmetric and ack-free.
  FleetDelta make_delta(std::uint32_t peer) const;

  /// Applies a gossip message: cross-checks the config envelope (throws
  /// ParseError on any mismatch — fusing across policies, schedules, λ, or
  /// shapes would be silently wrong), records the sender's version vector,
  /// replace-if-larger-n folds each entry, and — when anything advanced —
  /// rebuilds the serving model from the canonical fold.
  ApplyResult apply_delta(const FleetDelta& delta);

  /// The canonical fold of the origin store (see file comment). This is
  /// the node's fleet-wide model: deterministic in the store's contents,
  /// identical across nodes whose stores agree.
  core::BanditWare fused_model() const;

  /// Rebuilds the serving engine from the canonical fold. apply_delta runs
  /// this automatically; exposed for harnesses that batch several applies
  /// before paying the rebuild.
  void rebuild_from_origins();

  /// Per-origin per-arm counts of everything this node holds.
  std::vector<io::FleetVvEntry> version_vector() const;

  /// Total observations held across all origins / distinct origins held.
  std::uint64_t total_observations() const;
  std::size_t num_origins() const { return origins_.size(); }

  /// The wire-format config envelope this node stamps on and demands from
  /// every message.
  io::FleetWireConfig wire_config() const { return wire_config_; }

  /// Durable snapshot (kind-5 container): identity, the full serving-engine
  /// state as a nested blob, and the origin store.
  std::string save_snapshot() const;

  /// Rebuilds a node from save_snapshot() bytes under a bumped incarnation
  /// (see file comment). Gossip accounting (version-vector floors) resets —
  /// it is soft state and re-learns from the first message per peer.
  static FleetNode restore(const std::string& bytes);

 private:
  FleetNode(serve::BanditServer server, core::BanditWareConfig bandit_config,
            std::uint32_t node_id, std::uint32_t incarnation);

  /// Folds `stats` (cumulative, full-width) into the store under
  /// replace-if-larger-n. Returns [applied, stale] entry counts.
  std::pair<std::size_t, std::size_t> fold_origin(
      const FleetOriginKey& origin, const std::vector<io::FleetArmEntry>& entries);

  /// Re-exports the local bank into the self-origin slot.
  void refresh_self_origin();

  /// Builds the per-origin model the canonical fold merges: full-width
  /// stats (prior where the origin has no evidence) plus the derived
  /// exploration scalar.
  core::BanditWare origin_model(const std::vector<core::ArmStats>& arms) const;

  std::uint32_t node_id_ = 0;
  std::uint32_t incarnation_ = 1;
  serve::BanditServer server_;
  /// Authoritative learner config for origin models and the canonical
  /// fold. Normally identical to the engine's; after restore() it re-adds
  /// what the engine snapshot intentionally drops (the ridge prior — a
  /// non-default fit option) from the fleet envelope, which does persist
  /// it because the fusion algebra depends on it.
  core::BanditWareConfig bandit_config_;
  io::FleetWireConfig wire_config_;
  /// This node's own stream under the current incarnation: a single
  /// learner fed exactly the observations passed to observe_batch, whose
  /// export is the self-origin's cumulative statistics.
  core::BanditWare local_bank_;
  /// Prior-state template: origin slots start as copies so absent arms
  /// carry exactly the shared ridge prior.
  std::vector<core::ArmStats> prior_arms_;
  /// Origin store: per origin, full-width cumulative per-arm statistics
  /// (slots with n == 0 are the untouched prior, never serialized).
  std::map<FleetOriginKey, std::vector<core::ArmStats>> origins_;
  /// Freshest version vector received from one peer, tagged with the
  /// incarnation that sent it. The tag is what makes floors crash-safe: a
  /// restart loses the peer's in-memory store, so every claim learned from
  /// the dead incarnation is void — a message from a newer incarnation
  /// resets the floors, and a straggler from an older one cannot raise
  /// them (its origin *entries* still apply; cumulative statistics are
  /// valid forever, only the holdings claim expires).
  struct PeerView {
    std::uint32_t incarnation = 0;
    std::map<FleetOriginKey, std::vector<std::uint64_t>> floors;
  };
  /// Per-peer holdings floor. Soft state: never persisted, rebuilt from
  /// gossip (restore() starts empty and simply resends generously).
  std::map<std::uint32_t, PeerView> peer_known_;
};

}  // namespace bw::fleet
