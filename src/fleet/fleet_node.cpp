#include "fleet/fleet_node.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "io/state_io.hpp"

namespace bw::fleet {

namespace {

io::FleetWireConfig wire_config_of(const serve::BanditServer& server,
                                   const core::BanditWareConfig& bandit) {
  io::FleetWireConfig wire;
  wire.policy = bandit.policy_kind;
  wire.alpha = bandit.alpha;
  wire.posterior_scale = bandit.posterior_scale;
  wire.initial_epsilon = bandit.policy.initial_epsilon;
  wire.decay = bandit.policy.decay;
  wire.lambda = bandit.policy.fit.forgetting;
  wire.ridge = bandit.policy.fit.ridge;
  wire.num_features = static_cast<std::uint32_t>(server.feature_names().size());
  wire.num_arms = static_cast<std::uint32_t>(server.catalog().size());
  return wire;
}

}  // namespace

FleetNode::FleetNode(hw::HardwareCatalog catalog,
                     std::vector<std::string> feature_names, FleetNodeConfig config)
    : FleetNode(serve::BanditServer(std::move(catalog), std::move(feature_names),
                                    config.server),
                config.server.bandit, config.node_id, 1) {}

FleetNode::FleetNode(serve::BanditServer server, core::BanditWareConfig bandit_config,
                     std::uint32_t node_id, std::uint32_t incarnation)
    : node_id_(node_id),
      incarnation_(incarnation),
      server_(std::move(server)),
      bandit_config_(std::move(bandit_config)),
      local_bank_(server_.catalog(), server_.feature_names(), bandit_config_) {
  // Gossip ships sufficient statistics; the exact-history backend has none
  // to ship (it replays raw rows), so the fleet requires the incremental
  // backend — same constraint as the serve layer's async sync.
  BW_CHECK_MSG(!bandit_config_.policy.exact_history,
               "fleet: gossip requires the incremental arm backend");
  wire_config_ = wire_config_of(server_, bandit_config_);
  prior_arms_ = local_bank_.export_stats().arms;
  origins_.emplace(self_origin(), prior_arms_);
}

std::vector<serve::ServeDecision> FleetNode::recommend_batch(
    const std::vector<core::FeatureVector>& xs) {
  return server_.recommend_batch(xs);
}

void FleetNode::observe_batch(
    const std::vector<serve::ServeObservation>& observations) {
  // The engine validates the whole batch before applying any of it, so
  // mirroring into the origin stream afterwards keeps the two in lockstep
  // even on a rejected batch.
  server_.observe_batch(observations);
  for (const auto& obs : observations) {
    local_bank_.observe(obs.arm, obs.x, obs.runtime_s);
  }
  if (!observations.empty()) refresh_self_origin();
}

void FleetNode::refresh_self_origin() {
  origins_[self_origin()] = local_bank_.export_stats().arms;
}

FleetDelta FleetNode::make_delta(std::uint32_t peer) const {
  FleetDelta delta;
  delta.sender = node_id_;
  delta.sender_incarnation = incarnation_;
  delta.config = wire_config_;
  const auto known_it = peer_known_.find(peer);
  const auto* known =
      known_it != peer_known_.end() ? &known_it->second.floors : nullptr;
  for (const auto& [origin, arms] : origins_) {
    const std::vector<std::uint64_t>* floor = nullptr;
    if (known != nullptr) {
      const auto floor_it = known->find(origin);
      if (floor_it != known->end()) floor = &floor_it->second;
    }
    io::FleetOriginBlock block;
    block.origin = origin;
    for (std::size_t arm = 0; arm < arms.size(); ++arm) {
      const core::ArmStats& stats = arms[arm];
      if (stats.n == 0) continue;
      if (floor != nullptr && (*floor)[arm] >= stats.n) continue;
      block.arms.push_back({static_cast<std::uint32_t>(arm), stats});
    }
    if (!block.arms.empty()) delta.origins.push_back(std::move(block));
  }
  delta.version_vector = version_vector();
  return delta;
}

ApplyResult FleetNode::apply_delta(const FleetDelta& delta) {
  if (!(delta.config == wire_config_)) {
    throw ParseError("fleet: config envelope mismatch from node " +
                     std::to_string(delta.sender) +
                     " — refusing cross-config fusion");
  }
  ApplyResult result;
  for (const auto& block : delta.origins) {
    // Self-authority: this node is the sole writer of its current stream,
    // so an echo of it (or a claim about a future incarnation) is stale by
    // definition. Pre-crash incarnations are ordinary origins.
    if (block.origin.node == node_id_ && block.origin.incarnation >= incarnation_) {
      result.stale += block.arms.size();
      continue;
    }
    const auto [applied, stale] = fold_origin(block.origin, block.arms);
    result.applied += applied;
    result.stale += stale;
  }
  // Max-merge the sender's version vector: it is a floor on what the peer
  // holds, and floors only rise — within one incarnation. A restart loses
  // the peer's in-memory store, so a newer incarnation voids every floor
  // learned from the old one, and a straggling old-incarnation message
  // (whose entries were folded above — cumulative statistics never expire)
  // must not raise the new incarnation's floors.
  auto& view = peer_known_[delta.sender];
  if (delta.sender_incarnation > view.incarnation) {
    view.incarnation = delta.sender_incarnation;
    view.floors.clear();
  }
  if (delta.sender_incarnation == view.incarnation) {
    for (const auto& entry : delta.version_vector) {
      if (entry.per_arm_n.size() != wire_config_.num_arms) {
        throw ParseError("fleet: version vector width mismatch from node " +
                         std::to_string(delta.sender));
      }
      auto [it, inserted] = view.floors.try_emplace(entry.origin, entry.per_arm_n);
      if (!inserted) {
        for (std::size_t arm = 0; arm < entry.per_arm_n.size(); ++arm) {
          if (entry.per_arm_n[arm] > it->second[arm]) {
            it->second[arm] = entry.per_arm_n[arm];
          }
        }
      }
    }
  }
  result.changed = result.applied > 0;
  if (result.changed) rebuild_from_origins();
  return result;
}

std::pair<std::size_t, std::size_t> FleetNode::fold_origin(
    const FleetOriginKey& origin, const std::vector<io::FleetArmEntry>& entries) {
  auto it = origins_.find(origin);
  if (it == origins_.end()) {
    if (origins_.size() >= io::kMaxFleetOrigins) {
      throw ParseError("fleet: origin store is full (" +
                       std::to_string(io::kMaxFleetOrigins) + " origins)");
    }
    it = origins_.emplace(origin, prior_arms_).first;
  }
  std::vector<core::ArmStats>& slots = it->second;
  std::size_t applied = 0;
  std::size_t stale = 0;
  for (const auto& entry : entries) {
    if (entry.arm >= slots.size()) {
      throw ParseError("fleet: arm index out of range in origin block");
    }
    core::ArmStats& slot = slots[entry.arm];
    if (entry.stats.theta.size() != slot.theta.size() ||
        entry.stats.p.rows() != slot.p.rows() ||
        entry.stats.p.cols() != slot.p.cols()) {
      throw ParseError("fleet: statistics shape mismatch in origin block");
    }
    // Replace-if-larger-n: a single-writer stream's statistics at count n
    // extend the statistics at any smaller count, so the larger entry is a
    // strict superset of the smaller — never add, never diff.
    if (entry.stats.n > slot.n) {
      slot = entry.stats;
      ++applied;
    } else {
      ++stale;
    }
  }
  return {applied, stale};
}

core::BanditWare FleetNode::origin_model(
    const std::vector<core::ArmStats>& arms) const {
  core::BanditWareStats stats;
  stats.arms = arms;
  if (wire_config_.policy == core::PolicyKind::kEpsilonGreedy) {
    // ε decays once per observation, so the origin's exploration state is
    // fully determined by its count — deriving it keeps the wire format
    // free of redundant (and potentially contradictory) scalars.
    stats.epsilon = wire_config_.initial_epsilon *
                    std::pow(wire_config_.decay,
                             static_cast<double>(stats.num_observations()));
  } else {
    stats.epsilon = 0.0;
  }
  return core::BanditWare::from_stats(server_.catalog(), server_.feature_names(),
                                      bandit_config_, stats);
}

core::BanditWare FleetNode::fused_model() const {
  core::BanditWare fused(server_.catalog(), server_.feature_names(), bandit_config_);
  for (const auto& [origin, arms] : origins_) {
    bool any = false;
    for (const auto& slot : arms) {
      if (slot.n > 0) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    // No base: each origin model carries the shared ridge prior once, and
    // the merge keeps exactly one copy — the fold over origins in ascending
    // key order is the canonical single-learner concatenation.
    fused.merge_from(origin_model(arms), nullptr);
  }
  return fused;
}

void FleetNode::rebuild_from_origins() { server_.adopt_model(fused_model()); }

std::vector<io::FleetVvEntry> FleetNode::version_vector() const {
  std::vector<io::FleetVvEntry> vv;
  vv.reserve(origins_.size());
  for (const auto& [origin, arms] : origins_) {
    io::FleetVvEntry entry;
    entry.origin = origin;
    entry.per_arm_n.reserve(arms.size());
    for (const auto& slot : arms) entry.per_arm_n.push_back(slot.n);
    vv.push_back(std::move(entry));
  }
  return vv;
}

std::uint64_t FleetNode::total_observations() const {
  std::uint64_t total = 0;
  for (const auto& [origin, arms] : origins_) {
    for (const auto& slot : arms) total += slot.n;
  }
  return total;
}

std::string FleetNode::save_snapshot() const {
  io::FleetNodeState state;
  state.node = node_id_;
  state.incarnation = incarnation_;
  state.config = wire_config_;
  std::ostringstream blob;
  io::save_state(blob, server_, io::Format::kBinary);
  state.server_blob = blob.str();
  for (const auto& [origin, arms] : origins_) {
    io::FleetOriginBlock block;
    block.origin = origin;
    for (std::size_t arm = 0; arm < arms.size(); ++arm) {
      if (arms[arm].n == 0) continue;
      block.arms.push_back({static_cast<std::uint32_t>(arm), arms[arm]});
    }
    if (!block.arms.empty()) state.origins.push_back(std::move(block));
  }
  return io::save_fleet_node(state);
}

FleetNode FleetNode::restore(const std::string& bytes) {
  const io::FleetNodeState state = io::load_fleet_node(bytes);
  std::istringstream blob(state.server_blob);
  serve::BanditServer server = io::load_server_state(blob);
  // The engine snapshot intentionally drops non-default fit options; the
  // ridge prior is the one whose loss would silently corrupt the fusion
  // algebra (the merge subtracts exactly one prior copy), so the fleet
  // envelope persists it and restore re-applies it here. Every other
  // envelope field round-trips through the engine blob and is verified
  // against the envelope below.
  core::BanditWareConfig bandit_config = server.config().bandit;
  bandit_config.policy.fit.ridge = state.config.ridge;
  // Restarting closes the old origin stream: the node re-enters the fleet
  // under incarnation + 1 and appends to a fresh stream, so the pre-crash
  // prefix (restored below, possibly extended later by peers that held
  // more of it) can never be confused with post-restart evidence.
  FleetNode node(std::move(server), std::move(bandit_config), state.node,
                 state.incarnation + 1);
  if (!(node.wire_config_ == state.config)) {
    throw ParseError(
        "fleet: snapshot config envelope does not match the embedded engine");
  }
  for (const auto& block : state.origins) {
    if (block.origin.node == node.node_id_ &&
        block.origin.incarnation >= node.incarnation_) {
      throw ParseError("fleet: snapshot holds an origin from a future incarnation");
    }
    node.fold_origin(block.origin, block.arms);
  }
  node.rebuild_from_origins();
  return node;
}

}  // namespace bw::fleet
