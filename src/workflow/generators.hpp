#pragma once
// Workflow topology generators: the shapes that cover the paper's use
// cases (Cycles is a bag-of-tasks + aggregation pipeline) plus generic
// chain / fork-join shapes used by the cluster example and tests.

#include "common/rng.hpp"
#include "workflow/dag.hpp"

namespace bw::wf {

struct TaskDurationModel {
  double mean_s = 6.0;    ///< per-task mean duration on one reference core
  double jitter_sd = 0.5; ///< lognormal-ish spread around the mean
  double memory_gb = 0.2; ///< per-task working set
};

/// n independent tasks, no edges.
WorkflowDag bag_of_tasks(std::size_t n, const TaskDurationModel& model, Rng& rng);

/// Linear chain of n tasks.
WorkflowDag chain(std::size_t n, const TaskDurationModel& model, Rng& rng);

/// source -> n parallel tasks -> sink.
WorkflowDag fork_join(std::size_t n, const TaskDurationModel& model, Rng& rng);

/// Cycles-like agroecosystem workflow: a preprocessing task fans out to
/// `num_simulations` crop-simulation tasks, which fan into a fixed
/// 3-stage aggregation/summary tail. Task count = num_simulations + 4.
WorkflowDag cycles_workflow(std::size_t num_simulations, const TaskDurationModel& model,
                            Rng& rng);

}  // namespace bw::wf
