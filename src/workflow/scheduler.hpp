#pragma once
// List scheduling of a workflow DAG onto c identical cores of a hardware
// spec. The Cycles dataset builder derives every runtime sample from this
// simulation, so makespans obey real scheduling effects (ready queues,
// stragglers) rather than an idealized formula.

#include "hardware/perf_model.hpp"
#include "hardware/spec.hpp"
#include "workflow/dag.hpp"

namespace bw::wf {

struct ScheduledTask {
  TaskId task = 0;
  std::size_t core = 0;
  double start_s = 0.0;
  double finish_s = 0.0;
};

struct Schedule {
  double makespan_s = 0.0;
  std::vector<ScheduledTask> tasks;  ///< in start-time order

  /// Fraction of core-time busy during the makespan (0..1].
  double utilization(std::size_t num_cores) const;
};

/// Greedy list scheduler: ready tasks start on the earliest-available core
/// in topological order. Task durations are scaled by the hardware's
/// per-core throughput (PerfModel::speedup of a 1-cpu spec with the same
/// clock == 1, so duration_s is "reference-core seconds").
///
/// The schedule respects all DAG edges; with `spec.cpus` cores the
/// makespan satisfies the classic bounds
///   max(critical_path, total_work / c) <= makespan <= critical_path + total_work / c.
Schedule list_schedule(const WorkflowDag& dag, const hw::HardwareSpec& spec,
                       const hw::PerfModel& perf = hw::PerfModel{});

}  // namespace bw::wf
