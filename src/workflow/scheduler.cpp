#include "workflow/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace bw::wf {

double Schedule::utilization(std::size_t num_cores) const {
  if (makespan_s <= 0.0 || num_cores == 0) return 0.0;
  double busy = 0.0;
  for (const auto& scheduled : tasks) busy += scheduled.finish_s - scheduled.start_s;
  return busy / (makespan_s * static_cast<double>(num_cores));
}

Schedule list_schedule(const WorkflowDag& dag, const hw::HardwareSpec& spec,
                       const hw::PerfModel& perf) {
  BW_CHECK_MSG(spec.cpus > 0, "hardware must have at least one core");
  const std::vector<TaskId> order = dag.topological_order();
  const auto num_cores = static_cast<std::size_t>(spec.cpus);

  // Per-task coordination overhead grows mildly with core count — this is
  // what makes the per-hardware makespan slopes sub-linear in 1/c.
  const double overhead = 1.0 + perf.params().sync_overhead * (spec.cpus - 1);
  const double per_core_throughput = perf.params().base_throughput;

  std::vector<double> core_available(num_cores, 0.0);
  std::vector<double> finish(dag.num_tasks(), 0.0);

  Schedule schedule;
  schedule.tasks.reserve(dag.num_tasks());

  for (TaskId id : order) {
    double ready = 0.0;
    for (TaskId pred : dag.predecessors(id)) ready = std::max(ready, finish[pred]);

    // Earliest-available core (ties -> lowest index, deterministic).
    std::size_t best_core = 0;
    for (std::size_t c = 1; c < num_cores; ++c) {
      if (core_available[c] < core_available[best_core]) best_core = c;
    }
    const double start = std::max(ready, core_available[best_core]);
    const double duration = dag.task(id).duration_s * overhead / per_core_throughput;
    const double end = start + duration;
    core_available[best_core] = end;
    finish[id] = end;
    schedule.tasks.push_back({id, best_core, start, end});
    schedule.makespan_s = std::max(schedule.makespan_s, end);
  }

  std::sort(schedule.tasks.begin(), schedule.tasks.end(),
            [](const ScheduledTask& a, const ScheduledTask& b) {
              return a.start_s < b.start_s || (a.start_s == b.start_s && a.task < b.task);
            });
  return schedule;
}

}  // namespace bw::wf
