#pragma once
// Workflow DAG representation. Cycles (paper Experiment 1) is an HTC
// scientific workflow — a large bag of crop-simulation tasks feeding a few
// aggregation stages. We model workflows explicitly so runtimes come from
// *scheduling simulation* rather than a hardcoded formula.

#include <cstddef>
#include <string>
#include <vector>

namespace bw::wf {

using TaskId = std::size_t;

struct Task {
  std::string name;
  double duration_s = 1.0;   ///< execution time on one reference core
  double memory_gb = 0.1;    ///< peak working set
};

class WorkflowDag {
 public:
  /// Adds a task; returns its id. Duration must be positive and finite.
  TaskId add_task(Task task);

  /// Adds a dependency: `to` cannot start before `from` finishes.
  /// Self-edges are rejected immediately; cycles are caught by validate().
  void add_edge(TaskId from, TaskId to);

  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_edges() const { return edge_count_; }
  const Task& task(TaskId id) const;
  const std::vector<TaskId>& successors(TaskId id) const;
  const std::vector<TaskId>& predecessors(TaskId id) const;

  /// Sum of all task durations (serial execution time on one core).
  double total_work_s() const;

  /// Tasks in a topological order; throws InvalidArgument if cyclic.
  std::vector<TaskId> topological_order() const;

  /// Length of the longest duration-weighted path — the makespan lower
  /// bound with unlimited cores.
  double critical_path_s() const;

  /// Throws InvalidArgument if the graph contains a cycle.
  void validate() const;

 private:
  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> successors_;
  std::vector<std::vector<TaskId>> predecessors_;
  std::size_t edge_count_ = 0;
};

}  // namespace bw::wf
