#include "workflow/dag.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace bw::wf {

TaskId WorkflowDag::add_task(Task task) {
  BW_CHECK_MSG(task.duration_s > 0.0 && std::isfinite(task.duration_s),
               "task duration must be positive and finite");
  BW_CHECK_MSG(task.memory_gb >= 0.0, "task memory must be non-negative");
  tasks_.push_back(std::move(task));
  successors_.emplace_back();
  predecessors_.emplace_back();
  return tasks_.size() - 1;
}

void WorkflowDag::add_edge(TaskId from, TaskId to) {
  BW_CHECK_MSG(from < tasks_.size() && to < tasks_.size(), "edge endpoint out of range");
  BW_CHECK_MSG(from != to, "self-dependency is not allowed");
  successors_[from].push_back(to);
  predecessors_[to].push_back(from);
  ++edge_count_;
}

const Task& WorkflowDag::task(TaskId id) const {
  BW_CHECK_MSG(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

const std::vector<TaskId>& WorkflowDag::successors(TaskId id) const {
  BW_CHECK_MSG(id < tasks_.size(), "task id out of range");
  return successors_[id];
}

const std::vector<TaskId>& WorkflowDag::predecessors(TaskId id) const {
  BW_CHECK_MSG(id < tasks_.size(), "task id out of range");
  return predecessors_[id];
}

double WorkflowDag::total_work_s() const {
  double sum = 0.0;
  for (const auto& task : tasks_) sum += task.duration_s;
  return sum;
}

std::vector<TaskId> WorkflowDag::topological_order() const {
  std::vector<std::size_t> in_degree(tasks_.size(), 0);
  for (TaskId id = 0; id < tasks_.size(); ++id) in_degree[id] = predecessors_[id].size();

  // Kahn's algorithm with a FIFO frontier (stable order for determinism).
  std::vector<TaskId> frontier;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (in_degree[id] == 0) frontier.push_back(id);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  std::size_t head = 0;
  while (head < frontier.size()) {
    const TaskId id = frontier[head++];
    order.push_back(id);
    for (TaskId succ : successors_[id]) {
      if (--in_degree[succ] == 0) frontier.push_back(succ);
    }
  }
  if (order.size() != tasks_.size()) {
    throw InvalidArgument("workflow DAG contains a cycle");
  }
  return order;
}

double WorkflowDag::critical_path_s() const {
  const std::vector<TaskId> order = topological_order();
  std::vector<double> finish(tasks_.size(), 0.0);
  double best = 0.0;
  for (TaskId id : order) {
    double earliest_start = 0.0;
    for (TaskId pred : predecessors_[id]) {
      earliest_start = std::max(earliest_start, finish[pred]);
    }
    finish[id] = earliest_start + tasks_[id].duration_s;
    best = std::max(best, finish[id]);
  }
  return best;
}

void WorkflowDag::validate() const { (void)topological_order(); }

}  // namespace bw::wf
