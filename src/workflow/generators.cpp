#include "workflow/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace bw::wf {
namespace {

double sample_duration(const TaskDurationModel& model, Rng& rng) {
  // Multiplicative jitter keeps durations positive.
  const double factor = std::exp(rng.normal(0.0, model.jitter_sd) -
                                 0.5 * model.jitter_sd * model.jitter_sd);
  return std::max(1e-3, model.mean_s * factor);
}

Task make_task(const std::string& name, const TaskDurationModel& model, Rng& rng) {
  return Task{name, sample_duration(model, rng), model.memory_gb};
}

}  // namespace

WorkflowDag bag_of_tasks(std::size_t n, const TaskDurationModel& model, Rng& rng) {
  BW_CHECK_MSG(n > 0, "bag_of_tasks needs at least one task");
  WorkflowDag dag;
  for (std::size_t i = 0; i < n; ++i) {
    dag.add_task(make_task("task_" + std::to_string(i), model, rng));
  }
  return dag;
}

WorkflowDag chain(std::size_t n, const TaskDurationModel& model, Rng& rng) {
  BW_CHECK_MSG(n > 0, "chain needs at least one task");
  WorkflowDag dag;
  TaskId prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId id = dag.add_task(make_task("stage_" + std::to_string(i), model, rng));
    if (i > 0) dag.add_edge(prev, id);
    prev = id;
  }
  return dag;
}

WorkflowDag fork_join(std::size_t n, const TaskDurationModel& model, Rng& rng) {
  BW_CHECK_MSG(n > 0, "fork_join needs at least one parallel task");
  WorkflowDag dag;
  const TaskId source = dag.add_task(make_task("source", model, rng));
  const TaskId sink_placeholder = 0;  // created after the branches
  std::vector<TaskId> branches;
  branches.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId id = dag.add_task(make_task("branch_" + std::to_string(i), model, rng));
    dag.add_edge(source, id);
    branches.push_back(id);
  }
  (void)sink_placeholder;
  const TaskId sink = dag.add_task(make_task("sink", model, rng));
  for (TaskId id : branches) dag.add_edge(id, sink);
  return dag;
}

WorkflowDag cycles_workflow(std::size_t num_simulations, const TaskDurationModel& model,
                            Rng& rng) {
  BW_CHECK_MSG(num_simulations > 0, "cycles workflow needs at least one simulation");
  WorkflowDag dag;
  // Light preprocessing stage (weather/soil staging).
  TaskDurationModel light = model;
  light.mean_s = model.mean_s * 0.5;
  const TaskId prep = dag.add_task(make_task("prepare_inputs", light, rng));

  // The bag of crop simulations dominates the runtime.
  std::vector<TaskId> sims;
  sims.reserve(num_simulations);
  for (std::size_t i = 0; i < num_simulations; ++i) {
    const TaskId id = dag.add_task(make_task("cycles_sim_" + std::to_string(i), model, rng));
    dag.add_edge(prep, id);
    sims.push_back(id);
  }

  // Aggregation tail: gather -> analyze -> report.
  const TaskId gather = dag.add_task(make_task("gather_outputs", light, rng));
  for (TaskId id : sims) dag.add_edge(id, gather);
  const TaskId analyze = dag.add_task(make_task("analyze", light, rng));
  dag.add_edge(gather, analyze);
  const TaskId report = dag.add_task(make_task("report", light, rng));
  dag.add_edge(analyze, report);
  return dag;
}

}  // namespace bw::wf
