#pragma once
// RFC-4180-ish CSV reader/writer with type inference. Dataset builders can
// export the synthetic run tables and re-load them, so users can swap in
// their own trace CSVs without recompiling.

#include <iosfwd>
#include <string>

#include "dataframe/dataframe.hpp"

namespace bw::df {

struct CsvOptions {
  char delimiter = ',';
  /// Infer int64 / double / string per column; if false, all string.
  bool infer_types = true;
};

/// Parses CSV text with a header row. Throws ParseError on ragged rows,
/// unterminated quotes, or an empty header.
DataFrame read_csv_string(const std::string& text, const CsvOptions& options = {});

/// Reads a CSV file; throws ParseError if the file cannot be opened.
DataFrame read_csv_file(const std::string& path, const CsvOptions& options = {});

/// Serializes with a header row, quoting fields as needed.
std::string write_csv_string(const DataFrame& frame, const CsvOptions& options = {});

void write_csv_file(const DataFrame& frame, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace bw::df
