#include "dataframe/column.hpp"

#include "common/error.hpp"

namespace bw::df {

std::string to_string(ColumnType type) {
  switch (type) {
    case ColumnType::kDouble: return "double";
    case ColumnType::kInt64: return "int64";
    case ColumnType::kString: return "string";
  }
  return "?";
}

ColumnType Column::type() const {
  if (std::holds_alternative<std::vector<double>>(values_)) return ColumnType::kDouble;
  if (std::holds_alternative<std::vector<std::int64_t>>(values_)) return ColumnType::kInt64;
  return ColumnType::kString;
}

std::size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, values_);
}

const std::vector<double>& Column::doubles() const {
  BW_CHECK_MSG(type() == ColumnType::kDouble, "column is not double-typed");
  return std::get<std::vector<double>>(values_);
}

const std::vector<std::int64_t>& Column::ints() const {
  BW_CHECK_MSG(type() == ColumnType::kInt64, "column is not int64-typed");
  return std::get<std::vector<std::int64_t>>(values_);
}

const std::vector<std::string>& Column::strings() const {
  BW_CHECK_MSG(type() == ColumnType::kString, "column is not string-typed");
  return std::get<std::vector<std::string>>(values_);
}

std::vector<double> Column::as_doubles() const {
  switch (type()) {
    case ColumnType::kDouble:
      return doubles();
    case ColumnType::kInt64: {
      const auto& src = ints();
      return std::vector<double>(src.begin(), src.end());
    }
    case ColumnType::kString:
      throw InvalidArgument("cannot view string column as doubles");
  }
  throw InvalidArgument("unreachable");
}

std::string Column::cell_to_string(std::size_t row) const {
  BW_CHECK_MSG(row < size(), "column row out of range");
  switch (type()) {
    case ColumnType::kDouble: {
      // Shortest round-trip representation keeps CSV output readable.
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", doubles()[row]);
      return buffer;
    }
    case ColumnType::kInt64:
      return std::to_string(ints()[row]);
    case ColumnType::kString:
      return strings()[row];
  }
  return {};
}

double Column::numeric_at(std::size_t row) const {
  BW_CHECK_MSG(row < size(), "column row out of range");
  switch (type()) {
    case ColumnType::kDouble: return doubles()[row];
    case ColumnType::kInt64: return static_cast<double>(ints()[row]);
    case ColumnType::kString:
      throw InvalidArgument("numeric_at on string column");
  }
  throw InvalidArgument("unreachable");
}

void Column::append_from(const Column& other, std::size_t row) {
  BW_CHECK_MSG(type() == other.type(), "append_from: column type mismatch");
  BW_CHECK_MSG(row < other.size(), "append_from: row out of range");
  switch (type()) {
    case ColumnType::kDouble:
      std::get<std::vector<double>>(values_).push_back(other.doubles()[row]);
      break;
    case ColumnType::kInt64:
      std::get<std::vector<std::int64_t>>(values_).push_back(other.ints()[row]);
      break;
    case ColumnType::kString:
      std::get<std::vector<std::string>>(values_).push_back(other.strings()[row]);
      break;
  }
}

Column Column::take(const std::vector<std::size_t>& rows) const {
  switch (type()) {
    case ColumnType::kDouble: {
      std::vector<double> out;
      out.reserve(rows.size());
      const auto& src = doubles();
      for (std::size_t r : rows) {
        BW_CHECK_MSG(r < src.size(), "take: row out of range");
        out.push_back(src[r]);
      }
      return Column(std::move(out));
    }
    case ColumnType::kInt64: {
      std::vector<std::int64_t> out;
      out.reserve(rows.size());
      const auto& src = ints();
      for (std::size_t r : rows) {
        BW_CHECK_MSG(r < src.size(), "take: row out of range");
        out.push_back(src[r]);
      }
      return Column(std::move(out));
    }
    case ColumnType::kString: {
      std::vector<std::string> out;
      out.reserve(rows.size());
      const auto& src = strings();
      for (std::size_t r : rows) {
        BW_CHECK_MSG(r < src.size(), "take: row out of range");
        out.push_back(src[r]);
      }
      return Column(std::move(out));
    }
  }
  throw InvalidArgument("unreachable");
}

}  // namespace bw::df
