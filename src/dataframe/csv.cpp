#include "dataframe/csv.hpp"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace bw::df {
namespace {

/// Splits CSV text into rows of fields, handling quoted fields with
/// embedded delimiters, quotes ("" escape) and newlines.
std::vector<std::vector<std::string>> tokenize(const std::string& text, char delimiter) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
      continue;
    }
    if (ch == '"' && field.empty() && !field_started) {
      in_quotes = true;
      field_started = true;
    } else if (ch == delimiter) {
      end_field();
    } else if (ch == '\n') {
      if (!field.empty() || !row.empty() || field_started) end_row();
    } else if (ch == '\r') {
      // swallow (CRLF handled by the \n branch)
    } else {
      field.push_back(ch);
      field_started = true;
    }
  }
  if (in_quotes) throw ParseError("CSV: unterminated quoted field");
  if (!field.empty() || !row.empty() || field_started) end_row();
  return rows;
}

bool parse_int64(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return errno == 0 && end == s.c_str() + s.size();
}

Column infer_column(const std::vector<std::vector<std::string>>& rows, std::size_t col,
                    bool infer_types) {
  const std::size_t n = rows.size() - 1;  // minus header
  if (infer_types) {
    // Try int64 first, then double; fall back to string on first failure.
    bool all_int = true;
    bool all_double = true;
    for (std::size_t r = 1; r < rows.size() && (all_int || all_double); ++r) {
      std::int64_t iv;
      double dv;
      if (all_int && !parse_int64(rows[r][col], iv)) all_int = false;
      if (all_double && !parse_double(rows[r][col], dv)) all_double = false;
    }
    if (all_int && n > 0) {
      std::vector<std::int64_t> values;
      values.reserve(n);
      for (std::size_t r = 1; r < rows.size(); ++r) {
        std::int64_t v = 0;
        parse_int64(rows[r][col], v);
        values.push_back(v);
      }
      return Column(std::move(values));
    }
    if (all_double && n > 0) {
      std::vector<double> values;
      values.reserve(n);
      for (std::size_t r = 1; r < rows.size(); ++r) {
        double v = 0;
        parse_double(rows[r][col], v);
        values.push_back(v);
      }
      return Column(std::move(values));
    }
  }
  std::vector<std::string> values;
  values.reserve(n);
  for (std::size_t r = 1; r < rows.size(); ++r) values.push_back(rows[r][col]);
  return Column(std::move(values));
}

std::string escape(const std::string& s, char delimiter) {
  bool needs_quotes = false;
  for (char ch : s) {
    if (ch == delimiter || ch == '"' || ch == '\n' || ch == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

}  // namespace

DataFrame read_csv_string(const std::string& text, const CsvOptions& options) {
  const auto rows = tokenize(text, options.delimiter);
  if (rows.empty()) throw ParseError("CSV: missing header row");
  const auto& header = rows.front();
  BW_CHECK_MSG(!header.empty(), "CSV: empty header");
  for (std::size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != header.size()) {
      throw ParseError("CSV: row " + std::to_string(r) + " has " +
                       std::to_string(rows[r].size()) + " fields, expected " +
                       std::to_string(header.size()));
    }
  }
  DataFrame frame;
  for (std::size_t c = 0; c < header.size(); ++c) {
    frame.add_column(header[c], infer_column(rows, c, options.infer_types));
  }
  return frame;
}

DataFrame read_csv_file(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_csv_string(buffer.str(), options);
}

std::string write_csv_string(const DataFrame& frame, const CsvOptions& options) {
  std::ostringstream os;
  const auto& names = frame.column_names();
  for (std::size_t c = 0; c < names.size(); ++c) {
    os << escape(names[c], options.delimiter);
    if (c + 1 < names.size()) os << options.delimiter;
  }
  os << '\n';
  for (std::size_t r = 0; r < frame.num_rows(); ++r) {
    for (std::size_t c = 0; c < names.size(); ++c) {
      os << escape(frame.column(names[c]).cell_to_string(r), options.delimiter);
      if (c + 1 < names.size()) os << options.delimiter;
    }
    os << '\n';
  }
  return os.str();
}

void write_csv_file(const DataFrame& frame, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ParseError("cannot open CSV file for writing: " + path);
  out << write_csv_string(frame, options);
}

}  // namespace bw::df
