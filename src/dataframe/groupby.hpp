#pragma once
// Group-by aggregation over one key column — used by the dataset builders
// to compute per-hardware summary rows and by Table-1-style dataset
// description benches.

#include <string>
#include <vector>

#include "dataframe/dataframe.hpp"

namespace bw::df {

enum class Aggregation { kMean, kMin, kMax, kSum, kCount };

std::string to_string(Aggregation agg);

struct GroupBySpec {
  std::string value_column;  ///< numeric column to aggregate
  Aggregation aggregation = Aggregation::kMean;
};

/// Groups `frame` by `key` and computes each aggregation. Output: the key
/// column (one row per distinct key, in first-appearance order) plus one
/// column per spec named "<value>_<agg>".
DataFrame group_by(const DataFrame& frame, const std::string& key,
                   const std::vector<GroupBySpec>& specs);

}  // namespace bw::df
