#pragma once
// Typed column storage for the DataFrame substrate. The paper's pipeline
// (Fig. 1) receives application-performance data "as a Python pandas
// dataframe"; this module is the C++ stand-in: double / int64 / string
// columns with explicit, checked conversions.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace bw::df {

enum class ColumnType { kDouble, kInt64, kString };

std::string to_string(ColumnType type);

class Column {
 public:
  Column() : values_(std::vector<double>{}) {}
  explicit Column(std::vector<double> values) : values_(std::move(values)) {}
  explicit Column(std::vector<std::int64_t> values) : values_(std::move(values)) {}
  explicit Column(std::vector<std::string> values) : values_(std::move(values)) {}

  ColumnType type() const;
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  const std::vector<double>& doubles() const;
  const std::vector<std::int64_t>& ints() const;
  const std::vector<std::string>& strings() const;

  /// Numeric view: doubles as-is, int64 widened; throws for string columns.
  std::vector<double> as_doubles() const;

  /// Element rendered as text (for CSV output and joins on mixed keys).
  std::string cell_to_string(std::size_t row) const;

  /// Numeric cell (double or int64); throws InvalidArgument for strings.
  double numeric_at(std::size_t row) const;

  /// Appends the `row`-th element of `other` (types must match).
  void append_from(const Column& other, std::size_t row);

  /// New column containing only the given rows, in order.
  Column take(const std::vector<std::size_t>& rows) const;

 private:
  std::variant<std::vector<double>, std::vector<std::int64_t>, std::vector<std::string>> values_;
};

}  // namespace bw::df
