#pragma once
// Column-oriented DataFrame with the operations the BanditWare pipeline
// needs (paper Fig. 1): load per-hardware run tables, retrieve useful
// columns, filter rows, merge frames on a run ID, and summarize.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "dataframe/column.hpp"

namespace bw::df {

class DataFrame {
 public:
  DataFrame() = default;

  /// Adds a column; size must match existing columns; names must be unique.
  void add_column(const std::string& name, Column column);

  /// Replaces an existing column (same size requirement).
  void set_column(const std::string& name, Column column);

  std::size_t num_rows() const;
  std::size_t num_cols() const { return columns_.size(); }
  bool empty() const { return num_rows() == 0; }

  bool has_column(const std::string& name) const;
  const Column& column(const std::string& name) const;
  const std::vector<std::string>& column_names() const { return names_; }

  /// New frame with only the named columns, in the given order.
  DataFrame select(const std::vector<std::string>& names) const;

  /// New frame with rows where `predicate(row_index)` is true.
  DataFrame filter(const std::function<bool(std::size_t)>& predicate) const;

  /// New frame with rows where column `name` (numeric) satisfies the
  /// predicate — convenience for `size >= 5000`-style slicing.
  DataFrame filter_numeric(const std::string& name,
                           const std::function<bool(double)>& predicate) const;

  /// New frame with the given rows (in order, duplicates allowed).
  DataFrame take(const std::vector<std::size_t>& rows) const;

  /// First n rows (or fewer).
  DataFrame head(std::size_t n) const;

  /// Appends the rows of `other`; schemas (names + types, same order) must
  /// match exactly.
  void append_rows(const DataFrame& other);

  /// Numeric matrix view of the named columns (row-major n x k flattened).
  /// All named columns must be numeric.
  std::vector<double> to_row_major(const std::vector<std::string>& names) const;

  /// Per-numeric-column summary (count/mean/sd/min/quartiles/max).
  std::vector<std::pair<std::string, bw::Summary>> describe() const;

  /// Aligned-text preview of the first `max_rows` rows.
  std::string to_string(std::size_t max_rows = 10) const;

 private:
  std::vector<std::string> names_;
  std::vector<Column> columns_;
  std::size_t index_of(const std::string& name) const;
};

}  // namespace bw::df
