#pragma once
// Hash inner join on a key column — the "Merge" step of paper Fig. 1: one
// run table per hardware setting is joined on the run ID so each row group
// holds the same workflow executed on every hardware.

#include <string>

#include "dataframe/dataframe.hpp"

namespace bw::df {

struct JoinOptions {
  /// Suffixes applied to clashing non-key column names.
  std::string left_suffix = "_x";
  std::string right_suffix = "_y";
};

/// Inner join of `left` and `right` on `key` (must exist in both, same
/// type). Output contains the key once, then left non-key columns, then
/// right non-key columns; one output row per matching (left,right) pair,
/// in left-row order.
DataFrame inner_join(const DataFrame& left, const DataFrame& right, const std::string& key,
                     const JoinOptions& options = {});

}  // namespace bw::df
