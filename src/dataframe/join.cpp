#include "dataframe/join.hpp"

#include <unordered_map>

#include "common/error.hpp"

namespace bw::df {

DataFrame inner_join(const DataFrame& left, const DataFrame& right, const std::string& key,
                     const JoinOptions& options) {
  BW_CHECK_MSG(left.has_column(key), "join: left frame missing key '" + key + "'");
  BW_CHECK_MSG(right.has_column(key), "join: right frame missing key '" + key + "'");
  const Column& lkey = left.column(key);
  const Column& rkey = right.column(key);
  BW_CHECK_MSG(lkey.type() == rkey.type(), "join: key column type mismatch");

  // Build hash map from right key -> row indices (stringified keys give a
  // uniform path for all key types; IDs are short so this is cheap).
  std::unordered_multimap<std::string, std::size_t> right_rows;
  right_rows.reserve(right.num_rows());
  for (std::size_t r = 0; r < right.num_rows(); ++r) {
    right_rows.emplace(rkey.cell_to_string(r), r);
  }

  std::vector<std::size_t> left_take;
  std::vector<std::size_t> right_take;
  for (std::size_t l = 0; l < left.num_rows(); ++l) {
    const auto [begin, end] = right_rows.equal_range(lkey.cell_to_string(l));
    for (auto it = begin; it != end; ++it) {
      left_take.push_back(l);
      right_take.push_back(it->second);
    }
  }

  const DataFrame left_rows_frame = left.take(left_take);
  const DataFrame right_rows_frame = right.take(right_take);

  DataFrame out;
  out.add_column(key, left_rows_frame.column(key));
  auto disambiguate = [&](const std::string& name, const std::string& suffix,
                          const DataFrame& other) {
    // Suffix when the same column name exists (non-key) in the other frame.
    if (name != key && other.has_column(name)) return name + suffix;
    return name;
  };
  for (const auto& name : left.column_names()) {
    if (name == key) continue;
    out.add_column(disambiguate(name, options.left_suffix, right),
                   left_rows_frame.column(name));
  }
  for (const auto& name : right.column_names()) {
    if (name == key) continue;
    out.add_column(disambiguate(name, options.right_suffix, left),
                   right_rows_frame.column(name));
  }
  return out;
}

}  // namespace bw::df
