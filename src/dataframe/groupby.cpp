#include "dataframe/groupby.hpp"

#include <limits>
#include <unordered_map>

#include "common/error.hpp"

namespace bw::df {

std::string to_string(Aggregation agg) {
  switch (agg) {
    case Aggregation::kMean: return "mean";
    case Aggregation::kMin: return "min";
    case Aggregation::kMax: return "max";
    case Aggregation::kSum: return "sum";
    case Aggregation::kCount: return "count";
  }
  return "?";
}

DataFrame group_by(const DataFrame& frame, const std::string& key,
                   const std::vector<GroupBySpec>& specs) {
  BW_CHECK_MSG(frame.has_column(key), "group_by: missing key '" + key + "'");
  const Column& key_col = frame.column(key);

  // Stable group discovery: first-appearance order.
  std::unordered_map<std::string, std::size_t> group_of;
  std::vector<std::vector<std::size_t>> group_rows;
  std::vector<std::size_t> group_first_row;
  for (std::size_t r = 0; r < frame.num_rows(); ++r) {
    const std::string k = key_col.cell_to_string(r);
    auto [it, inserted] = group_of.try_emplace(k, group_rows.size());
    if (inserted) {
      group_rows.emplace_back();
      group_first_row.push_back(r);
    }
    group_rows[it->second].push_back(r);
  }

  DataFrame out;
  out.add_column(key, key_col.take(group_first_row));

  for (const auto& spec : specs) {
    const Column& values = frame.column(spec.value_column);
    std::vector<double> agg_values;
    agg_values.reserve(group_rows.size());
    for (const auto& rows : group_rows) {
      double acc;
      switch (spec.aggregation) {
        case Aggregation::kCount:
          acc = static_cast<double>(rows.size());
          break;
        case Aggregation::kMean: {
          double sum = 0.0;
          for (std::size_t r : rows) sum += values.numeric_at(r);
          acc = rows.empty() ? 0.0 : sum / static_cast<double>(rows.size());
          break;
        }
        case Aggregation::kSum: {
          double sum = 0.0;
          for (std::size_t r : rows) sum += values.numeric_at(r);
          acc = sum;
          break;
        }
        case Aggregation::kMin: {
          acc = std::numeric_limits<double>::infinity();
          for (std::size_t r : rows) acc = std::min(acc, values.numeric_at(r));
          break;
        }
        case Aggregation::kMax: {
          acc = -std::numeric_limits<double>::infinity();
          for (std::size_t r : rows) acc = std::max(acc, values.numeric_at(r));
          break;
        }
        default:
          throw InvalidArgument("unknown aggregation");
      }
      agg_values.push_back(acc);
    }
    out.add_column(spec.value_column + "_" + to_string(spec.aggregation),
                   Column(std::move(agg_values)));
  }
  return out;
}

}  // namespace bw::df
