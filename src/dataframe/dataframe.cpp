#include "dataframe/dataframe.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace bw::df {

std::size_t DataFrame::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  throw InvalidArgument("no such column: " + name);
}

void DataFrame::add_column(const std::string& name, Column column) {
  BW_CHECK_MSG(!name.empty(), "column name must be non-empty");
  for (const auto& existing : names_) {
    BW_CHECK_MSG(existing != name, "duplicate column name: " + name);
  }
  if (!columns_.empty()) {
    BW_CHECK_MSG(column.size() == num_rows(),
                 "column '" + name + "' size mismatch with existing frame");
  }
  names_.push_back(name);
  columns_.push_back(std::move(column));
}

void DataFrame::set_column(const std::string& name, Column column) {
  const std::size_t i = index_of(name);
  BW_CHECK_MSG(column.size() == num_rows(), "set_column: size mismatch");
  columns_[i] = std::move(column);
}

std::size_t DataFrame::num_rows() const {
  return columns_.empty() ? 0 : columns_.front().size();
}

bool DataFrame::has_column(const std::string& name) const {
  for (const auto& existing : names_) {
    if (existing == name) return true;
  }
  return false;
}

const Column& DataFrame::column(const std::string& name) const {
  return columns_[index_of(name)];
}

DataFrame DataFrame::select(const std::vector<std::string>& names) const {
  DataFrame out;
  for (const auto& name : names) out.add_column(name, column(name));
  return out;
}

DataFrame DataFrame::filter(const std::function<bool(std::size_t)>& predicate) const {
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < num_rows(); ++r) {
    if (predicate(r)) rows.push_back(r);
  }
  return take(rows);
}

DataFrame DataFrame::filter_numeric(const std::string& name,
                                    const std::function<bool(double)>& predicate) const {
  const Column& col = column(name);
  return filter([&](std::size_t r) { return predicate(col.numeric_at(r)); });
}

DataFrame DataFrame::take(const std::vector<std::size_t>& rows) const {
  DataFrame out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    out.add_column(names_[i], columns_[i].take(rows));
  }
  return out;
}

DataFrame DataFrame::head(std::size_t n) const {
  std::vector<std::size_t> rows;
  const std::size_t take_n = std::min(n, num_rows());
  rows.reserve(take_n);
  for (std::size_t r = 0; r < take_n; ++r) rows.push_back(r);
  return take(rows);
}

void DataFrame::append_rows(const DataFrame& other) {
  BW_CHECK_MSG(names_ == other.names_, "append_rows: schema (names) mismatch");
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    BW_CHECK_MSG(columns_[i].type() == other.columns_[i].type(),
                 "append_rows: column type mismatch for '" + names_[i] + "'");
    for (std::size_t r = 0; r < other.num_rows(); ++r) {
      columns_[i].append_from(other.columns_[i], r);
    }
  }
}

std::vector<double> DataFrame::to_row_major(const std::vector<std::string>& names) const {
  std::vector<const Column*> cols;
  cols.reserve(names.size());
  for (const auto& name : names) cols.push_back(&column(name));
  std::vector<double> out;
  out.reserve(num_rows() * names.size());
  for (std::size_t r = 0; r < num_rows(); ++r) {
    for (const Column* col : cols) out.push_back(col->numeric_at(r));
  }
  return out;
}

std::vector<std::pair<std::string, bw::Summary>> DataFrame::describe() const {
  std::vector<std::pair<std::string, bw::Summary>> out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type() == ColumnType::kString) continue;
    out.emplace_back(names_[i], bw::summarize(columns_[i].as_doubles()));
  }
  return out;
}

std::string DataFrame::to_string(std::size_t max_rows) const {
  if (columns_.empty()) return "(empty frame)\n";
  bw::Table table(names_);
  const std::size_t n = std::min(max_rows, num_rows());
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    row.reserve(columns_.size());
    for (const auto& col : columns_) row.push_back(col.cell_to_string(r));
    table.add_row(std::move(row));
  }
  std::ostringstream os;
  os << table.to_string();
  if (num_rows() > n) os << "... (" << num_rows() << " rows total)\n";
  return os.str();
}

}  // namespace bw::df
