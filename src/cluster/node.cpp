#include "cluster/node.hpp"

#include "common/error.hpp"

namespace bw::cluster {

Node::Node(std::string name, double cpu_capacity, double memory_gb_capacity)
    : name_(std::move(name)), cpu_capacity_(cpu_capacity), memory_capacity_gb_(memory_gb_capacity) {
  BW_CHECK_MSG(!name_.empty(), "node needs a name");
  BW_CHECK_MSG(cpu_capacity > 0 && memory_gb_capacity > 0, "node capacity must be positive");
}

bool Node::fits(double cpu_request, double memory_gb_request) const {
  constexpr double kEps = 1e-9;  // tolerate accumulated float error
  return cpu_request <= cpu_free() + kEps && memory_gb_request <= memory_free_gb() + kEps;
}

void Node::allocate(double cpu_request, double memory_gb_request) {
  BW_CHECK_MSG(cpu_request >= 0 && memory_gb_request >= 0, "negative resource request");
  BW_CHECK_MSG(fits(cpu_request, memory_gb_request),
               "request does not fit on node " + name_);
  cpu_used_ += cpu_request;
  memory_used_gb_ += memory_gb_request;
}

void Node::release(double cpu_request, double memory_gb_request) {
  constexpr double kEps = 1e-9;
  BW_CHECK_MSG(cpu_used_ + kEps >= cpu_request && memory_used_gb_ + kEps >= memory_gb_request,
               "releasing more than allocated on node " + name_);
  cpu_used_ = std::max(0.0, cpu_used_ - cpu_request);
  memory_used_gb_ = std::max(0.0, memory_used_gb_ - memory_gb_request);
}

}  // namespace bw::cluster
