#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace bw::cluster {

std::string to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFirstFit: return "first-fit";
    case PlacementPolicy::kBestFit: return "best-fit";
    case PlacementPolicy::kWorstFit: return "worst-fit";
  }
  return "?";
}

ClusterSim::ClusterSim(std::vector<Node> nodes, PlacementPolicy policy)
    : nodes_(std::move(nodes)), policy_(policy) {
  BW_CHECK_MSG(!nodes_.empty(), "cluster needs at least one node");
}

PodId ClusterSim::submit(double time_s, PodSpec pod) {
  BW_CHECK_MSG(time_s >= now_, "cannot submit in the past");
  BW_CHECK_MSG(pod.cpu_request > 0 && pod.memory_gb_request > 0,
               "pod resource requests must be positive");
  BW_CHECK_MSG(pod.duration_s > 0, "pod duration must be positive");
  const bool can_ever_fit = std::any_of(nodes_.begin(), nodes_.end(), [&](const Node& n) {
    return pod.cpu_request <= n.cpu_capacity() && pod.memory_gb_request <= n.memory_capacity_gb();
  });
  BW_CHECK_MSG(can_ever_fit, "pod '" + pod.name + "' exceeds every node's capacity");

  PodRecord record;
  record.spec = std::move(pod);
  record.submit_s = time_s;
  records_.push_back(std::move(record));
  const PodId id = records_.size() - 1;
  submit_events_.push({time_s, id});
  return id;
}

std::optional<std::size_t> ClusterSim::pick_node(const PodSpec& pod) const {
  std::optional<std::size_t> best;
  double best_metric = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].fits(pod.cpu_request, pod.memory_gb_request)) continue;
    const double cpu_left = nodes_[i].cpu_free() - pod.cpu_request;
    switch (policy_) {
      case PlacementPolicy::kFirstFit:
        return i;
      case PlacementPolicy::kBestFit:
        if (!best || cpu_left < best_metric) {
          best = i;
          best_metric = cpu_left;
        }
        break;
      case PlacementPolicy::kWorstFit:
        if (!best || cpu_left > best_metric) {
          best = i;
          best_metric = cpu_left;
        }
        break;
    }
  }
  return best;
}

void ClusterSim::try_start(PodId id) {
  PodRecord& record = records_[id];
  const std::optional<std::size_t> node_index = pick_node(record.spec);
  if (!node_index) {
    pending_.push_back(id);
    return;
  }
  Node& node = nodes_[*node_index];
  // Contention reflects co-tenants: how busy the node already is when this
  // pod lands (its own request does not slow itself down).
  const double utilization_before = node.utilization();
  node.allocate(record.spec.cpu_request, record.spec.memory_gb_request);
  record.phase = PodPhase::kRunning;
  record.node = node_index;
  record.start_s = now_;
  record.inflation = hw::PerfModel::contention_inflation(utilization_before);
  record.finish_s = now_ + record.spec.duration_s * record.inflation;
  finish_events_.push({record.finish_s, id});
}

void ClusterSim::drain_pending() {
  // FIFO retry: keep starting pods until one cannot be placed (strict FIFO
  // fairness — later pods do not jump the queue).
  while (!pending_.empty()) {
    const PodId id = pending_.front();
    const std::optional<std::size_t> node_index = pick_node(records_[id].spec);
    if (!node_index) return;
    pending_.erase(pending_.begin());
    try_start(id);
  }
}

void ClusterSim::process_events_until(double limit, bool stop_when_idle) {
  for (;;) {
    const bool has_submit = !submit_events_.empty();
    const bool has_finish = !finish_events_.empty();
    if (!has_submit && !has_finish) {
      if (!stop_when_idle) now_ = std::max(now_, limit);
      return;
    }
    const double next_submit = has_submit ? submit_events_.top().time
                                          : std::numeric_limits<double>::infinity();
    const double next_finish = has_finish ? finish_events_.top().time
                                          : std::numeric_limits<double>::infinity();
    const double next_time = std::min(next_submit, next_finish);
    if (next_time > limit) {
      now_ = limit;
      return;
    }
    now_ = next_time;
    // Process finishes before submits at equal timestamps so freed
    // resources are visible to pods arriving "at the same moment".
    if (next_finish <= next_submit) {
      const PodId id = finish_events_.top().pod;
      finish_events_.pop();
      PodRecord& record = records_[id];
      record.phase = PodPhase::kCompleted;
      nodes_[*record.node].release(record.spec.cpu_request, record.spec.memory_gb_request);
      drain_pending();
    } else {
      const PodId id = submit_events_.top().pod;
      submit_events_.pop();
      try_start(id);
    }
  }
}

void ClusterSim::run_until_idle() {
  process_events_until(std::numeric_limits<double>::infinity(), /*stop_when_idle=*/true);
}

void ClusterSim::run_until(double until_s) {
  BW_CHECK_MSG(until_s >= now_, "cannot run backwards in time");
  process_events_until(until_s, /*stop_when_idle=*/false);
}

const PodRecord& ClusterSim::record(PodId id) const {
  BW_CHECK_MSG(id < records_.size(), "pod id out of range");
  return records_[id];
}

ClusterStats ClusterSim::stats() const {
  ClusterStats stats;
  RunningStats wait;
  RunningStats runtime;
  RunningStats inflation;
  for (const auto& record : records_) {
    switch (record.phase) {
      case PodPhase::kPending: ++stats.pending; break;
      case PodPhase::kRunning: ++stats.running; break;
      case PodPhase::kCompleted:
        ++stats.completed;
        wait.add(record.wait_s());
        runtime.add(record.runtime_s());
        inflation.add(record.inflation);
        stats.makespan_s = std::max(stats.makespan_s, record.finish_s);
        break;
    }
  }
  stats.mean_wait_s = wait.mean();
  stats.mean_runtime_s = runtime.mean();
  stats.mean_inflation = inflation.count() ? inflation.mean() : 1.0;
  return stats;
}

}  // namespace bw::cluster
