#pragma once
// Discrete-event simulation of a heterogeneous Kubernetes-like cluster:
// pods are submitted over time, a bin-packing policy places them on nodes,
// contention on busy nodes inflates runtimes, and finished pods free their
// resources (unblocking the FIFO pending queue).
//
// This is the stand-in for the National Data Platform testbed — the
// ndp_cluster_sim example runs BanditWare *inside* this loop: the bandit
// picks the hardware request for each workflow, the simulated cluster
// produces the observed runtime, and the observation updates the bandit.

#include <cstddef>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "hardware/perf_model.hpp"

namespace bw::cluster {

using PodId = std::size_t;

enum class PlacementPolicy {
  kFirstFit,  ///< first node with room (node order)
  kBestFit,   ///< feasible node with the least CPU left after placement
  kWorstFit,  ///< feasible node with the most CPU left after placement
};

std::string to_string(PlacementPolicy policy);

enum class PodPhase { kPending, kRunning, kCompleted };

struct PodRecord {
  PodSpec spec;
  PodPhase phase = PodPhase::kPending;
  double submit_s = 0.0;
  double start_s = 0.0;
  double finish_s = 0.0;
  double inflation = 1.0;           ///< contention multiplier applied
  std::optional<std::size_t> node;  ///< index into nodes()

  double wait_s() const { return start_s - submit_s; }
  double runtime_s() const { return finish_s - start_s; }
};

struct ClusterStats {
  std::size_t completed = 0;
  std::size_t pending = 0;
  std::size_t running = 0;
  double mean_wait_s = 0.0;
  double mean_runtime_s = 0.0;
  double mean_inflation = 1.0;
  double makespan_s = 0.0;  ///< last finish time observed
};

class ClusterSim {
 public:
  ClusterSim(std::vector<Node> nodes, PlacementPolicy policy = PlacementPolicy::kBestFit);

  /// Submits a pod at simulation time `time_s` (>= current time). Returns
  /// the pod id. Throws InvalidArgument if the pod can never fit on any
  /// node (avoids an eternally pending queue).
  PodId submit(double time_s, PodSpec pod);

  /// Advances the simulation until all submitted pods have completed.
  void run_until_idle();

  /// Advances until simulation time reaches `until_s` (events at exactly
  /// `until_s` are processed).
  void run_until(double until_s);

  double now() const { return now_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const PodRecord& record(PodId id) const;
  std::size_t num_pods() const { return records_.size(); }

  ClusterStats stats() const;

 private:
  struct FinishEvent {
    double time;
    PodId pod;
    bool operator>(const FinishEvent& other) const {
      return time > other.time || (time == other.time && pod > other.pod);
    }
  };
  struct SubmitEvent {
    double time;
    PodId pod;
    bool operator>(const SubmitEvent& other) const {
      return time > other.time || (time == other.time && pod > other.pod);
    }
  };

  std::optional<std::size_t> pick_node(const PodSpec& pod) const;
  void try_start(PodId id);
  void drain_pending();
  void process_events_until(double limit, bool stop_when_idle);

  std::vector<Node> nodes_;
  PlacementPolicy policy_;
  double now_ = 0.0;
  std::vector<PodRecord> records_;
  std::priority_queue<FinishEvent, std::vector<FinishEvent>, std::greater<>> finish_events_;
  std::priority_queue<SubmitEvent, std::vector<SubmitEvent>, std::greater<>> submit_events_;
  std::vector<PodId> pending_;  ///< FIFO of pods waiting for resources
};

}  // namespace bw::cluster
