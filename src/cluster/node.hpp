#pragma once
// Cluster nodes and pod requests — the Kubernetes-flavored vocabulary of
// the NDP testbed the paper deploys on. A "hardware setting" H_i in the
// paper is a pod resource request (cpus, memory) placed on such a node.

#include <string>

#include "hardware/spec.hpp"

namespace bw::cluster {

/// A schedulable machine with allocatable capacity and current usage.
class Node {
 public:
  Node(std::string name, double cpu_capacity, double memory_gb_capacity);

  const std::string& name() const { return name_; }
  double cpu_capacity() const { return cpu_capacity_; }
  double memory_capacity_gb() const { return memory_capacity_gb_; }
  double cpu_used() const { return cpu_used_; }
  double memory_used_gb() const { return memory_used_gb_; }

  double cpu_free() const { return cpu_capacity_ - cpu_used_; }
  double memory_free_gb() const { return memory_capacity_gb_ - memory_used_gb_; }

  /// CPU utilization fraction in [0, 1].
  double utilization() const { return cpu_capacity_ > 0 ? cpu_used_ / cpu_capacity_ : 0.0; }

  bool fits(double cpu_request, double memory_gb_request) const;

  /// Reserves resources; throws InvalidArgument if the request does not fit.
  void allocate(double cpu_request, double memory_gb_request);

  /// Releases resources; throws InvalidArgument on over-release.
  void release(double cpu_request, double memory_gb_request);

 private:
  std::string name_;
  double cpu_capacity_;
  double memory_capacity_gb_;
  double cpu_used_ = 0.0;
  double memory_used_gb_ = 0.0;
};

/// A workload submission: the resource request mirrors a hardware setting
/// H = (#cpus, memory) and `duration_s` is its uncontended runtime there.
struct PodSpec {
  std::string name;
  double cpu_request = 1.0;
  double memory_gb_request = 1.0;
  double duration_s = 1.0;
};

}  // namespace bw::cluster
