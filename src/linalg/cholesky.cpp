#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bw::linalg {

namespace {

/// Averages the off-diagonal halves in place. Computed SPD inverses are
/// symmetric only up to solve round-off; downstream factorizations and
/// merges expect exact symmetry.
void symmetrize(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = r + 1; c < m.cols(); ++c) {
      const double mean = 0.5 * (m(r, c) + m(c, r));
      m(r, c) = mean;
      m(c, r) = mean;
    }
  }
}

}  // namespace

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  BW_CHECK_MSG(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::solve_lower(const Vector& b) const {
  const std::size_t n = l_.rows();
  BW_CHECK_MSG(b.size() == n, "Cholesky solve: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  return y;
}

Vector Cholesky::solve_upper(const Vector& y) const {
  const std::size_t n = l_.rows();
  BW_CHECK_MSG(y.size() == n, "Cholesky solve: size mismatch");
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l_(k, i) * x[k];
    x[i] = sum / l_(i, i);
  }
  return x;
}

Vector Cholesky::solve(const Vector& b) const { return solve_upper(solve_lower(b)); }

double Cholesky::log_det() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

Matrix Cholesky::inverse() const {
  const std::size_t n = l_.rows();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    const Vector col = solve(e);
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
    e[c] = 0.0;
  }
  symmetrize(inv);
  return inv;
}

Cholesky factor_spd(const Matrix& a, double jitter) {
  // A symmetric PSD matrix never has a negative diagonal entry; seeing one
  // means the caller's matrix is not a Gram/covariance matrix at all, and
  // no amount of regularization would make the answer meaningful.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    if (a(i, i) < 0.0) {
      throw NumericalError("factor_spd: negative diagonal entry — matrix is not PSD");
    }
  }
  if (auto chol = Cholesky::factor(a)) return *chol;
  // Escalate jitter relative to the matrix scale; an absolute epsilon is
  // useless when diagonal entries are ~1e19 (squared byte counts).
  double diag_scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) diag_scale += std::abs(a(i, i));
  diag_scale = std::max(1.0, diag_scale / static_cast<double>(a.rows()));
  Matrix regularized = a;
  double bump = std::max(jitter, diag_scale * 1e-14);
  for (int attempt = 0; attempt < 6; ++attempt) {
    for (std::size_t i = 0; i < regularized.rows(); ++i) regularized(i, i) += bump;
    if (auto chol = Cholesky::factor(regularized)) return *chol;
    bump *= 1000.0;
  }
  throw NumericalError("factor_spd: matrix is not positive definite even after jitter");
}

Vector solve_spd(const Matrix& a, const Vector& b, double jitter) {
  return factor_spd(a, jitter).solve(b);
}

Matrix invert_spd(const Matrix& a, double jitter) {
  Matrix inv = factor_spd(a, jitter).inverse();
  // One Newton–Schulz step (X <- X (2I - A X)) roughly squares the inverse
  // residual. Sufficient-statistics merges chain inversions (P -> A -> P),
  // so the extra digits keep the fused model within 1e-9 of single-stream
  // training even on ill-conditioned Gram matrices.
  Matrix correction = Matrix::identity(a.rows()) * 2.0 - a * inv;
  inv = inv * correction;
  symmetrize(inv);
  return inv;
}

}  // namespace bw::linalg
