#include "linalg/qr.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bw::linalg {

HouseholderQr::HouseholderQr(const Matrix& a) : qr_(a) {
  BW_CHECK_MSG(a.rows() > 0 && a.cols() > 0, "QR of empty matrix");
  BW_CHECK_MSG(a.rows() >= a.cols(), "QR requires rows >= cols (tall matrix)");
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  beta_.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector annihilating column k below the diagonal.
    double norm_sq = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_sq += qr_(i, k) * qr_(i, k);
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) {  // column already zero; skip (rank deficiency shows in R)
      beta_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0 ? -norm : norm;
    const double vk = qr_(k, k) - alpha;
    // v = (vk, a_{k+1,k}, ..., a_{m-1,k}); beta = 2 / (v^T v)
    double vtv = vk * vk;
    for (std::size_t i = k + 1; i < m; ++i) vtv += qr_(i, k) * qr_(i, k);
    beta_[k] = vtv > 0.0 ? 2.0 / vtv : 0.0;

    // Store v in the column (diagonal holds vk for the apply step).
    qr_(k, k) = vk;

    // Apply reflector to the remaining columns: A <- (I - beta v v^T) A.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= beta_[k];
      for (std::size_t i = k; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
    // The diagonal of R is alpha; stash it after applying (store v then fix
    // up by remembering alpha in a separate pass). We overwrite below.
    // To keep storage compact we put alpha on the diagonal and keep vk in
    // beta-normalized form: instead, store v scaled so v_k = 1.
    const double inv_vk = vk != 0.0 ? 1.0 / vk : 0.0;
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) *= inv_vk;
    beta_[k] = vtv > 0.0 ? beta_[k] * vk * vk : 0.0;  // beta for normalized v
    qr_(k, k) = alpha;  // R diagonal
  }
}

Vector HouseholderQr::apply_qt(const Vector& b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  BW_CHECK_MSG(b.size() == m, "apply_qt: size mismatch");
  Vector y = b;
  for (std::size_t k = 0; k < n; ++k) {
    if (beta_[k] == 0.0) continue;
    // v = (1, qr_(k+1..m-1, k))
    double s = y[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s *= beta_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) y[i] -= s * qr_(i, k);
  }
  return y;
}

Vector HouseholderQr::solve(const Vector& b) const {
  const std::size_t n = qr_.cols();
  Vector y = apply_qt(b);
  // Back-substitute R x = y[0..n).
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    const double rii = qr_(i, i);
    if (std::abs(rii) < 1e-12) {
      throw NumericalError("HouseholderQr::solve: R is numerically singular");
    }
    double sum = y[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= qr_(i, j) * x[j];
    x[i] = sum / rii;
  }
  return x;
}

Matrix HouseholderQr::r() const {
  const std::size_t n = qr_.cols();
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) out(i, j) = qr_(i, j);
  }
  return out;
}

double HouseholderQr::min_diag_abs() const {
  double min_abs = std::abs(qr_(0, 0));
  for (std::size_t i = 1; i < qr_.cols(); ++i) {
    min_abs = std::min(min_abs, std::abs(qr_(i, i)));
  }
  return min_abs;
}

}  // namespace bw::linalg
