#pragma once
// Row-major dense double matrix plus the vector operations the bandit
// framework needs. Deliberately small: the per-arm models are (m+1)-dim
// with m <= ~10, so clarity beats BLAS-style blocking here. The *workload*
// matmul kernel (src/apps/matmul.hpp) is the tuned one.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace bw::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// Construct from nested initializer list; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix transposed() const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;  ///< naive O(n^3) product
  Matrix operator*(double scalar) const;

  Vector operator*(const Vector& x) const;  ///< matrix-vector product

  bool operator==(const Matrix& other) const = default;

  /// max |a_ij - b_ij|; matrices must have identical shape.
  double max_abs_diff(const Matrix& other) const;

  double frobenius_norm() const;

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- free vector operations -------------------------------------------

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
Vector add(std::span<const double> a, std::span<const double> b);
Vector subtract(std::span<const double> a, std::span<const double> b);
Vector scale(std::span<const double> a, double s);

/// a += s * b (axpy).
void axpy(double s, std::span<const double> b, std::span<double> a);

/// Outer product a b^T as a dense matrix.
Matrix outer(std::span<const double> a, std::span<const double> b);

/// true iff every element is finite.
bool all_finite(std::span<const double> xs);

}  // namespace bw::linalg
