#include "linalg/intercept.hpp"

namespace bw::linalg {

Vector with_intercept(std::span<const double> x) {
  Vector out;
  with_intercept_into(x, out);
  return out;
}

void with_intercept_into(std::span<const double> x, Vector& out) {
  out.resize(x.size() + 1);
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i];
  out[x.size()] = 1.0;
}

Matrix with_intercept_column(const Matrix& x) {
  Matrix design(x.rows(), x.cols() + 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) design(r, c) = x(r, c);
    design(r, x.cols()) = 1.0;
  }
  return design;
}

}  // namespace bw::linalg
