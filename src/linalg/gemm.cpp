#include "linalg/gemm.hpp"

namespace bw::linalg {

// Runtime-dispatched SIMD clones (GNU ifunc): the repo never sets -march, so
// plain -O3 vectorizes these loops with 16-byte SSE2 vectors only. The avx2
// clone widens them to 32 bytes on hosts that have it, picked at load time —
// no illegal instructions on older CPUs. FP safety: vectorizing across j
// (independent output accumulators) never reorders any single accumulator's
// k-sequence, and AVX2 alone does not enable FMA, so no mul+add contraction
// can change the rounding — the byte-identity contract in gemm.hpp holds in
// every clone. TSan builds skip the clones: the GNU ifunc resolver runs
// during relocation, before the TSan runtime initializes, and segfaults
// (reproducible with a 3-line target_clones program under -fsanitize=thread
// on this toolchain). Identical results either way, so nothing is lost.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(__SANITIZE_THREAD__)
#define BW_KERNEL_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define BW_KERNEL_CLONES
#endif

BW_KERNEL_CLONES
void gemm_rm(const double* a, std::size_t m, std::size_t k, const double* b,
             std::size_t n, double* c) {
  if (n == 1) {
    // Matrix-vector fast path: per-row dot — no zero pass, no row
    // re-streaming. Identical value sequence (k ascending from 0.0).
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a + i * k;
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * b[kk];
      c[i] = acc;
    }
    return;
  }
  // Row-axpy accumulation: C's row i starts at 0.0 and absorbs B's rows in
  // ascending kk order, so each C(i, j) sees exactly the linalg::dot value
  // sequence (the byte-identity contract in gemm.hpp). All inner loops run
  // unit-stride over j, which is what lets them vectorize; unrolling kk by
  // 4 inside one j pass quarters the C-row load/store re-streaming without
  // touching the per-element rounding order — the four adds chain in kk
  // order within the pass, the same chain the one-kk-at-a-time loop builds
  // across passes. An L1-resident C row makes this comfortably faster than
  // a register-tiled variant here, whose short k trip (d + 1) leaves its
  // accumulator tile bouncing through the stack.
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0;
    std::size_t kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const double a0 = arow[kk];
      const double a1 = arow[kk + 1];
      const double a2 = arow[kk + 2];
      const double a3 = arow[kk + 3];
      const double* b0 = b + kk * n;
      const double* b1 = b0 + n;
      const double* b2 = b1 + n;
      const double* b3 = b2 + n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] = (((crow[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
      }
    }
    for (; kk < k; ++kk) {
      const double ak = arow[kk];
      const double* bk = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += ak * bk[j];
    }
  }
}

void score_block(const double* plane_t, std::size_t arms, std::size_t k,
                 const double* ctx, std::size_t n, double* out) {
  // out (n x arms) = ctx (n x k) * plane_t (k x arms): with the plane
  // transposed, scoring IS a row-major GEMM whose inner loop streams across
  // arms — unit-stride loads from plane_t, unit-stride stores into out, and
  // the per-element k order gemm_rm already guarantees.
  gemm_rm(ctx, n, k, plane_t, arms, out);
}

}  // namespace bw::linalg
