#include "linalg/matrix.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace bw::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    BW_CHECK_MSG(row.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  BW_CHECK_MSG(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  BW_CHECK_MSG(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  BW_CHECK_MSG(r < rows_, "Matrix row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  BW_CHECK_MSG(r < rows_, "Matrix row out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator+(const Matrix& other) const {
  BW_CHECK_MSG(rows_ == other.rows_ && cols_ == other.cols_, "Matrix shape mismatch in +");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  BW_CHECK_MSG(rows_ == other.rows_ && cols_ == other.cols_, "Matrix shape mismatch in -");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  BW_CHECK_MSG(cols_ == other.rows_, "Matrix shape mismatch in *");
  Matrix out(rows_, other.cols_);
  // i-k-j order keeps the inner loop contiguous in both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * scalar;
  return out;
}

Vector Matrix::operator*(const Vector& x) const {
  BW_CHECK_MSG(cols_ == x.size(), "Matrix-vector shape mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) y[r] = dot(row(r), x);
  return y;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  BW_CHECK_MSG(rows_ == other.rows_ && cols_ == other.cols_, "Matrix shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << '[';
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (*this)(r, c);
      if (c + 1 < cols_) os << ", ";
    }
    os << "]\n";
  }
  return os.str();
}

double dot(std::span<const double> a, std::span<const double> b) {
  BW_CHECK_MSG(a.size() == b.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

Vector add(std::span<const double> a, std::span<const double> b) {
  BW_CHECK_MSG(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector subtract(std::span<const double> a, std::span<const double> b) {
  BW_CHECK_MSG(a.size() == b.size(), "subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scale(std::span<const double> a, double s) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void axpy(double s, std::span<const double> b, std::span<double> a) {
  BW_CHECK_MSG(a.size() == b.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

Matrix outer(std::span<const double> a, std::span<const double> b) {
  Matrix out(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) out(i, j) = a[i] * b[j];
  }
  return out;
}

bool all_finite(std::span<const double> xs) {
  for (double x : xs) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace bw::linalg
