#include "linalg/lstsq.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/intercept.hpp"
#include "linalg/qr.hpp"

namespace bw::linalg {

double LinearModel::predict(std::span<const double> x) const {
  BW_CHECK_MSG(x.size() == weights.size(), "LinearModel::predict: feature size mismatch");
  return dot(weights, x) + bias;
}

Vector LinearModel::predict_rows(const Matrix& x) const {
  Vector out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

std::string LinearModel::to_string() const {
  std::ostringstream os;
  os << "R(x) = ";
  for (std::size_t i = 0; i < weights.size(); ++i) {
    os << weights[i] << "*x" << i << " + ";
  }
  os << bias << "  (n=" << n_observations << ")";
  return os.str();
}

namespace {

/// Ridge solve via the normal equations: (X^T X + lambda I) theta = X^T y
/// with lambda = ridge plus a relative term scaled to the Gram diagonal —
/// features can live on wildly different scales (BP3D mixes moisture
/// fractions ~0.1 with RSS limits ~4e9), so an absolute jitter alone can
/// be 20 orders of magnitude too small to make the matrix numerically PD.
Vector ridge_solve(const Matrix& design, const Vector& y, double ridge) {
  const std::size_t p = design.cols();
  Matrix gram(p, p);
  double diag_sum = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i; j < p; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < design.rows(); ++r) s += design(r, i) * design(r, j);
      gram(i, j) = s;
      gram(j, i) = s;
    }
    diag_sum += gram(i, i);
  }
  const double relative = 1e-12 * (diag_sum / static_cast<double>(p));
  const double lambda = ridge + relative;
  for (std::size_t i = 0; i < p; ++i) gram(i, i) += lambda;
  Vector xty(p, 0.0);
  for (std::size_t r = 0; r < design.rows(); ++r) {
    for (std::size_t i = 0; i < p; ++i) xty[i] += design(r, i) * y[r];
  }
  return solve_spd(gram, xty, std::max(lambda * 1e-6, 1e-12));
}

}  // namespace

FitResult fit_linear(const Matrix& x, const Vector& y, const FitOptions& options) {
  BW_CHECK_MSG(x.rows() == y.size(), "fit_linear: row/target count mismatch");
  BW_CHECK_MSG(x.rows() >= 1, "fit_linear: empty dataset");
  BW_CHECK_MSG(all_finite(std::span<const double>(x.data())), "fit_linear: non-finite feature");
  BW_CHECK_MSG(all_finite(y), "fit_linear: non-finite target");

  const Matrix design = options.intercept ? with_intercept_column(x) : x;
  const std::size_t p = design.cols();

  Vector theta;
  const bool underdetermined = design.rows() < p;
  if (options.ridge > 0.0 || underdetermined) {
    const double ridge = options.ridge > 0.0 ? options.ridge : options.fallback_ridge;
    theta = ridge_solve(design, y, ridge);
  } else {
    try {
      HouseholderQr qr(design);
      if (qr.min_diag_abs() < 1e-10) {
        theta = ridge_solve(design, y, options.fallback_ridge);
      } else {
        theta = qr.solve(y);
      }
    } catch (const NumericalError&) {
      theta = ridge_solve(design, y, options.fallback_ridge);
    }
  }

  FitResult result;
  result.model.n_observations = x.rows();
  if (options.intercept) {
    result.model.weights.assign(theta.begin(), theta.end() - 1);
    result.model.bias = theta.back();
  } else {
    result.model.weights = theta;
    result.model.bias = 0.0;
  }

  const Vector predictions = result.model.predict_rows(x);
  result.train_rmse = bw::rmse(predictions, y);
  result.train_r_squared = bw::r_squared(predictions, y);
  return result;
}

FitResult fit_linear_1d(std::span<const double> x, std::span<const double> y,
                        const FitOptions& options) {
  BW_CHECK_MSG(x.size() == y.size(), "fit_linear_1d: size mismatch");
  Matrix design(x.size(), 1);
  for (std::size_t i = 0; i < x.size(); ++i) design(i, 0) = x[i];
  return fit_linear(design, Vector(y.begin(), y.end()), options);
}

}  // namespace bw::linalg
