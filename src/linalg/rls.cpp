#include "linalg/rls.hpp"

#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/intercept.hpp"

namespace bw::linalg {

RecursiveLeastSquares::RecursiveLeastSquares(std::size_t dim, double ridge)
    : dim_(dim), ridge_(ridge) {
  BW_CHECK_MSG(ridge > 0.0, "RLS requires a positive ridge prior");
  reset();
}

void RecursiveLeastSquares::reset() {
  const std::size_t p = dim_ + 1;
  p_ = Matrix(p, p);
  for (std::size_t i = 0; i < p; ++i) p_(i, i) = 1.0 / ridge_;
  theta_.assign(p, 0.0);
  n_ = 0;
}

void RecursiveLeastSquares::update(std::span<const double> x, double y) {
  BW_CHECK_MSG(x.size() == dim_, "RLS: feature size mismatch");
  BW_CHECK_MSG(all_finite(x), "RLS: non-finite feature");
  with_intercept_into(x, xa_scratch_);
  const Vector& xa = xa_scratch_;
  const std::size_t p = xa.size();

  // k = P x / (1 + x^T P x); theta += k (y - x^T theta); P -= k x^T P.
  px_scratch_.resize(p);  // every element is overwritten below
  Vector& px = px_scratch_;
  for (std::size_t i = 0; i < p; ++i) {
    const double* row = p_.row(i).data();
    double s = 0.0;
    for (std::size_t j = 0; j < p; ++j) s += row[j] * xa[j];
    px[i] = s;
  }
  const double denom = 1.0 + dot(xa, px);
  const double err = y - dot(xa, theta_);
  for (std::size_t i = 0; i < p; ++i) theta_[i] += px[i] * err / denom;
  // P <- P - (P x)(x^T P) / denom; exploit symmetry.
  for (std::size_t i = 0; i < p; ++i) {
    double* row = p_.row(i).data();
    const double pxi = px[i] / denom;
    for (std::size_t j = 0; j < p; ++j) row[j] -= pxi * px[j];
  }
  ++n_;
}

double RecursiveLeastSquares::predict(std::span<const double> x) const {
  BW_CHECK_MSG(x.size() == dim_, "RLS: feature size mismatch");
  const Vector xa = with_intercept(x);
  return dot(xa, theta_);
}

Vector RecursiveLeastSquares::weights() const {
  return Vector(theta_.begin(), theta_.end() - 1);
}

double RecursiveLeastSquares::bias() const { return theta_.back(); }

double RecursiveLeastSquares::variance_proxy(std::span<const double> x) const {
  BW_CHECK_MSG(x.size() == dim_, "RLS: feature size mismatch");
  const Vector xa = with_intercept(x);
  return dot(xa, p_ * xa);
}

void RecursiveLeastSquares::merge(const RecursiveLeastSquares& other,
                                  const RecursiveLeastSquares* base) {
  BW_CHECK_MSG(other.dim_ == dim_, "RLS::merge: dimension mismatch");
  BW_CHECK_MSG(other.ridge_ == ridge_,
               "RLS::merge: ridge priors differ — fusion would not be exact");
  if (base != nullptr) {
    BW_CHECK_MSG(base->dim_ == dim_ && base->ridge_ == ridge_,
                 "RLS::merge: base dimension or ridge mismatch");
    BW_CHECK_MSG(base->n_ <= other.n_,
                 "RLS::merge: base holds more observations than other");
    // No evidence beyond the common ancestor — nothing to fold in. (The
    // deterministic update makes identical statistics equivalent to an
    // identical stream.)
    if (other.n_ == base->n_ && other.p_ == base->p_ && other.theta_ == base->theta_) {
      return;
    }
  } else {
    if (other.n_ == 0) return;  // other is the bare prior: exact no-op
    if (n_ == 0) {              // we are the bare prior: adopt other verbatim
      p_ = other.p_;
      theta_ = other.theta_;
      n_ = other.n_;
      return;
    }
  }

  const std::size_t p = dim_ + 1;
  const Matrix a_self = invert_spd(p_);
  const Matrix a_other = invert_spd(other.p_);
  Matrix a = a_self + a_other;
  Vector b = a_self * theta_;
  axpy(1.0, a_other * other.theta_, b);
  std::size_t n = n_ + other.n_;
  if (base != nullptr) {
    const Matrix a_base = invert_spd(base->p_);
    a = a - a_base;
    axpy(-1.0, a_base * base->theta_, b);
    n -= base->n_;
  } else {
    // Both operands carry the ridge prior; keep exactly one copy.
    for (std::size_t i = 0; i < p; ++i) a(i, i) -= ridge_;
  }
  // Solve the fused normal equations; one step of iterative refinement
  // (r = b - A theta, theta += A^{-1} r) recovers the digits the plain
  // solve loses on ill-conditioned Gram matrices — the 1e-9 equivalence
  // property depends on it.
  const Cholesky chol = factor_spd(a);
  Vector theta = chol.solve(b);
  Vector residual(p);
  for (std::size_t i = 0; i < p; ++i) residual[i] = b[i] - dot(a.row(i), theta);
  axpy(1.0, chol.solve(residual), theta);
  theta_ = std::move(theta);
  p_ = invert_spd(a);
  n_ = n;
}

void RecursiveLeastSquares::restore(const Matrix& p, const Vector& theta,
                                    std::size_t n) {
  const std::size_t dim_aug = dim_ + 1;
  BW_CHECK_MSG(p.rows() == dim_aug && p.cols() == dim_aug,
               "RLS::restore: precision matrix shape mismatch");
  BW_CHECK_MSG(theta.size() == dim_aug, "RLS::restore: theta length mismatch");
  BW_CHECK_MSG(all_finite(std::span<const double>(p.data())),
               "RLS::restore: non-finite precision entry");
  BW_CHECK_MSG(all_finite(theta), "RLS::restore: non-finite theta entry");
  p_ = p;
  theta_ = theta;
  n_ = n;
}

}  // namespace bw::linalg
