#include "linalg/rls.hpp"

#include "common/error.hpp"

namespace bw::linalg {

RecursiveLeastSquares::RecursiveLeastSquares(std::size_t dim, double ridge)
    : dim_(dim), ridge_(ridge) {
  BW_CHECK_MSG(ridge > 0.0, "RLS requires a positive ridge prior");
  reset();
}

void RecursiveLeastSquares::reset() {
  const std::size_t p = dim_ + 1;
  p_ = Matrix(p, p);
  for (std::size_t i = 0; i < p; ++i) p_(i, i) = 1.0 / ridge_;
  theta_.assign(p, 0.0);
  n_ = 0;
}

Vector RecursiveLeastSquares::augment(std::span<const double> x) const {
  BW_CHECK_MSG(x.size() == dim_, "RLS: feature size mismatch");
  Vector xa(dim_ + 1);
  for (std::size_t i = 0; i < dim_; ++i) xa[i] = x[i];
  xa[dim_] = 1.0;  // intercept column
  return xa;
}

void RecursiveLeastSquares::update(std::span<const double> x, double y) {
  BW_CHECK_MSG(all_finite(x), "RLS: non-finite feature");
  const Vector xa = augment(x);
  const std::size_t p = xa.size();

  // k = P x / (1 + x^T P x); theta += k (y - x^T theta); P -= k x^T P.
  Vector px = p_ * xa;
  const double denom = 1.0 + dot(xa, px);
  const double err = y - dot(xa, theta_);
  for (std::size_t i = 0; i < p; ++i) theta_[i] += px[i] * err / denom;
  // P <- P - (P x)(x^T P) / denom; exploit symmetry.
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      p_(i, j) -= px[i] * px[j] / denom;
    }
  }
  ++n_;
}

double RecursiveLeastSquares::predict(std::span<const double> x) const {
  const Vector xa = augment(x);
  return dot(xa, theta_);
}

Vector RecursiveLeastSquares::weights() const {
  return Vector(theta_.begin(), theta_.end() - 1);
}

double RecursiveLeastSquares::bias() const { return theta_.back(); }

double RecursiveLeastSquares::variance_proxy(std::span<const double> x) const {
  const Vector xa = augment(x);
  return dot(xa, p_ * xa);
}

}  // namespace bw::linalg
