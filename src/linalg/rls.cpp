#include "linalg/rls.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/intercept.hpp"

namespace bw::linalg {

RecursiveLeastSquares::RecursiveLeastSquares(std::size_t dim, double ridge,
                                             double forgetting)
    : dim_(dim), ridge_(ridge), lambda_(forgetting) {
  BW_CHECK_MSG(ridge > 0.0, "RLS requires a positive ridge prior");
  BW_CHECK_MSG(std::isfinite(forgetting) && forgetting > 0.0 && forgetting <= 1.0,
               "RLS forgetting factor must be in (0, 1]");
  reset();
}

void RecursiveLeastSquares::reset() {
  const std::size_t p = dim_ + 1;
  p_ = Matrix(p, p);
  for (std::size_t i = 0; i < p; ++i) p_(i, i) = 1.0 / ridge_;
  theta_.assign(p, 0.0);
  n_ = 0;
}

void RecursiveLeastSquares::update(std::span<const double> x, double y) {
  BW_CHECK_MSG(x.size() == dim_, "RLS: feature size mismatch");
  BW_CHECK_MSG(all_finite(x), "RLS: non-finite feature");
  with_intercept_into(x, xa_scratch_);
  const Vector& xa = xa_scratch_;
  const std::size_t p = xa.size();

  // Forgetting-factor gain: k = P x / (λ + x^T P x); theta += k (y - x^T
  // theta); P <- (P - k x^T P) / λ. This is Sherman–Morrison on the
  // discounted information recursion A <- λA + xxᵀ, b <- λb + yx. At λ = 1
  // the denominator is 1 + x^T P x and the final rescale is skipped, so the
  // stationary path is bit-identical to the pre-λ update.
  px_scratch_.resize(p);  // every element is overwritten below
  Vector& px = px_scratch_;
  for (std::size_t i = 0; i < p; ++i) {
    const double* row = p_.row(i).data();
    double s = 0.0;
    for (std::size_t j = 0; j < p; ++j) s += row[j] * xa[j];
    px[i] = s;
  }
  const double denom = lambda_ + dot(xa, px);
  const double err = y - dot(xa, theta_);
  for (std::size_t i = 0; i < p; ++i) theta_[i] += px[i] * err / denom;
  // P <- P - (P x)(x^T P) / denom; exploit symmetry.
  if (lambda_ == 1.0) {
    for (std::size_t i = 0; i < p; ++i) {
      double* row = p_.row(i).data();
      const double pxi = px[i] / denom;
      for (std::size_t j = 0; j < p; ++j) row[j] -= pxi * px[j];
    }
  } else {
    // Discounted path: the downdate must use FP-symmetric arithmetic —
    // px[i] * px[j] / denom, divide last — so P(i,j) and P(j,i) round
    // identically and P stays exactly symmetric. The λ=1 precompute
    // (px[i]/denom first) rounds differently across (i,j)/(j,i); that
    // ~1e-16 asymmetry is harmless when λ = 1, but the symmetric rank-one
    // downdate never contracts an asymmetric component, so the 1/λ
    // rescale below amplifies it geometrically (λ^-n) until P — and with
    // it θ — diverges after a few thousand updates. The rescale rides in
    // the same pass (scalar multiply preserves symmetry).
    const double inv_lambda = 1.0 / lambda_;
    for (std::size_t i = 0; i < p; ++i) {
      double* row = p_.row(i).data();
      for (std::size_t j = 0; j < p; ++j) {
        row[j] = (row[j] - px[i] * px[j] / denom) * inv_lambda;
      }
    }
  }
  ++n_;
}

double RecursiveLeastSquares::predict(std::span<const double> x) const {
  BW_CHECK_MSG(x.size() == dim_, "RLS: feature size mismatch");
  const Vector xa = with_intercept(x);
  return dot(xa, theta_);
}

Vector RecursiveLeastSquares::weights() const {
  return Vector(theta_.begin(), theta_.end() - 1);
}

double RecursiveLeastSquares::bias() const { return theta_.back(); }

double RecursiveLeastSquares::variance_proxy(std::span<const double> x) const {
  BW_CHECK_MSG(x.size() == dim_, "RLS: feature size mismatch");
  const Vector xa = with_intercept(x);
  return dot(xa, p_ * xa);
}

void RecursiveLeastSquares::merge(const RecursiveLeastSquares& other,
                                  const RecursiveLeastSquares* base) {
  BW_CHECK_MSG(other.dim_ == dim_, "RLS::merge: dimension mismatch");
  BW_CHECK_MSG(other.ridge_ == ridge_,
               "RLS::merge: ridge priors differ — fusion would not be exact");
  BW_CHECK_MSG(other.lambda_ == lambda_,
               "RLS::merge: forgetting factors differ — fusion would not be exact");
  if (base != nullptr) {
    BW_CHECK_MSG(base->dim_ == dim_ && base->ridge_ == ridge_,
                 "RLS::merge: base dimension or ridge mismatch");
    BW_CHECK_MSG(base->lambda_ == lambda_,
                 "RLS::merge: base forgetting factor mismatch");
    BW_CHECK_MSG(base->n_ <= other.n_,
                 "RLS::merge: base holds more observations than other");
    // No evidence beyond the common ancestor — nothing to fold in. (The
    // deterministic update makes identical statistics equivalent to an
    // identical stream.)
    if (other.n_ == base->n_ && other.p_ == base->p_ && other.theta_ == base->theta_) {
      return;
    }
  } else {
    if (other.n_ == 0) return;  // other is the bare prior: exact no-op
    if (n_ == 0) {              // we are the bare prior: adopt other verbatim
      p_ = other.p_;
      theta_ = other.theta_;
      n_ = other.n_;
      return;
    }
  }

  // Discount alignment: the fused estimator is the one that saw self's
  // stream, then other's m new observations (m = other.n - base.n). The
  // observation count is the discount generation, so self's and the base's
  // information age by λ^m before the stationary information-form algebra
  // runs. scale == 1.0 exactly at λ = 1 (pow(1, m) == 1), so multiplying by
  // it keeps the stationary path bit-identical.
  const std::size_t p = dim_ + 1;
  const std::size_t other_new = other.n_ - (base != nullptr ? base->n_ : 0);
  const double scale = std::pow(lambda_, static_cast<double>(other_new));
  Matrix a_self = invert_spd(p_);
  const Matrix a_other = invert_spd(other.p_);
  Vector b = a_self * theta_;
  if (scale != 1.0) {
    for (double& v : a_self.data()) v *= scale;
    for (double& v : b) v *= scale;
  }
  Matrix a = a_self + a_other;
  axpy(1.0, a_other * other.theta_, b);
  const std::size_t n = n_ + other_new;
  if (base != nullptr) {
    Matrix a_base = invert_spd(base->p_);
    Vector b_base = a_base * base->theta_;
    if (scale != 1.0) {
      for (double& v : a_base.data()) v *= scale;
      for (double& v : b_base) v *= scale;
    }
    a = a - a_base;
    axpy(-1.0, b_base, b);
  } else {
    // Both operands carry the (aged) ridge prior; keep exactly one copy.
    for (std::size_t i = 0; i < p; ++i) a(i, i) -= scale * ridge_;
  }
  // Solve the fused normal equations; one step of iterative refinement
  // (r = b - A theta, theta += A^{-1} r) recovers the digits the plain
  // solve loses on ill-conditioned Gram matrices — the 1e-9 equivalence
  // property depends on it.
  const Cholesky chol = factor_spd(a);
  Vector theta = chol.solve(b);
  Vector residual(p);
  for (std::size_t i = 0; i < p; ++i) residual[i] = b[i] - dot(a.row(i), theta);
  axpy(1.0, chol.solve(residual), theta);
  theta_ = std::move(theta);
  p_ = invert_spd(a);
  n_ = n;
}

void RecursiveLeastSquares::restore(const Matrix& p, const Vector& theta,
                                    std::size_t n) {
  const std::size_t dim_aug = dim_ + 1;
  BW_CHECK_MSG(p.rows() == dim_aug && p.cols() == dim_aug,
               "RLS::restore: precision matrix shape mismatch");
  BW_CHECK_MSG(theta.size() == dim_aug, "RLS::restore: theta length mismatch");
  BW_CHECK_MSG(all_finite(std::span<const double>(p.data())),
               "RLS::restore: non-finite precision entry");
  BW_CHECK_MSG(all_finite(theta), "RLS::restore: non-finite theta entry");
  p_ = p;
  theta_ = theta;
  n_ = n;
}

}  // namespace bw::linalg
