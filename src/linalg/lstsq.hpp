#pragma once
// Least-squares fitting — the regression step of paper Algorithm 1 line 11:
//   w_k, b_k = argmin sum_{(x,R) in D_k} (R - (w^T x + b))^2
//
// `fit_linear` handles the intercept by augmenting the design matrix with a
// ones column; `LinearModel` packages (w, b) with prediction and metrics.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace bw::linalg {

/// A fitted linear model R(x) = w^T x + b.
struct LinearModel {
  Vector weights;      ///< w, one per feature
  double bias = 0.0;   ///< b
  std::size_t n_observations = 0;

  double predict(std::span<const double> x) const;

  /// Predictions for each row of X.
  Vector predict_rows(const Matrix& x) const;

  std::string to_string() const;
};

struct FitOptions {
  /// Ridge penalty on [w; b]. 0 = ordinary least squares (QR path).
  double ridge = 0.0;
  /// If true and the QR path hits rank deficiency, retry with this ridge.
  double fallback_ridge = 1e-8;
  /// Fit the intercept b (paper's model always has one).
  bool intercept = true;
  /// Forgetting factor λ ∈ (0, 1] for the incremental (RLS) backend:
  /// A ← λA + xxᵀ, b ← λb + yx, so an observation k steps old carries
  /// weight λ^k (effective window ≈ 1/(1-λ)). λ = 1 is the stationary
  /// estimator, bit-identical to the pre-λ code paths. Incremental backend
  /// only — the batch-QR (exact_history) path rejects λ < 1.
  double forgetting = 1.0;
};

struct FitResult {
  LinearModel model;
  double train_rmse = 0.0;
  double train_r_squared = 0.0;
};

/// Fits min ||X w - y|| with options. X is n x m (one row per observation).
/// Requirements: n >= 1, all entries finite. For n < m (+1 if intercept) the
/// system is underdetermined; the ridge fallback produces the minimum-norm
/// style solution instead of throwing.
FitResult fit_linear(const Matrix& x, const Vector& y, const FitOptions& options = {});

/// Convenience for one-feature fits (used by Fig. 3 / Fig. 6 area-only).
FitResult fit_linear_1d(std::span<const double> x, std::span<const double> y,
                        const FitOptions& options = {});

}  // namespace bw::linalg
