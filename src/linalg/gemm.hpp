#pragma once
// Blocked GEMM-shaped scoring kernels for the decision path (no external
// BLAS — the no-dependency rule holds). These exist so arm scoring can run
// over a contiguous coefficient plane (SoA) instead of pointer-chasing one
// heap-allocated model per arm, and so batched greedy reads can amortize
// one traversal of the weight matrix across many concurrent contexts.
//
// FP-order byte-identity contract: every output element accumulates its
// k-terms in ascending index order from a 0.0 start — exactly the order of
// linalg::dot (and therefore LinearModel::predict, whose bias lands as the
// trailing `b * 1.0` term of an intercept-augmented row). Tiling blocks
// over rows and output columns only; the k loop is never split, so each
// accumulator sees the same value sequence as the scalar reference and the
// results are bitwise identical on any build that does not enable
// -ffast-math (the repo never does). Keep it that way: a k-split or a
// multi-accumulator reduction would break the pinned decision-identity
// tests (tests/test_decision_kernel.cpp).

#include <cstddef>

namespace bw::linalg {

/// C = A * B, all row-major: A is m x k, B is k x n, C is m x n.
/// C(i, j) = sum over kk ascending of A(i, kk) * B(kk, j) — bitwise equal
/// to dot(A.row(i), B.col(j)). Buffers must not alias.
void gemm_rm(const double* a, std::size_t m, std::size_t k, const double* b,
             std::size_t n, double* c);

/// Decision-kernel entry point. `plane_t` is the TRANSPOSED coefficient
/// plane, k x arms with k = d + 1: row kk holds coefficient kk across every
/// arm, the intercept row last. `ctx` is the n x k context panel, row j =
/// [x_j; 1]. `out` receives n x arms row-major — out[j * arms + i] is arm
/// i's score for context j, so each context's predictions land as one
/// contiguous span ready for tolerant_select.
///
/// The transposed plane is what makes the kernel stream: the inner loop
/// runs across arms with unit-stride loads from plane_t and unit-stride
/// stores into out, while each out[j * arms + i] still accumulates its k
/// terms in ascending order from 0.0 (the contract above). Buffers must
/// not alias.
void score_block(const double* plane_t, std::size_t arms, std::size_t k,
                 const double* ctx, std::size_t n, double* out);

}  // namespace bw::linalg
