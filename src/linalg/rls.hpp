#pragma once
// Recursive least squares (Sherman–Morrison form). An O(p^2)-per-update
// alternative to the paper's batch refit (Alg. 1 line 11): after every
// observation the posterior precision P = (X^T X + ridge I)^{-1} is updated
// in place. Mathematically identical to ridge least squares on the same
// data (verified by property tests), and what the `bench_micro_core`
// "lightweight online" benchmark measures against batch QR refits.

#include <span>

#include "linalg/matrix.hpp"

namespace bw::linalg {

class RecursiveLeastSquares {
 public:
  /// `dim` features (+ intercept handled internally), prior precision
  /// ridge * I. ridge must be > 0 (a proper prior keeps P finite at n=0).
  explicit RecursiveLeastSquares(std::size_t dim, double ridge = 1e-6);

  std::size_t dim() const { return dim_; }
  std::size_t n_observations() const { return n_; }

  /// Incorporates one observation (x, y).
  void update(std::span<const double> x, double y);

  /// Current estimate: prediction w^T x + b.
  double predict(std::span<const double> x) const;

  Vector weights() const;  ///< w (length dim)
  double bias() const;     ///< b

  /// x_aug^T P x_aug — the LinUCB confidence width uses this quadratic form.
  double variance_proxy(std::span<const double> x) const;

  /// Covariance-like matrix P (dim+1 x dim+1, intercept last).
  const Matrix& precision_inverse() const { return p_; }

  /// Parameter vector theta = [w; b].
  const Vector& theta() const { return theta_; }

  void reset();

 private:
  Vector augment(std::span<const double> x) const;

  std::size_t dim_;
  double ridge_;
  std::size_t n_ = 0;
  Matrix p_;      ///< (X^T X + ridge I)^{-1}
  Vector theta_;  ///< [w; b]
};

}  // namespace bw::linalg
