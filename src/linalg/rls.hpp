#pragma once
// Recursive least squares (Sherman–Morrison form). An O(p^2)-per-update
// alternative to the paper's batch refit (Alg. 1 line 11): after every
// observation the posterior precision P = (X^T X + ridge I)^{-1} is updated
// in place. Mathematically identical to ridge least squares on the same
// data (verified by property tests). This is the production backend of
// core::LinearArmModel; the batch-QR path survives behind its
// `exact_history` flag for the paper-figure benchmarks.
//
// update() is allocation-free after the first call (member scratch
// buffers), so a long observation stream costs exactly O(p^2) work per
// step. The sufficient statistics (P, theta, n) are exposed — and
// restorable via restore() — so snapshots can carry the model state
// directly instead of replaying history.

#include <span>

#include "linalg/matrix.hpp"

namespace bw::linalg {

class RecursiveLeastSquares {
 public:
  /// `dim` features (+ intercept handled internally), prior precision
  /// ridge * I. ridge must be > 0 (a proper prior keeps P finite at n=0).
  /// `forgetting` is the discount λ ∈ (0, 1]: each update scales the old
  /// information by λ (A ← λA + xxᵀ, b ← λb + yx), so an observation k
  /// steps old carries weight λ^k. λ = 1 is today's stationary estimator,
  /// bit-identical to the two-argument constructor's behavior.
  explicit RecursiveLeastSquares(std::size_t dim, double ridge = 1e-6,
                                 double forgetting = 1.0);

  std::size_t dim() const { return dim_; }
  double ridge() const { return ridge_; }
  double forgetting() const { return lambda_; }
  std::size_t n_observations() const { return n_; }

  /// Incorporates one observation (x, y). O(p^2), allocation-free.
  void update(std::span<const double> x, double y);

  /// Current estimate: prediction w^T x + b.
  double predict(std::span<const double> x) const;

  Vector weights() const;  ///< w (length dim)
  double bias() const;     ///< b

  /// x_aug^T P x_aug — the LinUCB confidence width uses this quadratic form.
  double variance_proxy(std::span<const double> x) const;

  /// Covariance-like matrix P (dim+1 x dim+1, intercept last).
  const Matrix& precision_inverse() const { return p_; }

  /// Parameter vector theta = [w; b].
  const Vector& theta() const { return theta_; }

  /// Reinstates saved sufficient statistics (banditware-state v2):
  /// P must be (dim+1)x(dim+1), theta length dim+1. Throws InvalidArgument
  /// on shape mismatch or non-finite entries.
  void restore(const Matrix& p, const Vector& theta, std::size_t n);

  /// Fuses another estimator's evidence into this one. In information form
  /// (A = P^{-1}, b = A theta) ridge RLS is additive:
  ///   A <- A + A_other - A_base,   b <- b + b_other - b_base,
  /// which reproduces exactly the estimator that saw both data streams in
  /// one pass. With no `base` the shared ridge prior is subtracted once
  /// (A_base = ridge I, b_base = 0) — correct for two *independently*
  /// trained models. Pass the common ancestor as `base` when both models
  /// grew from shared state (replica sync): only the evidence beyond the
  /// ancestor is folded in, so repeated syncs never double-count.
  ///
  /// Under discounting (λ < 1) the fused estimator is the one that saw the
  /// canonical concatenation "self's stream, then other's new slice": the
  /// observation count is the discount generation, and self's (and the
  /// base's) information is aged by λ^m where m = other.n - base.n is the
  /// number of new observations other contributes:
  ///   A <- λ^m A + A_other - λ^m A_base,  b <- λ^m b + b_other - λ^m b_base.
  /// At λ = 1 the scale is exactly 1 and this reduces bit-identically to
  /// the stationary formula above. Mismatched forgetting factors are
  /// rejected (fusion would not be exact), like mismatched dim or ridge.
  /// Recovery of A from P and of the fused (theta, P) goes through the
  /// Cholesky path (factor_spd). Requires matching dim, ridge, forgetting.
  void merge(const RecursiveLeastSquares& other,
             const RecursiveLeastSquares* base = nullptr);

  void reset();

 private:
  std::size_t dim_;
  double ridge_;
  double lambda_;  ///< forgetting factor λ ∈ (0, 1]; 1 = stationary
  std::size_t n_ = 0;
  Matrix p_;      ///< (X^T X + ridge I)^{-1}
  Vector theta_;  ///< [w; b]
  Vector xa_scratch_;  ///< [x; 1] for the current update
  Vector px_scratch_;  ///< P [x; 1]
};

}  // namespace bw::linalg
