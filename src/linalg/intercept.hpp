#pragma once
// Intercept augmentation [x; 1] — the one place that defines how the bias
// column is attached to a feature vector or design matrix. Both the batch
// fitter (linalg/lstsq) and the recursive updater (linalg/rls) append the
// intercept *last*, and serialized sufficient statistics (banditware-state
// v2) rely on that layout, so the convention lives here instead of being
// hand-rolled per call site.

#include <span>

#include "linalg/matrix.hpp"

namespace bw::linalg {

/// Returns [x; 1] as a fresh vector (length x.size() + 1).
Vector with_intercept(std::span<const double> x);

/// Writes [x; 1] into `out`, resizing it to x.size() + 1. Allocation-free
/// once `out` has warmed up — intended for per-observation hot paths.
void with_intercept_into(std::span<const double> x, Vector& out);

/// Returns [X | 1]: a copy of X with a trailing ones column.
Matrix with_intercept_column(const Matrix& x);

}  // namespace bw::linalg
