#pragma once
// Cholesky (LLT) decomposition for symmetric positive-definite systems.
// Used by the normal-equation least-squares path and by the linear
// Thompson-sampling policy (sampling from N(mu, sigma^2 A^{-1})).

#include <optional>

#include "linalg/matrix.hpp"

namespace bw::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
class Cholesky {
 public:
  /// Factors `a` (must be square, symmetric, positive definite).
  /// Returns std::nullopt if a non-positive pivot is encountered.
  static std::optional<Cholesky> factor(const Matrix& a);

  /// Solves A x = b via the stored factor.
  Vector solve(const Vector& b) const;

  /// Solves L y = b (forward substitution).
  Vector solve_lower(const Vector& b) const;

  /// Solves L^T x = y (backward substitution).
  Vector solve_upper(const Vector& y) const;

  /// log(det A) = 2 * sum log L_ii. Useful for model-evidence diagnostics.
  double log_det() const;

  /// A^{-1}, solved column-by-column from the stored factor and symmetrized
  /// (the exact inverse is symmetric; averaging removes solve round-off).
  /// Used to recover precision matrices when fusing sufficient statistics.
  Matrix inverse() const;

  const Matrix& lower() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Factors an SPD matrix; adds a scale-aware jitter * I and retries (up to 6
/// escalations) if the factorization fails. Throws NumericalError if the
/// matrix has a negative diagonal entry or remains non-positive-definite.
Cholesky factor_spd(const Matrix& a, double jitter = 1e-10);

/// Solves A x = b for SPD A via factor_spd.
Vector solve_spd(const Matrix& a, const Vector& b, double jitter = 1e-10);

/// A^{-1} for SPD A via factor_spd. The result is exactly symmetric.
Matrix invert_spd(const Matrix& a, double jitter = 1e-10);

}  // namespace bw::linalg
