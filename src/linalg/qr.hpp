#pragma once
// Householder QR factorization and least-squares solve. This is the primary
// fitting path for the per-arm linear models (better conditioned than the
// normal equations when features are correlated, e.g. BP3D area vs memory).

#include "linalg/matrix.hpp"

namespace bw::linalg {

/// QR factorization of an m x n matrix with m >= n, stored compactly:
/// Householder vectors in the lower trapezoid, R in the upper triangle.
class HouseholderQr {
 public:
  /// Factors `a` (requires rows >= cols, both > 0).
  explicit HouseholderQr(const Matrix& a);

  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

  /// Minimum-norm least-squares solution of min ||A x - b||_2.
  /// Throws NumericalError if R is numerically singular.
  Vector solve(const Vector& b) const;

  /// Applies Q^T to a vector of length rows().
  Vector apply_qt(const Vector& b) const;

  /// Extracts the upper-triangular R (cols x cols).
  Matrix r() const;

  /// |R_nn| smallest diagonal magnitude — rank-deficiency indicator.
  double min_diag_abs() const;

 private:
  Matrix qr_;            ///< packed Householder vectors + R
  std::vector<double> beta_;  ///< Householder scalars
};

}  // namespace bw::linalg
