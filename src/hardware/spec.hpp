#pragma once
// Hardware configurations — the bandit's arms. The paper describes
// hardware as H_n = (#cpus, memory); tolerant selection (Alg. 1 line 7)
// breaks ties toward "the most resource efficiency", which we define as
// the lowest weighted resource cost.

#include <string>

namespace bw::hw {

/// Weights for the resource-efficiency ordering. Defaults make one CPU as
/// expensive as 16 GB of memory, so H0=(2,16) < H1=(3,24) < H2=(4,16).
/// GPUs are scarce: one GPU costs as much as eight CPUs by default.
struct ResourceWeights {
  double cpu_weight = 1.0;
  double mem_weight_per_gb = 1.0 / 16.0;
  double gpu_weight = 8.0;
};

struct HardwareSpec {
  std::string name;      ///< e.g. "H0"
  int cpus = 1;          ///< CPU cores allocated
  double memory_gb = 1;  ///< memory allocated (GB)
  /// GPU accelerators attached (paper future work: "incorporate GPU
  /// information into hardware recommendations"). 0 = CPU-only node.
  int gpus = 0;

  /// Weighted resource cost; lower = "more resource-efficient".
  double resource_cost(const ResourceWeights& weights = {}) const;

  /// "(2, 16)" — the paper's notation; "(2, 16, 1)" when GPUs are present.
  std::string to_string() const;

  bool operator==(const HardwareSpec& other) const = default;
};

/// Parses "(2, 16)" / "2,16" (cpus, memory) or "(2, 16, 1)" (plus GPUs)
/// into a spec named `name`. Throws ParseError on malformed text,
/// non-positive cpus or memory, or negative GPU count.
HardwareSpec parse_spec(const std::string& name, const std::string& text);

}  // namespace bw::hw
