#pragma once
// Power and price models for multi-metric optimization (paper future work:
// "adapt BanditWare to support multiple parameter minimization"). Given a
// hardware spec and an observed runtime, these convert execution into
// energy (joules) and money (dollars) — the extra metrics the
// MultiMetricBandit can trade off against raw runtime.

#include "hardware/spec.hpp"

namespace bw::hw {

/// Simple affine node power model (active execution).
struct PowerModel {
  double idle_watts = 40.0;
  double watts_per_cpu = 15.0;
  double watts_per_gb = 0.3;
  double watts_per_gpu = 250.0;

  /// Average draw of `spec` while busy, in watts.
  double watts(const HardwareSpec& spec) const;

  /// Energy for `runtime_s` seconds of execution, in joules.
  double energy_joules(const HardwareSpec& spec, double runtime_s) const;
};

/// Cloud-style hourly pricing.
struct PriceModel {
  double dollars_per_cpu_hour = 0.04;
  double dollars_per_gb_hour = 0.005;
  double dollars_per_gpu_hour = 1.20;

  /// Hourly rate of `spec`, in dollars.
  double dollars_per_hour(const HardwareSpec& spec) const;

  /// Cost of `runtime_s` seconds of execution, in dollars.
  double dollars(const HardwareSpec& spec, double runtime_s) const;
};

}  // namespace bw::hw
