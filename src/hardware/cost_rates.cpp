#include "hardware/cost_rates.hpp"

#include "common/error.hpp"

namespace bw::hw {

double PowerModel::watts(const HardwareSpec& spec) const {
  return idle_watts + watts_per_cpu * spec.cpus + watts_per_gb * spec.memory_gb +
         watts_per_gpu * spec.gpus;
}

double PowerModel::energy_joules(const HardwareSpec& spec, double runtime_s) const {
  BW_CHECK_MSG(runtime_s >= 0.0, "runtime must be non-negative");
  return watts(spec) * runtime_s;
}

double PriceModel::dollars_per_hour(const HardwareSpec& spec) const {
  return dollars_per_cpu_hour * spec.cpus + dollars_per_gb_hour * spec.memory_gb +
         dollars_per_gpu_hour * spec.gpus;
}

double PriceModel::dollars(const HardwareSpec& spec, double runtime_s) const {
  BW_CHECK_MSG(runtime_s >= 0.0, "runtime must be non-negative");
  return dollars_per_hour(spec) * runtime_s / 3600.0;
}

}  // namespace bw::hw
