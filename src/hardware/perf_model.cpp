#include "hardware/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace bw::hw {

PerfModel::PerfModel(PerfModelParams params) : params_(params) {
  BW_CHECK_MSG(params_.parallel_fraction >= 0.0 && params_.parallel_fraction <= 1.0,
               "parallel_fraction must be in [0,1]");
  BW_CHECK_MSG(params_.sync_overhead >= 0.0, "sync_overhead must be non-negative");
  BW_CHECK_MSG(params_.base_throughput > 0.0, "base_throughput must be positive");
}

double PerfModel::speedup(const HardwareSpec& spec) const {
  const double c = static_cast<double>(spec.cpus);
  const double c_eff = c / (1.0 + params_.sync_overhead * (c - 1.0));
  const double p = params_.parallel_fraction;
  return 1.0 / ((1.0 - p) + p / c_eff);
}

double PerfModel::execution_seconds(double work_units, const HardwareSpec& spec,
                                    double working_set_gb) const {
  BW_CHECK_MSG(work_units >= 0.0, "work_units must be non-negative");
  const double base_seconds = work_units / (params_.base_throughput * speedup(spec));
  const double overflow_gb = std::max(0.0, working_set_gb - spec.memory_gb);
  return base_seconds * (1.0 + params_.mem_pressure_slowdown_per_gb * overflow_gb);
}

double PerfModel::contention_inflation(double utilization) {
  constexpr double kFreeUtilization = 0.6;
  if (utilization <= kFreeUtilization) return 1.0;
  const double excess = utilization - kFreeUtilization;
  return 1.0 + 2.5 * excess * excess;
}

}  // namespace bw::hw
