#include "hardware/catalog.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace bw::hw {

HardwareCatalog::HardwareCatalog(std::vector<HardwareSpec> specs) {
  for (auto& spec : specs) add(std::move(spec));
}

std::size_t HardwareCatalog::add(HardwareSpec spec) {
  BW_CHECK_MSG(!spec.name.empty(), "hardware spec needs a name");
  BW_CHECK_MSG(spec.cpus > 0 && spec.memory_gb > 0, "hardware resources must be positive");
  const auto [it, inserted] = index_.emplace(spec.name, specs_.size());
  BW_CHECK_MSG(inserted, "duplicate hardware name: " + spec.name);
  specs_.push_back(std::move(spec));
  return specs_.size() - 1;
}

const HardwareSpec& HardwareCatalog::operator[](std::size_t arm) const {
  BW_CHECK_MSG(arm < specs_.size(), "hardware arm index out of range");
  return specs_[arm];
}

std::optional<std::size_t> HardwareCatalog::index_of(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<double> HardwareCatalog::resource_costs(const ResourceWeights& weights) const {
  std::vector<double> costs;
  costs.reserve(specs_.size());
  for (const auto& spec : specs_) costs.push_back(spec.resource_cost(weights));
  return costs;
}

std::vector<std::size_t> HardwareCatalog::efficiency_order(const ResourceWeights& weights) const {
  const std::vector<double> costs = resource_costs(weights);
  std::vector<std::size_t> order(specs_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return costs[a] < costs[b]; });
  return order;
}

std::string HardwareCatalog::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    os << specs_[i].name << " = " << specs_[i].to_string();
    if (i + 1 < specs_.size()) os << ", ";
  }
  return os.str();
}

HardwareCatalog ndp_catalog() {
  return HardwareCatalog({{"H0", 2, 16.0}, {"H1", 3, 24.0}, {"H2", 4, 16.0}});
}

HardwareCatalog synthetic_cycles_catalog() {
  // Distinct core counts -> distinct makespan slopes (paper Fig. 3 shows
  // four clearly separated lines over num_tasks).
  return HardwareCatalog({{"H0", 1, 8.0}, {"H1", 2, 16.0}, {"H2", 4, 16.0}, {"H3", 8, 32.0}});
}

HardwareCatalog matmul_catalog() {
  // Five NDP-style settings with modest spacing: close enough that short
  // runs cannot distinguish them, far enough apart that long runs can.
  return HardwareCatalog(
      {{"M0", 2, 8.0}, {"M1", 3, 12.0}, {"M2", 4, 16.0}, {"M3", 5, 20.0}, {"M4", 6, 24.0}});
}

}  // namespace bw::hw
