#pragma once
// Named collections of hardware specs, with the configurations the paper
// experiments on as presets.

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hardware/spec.hpp"

namespace bw::hw {

class HardwareCatalog {
 public:
  HardwareCatalog() = default;
  explicit HardwareCatalog(std::vector<HardwareSpec> specs);

  /// Appends a spec; names must be unique. Returns its arm index.
  std::size_t add(HardwareSpec spec);

  std::size_t size() const { return specs_.size(); }
  bool empty() const { return specs_.empty(); }

  const HardwareSpec& operator[](std::size_t arm) const;
  const std::vector<HardwareSpec>& specs() const { return specs_; }

  std::optional<std::size_t> index_of(const std::string& name) const;

  /// Resource cost of each arm (same order as specs).
  std::vector<double> resource_costs(const ResourceWeights& weights = {}) const;

  /// Arm indices sorted by ascending resource cost (ties keep arm order).
  std::vector<std::size_t> efficiency_order(const ResourceWeights& weights = {}) const;

  std::string to_string() const;

 private:
  std::vector<HardwareSpec> specs_;
  /// name -> arm index. Keeps add() O(1): snapshot loaders rebuild
  /// thousand-arm catalogs, where a scan-per-add dup check is quadratic.
  std::unordered_map<std::string, std::size_t> index_;
};

/// NDP hardware used in paper Experiments 2 (Section 4):
/// H0=(2,16), H1=(3,24), H2=(4,16).
HardwareCatalog ndp_catalog();

/// Four synthetic hardware settings for Experiment 1 (distinct core counts
/// give the clearly separated runtime slopes of paper Fig. 3).
HardwareCatalog synthetic_cycles_catalog();

/// Five configurations for Experiment 3 (matmul): random-guess accuracy of
/// 1/5 matches the paper's "0.2 among the five hardware options".
HardwareCatalog matmul_catalog();

}  // namespace bw::hw
