#pragma once
// Analytic performance model used by the workload simulators: Amdahl-style
// parallel speedup with a per-core efficiency roll-off, plus a contention
// inflation factor used by the cluster simulator. This is what replaces the
// authors' physical NDP testbed (see DESIGN.md section 2).

#include "hardware/spec.hpp"

namespace bw::hw {

struct PerfModelParams {
  /// Fraction of the workload that parallelizes (Amdahl).
  double parallel_fraction = 0.95;
  /// Per-core synchronization overhead: effective cores
  /// c_eff = c / (1 + overhead * (c - 1)).
  double sync_overhead = 0.02;
  /// Throughput of one reference core, in work-units per second.
  double base_throughput = 1.0;
  /// Extra slowdown per GB the working set exceeds the spec's memory
  /// (models paging/eviction on undersized nodes).
  double mem_pressure_slowdown_per_gb = 0.25;
};

class PerfModel {
 public:
  explicit PerfModel(PerfModelParams params = {});

  const PerfModelParams& params() const { return params_; }

  /// Amdahl speedup of `spec` relative to one reference core.
  double speedup(const HardwareSpec& spec) const;

  /// Seconds to execute `work_units` of compute whose working set is
  /// `working_set_gb` on `spec` (no contention).
  double execution_seconds(double work_units, const HardwareSpec& spec,
                           double working_set_gb = 0.0) const;

  /// Multiplicative runtime inflation when a node runs at `utilization`
  /// (0..1+ of allocatable CPU). <= 60% utilization is free; above that the
  /// penalty grows quadratically (queueing-like behaviour).
  static double contention_inflation(double utilization);

 private:
  PerfModelParams params_;
};

}  // namespace bw::hw
