#include "hardware/spec.hpp"

#include <cctype>
#include <vector>
#include <sstream>

#include "common/error.hpp"

namespace bw::hw {

double HardwareSpec::resource_cost(const ResourceWeights& weights) const {
  return weights.cpu_weight * cpus + weights.mem_weight_per_gb * memory_gb +
         weights.gpu_weight * gpus;
}

std::string HardwareSpec::to_string() const {
  std::ostringstream os;
  os << '(' << cpus << ", ";
  if (memory_gb == static_cast<int>(memory_gb)) {
    os << static_cast<int>(memory_gb);
  } else {
    os << memory_gb;
  }
  if (gpus > 0) os << ", " << gpus;
  os << ')';
  return os.str();
}

HardwareSpec parse_spec(const std::string& name, const std::string& text) {
  std::string digits;
  digits.reserve(text.size());
  for (char ch : text) {
    if ((std::isdigit(static_cast<unsigned char>(ch)) != 0) || ch == '.' || ch == ',' ||
        ch == '-') {
      digits.push_back(ch);
    } else if (ch == '(' || ch == ')' || ch == ' ' || ch == '\t') {
      continue;  // decoration
    } else {
      throw ParseError("hardware spec: unexpected character '" + std::string(1, ch) +
                       "' in '" + text + "'");
    }
  }
  // Split on commas: 2 fields = (cpus, mem), 3 fields = (cpus, mem, gpus).
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const auto comma = digits.find(',', start);
    fields.push_back(digits.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (fields.size() < 2 || fields.size() > 3) {
    throw ParseError("hardware spec must be '(cpus, memory_gb[, gpus])': '" + text + "'");
  }
  HardwareSpec spec;
  spec.name = name;
  try {
    spec.cpus = std::stoi(fields[0]);
    spec.memory_gb = std::stod(fields[1]);
    if (fields.size() == 3) spec.gpus = std::stoi(fields[2]);
  } catch (const std::exception&) {
    throw ParseError("hardware spec: cannot parse numbers in '" + text + "'");
  }
  if (spec.cpus <= 0) throw ParseError("hardware spec: cpus must be positive");
  if (spec.memory_gb <= 0) throw ParseError("hardware spec: memory must be positive");
  if (spec.gpus < 0) throw ParseError("hardware spec: gpus must be non-negative");
  return spec;
}

}  // namespace bw::hw
