#pragma once
// Per-arm linear runtime model (paper Section 3.2):
//   R(H_i, x) = w_i^T x + b_i
// initialized to w = 0, b = 0 and refit by least squares over the arm's
// observation set D_i after every new observation (Alg. 1 lines 1-2, 10-11).

#include <span>
#include <vector>

#include "core/types.hpp"
#include "linalg/lstsq.hpp"

namespace bw::core {

class LinearArmModel {
 public:
  /// `dim` = number of workflow features m. FitOptions control the
  /// regression (ridge fallback handles the first few underdetermined fits).
  explicit LinearArmModel(std::size_t dim, linalg::FitOptions fit = {});

  std::size_t dim() const { return dim_; }
  std::size_t count() const { return xs_.size(); }

  /// Records an observation and refits immediately (Alg. 1 line 10-11).
  void observe(std::span<const double> x, double runtime_s);

  /// Current prediction ŵ^T x + b̂; 0 before any observation (w=b=0 init).
  double predict(std::span<const double> x) const;

  const linalg::LinearModel& model() const { return model_; }

  /// Stored observations (x rows, runtimes) — exposed for serialization.
  const std::vector<FeatureVector>& observed_features() const { return xs_; }
  const std::vector<double>& observed_runtimes() const { return ys_; }

  void reset();

 private:
  void refit();

  std::size_t dim_;
  linalg::FitOptions fit_;
  std::vector<FeatureVector> xs_;
  std::vector<double> ys_;
  linalg::LinearModel model_;  ///< always reflects the latest refit
};

}  // namespace bw::core
