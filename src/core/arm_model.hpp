#pragma once
// Per-arm linear runtime model (paper Section 3.2):
//   R(H_i, x) = w_i^T x + b_i
// initialized to w = 0, b = 0 and updated after every observation
// (Alg. 1 lines 1-2, 10-11).
//
// Two interchangeable backends:
//   * incremental (default) — a Sherman–Morrison recursive least-squares
//     update (linalg/rls): O(d^2) per observe(), no per-row history kept.
//     Mathematically the ridge solution on the full stream with the prior
//     ridge fit.ridge (or fit.fallback_ridge when ridge is 0), i.e. the
//     same estimate the batch path's underdetermined fallback computes.
//   * exact_history (opt-in) — the paper's literal Alg. 1 line 11: store
//     every observation and rerun the batch QR fit each time. O(n d^2) per
//     observe(). Kept for the paper-figure benchmarks and as the ground
//     truth the incremental path is property-tested against.

#include <span>
#include <vector>

#include "core/types.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/rls.hpp"

namespace bw::core {

/// Compact copy of an incremental arm's sufficient statistics (theta, P, n).
/// This is the in-memory analogue of a banditware-state v2 stats record:
/// O(d^2) to take, no text round-trip. The async cross-shard sync pipeline
/// stages these under brief shared locks and fuses them off the hot path.
struct ArmStats {
  linalg::Matrix p;      ///< (X^T X + ridge I)^{-1}, intercept-augmented
  linalg::Vector theta;  ///< [w; b]
  std::size_t n = 0;     ///< observations absorbed
};

class LinearArmModel {
 public:
  /// `dim` = number of workflow features m. FitOptions control the
  /// regression; `exact_history` selects the batch-QR backend. A fit with
  /// intercept=false always uses the batch backend (the recursive update
  /// hard-codes the intercept column).
  explicit LinearArmModel(std::size_t dim, linalg::FitOptions fit = {},
                          bool exact_history = false);

  std::size_t dim() const { return dim_; }
  std::size_t count() const {
    return exact_history_ ? xs_.size() : rls_.n_observations();
  }
  bool exact_history() const { return exact_history_; }

  /// The backend-selection rule the constructor applies — the single source
  /// of truth for callers that must know the effective backend before any
  /// model exists (e.g. the serve layer rejecting async sync for batch-
  /// backend configs at construction time).
  static bool uses_exact_history(const linalg::FitOptions& fit, bool exact_history) {
    return exact_history || !fit.intercept;
  }

  /// Records an observation and updates the model (Alg. 1 line 10-11).
  /// O(d^2) incremental, O(n d^2) with exact_history.
  void observe(std::span<const double> x, double runtime_s);

  /// Current prediction ŵ^T x + b̂; 0 before any observation (w=b=0 init).
  /// Reads only immutable-between-observes state, so concurrent predict()
  /// calls are safe as long as no observe() runs (read-mostly serving).
  double predict(std::span<const double> x) const;

  /// Posterior-width quadratic form x̃^T P x̃ (intercept-augmented) — what
  /// LinUCB's confidence bound and Thompson's posterior draw both consume.
  /// Incremental backend only: a history-backed arm keeps no P. Throws
  /// InvalidArgument in exact_history mode.
  double variance_proxy(std::span<const double> x) const;

  const linalg::LinearModel& model() const { return model_; }

  /// Sufficient statistics of the incremental backend (P, theta, n) — the
  /// banditware-state v2 payload. Only meaningful when !exact_history().
  const linalg::RecursiveLeastSquares& rls() const { return rls_; }

  /// Reinstates saved sufficient statistics (incremental backend only).
  /// Throws InvalidArgument on shape mismatch or in exact_history mode.
  void restore_stats(const linalg::Matrix& p, const linalg::Vector& theta,
                     std::size_t n);

  /// Copies out the sufficient statistics (incremental backend only) —
  /// O(d^2), no text serialization. Throws InvalidArgument in exact_history
  /// mode (a history-backed arm has no compact statistics to export; the
  /// serve-layer async sync is rejected for such configs up front).
  ArmStats export_stats() const;

  /// Folds another arm's evidence into this one. Incremental arms fuse
  /// sufficient statistics (RLS::merge — exact under the shared ridge);
  /// exact_history arms concatenate histories and refit once. With `base`
  /// (the common ancestor both models grew from, e.g. the state shared at
  /// the last replica sync) only the evidence beyond the ancestor is
  /// merged, so repeated syncs never double-count; for exact_history the
  /// ancestor's rows must be a prefix of `other`'s. Both models (and the
  /// base) must use the same backend and dimension.
  void merge(const LinearArmModel& other, const LinearArmModel* base = nullptr);

  /// Stored observations — exposed for serialization. Empty in incremental
  /// mode (the hot path deliberately keeps no history).
  const std::vector<FeatureVector>& observed_features() const { return xs_; }
  const std::vector<double>& observed_runtimes() const { return ys_; }

  void reset();

 private:
  void refit();
  void sync_from_rls();

  std::size_t dim_;
  linalg::FitOptions fit_;
  bool exact_history_;
  linalg::RecursiveLeastSquares rls_;  ///< incremental backend
  std::vector<FeatureVector> xs_;      ///< exact_history backend only
  std::vector<double> ys_;
  linalg::LinearModel model_;  ///< always reflects the latest update
};

}  // namespace bw::core
