#pragma once
// Dataset-level evaluation metrics — the quantities plotted in every
// figure of the paper's evaluation:
//  * RMSE of the current models over ALL rows (every group x every arm),
//  * accuracy: fraction of groups whose recommended hardware is within
//    tolerance of the group's best *actual* runtime,
//  * mean resource cost of the recommendations (the tolerance trade-off).

#include <functional>

#include "core/run_table.hpp"
#include "core/types.hpp"
#include "hardware/catalog.hpp"
#include "linalg/lstsq.hpp"

namespace bw::core {

/// Callable returning R̂(arm, x) for the model under evaluation.
using PredictFn = std::function<double(ArmIndex, const FeatureVector&)>;

/// Callable returning the recommended arm for features x.
using RecommendFn = std::function<ArmIndex(const FeatureVector&)>;

struct DatasetMetrics {
  double rmse = 0.0;                ///< prediction error over all rows
  double accuracy = 0.0;            ///< tolerant best-hardware accuracy
  double mean_resource_cost = 0.0;  ///< avg cost of recommended arms
  double mean_actual_runtime = 0.0; ///< avg actual runtime of recommendations
};

/// Evaluates `predict` / `recommend` on the full table. The accuracy rule
/// (DESIGN.md section 5): a recommendation k for group g is correct iff
///   R_actual(g, k) <= (1 + tolerance.ratio) * min_a R_actual(g, a)
///                     + tolerance.seconds.
DatasetMetrics evaluate_on_table(const RunTable& table, const PredictFn& predict,
                                 const RecommendFn& recommend,
                                 const ToleranceParams& tolerance,
                                 const hw::ResourceWeights& weights = {});

/// Per-arm least squares over the WHOLE table — the paper's "full fit"
/// baseline (the red/orange reference line in Figs. 4 and 7).
struct FullFit {
  std::vector<linalg::LinearModel> arm_models;  ///< one per arm
  DatasetMetrics metrics;

  double predict(ArmIndex arm, const FeatureVector& x) const;
  /// Tolerant recommendation under the fitted models.
  ArmIndex recommend(const FeatureVector& x, const hw::HardwareCatalog& catalog,
                     const ToleranceParams& tolerance,
                     const hw::ResourceWeights& weights = {}) const;
};

FullFit fit_full_table(const RunTable& table, const ToleranceParams& tolerance,
                       const linalg::FitOptions& fit = {},
                       const hw::ResourceWeights& weights = {});

/// Fraction of groups whose best actual arm equals the overall most common
/// best arm — the "no-context" ceiling, handy in ablation output.
double majority_best_arm_accuracy(const RunTable& table, const ToleranceParams& tolerance);

}  // namespace bw::core
