#pragma once
// ArmBank — the shared per-arm ridge-RLS substrate every production policy
// sits on. ε-greedy, LinUCB, and linear-Gaussian Thompson sampling all keep
// one LinearArmModel per hardware arm, predict with the same tolerant-greedy
// pass over the same resource-cost ordering, and fuse/serialize the same
// information-form sufficient statistics. Before this layer each policy
// re-implemented that loop; now the policies differ only in how they pick an
// arm during exploration (ε-coin, LCB optimism, posterior draw).
//
// Decision kernel (ROADMAP "Decision kernel"): alongside the per-arm
// objects the bank maintains a TRANSPOSED (d+1) x size theta plane (row kk
// = coefficient kk across all arms, intercept row last — the layout
// linalg::score_block streams) so bank-wide scoring (predict_all, the greedy
// pass, LinUCB's LCB sweep, Thompson's draw loop) runs over contiguous
// memory instead of re-walking one heap-backed model per arm. The plane is
// refreshed eagerly in observe() — an exclusive-lock context in every
// caller — and invalidated by the non-const arm() accessor, which is how
// merge/restore/widen paths mutate arms behind the bank's back. While
// dirty, const readers fall back to the per-arm scalar loop (byte-identical
// results, no mutation from const paths, so shared-lock readers stay
// race-free); the next observe() rebuilds the plane.

#include <span>
#include <vector>

#include "core/arm_model.hpp"
#include "core/tolerant.hpp"
#include "core/types.hpp"
#include "hardware/catalog.hpp"

namespace bw::core {

class ArmBank {
 public:
  /// One LinearArmModel per catalog arm; `fit` + `exact_history` select the
  /// regression backend exactly as LinearArmModel does, and resource costs
  /// are precomputed from the catalog for the tolerant tie-break.
  ArmBank(const hw::HardwareCatalog& catalog, std::size_t num_features,
          const linalg::FitOptions& fit, bool exact_history,
          const ToleranceParams& tolerance, const hw::ResourceWeights& weights);

  std::size_t size() const { return arms_.size(); }
  /// Feature count d. Stored at construction — never derived from
  /// arms_.front(), which would be UB on an empty bank.
  std::size_t dim() const { return dim_; }

  /// Records an observation on one arm (Alg. 1 lines 10-11) and refreshes
  /// that arm's theta-plane column (rebuilding the whole plane first if a
  /// non-const arm() access left it dirty).
  void observe(ArmIndex arm, const FeatureVector& x, double runtime_s);

  /// Current estimate R̂(H_arm, x).
  double predict(ArmIndex arm, const FeatureVector& x) const;

  /// x̃^T P_arm x̃ — the posterior-width quadratic form LinUCB's confidence
  /// bound and Thompson's posterior draw share. Incremental backend only.
  double variance_proxy(ArmIndex arm, const FeatureVector& x) const;

  /// R̂ for every arm in one pass over the theta plane (scalar per-arm walk
  /// while the plane is dirty — byte-identical either way). `out` must have
  /// size() entries.
  void predict_all(const FeatureVector& x, std::span<double> out) const;
  std::vector<double> predict_all(const FeatureVector& x) const;

  /// x̃^T P_arm x̃ for every arm with the intercept augmentation and the
  /// P x̃ scratch hoisted out of the loop — bitwise equal to calling
  /// variance_proxy per arm. Incremental backend only; `out` must have
  /// size() entries.
  void variance_proxy_all(const FeatureVector& x, std::span<double> out) const;

  /// Tolerant-greedy choice with its predicted runtime — one predict_all
  /// pass into the shared per-thread DecisionScratch.
  TolerantChoice recommend_choice(const FeatureVector& x) const;

  /// Non-const access marks the theta plane dirty: merge_from / restore /
  /// catalog-widening paths mutate the arm without going through observe().
  LinearArmModel& arm(ArmIndex index);
  const LinearArmModel& arm(ArmIndex index) const;

  const std::vector<double>& resource_costs() const { return resource_costs_; }
  const ToleranceParams& tolerance() const { return tolerance_; }

  void reset();

 private:
  void fill_plane_column(ArmIndex arm);
  void rebuild_plane();

  std::vector<LinearArmModel> arms_;
  std::vector<double> resource_costs_;
  ToleranceParams tolerance_;
  std::size_t dim_ = 0;
  /// Transposed (d+1) x size plane mirroring each arm's [w; b] as a
  /// column. Only written under the exclusive-lock contexts that may call
  /// observe()/reset()/non-const arm(), so const readers under shared locks
  /// never race on it.
  std::vector<double> theta_plane_;
  bool plane_dirty_ = false;
};

}  // namespace bw::core
