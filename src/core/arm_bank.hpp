#pragma once
// ArmBank — the shared per-arm ridge-RLS substrate every production policy
// sits on. ε-greedy, LinUCB, and linear-Gaussian Thompson sampling all keep
// one LinearArmModel per hardware arm, predict with the same tolerant-greedy
// pass over the same resource-cost ordering, and fuse/serialize the same
// information-form sufficient statistics. Before this layer each policy
// re-implemented that loop; now the policies differ only in how they pick an
// arm during exploration (ε-coin, LCB optimism, posterior draw).

#include <vector>

#include "core/arm_model.hpp"
#include "core/tolerant.hpp"
#include "core/types.hpp"
#include "hardware/catalog.hpp"

namespace bw::core {

class ArmBank {
 public:
  /// One LinearArmModel per catalog arm; `fit` + `exact_history` select the
  /// regression backend exactly as LinearArmModel does, and resource costs
  /// are precomputed from the catalog for the tolerant tie-break.
  ArmBank(const hw::HardwareCatalog& catalog, std::size_t num_features,
          const linalg::FitOptions& fit, bool exact_history,
          const ToleranceParams& tolerance, const hw::ResourceWeights& weights);

  std::size_t size() const { return arms_.size(); }
  std::size_t dim() const { return arms_.front().dim(); }

  /// Records an observation on one arm (Alg. 1 lines 10-11).
  void observe(ArmIndex arm, const FeatureVector& x, double runtime_s);

  /// Current estimate R̂(H_arm, x).
  double predict(ArmIndex arm, const FeatureVector& x) const;

  /// x̃^T P_arm x̃ — the posterior-width quadratic form LinUCB's confidence
  /// bound and Thompson's posterior draw share. Incremental backend only.
  double variance_proxy(ArmIndex arm, const FeatureVector& x) const;

  /// Tolerant-greedy choice with its predicted runtime — one prediction
  /// pass over all arms. thread_local scratch: this is the serving hot path
  /// and may run concurrently under shared locks, so the reusable buffer
  /// must be per-thread rather than a mutable member.
  TolerantChoice recommend_choice(const FeatureVector& x) const;

  LinearArmModel& arm(ArmIndex index);
  const LinearArmModel& arm(ArmIndex index) const;

  const std::vector<double>& resource_costs() const { return resource_costs_; }
  const ToleranceParams& tolerance() const { return tolerance_; }

  void reset();

 private:
  std::vector<LinearArmModel> arms_;
  std::vector<double> resource_costs_;
  ToleranceParams tolerance_;
};

}  // namespace bw::core
