#include "core/decision_log.hpp"

#include "common/error.hpp"
#include "dataframe/csv.hpp"

namespace bw::core {

DecisionLog::DecisionLog(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {
  BW_CHECK_MSG(!feature_names_.empty(), "decision log needs feature names");
}

void DecisionLog::record(const BanditWare::Decision& decision, const FeatureVector& x,
                         double observed_runtime_s, double epsilon_at_decision) {
  BW_CHECK_MSG(decision.spec != nullptr, "decision has no hardware spec");
  DecisionRecord record;
  record.features = x;
  record.arm = decision.arm;
  record.hardware = decision.spec->name;
  record.explored = decision.explored;
  record.predicted_runtime_s = decision.predicted_runtime_s;
  record.observed_runtime_s = observed_runtime_s;
  record.epsilon = epsilon_at_decision;
  this->record(std::move(record));
}

void DecisionLog::record(DecisionRecord record) {
  BW_CHECK_MSG(record.features.size() == feature_names_.size(),
               "decision log: feature size mismatch");
  record.index = records_.size();
  records_.push_back(std::move(record));
}

const DecisionRecord& DecisionLog::operator[](std::size_t i) const {
  BW_CHECK_MSG(i < records_.size(), "decision log index out of range");
  return records_[i];
}

double DecisionLog::exploration_rate() const {
  if (records_.empty()) return 0.0;
  std::size_t explored = 0;
  for (const auto& record : records_) explored += record.explored;
  return static_cast<double>(explored) / static_cast<double>(records_.size());
}

double DecisionLog::mean_observed_runtime() const {
  if (records_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& record : records_) sum += record.observed_runtime_s;
  return sum / static_cast<double>(records_.size());
}

df::DataFrame DecisionLog::to_frame() const {
  const std::size_t n = records_.size();
  std::vector<std::int64_t> index(n);
  std::vector<std::string> hardware(n);
  std::vector<std::int64_t> explored(n);
  std::vector<double> predicted(n), observed(n), epsilon(n);
  std::vector<std::vector<double>> feature_columns(feature_names_.size(),
                                                   std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const DecisionRecord& record = records_[i];
    index[i] = static_cast<std::int64_t>(record.index);
    hardware[i] = record.hardware;
    explored[i] = record.explored ? 1 : 0;
    predicted[i] = record.predicted_runtime_s;
    observed[i] = record.observed_runtime_s;
    epsilon[i] = record.epsilon;
    for (std::size_t c = 0; c < feature_names_.size(); ++c) {
      feature_columns[c][i] = record.features[c];
    }
  }
  df::DataFrame frame;
  frame.add_column("decision", df::Column(std::move(index)));
  for (std::size_t c = 0; c < feature_names_.size(); ++c) {
    frame.add_column(feature_names_[c], df::Column(std::move(feature_columns[c])));
  }
  frame.add_column("hardware", df::Column(std::move(hardware)));
  frame.add_column("explored", df::Column(std::move(explored)));
  frame.add_column("predicted_runtime_s", df::Column(std::move(predicted)));
  frame.add_column("observed_runtime_s", df::Column(std::move(observed)));
  frame.add_column("epsilon", df::Column(std::move(epsilon)));
  return frame;
}

std::string DecisionLog::to_csv() const { return df::write_csv_string(to_frame()); }

}  // namespace bw::core
