#include "core/metrics.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/tolerant.hpp"

namespace bw::core {

DatasetMetrics evaluate_on_table(const RunTable& table, const PredictFn& predict,
                                 const RecommendFn& recommend,
                                 const ToleranceParams& tolerance,
                                 const hw::ResourceWeights& weights) {
  BW_CHECK_MSG(static_cast<bool>(predict) && static_cast<bool>(recommend),
               "evaluate_on_table needs predict and recommend functions");
  const std::vector<double> costs = table.catalog().resource_costs(weights);

  DatasetMetrics metrics;
  double sum_sq_error = 0.0;
  std::size_t correct = 0;
  double cost_sum = 0.0;
  double runtime_sum = 0.0;

  for (std::size_t g = 0; g < table.num_groups(); ++g) {
    const FeatureVector x = table.features_of(g);
    for (ArmIndex arm = 0; arm < table.num_arms(); ++arm) {
      const double error = predict(arm, x) - table.runtime(g, arm);
      sum_sq_error += error * error;
    }
    const ArmIndex pick = recommend(x);
    BW_CHECK_MSG(pick < table.num_arms(), "recommend returned out-of-range arm");
    const double actual = table.runtime(g, pick);
    const double best = table.best_runtime(g);
    const double limit = best + tolerance.ratio * std::max(best, 0.0) + tolerance.seconds;
    if (actual <= limit) ++correct;
    cost_sum += costs[pick];
    runtime_sum += actual;
  }

  const auto n_groups = static_cast<double>(table.num_groups());
  const auto n_rows = n_groups * static_cast<double>(table.num_arms());
  metrics.rmse = std::sqrt(sum_sq_error / n_rows);
  metrics.accuracy = static_cast<double>(correct) / n_groups;
  metrics.mean_resource_cost = cost_sum / n_groups;
  metrics.mean_actual_runtime = runtime_sum / n_groups;
  return metrics;
}

double FullFit::predict(ArmIndex arm, const FeatureVector& x) const {
  BW_CHECK_MSG(arm < arm_models.size(), "arm index out of range");
  return arm_models[arm].predict(x);
}

ArmIndex FullFit::recommend(const FeatureVector& x, const hw::HardwareCatalog& catalog,
                            const ToleranceParams& tolerance,
                            const hw::ResourceWeights& weights) const {
  std::vector<double> predictions(arm_models.size());
  for (ArmIndex arm = 0; arm < arm_models.size(); ++arm) {
    predictions[arm] = arm_models[arm].predict(x);
  }
  return tolerant_select(predictions, catalog.resource_costs(weights), tolerance).arm;
}

FullFit fit_full_table(const RunTable& table, const ToleranceParams& tolerance,
                       const linalg::FitOptions& fit, const hw::ResourceWeights& weights) {
  FullFit result;
  result.arm_models.reserve(table.num_arms());
  for (ArmIndex arm = 0; arm < table.num_arms(); ++arm) {
    linalg::Vector y(table.num_groups());
    for (std::size_t g = 0; g < table.num_groups(); ++g) y[g] = table.runtime(g, arm);
    result.arm_models.push_back(linalg::fit_linear(table.features(), y, fit).model);
  }
  const FullFit& self = result;
  result.metrics = evaluate_on_table(
      table,
      [&self](ArmIndex arm, const FeatureVector& x) { return self.predict(arm, x); },
      [&self, &table, &tolerance, &weights](const FeatureVector& x) {
        return self.recommend(x, table.catalog(), tolerance, weights);
      },
      tolerance, weights);
  return result;
}

double majority_best_arm_accuracy(const RunTable& table, const ToleranceParams& tolerance) {
  // Most common best arm.
  std::vector<std::size_t> counts(table.num_arms(), 0);
  for (std::size_t g = 0; g < table.num_groups(); ++g) ++counts[table.best_arm(g)];
  ArmIndex majority = 0;
  for (ArmIndex arm = 1; arm < counts.size(); ++arm) {
    if (counts[arm] > counts[majority]) majority = arm;
  }
  std::size_t correct = 0;
  for (std::size_t g = 0; g < table.num_groups(); ++g) {
    const double actual = table.runtime(g, majority);
    const double best = table.best_runtime(g);
    const double limit = best + tolerance.ratio * std::max(best, 0.0) + tolerance.seconds;
    if (actual <= limit) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(table.num_groups());
}

}  // namespace bw::core
