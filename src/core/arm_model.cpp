#include "core/arm_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bw::core {

LinearArmModel::LinearArmModel(std::size_t dim, linalg::FitOptions fit)
    : dim_(dim), fit_(fit) {
  BW_CHECK_MSG(dim > 0, "arm model needs at least one feature");
  reset();
}

void LinearArmModel::reset() {
  xs_.clear();
  ys_.clear();
  model_.weights.assign(dim_, 0.0);  // paper init: w_i = 0, b_i = 0
  model_.bias = 0.0;
  model_.n_observations = 0;
}

void LinearArmModel::observe(std::span<const double> x, double runtime_s) {
  BW_CHECK_MSG(x.size() == dim_, "arm model: feature size mismatch");
  BW_CHECK_MSG(linalg::all_finite(x), "arm model: non-finite feature");
  BW_CHECK_MSG(std::isfinite(runtime_s), "arm model: non-finite runtime");
  xs_.emplace_back(x.begin(), x.end());
  ys_.push_back(runtime_s);
  refit();
}

void LinearArmModel::refit() {
  linalg::Matrix design(xs_.size(), dim_);
  for (std::size_t r = 0; r < xs_.size(); ++r) {
    for (std::size_t c = 0; c < dim_; ++c) design(r, c) = xs_[r][c];
  }
  model_ = linalg::fit_linear(design, ys_, fit_).model;
}

double LinearArmModel::predict(std::span<const double> x) const {
  BW_CHECK_MSG(x.size() == dim_, "arm model: feature size mismatch");
  return model_.predict(x);
}

}  // namespace bw::core
