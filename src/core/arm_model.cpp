#include "core/arm_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bw::core {

namespace {

/// The incremental backend's ridge prior mirrors the batch path: an
/// explicit fit.ridge wins, otherwise the rank-deficiency fallback ridge
/// (which is what the batch fit applies on every underdetermined refit).
double rls_prior_ridge(const linalg::FitOptions& fit) {
  if (fit.ridge > 0.0) return fit.ridge;
  if (fit.fallback_ridge > 0.0) return fit.fallback_ridge;
  return 1e-8;
}

}  // namespace

LinearArmModel::LinearArmModel(std::size_t dim, linalg::FitOptions fit,
                               bool exact_history)
    : dim_(dim),
      fit_(fit),
      exact_history_(uses_exact_history(fit, exact_history)),
      rls_(dim > 0 ? dim : 1, rls_prior_ridge(fit), fit.forgetting) {
  BW_CHECK_MSG(dim > 0, "arm model needs at least one feature");
  // The batch-QR backend refits the full history with uniform weights; a
  // forgetting factor has no exact batch counterpart here, so λ < 1 is an
  // incremental-backend-only option.
  BW_CHECK_MSG(!exact_history_ || fit.forgetting == 1.0,
               "arm model: forgetting (lambda < 1) requires the incremental backend");
  reset();
}

void LinearArmModel::reset() {
  xs_.clear();
  ys_.clear();
  rls_.reset();
  model_.weights.assign(dim_, 0.0);  // paper init: w_i = 0, b_i = 0
  model_.bias = 0.0;
  model_.n_observations = 0;
}

void LinearArmModel::observe(std::span<const double> x, double runtime_s) {
  BW_CHECK_MSG(x.size() == dim_, "arm model: feature size mismatch");
  BW_CHECK_MSG(linalg::all_finite(x), "arm model: non-finite feature");
  BW_CHECK_MSG(std::isfinite(runtime_s), "arm model: non-finite runtime");
  if (exact_history_) {
    xs_.emplace_back(x.begin(), x.end());
    ys_.push_back(runtime_s);
    refit();
    return;
  }
  rls_.update(x, runtime_s);
  sync_from_rls();
}

void LinearArmModel::refit() {
  linalg::Matrix design(xs_.size(), dim_);
  for (std::size_t r = 0; r < xs_.size(); ++r) {
    for (std::size_t c = 0; c < dim_; ++c) design(r, c) = xs_[r][c];
  }
  model_ = linalg::fit_linear(design, ys_, fit_).model;
}

void LinearArmModel::sync_from_rls() {
  const linalg::Vector& theta = rls_.theta();
  model_.weights.assign(theta.begin(), theta.end() - 1);
  model_.bias = theta.back();
  model_.n_observations = rls_.n_observations();
}

void LinearArmModel::merge(const LinearArmModel& other, const LinearArmModel* base) {
  BW_CHECK_MSG(other.dim_ == dim_, "arm model: merge dimension mismatch");
  BW_CHECK_MSG(other.exact_history_ == exact_history_,
               "arm model: merge requires matching backends");
  if (base != nullptr) {
    BW_CHECK_MSG(base->dim_ == dim_ && base->exact_history_ == exact_history_,
                 "arm model: merge base backend or dimension mismatch");
  }
  if (exact_history_) {
    const std::size_t skip = base != nullptr ? base->xs_.size() : 0;
    BW_CHECK_MSG(skip <= other.xs_.size(),
                 "arm model: merge base is not a prefix of other's history");
    if (skip == other.xs_.size()) return;  // no new rows (also: other empty)
    for (std::size_t i = skip; i < other.xs_.size(); ++i) {
      xs_.push_back(other.xs_[i]);
      ys_.push_back(other.ys_[i]);
    }
    refit();
    return;
  }
  rls_.merge(other.rls_, base != nullptr ? &base->rls_ : nullptr);
  sync_from_rls();
}

void LinearArmModel::restore_stats(const linalg::Matrix& p,
                                   const linalg::Vector& theta, std::size_t n) {
  BW_CHECK_MSG(!exact_history_,
               "arm model: restore_stats requires the incremental backend");
  rls_.restore(p, theta, n);
  sync_from_rls();
}

ArmStats LinearArmModel::export_stats() const {
  BW_CHECK_MSG(!exact_history_,
               "arm model: export_stats requires the incremental backend");
  return ArmStats{rls_.precision_inverse(), rls_.theta(), rls_.n_observations()};
}

double LinearArmModel::predict(std::span<const double> x) const {
  BW_CHECK_MSG(x.size() == dim_, "arm model: feature size mismatch");
  return model_.predict(x);
}

double LinearArmModel::variance_proxy(std::span<const double> x) const {
  BW_CHECK_MSG(!exact_history_,
               "arm model: variance_proxy requires the incremental backend");
  return rls_.variance_proxy(x);
}

}  // namespace bw::core
