#include "core/banditware.hpp"

#include <iomanip>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "common/error.hpp"

namespace bw::core {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw ParseError("BanditWare::load_state: " + what);
}

/// Arms are bounded by what a serialized catalog can sanely hold; a
/// mis-parsed (negative / overflowed) count must not turn into a
/// multi-gigabyte replay allocation.
constexpr long long kMaxObservationsPerArm = 100'000'000;

/// Header counts are bounded the same way: a corrupted "features N" or
/// "arms N" line must fail cleanly, not drive a resize() into bad_alloc
/// (each feature later sizes a (d+1)x(d+1) matrix per arm). Real catalogs
/// hold a handful of arms over a handful of features; these caps are
/// orders of magnitude above any sane snapshot.
constexpr std::size_t kMaxFeatures = 512;
constexpr std::size_t kMaxArms = 4096;

/// Reads a per-arm observation count defensively: the stream extracts a
/// signed value so "-3" is caught as negative instead of wrapping to a
/// huge unsigned count, and overflow sets failbit.
std::size_t read_obs_count(std::istream& is) {
  long long obs = 0;
  is >> obs;
  if (!is) fail("malformed obs count");
  if (obs < 0) fail("negative obs count");
  if (obs > kMaxObservationsPerArm) fail("obs count exceeds limit");
  return static_cast<std::size_t>(obs);
}

void check_unique_arm_name(std::unordered_set<std::string>& seen,
                           const std::string& name) {
  if (!seen.insert(name).second) fail("duplicate arm name: " + name);
}

struct SnapshotHeader {
  BanditWareConfig config;
  double epsilon = 1.0;
  std::vector<std::string> feature_names;
  std::size_t num_arms = 0;
};

/// Parses the config / epsilon / features / arms preamble shared by v1 and
/// v2 (v2 additionally carries the exact_history flag on the config line).
SnapshotHeader read_header(std::istream& is, int version) {
  SnapshotHeader header;
  std::string token;
  is >> token;
  if (token != "epsilon0") fail("expected epsilon0");
  is >> header.config.policy.initial_epsilon;
  is >> token >> header.config.policy.decay;
  is >> token >> header.config.policy.tolerance.ratio;
  is >> token >> header.config.policy.tolerance.seconds;
  if (version >= 2) {
    int exact = 0;
    is >> token >> exact;
    if (token != "exact_history") fail("expected exact_history");
    header.config.policy.exact_history = exact != 0;
  }
  is >> token;
  if (token != "epsilon") fail("expected epsilon");
  is >> header.epsilon;

  std::size_t num_features = 0;
  is >> token >> num_features;
  // Check the stream BEFORE acting on the count: an overflowed extraction
  // leaves a garbage value that must not reach resize().
  if (!is || token != "features" || num_features == 0) fail("expected features");
  if (num_features > kMaxFeatures) fail("feature count exceeds limit");
  header.feature_names.resize(num_features);
  for (auto& name : header.feature_names) is >> name;

  is >> token >> header.num_arms;
  if (!is || token != "arms" || header.num_arms == 0) fail("expected arms");
  if (header.num_arms > kMaxArms) fail("arm count exceeds limit");
  return header;
}

}  // namespace

BanditWare::BanditWare(hw::HardwareCatalog catalog, std::vector<std::string> feature_names,
                       BanditWareConfig config)
    : catalog_(std::move(catalog)),
      feature_names_(std::move(feature_names)),
      config_(config),
      policy_(catalog_, feature_names_.empty() ? 1 : feature_names_.size(), config.policy) {
  BW_CHECK_MSG(!feature_names_.empty(), "BanditWare needs at least one feature name");
}

BanditWare::Decision BanditWare::next(const FeatureVector& x, Rng& rng) {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  Decision decision;
  decision.arm = policy_.select(x, rng);
  decision.explored = policy_.last_was_exploration();
  decision.spec = &catalog_[decision.arm];
  decision.predicted_runtime_s = policy_.predict(decision.arm, x);
  return decision;
}

const hw::HardwareSpec& BanditWare::recommend(const FeatureVector& x) const {
  return catalog_[recommend_index(x)];
}

ArmIndex BanditWare::recommend_index(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  return policy_.recommend(x);
}

BanditWare::Decision BanditWare::recommend_decision(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  const auto choice = policy_.recommend_choice(x);
  Decision decision;
  decision.arm = choice.arm;
  decision.spec = &catalog_[choice.arm];
  decision.explored = false;
  decision.predicted_runtime_s = choice.predicted_runtime;
  return decision;
}

void BanditWare::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  policy_.observe(arm, x, runtime_s);
}

void BanditWare::merge_from(const BanditWare& other, const BanditWare* base) {
  BW_CHECK_MSG(other.feature_names_ == feature_names_,
               "merge_from: feature names mismatch");
  const auto& mine = config_.policy;
  const auto& theirs = other.config_.policy;
  BW_CHECK_MSG(mine.fit.ridge == theirs.fit.ridge &&
                   mine.fit.fallback_ridge == theirs.fit.fallback_ridge &&
                   mine.fit.intercept == theirs.fit.intercept,
               "merge_from: fit options mismatch — fusion would not be exact");
  BW_CHECK_MSG(policy_.arm_model(0).exact_history() ==
                   other.policy_.arm_model(0).exact_history(),
               "merge_from: model backends mismatch");
  BW_CHECK_MSG(mine.initial_epsilon == theirs.initial_epsilon &&
                   mine.decay == theirs.decay,
               "merge_from: exploration schedule mismatch");
  if (base != nullptr) {
    BW_CHECK_MSG(base->feature_names_ == feature_names_,
                 "merge_from: base feature names mismatch");
  }

  // ε decays by α once per observation, so absorbing other's stream maps to
  // multiplying the decay factors each side accumulated since the shared
  // starting point (ε₀, or the common ancestor's ε under replica sync).
  const double eps_anchor = base != nullptr ? base->epsilon() : mine.initial_epsilon;
  const double merged_epsilon =
      eps_anchor > 0.0 ? policy_.epsilon() * other.policy_.epsilon() / eps_anchor : 0.0;

  auto base_model_for = [base](const std::string& name) -> const LinearArmModel* {
    if (base == nullptr) return nullptr;
    const auto index = base->catalog_.index_of(name);
    return index ? &base->policy_.arm_model(*index) : nullptr;
  };

  // Union of arms: self arms keep their indices, other-only arms append.
  hw::HardwareCatalog merged_catalog = catalog_;
  for (ArmIndex j = 0; j < other.catalog_.size(); ++j) {
    const hw::HardwareSpec& spec = other.catalog_[j];
    if (const auto index = merged_catalog.index_of(spec.name)) {
      BW_CHECK_MSG(merged_catalog[*index] == spec,
                   "merge_from: conflicting specs for arm " + spec.name);
    } else {
      merged_catalog.add(spec);
    }
  }
  if (merged_catalog.size() != catalog_.size()) {
    // Rebuild around the wider catalog, carrying our learned arms across
    // (indices are preserved; resource costs recompute from the catalog).
    BanditWare widened(merged_catalog, feature_names_, config_);
    for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
      widened.policy_.arm_model(arm) = policy_.arm_model(arm);
    }
    *this = std::move(widened);
  }

  for (ArmIndex j = 0; j < other.catalog_.size(); ++j) {
    const std::string& name = other.catalog_[j].name;
    const auto index = catalog_.index_of(name);
    policy_.arm_model(*index).merge(other.policy_.arm_model(j), base_model_for(name));
  }
  policy_.set_epsilon(merged_epsilon);
}

BanditWareStats BanditWare::export_stats() const {
  BanditWareStats stats;
  stats.epsilon = policy_.epsilon();
  stats.arms.reserve(catalog_.size());
  for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
    stats.arms.push_back(policy_.arm_model(arm).export_stats());
  }
  return stats;
}

BanditWare BanditWare::from_stats(const hw::HardwareCatalog& catalog,
                                  const std::vector<std::string>& feature_names,
                                  const BanditWareConfig& config,
                                  const BanditWareStats& stats) {
  BW_CHECK_MSG(stats.arms.size() == catalog.size(),
               "from_stats: arm count does not match the catalog");
  BanditWare restored(catalog, feature_names, config);
  for (ArmIndex arm = 0; arm < restored.num_arms(); ++arm) {
    const ArmStats& s = stats.arms[arm];
    restored.policy_.arm_model(arm).restore_stats(s.p, s.theta, s.n);
  }
  restored.policy_.set_epsilon(stats.epsilon);
  return restored;
}

std::vector<double> BanditWare::predictions(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  return policy_.predict_all(x);
}

std::size_t BanditWare::num_observations() const {
  std::size_t total = 0;
  for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
    total += policy_.arm_model(arm).count();
  }
  return total;
}

std::string BanditWare::save_state() const {
  // v2: sufficient statistics per arm. Incremental arms serialize (theta,
  // P, n) — O(arms * d^2) regardless of history length — while
  // exact_history arms still carry their raw observation rows (the batch
  // backend *is* its history). load_state below reads both v2 and v1.
  // The serialized flag is the arms' *effective* backend (every arm shares
  // it): a fit with intercept=false forces the batch backend even when
  // exact_history was not requested, and the reader checks record kinds
  // against this flag.
  const bool effective_exact_history = policy_.arm_model(0).exact_history();
  std::ostringstream os;
  os << std::setprecision(17);
  os << "banditware-state v2\n";
  os << "epsilon0 " << config_.policy.initial_epsilon << " decay " << config_.policy.decay
     << " tol_ratio " << config_.policy.tolerance.ratio << " tol_seconds "
     << config_.policy.tolerance.seconds << " exact_history "
     << (effective_exact_history ? 1 : 0) << "\n";
  os << "epsilon " << policy_.epsilon() << "\n";
  os << "features " << feature_names_.size();
  for (const auto& name : feature_names_) os << ' ' << name;
  os << "\n";
  os << "arms " << catalog_.size() << "\n";
  for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
    const auto& spec = catalog_[arm];
    const auto& model = policy_.arm_model(arm);
    os << "arm " << spec.name << ' ' << spec.cpus << ' ' << spec.memory_gb << ' '
       << spec.gpus;
    if (model.exact_history()) {
      os << " obs " << model.count() << "\n";
      for (std::size_t i = 0; i < model.count(); ++i) {
        for (double v : model.observed_features()[i]) os << v << ' ';
        os << model.observed_runtimes()[i] << "\n";
      }
    } else {
      const auto& rls = model.rls();
      os << " stats " << model.count() << "\n";
      os << "theta";
      for (double v : rls.theta()) os << ' ' << v;
      os << "\n";
      const auto& p = rls.precision_inverse();
      for (std::size_t r = 0; r < p.rows(); ++r) {
        os << "P";
        for (std::size_t c = 0; c < p.cols(); ++c) os << ' ' << p(r, c);
        os << "\n";
      }
    }
  }
  // Explicit trailer: a truncated numeric tail would still parse as a
  // (wrong) shorter number, so the reader verifies this sentinel instead.
  os << "end\n";
  return os.str();
}

BanditWare BanditWare::load_state(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) fail("bad header");
  if (line == "banditware-state v2") return load_state_v2(is);
  if (line == "banditware-state v1") return load_state_v1(is);
  fail("bad header");
}

BanditWare BanditWare::load_state_v1(std::istream& is) {
  // Legacy format: raw observation rows per arm, rebuilt by replaying every
  // observation through the policy. With the incremental backend the replay
  // is O(n d^2) total (it was O(n^2 d^2) when each observe refit the batch).
  const SnapshotHeader header = read_header(is, 1);
  std::string token;

  struct ArmData {
    std::vector<FeatureVector> xs;
    std::vector<double> ys;
  };
  std::vector<ArmData> arms(header.num_arms);
  hw::HardwareCatalog catalog;
  std::unordered_set<std::string> seen_names;
  for (auto& arm : arms) {
    hw::HardwareSpec spec;
    is >> token;
    if (token != "arm") fail("expected arm record");
    is >> spec.name >> spec.cpus >> spec.memory_gb >> token;
    if (token != "obs") fail("expected obs count");
    const std::size_t obs = read_obs_count(is);
    if (!is) fail("truncated arm header");
    check_unique_arm_name(seen_names, spec.name);
    catalog.add(spec);
    for (std::size_t i = 0; i < obs; ++i) {
      FeatureVector x(header.feature_names.size());
      double y = 0.0;
      for (double& v : x) is >> v;
      is >> y;
      if (!is) fail("truncated observation");
      arm.xs.push_back(std::move(x));
      arm.ys.push_back(y);
    }
  }

  BanditWare restored(std::move(catalog), header.feature_names, header.config);
  for (ArmIndex arm = 0; arm < restored.num_arms(); ++arm) {
    for (std::size_t i = 0; i < arms[arm].xs.size(); ++i) {
      restored.policy_.observe(arm, arms[arm].xs[i], arms[arm].ys[i]);
    }
  }
  // observe() decayed ε during the replay above; the snapshot value is
  // authoritative (the original run may have interleaved other decays).
  restored.policy_.set_epsilon(header.epsilon);
  return restored;
}

BanditWare BanditWare::load_state_v2(std::istream& is) {
  const SnapshotHeader header = read_header(is, 2);
  const std::size_t dim = header.feature_names.size();
  const std::size_t dim_aug = dim + 1;
  std::string token;

  struct ArmState {
    bool exact = false;
    std::size_t n = 0;
    linalg::Vector theta;          // stats record
    linalg::Matrix p;              // stats record
    std::vector<FeatureVector> xs; // obs record
    std::vector<double> ys;
  };
  std::vector<ArmState> arms(header.num_arms);
  hw::HardwareCatalog catalog;
  std::unordered_set<std::string> seen_names;
  for (auto& arm : arms) {
    hw::HardwareSpec spec;
    is >> token;
    if (token != "arm") fail("expected arm record");
    is >> spec.name >> spec.cpus >> spec.memory_gb >> spec.gpus >> token;
    if (token != "obs" && token != "stats") fail("expected obs or stats count");
    arm.exact = token == "obs";
    if (arm.exact != header.config.policy.exact_history) {
      fail("arm record kind contradicts exact_history flag");
    }
    arm.n = read_obs_count(is);
    if (!is) fail("truncated arm header");
    check_unique_arm_name(seen_names, spec.name);
    catalog.add(spec);
    if (arm.exact) {
      for (std::size_t i = 0; i < arm.n; ++i) {
        FeatureVector x(dim);
        double y = 0.0;
        for (double& v : x) is >> v;
        is >> y;
        if (!is) fail("truncated observation");
        arm.xs.push_back(std::move(x));
        arm.ys.push_back(y);
      }
    } else {
      is >> token;
      if (token != "theta") fail("expected theta");
      arm.theta.resize(dim_aug);
      for (double& v : arm.theta) is >> v;
      arm.p = linalg::Matrix(dim_aug, dim_aug);
      for (std::size_t r = 0; r < dim_aug; ++r) {
        is >> token;
        if (token != "P") fail("expected P row");
        for (std::size_t c = 0; c < dim_aug; ++c) is >> arm.p(r, c);
      }
      if (!is) fail("truncated sufficient statistics");
    }
  }
  is >> token;
  if (token != "end") fail("truncated state (missing end trailer)");

  BanditWare restored(std::move(catalog), header.feature_names, header.config);
  for (ArmIndex arm = 0; arm < restored.num_arms(); ++arm) {
    ArmState& state = arms[arm];
    if (state.exact) {
      for (std::size_t i = 0; i < state.xs.size(); ++i) {
        restored.policy_.observe(arm, state.xs[i], state.ys[i]);
      }
    } else {
      restored.policy_.arm_model(arm).restore_stats(state.p, state.theta, state.n);
    }
  }
  restored.policy_.set_epsilon(header.epsilon);
  return restored;
}

}  // namespace bw::core
