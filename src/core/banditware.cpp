#include "core/banditware.hpp"

#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "common/error.hpp"

namespace bw::core {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw ParseError("BanditWare::load_state: " + what);
}

/// Arms are bounded by what a serialized catalog can sanely hold; a
/// mis-parsed (negative / overflowed) count must not turn into a
/// multi-gigabyte replay allocation.
constexpr long long kMaxObservationsPerArm = 100'000'000;

/// Header counts are bounded the same way: a corrupted "features N" or
/// "arms N" line must fail cleanly, not drive a resize() into bad_alloc
/// (each feature later sizes a (d+1)x(d+1) matrix per arm). Real catalogs
/// hold a handful of arms over a handful of features; these caps are
/// orders of magnitude above any sane snapshot.
constexpr std::size_t kMaxFeatures = 512;
constexpr std::size_t kMaxArms = 4096;

/// Reads a per-arm observation count defensively: the stream extracts a
/// signed value so "-3" is caught as negative instead of wrapping to a
/// huge unsigned count, and overflow sets failbit.
std::size_t read_obs_count(std::istream& is) {
  long long obs = 0;
  is >> obs;
  if (!is) fail("malformed obs count");
  if (obs < 0) fail("negative obs count");
  if (obs > kMaxObservationsPerArm) fail("obs count exceeds limit");
  return static_cast<std::size_t>(obs);
}

void check_unique_arm_name(std::unordered_set<std::string>& seen,
                           const std::string& name) {
  if (!seen.insert(name).second) fail("duplicate arm name: " + name);
}

struct SnapshotHeader {
  BanditWareConfig config;
  double epsilon = 1.0;
  std::vector<std::string> feature_names;
  std::size_t num_arms = 0;
};

/// Parses the config / epsilon / features / arms preamble shared by v1, v2,
/// and v3 (v2+ additionally carries the exact_history flag on the config
/// line; the v3 policy line is read by the caller before this preamble).
SnapshotHeader read_header(std::istream& is, int version) {
  SnapshotHeader header;
  std::string token;
  is >> token;
  if (token != "epsilon0") fail("expected epsilon0");
  is >> header.config.policy.initial_epsilon;
  is >> token >> header.config.policy.decay;
  is >> token >> header.config.policy.tolerance.ratio;
  is >> token >> header.config.policy.tolerance.seconds;
  if (version >= 2) {
    int exact = 0;
    is >> token >> exact;
    if (token != "exact_history") fail("expected exact_history");
    header.config.policy.exact_history = exact != 0;
  }
  is >> token;
  if (token != "epsilon") fail("expected epsilon");
  is >> header.epsilon;

  std::size_t num_features = 0;
  is >> token >> num_features;
  // Check the stream BEFORE acting on the count: an overflowed extraction
  // leaves a garbage value that must not reach resize().
  if (!is || token != "features" || num_features == 0) fail("expected features");
  if (num_features > kMaxFeatures) fail("feature count exceeds limit");
  header.feature_names.resize(num_features);
  for (auto& name : header.feature_names) is >> name;

  is >> token >> header.num_arms;
  if (!is || token != "arms" || header.num_arms == 0) fail("expected arms");
  if (header.num_arms > kMaxArms) fail("arm count exceeds limit");
  return header;
}

}  // namespace

BanditWare::ProductionPolicy BanditWare::make_policy(const hw::HardwareCatalog& catalog,
                                                     std::size_t num_features,
                                                     const BanditWareConfig& config) {
  if (config.policy_kind == PolicyKind::kEpsilonGreedy) {
    return DecayingEpsilonGreedy(catalog, num_features, config.policy);
  }
  // LinUCB / Thompson read the RLS posterior for their exploration width;
  // a history-backed arm has none. intercept=false forces the batch backend
  // too, so the effective-backend rule is the thing to check.
  BW_CHECK_MSG(
      !LinearArmModel::uses_exact_history(config.policy.fit, config.policy.exact_history),
      "policy '" + to_string(config.policy_kind) +
          "' requires the incremental arm backend (exact_history, and "
          "intercept=false which forces it, are epsilon-greedy only)");
  ArmBank bank(catalog, num_features, config.policy.fit,
               /*exact_history=*/false, config.policy.tolerance,
               config.policy.resource_weights);
  if (config.policy_kind == PolicyKind::kLinUcb) {
    return LinUcb(std::move(bank), config.alpha);
  }
  return LinearThompson(std::move(bank), config.posterior_scale);
}

BankedPolicy& BanditWare::banked() {
  return std::visit([](auto& policy) -> BankedPolicy& { return policy; }, policy_);
}

const BankedPolicy& BanditWare::banked() const {
  return std::visit([](const auto& policy) -> const BankedPolicy& { return policy; },
                    policy_);
}

DecayingEpsilonGreedy* BanditWare::eps_greedy() {
  return std::get_if<DecayingEpsilonGreedy>(&policy_);
}

const DecayingEpsilonGreedy* BanditWare::eps_greedy() const {
  return std::get_if<DecayingEpsilonGreedy>(&policy_);
}

BanditWare::BanditWare(hw::HardwareCatalog catalog, std::vector<std::string> feature_names,
                       BanditWareConfig config)
    : catalog_(std::move(catalog)),
      feature_names_(std::move(feature_names)),
      config_(config),
      policy_(make_policy(catalog_, feature_names_.empty() ? 1 : feature_names_.size(),
                          config)) {
  BW_CHECK_MSG(!feature_names_.empty(), "BanditWare needs at least one feature name");
}

BanditWare::Decision BanditWare::next(const FeatureVector& x, Rng& rng) {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  Decision decision;
  decision.arm = banked().select(x, rng);
  if (const auto* eps = eps_greedy()) {
    decision.explored = eps->last_was_exploration();
    decision.predicted_runtime_s = banked().predict(decision.arm, x);
  } else {
    // LinUCB/Thompson have no explicit explore/exploit coin; report whether
    // the pick differed from the tolerant-greedy recommendation. One
    // tolerant pass is the price of the diagnostic (select scores with
    // LCB/posterior draws, not the greedy means, so its pass cannot answer
    // this) — and it is reused for the prediction on the greedy pick, so
    // serving under the exclusive shard lock pays no third pass.
    const TolerantChoice greedy = banked().recommend_choice(x);
    decision.explored = decision.arm != greedy.arm;
    decision.predicted_runtime_s = decision.explored
                                       ? banked().predict(decision.arm, x)
                                       : greedy.predicted_runtime;
  }
  decision.spec = &catalog_[decision.arm];
  return decision;
}

const hw::HardwareSpec& BanditWare::recommend(const FeatureVector& x) const {
  return catalog_[recommend_index(x)];
}

ArmIndex BanditWare::recommend_index(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  return banked().recommend(x);
}

BanditWare::Decision BanditWare::recommend_decision(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  const auto choice = banked().recommend_choice(x);
  Decision decision;
  decision.arm = choice.arm;
  decision.spec = &catalog_[choice.arm];
  decision.explored = false;
  decision.predicted_runtime_s = choice.predicted_runtime;
  return decision;
}

void BanditWare::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  banked().observe(arm, x, runtime_s);
}

double BanditWare::epsilon() const {
  const auto* eps = eps_greedy();
  return eps != nullptr ? eps->epsilon() : 0.0;
}

const LinearArmModel& BanditWare::arm_model(ArmIndex arm) const {
  return banked().arm_model(arm);
}

const DecayingEpsilonGreedy& BanditWare::policy() const {
  const auto* eps = eps_greedy();
  BW_CHECK_MSG(eps != nullptr,
               "policy(): instance runs '" + to_string(config_.policy_kind) +
                   "', not epsilon-greedy; use arm_model()/policy_kind()");
  return *eps;
}

void BanditWare::merge_from(const BanditWare& other, const BanditWare* base) {
  BW_CHECK_MSG(other.feature_names_ == feature_names_,
               "merge_from: feature names mismatch");
  BW_CHECK_MSG(other.config_.policy_kind == config_.policy_kind,
               "merge_from: policy kinds mismatch (" + to_string(config_.policy_kind) +
                   " vs " + to_string(other.config_.policy_kind) +
                   ") — cross-policy fusion is undefined");
  const auto& mine = config_.policy;
  const auto& theirs = other.config_.policy;
  BW_CHECK_MSG(mine.fit.ridge == theirs.fit.ridge &&
                   mine.fit.fallback_ridge == theirs.fit.fallback_ridge &&
                   mine.fit.intercept == theirs.fit.intercept,
               "merge_from: fit options mismatch — fusion would not be exact");
  BW_CHECK_MSG(banked().arm_model(0).exact_history() ==
                   other.banked().arm_model(0).exact_history(),
               "merge_from: model backends mismatch");
  switch (config_.policy_kind) {
    case PolicyKind::kEpsilonGreedy:
      BW_CHECK_MSG(mine.initial_epsilon == theirs.initial_epsilon &&
                       mine.decay == theirs.decay,
                   "merge_from: exploration schedule mismatch");
      break;
    case PolicyKind::kLinUcb:
      BW_CHECK_MSG(config_.alpha == other.config_.alpha,
                   "merge_from: linucb alpha mismatch");
      break;
    case PolicyKind::kThompson:
      BW_CHECK_MSG(config_.posterior_scale == other.config_.posterior_scale,
                   "merge_from: thompson posterior scale mismatch");
      break;
  }
  if (base != nullptr) {
    BW_CHECK_MSG(base->feature_names_ == feature_names_,
                 "merge_from: base feature names mismatch");
    BW_CHECK_MSG(base->config_.policy_kind == config_.policy_kind,
                 "merge_from: base policy kind mismatch");
  }

  // ε decays by α once per observation, so absorbing other's stream maps to
  // multiplying the decay factors each side accumulated since the shared
  // starting point (ε₀, or the common ancestor's ε under replica sync).
  // LinUCB/Thompson carry no mutable scalar state outside the arms — their
  // exploration width is posterior-driven, so the arm fusion below is the
  // whole merge.
  double merged_epsilon = 0.0;
  if (eps_greedy() != nullptr) {
    const double eps_anchor = base != nullptr ? base->epsilon() : mine.initial_epsilon;
    merged_epsilon =
        eps_anchor > 0.0 ? epsilon() * other.epsilon() / eps_anchor : 0.0;
  }

  auto base_model_for = [base](const std::string& name) -> const LinearArmModel* {
    if (base == nullptr) return nullptr;
    const auto index = base->catalog_.index_of(name);
    return index ? &base->banked().arm_model(*index) : nullptr;
  };

  // Union of arms: self arms keep their indices, other-only arms append.
  hw::HardwareCatalog merged_catalog = catalog_;
  for (ArmIndex j = 0; j < other.catalog_.size(); ++j) {
    const hw::HardwareSpec& spec = other.catalog_[j];
    if (const auto index = merged_catalog.index_of(spec.name)) {
      BW_CHECK_MSG(merged_catalog[*index] == spec,
                   "merge_from: conflicting specs for arm " + spec.name);
    } else {
      merged_catalog.add(spec);
    }
  }
  if (merged_catalog.size() != catalog_.size()) {
    // Rebuild around the wider catalog, carrying our learned arms across
    // (indices are preserved; resource costs recompute from the catalog).
    BanditWare widened(merged_catalog, feature_names_, config_);
    for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
      widened.banked().arm_model(arm) = banked().arm_model(arm);
    }
    *this = std::move(widened);
  }

  for (ArmIndex j = 0; j < other.catalog_.size(); ++j) {
    const std::string& name = other.catalog_[j].name;
    const auto index = catalog_.index_of(name);
    banked().arm_model(*index).merge(other.banked().arm_model(j), base_model_for(name));
  }
  if (auto* eps = eps_greedy()) eps->set_epsilon(merged_epsilon);
}

BanditWareStats BanditWare::export_stats() const {
  BanditWareStats stats;
  stats.epsilon = epsilon();
  stats.arms.reserve(catalog_.size());
  for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
    stats.arms.push_back(banked().arm_model(arm).export_stats());
  }
  return stats;
}

BanditWare BanditWare::from_stats(const hw::HardwareCatalog& catalog,
                                  const std::vector<std::string>& feature_names,
                                  const BanditWareConfig& config,
                                  const BanditWareStats& stats) {
  BW_CHECK_MSG(stats.arms.size() == catalog.size(),
               "from_stats: arm count does not match the catalog");
  BanditWare restored(catalog, feature_names, config);
  for (ArmIndex arm = 0; arm < restored.num_arms(); ++arm) {
    const ArmStats& s = stats.arms[arm];
    restored.banked().arm_model(arm).restore_stats(s.p, s.theta, s.n);
  }
  if (auto* eps = restored.eps_greedy()) eps->set_epsilon(stats.epsilon);
  return restored;
}

std::vector<double> BanditWare::predictions(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  return banked().predict_all(x);
}

std::size_t BanditWare::num_observations() const {
  std::size_t total = 0;
  for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
    total += banked().arm_model(arm).count();
  }
  return total;
}

std::string BanditWare::save_state() const {
  // Sufficient statistics per arm. Incremental arms serialize (theta, P, n)
  // — O(arms * d^2) regardless of history length — while exact_history arms
  // still carry their raw observation rows (the batch backend *is* its
  // history). ε-greedy instances write the pre-policy-axis v2 format
  // byte-for-byte (existing snapshots and golden fixtures stay stable);
  // LinUCB/Thompson write v3, which only adds the `policy` line below.
  // load_state below reads v3, v2, and v1.
  // The serialized flag is the arms' *effective* backend (every arm shares
  // it): a fit with intercept=false forces the batch backend even when
  // exact_history was not requested, and the reader checks record kinds
  // against this flag.
  const bool eps_kind = config_.policy_kind == PolicyKind::kEpsilonGreedy;
  const bool effective_exact_history = banked().arm_model(0).exact_history();
  std::ostringstream os;
  os << std::setprecision(17);
  os << (eps_kind ? "banditware-state v2\n" : "banditware-state v3\n");
  if (!eps_kind) {
    os << "policy " << to_string(config_.policy_kind);
    if (config_.policy_kind == PolicyKind::kLinUcb) {
      os << " alpha " << config_.alpha;
    } else {
      os << " posterior_scale " << config_.posterior_scale;
    }
    os << "\n";
  }
  // Non-ε policies carry no decaying exploration rate; the schedule fields
  // round-trip the config so the shared header stays one format.
  const double epsilon_line =
      eps_kind ? epsilon() : config_.policy.initial_epsilon;
  os << "epsilon0 " << config_.policy.initial_epsilon << " decay " << config_.policy.decay
     << " tol_ratio " << config_.policy.tolerance.ratio << " tol_seconds "
     << config_.policy.tolerance.seconds << " exact_history "
     << (effective_exact_history ? 1 : 0) << "\n";
  os << "epsilon " << epsilon_line << "\n";
  os << "features " << feature_names_.size();
  for (const auto& name : feature_names_) os << ' ' << name;
  os << "\n";
  os << "arms " << catalog_.size() << "\n";
  for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
    const auto& spec = catalog_[arm];
    const auto& model = banked().arm_model(arm);
    os << "arm " << spec.name << ' ' << spec.cpus << ' ' << spec.memory_gb << ' '
       << spec.gpus;
    if (model.exact_history()) {
      os << " obs " << model.count() << "\n";
      for (std::size_t i = 0; i < model.count(); ++i) {
        for (double v : model.observed_features()[i]) os << v << ' ';
        os << model.observed_runtimes()[i] << "\n";
      }
    } else {
      const auto& rls = model.rls();
      os << " stats " << model.count() << "\n";
      os << "theta";
      for (double v : rls.theta()) os << ' ' << v;
      os << "\n";
      const auto& p = rls.precision_inverse();
      for (std::size_t r = 0; r < p.rows(); ++r) {
        os << "P";
        for (std::size_t c = 0; c < p.cols(); ++c) os << ' ' << p(r, c);
        os << "\n";
      }
    }
  }
  // Explicit trailer: a truncated numeric tail would still parse as a
  // (wrong) shorter number, so the reader verifies this sentinel instead.
  os << "end\n";
  return os.str();
}

BanditWare BanditWare::load_state(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) fail("bad header");
  if (line == "banditware-state v3") return load_state_v2(is, 3);
  if (line == "banditware-state v2") return load_state_v2(is, 2);
  if (line == "banditware-state v1") return load_state_v1(is);
  fail("bad header");
}

BanditWare BanditWare::load_state_v1(std::istream& is) {
  // Legacy format: raw observation rows per arm, rebuilt by replaying every
  // observation through the policy. With the incremental backend the replay
  // is O(n d^2) total (it was O(n^2 d^2) when each observe refit the batch).
  const SnapshotHeader header = read_header(is, 1);
  std::string token;

  struct ArmData {
    std::vector<FeatureVector> xs;
    std::vector<double> ys;
  };
  std::vector<ArmData> arms(header.num_arms);
  hw::HardwareCatalog catalog;
  std::unordered_set<std::string> seen_names;
  for (auto& arm : arms) {
    hw::HardwareSpec spec;
    is >> token;
    if (token != "arm") fail("expected arm record");
    is >> spec.name >> spec.cpus >> spec.memory_gb >> token;
    if (token != "obs") fail("expected obs count");
    const std::size_t obs = read_obs_count(is);
    if (!is) fail("truncated arm header");
    check_unique_arm_name(seen_names, spec.name);
    catalog.add(spec);
    for (std::size_t i = 0; i < obs; ++i) {
      FeatureVector x(header.feature_names.size());
      double y = 0.0;
      for (double& v : x) is >> v;
      is >> y;
      if (!is) fail("truncated observation");
      arm.xs.push_back(std::move(x));
      arm.ys.push_back(y);
    }
  }

  BanditWare restored(std::move(catalog), header.feature_names, header.config);
  for (ArmIndex arm = 0; arm < restored.num_arms(); ++arm) {
    for (std::size_t i = 0; i < arms[arm].xs.size(); ++i) {
      restored.banked().observe(arm, arms[arm].xs[i], arms[arm].ys[i]);
    }
  }
  // observe() decayed ε during the replay above; the snapshot value is
  // authoritative (the original run may have interleaved other decays).
  restored.eps_greedy()->set_epsilon(header.epsilon);
  return restored;
}

BanditWare BanditWare::load_state_v2(std::istream& is, int version) {
  std::string token;
  PolicyKind kind = PolicyKind::kEpsilonGreedy;
  double alpha = 1.0;
  double posterior_scale = 1.0;
  if (version >= 3) {
    is >> token;
    if (!is || token != "policy") fail("expected policy");
    std::string kind_name;
    is >> kind_name;
    if (!is) fail("truncated policy line");
    try {
      kind = parse_policy_kind(kind_name);
    } catch (const InvalidArgument& error) {
      fail(error.what());
    }
    // Scalar ranges are validated here, not left to the policy
    // constructors: a corrupted snapshot must surface as the documented
    // ParseError, never as the constructors' InvalidArgument.
    if (kind == PolicyKind::kLinUcb) {
      is >> token >> alpha;
      if (!is || token != "alpha") fail("expected alpha");
      if (!std::isfinite(alpha) || alpha < 0.0) fail("alpha out of range");
    } else if (kind == PolicyKind::kThompson) {
      is >> token >> posterior_scale;
      if (!is || token != "posterior_scale") fail("expected posterior_scale");
      if (!std::isfinite(posterior_scale) || posterior_scale <= 0.0) {
        fail("posterior_scale out of range");
      }
    }
  }
  SnapshotHeader header = read_header(is, version);
  header.config.policy_kind = kind;
  header.config.alpha = alpha;
  header.config.posterior_scale = posterior_scale;
  const std::size_t dim = header.feature_names.size();
  const std::size_t dim_aug = dim + 1;

  struct ArmState {
    bool exact = false;
    std::size_t n = 0;
    linalg::Vector theta;          // stats record
    linalg::Matrix p;              // stats record
    std::vector<FeatureVector> xs; // obs record
    std::vector<double> ys;
  };
  std::vector<ArmState> arms(header.num_arms);
  hw::HardwareCatalog catalog;
  std::unordered_set<std::string> seen_names;
  for (auto& arm : arms) {
    hw::HardwareSpec spec;
    is >> token;
    if (token != "arm") fail("expected arm record");
    is >> spec.name >> spec.cpus >> spec.memory_gb >> spec.gpus >> token;
    if (token != "obs" && token != "stats") fail("expected obs or stats count");
    arm.exact = token == "obs";
    if (arm.exact != header.config.policy.exact_history) {
      fail("arm record kind contradicts exact_history flag");
    }
    arm.n = read_obs_count(is);
    if (!is) fail("truncated arm header");
    check_unique_arm_name(seen_names, spec.name);
    catalog.add(spec);
    if (arm.exact) {
      for (std::size_t i = 0; i < arm.n; ++i) {
        FeatureVector x(dim);
        double y = 0.0;
        for (double& v : x) is >> v;
        is >> y;
        if (!is) fail("truncated observation");
        arm.xs.push_back(std::move(x));
        arm.ys.push_back(y);
      }
    } else {
      is >> token;
      if (token != "theta") fail("expected theta");
      arm.theta.resize(dim_aug);
      for (double& v : arm.theta) is >> v;
      arm.p = linalg::Matrix(dim_aug, dim_aug);
      for (std::size_t r = 0; r < dim_aug; ++r) {
        is >> token;
        if (token != "P") fail("expected P row");
        for (std::size_t c = 0; c < dim_aug; ++c) is >> arm.p(r, c);
      }
      if (!is) fail("truncated sufficient statistics");
    }
  }
  is >> token;
  if (token != "end") fail("truncated state (missing end trailer)");

  BanditWare restored(std::move(catalog), header.feature_names, header.config);
  for (ArmIndex arm = 0; arm < restored.num_arms(); ++arm) {
    ArmState& state = arms[arm];
    if (state.exact) {
      for (std::size_t i = 0; i < state.xs.size(); ++i) {
        restored.banked().observe(arm, state.xs[i], state.ys[i]);
      }
    } else {
      restored.banked().arm_model(arm).restore_stats(state.p, state.theta, state.n);
    }
  }
  if (auto* eps = restored.eps_greedy()) eps->set_epsilon(header.epsilon);
  return restored;
}

}  // namespace bw::core
