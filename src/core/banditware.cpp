#include "core/banditware.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace bw::core {

BanditWare::BanditWare(hw::HardwareCatalog catalog, std::vector<std::string> feature_names,
                       BanditWareConfig config)
    : catalog_(std::move(catalog)),
      feature_names_(std::move(feature_names)),
      config_(config),
      policy_(catalog_, feature_names_.empty() ? 1 : feature_names_.size(), config.policy) {
  BW_CHECK_MSG(!feature_names_.empty(), "BanditWare needs at least one feature name");
}

BanditWare::Decision BanditWare::next(const FeatureVector& x, Rng& rng) {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  Decision decision;
  decision.arm = policy_.select(x, rng);
  decision.explored = policy_.last_was_exploration();
  decision.spec = &catalog_[decision.arm];
  decision.predicted_runtime_s = policy_.predict(decision.arm, x);
  return decision;
}

const hw::HardwareSpec& BanditWare::recommend(const FeatureVector& x) const {
  return catalog_[recommend_index(x)];
}

ArmIndex BanditWare::recommend_index(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  return policy_.recommend(x);
}

BanditWare::Decision BanditWare::recommend_decision(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  const auto choice = policy_.recommend_choice(x);
  Decision decision;
  decision.arm = choice.arm;
  decision.spec = &catalog_[choice.arm];
  decision.explored = false;
  decision.predicted_runtime_s = choice.predicted_runtime;
  return decision;
}

void BanditWare::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  policy_.observe(arm, x, runtime_s);
}

std::vector<double> BanditWare::predictions(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  return policy_.predict_all(x);
}

std::size_t BanditWare::num_observations() const {
  std::size_t total = 0;
  for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
    total += policy_.arm_model(arm).count();
  }
  return total;
}

std::string BanditWare::save_state() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "banditware-state v1\n";
  os << "epsilon0 " << config_.policy.initial_epsilon << " decay " << config_.policy.decay
     << " tol_ratio " << config_.policy.tolerance.ratio << " tol_seconds "
     << config_.policy.tolerance.seconds << "\n";
  os << "epsilon " << policy_.epsilon() << "\n";
  os << "features " << feature_names_.size();
  for (const auto& name : feature_names_) os << ' ' << name;
  os << "\n";
  os << "arms " << catalog_.size() << "\n";
  for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
    const auto& spec = catalog_[arm];
    const auto& model = policy_.arm_model(arm);
    os << "arm " << spec.name << ' ' << spec.cpus << ' ' << spec.memory_gb << " obs "
       << model.count() << "\n";
    for (std::size_t i = 0; i < model.count(); ++i) {
      for (double v : model.observed_features()[i]) os << v << ' ';
      os << model.observed_runtimes()[i] << "\n";
    }
  }
  return os.str();
}

BanditWare BanditWare::load_state(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  auto fail = [](const std::string& what) -> void {
    throw ParseError("BanditWare::load_state: " + what);
  };

  if (!std::getline(is, line) || line != "banditware-state v1") fail("bad header");

  BanditWareConfig config;
  std::string token;
  double epsilon = 1.0;
  {
    is >> token;
    if (token != "epsilon0") fail("expected epsilon0");
    is >> config.policy.initial_epsilon;
    is >> token >> config.policy.decay;
    is >> token >> config.policy.tolerance.ratio;
    is >> token >> config.policy.tolerance.seconds;
    is >> token;
    if (token != "epsilon") fail("expected epsilon");
    is >> epsilon;
  }

  std::size_t num_features = 0;
  is >> token >> num_features;
  if (token != "features" || num_features == 0) fail("expected features");
  std::vector<std::string> feature_names(num_features);
  for (auto& name : feature_names) is >> name;

  std::size_t num_arms = 0;
  is >> token >> num_arms;
  if (token != "arms" || num_arms == 0) fail("expected arms");

  struct ArmData {
    hw::HardwareSpec spec;
    std::vector<FeatureVector> xs;
    std::vector<double> ys;
  };
  std::vector<ArmData> arms(num_arms);
  hw::HardwareCatalog catalog;
  for (auto& arm : arms) {
    std::size_t obs = 0;
    is >> token;
    if (token != "arm") fail("expected arm record");
    is >> arm.spec.name >> arm.spec.cpus >> arm.spec.memory_gb >> token >> obs;
    if (token != "obs") fail("expected obs count");
    if (!is) fail("truncated arm header");
    catalog.add(arm.spec);
    for (std::size_t i = 0; i < obs; ++i) {
      FeatureVector x(num_features);
      double y = 0.0;
      for (double& v : x) is >> v;
      is >> y;
      if (!is) fail("truncated observation");
      arm.xs.push_back(std::move(x));
      arm.ys.push_back(y);
    }
  }

  BanditWare restored(std::move(catalog), std::move(feature_names), config);
  // Replaying observations rebuilds the per-arm least-squares models; the
  // saved ε is then restored explicitly (observe() decays it).
  for (ArmIndex arm = 0; arm < restored.num_arms(); ++arm) {
    for (std::size_t i = 0; i < arms[arm].xs.size(); ++i) {
      restored.policy_.observe(arm, arms[arm].xs[i], arms[arm].ys[i]);
    }
  }
  // observe() decayed ε during the replay above; the snapshot value is
  // authoritative (the original run may have interleaved other decays).
  restored.policy_.set_epsilon(epsilon);
  return restored;
}

}  // namespace bw::core
