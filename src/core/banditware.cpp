#include "core/banditware.hpp"

#include <sstream>

#include "common/error.hpp"
#include "core/frozen_model.hpp"
#include "io/state_io.hpp"

namespace bw::core {

BanditWare::ProductionPolicy BanditWare::make_policy(const hw::HardwareCatalog& catalog,
                                                     std::size_t num_features,
                                                     const BanditWareConfig& config) {
  if (config.policy_kind == PolicyKind::kEpsilonGreedy) {
    return DecayingEpsilonGreedy(catalog, num_features, config.policy);
  }
  // LinUCB / Thompson read the RLS posterior for their exploration width;
  // a history-backed arm has none. intercept=false forces the batch backend
  // too, so the effective-backend rule is the thing to check.
  BW_CHECK_MSG(
      !LinearArmModel::uses_exact_history(config.policy.fit, config.policy.exact_history),
      "policy '" + to_string(config.policy_kind) +
          "' requires the incremental arm backend (exact_history, and "
          "intercept=false which forces it, are epsilon-greedy only)");
  ArmBank bank(catalog, num_features, config.policy.fit,
               /*exact_history=*/false, config.policy.tolerance,
               config.policy.resource_weights);
  if (config.policy_kind == PolicyKind::kLinUcb) {
    return LinUcb(std::move(bank), config.alpha);
  }
  return LinearThompson(std::move(bank), config.posterior_scale);
}

BankedPolicy& BanditWare::banked() {
  return std::visit([](auto& policy) -> BankedPolicy& { return policy; }, policy_);
}

const BankedPolicy& BanditWare::banked() const {
  return std::visit([](const auto& policy) -> const BankedPolicy& { return policy; },
                    policy_);
}

DecayingEpsilonGreedy* BanditWare::eps_greedy() {
  return std::get_if<DecayingEpsilonGreedy>(&policy_);
}

const DecayingEpsilonGreedy* BanditWare::eps_greedy() const {
  return std::get_if<DecayingEpsilonGreedy>(&policy_);
}

BanditWare::BanditWare(hw::HardwareCatalog catalog, std::vector<std::string> feature_names,
                       BanditWareConfig config)
    : catalog_(std::move(catalog)),
      feature_names_(std::move(feature_names)),
      config_(config),
      policy_(make_policy(catalog_, feature_names_.empty() ? 1 : feature_names_.size(),
                          config)) {
  BW_CHECK_MSG(!feature_names_.empty(), "BanditWare needs at least one feature name");
}

BanditWare::Decision BanditWare::next(const FeatureVector& x, Rng& rng) {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  Decision decision;
  decision.arm = banked().select(x, rng);
  if (const auto* eps = eps_greedy()) {
    decision.explored = eps->last_was_exploration();
    decision.predicted_runtime_s = banked().predict(decision.arm, x);
  } else {
    // LinUCB/Thompson have no explicit explore/exploit coin; report whether
    // the pick differed from the tolerant-greedy recommendation. One
    // tolerant pass is the price of the diagnostic (select scores with
    // LCB/posterior draws, not the greedy means, so its pass cannot answer
    // this) — and it is reused for the prediction on the greedy pick, so
    // serving under the exclusive shard lock pays no third pass.
    const TolerantChoice greedy = banked().recommend_choice(x);
    decision.explored = decision.arm != greedy.arm;
    decision.predicted_runtime_s = decision.explored
                                       ? banked().predict(decision.arm, x)
                                       : greedy.predicted_runtime;
  }
  decision.spec = &catalog_[decision.arm];
  return decision;
}

const hw::HardwareSpec& BanditWare::recommend(const FeatureVector& x) const {
  return catalog_[recommend_index(x)];
}

ArmIndex BanditWare::recommend_index(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  return banked().recommend(x);
}

BanditWare::Decision BanditWare::recommend_decision(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  const auto choice = banked().recommend_choice(x);
  Decision decision;
  decision.arm = choice.arm;
  decision.spec = &catalog_[choice.arm];
  decision.explored = false;
  decision.predicted_runtime_s = choice.predicted_runtime;
  return decision;
}

void BanditWare::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  banked().observe(arm, x, runtime_s);
}

double BanditWare::epsilon() const {
  const auto* eps = eps_greedy();
  return eps != nullptr ? eps->epsilon() : 0.0;
}

const LinearArmModel& BanditWare::arm_model(ArmIndex arm) const {
  return banked().arm_model(arm);
}

const DecayingEpsilonGreedy& BanditWare::policy() const {
  const auto* eps = eps_greedy();
  BW_CHECK_MSG(eps != nullptr,
               "policy(): instance runs '" + to_string(config_.policy_kind) +
                   "', not epsilon-greedy; use arm_model()/policy_kind()");
  return *eps;
}

void BanditWare::merge_from(const BanditWare& other, const BanditWare* base) {
  BW_CHECK_MSG(other.feature_names_ == feature_names_,
               "merge_from: feature names mismatch");
  BW_CHECK_MSG(other.config_.policy_kind == config_.policy_kind,
               "merge_from: policy kinds mismatch (" + to_string(config_.policy_kind) +
                   " vs " + to_string(other.config_.policy_kind) +
                   ") — cross-policy fusion is undefined");
  const auto& mine = config_.policy;
  const auto& theirs = other.config_.policy;
  BW_CHECK_MSG(mine.fit.ridge == theirs.fit.ridge &&
                   mine.fit.fallback_ridge == theirs.fit.fallback_ridge &&
                   mine.fit.intercept == theirs.fit.intercept,
               "merge_from: fit options mismatch — fusion would not be exact");
  BW_CHECK_MSG(mine.fit.forgetting == theirs.fit.forgetting,
               "merge_from: forgetting factor mismatch — fusion would not be exact");
  BW_CHECK_MSG(banked().arm_model(0).exact_history() ==
                   other.banked().arm_model(0).exact_history(),
               "merge_from: model backends mismatch");
  switch (config_.policy_kind) {
    case PolicyKind::kEpsilonGreedy:
      BW_CHECK_MSG(mine.initial_epsilon == theirs.initial_epsilon &&
                       mine.decay == theirs.decay,
                   "merge_from: exploration schedule mismatch");
      break;
    case PolicyKind::kLinUcb:
      BW_CHECK_MSG(config_.alpha == other.config_.alpha,
                   "merge_from: linucb alpha mismatch");
      break;
    case PolicyKind::kThompson:
      BW_CHECK_MSG(config_.posterior_scale == other.config_.posterior_scale,
                   "merge_from: thompson posterior scale mismatch");
      break;
  }
  if (base != nullptr) {
    BW_CHECK_MSG(base->feature_names_ == feature_names_,
                 "merge_from: base feature names mismatch");
    BW_CHECK_MSG(base->config_.policy_kind == config_.policy_kind,
                 "merge_from: base policy kind mismatch");
  }

  // ε decays by α once per observation, so absorbing other's stream maps to
  // multiplying the decay factors each side accumulated since the shared
  // starting point (ε₀, or the common ancestor's ε under replica sync).
  // LinUCB/Thompson carry no mutable scalar state outside the arms — their
  // exploration width is posterior-driven, so the arm fusion below is the
  // whole merge.
  double merged_epsilon = 0.0;
  if (eps_greedy() != nullptr) {
    const double eps_anchor = base != nullptr ? base->epsilon() : mine.initial_epsilon;
    merged_epsilon =
        eps_anchor > 0.0 ? epsilon() * other.epsilon() / eps_anchor : 0.0;
  }

  auto base_model_for = [base](const std::string& name) -> const LinearArmModel* {
    if (base == nullptr) return nullptr;
    const auto index = base->catalog_.index_of(name);
    return index ? &base->banked().arm_model(*index) : nullptr;
  };

  // Union of arms: self arms keep their indices, other-only arms append.
  hw::HardwareCatalog merged_catalog = catalog_;
  for (ArmIndex j = 0; j < other.catalog_.size(); ++j) {
    const hw::HardwareSpec& spec = other.catalog_[j];
    if (const auto index = merged_catalog.index_of(spec.name)) {
      BW_CHECK_MSG(merged_catalog[*index] == spec,
                   "merge_from: conflicting specs for arm " + spec.name);
    } else {
      merged_catalog.add(spec);
    }
  }
  if (merged_catalog.size() != catalog_.size()) {
    // Rebuild around the wider catalog, carrying our learned arms across
    // (indices are preserved; resource costs recompute from the catalog).
    BanditWare widened(merged_catalog, feature_names_, config_);
    for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
      widened.banked().arm_model(arm) = banked().arm_model(arm);
    }
    *this = std::move(widened);
  }

  for (ArmIndex j = 0; j < other.catalog_.size(); ++j) {
    const std::string& name = other.catalog_[j].name;
    const auto index = catalog_.index_of(name);
    banked().arm_model(*index).merge(other.banked().arm_model(j), base_model_for(name));
  }
  if (auto* eps = eps_greedy()) eps->set_epsilon(merged_epsilon);
}

BanditWareStats BanditWare::export_stats() const {
  BanditWareStats stats;
  stats.epsilon = epsilon();
  stats.arms.reserve(catalog_.size());
  for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
    stats.arms.push_back(banked().arm_model(arm).export_stats());
  }
  return stats;
}

BanditWare BanditWare::from_stats(const hw::HardwareCatalog& catalog,
                                  const std::vector<std::string>& feature_names,
                                  const BanditWareConfig& config,
                                  const BanditWareStats& stats) {
  BW_CHECK_MSG(stats.arms.size() == catalog.size(),
               "from_stats: arm count does not match the catalog");
  BanditWare restored(catalog, feature_names, config);
  for (ArmIndex arm = 0; arm < restored.num_arms(); ++arm) {
    const ArmStats& s = stats.arms[arm];
    restored.banked().arm_model(arm).restore_stats(s.p, s.theta, s.n);
  }
  if (auto* eps = restored.eps_greedy()) eps->set_epsilon(stats.epsilon);
  return restored;
}

std::shared_ptr<const FrozenModel> BanditWare::freeze(std::uint64_t epoch) const {
  const ArmBank& bank = banked().bank();
  std::vector<std::shared_ptr<const FrozenArm>> arms;
  arms.reserve(bank.size());
  for (ArmIndex arm = 0; arm < bank.size(); ++arm) {
    arms.push_back(std::make_shared<const FrozenArm>(FrozenArm{bank.arm(arm).model()}));
  }
  return std::make_shared<const FrozenModel>(
      std::move(arms),
      std::make_shared<const std::vector<double>>(bank.resource_costs()),
      bank.tolerance(), feature_names_.size(), epoch);
}

std::shared_ptr<const FrozenModel> BanditWare::refreeze(const FrozenModel& prev,
                                                        std::span<const ArmIndex> dirty,
                                                        std::uint64_t epoch) const {
  const ArmBank& bank = banked().bank();
  BW_CHECK_MSG(prev.num_arms() == bank.size() && prev.dim() == feature_names_.size(),
               "refreeze: previous snapshot shape mismatch");
  std::vector<std::shared_ptr<const FrozenArm>> arms;
  arms.reserve(bank.size());
  for (ArmIndex arm = 0; arm < bank.size(); ++arm) arms.push_back(prev.arm_node(arm));
  for (const ArmIndex arm : dirty) {
    BW_CHECK_MSG(arm < bank.size(), "refreeze: dirty arm out of range");
    arms[arm] = std::make_shared<const FrozenArm>(FrozenArm{bank.arm(arm).model()});
  }
  // Delta ctor: the coefficient plane is copied flat from `prev` and only
  // the dirty rows are re-read from the new nodes.
  return std::make_shared<const FrozenModel>(std::move(arms),
                                             prev.shared_resource_costs(),
                                             prev.tolerance(), prev.dim(), epoch,
                                             prev, dirty);
}

std::vector<double> BanditWare::predictions(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  return banked().predict_all(x);
}

std::size_t BanditWare::num_observations() const {
  std::size_t total = 0;
  for (ArmIndex arm = 0; arm < catalog_.size(); ++arm) {
    total += banked().arm_model(arm).count();
  }
  return total;
}

std::string BanditWare::save_state() const {
  // Thin wrapper over the io layer (src/io/), which owns every snapshot
  // codec. Text is the default format; see io::save_state for binary.
  std::ostringstream os;
  io::save_state(os, *this, io::Format::kText);
  return os.str();
}

BanditWare BanditWare::load_state(const std::string& text) {
  // Thin wrapper over io::load_state, which auto-detects text v1-v3 and
  // the binary container from the leading bytes.
  std::istringstream is(text, std::ios::binary);
  return io::load_state(is);
}

}  // namespace bw::core
