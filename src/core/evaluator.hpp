#pragma once
// Replay evaluation: runs a policy online against a RunTable, exactly the
// way the paper evaluates Algorithm 1 — each round an incoming workflow is
// drawn, the policy schedules it, the recorded runtime on the chosen
// hardware is revealed, and dataset-level RMSE/accuracy are computed with
// the *current* models. MultiSimRunner repeats this across seeds and
// aggregates per-round mean ± stddev (the blue bars of Figs. 4/7/9-12).

#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/metrics.hpp"
#include "core/policy.hpp"
#include "core/run_table.hpp"

namespace bw::core {

struct ReplayConfig {
  std::size_t num_rounds = 50;
  /// Tolerance used for the *accuracy metric* (usually matches the
  /// policy's own selection tolerance).
  ToleranceParams accuracy_tolerance{};
  hw::ResourceWeights resource_weights{};
  /// If false, skip the per-round full-table evaluation (cheaper when only
  /// final metrics and regret are needed).
  bool per_round_metrics = true;
  std::uint64_t seed = 1;
};

struct ReplayResult {
  // Per-round series (empty when per_round_metrics is false).
  std::vector<double> rmse;
  std::vector<double> accuracy;
  std::vector<double> mean_resource_cost;

  // Per-round trajectory.
  std::vector<ArmIndex> chosen_arm;
  std::vector<double> observed_runtime;
  std::vector<double> instant_regret;  ///< chosen - best actual, per round

  double cumulative_regret = 0.0;
  DatasetMetrics final_metrics;  ///< metrics after the last round
};

/// Runs one replay simulation of `policy` (reset first) on `table`.
ReplayResult replay(Policy& policy, const RunTable& table, const ReplayConfig& config);

struct MultiSimResult {
  RoundAggregate rmse;                ///< across simulations, per round
  RoundAggregate accuracy;
  RoundAggregate resource_cost;
  std::vector<double> final_rmse;     ///< one per simulation
  std::vector<double> final_accuracy;
  std::vector<double> cumulative_regret;
  DatasetMetrics full_fit_metrics;    ///< the red-line baseline
};

/// Runs `num_simulations` independent replays (seeds derived from
/// config.seed) and aggregates. `pool` parallelizes across simulations
/// when provided. Also computes the full-fit baseline once.
MultiSimResult run_simulations(const PolicyFactory& make_policy, const RunTable& table,
                               const ReplayConfig& config, std::size_t num_simulations,
                               ThreadPool* pool = nullptr);

}  // namespace bw::core
