#include "core/tolerant.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace bw::core {

TolerantChoice tolerant_select(std::span<const double> predictions,
                               std::span<const double> resource_costs,
                               const ToleranceParams& tolerance) {
  BW_CHECK_MSG(!predictions.empty(), "tolerant_select: no arms");
  BW_CHECK_MSG(predictions.size() == resource_costs.size(),
               "tolerant_select: predictions/costs size mismatch");
  BW_CHECK_MSG(tolerance.ratio >= 0.0 && tolerance.seconds >= 0.0,
               "tolerance parameters must be non-negative");
  // One fused scan for validity and the fastest arm: this runs once per
  // decision on the serving path, so the O(arms) passes are worth counting.
  BW_CHECK_MSG(std::isfinite(predictions[0]),
               "tolerant_select: non-finite prediction");
  ArmIndex fastest = 0;
  double r_min = predictions[0];
  for (ArmIndex arm = 1; arm < predictions.size(); ++arm) {
    const double p = predictions[arm];
    BW_CHECK_MSG(std::isfinite(p), "tolerant_select: non-finite prediction");
    if (p < r_min) {
      r_min = p;
      fastest = arm;
    }
  }
  const double limit = r_min + tolerance.ratio * std::max(r_min, 0.0) + tolerance.seconds;

  TolerantChoice choice;
  choice.limit = limit;
  choice.arm = fastest;
  double best_cost = resource_costs[fastest];
  for (ArmIndex arm = 0; arm < predictions.size(); ++arm) {
    if (predictions[arm] > limit) continue;
    ++choice.candidates;
    // Most resource-efficient within the limit; ties keep the lower index.
    if (resource_costs[arm] < best_cost) {
      best_cost = resource_costs[arm];
      choice.arm = arm;
    }
  }
  choice.predicted_runtime = predictions[choice.arm];
  choice.efficiency_tie_break = choice.arm != fastest;
  return choice;
}

}  // namespace bw::core
