#include "core/tolerant.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace bw::core {

TolerantChoice tolerant_select(const std::vector<double>& predictions,
                               const std::vector<double>& resource_costs,
                               const ToleranceParams& tolerance) {
  BW_CHECK_MSG(!predictions.empty(), "tolerant_select: no arms");
  BW_CHECK_MSG(predictions.size() == resource_costs.size(),
               "tolerant_select: predictions/costs size mismatch");
  BW_CHECK_MSG(tolerance.ratio >= 0.0 && tolerance.seconds >= 0.0,
               "tolerance parameters must be non-negative");
  for (double p : predictions) {
    BW_CHECK_MSG(std::isfinite(p), "tolerant_select: non-finite prediction");
  }

  ArmIndex fastest = 0;
  for (ArmIndex arm = 1; arm < predictions.size(); ++arm) {
    if (predictions[arm] < predictions[fastest]) fastest = arm;
  }
  const double r_min = predictions[fastest];
  const double limit = r_min + tolerance.ratio * std::max(r_min, 0.0) + tolerance.seconds;

  TolerantChoice choice;
  choice.limit = limit;
  choice.arm = fastest;
  double best_cost = resource_costs[fastest];
  for (ArmIndex arm = 0; arm < predictions.size(); ++arm) {
    if (predictions[arm] > limit) continue;
    ++choice.candidates;
    // Most resource-efficient within the limit; ties keep the lower index.
    if (resource_costs[arm] < best_cost) {
      best_cost = resource_costs[arm];
      choice.arm = arm;
    }
  }
  choice.predicted_runtime = predictions[choice.arm];
  choice.efficiency_tie_break = choice.arm != fastest;
  return choice;
}

}  // namespace bw::core
