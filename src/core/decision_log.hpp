#pragma once
// Decision audit log: one row per online decision (features, chosen arm,
// whether it explored, prediction, observed runtime, ε at the time).
// Operators of a recommendation service need this trail to debug "why did
// workflow X land on hardware Y?" — and it exports straight to the
// DataFrame/CSV substrate for offline analysis.

#include <string>
#include <vector>

#include "core/banditware.hpp"
#include "dataframe/dataframe.hpp"

namespace bw::core {

struct DecisionRecord {
  std::size_t index = 0;          ///< decision sequence number
  FeatureVector features;
  ArmIndex arm = 0;
  std::string hardware;           ///< spec name at decision time
  bool explored = false;
  double predicted_runtime_s = 0.0;
  double observed_runtime_s = 0.0;
  double epsilon = 0.0;           ///< ε when the decision was made
};

class DecisionLog {
 public:
  /// `feature_names` sizes and labels the feature columns.
  explicit DecisionLog(std::vector<std::string> feature_names);

  /// Records one completed decision (call after observing the runtime).
  void record(const BanditWare::Decision& decision, const FeatureVector& x,
              double observed_runtime_s, double epsilon_at_decision);

  /// Records a fully specified row (for non-facade policies).
  void record(DecisionRecord record);

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const DecisionRecord& operator[](std::size_t i) const;

  /// Fraction of logged decisions that explored.
  double exploration_rate() const;

  /// Mean observed runtime of logged decisions.
  double mean_observed_runtime() const;

  /// Columns: decision, <feature...>, hardware, explored, predicted,
  /// observed, epsilon.
  df::DataFrame to_frame() const;

  /// Convenience: to_frame() serialized as CSV text.
  std::string to_csv() const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<DecisionRecord> records_;
};

}  // namespace bw::core
