#include "core/objectives.hpp"

#include <sstream>

#include "common/error.hpp"

namespace bw::core {

RunMetrics RunMetrics::from_runtime(double runtime_s, const hw::HardwareSpec& spec,
                                    const hw::PowerModel& power,
                                    const hw::PriceModel& price) {
  BW_CHECK_MSG(runtime_s >= 0.0, "runtime must be non-negative");
  RunMetrics metrics;
  metrics.runtime_s = runtime_s;
  metrics.energy_joules = power.energy_joules(spec, runtime_s);
  metrics.dollars = price.dollars(spec, runtime_s);
  return metrics;
}

std::string ObjectiveWeights::to_string() const {
  std::ostringstream os;
  os << "runtime*" << runtime;
  if (queue_wait > 0) os << " + wait*" << queue_wait;
  if (sched_overhead > 0) os << " + overhead*" << sched_overhead;
  if (energy_kj > 0) os << " + energy_kJ*" << energy_kj;
  if (dollars > 0) os << " + dollars*" << dollars;
  return os.str();
}

double scalar_cost(const RunMetrics& metrics, const ObjectiveWeights& weights) {
  BW_CHECK_MSG(weights.runtime >= 0 && weights.queue_wait >= 0 &&
                   weights.sched_overhead >= 0 && weights.energy_kj >= 0 &&
                   weights.dollars >= 0,
               "objective weights must be non-negative");
  BW_CHECK_MSG(weights.runtime > 0 || weights.queue_wait > 0 ||
                   weights.sched_overhead > 0 || weights.energy_kj > 0 ||
                   weights.dollars > 0,
               "at least one objective weight must be positive");
  return weights.runtime * metrics.runtime_s + weights.queue_wait * metrics.queue_wait_s +
         weights.sched_overhead * metrics.sched_overhead_s +
         weights.energy_kj * (metrics.energy_joules / 1000.0) +
         weights.dollars * metrics.dollars;
}

MultiMetricBandit::MultiMetricBandit(hw::HardwareCatalog catalog,
                                     std::vector<std::string> feature_names,
                                     ObjectiveWeights weights,
                                     EpsilonGreedyConfig policy_config)
    : catalog_(std::move(catalog)),
      feature_names_(std::move(feature_names)),
      weights_(weights),
      policy_(catalog_, feature_names_.empty() ? 1 : feature_names_.size(), policy_config),
      stats_(catalog_.size()) {
  BW_CHECK_MSG(!feature_names_.empty(), "MultiMetricBandit needs feature names");
  // Validate the weights eagerly (scalar_cost would throw on first use).
  (void)scalar_cost(RunMetrics{}, weights_);
}

MultiMetricBandit::Decision MultiMetricBandit::next(const FeatureVector& x, Rng& rng) {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  Decision decision;
  decision.arm = policy_.select(x, rng);
  decision.explored = policy_.last_was_exploration();
  decision.spec = &catalog_[decision.arm];
  return decision;
}

void MultiMetricBandit::observe(ArmIndex arm, const FeatureVector& x,
                                const RunMetrics& metrics) {
  BW_CHECK_MSG(arm < catalog_.size(), "arm index out of range");
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  policy_.observe(arm, x, scalar_cost(metrics, weights_));
  stats_[arm].runtime.add(metrics.runtime_s);
  stats_[arm].queue_wait.add(metrics.queue_wait_s);
  stats_[arm].energy_kj.add(metrics.energy_joules / 1000.0);
  stats_[arm].dollars.add(metrics.dollars);
  ++observations_;
}

ArmIndex MultiMetricBandit::recommend(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  return policy_.recommend(x);
}

std::vector<double> MultiMetricBandit::predicted_costs(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == feature_names_.size(), "feature vector size mismatch");
  return policy_.predict_all(x);
}

const ArmMetricStats& MultiMetricBandit::arm_stats(ArmIndex arm) const {
  BW_CHECK_MSG(arm < stats_.size(), "arm index out of range");
  return stats_[arm];
}

}  // namespace bw::core
