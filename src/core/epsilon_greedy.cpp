#include "core/epsilon_greedy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bw::core {

namespace {

ArmBank make_bank(const hw::HardwareCatalog& catalog, std::size_t num_features,
                  const EpsilonGreedyConfig& config) {
  BW_CHECK_MSG(config.initial_epsilon >= 0.0 && config.initial_epsilon <= 1.0,
               "initial epsilon must be in [0,1]");
  BW_CHECK_MSG(config.decay > 0.0 && config.decay <= 1.0, "decay must be in (0,1]");
  return ArmBank(catalog, num_features, config.fit, config.exact_history,
                 config.tolerance, config.resource_weights);
}

}  // namespace

DecayingEpsilonGreedy::DecayingEpsilonGreedy(const hw::HardwareCatalog& catalog,
                                             std::size_t num_features,
                                             EpsilonGreedyConfig config)
    : BankedPolicy(make_bank(catalog, num_features, config)),
      config_(config),
      epsilon_(config.initial_epsilon) {}

ArmIndex DecayingEpsilonGreedy::select(const FeatureVector& x, Rng& rng) {
  // Line 6: with probability ε, explore uniformly at random.
  if (rng.bernoulli(epsilon_)) {
    last_was_exploration_ = true;
    return rng.index(bank_.size());
  }
  last_was_exploration_ = false;
  // Line 7: tolerant selection over the current estimates.
  return recommend(x);
}

void DecayingEpsilonGreedy::observe(ArmIndex arm, const FeatureVector& x,
                                    double runtime_s) {
  bank_.observe(arm, x, runtime_s);  // lines 10-11: store + least squares
  epsilon_ *= config_.decay;         // line 12: ε <- α ε
}

void DecayingEpsilonGreedy::set_epsilon(double epsilon) {
  epsilon_ = std::clamp(epsilon, 0.0, 1.0);
}

void DecayingEpsilonGreedy::reset() {
  bank_.reset();
  epsilon_ = config_.initial_epsilon;
  last_was_exploration_ = false;
}

}  // namespace bw::core
