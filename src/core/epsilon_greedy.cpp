#include "core/epsilon_greedy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bw::core {

DecayingEpsilonGreedy::DecayingEpsilonGreedy(const hw::HardwareCatalog& catalog,
                                             std::size_t num_features,
                                             EpsilonGreedyConfig config)
    : config_(config), epsilon_(config.initial_epsilon) {
  BW_CHECK_MSG(!catalog.empty(), "policy needs at least one arm");
  BW_CHECK_MSG(num_features > 0, "policy needs at least one feature");
  BW_CHECK_MSG(config.initial_epsilon >= 0.0 && config.initial_epsilon <= 1.0,
               "initial epsilon must be in [0,1]");
  BW_CHECK_MSG(config.decay > 0.0 && config.decay <= 1.0, "decay must be in (0,1]");
  arms_.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    arms_.emplace_back(num_features, config.fit, config.exact_history);
  }
  resource_costs_ = catalog.resource_costs(config.resource_weights);
}

ArmIndex DecayingEpsilonGreedy::select(const FeatureVector& x, Rng& rng) {
  // Line 6: with probability ε, explore uniformly at random.
  if (rng.bernoulli(epsilon_)) {
    last_was_exploration_ = true;
    return rng.index(arms_.size());
  }
  last_was_exploration_ = false;
  // Line 7: tolerant selection over the current estimates.
  return recommend(x);
}

void DecayingEpsilonGreedy::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  arms_[arm].observe(x, runtime_s);  // lines 10-11: store + least squares
  epsilon_ *= config_.decay;         // line 12: ε <- α ε
}

TolerantChoice DecayingEpsilonGreedy::recommend_choice(const FeatureVector& x) const {
  // thread_local scratch: recommend_choice is the serving hot path and may
  // run concurrently under shared locks, so the reusable buffer must be
  // per-thread rather than a mutable member.
  static thread_local std::vector<double> predictions;
  predictions.resize(arms_.size());
  for (ArmIndex arm = 0; arm < arms_.size(); ++arm) {
    predictions[arm] = arms_[arm].predict(x);
  }
  return tolerant_select(predictions, resource_costs_, config_.tolerance);
}

ArmIndex DecayingEpsilonGreedy::recommend(const FeatureVector& x) const {
  return recommend_choice(x).arm;
}

double DecayingEpsilonGreedy::predict(ArmIndex arm, const FeatureVector& x) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm].predict(x);
}

void DecayingEpsilonGreedy::set_epsilon(double epsilon) {
  epsilon_ = std::clamp(epsilon, 0.0, 1.0);
}

void DecayingEpsilonGreedy::reset() {
  for (auto& arm : arms_) arm.reset();
  epsilon_ = config_.initial_epsilon;
  last_was_exploration_ = false;
}

const LinearArmModel& DecayingEpsilonGreedy::arm_model(ArmIndex arm) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm];
}

LinearArmModel& DecayingEpsilonGreedy::arm_model(ArmIndex arm) {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm];
}

}  // namespace bw::core
