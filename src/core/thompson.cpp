#include "core/thompson.hpp"

#include <cmath>
#include <span>
#include <utility>

#include "common/error.hpp"
#include "core/score_scratch.hpp"

namespace bw::core {

namespace {

ArmBank make_bank(const hw::HardwareCatalog& catalog, std::size_t num_features,
                  const ThompsonConfig& config) {
  linalg::FitOptions fit;
  fit.ridge = config.ridge;
  return ArmBank(catalog, num_features, fit, /*exact_history=*/false,
                 config.tolerance, config.resource_weights);
}

}  // namespace

LinearThompson::LinearThompson(const hw::HardwareCatalog& catalog,
                               std::size_t num_features, ThompsonConfig config)
    : LinearThompson(make_bank(catalog, num_features, config), config.posterior_scale) {}

LinearThompson::LinearThompson(ArmBank bank, double posterior_scale)
    : BankedPolicy(std::move(bank)), posterior_scale_(posterior_scale) {
  BW_CHECK_MSG(posterior_scale_ > 0.0, "posterior scale must be positive");
  BW_CHECK_MSG(!std::as_const(bank_).arm(0).exact_history(),
               "thompson requires the incremental backend (the posterior "
               "draw reads the RLS covariance)");
}

ArmIndex LinearThompson::select(const FeatureVector& x, Rng& rng) {
  // For a single decision only the marginal of x̃^T θ matters, and
  // θ ~ N(θ̂, v² P) implies x̃^T θ ~ N(x̃^T θ̂, v² x̃^T P x̃) — so we sample
  // the scalar directly instead of factorizing P. Means and variances come
  // from one bank-level sweep; the draw itself still consumes exactly one
  // rng.normal() per arm in ascending order, so the sampled decisions match
  // the old per-arm walk stream-for-stream and bit-for-bit.
  DecisionScratch& scratch = DecisionScratch::local();
  scratch.ensure(bank_.size(), bank_.dim(), 1);
  const std::span<double> means(scratch.scores.data(), bank_.size());
  const std::span<double> vars(scratch.widths.data(), bank_.size());
  bank_.predict_all(x, means);
  bank_.variance_proxy_all(x, vars);
  ArmIndex best = 0;
  double best_sample = means[0] + posterior_scale_ *
                                      std::sqrt(std::max(0.0, vars[0])) *
                                      rng.normal();
  for (ArmIndex arm = 1; arm < bank_.size(); ++arm) {
    const double sample = means[arm] + posterior_scale_ *
                                           std::sqrt(std::max(0.0, vars[arm])) *
                                           rng.normal();
    if (sample < best_sample) {
      best_sample = sample;
      best = arm;
    }
  }
  return best;
}

}  // namespace bw::core
