#include "core/thompson.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bw::core {

LinearThompson::LinearThompson(const hw::HardwareCatalog& catalog, std::size_t num_features,
                               ThompsonConfig config)
    : config_(config) {
  BW_CHECK_MSG(!catalog.empty(), "policy needs at least one arm");
  BW_CHECK_MSG(num_features > 0, "policy needs at least one feature");
  BW_CHECK_MSG(config.posterior_scale > 0.0, "posterior scale must be positive");
  arms_.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    arms_.emplace_back(num_features, config.ridge);
  }
  resource_costs_ = catalog.resource_costs(config.resource_weights);
}

double LinearThompson::sample_prediction(ArmIndex arm, const FeatureVector& x,
                                         Rng& rng) const {
  // For a single decision only the marginal of x̃^T θ matters, and
  // θ ~ N(θ̂, v² P) implies x̃^T θ ~ N(x̃^T θ̂, v² x̃^T P x̃) — so we sample
  // the scalar directly instead of factorizing P.
  const double mean = arms_[arm].predict(x);
  const double var = std::max(0.0, arms_[arm].variance_proxy(x));
  return mean + config_.posterior_scale * std::sqrt(var) * rng.normal();
}

ArmIndex LinearThompson::select(const FeatureVector& x, Rng& rng) {
  ArmIndex best = 0;
  double best_sample = sample_prediction(0, x, rng);
  for (ArmIndex arm = 1; arm < arms_.size(); ++arm) {
    const double sample = sample_prediction(arm, x, rng);
    if (sample < best_sample) {
      best_sample = sample;
      best = arm;
    }
  }
  return best;
}

void LinearThompson::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  arms_[arm].update(x, runtime_s);
}

ArmIndex LinearThompson::recommend(const FeatureVector& x) const {
  std::vector<double> predictions(arms_.size());
  for (ArmIndex arm = 0; arm < arms_.size(); ++arm) {
    predictions[arm] = arms_[arm].predict(x);
  }
  return tolerant_select(predictions, resource_costs_, config_.tolerance).arm;
}

double LinearThompson::predict(ArmIndex arm, const FeatureVector& x) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm].predict(x);
}

void LinearThompson::reset() {
  for (auto& arm : arms_) arm.reset();
}

}  // namespace bw::core
