#include "core/thompson.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bw::core {

namespace {

ArmBank make_bank(const hw::HardwareCatalog& catalog, std::size_t num_features,
                  const ThompsonConfig& config) {
  linalg::FitOptions fit;
  fit.ridge = config.ridge;
  return ArmBank(catalog, num_features, fit, /*exact_history=*/false,
                 config.tolerance, config.resource_weights);
}

}  // namespace

LinearThompson::LinearThompson(const hw::HardwareCatalog& catalog,
                               std::size_t num_features, ThompsonConfig config)
    : LinearThompson(make_bank(catalog, num_features, config), config.posterior_scale) {}

LinearThompson::LinearThompson(ArmBank bank, double posterior_scale)
    : BankedPolicy(std::move(bank)), posterior_scale_(posterior_scale) {
  BW_CHECK_MSG(posterior_scale_ > 0.0, "posterior scale must be positive");
  BW_CHECK_MSG(!bank_.arm(0).exact_history(),
               "thompson requires the incremental backend (the posterior "
               "draw reads the RLS covariance)");
}

double LinearThompson::sample_prediction(ArmIndex arm, const FeatureVector& x,
                                         Rng& rng) const {
  // For a single decision only the marginal of x̃^T θ matters, and
  // θ ~ N(θ̂, v² P) implies x̃^T θ ~ N(x̃^T θ̂, v² x̃^T P x̃) — so we sample
  // the scalar directly instead of factorizing P.
  const double mean = bank_.predict(arm, x);
  const double var = std::max(0.0, bank_.variance_proxy(arm, x));
  return mean + posterior_scale_ * std::sqrt(var) * rng.normal();
}

ArmIndex LinearThompson::select(const FeatureVector& x, Rng& rng) {
  ArmIndex best = 0;
  double best_sample = sample_prediction(0, x, rng);
  for (ArmIndex arm = 1; arm < bank_.size(); ++arm) {
    const double sample = sample_prediction(arm, x, rng);
    if (sample < best_sample) {
      best_sample = sample;
      best = arm;
    }
  }
  return best;
}

}  // namespace bw::core
