#pragma once
// BankedPolicy — the production-stack face of a hardware-selection policy:
// a Policy implementation that runs on the shared ArmBank substrate. The
// greedy surface (tolerant recommend, per-arm predict, observe, reset) is
// identical across ε-greedy, LinUCB, and Thompson — they differ only in
// select() — so it lives here once, and the BanditWare facade can route
// merge/snapshot/serving through bank() without knowing which policy runs.

#include <utility>

#include "core/arm_bank.hpp"
#include "core/policy.hpp"

namespace bw::core {

class BankedPolicy : public Policy {
 public:
  std::size_t num_arms() const final { return bank_.size(); }

  void observe(ArmIndex arm, const FeatureVector& x, double runtime_s) override {
    bank_.observe(arm, x, runtime_s);
  }

  ArmIndex recommend(const FeatureVector& x) const final {
    return bank_.recommend_choice(x).arm;
  }

  /// Tolerant-greedy choice with its predicted runtime — one prediction
  /// pass, unlike recommend() followed by predict().
  TolerantChoice recommend_choice(const FeatureVector& x) const {
    return bank_.recommend_choice(x);
  }

  double predict(ArmIndex arm, const FeatureVector& x) const final {
    return bank_.predict(arm, x);
  }

  /// Shadows Policy::predict_all (a per-arm predict loop) with the bank's
  /// one-pass theta-plane sweep. Same values, bitwise.
  std::vector<double> predict_all(const FeatureVector& x) const {
    return bank_.predict_all(x);
  }

  void reset() override { bank_.reset(); }

  virtual PolicyKind kind() const = 0;

  ArmBank& bank() { return bank_; }
  const ArmBank& bank() const { return bank_; }

  const LinearArmModel& arm_model(ArmIndex arm) const { return bank_.arm(arm); }

  /// Mutable arm access for snapshot restoration (state loaders reinstate
  /// sufficient statistics directly instead of replaying history).
  LinearArmModel& arm_model(ArmIndex arm) { return bank_.arm(arm); }

 protected:
  explicit BankedPolicy(ArmBank bank) : bank_(std::move(bank)) {}

  ArmBank bank_;
};

}  // namespace bw::core
