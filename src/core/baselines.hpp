#pragma once
// Non-contextual and reference policies used by the ablation benches:
//  - UCB1 (lower-confidence-bound on mean runtime, context-blind)
//  - non-contextual ε-greedy (mean runtime per arm)
//  - uniform random
//  - oracle (wraps a caller-supplied "true best arm" function)

#include <functional>
#include <vector>

#include "core/policy.hpp"

namespace bw::core {

/// UCB1 adapted to cost minimization: play each arm once, then pick
/// argmin mean_i - c * sqrt(2 ln t / n_i). Ignores features entirely —
/// its gap to the contextual policies is the value of context.
class Ucb1 final : public Policy {
 public:
  explicit Ucb1(std::size_t num_arms, double exploration = 1.0);

  std::size_t num_arms() const override { return counts_.size(); }
  ArmIndex select(const FeatureVector& x, Rng& rng) override;
  void observe(ArmIndex arm, const FeatureVector& x, double runtime_s) override;
  ArmIndex recommend(const FeatureVector& x) const override;
  double predict(ArmIndex arm, const FeatureVector& x) const override;
  std::string name() const override { return "ucb1"; }
  void reset() override;

 private:
  double exploration_;
  std::vector<std::size_t> counts_;
  std::vector<double> mean_runtime_;
  std::size_t total_ = 0;
};

/// ε-greedy over per-arm mean runtimes (no context, no decay).
class MeanEpsilonGreedy final : public Policy {
 public:
  MeanEpsilonGreedy(std::size_t num_arms, double epsilon = 0.1);

  std::size_t num_arms() const override { return counts_.size(); }
  ArmIndex select(const FeatureVector& x, Rng& rng) override;
  void observe(ArmIndex arm, const FeatureVector& x, double runtime_s) override;
  ArmIndex recommend(const FeatureVector& x) const override;
  double predict(ArmIndex arm, const FeatureVector& x) const override;
  std::string name() const override { return "mean-eps-greedy"; }
  void reset() override;

 private:
  double epsilon_;
  std::vector<std::size_t> counts_;
  std::vector<double> mean_runtime_;
};

/// Uniform random selection — the paper's "random guess" reference line.
class RandomPolicy final : public Policy {
 public:
  explicit RandomPolicy(std::size_t num_arms);

  std::size_t num_arms() const override { return num_arms_; }
  ArmIndex select(const FeatureVector& x, Rng& rng) override;
  void observe(ArmIndex arm, const FeatureVector& x, double runtime_s) override;
  ArmIndex recommend(const FeatureVector& x) const override;
  double predict(ArmIndex arm, const FeatureVector& x) const override;
  std::string name() const override { return "random"; }
  void reset() override {}

 private:
  std::size_t num_arms_;
  mutable std::size_t round_robin_ = 0;  ///< recommend() cycles deterministically
};

/// Wraps a ground-truth chooser — the regret reference in ablations.
class OraclePolicy final : public Policy {
 public:
  using BestArmFn = std::function<ArmIndex(const FeatureVector&)>;
  OraclePolicy(std::size_t num_arms, BestArmFn best_arm);

  std::size_t num_arms() const override { return num_arms_; }
  ArmIndex select(const FeatureVector& x, Rng& rng) override;
  void observe(ArmIndex arm, const FeatureVector& x, double runtime_s) override;
  ArmIndex recommend(const FeatureVector& x) const override;
  double predict(ArmIndex arm, const FeatureVector& x) const override;
  std::string name() const override { return "oracle"; }
  void reset() override {}

 private:
  std::size_t num_arms_;
  BestArmFn best_arm_;
};

}  // namespace bw::core
