#pragma once
// The paper's contribution: Decaying Contextual ε-Greedy Strategy with
// Tolerant Selection (Algorithm 1).
//
//   for each incoming workflow w_j with features x_j:
//     R̂(H_i, x_j) = w_i^T x_j + b_i                      (line 5)
//     with prob ε: random arm (exploration)               (line 6)
//     else: tolerant selection over R̂                     (line 7)
//     observe actual runtime, store in D_k                 (lines 9-10)
//     least-squares refit of (w_k, b_k)                    (line 11)
//     ε <- α ε                                             (line 12)

#include "core/banked_policy.hpp"
#include "core/tolerant.hpp"
#include "hardware/catalog.hpp"

namespace bw::core {

struct EpsilonGreedyConfig {
  double initial_epsilon = 1.0;  ///< ε₀ (paper uses 1.0)
  double decay = 0.99;           ///< α  (paper uses 0.99)
  ToleranceParams tolerance{};   ///< tr / ts of the tolerant selection
  linalg::FitOptions fit{};      ///< per-arm regression options
  hw::ResourceWeights resource_weights{};  ///< efficiency ordering
  /// Opt into the paper's literal batch refit (store every observation,
  /// rerun QR each observe). Default is the O(d^2) incremental backend;
  /// both produce the same predictions within float tolerance (see
  /// tests/test_incremental_equivalence.cpp).
  bool exact_history = false;
};

class DecayingEpsilonGreedy final : public BankedPolicy {
 public:
  /// `catalog` supplies arm count and resource costs; `num_features` = m.
  DecayingEpsilonGreedy(const hw::HardwareCatalog& catalog, std::size_t num_features,
                        EpsilonGreedyConfig config = {});

  ArmIndex select(const FeatureVector& x, Rng& rng) override;
  void observe(ArmIndex arm, const FeatureVector& x, double runtime_s) override;
  std::string name() const override { return "decaying-contextual-eps-greedy"; }
  PolicyKind kind() const override { return PolicyKind::kEpsilonGreedy; }
  void reset() override;

  double epsilon() const { return epsilon_; }

  /// Overrides the current exploration rate (clamped to [0, 1]).
  /// Intended for resuming from a saved snapshot, not for tuning mid-run.
  void set_epsilon(double epsilon);
  const EpsilonGreedyConfig& config() const { return config_; }

  /// True if the most recent select() call explored (for diagnostics).
  bool last_was_exploration() const { return last_was_exploration_; }

 private:
  EpsilonGreedyConfig config_;
  double epsilon_;
  bool last_was_exploration_ = false;
};

}  // namespace bw::core
