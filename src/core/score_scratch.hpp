#pragma once
// DecisionScratch — the per-thread buffer set behind every arm-scoring
// pass (FrozenModel and live ArmBank, scalar fallback and vectorized
// kernel alike). The serving hot paths run concurrently on many reader
// threads, so the reusable buffers must be per-thread; keying the sizes on
// the (arms, d, batch) shape means a steady-state server resizes exactly
// once per shape it serves instead of paying vector bookkeeping per call.

#include <cstddef>
#include <vector>

namespace bw::core {

struct DecisionScratch {
  std::vector<double> scores;  ///< batch x arms, context-major
  std::vector<double> widths;  ///< batch x arms (LinUCB/Thompson variances)
  std::vector<double> panel;   ///< (d + 1) x batch intercept-augmented contexts
  std::size_t arms = 0;
  std::size_t dim = 0;  ///< feature count d; panel rows are d + 1
  std::size_t batch = 0;

  /// Sizes the buffers for an (arms, d, batch) shape. No-op when the shape
  /// is unchanged — the common case on a serving loop.
  void ensure(std::size_t arm_count, std::size_t num_features,
              std::size_t batch_size) {
    if (arms == arm_count && dim == num_features && batch == batch_size) return;
    arms = arm_count;
    dim = num_features;
    batch = batch_size;
    scores.resize(arm_count * batch_size);
    widths.resize(arm_count * batch_size);
    panel.resize((num_features + 1) * batch_size);
  }

  static DecisionScratch& local() {
    static thread_local DecisionScratch scratch;
    return scratch;
  }
};

}  // namespace bw::core
