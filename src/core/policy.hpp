#pragma once
// Policy interface: everything the replay evaluator and the BanditWare
// facade need from a hardware-selection strategy. All policies *minimize
// runtime* (cost semantics — no reward sign flipping anywhere).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/types.hpp"

namespace bw::core {

/// The production-stack policy axis: which learning strategy the BanditWare
/// facade (and everything above it — merge, snapshots, serving) runs. All
/// three share the same per-arm ridge-RLS substrate (core/arm_bank.hpp), so
/// they fuse and serialize through the same sufficient statistics.
enum class PolicyKind {
  kEpsilonGreedy,  ///< the paper's decaying contextual ε-greedy (default)
  kLinUcb,         ///< deterministic LCB optimism, width scaled by alpha
  kThompson,       ///< linear-Gaussian posterior sampling, scaled by v
};

std::string to_string(PolicyKind kind);
PolicyKind parse_policy_kind(const std::string& name);

class Policy {
 public:
  virtual ~Policy() = default;

  /// Number of hardware arms.
  virtual std::size_t num_arms() const = 0;

  /// Online selection for the next workflow (may explore). `rng` supplies
  /// all randomness so replays are deterministic.
  virtual ArmIndex select(const FeatureVector& x, Rng& rng) = 0;

  /// Feeds back the observed runtime of `arm` on workflow `x` and updates
  /// the policy's model.
  virtual void observe(ArmIndex arm, const FeatureVector& x, double runtime_s) = 0;

  /// Greedy recommendation (no exploration) — what a user-facing
  /// "which hardware should I use?" query returns.
  virtual ArmIndex recommend(const FeatureVector& x) const = 0;

  /// Current runtime estimate R̂(H_arm, x).
  virtual double predict(ArmIndex arm, const FeatureVector& x) const = 0;

  /// Estimates for all arms (order = arm index).
  std::vector<double> predict_all(const FeatureVector& x) const {
    std::vector<double> out(num_arms());
    for (ArmIndex arm = 0; arm < num_arms(); ++arm) out[arm] = predict(arm, x);
    return out;
  }

  virtual std::string name() const = 0;

  /// Restores the untrained state.
  virtual void reset() = 0;
};

using PolicyFactory = std::function<std::unique_ptr<Policy>()>;

}  // namespace bw::core
