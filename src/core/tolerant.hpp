#pragma once
// Tolerant selection (Algorithm 1, line 7): among hardware whose predicted
// runtime is within
//   R_limit = (1 + tolerance_ratio) * R̂(H_fastest) + tolerance_seconds
// choose the most resource-efficient one.

#include <span>
#include <vector>

#include "core/types.hpp"

namespace bw::core {

struct TolerantChoice {
  ArmIndex arm = 0;
  double predicted_runtime = 0.0;
  double limit = 0.0;                 ///< R_limit actually used
  std::size_t candidates = 0;         ///< arms within the limit
  bool efficiency_tie_break = false;  ///< true if a non-fastest arm was chosen
};

/// `predictions[i]` = R̂(H_i, x); `resource_costs[i]` = catalog cost of arm
/// i (lower = more efficient). Throws InvalidArgument on empty or
/// mismatched inputs, or negative tolerances.
///
/// Edge case (deviation from the paper's formula, documented in DESIGN.md):
/// an untrained or extrapolating linear model can predict *negative*
/// runtimes, where (1+tr)*R̂_min would fall below R̂_min and exclude every
/// arm. We therefore apply the ratio to max(R̂_min, 0):
///   R_limit = R̂_min + tr * max(R̂_min, 0) + ts
/// which equals the paper's formula whenever R̂_min >= 0.
///
/// Span-based so the batched decision kernel can feed per-context slices of
/// its score matrix straight in without copying.
TolerantChoice tolerant_select(std::span<const double> predictions,
                               std::span<const double> resource_costs,
                               const ToleranceParams& tolerance);

/// Vector overload — C++20 span has no initializer_list constructor, so
/// this is what keeps brace-literal call sites (tests, examples) compiling.
inline TolerantChoice tolerant_select(const std::vector<double>& predictions,
                                      const std::vector<double>& resource_costs,
                                      const ToleranceParams& tolerance) {
  return tolerant_select(std::span<const double>(predictions),
                         std::span<const double>(resource_costs), tolerance);
}

}  // namespace bw::core
