#pragma once
// Shared vocabulary types for the BanditWare core.

#include <cstddef>
#include <vector>

namespace bw::core {

/// Workflow feature vector x in R^m (paper Section 3.2).
using FeatureVector = std::vector<double>;

/// Arm index into the hardware catalog.
using ArmIndex = std::size_t;

/// Tolerance parameters of Algorithm 1: the tolerant selection threshold is
///   R_limit = (1 + ratio) * R̂(H_fastest) + seconds.
/// Both zero = pure runtime minimization.
struct ToleranceParams {
  double ratio = 0.0;    ///< tolerance_ratio (tr), e.g. 0.05 = 5% slowdown
  double seconds = 0.0;  ///< tolerance_seconds (ts), e.g. 20.0

  bool is_zero() const { return ratio == 0.0 && seconds == 0.0; }
};

/// One recorded execution: workflow features, the arm it ran on, and the
/// observed runtime in seconds.
struct Observation {
  ArmIndex arm = 0;
  FeatureVector x;
  double runtime_s = 0.0;
};

}  // namespace bw::core
