#pragma once
// Multi-metric optimization (paper future work: "adapt BanditWare to
// support multiple parameter minimization" and "monitoring more
// performance metrics, such as communication latency and scheduling
// overhead").
//
// A run reports a RunMetrics bundle; an ObjectiveWeights vector collapses
// it into the scalar cost the bandit minimizes. MultiMetricBandit wraps
// the paper's policy so callers keep the familiar next/observe/recommend
// loop but feed full metric bundles.

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/epsilon_greedy.hpp"
#include "hardware/cost_rates.hpp"

namespace bw::core {

/// Everything a finished run can report. Metrics default to 0 so callers
/// populate only what they measure.
struct RunMetrics {
  double runtime_s = 0.0;         ///< execution time (the paper's objective)
  double queue_wait_s = 0.0;      ///< time spent pending before start
  double sched_overhead_s = 0.0;  ///< placement/communication latency
  double energy_joules = 0.0;     ///< node energy during execution
  double dollars = 0.0;           ///< billed cost

  /// Derives energy/dollars from hardware rate models when the caller only
  /// measured time.
  static RunMetrics from_runtime(double runtime_s, const hw::HardwareSpec& spec,
                                 const hw::PowerModel& power = {},
                                 const hw::PriceModel& price = {});
};

/// Linear scalarization weights. All non-negative; at least one positive.
struct ObjectiveWeights {
  double runtime = 1.0;
  double queue_wait = 0.0;
  double sched_overhead = 0.0;
  /// Weight per kilojoule (energy spans much larger magnitudes than
  /// seconds, so the natural unit is kJ).
  double energy_kj = 0.0;
  double dollars = 0.0;

  std::string to_string() const;
};

/// The scalar cost the bandit minimizes.
double scalar_cost(const RunMetrics& metrics, const ObjectiveWeights& weights);

/// Per-arm aggregation of every metric, for reporting.
struct ArmMetricStats {
  bw::RunningStats runtime;
  bw::RunningStats queue_wait;
  bw::RunningStats energy_kj;
  bw::RunningStats dollars;
};

/// BanditWare with a multi-metric objective: the contextual model learns
/// the *scalarized cost* per arm instead of raw runtime, so tolerant
/// selection and exploration operate on exactly the quantity the operator
/// cares about.
class MultiMetricBandit {
 public:
  MultiMetricBandit(hw::HardwareCatalog catalog, std::vector<std::string> feature_names,
                    ObjectiveWeights weights, EpsilonGreedyConfig policy_config = {});

  struct Decision {
    ArmIndex arm = 0;
    const hw::HardwareSpec* spec = nullptr;
    bool explored = false;
  };

  Decision next(const FeatureVector& x, Rng& rng);
  void observe(ArmIndex arm, const FeatureVector& x, const RunMetrics& metrics);
  ArmIndex recommend(const FeatureVector& x) const;

  /// Predicted scalar cost per arm.
  std::vector<double> predicted_costs(const FeatureVector& x) const;

  const ObjectiveWeights& weights() const { return weights_; }
  const hw::HardwareCatalog& catalog() const { return catalog_; }
  const ArmMetricStats& arm_stats(ArmIndex arm) const;
  std::size_t num_observations() const { return observations_; }

 private:
  hw::HardwareCatalog catalog_;
  std::vector<std::string> feature_names_;
  ObjectiveWeights weights_;
  DecayingEpsilonGreedy policy_;
  std::vector<ArmMetricStats> stats_;
  std::size_t observations_ = 0;
};

}  // namespace bw::core
