#include "core/policy.hpp"

#include "common/error.hpp"

namespace bw::core {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kEpsilonGreedy:
      return "epsilon-greedy";
    case PolicyKind::kLinUcb:
      return "linucb";
    case PolicyKind::kThompson:
      return "thompson";
  }
  return "unknown";
}

PolicyKind parse_policy_kind(const std::string& name) {
  if (name == "epsilon-greedy") return PolicyKind::kEpsilonGreedy;
  if (name == "linucb") return PolicyKind::kLinUcb;
  if (name == "thompson") return PolicyKind::kThompson;
  throw InvalidArgument("unknown policy kind: " + name);
}

}  // namespace bw::core
