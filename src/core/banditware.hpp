#pragma once
// BanditWare — the user-facing API of the framework (paper Fig. 1).
//
// Typical integration loop (what the NDP deployment does):
//
//   bw::core::BanditWare bw(catalog, {"num_tasks"}, config);
//   bw::Rng rng(42);
//   for (auto& workflow : incoming) {
//     auto decision = bw.next(workflow.features, rng);   // pick hardware
//     double runtime = run_on(decision.spec, workflow);  // execute
//     bw.observe(decision.arm, workflow.features, runtime);
//   }
//   const auto& best = bw.recommend(features);           // pure exploitation
//
// The learning policy is a pluggable axis (BanditWareConfig::policy_kind):
// the paper's decaying ε-greedy (default), LinUCB, or linear-Gaussian
// Thompson sampling. All three run on the same per-arm ridge-RLS substrate
// (core/arm_bank.hpp), so merging, sufficient-statistics export, and
// snapshots work identically whichever policy serves.
//
// State can be saved to / restored from a plain-text snapshot so a service
// can restart without losing what it learned.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/epsilon_greedy.hpp"
#include "core/linucb.hpp"
#include "core/thompson.hpp"
#include "hardware/catalog.hpp"

namespace bw::io {
struct StateAccess;  // src/io/: the snapshot codecs' window into internals
}

namespace bw::core {

class FrozenModel;  // core/frozen_model.hpp: immutable greedy-surface snapshot

struct BanditWareConfig {
  /// Which learning policy drives next()/observe(). All policies share the
  /// substrate options in `policy` (fit, tolerance, resource weights);
  /// non-ε-greedy policies require the incremental backend (exact_history
  /// and intercept=false are rejected — only ε-greedy can replay raw
  /// histories).
  PolicyKind policy_kind = PolicyKind::kEpsilonGreedy;
  /// ε-greedy schedule plus the substrate options every policy shares.
  EpsilonGreedyConfig policy{};
  double alpha = 1.0;            ///< LinUCB confidence width (kLinUcb only)
  double posterior_scale = 1.0;  ///< Thompson sampling v (kThompson only)
};

/// Compact copy of a whole instance's learned state: per-arm sufficient
/// statistics plus the exploration rate. O(arms * d^2) to take — no text
/// serialization, no catalog copy. The serve layer's async cross-shard
/// sync stages these under brief shared locks and runs the fusion math
/// (Cholesky recovery, baseline subtraction) entirely off the hot path.
/// Only meaningful for the incremental backend (see export_stats()).
struct BanditWareStats {
  double epsilon = 1.0;  ///< ε-greedy exploration state (0 for other kinds)
  std::vector<ArmStats> arms;  ///< indexed like the catalog

  std::size_t num_observations() const {
    std::size_t total = 0;
    for (const auto& arm : arms) total += arm.n;
    return total;
  }
};

class BanditWare {
 public:
  /// `feature_names` documents (and sizes) the workflow feature vector.
  BanditWare(hw::HardwareCatalog catalog, std::vector<std::string> feature_names,
             BanditWareConfig config = {});

  struct Decision {
    ArmIndex arm = 0;
    const hw::HardwareSpec* spec = nullptr;
    bool explored = false;             ///< true if this was a non-greedy pick
    double predicted_runtime_s = 0.0;  ///< R̂ for the chosen arm (0 if untrained)
  };

  /// Online step: selects hardware for the next workflow (may explore).
  /// ε-greedy flips the ε-coin; LinUCB picks the optimistic LCB arm;
  /// Thompson draws from each arm's posterior. `explored` reports whether
  /// the pick differed from the tolerant-greedy recommendation.
  Decision next(const FeatureVector& x, Rng& rng);

  /// Greedy tolerant recommendation — never explores.
  const hw::HardwareSpec& recommend(const FeatureVector& x) const;
  ArmIndex recommend_index(const FeatureVector& x) const;

  /// Greedy tolerant recommendation with its prediction attached — one
  /// prediction pass, cheaper than recommend_index() + predictions() on a
  /// serving hot path. `explored` is always false. Identical across policy
  /// kinds (the greedy surface is shared substrate, not policy-specific).
  Decision recommend_decision(const FeatureVector& x) const;

  /// Feeds back an observed runtime (ε-greedy also decays ε, per Alg. 1).
  void observe(ArmIndex arm, const FeatureVector& x, double runtime_s);

  /// Folds another instance's learned state into this one by fusing per-arm
  /// sufficient statistics (exact under the shared ridge prior — merging
  /// two independently trained instances reproduces the single-stream
  /// result; see tests/test_merge_equivalence.cpp). Arms are matched by
  /// hardware name; arms only `other` knows are appended (union of arms),
  /// and exact_history arms merge by history concatenation. Both instances
  /// must run the same policy kind with matching policy scalars (ε schedule
  /// for ε-greedy, alpha for LinUCB, posterior scale for Thompson) — all
  /// three kinds sit on the same information-form statistics, so the arm
  /// algebra is shared, but cross-policy fusion is rejected. ε is combined
  /// multiplicatively (ε_merged = ε_self · ε_other / ε₀), matching one
  /// decay per absorbed observation. Pass the common ancestor both
  /// instances grew from as `base` (replica sync) so shared evidence is
  /// counted once. Requires matching feature names, fit options, backend,
  /// and policy; throws InvalidArgument otherwise.
  void merge_from(const BanditWare& other, const BanditWare* base = nullptr);

  /// Copies out the learned state as sufficient statistics — O(arms * d^2),
  /// no text snapshot. Throws InvalidArgument when the arms run the
  /// exact_history backend (their history is their state; there is nothing
  /// compact to export).
  BanditWareStats export_stats() const;

  /// Rebuilds an instance from export_stats() output plus the immutable
  /// construction parameters (catalog, feature names, config). Exact
  /// inverse of export_stats(): predictions and epsilon match the source
  /// bit-for-bit. Throws InvalidArgument on arm-count or shape mismatch.
  static BanditWare from_stats(const hw::HardwareCatalog& catalog,
                               const std::vector<std::string>& feature_names,
                               const BanditWareConfig& config,
                               const BanditWareStats& stats);

  /// Immutable snapshot of the greedy serving surface (core/frozen_model.hpp)
  /// — what the serve layer publishes behind an atomically-swapped pointer so
  /// pure-exploitation recommends never touch a shard lock. O(arms * d): only
  /// the fitted per-arm LinearModel is copied, never the O(d^2) sufficient
  /// statistics. `epoch` is the publisher's per-shard publication counter,
  /// carried inside the snapshot for reader-side monotonicity checks.
  std::shared_ptr<const FrozenModel> freeze(std::uint64_t epoch = 0) const;

  /// Delta-rebuild of `prev` after a write: allocates fresh nodes only for
  /// the arms in `dirty` and shares every other node (and the resource-cost
  /// table) with the previous snapshot — O(|dirty| * d + arms). `prev` must
  /// have been frozen from a same-shape instance (same catalog size and
  /// feature count); throws InvalidArgument otherwise.
  std::shared_ptr<const FrozenModel> refreeze(const FrozenModel& prev,
                                              std::span<const ArmIndex> dirty,
                                              std::uint64_t epoch) const;

  /// R̂(H_i, x) for every arm.
  std::vector<double> predictions(const FeatureVector& x) const;

  /// Current ε of the ε-greedy schedule; 0 for LinUCB/Thompson (their
  /// exploration is driven by posterior width, not a decaying rate).
  double epsilon() const;

  std::size_t num_observations() const;
  std::size_t num_arms() const { return catalog_.size(); }
  const BanditWareConfig& config() const { return config_; }
  PolicyKind policy_kind() const { return config_.policy_kind; }
  const hw::HardwareCatalog& catalog() const { return catalog_; }
  const std::vector<std::string>& feature_names() const { return feature_names_; }

  /// The per-arm learned model, whichever policy runs — what inspection
  /// tools and state loaders read.
  const LinearArmModel& arm_model(ArmIndex arm) const;

  /// The ε-greedy policy instance. Only valid when policy_kind() is
  /// kEpsilonGreedy (the historical accessor; policy-agnostic callers use
  /// arm_model()/epsilon() instead). Throws InvalidArgument otherwise.
  const DecayingEpsilonGreedy& policy() const;

  /// Plain-text state snapshot: config + catalog + per-arm sufficient
  /// statistics (theta, P, n) + ε. Cost is O(arms * d^2) independent of how
  /// many observations were absorbed. Arms running in exact_history mode
  /// serialize their raw observation rows instead (their history *is* their
  /// state). ε-greedy instances write format `banditware-state v2` —
  /// byte-identical to the pre-policy-axis writer, so existing snapshots
  /// and golden fixtures stay stable — while LinUCB/Thompson instances
  /// write the `v3` superset, which adds one `policy` line carrying the
  /// kind token and its scalar.
  ///
  /// Back-compat convenience over the io layer: equivalent to
  /// `io::save_state(os, *this, io::Format::kText)`. The binary format
  /// (and format auto-detection) lives in src/io/state_io.hpp.
  std::string save_state() const;

  /// Rebuilds an instance from a serialized snapshot, any format: text v3
  /// (policy token), v2, legacy v1 (raw observation rows, restored by
  /// replay; v1/v2 always load as ε-greedy), or the binary container —
  /// a thin wrapper over `io::load_state`, which auto-detects from the
  /// leading bytes. Throws ParseError on malformed input.
  static BanditWare load_state(const std::string& text);

 private:
  /// Exactly one of these runs, selected by config.policy_kind. A variant
  /// (not a pointer) keeps the facade copyable and no-throw movable — the
  /// serve layer's publish step depends on move-assigning shards without
  /// throwing.
  using ProductionPolicy = std::variant<DecayingEpsilonGreedy, LinUcb, LinearThompson>;

  static ProductionPolicy make_policy(const hw::HardwareCatalog& catalog,
                                      std::size_t num_features,
                                      const BanditWareConfig& config);

  // The io-layer codecs (src/io/) restore stats and replay histories
  // through the policy bank; nothing else sees it.
  friend struct bw::io::StateAccess;

  BankedPolicy& banked();
  const BankedPolicy& banked() const;
  DecayingEpsilonGreedy* eps_greedy();
  const DecayingEpsilonGreedy* eps_greedy() const;

  hw::HardwareCatalog catalog_;
  std::vector<std::string> feature_names_;
  BanditWareConfig config_;
  ProductionPolicy policy_;
};

}  // namespace bw::core
