#pragma once
// BanditWare — the user-facing API of the framework (paper Fig. 1).
//
// Typical integration loop (what the NDP deployment does):
//
//   bw::core::BanditWare bw(catalog, {"num_tasks"}, config);
//   bw::Rng rng(42);
//   for (auto& workflow : incoming) {
//     auto decision = bw.next(workflow.features, rng);   // pick hardware
//     double runtime = run_on(decision.spec, workflow);  // execute
//     bw.observe(decision.arm, workflow.features, runtime);
//   }
//   const auto& best = bw.recommend(features);           // pure exploitation
//
// State can be saved to / restored from a plain-text snapshot so a service
// can restart without losing what it learned.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/epsilon_greedy.hpp"
#include "hardware/catalog.hpp"

namespace bw::core {

struct BanditWareConfig {
  EpsilonGreedyConfig policy{};
};

/// Compact copy of a whole instance's learned state: per-arm sufficient
/// statistics plus the exploration rate. O(arms * d^2) to take — no text
/// serialization, no catalog copy. The serve layer's async cross-shard
/// sync stages these under brief shared locks and runs the fusion math
/// (Cholesky recovery, baseline subtraction) entirely off the hot path.
/// Only meaningful for the incremental backend (see export_stats()).
struct BanditWareStats {
  double epsilon = 1.0;
  std::vector<ArmStats> arms;  ///< indexed like the catalog

  std::size_t num_observations() const {
    std::size_t total = 0;
    for (const auto& arm : arms) total += arm.n;
    return total;
  }
};

class BanditWare {
 public:
  /// `feature_names` documents (and sizes) the workflow feature vector.
  BanditWare(hw::HardwareCatalog catalog, std::vector<std::string> feature_names,
             BanditWareConfig config = {});

  struct Decision {
    ArmIndex arm = 0;
    const hw::HardwareSpec* spec = nullptr;
    bool explored = false;             ///< true if this was an ε-exploration
    double predicted_runtime_s = 0.0;  ///< R̂ for the chosen arm (0 if untrained)
  };

  /// Online step: selects hardware for the next workflow (may explore).
  Decision next(const FeatureVector& x, Rng& rng);

  /// Greedy tolerant recommendation — never explores.
  const hw::HardwareSpec& recommend(const FeatureVector& x) const;
  ArmIndex recommend_index(const FeatureVector& x) const;

  /// Greedy tolerant recommendation with its prediction attached — one
  /// prediction pass, cheaper than recommend_index() + predictions() on a
  /// serving hot path. `explored` is always false.
  Decision recommend_decision(const FeatureVector& x) const;

  /// Feeds back an observed runtime (also decays ε, per Algorithm 1).
  void observe(ArmIndex arm, const FeatureVector& x, double runtime_s);

  /// Folds another instance's learned state into this one by fusing per-arm
  /// sufficient statistics (exact under the shared ridge prior — merging
  /// two independently trained instances reproduces the single-stream
  /// result; see tests/test_merge_equivalence.cpp). Arms are matched by
  /// hardware name; arms only `other` knows are appended (union of arms),
  /// and exact_history arms merge by history concatenation. ε is combined
  /// multiplicatively (ε_merged = ε_self · ε_other / ε₀), matching one
  /// decay per absorbed observation. Pass the common ancestor both
  /// instances grew from as `base` (replica sync) so shared evidence is
  /// counted once. Requires matching feature names, fit options, backend,
  /// and exploration schedule; throws InvalidArgument otherwise.
  void merge_from(const BanditWare& other, const BanditWare* base = nullptr);

  /// Copies out the learned state as sufficient statistics — O(arms * d^2),
  /// no text snapshot. Throws InvalidArgument when the arms run the
  /// exact_history backend (their history is their state; there is nothing
  /// compact to export).
  BanditWareStats export_stats() const;

  /// Rebuilds an instance from export_stats() output plus the immutable
  /// construction parameters (catalog, feature names, config). Exact
  /// inverse of export_stats(): predictions and epsilon match the source
  /// bit-for-bit. Throws InvalidArgument on arm-count or shape mismatch.
  static BanditWare from_stats(const hw::HardwareCatalog& catalog,
                               const std::vector<std::string>& feature_names,
                               const BanditWareConfig& config,
                               const BanditWareStats& stats);

  /// R̂(H_i, x) for every arm.
  std::vector<double> predictions(const FeatureVector& x) const;

  double epsilon() const { return policy_.epsilon(); }
  std::size_t num_observations() const;
  std::size_t num_arms() const { return catalog_.size(); }
  const BanditWareConfig& config() const { return config_; }
  const hw::HardwareCatalog& catalog() const { return catalog_; }
  const std::vector<std::string>& feature_names() const { return feature_names_; }
  const DecayingEpsilonGreedy& policy() const { return policy_; }

  /// Plain-text state snapshot, format `banditware-state v2`: config +
  /// catalog + per-arm sufficient statistics (theta, P, n) + ε. Cost is
  /// O(arms * d^2) independent of how many observations were absorbed.
  /// Arms running in exact_history mode serialize their raw observation
  /// rows instead (their history *is* their state).
  std::string save_state() const;

  /// Rebuilds an instance from save_state() output. Reads both the current
  /// v2 format and legacy v1 snapshots (raw observation rows, restored by
  /// replay). Throws ParseError on malformed input.
  static BanditWare load_state(const std::string& text);

 private:
  static BanditWare load_state_v1(std::istream& is);
  static BanditWare load_state_v2(std::istream& is);

  hw::HardwareCatalog catalog_;
  std::vector<std::string> feature_names_;
  BanditWareConfig config_;
  DecayingEpsilonGreedy policy_;
};

}  // namespace bw::core
