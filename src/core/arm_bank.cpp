#include "core/arm_bank.hpp"

#include "common/error.hpp"

namespace bw::core {

ArmBank::ArmBank(const hw::HardwareCatalog& catalog, std::size_t num_features,
                 const linalg::FitOptions& fit, bool exact_history,
                 const ToleranceParams& tolerance, const hw::ResourceWeights& weights)
    : tolerance_(tolerance) {
  BW_CHECK_MSG(!catalog.empty(), "policy needs at least one arm");
  BW_CHECK_MSG(num_features > 0, "policy needs at least one feature");
  arms_.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    arms_.emplace_back(num_features, fit, exact_history);
  }
  resource_costs_ = catalog.resource_costs(weights);
}

void ArmBank::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  arms_[arm].observe(x, runtime_s);
}

double ArmBank::predict(ArmIndex arm, const FeatureVector& x) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm].predict(x);
}

double ArmBank::variance_proxy(ArmIndex arm, const FeatureVector& x) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm].variance_proxy(x);
}

TolerantChoice ArmBank::recommend_choice(const FeatureVector& x) const {
  static thread_local std::vector<double> predictions;
  predictions.resize(arms_.size());
  for (ArmIndex arm = 0; arm < arms_.size(); ++arm) {
    predictions[arm] = arms_[arm].predict(x);
  }
  return tolerant_select(predictions, resource_costs_, tolerance_);
}

LinearArmModel& ArmBank::arm(ArmIndex index) {
  BW_CHECK_MSG(index < arms_.size(), "arm index out of range");
  return arms_[index];
}

const LinearArmModel& ArmBank::arm(ArmIndex index) const {
  BW_CHECK_MSG(index < arms_.size(), "arm index out of range");
  return arms_[index];
}

void ArmBank::reset() {
  for (auto& arm : arms_) arm.reset();
}

}  // namespace bw::core
