#include "core/arm_bank.hpp"

#include "common/error.hpp"
#include "core/score_scratch.hpp"
#include "linalg/gemm.hpp"
#include "linalg/intercept.hpp"
#include "linalg/matrix.hpp"

namespace bw::core {

ArmBank::ArmBank(const hw::HardwareCatalog& catalog, std::size_t num_features,
                 const linalg::FitOptions& fit, bool exact_history,
                 const ToleranceParams& tolerance, const hw::ResourceWeights& weights)
    : tolerance_(tolerance), dim_(num_features) {
  BW_CHECK_MSG(!catalog.empty(), "policy needs at least one arm");
  BW_CHECK_MSG(num_features > 0, "policy needs at least one feature");
  arms_.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    arms_.emplace_back(num_features, fit, exact_history);
  }
  resource_costs_ = catalog.resource_costs(weights);
  // Fresh arms are all-zero (w = b = 0), so the zero-initialized plane is
  // already in sync.
  theta_plane_.assign((dim_ + 1) * arms_.size(), 0.0);
}

void ArmBank::fill_plane_column(ArmIndex arm) {
  // Transposed plane (see gemm.hpp): one arm is a strided column. Writes
  // are per-observation; reads are the hot path and stream unit-stride.
  const linalg::LinearModel& model = arms_[arm].model();
  const std::size_t stride = arms_.size();
  for (std::size_t i = 0; i < dim_; ++i) {
    theta_plane_[i * stride + arm] = model.weights[i];
  }
  theta_plane_[dim_ * stride + arm] = model.bias;
}

void ArmBank::rebuild_plane() {
  for (ArmIndex arm = 0; arm < arms_.size(); ++arm) fill_plane_column(arm);
  plane_dirty_ = false;
}

void ArmBank::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  if (plane_dirty_) rebuild_plane();
  arms_[arm].observe(x, runtime_s);
  fill_plane_column(arm);
}

double ArmBank::predict(ArmIndex arm, const FeatureVector& x) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm].predict(x);
}

double ArmBank::variance_proxy(ArmIndex arm, const FeatureVector& x) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm].variance_proxy(x);
}

void ArmBank::predict_all(const FeatureVector& x, std::span<double> out) const {
  BW_CHECK_MSG(x.size() == dim_, "feature vector size mismatch");
  BW_CHECK_MSG(out.size() == arms_.size(), "predict_all: output size mismatch");
  if (plane_dirty_) {
    // A non-observe mutation (merge/restore/widen) invalidated the plane.
    // Const readers must not rebuild it — they may hold only a shared lock
    // — so walk the arms directly; the FP order is identical either way.
    for (ArmIndex arm = 0; arm < arms_.size(); ++arm) {
      out[arm] = arms_[arm].predict(x);
    }
    return;
  }
  static thread_local std::vector<double> xa;
  linalg::with_intercept_into(x, xa);
  linalg::score_block(theta_plane_.data(), arms_.size(), dim_ + 1, xa.data(), 1,
                      out.data());
}

std::vector<double> ArmBank::predict_all(const FeatureVector& x) const {
  std::vector<double> out(arms_.size());
  predict_all(x, out);
  return out;
}

void ArmBank::variance_proxy_all(const FeatureVector& x,
                                 std::span<double> out) const {
  BW_CHECK_MSG(x.size() == dim_, "feature vector size mismatch");
  BW_CHECK_MSG(out.size() == arms_.size(),
               "variance_proxy_all: output size mismatch");
  BW_CHECK_MSG(!arms_.front().exact_history(),
               "variance proxy requires the incremental backend");
  static thread_local std::vector<double> xa;
  static thread_local std::vector<double> px;
  linalg::with_intercept_into(x, xa);
  px.resize(dim_ + 1);
  for (ArmIndex arm = 0; arm < arms_.size(); ++arm) {
    // Same value sequence as RLS::variance_proxy — dot(xa, P xa) with P xa
    // computed row-by-row via linalg::dot — minus its two per-call Vector
    // allocations.
    const linalg::Matrix& p = arms_[arm].rls().precision_inverse();
    for (std::size_t i = 0; i < dim_ + 1; ++i) {
      px[i] = linalg::dot(p.row(i), xa);
    }
    out[arm] = linalg::dot(xa, px);
  }
}

TolerantChoice ArmBank::recommend_choice(const FeatureVector& x) const {
  DecisionScratch& scratch = DecisionScratch::local();
  scratch.ensure(arms_.size(), dim_, 1);
  predict_all(x, std::span<double>(scratch.scores.data(), arms_.size()));
  return tolerant_select(
      std::span<const double>(scratch.scores.data(), arms_.size()),
      resource_costs_, tolerance_);
}

LinearArmModel& ArmBank::arm(ArmIndex index) {
  BW_CHECK_MSG(index < arms_.size(), "arm index out of range");
  plane_dirty_ = true;
  return arms_[index];
}

const LinearArmModel& ArmBank::arm(ArmIndex index) const {
  BW_CHECK_MSG(index < arms_.size(), "arm index out of range");
  return arms_[index];
}

void ArmBank::reset() {
  for (auto& arm : arms_) arm.reset();
  theta_plane_.assign((dim_ + 1) * arms_.size(), 0.0);
  plane_dirty_ = false;
}

}  // namespace bw::core
