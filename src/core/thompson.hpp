#pragma once
// Linear-Gaussian Thompson sampling: per arm, sample a parameter vector
// from the posterior N(θ̂_i, v² A_i^{-1}) and pick the arm whose *sampled*
// model predicts the lowest runtime. Exploration comes from posterior
// width, so it self-anneals as data accumulates.

#include <vector>

#include "core/policy.hpp"
#include "core/tolerant.hpp"
#include "hardware/catalog.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/rls.hpp"

namespace bw::core {

struct ThompsonConfig {
  double posterior_scale = 1.0;  ///< v — widens (v>1) or sharpens sampling
  double ridge = 1e-3;
  ToleranceParams tolerance{};
  hw::ResourceWeights resource_weights{};
};

class LinearThompson final : public Policy {
 public:
  LinearThompson(const hw::HardwareCatalog& catalog, std::size_t num_features,
                 ThompsonConfig config = {});

  std::size_t num_arms() const override { return arms_.size(); }
  ArmIndex select(const FeatureVector& x, Rng& rng) override;
  void observe(ArmIndex arm, const FeatureVector& x, double runtime_s) override;
  ArmIndex recommend(const FeatureVector& x) const override;
  double predict(ArmIndex arm, const FeatureVector& x) const override;
  std::string name() const override { return "linear-thompson"; }
  void reset() override;

 private:
  /// One posterior draw of the predicted runtime for (arm, x).
  double sample_prediction(ArmIndex arm, const FeatureVector& x, Rng& rng) const;

  ThompsonConfig config_;
  std::vector<linalg::RecursiveLeastSquares> arms_;
  std::vector<double> resource_costs_;
};

}  // namespace bw::core
