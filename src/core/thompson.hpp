#pragma once
// Linear-Gaussian Thompson sampling: per arm, sample a parameter vector
// from the posterior N(θ̂_i, v² A_i^{-1}) and pick the arm whose *sampled*
// model predicts the lowest runtime. Exploration comes from posterior
// width, so it self-anneals as data accumulates. Runs on the shared
// ArmBank substrate.

#include "core/banked_policy.hpp"
#include "core/tolerant.hpp"
#include "hardware/catalog.hpp"

namespace bw::core {

struct ThompsonConfig {
  double posterior_scale = 1.0;  ///< v — widens (v>1) or sharpens sampling
  double ridge = 1e-3;
  ToleranceParams tolerance{};
  hw::ResourceWeights resource_weights{};
};

class LinearThompson final : public BankedPolicy {
 public:
  LinearThompson(const hw::HardwareCatalog& catalog, std::size_t num_features,
                 ThompsonConfig config = {});

  /// Production-stack path: a pre-built substrate (the BanditWare facade
  /// constructs it from the shared BanditWareConfig fit/tolerance options)
  /// plus this policy's own scalar. Requires the incremental backend (the
  /// posterior draw reads the RLS covariance).
  LinearThompson(ArmBank bank, double posterior_scale);

  ArmIndex select(const FeatureVector& x, Rng& rng) override;
  std::string name() const override { return "linear-thompson"; }
  PolicyKind kind() const override { return PolicyKind::kThompson; }

  double posterior_scale() const { return posterior_scale_; }

 private:
  double posterior_scale_;
};

}  // namespace bw::core
