#pragma once
// RunTable: the replay dataset — every workflow (run group) executed on
// every hardware setting. This is what the merge step of paper Fig. 1
// produces, and what the replay evaluator samples from.

#include <string>
#include <vector>

#include "core/types.hpp"
#include "hardware/catalog.hpp"
#include "linalg/matrix.hpp"

namespace bw::core {

class RunTable {
 public:
  RunTable() = default;

  /// `features`: num_groups x num_features; `runtimes`: num_groups x
  /// num_arms (seconds). Throws InvalidArgument on shape mismatches,
  /// non-finite values, or empty inputs.
  RunTable(std::vector<std::string> feature_names, linalg::Matrix features,
           linalg::Matrix runtimes, hw::HardwareCatalog catalog);

  std::size_t num_groups() const { return features_.rows(); }
  std::size_t num_features() const { return features_.cols(); }
  std::size_t num_arms() const { return runtimes_.cols(); }

  const std::vector<std::string>& feature_names() const { return feature_names_; }
  const hw::HardwareCatalog& catalog() const { return catalog_; }
  const linalg::Matrix& features() const { return features_; }
  const linalg::Matrix& runtimes() const { return runtimes_; }

  /// Feature row of group g.
  FeatureVector features_of(std::size_t group) const;

  /// Observed runtime of group g on arm a.
  double runtime(std::size_t group, ArmIndex arm) const;

  /// Arm with the minimum actual runtime for group g (ties -> lowest index).
  ArmIndex best_arm(std::size_t group) const;

  /// Minimum actual runtime for group g.
  double best_runtime(std::size_t group) const;

  /// New table keeping only groups where `predicate(group)` holds.
  RunTable filter_groups(const std::vector<bool>& keep) const;

  /// New table with a subset of feature columns (by name, in given order).
  RunTable select_features(const std::vector<std::string>& names) const;

 private:
  std::vector<std::string> feature_names_;
  linalg::Matrix features_;
  linalg::Matrix runtimes_;
  hw::HardwareCatalog catalog_;
};

}  // namespace bw::core
