#pragma once
// LinUCB for runtime minimization (paper future work: "more complex
// contextual bandit algorithms"). Per arm we keep a ridge RLS posterior on
// the shared ArmBank substrate; selection is optimistic toward *low*
// runtime via the lower confidence bound
//   R̂(H_i, x) - alpha * sqrt(x̃^T A_i^{-1} x̃).

#include "core/banked_policy.hpp"
#include "core/tolerant.hpp"
#include "hardware/catalog.hpp"

namespace bw::core {

struct LinUcbConfig {
  double alpha = 1.0;          ///< exploration width multiplier
  double ridge = 1e-3;         ///< RLS prior precision
  ToleranceParams tolerance{}; ///< applied to greedy recommend()
  hw::ResourceWeights resource_weights{};
};

class LinUcb final : public BankedPolicy {
 public:
  LinUcb(const hw::HardwareCatalog& catalog, std::size_t num_features,
         LinUcbConfig config = {});

  /// Production-stack path: a pre-built substrate (the BanditWare facade
  /// constructs it from the shared BanditWareConfig fit/tolerance options)
  /// plus this policy's own scalar. Requires the incremental backend (the
  /// confidence width reads the RLS posterior).
  LinUcb(ArmBank bank, double alpha);

  ArmIndex select(const FeatureVector& x, Rng& rng) override;
  std::string name() const override { return "linucb"; }
  PolicyKind kind() const override { return PolicyKind::kLinUcb; }

  double alpha() const { return alpha_; }

  /// Lower confidence bound used by select().
  double lcb(ArmIndex arm, const FeatureVector& x) const;

 private:
  double alpha_;
};

}  // namespace bw::core
