#pragma once
// LinUCB for runtime minimization (paper future work: "more complex
// contextual bandit algorithms"). Per arm we keep a ridge RLS posterior;
// selection is optimistic toward *low* runtime via the lower confidence
// bound  R̂(H_i, x) - alpha * sqrt(x̃^T A_i^{-1} x̃).

#include <vector>

#include "core/policy.hpp"
#include "core/tolerant.hpp"
#include "hardware/catalog.hpp"
#include "linalg/rls.hpp"

namespace bw::core {

struct LinUcbConfig {
  double alpha = 1.0;          ///< exploration width multiplier
  double ridge = 1e-3;         ///< RLS prior precision
  ToleranceParams tolerance{}; ///< applied to greedy recommend()
  hw::ResourceWeights resource_weights{};
};

class LinUcb final : public Policy {
 public:
  LinUcb(const hw::HardwareCatalog& catalog, std::size_t num_features,
         LinUcbConfig config = {});

  std::size_t num_arms() const override { return arms_.size(); }
  ArmIndex select(const FeatureVector& x, Rng& rng) override;
  void observe(ArmIndex arm, const FeatureVector& x, double runtime_s) override;
  ArmIndex recommend(const FeatureVector& x) const override;
  double predict(ArmIndex arm, const FeatureVector& x) const override;
  std::string name() const override { return "linucb"; }
  void reset() override;

  /// Lower confidence bound used by select().
  double lcb(ArmIndex arm, const FeatureVector& x) const;

 private:
  LinUcbConfig config_;
  std::vector<linalg::RecursiveLeastSquares> arms_;
  std::vector<double> resource_costs_;
};

}  // namespace bw::core
