#include "core/linucb.hpp"

#include <cmath>
#include <span>
#include <utility>

#include "common/error.hpp"
#include "core/score_scratch.hpp"

namespace bw::core {

namespace {

ArmBank make_bank(const hw::HardwareCatalog& catalog, std::size_t num_features,
                  const LinUcbConfig& config) {
  linalg::FitOptions fit;
  fit.ridge = config.ridge;
  return ArmBank(catalog, num_features, fit, /*exact_history=*/false,
                 config.tolerance, config.resource_weights);
}

}  // namespace

LinUcb::LinUcb(const hw::HardwareCatalog& catalog, std::size_t num_features,
               LinUcbConfig config)
    : LinUcb(make_bank(catalog, num_features, config), config.alpha) {}

LinUcb::LinUcb(ArmBank bank, double alpha)
    : BankedPolicy(std::move(bank)), alpha_(alpha) {
  BW_CHECK_MSG(alpha_ >= 0.0, "alpha must be non-negative");
  BW_CHECK_MSG(!std::as_const(bank_).arm(0).exact_history(),
               "linucb requires the incremental backend (the confidence "
               "width reads the RLS posterior)");
}

double LinUcb::lcb(ArmIndex arm, const FeatureVector& x) const {
  const double mean = bank_.predict(arm, x);
  const double width = std::sqrt(std::max(0.0, bank_.variance_proxy(arm, x)));
  return mean - alpha_ * width;
}

ArmIndex LinUcb::select(const FeatureVector& x, Rng& rng) {
  (void)rng;  // LinUCB is deterministic given its history
  // Bank-level sweep: one theta-plane pass for the means and one hoisted
  // quadratic-form loop for the widths, instead of re-walking the per-arm
  // objects 2x per arm. The per-arm expression below is the same FP
  // sequence as lcb(), so the argmin is byte-identical to the scalar walk.
  DecisionScratch& scratch = DecisionScratch::local();
  scratch.ensure(bank_.size(), bank_.dim(), 1);
  const std::span<double> means(scratch.scores.data(), bank_.size());
  const std::span<double> vars(scratch.widths.data(), bank_.size());
  bank_.predict_all(x, means);
  bank_.variance_proxy_all(x, vars);
  ArmIndex best = 0;
  double best_lcb = means[0] - alpha_ * std::sqrt(std::max(0.0, vars[0]));
  for (ArmIndex arm = 1; arm < bank_.size(); ++arm) {
    const double value = means[arm] - alpha_ * std::sqrt(std::max(0.0, vars[arm]));
    if (value < best_lcb) {
      best_lcb = value;
      best = arm;
    }
  }
  return best;
}

}  // namespace bw::core
