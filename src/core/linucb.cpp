#include "core/linucb.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bw::core {

LinUcb::LinUcb(const hw::HardwareCatalog& catalog, std::size_t num_features,
               LinUcbConfig config)
    : config_(config) {
  BW_CHECK_MSG(!catalog.empty(), "policy needs at least one arm");
  BW_CHECK_MSG(num_features > 0, "policy needs at least one feature");
  BW_CHECK_MSG(config.alpha >= 0.0, "alpha must be non-negative");
  arms_.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    arms_.emplace_back(num_features, config.ridge);
  }
  resource_costs_ = catalog.resource_costs(config.resource_weights);
}

double LinUcb::lcb(ArmIndex arm, const FeatureVector& x) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  const double mean = arms_[arm].predict(x);
  const double width = std::sqrt(std::max(0.0, arms_[arm].variance_proxy(x)));
  return mean - config_.alpha * width;
}

ArmIndex LinUcb::select(const FeatureVector& x, Rng& rng) {
  (void)rng;  // LinUCB is deterministic given its history
  ArmIndex best = 0;
  double best_lcb = lcb(0, x);
  for (ArmIndex arm = 1; arm < arms_.size(); ++arm) {
    const double value = lcb(arm, x);
    if (value < best_lcb) {
      best_lcb = value;
      best = arm;
    }
  }
  return best;
}

void LinUcb::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  arms_[arm].update(x, runtime_s);
}

ArmIndex LinUcb::recommend(const FeatureVector& x) const {
  std::vector<double> predictions(arms_.size());
  for (ArmIndex arm = 0; arm < arms_.size(); ++arm) {
    predictions[arm] = arms_[arm].predict(x);
  }
  return tolerant_select(predictions, resource_costs_, config_.tolerance).arm;
}

double LinUcb::predict(ArmIndex arm, const FeatureVector& x) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm].predict(x);
}

void LinUcb::reset() {
  for (auto& arm : arms_) arm.reset();
}

}  // namespace bw::core
