#pragma once
// FrozenModel — an immutable, structurally-shared snapshot of a BanditWare
// instance's greedy serving surface (the tolerant-greedy pass every policy
// kind shares). The serve layer publishes one of these per shard behind an
// atomically-swapped shared_ptr (RCU-style), so a pure-exploitation
// recommend is a wait-free pointer load plus a predict against frozen state
// — no shard mutex touched (ROADMAP "Read publication").
//
// A snapshot holds exactly what the greedy pass reads and nothing else: one
// fitted linalg::LinearModel per arm (O(d) doubles — not the O(d^2)
// sufficient statistics, which only writers need), the catalog's resource
// costs, and the tolerance parameters. Prediction runs through the same
// LinearModel::predict and tolerant_select the live ArmBank pass uses, so a
// frozen recommend is byte-identical to a shared-lock recommend against the
// model it was frozen from.
//
// Structural sharing keeps republication off the O(arms) cliff: per-arm
// state lives in individually shared nodes, so rebuilding after a write
// (BanditWare::refreeze) allocates new nodes only for the arms the write
// touched and shares every other node with the previous snapshot —
// O(dirty * d + arms) per publish instead of O(arms * d), which is what
// makes per-batch republication affordable at hardware-catalog scale.
//
// Decision kernel (ROADMAP "Decision kernel"): alongside the shared nodes
// — which remain the publish/refreeze currency — every snapshot carries a
// contiguous TRANSPOSED (d+1) x arms coefficient plane: row kk holds
// coefficient kk across every arm, the intercept row last (matching the
// linalg/intercept convention). Scoring all arms is then one GEMM-shaped
// pass whose inner loop streams unit-stride across arms (linalg::
// score_block), instead of a pointer chase through one heap node per arm,
// and batched greedy reads (recommend_greedy_batch) amortize one traversal
// of the plane across B concurrent contexts. Each arm's score still
// accumulates its dot product in the same index order as
// LinearModel::predict, so decisions are byte-identical to the scalar
// node walk (recommend_choice_scalar — kept as the pinned reference path).
// Refreeze copies the previous snapshot's plane flat and rewrites only the
// dirty columns, so the delta publish stays one memcpy plus O(dirty * d).
//
// Instances are deeply immutable after construction and safe to read from
// any number of threads with no synchronization beyond the pointer load
// that obtained them. Build them via BanditWare::freeze / refreeze.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tolerant.hpp"
#include "core/types.hpp"
#include "linalg/lstsq.hpp"

namespace bw::core {

/// One frozen arm: the fitted linear model only. Nodes are the unit of
/// structural sharing between successive snapshots.
struct FrozenArm {
  linalg::LinearModel model;
};

class FrozenModel {
 public:
  /// Assembled by BanditWare::freeze / refreeze; `epoch` is the publisher's
  /// per-shard publication counter (readers use it to assert monotonic
  /// snapshot visibility — a reader must never observe an epoch go
  /// backwards on one shard).
  FrozenModel(std::vector<std::shared_ptr<const FrozenArm>> arms,
              std::shared_ptr<const std::vector<double>> resource_costs,
              ToleranceParams tolerance, std::size_t num_features,
              std::uint64_t epoch);

  /// Delta-assembly ctor (BanditWare::refreeze): identical to the one above
  /// except the coefficient plane is copied flat from `prev` and only the
  /// columns in `dirty` are re-read from their (freshly allocated) arm
  /// nodes. `prev` must have the same shape.
  FrozenModel(std::vector<std::shared_ptr<const FrozenArm>> arms,
              std::shared_ptr<const std::vector<double>> resource_costs,
              ToleranceParams tolerance, std::size_t num_features,
              std::uint64_t epoch, const FrozenModel& prev,
              std::span<const ArmIndex> dirty);

  std::size_t num_arms() const { return arms_.size(); }
  std::size_t dim() const { return num_features_; }
  std::uint64_t epoch() const { return epoch_; }

  /// Tolerant-greedy choice with its predicted runtime. Scores every arm
  /// as one matrix-vector pass over the contiguous coefficient plane into
  /// the shared per-thread DecisionScratch, then runs the same
  /// tolerant_select as the live ArmBank pass — byte-identical to
  /// recommend_choice_scalar (pinned in tests/test_decision_kernel.cpp).
  TolerantChoice recommend_choice(const FeatureVector& x) const;

  /// The scalar reference path: the original per-node predict walk. This is
  /// the FP-order source of truth the vectorized plane is pinned bitwise
  /// against, and the pointer-chasing baseline the decide bench gate
  /// measures the kernel speedup from.
  TolerantChoice recommend_choice_scalar(const FeatureVector& x) const;

  /// Batched greedy reads: packs the contexts xs[items[j]] into a
  /// B x (d+1) panel and scores all arms for all of them with one blocked
  /// linalg::score_block call, writing the tolerant choice for items[j]
  /// into out[j]. Decisions are byte-identical to calling recommend_choice
  /// per context. `out` must have items.size() entries.
  void recommend_greedy_batch(std::span<const FeatureVector> xs,
                              std::span<const std::size_t> items,
                              std::span<TolerantChoice> out) const;

  /// Convenience form: one choice per context, in order.
  std::vector<TolerantChoice> recommend_greedy_batch(
      std::span<const FeatureVector> xs) const;

  /// R̂ for one arm against the frozen weights.
  double predict(ArmIndex arm, const FeatureVector& x) const;

  /// Arm `arm`'s plane column gathered as [w_0 .. w_{d-1}, b]. Test hook
  /// for the plane-vs-node identity contract.
  std::vector<double> weight_row(ArmIndex arm) const;

  /// The shared per-arm node — exposed so refreeze can share untouched
  /// nodes and tests can pin the structural-sharing contract by pointer
  /// identity.
  const std::shared_ptr<const FrozenArm>& arm_node(ArmIndex arm) const;

  const std::shared_ptr<const std::vector<double>>& shared_resource_costs() const {
    return resource_costs_;
  }
  const ToleranceParams& tolerance() const { return tolerance_; }

 private:
  void validate() const;
  /// Copies arm `arm`'s node coefficients into its plane column.
  void fill_plane_column(ArmIndex arm);

  std::vector<std::shared_ptr<const FrozenArm>> arms_;
  std::shared_ptr<const std::vector<double>> resource_costs_;
  ToleranceParams tolerance_;
  std::size_t num_features_;
  std::uint64_t epoch_;
  /// Transposed (d+1) x arms coefficient plane: row kk = coefficient kk
  /// across all arms, intercept row last (the layout linalg::score_block
  /// streams). Assembled at freeze/refreeze; immutable afterwards like
  /// everything else here.
  std::vector<double> weight_plane_;
};

}  // namespace bw::core
