#pragma once
// FrozenModel — an immutable, structurally-shared snapshot of a BanditWare
// instance's greedy serving surface (the tolerant-greedy pass every policy
// kind shares). The serve layer publishes one of these per shard behind an
// atomically-swapped shared_ptr (RCU-style), so a pure-exploitation
// recommend is a wait-free pointer load plus a predict against frozen state
// — no shard mutex touched (ROADMAP "Read publication").
//
// A snapshot holds exactly what the greedy pass reads and nothing else: one
// fitted linalg::LinearModel per arm (O(d) doubles — not the O(d^2)
// sufficient statistics, which only writers need), the catalog's resource
// costs, and the tolerance parameters. Prediction runs through the same
// LinearModel::predict and tolerant_select the live ArmBank pass uses, so a
// frozen recommend is byte-identical to a shared-lock recommend against the
// model it was frozen from.
//
// Structural sharing keeps republication off the O(arms) cliff: per-arm
// state lives in individually shared nodes, so rebuilding after a write
// (BanditWare::refreeze) allocates new nodes only for the arms the write
// touched and shares every other node with the previous snapshot —
// O(dirty * d + arms) per publish instead of O(arms * d), which is what
// makes per-batch republication affordable at hardware-catalog scale.
//
// Instances are deeply immutable after construction and safe to read from
// any number of threads with no synchronization beyond the pointer load
// that obtained them. Build them via BanditWare::freeze / refreeze.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tolerant.hpp"
#include "core/types.hpp"
#include "linalg/lstsq.hpp"

namespace bw::core {

/// One frozen arm: the fitted linear model only. Nodes are the unit of
/// structural sharing between successive snapshots.
struct FrozenArm {
  linalg::LinearModel model;
};

class FrozenModel {
 public:
  /// Assembled by BanditWare::freeze / refreeze; `epoch` is the publisher's
  /// per-shard publication counter (readers use it to assert monotonic
  /// snapshot visibility — a reader must never observe an epoch go
  /// backwards on one shard).
  FrozenModel(std::vector<std::shared_ptr<const FrozenArm>> arms,
              std::shared_ptr<const std::vector<double>> resource_costs,
              ToleranceParams tolerance, std::size_t num_features,
              std::uint64_t epoch);

  std::size_t num_arms() const { return arms_.size(); }
  std::size_t dim() const { return num_features_; }
  std::uint64_t epoch() const { return epoch_; }

  /// Tolerant-greedy choice with its predicted runtime — the same pass (and
  /// the same thread_local scratch idiom) as ArmBank::recommend_choice, so
  /// the decision is byte-identical to a locked read of the source model.
  TolerantChoice recommend_choice(const FeatureVector& x) const;

  /// R̂ for one arm against the frozen weights.
  double predict(ArmIndex arm, const FeatureVector& x) const;

  /// The shared per-arm node — exposed so refreeze can share untouched
  /// nodes and tests can pin the structural-sharing contract by pointer
  /// identity.
  const std::shared_ptr<const FrozenArm>& arm_node(ArmIndex arm) const;

  const std::shared_ptr<const std::vector<double>>& shared_resource_costs() const {
    return resource_costs_;
  }
  const ToleranceParams& tolerance() const { return tolerance_; }

 private:
  std::vector<std::shared_ptr<const FrozenArm>> arms_;
  std::shared_ptr<const std::vector<double>> resource_costs_;
  ToleranceParams tolerance_;
  std::size_t num_features_;
  std::uint64_t epoch_;
};

}  // namespace bw::core
