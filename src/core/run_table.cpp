#include "core/run_table.hpp"

#include "common/error.hpp"

namespace bw::core {

RunTable::RunTable(std::vector<std::string> feature_names, linalg::Matrix features,
                   linalg::Matrix runtimes, hw::HardwareCatalog catalog)
    : feature_names_(std::move(feature_names)),
      features_(std::move(features)),
      runtimes_(std::move(runtimes)),
      catalog_(std::move(catalog)) {
  BW_CHECK_MSG(features_.rows() > 0, "run table needs at least one group");
  BW_CHECK_MSG(features_.cols() == feature_names_.size(),
               "feature-name count must match feature columns");
  BW_CHECK_MSG(runtimes_.rows() == features_.rows(),
               "runtimes must have one row per group");
  BW_CHECK_MSG(runtimes_.cols() == catalog_.size(),
               "runtimes must have one column per hardware arm");
  BW_CHECK_MSG(!catalog_.empty(), "run table needs at least one arm");
  BW_CHECK_MSG(linalg::all_finite(features_.data()), "non-finite feature value");
  BW_CHECK_MSG(linalg::all_finite(runtimes_.data()), "non-finite runtime value");
}

FeatureVector RunTable::features_of(std::size_t group) const {
  const auto row = features_.row(group);
  return FeatureVector(row.begin(), row.end());
}

double RunTable::runtime(std::size_t group, ArmIndex arm) const {
  return runtimes_(group, arm);
}

ArmIndex RunTable::best_arm(std::size_t group) const {
  ArmIndex best = 0;
  for (ArmIndex arm = 1; arm < num_arms(); ++arm) {
    if (runtimes_(group, arm) < runtimes_(group, best)) best = arm;
  }
  return best;
}

double RunTable::best_runtime(std::size_t group) const {
  return runtimes_(group, best_arm(group));
}

RunTable RunTable::filter_groups(const std::vector<bool>& keep) const {
  BW_CHECK_MSG(keep.size() == num_groups(), "filter mask size mismatch");
  std::size_t kept = 0;
  for (bool k : keep) kept += k;
  BW_CHECK_MSG(kept > 0, "filter would remove every group");

  linalg::Matrix features(kept, num_features());
  linalg::Matrix runtimes(kept, num_arms());
  std::size_t out = 0;
  for (std::size_t g = 0; g < num_groups(); ++g) {
    if (!keep[g]) continue;
    for (std::size_t c = 0; c < num_features(); ++c) features(out, c) = features_(g, c);
    for (std::size_t a = 0; a < num_arms(); ++a) runtimes(out, a) = runtimes_(g, a);
    ++out;
  }
  return RunTable(feature_names_, std::move(features), std::move(runtimes), catalog_);
}

RunTable RunTable::select_features(const std::vector<std::string>& names) const {
  BW_CHECK_MSG(!names.empty(), "must keep at least one feature");
  std::vector<std::size_t> indices;
  indices.reserve(names.size());
  for (const auto& name : names) {
    bool found = false;
    for (std::size_t i = 0; i < feature_names_.size(); ++i) {
      if (feature_names_[i] == name) {
        indices.push_back(i);
        found = true;
        break;
      }
    }
    BW_CHECK_MSG(found, "no such feature: " + name);
  }
  linalg::Matrix features(num_groups(), indices.size());
  for (std::size_t g = 0; g < num_groups(); ++g) {
    for (std::size_t c = 0; c < indices.size(); ++c) {
      features(g, c) = features_(g, indices[c]);
    }
  }
  return RunTable(names, std::move(features), runtimes_, catalog_);
}

}  // namespace bw::core
