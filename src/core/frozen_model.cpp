#include "core/frozen_model.hpp"

#include "common/error.hpp"

namespace bw::core {

FrozenModel::FrozenModel(std::vector<std::shared_ptr<const FrozenArm>> arms,
                         std::shared_ptr<const std::vector<double>> resource_costs,
                         ToleranceParams tolerance, std::size_t num_features,
                         std::uint64_t epoch)
    : arms_(std::move(arms)),
      resource_costs_(std::move(resource_costs)),
      tolerance_(tolerance),
      num_features_(num_features),
      epoch_(epoch) {
  BW_CHECK_MSG(!arms_.empty(), "frozen model needs at least one arm");
  BW_CHECK_MSG(resource_costs_ != nullptr && resource_costs_->size() == arms_.size(),
               "frozen model: resource costs do not match the arms");
  for (const auto& arm : arms_) {
    BW_CHECK_MSG(arm != nullptr, "frozen model: null arm node");
  }
  BW_CHECK_MSG(num_features_ > 0, "frozen model needs at least one feature");
}

TolerantChoice FrozenModel::recommend_choice(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == num_features_, "feature vector size mismatch");
  // Same scratch idiom as ArmBank::recommend_choice: this is the serving
  // hot path and runs concurrently on many reader threads, so the reusable
  // prediction buffer must be per-thread.
  static thread_local std::vector<double> predictions;
  predictions.resize(arms_.size());
  for (ArmIndex arm = 0; arm < arms_.size(); ++arm) {
    predictions[arm] = arms_[arm]->model.predict(x);
  }
  return tolerant_select(predictions, *resource_costs_, tolerance_);
}

double FrozenModel::predict(ArmIndex arm, const FeatureVector& x) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm]->model.predict(x);
}

const std::shared_ptr<const FrozenArm>& FrozenModel::arm_node(ArmIndex arm) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm];
}

}  // namespace bw::core
