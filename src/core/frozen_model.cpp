#include "core/frozen_model.hpp"

#include "common/error.hpp"
#include "core/score_scratch.hpp"
#include "linalg/gemm.hpp"

namespace bw::core {

void FrozenModel::validate() const {
  BW_CHECK_MSG(!arms_.empty(), "frozen model needs at least one arm");
  BW_CHECK_MSG(resource_costs_ != nullptr && resource_costs_->size() == arms_.size(),
               "frozen model: resource costs do not match the arms");
  for (const auto& arm : arms_) {
    BW_CHECK_MSG(arm != nullptr, "frozen model: null arm node");
    BW_CHECK_MSG(arm->model.weights.size() == num_features_,
                 "frozen model: arm weight dimension mismatch");
  }
  BW_CHECK_MSG(num_features_ > 0, "frozen model needs at least one feature");
}

void FrozenModel::fill_plane_column(ArmIndex arm) {
  // The plane is transposed (k x arms, see gemm.hpp), so one arm's
  // coefficients land as a strided column. Updates are rare (freeze and
  // refreeze only); the layout is chosen for the read side, where the
  // kernel streams unit-stride across arms.
  const linalg::LinearModel& model = arms_[arm]->model;
  const std::size_t stride = arms_.size();
  for (std::size_t i = 0; i < num_features_; ++i) {
    weight_plane_[i * stride + arm] = model.weights[i];
  }
  weight_plane_[num_features_ * stride + arm] = model.bias;
}

FrozenModel::FrozenModel(std::vector<std::shared_ptr<const FrozenArm>> arms,
                         std::shared_ptr<const std::vector<double>> resource_costs,
                         ToleranceParams tolerance, std::size_t num_features,
                         std::uint64_t epoch)
    : arms_(std::move(arms)),
      resource_costs_(std::move(resource_costs)),
      tolerance_(tolerance),
      num_features_(num_features),
      epoch_(epoch) {
  validate();
  weight_plane_.resize((num_features_ + 1) * arms_.size());
  for (ArmIndex arm = 0; arm < arms_.size(); ++arm) fill_plane_column(arm);
}

FrozenModel::FrozenModel(std::vector<std::shared_ptr<const FrozenArm>> arms,
                         std::shared_ptr<const std::vector<double>> resource_costs,
                         ToleranceParams tolerance, std::size_t num_features,
                         std::uint64_t epoch, const FrozenModel& prev,
                         std::span<const ArmIndex> dirty)
    : arms_(std::move(arms)),
      resource_costs_(std::move(resource_costs)),
      tolerance_(tolerance),
      num_features_(num_features),
      epoch_(epoch) {
  validate();
  BW_CHECK_MSG(
      prev.arms_.size() == arms_.size() && prev.num_features_ == num_features_,
      "frozen model: delta refreeze against a differently-shaped snapshot");
  weight_plane_ = prev.weight_plane_;
  for (ArmIndex arm : dirty) {
    BW_CHECK_MSG(arm < arms_.size(), "frozen model: dirty arm out of range");
    fill_plane_column(arm);
  }
}

TolerantChoice FrozenModel::recommend_choice(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == num_features_, "feature vector size mismatch");
  DecisionScratch& scratch = DecisionScratch::local();
  scratch.ensure(arms_.size(), num_features_, 1);
  for (std::size_t i = 0; i < num_features_; ++i) scratch.panel[i] = x[i];
  scratch.panel[num_features_] = 1.0;
  linalg::score_block(weight_plane_.data(), arms_.size(), num_features_ + 1,
                      scratch.panel.data(), 1, scratch.scores.data());
  return tolerant_select(
      std::span<const double>(scratch.scores.data(), arms_.size()),
      *resource_costs_, tolerance_);
}

TolerantChoice FrozenModel::recommend_choice_scalar(const FeatureVector& x) const {
  BW_CHECK_MSG(x.size() == num_features_, "feature vector size mismatch");
  DecisionScratch& scratch = DecisionScratch::local();
  scratch.ensure(arms_.size(), num_features_, 1);
  for (ArmIndex arm = 0; arm < arms_.size(); ++arm) {
    scratch.scores[arm] = arms_[arm]->model.predict(x);
  }
  return tolerant_select(
      std::span<const double>(scratch.scores.data(), arms_.size()),
      *resource_costs_, tolerance_);
}

void FrozenModel::recommend_greedy_batch(std::span<const FeatureVector> xs,
                                         std::span<const std::size_t> items,
                                         std::span<TolerantChoice> out) const {
  BW_CHECK_MSG(out.size() == items.size(),
               "recommend_greedy_batch: output size mismatch");
  if (items.empty()) return;
  const std::size_t b = items.size();
  DecisionScratch& scratch = DecisionScratch::local();
  scratch.ensure(arms_.size(), num_features_, b);
  for (std::size_t j = 0; j < b; ++j) {
    BW_CHECK_MSG(items[j] < xs.size(), "recommend_greedy_batch: item out of range");
    const FeatureVector& x = xs[items[j]];
    BW_CHECK_MSG(x.size() == num_features_, "feature vector size mismatch");
    // Context-major pack: row j of the panel is [x_j; 1] (see gemm.hpp).
    double* row = scratch.panel.data() + j * (num_features_ + 1);
    for (std::size_t kk = 0; kk < num_features_; ++kk) row[kk] = x[kk];
    row[num_features_] = 1.0;
  }
  linalg::score_block(weight_plane_.data(), arms_.size(), num_features_ + 1,
                      scratch.panel.data(), b, scratch.scores.data());
  for (std::size_t j = 0; j < b; ++j) {
    out[j] = tolerant_select(
        std::span<const double>(scratch.scores.data() + j * arms_.size(),
                                arms_.size()),
        *resource_costs_, tolerance_);
  }
}

std::vector<TolerantChoice> FrozenModel::recommend_greedy_batch(
    std::span<const FeatureVector> xs) const {
  std::vector<std::size_t> items(xs.size());
  for (std::size_t j = 0; j < items.size(); ++j) items[j] = j;
  std::vector<TolerantChoice> out(xs.size());
  recommend_greedy_batch(xs, items, out);
  return out;
}

double FrozenModel::predict(ArmIndex arm, const FeatureVector& x) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm]->model.predict(x);
}

std::vector<double> FrozenModel::weight_row(ArmIndex arm) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  std::vector<double> row(num_features_ + 1);
  for (std::size_t i = 0; i <= num_features_; ++i) {
    row[i] = weight_plane_[i * arms_.size() + arm];
  }
  return row;
}

const std::shared_ptr<const FrozenArm>& FrozenModel::arm_node(ArmIndex arm) const {
  BW_CHECK_MSG(arm < arms_.size(), "arm index out of range");
  return arms_[arm];
}

}  // namespace bw::core
