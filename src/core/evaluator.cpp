#include "core/evaluator.hpp"

#include "common/error.hpp"

namespace bw::core {

ReplayResult replay(Policy& policy, const RunTable& table, const ReplayConfig& config) {
  BW_CHECK_MSG(policy.num_arms() == table.num_arms(),
               "policy arm count does not match the table");
  BW_CHECK_MSG(config.num_rounds > 0, "replay needs at least one round");
  policy.reset();
  Rng rng(config.seed);

  ReplayResult result;
  result.chosen_arm.reserve(config.num_rounds);
  result.observed_runtime.reserve(config.num_rounds);
  result.instant_regret.reserve(config.num_rounds);

  const PredictFn predict_fn = [&policy](ArmIndex arm, const FeatureVector& x) {
    return policy.predict(arm, x);
  };
  const RecommendFn recommend_fn = [&policy](const FeatureVector& x) {
    return policy.recommend(x);
  };

  for (std::size_t round = 0; round < config.num_rounds; ++round) {
    // Lines 4-10 of Algorithm 1: an incoming workflow arrives...
    const std::size_t group = rng.index(table.num_groups());
    const FeatureVector x = table.features_of(group);
    const ArmIndex arm = policy.select(x, rng);
    BW_CHECK_MSG(arm < table.num_arms(), "policy selected out-of-range arm");
    const double runtime = table.runtime(group, arm);
    policy.observe(arm, x, runtime);

    result.chosen_arm.push_back(arm);
    result.observed_runtime.push_back(runtime);
    const double regret = runtime - table.best_runtime(group);
    result.instant_regret.push_back(regret);
    result.cumulative_regret += regret;

    if (config.per_round_metrics) {
      const DatasetMetrics metrics =
          evaluate_on_table(table, predict_fn, recommend_fn, config.accuracy_tolerance,
                            config.resource_weights);
      result.rmse.push_back(metrics.rmse);
      result.accuracy.push_back(metrics.accuracy);
      result.mean_resource_cost.push_back(metrics.mean_resource_cost);
      if (round + 1 == config.num_rounds) result.final_metrics = metrics;
    }
  }
  if (!config.per_round_metrics) {
    result.final_metrics = evaluate_on_table(table, predict_fn, recommend_fn,
                                             config.accuracy_tolerance,
                                             config.resource_weights);
  }
  return result;
}

MultiSimResult run_simulations(const PolicyFactory& make_policy, const RunTable& table,
                               const ReplayConfig& config, std::size_t num_simulations,
                               ThreadPool* pool) {
  BW_CHECK_MSG(num_simulations > 0, "need at least one simulation");
  BW_CHECK_MSG(static_cast<bool>(make_policy), "need a policy factory");

  std::vector<ReplayResult> results(num_simulations);
  Rng seeder(config.seed);
  std::vector<std::uint64_t> seeds(num_simulations);
  for (std::size_t s = 0; s < num_simulations; ++s) seeds[s] = seeder.child_seed(s);

  auto run_one = [&](std::size_t s) {
    ReplayConfig sim_config = config;
    sim_config.seed = seeds[s];
    std::unique_ptr<Policy> policy = make_policy();
    results[s] = replay(*policy, table, sim_config);
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, num_simulations, run_one);
  } else {
    for (std::size_t s = 0; s < num_simulations; ++s) run_one(s);
  }

  MultiSimResult aggregate;
  std::vector<std::vector<double>> rmse_series, accuracy_series, cost_series;
  for (const auto& result : results) {
    if (!result.rmse.empty()) {
      rmse_series.push_back(result.rmse);
      accuracy_series.push_back(result.accuracy);
      cost_series.push_back(result.mean_resource_cost);
    }
    aggregate.final_rmse.push_back(result.final_metrics.rmse);
    aggregate.final_accuracy.push_back(result.final_metrics.accuracy);
    aggregate.cumulative_regret.push_back(result.cumulative_regret);
  }
  aggregate.rmse = aggregate_rounds(rmse_series);
  aggregate.accuracy = aggregate_rounds(accuracy_series);
  aggregate.resource_cost = aggregate_rounds(cost_series);
  aggregate.full_fit_metrics =
      fit_full_table(table, config.accuracy_tolerance, {}, config.resource_weights).metrics;
  return aggregate;
}

}  // namespace bw::core
