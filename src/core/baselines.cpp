#include "core/baselines.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bw::core {

// ---- Ucb1 ---------------------------------------------------------------

Ucb1::Ucb1(std::size_t num_arms, double exploration)
    : exploration_(exploration), counts_(num_arms, 0), mean_runtime_(num_arms, 0.0) {
  BW_CHECK_MSG(num_arms > 0, "policy needs at least one arm");
  BW_CHECK_MSG(exploration >= 0.0, "exploration constant must be non-negative");
}

ArmIndex Ucb1::select(const FeatureVector& x, Rng& rng) {
  (void)x;
  (void)rng;
  // Play every arm once first.
  for (ArmIndex arm = 0; arm < counts_.size(); ++arm) {
    if (counts_[arm] == 0) return arm;
  }
  ArmIndex best = 0;
  double best_value = 0.0;
  for (ArmIndex arm = 0; arm < counts_.size(); ++arm) {
    const double bonus = exploration_ * std::sqrt(2.0 * std::log(static_cast<double>(total_)) /
                                                  static_cast<double>(counts_[arm]));
    const double value = mean_runtime_[arm] - bonus;  // optimism toward low runtime
    if (arm == 0 || value < best_value) {
      best_value = value;
      best = arm;
    }
  }
  return best;
}

void Ucb1::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  (void)x;
  BW_CHECK_MSG(arm < counts_.size(), "arm index out of range");
  ++counts_[arm];
  ++total_;
  mean_runtime_[arm] += (runtime_s - mean_runtime_[arm]) / static_cast<double>(counts_[arm]);
}

ArmIndex Ucb1::recommend(const FeatureVector& x) const {
  (void)x;
  ArmIndex best = 0;
  for (ArmIndex arm = 1; arm < counts_.size(); ++arm) {
    // Unplayed arms (mean 0) should not win by default; prefer played arms.
    const bool best_played = counts_[best] > 0;
    const bool arm_played = counts_[arm] > 0;
    if (arm_played && (!best_played || mean_runtime_[arm] < mean_runtime_[best])) {
      best = arm;
    }
  }
  return best;
}

double Ucb1::predict(ArmIndex arm, const FeatureVector& x) const {
  (void)x;
  BW_CHECK_MSG(arm < counts_.size(), "arm index out of range");
  return mean_runtime_[arm];
}

void Ucb1::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  std::fill(mean_runtime_.begin(), mean_runtime_.end(), 0.0);
  total_ = 0;
}

// ---- MeanEpsilonGreedy ----------------------------------------------------

MeanEpsilonGreedy::MeanEpsilonGreedy(std::size_t num_arms, double epsilon)
    : epsilon_(epsilon), counts_(num_arms, 0), mean_runtime_(num_arms, 0.0) {
  BW_CHECK_MSG(num_arms > 0, "policy needs at least one arm");
  BW_CHECK_MSG(epsilon >= 0.0 && epsilon <= 1.0, "epsilon must be in [0,1]");
}

ArmIndex MeanEpsilonGreedy::select(const FeatureVector& x, Rng& rng) {
  if (rng.bernoulli(epsilon_)) return rng.index(counts_.size());
  return recommend(x);
}

void MeanEpsilonGreedy::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  (void)x;
  BW_CHECK_MSG(arm < counts_.size(), "arm index out of range");
  ++counts_[arm];
  mean_runtime_[arm] += (runtime_s - mean_runtime_[arm]) / static_cast<double>(counts_[arm]);
}

ArmIndex MeanEpsilonGreedy::recommend(const FeatureVector& x) const {
  (void)x;
  // Prefer any unplayed arm (its mean is unknown, not zero).
  for (ArmIndex arm = 0; arm < counts_.size(); ++arm) {
    if (counts_[arm] == 0) return arm;
  }
  ArmIndex best = 0;
  for (ArmIndex arm = 1; arm < counts_.size(); ++arm) {
    if (mean_runtime_[arm] < mean_runtime_[best]) best = arm;
  }
  return best;
}

double MeanEpsilonGreedy::predict(ArmIndex arm, const FeatureVector& x) const {
  (void)x;
  BW_CHECK_MSG(arm < counts_.size(), "arm index out of range");
  return mean_runtime_[arm];
}

void MeanEpsilonGreedy::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  std::fill(mean_runtime_.begin(), mean_runtime_.end(), 0.0);
}

// ---- RandomPolicy ----------------------------------------------------------

RandomPolicy::RandomPolicy(std::size_t num_arms) : num_arms_(num_arms) {
  BW_CHECK_MSG(num_arms > 0, "policy needs at least one arm");
}

ArmIndex RandomPolicy::select(const FeatureVector& x, Rng& rng) {
  (void)x;
  return rng.index(num_arms_);
}

void RandomPolicy::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  (void)arm;
  (void)x;
  (void)runtime_s;
}

ArmIndex RandomPolicy::recommend(const FeatureVector& x) const {
  (void)x;
  // Deterministic recommend() keeps the evaluator's accuracy metric
  // reproducible: cycle through arms.
  const ArmIndex arm = round_robin_ % num_arms_;
  round_robin_ = (round_robin_ + 1) % num_arms_;
  return arm;
}

double RandomPolicy::predict(ArmIndex arm, const FeatureVector& x) const {
  (void)arm;
  (void)x;
  return 0.0;
}

// ---- OraclePolicy ----------------------------------------------------------

OraclePolicy::OraclePolicy(std::size_t num_arms, BestArmFn best_arm)
    : num_arms_(num_arms), best_arm_(std::move(best_arm)) {
  BW_CHECK_MSG(num_arms > 0, "policy needs at least one arm");
  BW_CHECK_MSG(static_cast<bool>(best_arm_), "oracle needs a best-arm function");
}

ArmIndex OraclePolicy::select(const FeatureVector& x, Rng& rng) {
  (void)rng;
  return recommend(x);
}

void OraclePolicy::observe(ArmIndex arm, const FeatureVector& x, double runtime_s) {
  (void)arm;
  (void)x;
  (void)runtime_s;
}

ArmIndex OraclePolicy::recommend(const FeatureVector& x) const {
  const ArmIndex arm = best_arm_(x);
  BW_CHECK_MSG(arm < num_arms_, "oracle returned an out-of-range arm");
  return arm;
}

double OraclePolicy::predict(ArmIndex arm, const FeatureVector& x) const {
  (void)arm;
  (void)x;
  return 0.0;
}

}  // namespace bw::core
