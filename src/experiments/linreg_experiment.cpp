#include "experiments/linreg_experiment.hpp"

#include <chrono>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/lstsq.hpp"

namespace bw::exp {

LinRegDistribution run_linreg_experiment(const core::RunTable& table,
                                         const LinRegExperimentConfig& config) {
  BW_CHECK_MSG(config.num_models > 0, "need at least one model");
  BW_CHECK_MSG(config.samples_per_model >= 2, "need at least two samples per model");
  BW_CHECK_MSG(config.samples_per_model <= table.num_groups(),
               "sample size exceeds dataset size");

  Rng rng(config.seed);
  LinRegDistribution dist;
  dist.rmse_values.reserve(config.num_models);
  dist.r2_values.reserve(config.num_models);

  // Flatten the full table once for scoring.
  const std::size_t rows = table.num_groups() * table.num_arms();
  std::vector<double> actual(rows);
  {
    std::size_t r = 0;
    for (std::size_t g = 0; g < table.num_groups(); ++g) {
      for (std::size_t a = 0; a < table.num_arms(); ++a) actual[r++] = table.runtime(g, a);
    }
  }

  for (std::size_t m = 0; m < config.num_models; ++m) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<std::size_t> sample =
        rng.sample_without_replacement(table.num_groups(), config.samples_per_model);

    // Per-arm least squares on the sampled groups.
    std::vector<linalg::LinearModel> models;
    models.reserve(table.num_arms());
    linalg::Matrix design(sample.size(), table.num_features());
    for (std::size_t i = 0; i < sample.size(); ++i) {
      for (std::size_t c = 0; c < table.num_features(); ++c) {
        design(i, c) = table.features()(sample[i], c);
      }
    }
    for (std::size_t arm = 0; arm < table.num_arms(); ++arm) {
      linalg::Vector y(sample.size());
      for (std::size_t i = 0; i < sample.size(); ++i) y[i] = table.runtime(sample[i], arm);
      models.push_back(linalg::fit_linear(design, y).model);
    }
    const auto t1 = std::chrono::steady_clock::now();

    // Score on the full dataset (pooled over all rows).
    std::vector<double> predicted(rows);
    std::size_t r = 0;
    for (std::size_t g = 0; g < table.num_groups(); ++g) {
      const core::FeatureVector x = table.features_of(g);
      for (std::size_t a = 0; a < table.num_arms(); ++a) {
        predicted[r++] = models[a].predict(x);
      }
    }
    dist.rmse_values.push_back(bw::rmse(predicted, actual));
    dist.r2_values.push_back(bw::r_squared(predicted, actual));
    dist.train_seconds.push_back(std::chrono::duration<double>(t1 - t0).count());
  }

  dist.rmse = bw::summarize(dist.rmse_values);
  dist.r2 = bw::summarize(dist.r2_values);
  dist.seconds = bw::summarize(dist.train_seconds);
  return dist;
}

}  // namespace bw::exp
