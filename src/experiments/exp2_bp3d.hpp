#pragma once
// Experiment 2 drivers (paper Section 4.2): BP3D on NDP hardware.

#include <cstdint>
#include <string>
#include <vector>

#include "experiments/exp1_cycles.hpp"  // LearningRun
#include "experiments/linreg_experiment.hpp"

namespace bw::exp {

// ---- Table 1: BP3D inputs & outputs --------------------------------------

struct Table1Row {
  std::string feature;
  std::string description;
};

/// The feature schema exactly as paper Table 1 lists it.
const std::vector<Table1Row>& bp3d_table1_rows();

// ---- Fig. 5: 100 linear regressions on 25 samples -------------------------

struct Fig5Result {
  LinRegDistribution all_features;
  LinRegDistribution area_only;
};

Fig5Result run_fig5_bp3d_linreg(const Bp3dDataset& dataset, std::uint64_t seed = 9102);

// ---- Fig. 6: bandit vs baseline on the area feature -----------------------

struct Fig6ArmFit {
  std::string hardware;
  double bandit_slope = 0.0;      ///< mean over simulations of the learned model
  double bandit_intercept = 0.0;
  double baseline_slope = 0.0;    ///< full-fit over all samples
  double baseline_intercept = 0.0;
};

struct Fig6Result {
  std::vector<Fig6ArmFit> arms;
  /// Scatter support: per group (area, actual runtime per arm).
  std::vector<double> areas;
  linalg::Matrix actual_runtimes;  ///< groups x arms
};

/// Trains the bandit on the area-only view (paper: n_sim=100, n_rounds=50)
/// and compares the learned per-arm line against the full-data baseline.
Fig6Result run_fig6_bp3d_area_fit(const Bp3dDataset& dataset,
                                  std::size_t num_simulations = 100,
                                  std::size_t num_rounds = 50, std::uint64_t seed = 9103);

// ---- Fig. 7: RMSE / accuracy over 50 rounds, all features -----------------

LearningRun run_fig7_bp3d_bandit(const Bp3dDataset& dataset,
                                 std::size_t num_simulations = 100,
                                 std::size_t num_rounds = 50, std::uint64_t seed = 9104);

}  // namespace bw::exp
