#include "experiments/exp3_matmul.hpp"

#include "core/epsilon_greedy.hpp"
#include "experiments/paper_refs.hpp"

namespace bw::exp {

Fig8Result run_fig8_matmul_linreg(const MatmulDataset& dataset, std::uint64_t seed) {
  Fig8Result result;
  LinRegExperimentConfig config;
  config.seed = seed;
  result.full = run_linreg_experiment(dataset.table, config);
  config.seed = seed + 1;
  result.truncated = run_linreg_experiment(dataset.subset, config);
  return result;
}

LearningRun run_matmul_learning(const MatmulDataset& dataset,
                                const MatmulLearningOptions& options) {
  const core::RunTable& table = options.subset ? dataset.subset_size_only : dataset.size_only;

  core::EpsilonGreedyConfig policy_config;
  policy_config.initial_epsilon = paper::kInitialEpsilon;
  policy_config.decay = paper::kDecayAlpha;
  policy_config.tolerance = options.tolerance;

  core::ReplayConfig replay_config;
  replay_config.num_rounds = options.num_rounds;
  replay_config.accuracy_tolerance = options.tolerance;
  replay_config.seed = options.seed;

  LearningRun run;
  run.num_rounds = options.num_rounds;
  run.num_simulations = options.num_simulations;
  run.sims = core::run_simulations(
      [&] {
        return std::make_unique<core::DecayingEpsilonGreedy>(table.catalog(),
                                                             table.num_features(),
                                                             policy_config);
      },
      table, replay_config, options.num_simulations);
  return run;
}

}  // namespace bw::exp
