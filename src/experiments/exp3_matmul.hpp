#pragma once
// Experiment 3 drivers (paper Section 4.3): matrix multiplication on five
// hardware settings — full vs truncated (size >= 5000) datasets, with and
// without tolerance (Figs. 8-12).

#include <cstdint>

#include "experiments/exp1_cycles.hpp"  // LearningRun
#include "experiments/linreg_experiment.hpp"

namespace bw::exp {

// ---- Fig. 8: linear-regression distributions ------------------------------

struct Fig8Result {
  LinRegDistribution full;       ///< all 2520 runs
  LinRegDistribution truncated;  ///< size >= 5000 subset
};

Fig8Result run_fig8_matmul_linreg(const MatmulDataset& dataset, std::uint64_t seed = 9201);

// ---- Figs. 9-12: bandit learning curves -----------------------------------

struct MatmulLearningOptions {
  bool subset = false;             ///< true = size >= 5000 (Figs. 10/12)
  core::ToleranceParams tolerance; ///< zero (Figs. 9/10), ts=20 (11), tr=5% (12)
  std::size_t num_simulations = 30;
  std::size_t num_rounds = 100;
  std::uint64_t seed = 9202;
};

/// Runs Algorithm 1 on the size-only feature view (paper: "we focus on
/// training using matrix size as the predictor").
LearningRun run_matmul_learning(const MatmulDataset& dataset,
                                const MatmulLearningOptions& options);

}  // namespace bw::exp
