#pragma once
// Rendering helpers shared by the bench binaries: learning-curve tables,
// ASCII band plots with the full-fit reference line, linear-regression
// distribution summaries, and paper-vs-measured comparison rows.

#include <iosfwd>
#include <string>

#include "core/evaluator.hpp"
#include "experiments/linreg_experiment.hpp"

namespace bw::exp {

struct LearningReportOptions {
  std::string title;
  /// Print a table row every `stride` rounds (plus the final round).
  std::size_t stride = 5;
  bool plot = true;
};

/// Renders per-round RMSE and accuracy (mean ± sd across simulations) next
/// to the full-fit baseline — the content of paper Figs. 4, 7 and 9-12.
std::string render_learning_report(const core::MultiSimResult& result,
                                   const LearningReportOptions& options);

/// Renders a LinRegDistribution like the paper's Figs. 5 / 8 box plots:
/// min / quartiles / max plus a histogram.
std::string render_linreg_report(const LinRegDistribution& dist, const std::string& title);

/// One "paper vs measured" comparison row (values rendered side by side
/// and collected into EXPERIMENTS.md).
std::string compare_row(const std::string& quantity, double paper_value,
                        double measured_value, const std::string& note = "");

/// "paper reports X; shapes should match, absolute numbers will not"
/// preamble shared by every figure bench.
std::string substitution_note();

}  // namespace bw::exp
