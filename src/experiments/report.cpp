#include "experiments/report.hpp"

#include <sstream>

#include "common/ascii_plot.hpp"
#include "common/table.hpp"

namespace bw::exp {

std::string render_learning_report(const core::MultiSimResult& result,
                                   const LearningReportOptions& options) {
  std::ostringstream os;
  if (!options.title.empty()) os << "== " << options.title << " ==\n";
  const std::size_t rounds = result.rmse.rounds();
  if (rounds == 0) {
    os << "(no per-round metrics recorded)\n";
    return os.str();
  }

  bw::Table table({"round", "rmse_mean", "rmse_sd", "acc_mean", "acc_sd", "res_cost"});
  const std::size_t stride = options.stride == 0 ? 1 : options.stride;
  for (std::size_t r = 0; r < rounds; ++r) {
    if (r % stride != 0 && r + 1 != rounds) continue;
    table.add_row_numeric({static_cast<double>(r + 1), result.rmse.mean[r],
                           result.rmse.stddev[r], result.accuracy.mean[r],
                           result.accuracy.stddev[r], result.resource_cost.mean[r]},
                          4);
  }
  os << table.to_string();
  os << "full-fit baseline: rmse=" << bw::format_double(result.full_fit_metrics.rmse, 2)
     << " accuracy=" << bw::format_double(result.full_fit_metrics.accuracy, 4)
     << " (the red line in the paper's figures)\n";

  if (options.plot) {
    bw::PlotOptions rmse_plot;
    rmse_plot.title = "RMSE over time (mean ± sd across simulations; flat line = full fit)";
    rmse_plot.x_label = "round";
    std::vector<bw::Series> series(2);
    series[0] = {"bandit rmse", result.rmse.mean, '*'};
    series[1] = {"full fit", std::vector<double>(rounds, result.full_fit_metrics.rmse), '='};
    os << bw::plot_lines(series, rmse_plot);

    bw::PlotOptions acc_plot;
    acc_plot.title = "Accuracy over time";
    acc_plot.x_label = "round";
    std::vector<bw::Series> acc_series(2);
    acc_series[0] = {"bandit accuracy", result.accuracy.mean, '*'};
    acc_series[1] = {"full fit",
                     std::vector<double>(rounds, result.full_fit_metrics.accuracy), '='};
    os << bw::plot_lines(acc_series, acc_plot);
  }
  return os.str();
}

std::string render_linreg_report(const LinRegDistribution& dist, const std::string& title) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  bw::Table table({"metric", "min", "p25", "median", "p75", "max", "mean", "range"});
  auto add = [&table](const std::string& name, const bw::Summary& s) {
    table.add_row({name, bw::format_double(s.min, 4), bw::format_double(s.p25, 4),
                   bw::format_double(s.median, 4), bw::format_double(s.p75, 4),
                   bw::format_double(s.max, 4), bw::format_double(s.mean, 4),
                   bw::format_double(s.range(), 4)});
  };
  add("rmse", dist.rmse);
  add("r2", dist.r2);
  add("train_s", dist.seconds);
  os << table.to_string();
  bw::PlotOptions hist;
  hist.title = "RMSE distribution across models";
  os << bw::plot_histogram(dist.rmse_values, 10, hist);
  return os.str();
}

std::string compare_row(const std::string& quantity, double paper_value,
                        double measured_value, const std::string& note) {
  std::ostringstream os;
  os << "  " << quantity << ": paper=" << bw::format_double(paper_value, 4)
     << " measured=" << bw::format_double(measured_value, 4);
  if (!note.empty()) os << "  (" << note << ")";
  os << '\n';
  return os.str();
}

std::string substitution_note() {
  return "note: workloads run on simulated substrates (DESIGN.md section 2); compare\n"
         "      shapes and regimes with the paper, not absolute seconds.\n";
}

}  // namespace bw::exp
