#pragma once
// Experiment 1 drivers (paper Section 4.1): Cycles on synthetic hardware.

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "experiments/datasets.hpp"

namespace bw::exp {

/// Shared result shape for every learning-curve figure.
struct LearningRun {
  core::MultiSimResult sims;
  std::size_t num_rounds = 0;
  std::size_t num_simulations = 0;
};

// ---- Fig. 3: linear fit per hardware ------------------------------------

struct Fig3ArmFit {
  std::string hardware;       ///< e.g. "H0 (1, 8)"
  double fitted_slope = 0.0;  ///< LS fit over the dataset
  double fitted_intercept = 0.0;
  double true_slope = 0.0;    ///< generator ground truth
  double true_intercept = 0.0;
  double fit_rmse = 0.0;      ///< residual RMSE of the fit
};

struct Fig3Result {
  std::vector<Fig3ArmFit> arms;
  CyclesDataset dataset;  ///< kept for plotting actual vs predicted points
};

/// Fits makespan ~ num_tasks per hardware on an 80-run dataset and compares
/// against the generator's ground-truth line.
Fig3Result run_fig3_cycles_fit(std::size_t num_groups = 80, std::uint64_t seed = 7001);

// ---- Fig. 4: RMSE / accuracy over 100 rounds ----------------------------

/// Algorithm 1 with the paper's parameters (ε₀=1, α=0.99, ts=20 s) on a
/// large Cycles table; 10 simulations of 100 rounds (paper Fig. 4).
LearningRun run_fig4_cycles_learning(std::size_t num_simulations = 10,
                                     std::size_t num_rounds = 100,
                                     std::size_t dataset_groups = 1316,
                                     std::uint64_t seed = 7101);

}  // namespace bw::exp
