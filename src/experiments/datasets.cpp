#include "experiments/datasets.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dataframe/join.hpp"

namespace bw::exp {

core::RunTable merge_frames_to_table(const std::vector<df::DataFrame>& frames,
                                     const std::string& key,
                                     const std::vector<std::string>& feature_names,
                                     const hw::HardwareCatalog& catalog) {
  BW_CHECK_MSG(frames.size() == catalog.size(),
               "need exactly one frame per hardware arm");
  BW_CHECK_MSG(!frames.empty(), "need at least one frame");

  // "Retrieve Useful Data": key + features + runtime from the first arm,
  // key + runtime from the rest (features are identical across arms for a
  // given run id by construction of the experiment).
  std::vector<std::string> base_columns = {key};
  base_columns.insert(base_columns.end(), feature_names.begin(), feature_names.end());
  base_columns.push_back("runtime");

  df::DataFrame merged = frames[0].select(base_columns);
  // Rename arm 0's runtime so later joins do not clash.
  auto rename_runtime = [&](const df::DataFrame& frame, std::size_t arm) {
    df::DataFrame out;
    for (const auto& name : frame.column_names()) {
      out.add_column(name == "runtime" ? "runtime_" + catalog[arm].name : name,
                     frame.column(name));
    }
    return out;
  };
  merged = rename_runtime(merged, 0);
  for (std::size_t arm = 1; arm < frames.size(); ++arm) {
    df::DataFrame right = rename_runtime(frames[arm].select({key, "runtime"}), arm);
    merged = df::inner_join(merged, right, key);  // the "Merge" box of Fig. 1
  }

  const std::size_t groups = merged.num_rows();
  BW_CHECK_MSG(groups > 0, "merge produced an empty table");

  linalg::Matrix features(groups, feature_names.size());
  for (std::size_t c = 0; c < feature_names.size(); ++c) {
    const df::Column& col = merged.column(feature_names[c]);
    for (std::size_t g = 0; g < groups; ++g) features(g, c) = col.numeric_at(g);
  }
  linalg::Matrix runtimes(groups, catalog.size());
  for (std::size_t arm = 0; arm < catalog.size(); ++arm) {
    const df::Column& col = merged.column("runtime_" + catalog[arm].name);
    for (std::size_t g = 0; g < groups; ++g) runtimes(g, arm) = col.numeric_at(g);
  }
  return core::RunTable(feature_names, std::move(features), std::move(runtimes), catalog);
}

CyclesDataset build_cycles_dataset(std::size_t num_groups, std::uint64_t seed) {
  CyclesDataset dataset;
  dataset.catalog = hw::synthetic_cycles_catalog();
  dataset.config = apps::CyclesConfig{};
  apps::CyclesDatasetOptions options;
  options.num_groups = num_groups;
  options.seed = seed;
  const auto frames = apps::build_cycles_frames(dataset.catalog, dataset.config, options);
  dataset.table = merge_frames_to_table(frames, "run_id", {"num_tasks"}, dataset.catalog);
  return dataset;
}

Bp3dDataset build_bp3d_dataset(std::size_t num_groups, std::uint64_t seed) {
  Bp3dDataset dataset;
  dataset.catalog = hw::ndp_catalog();
  dataset.config = apps::Bp3dConfig{};
  apps::Bp3dDatasetOptions options;
  options.num_groups = num_groups;
  options.seed = seed;
  dataset.frames = apps::build_bp3d_frames(dataset.catalog, dataset.config, options);
  dataset.table = merge_frames_to_table(dataset.frames, "run_id", apps::bp3d_feature_names(),
                                        dataset.catalog);
  return dataset;
}

MatmulDataset build_matmul_dataset(double scale, std::uint64_t seed) {
  BW_CHECK_MSG(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  MatmulDataset dataset;
  dataset.catalog = hw::matmul_catalog();
  dataset.config = apps::MatmulModelConfig{};
  apps::MatmulDatasetOptions options;
  options.small_runs = std::max<std::size_t>(10, static_cast<std::size_t>(1800 * scale));
  options.large_runs = std::max<std::size_t>(10, static_cast<std::size_t>(720 * scale));
  options.seed = seed;
  const auto frames = apps::build_matmul_frames(dataset.catalog, dataset.config, options);
  dataset.table =
      merge_frames_to_table(frames, "run_id", apps::matmul_feature_names(), dataset.catalog);

  dataset.size_only = dataset.table.select_features({"size"});

  std::vector<bool> keep(dataset.table.num_groups());
  const auto split = static_cast<double>(options.split_size);
  for (std::size_t g = 0; g < dataset.table.num_groups(); ++g) {
    keep[g] = dataset.table.features()(g, 0) >= split;  // column 0 = size
  }
  dataset.subset = dataset.table.filter_groups(keep);
  dataset.subset_size_only = dataset.subset.select_features({"size"});
  return dataset;
}

}  // namespace bw::exp
