#include "experiments/exp2_bp3d.hpp"

#include "core/epsilon_greedy.hpp"
#include "experiments/paper_refs.hpp"

namespace bw::exp {

const std::vector<Table1Row>& bp3d_table1_rows() {
  static const std::vector<Table1Row> rows = {
      {"surface_moisture", "surface fuel moisture"},
      {"canopy_moisture", "canopy fuel moisture"},
      {"wind_direction", "direction of surface winds"},
      {"wind_speed", "speed of surface winds"},
      {"sim_time", "maximum simulation steps allowed"},
      {"run_max_mem_rss_bytes", "maximum RSS bytes allowed per run"},
      {"area", "calculated regional surface area"},
  };
  return rows;
}

Fig5Result run_fig5_bp3d_linreg(const Bp3dDataset& dataset, std::uint64_t seed) {
  Fig5Result result;
  LinRegExperimentConfig config;
  config.seed = seed;
  result.all_features = run_linreg_experiment(dataset.table, config);
  config.seed = seed + 1;
  result.area_only = run_linreg_experiment(dataset.table.select_features({"area"}), config);
  return result;
}

Fig6Result run_fig6_bp3d_area_fit(const Bp3dDataset& dataset, std::size_t num_simulations,
                                  std::size_t num_rounds, std::uint64_t seed) {
  const core::RunTable area_table = dataset.table.select_features({"area"});

  Fig6Result result;
  result.areas.resize(area_table.num_groups());
  for (std::size_t g = 0; g < area_table.num_groups(); ++g) {
    result.areas[g] = area_table.features()(g, 0);
  }
  result.actual_runtimes = area_table.runtimes();

  // Baseline: per-arm LS over all samples ("theoretical best possible").
  const core::FullFit baseline = core::fit_full_table(area_table, {});

  // Bandit: average the learned (w, b) across simulations.
  core::EpsilonGreedyConfig policy_config;
  policy_config.initial_epsilon = paper::kInitialEpsilon;
  policy_config.decay = paper::kDecayAlpha;

  std::vector<bw::RunningStats> slope_stats(area_table.num_arms());
  std::vector<bw::RunningStats> intercept_stats(area_table.num_arms());
  Rng seeder(seed);
  for (std::size_t sim = 0; sim < num_simulations; ++sim) {
    core::DecayingEpsilonGreedy policy(area_table.catalog(), 1, policy_config);
    core::ReplayConfig replay_config;
    replay_config.num_rounds = num_rounds;
    replay_config.per_round_metrics = false;  // only the final model matters here
    replay_config.seed = seeder.child_seed(sim);
    core::replay(policy, area_table, replay_config);
    for (std::size_t arm = 0; arm < area_table.num_arms(); ++arm) {
      const auto& model = policy.arm_model(arm).model();
      slope_stats[arm].add(model.weights[0]);
      intercept_stats[arm].add(model.bias);
    }
  }

  for (std::size_t arm = 0; arm < area_table.num_arms(); ++arm) {
    Fig6ArmFit fit;
    const auto& spec = area_table.catalog()[arm];
    fit.hardware = spec.name + " " + spec.to_string();
    fit.bandit_slope = slope_stats[arm].mean();
    fit.bandit_intercept = intercept_stats[arm].mean();
    fit.baseline_slope = baseline.arm_models[arm].weights[0];
    fit.baseline_intercept = baseline.arm_models[arm].bias;
    result.arms.push_back(fit);
  }
  return result;
}

LearningRun run_fig7_bp3d_bandit(const Bp3dDataset& dataset, std::size_t num_simulations,
                                 std::size_t num_rounds, std::uint64_t seed) {
  const core::RunTable& table = dataset.table;

  core::EpsilonGreedyConfig policy_config;
  policy_config.initial_epsilon = paper::kInitialEpsilon;
  policy_config.decay = paper::kDecayAlpha;

  core::ReplayConfig replay_config;
  replay_config.num_rounds = num_rounds;
  replay_config.seed = seed;

  LearningRun run;
  run.num_rounds = num_rounds;
  run.num_simulations = num_simulations;
  run.sims = core::run_simulations(
      [&] {
        return std::make_unique<core::DecayingEpsilonGreedy>(table.catalog(),
                                                             table.num_features(),
                                                             policy_config);
      },
      table, replay_config, num_simulations);
  return run;
}

}  // namespace bw::exp
