#pragma once
// The paper's comparison baseline for Figs. 5 and 8: repeatedly train a
// plain per-arm linear-regression recommender on a small random sample
// (25 run groups) and score it on the full dataset. The distributions of
// RMSE and R² across repetitions show how unstable small-sample offline
// regression is — the motivation for the online bandit.

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "core/run_table.hpp"

namespace bw::exp {

struct LinRegExperimentConfig {
  std::size_t num_models = 100;       ///< paper: 100 models
  std::size_t samples_per_model = 25; ///< paper: 25 data samples
  std::uint64_t seed = 9001;
};

struct LinRegDistribution {
  std::vector<double> rmse_values;  ///< one per trained model
  std::vector<double> r2_values;
  std::vector<double> train_seconds;
  bw::Summary rmse;
  bw::Summary r2;
  bw::Summary seconds;
};

/// Trains config.num_models recommenders, each on samples_per_model groups
/// drawn without replacement, and evaluates RMSE / pooled R² over every
/// row of `table`.
LinRegDistribution run_linreg_experiment(const core::RunTable& table,
                                         const LinRegExperimentConfig& config = {});

}  // namespace bw::exp
