#pragma once
// Reference values quoted in the paper's evaluation (Section 4). The
// benches print these next to measured values; EXPERIMENTS.md records the
// comparison. Absolute scales differ by construction (our substrates are
// simulators — DESIGN.md section 2); the *relationships* are the target.

namespace bw::exp::paper {

// --- Experiment 1 (Cycles, Section 4.1) ---------------------------------
inline constexpr double kCyclesSampleEquivalent = 20;    ///< "same error ... with only 20 samples"
inline constexpr double kCyclesFullDataPoints = 1316;    ///< "as using 1316 data points"
inline constexpr double kCyclesAccuracyToleranceS = 20;  ///< "tolerance of 20 seconds"

// --- Experiment 2 (BP3D, Section 4.2) ------------------------------------
inline constexpr double kBp3dSamples = 1316;
inline constexpr double kBp3dFullFitRmse = 12257.43;
inline constexpr double kBp3dBanditRmseRound25 = 20182.91;
inline constexpr double kBp3dBanditRmseSdRound25 = 12290.82;
inline constexpr double kBp3dBanditRmseRound50 = 16493.81;
inline constexpr double kBp3dBanditRmseSdRound50 = 7078.61;
inline constexpr double kBp3dPctWorseRound25 = 17.90;   ///< % worse than full fit
inline constexpr double kBp3dPctWorseRound50 = 12.55;
inline constexpr double kBp3dFullFitAccuracy = 0.342;   ///< ~ random among 3 arms
inline constexpr int kBp3dNumSimulations = 100;
inline constexpr int kBp3dNumRounds = 50;

// Fig. 5 linear-regression distribution (25-sample models, 100 models).
inline constexpr double kBp3dLinRegRmseMin = 0.5163;  ///< paper's normalized units
inline constexpr double kBp3dLinRegRmseMax = 0.855;
inline constexpr double kBp3dLinRegRmseMean = 0.7256;
inline constexpr double kBp3dLinRegR2Min = 0.0048;
inline constexpr double kBp3dLinRegR2Max = 0.5236;
inline constexpr double kBp3dLinRegR2Mean = 0.1283;

// --- Experiment 3 (matmul, Section 4.3) -----------------------------------
inline constexpr double kMatmulRuns = 2520;
inline constexpr double kMatmulSmallRuns = 1800;   ///< size < 5000
inline constexpr double kMatmulMaxSize = 12500;
inline constexpr double kMatmulFullAccuracy = 0.30;     ///< full dataset, no tolerance
inline constexpr double kMatmulRandomAccuracy = 0.20;   ///< 5 hardware options
inline constexpr double kMatmulSubsetAccuracy = 0.80;   ///< size >= 5000, no tolerance
inline constexpr double kMatmulTolSeconds = 20.0;       ///< Fig. 11
inline constexpr double kMatmulTolRatio = 0.05;         ///< Fig. 12

// Fig. 8 linear-regression distributions.
inline constexpr double kMatmulLinRegRmseMinFull = 5.1989;
inline constexpr double kMatmulLinRegRmseMaxFull = 22.4497;
inline constexpr double kMatmulLinRegRmseMeanFull = 14.9676;
inline constexpr double kMatmulLinRegR2MinFull = 0.709376;
inline constexpr double kMatmulLinRegR2MaxFull = 0.983857;
inline constexpr double kMatmulLinRegR2MeanFull = 0.876601;
inline constexpr double kMatmulLinRegRmseMinTrunc = 5.5481;
inline constexpr double kMatmulLinRegRmseMaxTrunc = 21.2297;
inline constexpr double kMatmulLinRegRmseMeanTrunc = 15.0692;
inline constexpr double kMatmulLinRegR2MinTrunc = 0.75234;
inline constexpr double kMatmulLinRegR2MaxTrunc = 0.974758;
inline constexpr double kMatmulLinRegR2MeanTrunc = 0.882434;

// --- shared algorithm parameters (Section 4 preamble) --------------------
inline constexpr double kDecayAlpha = 0.99;
inline constexpr double kInitialEpsilon = 1.0;

}  // namespace bw::exp::paper
