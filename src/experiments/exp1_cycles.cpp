#include "experiments/exp1_cycles.hpp"

#include "core/epsilon_greedy.hpp"
#include "experiments/paper_refs.hpp"
#include "linalg/lstsq.hpp"

namespace bw::exp {

Fig3Result run_fig3_cycles_fit(std::size_t num_groups, std::uint64_t seed) {
  Fig3Result result;
  result.dataset = build_cycles_dataset(num_groups, seed);
  const core::RunTable& table = result.dataset.table;

  for (std::size_t arm = 0; arm < table.num_arms(); ++arm) {
    linalg::Vector y(table.num_groups());
    std::vector<double> x(table.num_groups());
    for (std::size_t g = 0; g < table.num_groups(); ++g) {
      x[g] = table.features()(g, 0);
      y[g] = table.runtime(g, arm);
    }
    const linalg::FitResult fit = linalg::fit_linear_1d(x, y);

    Fig3ArmFit arm_fit;
    const auto& spec = table.catalog()[arm];
    arm_fit.hardware = spec.name + " " + spec.to_string();
    arm_fit.fitted_slope = fit.model.weights[0];
    arm_fit.fitted_intercept = fit.model.bias;
    arm_fit.fit_rmse = fit.train_rmse;
    // Ground truth from the generator's analytic makespan (two points).
    const double y100 = apps::expected_cycles_makespan(100, spec, result.dataset.config);
    const double y500 = apps::expected_cycles_makespan(500, spec, result.dataset.config);
    arm_fit.true_slope = (y500 - y100) / 400.0;
    arm_fit.true_intercept = y100 - arm_fit.true_slope * 100.0;
    result.arms.push_back(arm_fit);
  }
  return result;
}

LearningRun run_fig4_cycles_learning(std::size_t num_simulations, std::size_t num_rounds,
                                     std::size_t dataset_groups, std::uint64_t seed) {
  const CyclesDataset dataset = build_cycles_dataset(dataset_groups, seed);
  const core::RunTable& table = dataset.table;

  core::EpsilonGreedyConfig policy_config;
  policy_config.initial_epsilon = paper::kInitialEpsilon;
  policy_config.decay = paper::kDecayAlpha;
  policy_config.tolerance.seconds = paper::kCyclesAccuracyToleranceS;

  core::ReplayConfig replay_config;
  replay_config.num_rounds = num_rounds;
  replay_config.accuracy_tolerance.seconds = paper::kCyclesAccuracyToleranceS;
  replay_config.seed = seed + 1;

  LearningRun run;
  run.num_rounds = num_rounds;
  run.num_simulations = num_simulations;
  run.sims = core::run_simulations(
      [&] {
        return std::make_unique<core::DecayingEpsilonGreedy>(table.catalog(),
                                                             table.num_features(),
                                                             policy_config);
      },
      table, replay_config, num_simulations);
  return run;
}

}  // namespace bw::exp
