#pragma once
// Dataset pipelines: workload dataframes -> merged RunTable.
//
// This is paper Fig. 1 end to end: each hardware setting contributes a
// per-hardware run table; "Retrieve Useful Data" selects the feature and
// runtime columns; "Merge" inner-joins them on the run ID; BanditWare
// consumes the merged table.

#include <string>
#include <vector>

#include "apps/bp3d.hpp"
#include "apps/cycles.hpp"
#include "apps/matmul.hpp"
#include "core/run_table.hpp"
#include "dataframe/dataframe.hpp"

namespace bw::exp {

/// Merges one frame per hardware arm into a RunTable. Every frame must
/// contain `key` (shared run id), the feature columns, and a `runtime`
/// column. Groups present in every frame survive (inner join semantics).
core::RunTable merge_frames_to_table(const std::vector<df::DataFrame>& frames,
                                     const std::string& key,
                                     const std::vector<std::string>& feature_names,
                                     const hw::HardwareCatalog& catalog);

// ---- canonical experiment datasets -------------------------------------

struct CyclesDataset {
  core::RunTable table;               ///< features: num_tasks
  apps::CyclesConfig config;          ///< generator configuration used
  hw::HardwareCatalog catalog;
};

/// Experiment 1 dataset on the 4 synthetic hardware settings.
/// `num_groups` = 80 reproduces the paper's collection; the learning-curve
/// figures use a larger table (the paper's red line fits 1316 points).
CyclesDataset build_cycles_dataset(std::size_t num_groups = 80, std::uint64_t seed = 7001);

struct Bp3dDataset {
  core::RunTable table;  ///< features: paper Table 1 (7 columns)
  apps::Bp3dConfig config;
  hw::HardwareCatalog catalog;
  std::vector<df::DataFrame> frames;  ///< per-hardware frames (for Table 1 bench)
};

/// Experiment 2 dataset on NDP hardware H0=(2,16), H1=(3,24), H2=(4,16).
Bp3dDataset build_bp3d_dataset(std::size_t num_groups = 1316, std::uint64_t seed = 7002);

struct MatmulDataset {
  core::RunTable table;        ///< features: size, sparsity, min/max value
  core::RunTable size_only;    ///< single-feature view used by Figs. 9-12
  core::RunTable subset;       ///< size >= 5000, all features
  core::RunTable subset_size_only;
  apps::MatmulModelConfig config;
  hw::HardwareCatalog catalog;
};

/// Experiment 3 dataset (2520 runs, 5 hardware settings). `scale` in (0,1]
/// shrinks the dataset proportionally for tests.
MatmulDataset build_matmul_dataset(double scale = 1.0, std::uint64_t seed = 7003);

}  // namespace bw::exp
