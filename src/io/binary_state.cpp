// Binary snapshot codec: the same models the text formats carry, encoded
// as checksummed packets of raw little-endian doubles (docs/FORMATS.md).
// Save/load is bit-exact (no 17-digit decimal round trip) and an order of
// magnitude faster at production sizes (bench/bench_state_io.cpp gates
// this in CI).
//
// Packet types, `banditware-state` payload (kind 1):
//   0x01 header     config + epsilon + feature names + arm catalog
//   0x02 arm stats  arm index, n, theta[d+1], P[(d+1)^2]  (incremental)
//   0x03 arm rows   arm index, row count, rows of [x..., y] (exact_history)
//   0x04 lambda     forgetting factor λ (f64); written before the header,
//                   only when λ != 1 — λ=1 streams stay byte-identical
//   0x7F end        number of arm packets written
//
// `banditserver-state` payload (kind 2):
//   0x10 header     server config + counters + bandit config + catalog
//   0x11 shard      shard index + nested banditware-state container
//   0x12 base       nested banditware-state container (sync baseline)
//   0x13 lambda     forgetting factor λ (f64); written before the header,
//                   only when λ != 1 (cross-checked against the shard blobs)
//   0x7F end        number of shard + base packets written
//
// Truncation contract: a torn or checksum-failing packet ends the stream
// tolerantly — everything before it is restored (missing arms stay at the
// prior, missing shards restore as fresh replicas) and LoadInfo::truncated
// is set. The missing-end-packet case (a file torn exactly at a packet
// boundary) is caught by the end sentinel. A semantic contradiction inside
// a checksum-valid packet is a hard ParseError: those bytes were written
// that way.

#include <cmath>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "common/error.hpp"
#include "io/codec.hpp"
#include "io/state_access.hpp"

namespace bw::io::detail {
namespace {

using core::ArmIndex;
using core::BanditWare;
using core::PolicyKind;

// Packet types (see the format map above).
constexpr std::uint8_t kBanditHeader = 0x01;
constexpr std::uint8_t kArmStats = 0x02;
constexpr std::uint8_t kArmRows = 0x03;
constexpr std::uint8_t kBanditLambda = 0x04;
constexpr std::uint8_t kServerHeader = 0x10;
constexpr std::uint8_t kShard = 0x11;
constexpr std::uint8_t kBase = 0x12;
constexpr std::uint8_t kServerLambda = 0x13;
constexpr std::uint8_t kEnd = 0x7F;

// The same hardening caps the text readers enforce: hostile counts must
// fail cleanly (ParseError), never drive an allocation into bad_alloc.
constexpr std::size_t kMaxFeatures = 512;
constexpr std::size_t kMaxArms = 4096;
constexpr std::size_t kMaxShards = 4096;
constexpr std::uint64_t kMaxObservationsPerArm = 100'000'000;

[[noreturn]] void fail(const std::string& what) {
  throw ParseError("BanditWare::load_state: " + what);
}

[[noreturn]] void fail_server(const std::string& what) {
  throw ParseError("BanditServer::load_state: " + what);
}

void put_spec(std::string& out, const hw::HardwareSpec& spec) {
  put_string(out, spec.name);
  put_i32(out, spec.cpus);
  put_f64(out, spec.memory_gb);
  put_i32(out, spec.gpus);
}

hw::HardwareSpec get_spec(PayloadReader& reader) {
  hw::HardwareSpec spec;
  spec.name = reader.get_string();
  spec.cpus = reader.get_i32();
  spec.memory_gb = reader.get_f64();
  spec.gpus = reader.get_i32();
  return spec;
}

/// The BanditWareConfig scalars both header packets share. The fit options
/// and resource weights are construction parameters, not learned state —
/// they are not serialized, matching the text formats.
void put_bandit_config(std::string& out, const core::BanditWareConfig& config,
                       bool effective_exact_history) {
  put_u8(out, static_cast<std::uint8_t>(config.policy_kind));
  put_f64(out, config.alpha);
  put_f64(out, config.posterior_scale);
  put_f64(out, config.policy.initial_epsilon);
  put_f64(out, config.policy.decay);
  put_f64(out, config.policy.tolerance.ratio);
  put_f64(out, config.policy.tolerance.seconds);
  put_u8(out, effective_exact_history ? 1 : 0);
}

core::BanditWareConfig get_bandit_config(PayloadReader& reader,
                                         void (*raise)(const std::string&)) {
  core::BanditWareConfig config;
  const std::uint8_t kind = reader.get_u8();
  if (kind > static_cast<std::uint8_t>(PolicyKind::kThompson)) {
    raise("unknown policy kind");
  }
  config.policy_kind = static_cast<PolicyKind>(kind);
  config.alpha = reader.get_f64();
  config.posterior_scale = reader.get_f64();
  config.policy.initial_epsilon = reader.get_f64();
  config.policy.decay = reader.get_f64();
  config.policy.tolerance.ratio = reader.get_f64();
  config.policy.tolerance.seconds = reader.get_f64();
  config.policy.exact_history = reader.get_u8() != 0;
  // Scalar ranges validated here, like the text reader: a corrupted
  // snapshot surfaces as ParseError, never a constructor's InvalidArgument.
  if (config.policy_kind == PolicyKind::kLinUcb &&
      (!std::isfinite(config.alpha) || config.alpha < 0.0)) {
    raise("alpha out of range");
  }
  if (config.policy_kind == PolicyKind::kThompson &&
      (!std::isfinite(config.posterior_scale) || config.posterior_scale <= 0.0)) {
    raise("posterior_scale out of range");
  }
  return config;
}

void put_names(std::string& out, const std::vector<std::string>& names) {
  put_u32(out, static_cast<std::uint32_t>(names.size()));
  for (const auto& name : names) put_string(out, name);
}

std::vector<std::string> get_feature_names(PayloadReader& reader,
                                           void (*raise)(const std::string&)) {
  const std::uint32_t count = reader.get_u32();
  if (count == 0) raise("expected features");
  if (count > kMaxFeatures) raise("feature count exceeds limit");
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) names.push_back(reader.get_string());
  return names;
}

void put_catalog(std::string& out, const hw::HardwareCatalog& catalog) {
  put_u32(out, static_cast<std::uint32_t>(catalog.size()));
  for (const auto& spec : catalog.specs()) put_spec(out, spec);
}

/// Reads a lambda extension packet's payload. Written before the header,
/// only when λ != 1, so legacy readers skip it and λ=1 streams never grow.
double get_lambda(PayloadReader& payload, void (*raise)(const std::string&)) {
  const double lambda = payload.get_f64();
  payload.expect_done("lambda");
  if (!std::isfinite(lambda) || lambda <= 0.0 || lambda > 1.0) {
    raise("lambda out of range");
  }
  return lambda;
}

hw::HardwareCatalog get_catalog(PayloadReader& reader,
                                void (*raise)(const std::string&)) {
  const std::uint32_t count = reader.get_u32();
  if (count == 0) raise("expected arms");
  if (count > kMaxArms) raise("arm count exceeds limit");
  hw::HardwareCatalog catalog;
  std::unordered_set<std::string> seen;
  for (std::uint32_t i = 0; i < count; ++i) {
    hw::HardwareSpec spec = get_spec(reader);
    if (!seen.insert(spec.name).second) raise("duplicate arm name: " + spec.name);
    catalog.add(std::move(spec));
  }
  return catalog;
}

void write_bandit_packets(std::ostream& os, const BanditWare& bandit) {
  const core::BanditWareConfig& config = bandit.config();
  const core::BankedPolicy& policy = StateAccess::banked(bandit);
  const bool effective_exact_history = policy.arm_model(0).exact_history();

  write_container_magic(os, PayloadKind::kBanditWareState);

  std::string payload;
  if (config.policy.fit.forgetting != 1.0) {
    put_f64(payload, config.policy.fit.forgetting);
    write_packet(os, kBanditLambda, payload);
    payload.clear();
  }
  put_bandit_config(payload, config, effective_exact_history);
  // Like the text writer, the epsilon line is live state for ε-greedy and
  // the schedule origin for the other kinds.
  put_f64(payload, config.policy_kind == PolicyKind::kEpsilonGreedy
                       ? bandit.epsilon()
                       : config.policy.initial_epsilon);
  put_names(payload, bandit.feature_names());
  put_catalog(payload, bandit.catalog());
  write_packet(os, kBanditHeader, payload);

  for (ArmIndex arm = 0; arm < bandit.num_arms(); ++arm) {
    const core::LinearArmModel& model = policy.arm_model(arm);
    payload.clear();
    put_u32(payload, static_cast<std::uint32_t>(arm));
    if (model.exact_history()) {
      put_u64(payload, model.count());
      for (std::size_t i = 0; i < model.count(); ++i) {
        const core::FeatureVector& x = model.observed_features()[i];
        put_f64_array(payload, x.data(), x.size());
        put_f64(payload, model.observed_runtimes()[i]);
      }
      write_packet(os, kArmRows, payload);
    } else {
      const auto& rls = model.rls();
      put_u64(payload, model.count());
      put_f64_array(payload, rls.theta().data(), rls.theta().size());
      put_f64_array(payload, rls.precision_inverse().data().data(),
                    rls.precision_inverse().data().size());
      write_packet(os, kArmStats, payload);
    }
  }

  payload.clear();
  put_u64(payload, bandit.num_arms());
  write_packet(os, kEnd, payload);
}

}  // namespace

std::string bandit_state_binary(const BanditWare& bandit) {
  std::ostringstream os(std::ios::binary);
  write_bandit_packets(os, bandit);
  return os.str();
}

core::BanditWare load_bandit_binary(std::istream& is, LoadInfo* info) {
  PacketReader reader(is, PayloadKind::kBanditWareState);

  std::optional<BanditWare> bandit;
  double epsilon = 1.0;
  double lambda = 1.0;
  std::size_t dim = 0;
  std::vector<bool> arm_seen;
  std::uint64_t arm_packets = 0;
  bool saw_end = false;
  // Scratch reused across arm packets (every arm has the same shape).
  linalg::Vector theta;
  linalg::Matrix p;

  Packet packet;
  while (!saw_end && reader.next(packet)) {
    PayloadReader payload(packet.payload);
    switch (packet.type) {
      case kBanditLambda: {
        if (bandit.has_value()) fail("lambda packet after header");
        if (lambda != 1.0) fail("duplicate lambda packet");
        lambda = get_lambda(payload, &fail);
        break;
      }
      case kBanditHeader: {
        if (bandit.has_value()) fail("duplicate header packet");
        core::BanditWareConfig config = get_bandit_config(payload, &fail);
        config.policy.fit.forgetting = lambda;
        if (lambda != 1.0 && config.policy.exact_history) {
          fail("lambda requires the incremental backend (exact_history set)");
        }
        epsilon = payload.get_f64();
        std::vector<std::string> feature_names = get_feature_names(payload, &fail);
        hw::HardwareCatalog catalog = get_catalog(payload, &fail);
        payload.expect_done("header");
        dim = feature_names.size();
        arm_seen.assign(catalog.size(), false);
        try {
          bandit.emplace(std::move(catalog), std::move(feature_names), config);
        } catch (const InvalidArgument& error) {
          fail(error.what());
        }
        break;
      }
      case kArmStats:
      case kArmRows: {
        if (!bandit.has_value()) fail("arm packet before header");
        const std::uint32_t arm = payload.get_u32();
        if (arm >= arm_seen.size()) fail("arm packet names unknown arm");
        if (arm_seen[arm]) fail("duplicate arm packet");
        const bool exact = packet.type == kArmRows;
        if (exact != bandit->config().policy.exact_history) {
          fail("arm record kind contradicts exact_history flag");
        }
        const std::uint64_t n = payload.get_u64();
        if (n > kMaxObservationsPerArm) fail("obs count exceeds limit");
        if (exact) {
          // Size check up front: the allocation below must be bounded by
          // the (checksummed) bytes actually present in the packet.
          const std::size_t row_bytes = (dim + 1) * sizeof(double);
          if (payload.remaining() != n * row_bytes) fail("truncated observation");
          core::FeatureVector x(dim);
          for (std::uint64_t i = 0; i < n; ++i) {
            payload.get_f64_array(x.data(), dim);
            const double y = payload.get_f64();
            StateAccess::banked(*bandit).observe(arm, x, y);
          }
        } else {
          const std::size_t dim_aug = dim + 1;
          if (payload.remaining() != (dim_aug + dim_aug * dim_aug) * sizeof(double)) {
            fail("truncated sufficient statistics");
          }
          if (theta.size() != dim_aug) {
            theta.resize(dim_aug);
            p = linalg::Matrix(dim_aug, dim_aug);
          }
          payload.get_f64_array(theta.data(), dim_aug);
          payload.get_f64_array(p.data().data(), dim_aug * dim_aug);
          StateAccess::banked(*bandit).arm_model(arm).restore_stats(
              p, theta, static_cast<std::size_t>(n));
        }
        payload.expect_done("arm");
        arm_seen[arm] = true;
        ++arm_packets;
        break;
      }
      case kEnd: {
        if (!bandit.has_value()) fail("end packet before header");
        const std::uint64_t count = payload.get_u64();
        payload.expect_done("end");
        if (count != arm_packets) fail("end packet count mismatch");
        saw_end = true;
        break;
      }
      default:
        // Unknown packet types are skipped: a newer writer may append
        // packet kinds this reader predates.
        break;
    }
  }

  if (!bandit.has_value()) fail("truncated before header packet");
  if (auto* eps = StateAccess::eps_greedy(*bandit)) eps->set_epsilon(epsilon);
  if (info != nullptr) {
    info->format = Format::kBinary;
    info->version = kMagic[7];
    info->truncated = reader.truncated() || !saw_end;
  }
  return std::move(*bandit);
}

void save_server_binary(std::ostream& os, const serve::BanditServer& server) {
  // Same consistent cut as the text writer: fuse lock + every shard lock,
  // shared, across the whole serialization.
  const StateAccess::ServerReadLock lock = StateAccess::lock_snapshot(server);

  const serve::BanditServerConfig& config = server.config();
  const std::size_t num_shards = StateAccess::num_shards(server);

  write_container_magic(os, PayloadKind::kBanditServerState);

  std::string payload;
  if (config.bandit.policy.fit.forgetting != 1.0) {
    put_f64(payload, config.bandit.policy.fit.forgetting);
    write_packet(os, kServerLambda, payload);
    payload.clear();
  }
  put_u32(payload, static_cast<std::uint32_t>(num_shards));
  put_u8(payload, static_cast<std::uint8_t>(config.sharding));
  put_u64(payload, config.seed);
  put_u32(payload, static_cast<std::uint32_t>(config.num_threads));
  put_u8(payload, config.explore ? 1 : 0);
  put_u64(payload, config.sync_every);
  put_u8(payload, static_cast<std::uint8_t>(config.sync_mode));
  put_u64(payload, StateAccess::observe_batches(server));
  put_u64(payload, StateAccess::rr_counter(server));
  // The full bandit config + catalog ride in the header so a truncated
  // snapshot (torn shard packets) can still restore the engine shape with
  // fresh replicas where blobs are missing.
  put_bandit_config(payload, config.bandit, config.bandit.policy.exact_history);
  put_names(payload, server.feature_names());
  put_catalog(payload, StateAccess::shard_bandit(server, 0).catalog());
  write_packet(os, kServerHeader, payload);

  for (std::size_t s = 0; s < num_shards; ++s) {
    payload.clear();
    put_u32(payload, static_cast<std::uint32_t>(s));
    payload += bandit_state_binary(StateAccess::shard_bandit(server, s));
    write_packet(os, kShard, payload);
  }
  payload.clear();
  payload += bandit_state_binary(StateAccess::sync_base(server));
  write_packet(os, kBase, payload);

  payload.clear();
  put_u64(payload, num_shards + 1);
  write_packet(os, kEnd, payload);
}

serve::BanditServer load_server_binary(std::istream& is, LoadInfo* info) {
  PacketReader reader(is, PayloadKind::kBanditServerState);

  serve::BanditServerConfig config;
  std::uint64_t rr_counter = 0;
  std::uint64_t observe_batches = 0;
  std::vector<std::string> feature_names;
  hw::HardwareCatalog catalog;
  bool saw_header = false;
  bool saw_end = false;
  double header_lambda = 1.0;
  std::size_t num_shards = 0;
  std::vector<std::optional<BanditWare>> slots;
  std::unique_ptr<BanditWare> base;
  std::uint64_t blob_packets = 0;

  // A nested blob is itself a full banditware-state container; it sits
  // inside a checksum-valid packet, so any truncation inside it is a
  // writer-side defect, not a torn file — a hard error.
  auto load_blob = [](PayloadReader& payload, const char* what) -> BanditWare {
    std::istringstream blob(payload.rest(), std::ios::binary);
    LoadInfo nested;
    BanditWare loaded = load_bandit_binary(blob, &nested);
    if (nested.truncated) fail_server(std::string("truncated ") + what + " blob");
    return loaded;
  };

  Packet packet;
  while (!saw_end && reader.next(packet)) {
    PayloadReader payload(packet.payload);
    switch (packet.type) {
      case kServerLambda: {
        if (saw_header) fail_server("lambda packet after header");
        if (header_lambda != 1.0) fail_server("duplicate lambda packet");
        header_lambda = get_lambda(payload, &fail_server);
        break;
      }
      case kServerHeader: {
        if (saw_header) fail_server("duplicate header packet");
        num_shards = payload.get_u32();
        if (num_shards == 0) fail_server("expected shards");
        if (num_shards > kMaxShards) fail_server("shard count exceeds limit");
        const std::uint8_t sharding = payload.get_u8();
        if (sharding > static_cast<std::uint8_t>(serve::ShardingPolicy::kRoundRobin)) {
          fail_server("unknown sharding policy");
        }
        config.sharding = static_cast<serve::ShardingPolicy>(sharding);
        config.seed = payload.get_u64();
        config.num_threads = payload.get_u32();
        if (config.num_threads > kMaxShards) fail_server("thread count exceeds limit");
        config.explore = payload.get_u8() != 0;
        config.sync_every = payload.get_u64();
        const std::uint8_t sync_mode = payload.get_u8();
        if (sync_mode > static_cast<std::uint8_t>(serve::SyncMode::kAsync)) {
          fail_server("unknown sync mode");
        }
        config.sync_mode = static_cast<serve::SyncMode>(sync_mode);
        observe_batches = payload.get_u64();
        rr_counter = payload.get_u64();
        config.bandit = get_bandit_config(payload, &fail_server);
        config.bandit.policy.fit.forgetting = header_lambda;
        if (header_lambda != 1.0 && config.bandit.policy.exact_history) {
          fail_server("lambda requires the incremental backend (exact_history set)");
        }
        feature_names = get_feature_names(payload, &fail_server);
        catalog = get_catalog(payload, &fail_server);
        payload.expect_done("header");
        slots.resize(num_shards);
        saw_header = true;
        break;
      }
      case kShard: {
        if (!saw_header) fail_server("shard packet before header");
        const std::uint32_t index = payload.get_u32();
        if (index >= num_shards) fail_server("shard packet names unknown shard");
        if (slots[index].has_value()) fail_server("duplicate shard packet");
        BanditWare replica = load_blob(payload, "shard");
        if (replica.config().policy_kind != config.bandit.policy_kind) {
          fail_server("shard policy '" + core::to_string(replica.config().policy_kind) +
                      "' contradicts the header policy '" +
                      core::to_string(config.bandit.policy_kind) + "'");
        }
        if (replica.feature_names() != feature_names) {
          fail_server("shard feature names contradict the header");
        }
        if (replica.catalog().specs() != catalog.specs()) {
          fail_server("shard catalog contradicts the header");
        }
        if (replica.config().policy.fit.forgetting != header_lambda) {
          fail_server("shard lambda contradicts the header lambda");
        }
        // The per-shard config is authoritative, mirroring the text loader
        // (every replica is constructed identically).
        config.bandit = replica.config();
        slots[index] = std::move(replica);
        ++blob_packets;
        break;
      }
      case kBase: {
        if (!saw_header) fail_server("base packet before header");
        if (base != nullptr) fail_server("duplicate base packet");
        base = std::make_unique<BanditWare>(load_blob(payload, "base"));
        if (base->config().policy_kind != config.bandit.policy_kind) {
          fail_server("base policy '" + core::to_string(base->config().policy_kind) +
                      "' contradicts the header policy '" +
                      core::to_string(config.bandit.policy_kind) + "'");
        }
        if (base->config().policy.fit.forgetting != header_lambda) {
          fail_server("base lambda contradicts the header lambda");
        }
        ++blob_packets;
        break;
      }
      case kEnd: {
        if (!saw_header) fail_server("end packet before header");
        const std::uint64_t count = payload.get_u64();
        payload.expect_done("end");
        if (count != blob_packets) fail_server("end packet count mismatch");
        saw_end = true;
        break;
      }
      default:
        break;  // forward compatibility: unknown packet types are skipped
    }
  }

  if (!saw_header) fail_server("truncated before header packet");

  // Missing shard blobs (torn snapshot) restore as fresh replicas: the
  // engine keeps its shape and every arm it did not lose.
  std::vector<BanditWare> replicas;
  replicas.reserve(num_shards);
  for (auto& slot : slots) {
    if (slot.has_value()) {
      replicas.push_back(std::move(*slot));
    } else {
      replicas.emplace_back(catalog, feature_names, config.bandit);
    }
  }

  if (info != nullptr) {
    info->format = Format::kBinary;
    info->version = kMagic[7];
    info->truncated = reader.truncated() || !saw_end;
  }
  return StateAccess::make_server(config, std::move(replicas), std::move(base),
                                  rr_counter, observe_batches);
}

}  // namespace bw::io::detail
