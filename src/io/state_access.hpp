#pragma once
// Internal to src/io/: the one friend the core/serve classes grant so the
// codecs can live outside them. Serialization needs three things the public
// API deliberately hides — the mutable policy bank (to restore stats and
// replay histories), the server's consistent-cut locking, and the server's
// restore constructor. Keeping them behind this single struct means the
// classes stay sealed to everyone else and the codecs stay out of core.

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/banditware.hpp"
#include "serve/bandit_server.hpp"

namespace bw::io {

struct StateAccess {
  // ---- BanditWare ------------------------------------------------------
  static core::BankedPolicy& banked(core::BanditWare& bandit) {
    return bandit.banked();
  }
  static const core::BankedPolicy& banked(const core::BanditWare& bandit) {
    return bandit.banked();
  }
  static core::DecayingEpsilonGreedy* eps_greedy(core::BanditWare& bandit) {
    return bandit.eps_greedy();
  }

  // ---- BanditServer ----------------------------------------------------
  /// Consistent-cut read lock for snapshotting: the fuse lock plus every
  /// shard lock, shared — an async publish (which holds the fuse lock
  /// exclusive across all its swaps) can never be half-visible. Lock order
  /// is fuse lock then shard index ascending, matching every other
  /// multi-lock path in the server.
  struct ServerReadLock {
    std::shared_lock<std::shared_mutex> fuse;
    std::vector<std::shared_lock<std::shared_mutex>> shards;
  };
  static ServerReadLock lock_snapshot(const serve::BanditServer& server) {
    ServerReadLock lock;
    lock.fuse = std::shared_lock(server.fuse_mutex_);
    lock.shards.reserve(server.shards_.size());
    for (const auto& shard : server.shards_) lock.shards.emplace_back(shard->mutex);
    return lock;
  }

  static std::size_t num_shards(const serve::BanditServer& server) {
    return server.shards_.size();
  }
  static const core::BanditWare& shard_bandit(const serve::BanditServer& server,
                                              std::size_t shard) {
    return server.shards_[shard]->bandit;
  }
  static const core::BanditWare& sync_base(const serve::BanditServer& server) {
    return *server.sync_base_;
  }
  static std::uint64_t rr_counter(const serve::BanditServer& server) {
    return server.rr_counter_.load(std::memory_order_relaxed);
  }
  static std::uint64_t observe_batches(const serve::BanditServer& server) {
    return server.observe_batches_.load(std::memory_order_relaxed);
  }

  /// The restore path: builds a server around pre-loaded replicas (and an
  /// optional sync baseline) and reinstates the routing/cadence counters.
  static serve::BanditServer make_server(serve::BanditServerConfig config,
                                         std::vector<core::BanditWare> replicas,
                                         std::unique_ptr<core::BanditWare> base,
                                         std::uint64_t rr_counter,
                                         std::uint64_t observe_batches) {
    serve::BanditServer server(std::move(config), std::move(replicas), std::move(base));
    server.rr_counter_.store(rr_counter, std::memory_order_relaxed);
    server.observe_batches_.store(observe_batches, std::memory_order_relaxed);
    return server;
  }
};

}  // namespace bw::io
