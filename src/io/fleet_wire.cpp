#include "io/fleet_wire.hpp"

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "io/container.hpp"

namespace bw::io {
namespace {

// Packet types — kind 4 (fleet delta). 0x4x for kind 5 (fleet node); the
// origin-block layout is shared between the two kinds.
constexpr std::uint8_t kPacketDeltaHeader = 0x30;
constexpr std::uint8_t kPacketOriginBlock = 0x31;
constexpr std::uint8_t kPacketVersionVector = 0x32;
constexpr std::uint8_t kPacketNodeHeader = 0x40;
constexpr std::uint8_t kPacketServerBlob = 0x41;
constexpr std::uint8_t kPacketNodeOriginBlock = 0x42;
constexpr std::uint8_t kPacketEnd = 0x7F;
constexpr std::uint8_t kWireVersion = 1;

// Same hardening ceilings as the snapshot readers (binary_state.cpp).
constexpr std::size_t kMaxFeatures = 512;
constexpr std::size_t kMaxArms = 4096;
constexpr std::uint64_t kMaxObservationsPerArm = 100'000'000;

[[noreturn]] void fail(const std::string& what) {
  throw ParseError("fleet wire: " + what);
}

void put_wire_config(std::string& payload, const FleetWireConfig& config) {
  put_u8(payload, static_cast<std::uint8_t>(config.policy));
  put_f64(payload, config.alpha);
  put_f64(payload, config.posterior_scale);
  put_f64(payload, config.initial_epsilon);
  put_f64(payload, config.decay);
  put_f64(payload, config.lambda);
  put_f64(payload, config.ridge);
  put_u32(payload, config.num_features);
  put_u32(payload, config.num_arms);
}

FleetWireConfig get_wire_config(PayloadReader& payload) {
  FleetWireConfig config;
  const std::uint8_t policy = payload.get_u8();
  switch (policy) {
    case static_cast<std::uint8_t>(core::PolicyKind::kEpsilonGreedy):
    case static_cast<std::uint8_t>(core::PolicyKind::kLinUcb):
    case static_cast<std::uint8_t>(core::PolicyKind::kThompson):
      config.policy = static_cast<core::PolicyKind>(policy);
      break;
    default:
      fail("unknown policy token " + std::to_string(policy));
  }
  config.alpha = payload.get_f64();
  config.posterior_scale = payload.get_f64();
  config.initial_epsilon = payload.get_f64();
  config.decay = payload.get_f64();
  config.lambda = payload.get_f64();
  config.ridge = payload.get_f64();
  if (!std::isfinite(config.alpha) || !std::isfinite(config.posterior_scale) ||
      !std::isfinite(config.initial_epsilon) || !std::isfinite(config.decay) ||
      !std::isfinite(config.ridge)) {
    fail("non-finite config scalar");
  }
  if (!(config.lambda > 0.0) || config.lambda > 1.0) {
    fail("forgetting factor out of (0, 1]");
  }
  config.num_features = payload.get_u32();
  config.num_arms = payload.get_u32();
  if (config.num_features > kMaxFeatures) fail("feature count exceeds limit");
  if (config.num_arms == 0 || config.num_arms > kMaxArms) {
    fail("arm count out of range");
  }
  return config;
}

void put_origin_block(std::string& payload, const FleetOriginBlock& block) {
  put_u32(payload, block.origin.node);
  put_u32(payload, block.origin.incarnation);
  put_u32(payload, static_cast<std::uint32_t>(block.arms.size()));
  for (const FleetArmEntry& entry : block.arms) {
    put_u32(payload, entry.arm);
    put_u64(payload, entry.stats.n);
    put_f64_array(payload, entry.stats.theta.data(), entry.stats.theta.size());
    put_f64_array(payload, entry.stats.p.data().data(), entry.stats.p.data().size());
  }
}

/// Parses one origin block. The per-entry size is fixed by the header's
/// feature count, so the whole payload is size-checked before any of it is
/// decoded — a hostile entry count fails here, not in an allocator.
FleetOriginBlock get_origin_block(PayloadReader& payload,
                                  const FleetWireConfig& config) {
  FleetOriginBlock block;
  block.origin.node = payload.get_u32();
  block.origin.incarnation = payload.get_u32();
  const std::uint32_t count = payload.get_u32();
  if (count > config.num_arms) fail("origin block entry count exceeds arm count");
  const std::size_t dim_aug = static_cast<std::size_t>(config.num_features) + 1;
  const std::size_t entry_bytes =
      sizeof(std::uint32_t) + sizeof(std::uint64_t) +
      (dim_aug + dim_aug * dim_aug) * sizeof(double);
  if (payload.remaining() != count * entry_bytes) {
    fail("origin block size mismatch");
  }
  std::set<std::uint32_t> seen;
  block.arms.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    FleetArmEntry entry;
    entry.arm = payload.get_u32();
    if (entry.arm >= config.num_arms) fail("origin block names unknown arm");
    if (!seen.insert(entry.arm).second) fail("duplicate arm in origin block");
    const std::uint64_t n = payload.get_u64();
    if (n == 0) fail("origin block entry carries no observations");
    if (n > kMaxObservationsPerArm) fail("obs count exceeds limit");
    entry.stats.n = static_cast<std::size_t>(n);
    entry.stats.theta.resize(dim_aug);
    payload.get_f64_array(entry.stats.theta.data(), dim_aug);
    entry.stats.p = linalg::Matrix(dim_aug, dim_aug);
    payload.get_f64_array(entry.stats.p.data().data(), dim_aug * dim_aug);
    for (double v : entry.stats.theta) {
      if (!std::isfinite(v)) fail("non-finite statistic");
    }
    for (double v : entry.stats.p.data()) {
      if (!std::isfinite(v)) fail("non-finite statistic");
    }
    block.arms.push_back(std::move(entry));
  }
  payload.expect_done("origin block");
  return block;
}

/// Duplicate-origin guard shared by both readers: a well-formed writer
/// emits at most one block per origin, so a repeat is corruption (or a
/// stitched message), not tolerable reordering.
struct OriginSeen {
  std::set<std::pair<std::uint32_t, std::uint32_t>> keys;
  void check(const FleetOriginKey& origin) {
    if (!keys.insert({origin.node, origin.incarnation}).second) {
      fail("duplicate origin block");
    }
    if (keys.size() > kMaxFleetOrigins) fail("origin count exceeds limit");
  }
};

}  // namespace

std::string save_fleet_delta(const FleetDelta& delta) {
  std::ostringstream os(std::ios::binary);
  write_container_magic(os, PayloadKind::kFleetDelta);

  std::string payload;
  put_u8(payload, kWireVersion);
  put_u32(payload, delta.sender);
  put_u32(payload, delta.sender_incarnation);
  put_wire_config(payload, delta.config);
  write_packet(os, kPacketDeltaHeader, payload);

  for (const FleetOriginBlock& block : delta.origins) {
    payload.clear();
    put_origin_block(payload, block);
    write_packet(os, kPacketOriginBlock, payload);
  }

  payload.clear();
  put_u32(payload, static_cast<std::uint32_t>(delta.version_vector.size()));
  for (const FleetVvEntry& entry : delta.version_vector) {
    put_u32(payload, entry.origin.node);
    put_u32(payload, entry.origin.incarnation);
    BW_CHECK_MSG(entry.per_arm_n.size() == delta.config.num_arms,
                 "fleet wire: version vector entry arity mismatch");
    for (std::uint64_t n : entry.per_arm_n) put_u64(payload, n);
  }
  write_packet(os, kPacketVersionVector, payload);

  payload.clear();
  put_u64(payload, delta.origins.size());
  write_packet(os, kPacketEnd, payload);
  return os.str();
}

FleetDelta load_fleet_delta(const std::string& bytes, bool* truncated) {
  std::istringstream is(bytes, std::ios::binary);
  PacketReader reader(is, PayloadKind::kFleetDelta);

  FleetDelta delta;
  bool have_header = false;
  bool have_vv = false;
  bool clean_end = false;
  OriginSeen seen;
  Packet packet;
  while (reader.next(packet)) {
    if (clean_end) fail("data after end packet");
    PayloadReader payload(packet.payload);
    switch (packet.type) {
      case kPacketDeltaHeader: {
        if (have_header) fail("duplicate header");
        if (payload.get_u8() != kWireVersion) fail("unknown wire version");
        delta.sender = payload.get_u32();
        delta.sender_incarnation = payload.get_u32();
        delta.config = get_wire_config(payload);
        payload.expect_done("delta header");
        have_header = true;
        break;
      }
      case kPacketOriginBlock: {
        if (!have_header) fail("origin block before header");
        FleetOriginBlock block = get_origin_block(payload, delta.config);
        seen.check(block.origin);
        delta.origins.push_back(std::move(block));
        break;
      }
      case kPacketVersionVector: {
        if (!have_header) fail("version vector before header");
        if (have_vv) fail("duplicate version vector");
        const std::uint32_t count = payload.get_u32();
        if (count > kMaxFleetOrigins) fail("origin count exceeds limit");
        const std::size_t entry_bytes =
            2 * sizeof(std::uint32_t) +
            static_cast<std::size_t>(delta.config.num_arms) * sizeof(std::uint64_t);
        if (payload.remaining() != count * entry_bytes) {
          fail("version vector size mismatch");
        }
        std::set<std::pair<std::uint32_t, std::uint32_t>> vv_seen;
        delta.version_vector.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          FleetVvEntry entry;
          entry.origin.node = payload.get_u32();
          entry.origin.incarnation = payload.get_u32();
          if (!vv_seen.insert({entry.origin.node, entry.origin.incarnation}).second) {
            fail("duplicate origin in version vector");
          }
          entry.per_arm_n.resize(delta.config.num_arms);
          for (std::uint64_t& n : entry.per_arm_n) {
            n = payload.get_u64();
            if (n > kMaxObservationsPerArm) fail("obs count exceeds limit");
          }
          delta.version_vector.push_back(std::move(entry));
        }
        payload.expect_done("version vector");
        have_vv = true;
        break;
      }
      case kPacketEnd: {
        if (!have_header) fail("end packet before header");
        if (payload.get_u64() != delta.origins.size()) {
          fail("origin block count mismatch");
        }
        payload.expect_done("end packet");
        clean_end = true;
        break;
      }
      default:
        break;  // unknown packet type: skip (forward compatibility)
    }
  }
  if (!have_header) fail("missing header");
  if (truncated != nullptr) *truncated = reader.truncated() || !clean_end;
  return delta;
}

std::string save_fleet_node(const FleetNodeState& state) {
  std::ostringstream os(std::ios::binary);
  write_container_magic(os, PayloadKind::kFleetNode);

  std::string payload;
  put_u8(payload, kWireVersion);
  put_u32(payload, state.node);
  put_u32(payload, state.incarnation);
  put_wire_config(payload, state.config);
  write_packet(os, kPacketNodeHeader, payload);

  write_packet(os, kPacketServerBlob, state.server_blob);

  for (const FleetOriginBlock& block : state.origins) {
    payload.clear();
    put_origin_block(payload, block);
    write_packet(os, kPacketNodeOriginBlock, payload);
  }

  payload.clear();
  put_u64(payload, state.origins.size() + 1);  // origin blocks + server blob
  write_packet(os, kPacketEnd, payload);
  return os.str();
}

FleetNodeState load_fleet_node(const std::string& bytes, bool* truncated) {
  std::istringstream is(bytes, std::ios::binary);
  PacketReader reader(is, PayloadKind::kFleetNode);

  FleetNodeState state;
  bool have_header = false;
  bool have_blob = false;
  bool clean_end = false;
  OriginSeen seen;
  Packet packet;
  while (reader.next(packet)) {
    if (clean_end) fail("data after end packet");
    PayloadReader payload(packet.payload);
    switch (packet.type) {
      case kPacketNodeHeader: {
        if (have_header) fail("duplicate header");
        if (payload.get_u8() != kWireVersion) fail("unknown wire version");
        state.node = payload.get_u32();
        state.incarnation = payload.get_u32();
        state.config = get_wire_config(payload);
        payload.expect_done("node header");
        have_header = true;
        break;
      }
      case kPacketServerBlob: {
        if (!have_header) fail("server blob before header");
        if (have_blob) fail("duplicate server blob");
        state.server_blob = payload.rest();
        have_blob = true;
        break;
      }
      case kPacketNodeOriginBlock: {
        if (!have_header) fail("origin block before header");
        FleetOriginBlock block = get_origin_block(payload, state.config);
        seen.check(block.origin);
        state.origins.push_back(std::move(block));
        break;
      }
      case kPacketEnd: {
        if (!have_header) fail("end packet before header");
        if (payload.get_u64() != state.origins.size() + (have_blob ? 1u : 0u)) {
          fail("packet count mismatch");
        }
        payload.expect_done("end packet");
        clean_end = true;
        break;
      }
      default:
        break;  // unknown packet type: skip (forward compatibility)
    }
  }
  // The engine blob is mandatory: origins alone cannot restart a node
  // (shard count, seeds, and cadence live in the server state).
  if (!have_header || !have_blob) fail("missing header or server blob");
  if (truncated != nullptr) *truncated = reader.truncated() || !clean_end;
  return state;
}

}  // namespace bw::io
