#pragma once
// Packet-framed binary container — the substrate of every `banditware`
// binary on-disk format (state snapshots and run tables; bcsv-inspired).
//
// Layout (all integers little-endian, doubles as IEEE-754 LE bit patterns):
//
//   magic    8 bytes  B7 'B' 'W' 0D 0A 1A 0A <container-version>
//   kind     1 byte   payload kind (state / server-state / run-table)
//   packets  *        until end of stream
//
// Packet frame (12 bytes) followed by the payload:
//
//   u32 payload_size   bytes that follow the frame
//   u32 crc32          CRC-32 (IEEE 802.3) of the payload bytes
//   u8  type           packet type (per payload kind)
//   u8[3] reserved     zero
//
// The PNG-style magic catches CRLF mangling and text-mode transfers. The
// per-packet checksum is what makes a torn write survivable: a reader in
// tolerant mode consumes packets until the first incomplete or
// checksum-failing one and keeps everything before it — a truncated file
// loads up to the last complete packet. Semantic errors inside a packet
// that *passed* its checksum (bad counts, out-of-range indices) are never
// tolerated: the bytes were written that way, so the file is malformed and
// the reader throws ParseError.
//
// Hostile inputs are bounded everywhere: payload sizes are capped and read
// in chunks, so a corrupted length field can only ever allocate what the
// stream actually provides (plus one chunk) — never a bad_alloc.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bw::io {

/// First byte distinguishes binary containers from the text formats (which
/// all start with "bandit"); the \r\n\x1a\n run catches newline mangling.
inline constexpr unsigned char kMagic[8] = {0xB7, 'B', 'W', '\r', '\n', 0x1A, '\n', 1};

/// What a container stream carries (byte 9 of the file).
enum class PayloadKind : std::uint8_t {
  kBanditWareState = 1,
  kBanditServerState = 2,
  kRunTable = 3,
  kFleetDelta = 4,  ///< gossip message: per-origin sufficient-stat entries
  kFleetNode = 5,   ///< fleet node snapshot: server blob + origin store
};

/// Hard ceiling on one packet's payload. Real packets are far smaller (the
/// largest is a whole shard blob); anything bigger is a corrupted length.
inline constexpr std::uint32_t kMaxPacketPayload = 64u << 20;  // 64 MiB

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the classic
/// zlib/PNG checksum, table-driven, no dependencies.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

// ---- little-endian scalar encoding --------------------------------------

void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_i32(std::string& out, std::int32_t v);
void put_f64(std::string& out, double v);
/// u16 length prefix + raw bytes; throws InvalidArgument beyond 65535.
void put_string(std::string& out, const std::string& s);
/// Bulk doubles: one memcpy on little-endian hosts.
void put_f64_array(std::string& out, const double* values, std::size_t count);

/// Sequential reader over one packet's payload. Every get_* checks bounds
/// and throws ParseError("truncated packet payload") on overrun, so a
/// checksum-valid but short payload can never read out of bounds.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload) : payload_(payload) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int32_t get_i32();
  double get_f64();
  std::string get_string();
  void get_f64_array(double* values, std::size_t count);
  /// Consumes and returns every remaining byte (nested-blob payloads).
  std::string rest();

  std::size_t remaining() const { return payload_.size() - pos_; }
  bool done() const { return pos_ == payload_.size(); }
  /// Throws ParseError unless the whole payload was consumed — a size
  /// mismatch means the writer and reader disagree about the layout.
  void expect_done(const char* what) const;

 private:
  void need(std::size_t bytes) const;
  const std::string& payload_;
  std::size_t pos_ = 0;
};

// ---- packet-level writer / reader ---------------------------------------

/// Writes the container preamble (magic + kind byte).
void write_container_magic(std::ostream& os, PayloadKind kind);

/// Frames `payload` as one packet (size + crc32 + type) and writes it.
void write_packet(std::ostream& os, std::uint8_t type, const std::string& payload);

struct Packet {
  std::uint8_t type = 0;
  std::string payload;
};

/// Pulls packets off a container stream. Construction validates the magic
/// and kind byte (ParseError on mismatch). next() returns false at a clean
/// end of stream OR at the first incomplete / checksum-failing packet —
/// `truncated()` distinguishes the two, so callers implement "load up to
/// the last complete packet" by draining next() and checking truncated().
class PacketReader {
 public:
  PacketReader(std::istream& is, PayloadKind expected_kind);

  /// Reads the next complete, checksum-valid packet. False = end of data.
  bool next(Packet& packet);

  /// True once next() stopped on a torn/corrupted packet instead of a
  /// clean end of stream.
  bool truncated() const { return truncated_; }

 private:
  std::istream& is_;
  bool truncated_ = false;
  bool done_ = false;
};

/// Reads the 9 magic+kind bytes if (and only if) they identify a binary
/// container, without consuming anything otherwise. Returns the kind, or
/// nothing when the stream holds something else (e.g. a text snapshot).
/// The stream must support seeking (all state/table streams do).
bool peek_container(std::istream& is, PayloadKind& kind);

}  // namespace bw::io
