// The plain-text snapshot codecs — `banditware-state v1..v4` and
// `banditserver-state v1..v5` — moved here from core/banditware.cpp and
// serve/bandit_server.cpp so that no version-specific parser lives outside
// src/io/. The writers are byte-for-byte the historical writers (the
// golden fixtures in tests/data/ pin this); the readers keep the exact
// validation order and error messages, with one deliberate change: shard
// blob reads are bounded by chunked reads instead of rdbuf()->in_avail(),
// because in_avail() only sees the buffered portion of a file stream and
// the codec now reads from arbitrary istreams, not just istringstreams.

#include <cmath>
#include <iomanip>
#include <sstream>
#include <unordered_set>

#include "common/error.hpp"
#include "io/codec.hpp"
#include "io/state_access.hpp"

namespace bw::io::detail {
namespace {

using core::ArmIndex;
using core::BanditWare;
using core::FeatureVector;
using core::PolicyKind;

[[noreturn]] void fail(const std::string& what) {
  throw ParseError("BanditWare::load_state: " + what);
}

/// Arms are bounded by what a serialized catalog can sanely hold; a
/// mis-parsed (negative / overflowed) count must not turn into a
/// multi-gigabyte replay allocation.
constexpr long long kMaxObservationsPerArm = 100'000'000;

/// Header counts are bounded the same way: a corrupted "features N" or
/// "arms N" line must fail cleanly, not drive a resize() into bad_alloc
/// (each feature later sizes a (d+1)x(d+1) matrix per arm). Real catalogs
/// hold a handful of arms over a handful of features; these caps are
/// orders of magnitude above any sane snapshot.
constexpr std::size_t kMaxFeatures = 512;
constexpr std::size_t kMaxArms = 4096;
constexpr std::size_t kMaxShards = 4096;

/// Reads a per-arm observation count defensively: the stream extracts a
/// signed value so "-3" is caught as negative instead of wrapping to a
/// huge unsigned count, and overflow sets failbit.
std::size_t read_obs_count(std::istream& is) {
  long long obs = 0;
  is >> obs;
  if (!is) fail("malformed obs count");
  if (obs < 0) fail("negative obs count");
  if (obs > kMaxObservationsPerArm) fail("obs count exceeds limit");
  return static_cast<std::size_t>(obs);
}

void check_unique_arm_name(std::unordered_set<std::string>& seen,
                           const std::string& name) {
  if (!seen.insert(name).second) fail("duplicate arm name: " + name);
}

struct SnapshotHeader {
  core::BanditWareConfig config;
  double epsilon = 1.0;
  std::vector<std::string> feature_names;
  std::size_t num_arms = 0;
};

/// Parses the config / epsilon / features / arms preamble shared by v1, v2,
/// and v3 (v2+ additionally carries the exact_history flag on the config
/// line; the v3 policy line is read by the caller before this preamble).
SnapshotHeader read_header(std::istream& is, int version) {
  SnapshotHeader header;
  std::string token;
  is >> token;
  if (token != "epsilon0") fail("expected epsilon0");
  is >> header.config.policy.initial_epsilon;
  is >> token >> header.config.policy.decay;
  is >> token >> header.config.policy.tolerance.ratio;
  is >> token >> header.config.policy.tolerance.seconds;
  if (version >= 2) {
    int exact = 0;
    is >> token >> exact;
    if (token != "exact_history") fail("expected exact_history");
    header.config.policy.exact_history = exact != 0;
  }
  is >> token;
  if (token != "epsilon") fail("expected epsilon");
  is >> header.epsilon;

  std::size_t num_features = 0;
  is >> token >> num_features;
  // Check the stream BEFORE acting on the count: an overflowed extraction
  // leaves a garbage value that must not reach resize().
  if (!is || token != "features" || num_features == 0) fail("expected features");
  if (num_features > kMaxFeatures) fail("feature count exceeds limit");
  header.feature_names.resize(num_features);
  for (auto& name : header.feature_names) is >> name;

  is >> token >> header.num_arms;
  if (!is || token != "arms" || header.num_arms == 0) fail("expected arms");
  if (header.num_arms > kMaxArms) fail("arm count exceeds limit");
  return header;
}

BanditWare load_bandit_text_v1(std::istream& is) {
  // Legacy format: raw observation rows per arm, rebuilt by replaying every
  // observation through the policy. With the incremental backend the replay
  // is O(n d^2) total (it was O(n^2 d^2) when each observe refit the batch).
  const SnapshotHeader header = read_header(is, 1);
  std::string token;

  struct ArmData {
    std::vector<FeatureVector> xs;
    std::vector<double> ys;
  };
  std::vector<ArmData> arms(header.num_arms);
  hw::HardwareCatalog catalog;
  std::unordered_set<std::string> seen_names;
  for (auto& arm : arms) {
    hw::HardwareSpec spec;
    is >> token;
    if (token != "arm") fail("expected arm record");
    is >> spec.name >> spec.cpus >> spec.memory_gb >> token;
    if (token != "obs") fail("expected obs count");
    const std::size_t obs = read_obs_count(is);
    if (!is) fail("truncated arm header");
    check_unique_arm_name(seen_names, spec.name);
    catalog.add(spec);
    for (std::size_t i = 0; i < obs; ++i) {
      FeatureVector x(header.feature_names.size());
      double y = 0.0;
      for (double& v : x) is >> v;
      is >> y;
      if (!is) fail("truncated observation");
      arm.xs.push_back(std::move(x));
      arm.ys.push_back(y);
    }
  }

  BanditWare restored(std::move(catalog), header.feature_names, header.config);
  for (ArmIndex arm = 0; arm < restored.num_arms(); ++arm) {
    for (std::size_t i = 0; i < arms[arm].xs.size(); ++i) {
      StateAccess::banked(restored).observe(arm, arms[arm].xs[i], arms[arm].ys[i]);
    }
  }
  // observe() decayed ε during the replay above; the snapshot value is
  // authoritative (the original run may have interleaved other decays).
  StateAccess::eps_greedy(restored)->set_epsilon(header.epsilon);
  return restored;
}

BanditWare load_bandit_text_v2(std::istream& is, int version) {
  std::string token;
  PolicyKind kind = PolicyKind::kEpsilonGreedy;
  double alpha = 1.0;
  double posterior_scale = 1.0;
  double lambda = 1.0;  // v1-v3 predate the discount: legacy loads as λ=1
  if (version >= 4) {
    is >> token >> lambda;
    if (!is || token != "lambda") fail("expected lambda");
    if (!std::isfinite(lambda) || lambda <= 0.0 || lambda > 1.0) {
      fail("lambda out of range");
    }
  }
  if (version >= 3) {
    is >> token;
    if (!is || token != "policy") fail("expected policy");
    std::string kind_name;
    is >> kind_name;
    if (!is) fail("truncated policy line");
    try {
      kind = core::parse_policy_kind(kind_name);
    } catch (const InvalidArgument& error) {
      fail(error.what());
    }
    // Scalar ranges are validated here, not left to the policy
    // constructors: a corrupted snapshot must surface as the documented
    // ParseError, never as the constructors' InvalidArgument.
    if (kind == PolicyKind::kLinUcb) {
      is >> token >> alpha;
      if (!is || token != "alpha") fail("expected alpha");
      if (!std::isfinite(alpha) || alpha < 0.0) fail("alpha out of range");
    } else if (kind == PolicyKind::kThompson) {
      is >> token >> posterior_scale;
      if (!is || token != "posterior_scale") fail("expected posterior_scale");
      if (!std::isfinite(posterior_scale) || posterior_scale <= 0.0) {
        fail("posterior_scale out of range");
      }
    }
  }
  SnapshotHeader header = read_header(is, version);
  header.config.policy_kind = kind;
  header.config.alpha = alpha;
  header.config.posterior_scale = posterior_scale;
  header.config.policy.fit.forgetting = lambda;
  // The discount has no batch-QR counterpart; a snapshot claiming both is
  // corrupt (the writer can never produce it).
  if (lambda != 1.0 && header.config.policy.exact_history) {
    fail("lambda requires the incremental backend (exact_history set)");
  }
  const std::size_t dim = header.feature_names.size();
  const std::size_t dim_aug = dim + 1;

  struct ArmState {
    bool exact = false;
    std::size_t n = 0;
    linalg::Vector theta;           // stats record
    linalg::Matrix p;               // stats record
    std::vector<FeatureVector> xs;  // obs record
    std::vector<double> ys;
  };
  std::vector<ArmState> arms(header.num_arms);
  hw::HardwareCatalog catalog;
  std::unordered_set<std::string> seen_names;
  for (auto& arm : arms) {
    hw::HardwareSpec spec;
    is >> token;
    if (token != "arm") fail("expected arm record");
    is >> spec.name >> spec.cpus >> spec.memory_gb >> spec.gpus >> token;
    if (token != "obs" && token != "stats") fail("expected obs or stats count");
    arm.exact = token == "obs";
    if (arm.exact != header.config.policy.exact_history) {
      fail("arm record kind contradicts exact_history flag");
    }
    arm.n = read_obs_count(is);
    if (!is) fail("truncated arm header");
    check_unique_arm_name(seen_names, spec.name);
    catalog.add(spec);
    if (arm.exact) {
      for (std::size_t i = 0; i < arm.n; ++i) {
        FeatureVector x(dim);
        double y = 0.0;
        for (double& v : x) is >> v;
        is >> y;
        if (!is) fail("truncated observation");
        arm.xs.push_back(std::move(x));
        arm.ys.push_back(y);
      }
    } else {
      is >> token;
      if (token != "theta") fail("expected theta");
      arm.theta.resize(dim_aug);
      for (double& v : arm.theta) is >> v;
      arm.p = linalg::Matrix(dim_aug, dim_aug);
      for (std::size_t r = 0; r < dim_aug; ++r) {
        is >> token;
        if (token != "P") fail("expected P row");
        for (std::size_t c = 0; c < dim_aug; ++c) is >> arm.p(r, c);
      }
      if (!is) fail("truncated sufficient statistics");
    }
  }
  is >> token;
  if (token != "end") fail("truncated state (missing end trailer)");

  BanditWare restored(std::move(catalog), header.feature_names, header.config);
  for (ArmIndex arm = 0; arm < restored.num_arms(); ++arm) {
    ArmState& state = arms[arm];
    if (state.exact) {
      for (std::size_t i = 0; i < state.xs.size(); ++i) {
        StateAccess::banked(restored).observe(arm, state.xs[i], state.ys[i]);
      }
    } else {
      StateAccess::banked(restored).arm_model(arm).restore_stats(state.p, state.theta,
                                                                 state.n);
    }
  }
  if (auto* eps = StateAccess::eps_greedy(restored)) eps->set_epsilon(header.epsilon);
  return restored;
}

}  // namespace

std::string bandit_state_text(const BanditWare& bandit) {
  // Sufficient statistics per arm. Incremental arms serialize (theta, P, n)
  // — O(arms * d^2) regardless of history length — while exact_history arms
  // still carry their raw observation rows (the batch backend *is* its
  // history). ε-greedy instances write the pre-policy-axis v2 format
  // byte-for-byte (existing snapshots and golden fixtures stay stable);
  // LinUCB/Thompson write v3, which only adds the `policy` line below.
  // The serialized flag is the arms' *effective* backend (every arm shares
  // it): a fit with intercept=false forces the batch backend even when
  // exact_history was not requested, and the reader checks record kinds
  // against this flag.
  const core::BanditWareConfig& config = bandit.config();
  const hw::HardwareCatalog& catalog = bandit.catalog();
  const core::BankedPolicy& policy = StateAccess::banked(bandit);
  const bool eps_kind = config.policy_kind == PolicyKind::kEpsilonGreedy;
  const bool effective_exact_history = policy.arm_model(0).exact_history();
  // λ < 1 writes the v4 superset (a `lambda` line, then an always-present
  // `policy` line — ε-greedy included, so v4 has one body shape). λ = 1
  // keeps writing v2/v3 byte-for-byte: the discount is the only thing the
  // new version carries, and stationary snapshots must not drift.
  const double lambda = config.policy.fit.forgetting;
  const bool discounted = lambda != 1.0;
  std::ostringstream os;
  os << std::setprecision(17);
  os << (discounted ? "banditware-state v4\n"
                    : (eps_kind ? "banditware-state v2\n" : "banditware-state v3\n"));
  if (discounted) os << "lambda " << lambda << "\n";
  if (!eps_kind || discounted) {
    os << "policy " << core::to_string(config.policy_kind);
    if (config.policy_kind == PolicyKind::kLinUcb) {
      os << " alpha " << config.alpha;
    } else if (config.policy_kind == PolicyKind::kThompson) {
      os << " posterior_scale " << config.posterior_scale;
    }
    os << "\n";
  }
  // Non-ε policies carry no decaying exploration rate; the schedule fields
  // round-trip the config so the shared header stays one format.
  const double epsilon_line =
      eps_kind ? bandit.epsilon() : config.policy.initial_epsilon;
  os << "epsilon0 " << config.policy.initial_epsilon << " decay " << config.policy.decay
     << " tol_ratio " << config.policy.tolerance.ratio << " tol_seconds "
     << config.policy.tolerance.seconds << " exact_history "
     << (effective_exact_history ? 1 : 0) << "\n";
  os << "epsilon " << epsilon_line << "\n";
  os << "features " << bandit.feature_names().size();
  for (const auto& name : bandit.feature_names()) os << ' ' << name;
  os << "\n";
  os << "arms " << catalog.size() << "\n";
  for (ArmIndex arm = 0; arm < catalog.size(); ++arm) {
    const auto& spec = catalog[arm];
    const auto& model = policy.arm_model(arm);
    os << "arm " << spec.name << ' ' << spec.cpus << ' ' << spec.memory_gb << ' '
       << spec.gpus;
    if (model.exact_history()) {
      os << " obs " << model.count() << "\n";
      for (std::size_t i = 0; i < model.count(); ++i) {
        for (double v : model.observed_features()[i]) os << v << ' ';
        os << model.observed_runtimes()[i] << "\n";
      }
    } else {
      const auto& rls = model.rls();
      os << " stats " << model.count() << "\n";
      os << "theta";
      for (double v : rls.theta()) os << ' ' << v;
      os << "\n";
      const auto& p = rls.precision_inverse();
      for (std::size_t r = 0; r < p.rows(); ++r) {
        os << "P";
        for (std::size_t c = 0; c < p.cols(); ++c) os << ' ' << p(r, c);
        os << "\n";
      }
    }
  }
  // Explicit trailer: a truncated numeric tail would still parse as a
  // (wrong) shorter number, so the reader verifies this sentinel instead.
  os << "end\n";
  return os.str();
}

core::BanditWare load_bandit_text(std::istream& is, int version) {
  if (version == 1) return load_bandit_text_v1(is);
  if (version >= 2 && version <= 4) return load_bandit_text_v2(is, version);
  fail("bad header");
}

std::string server_state_text(const serve::BanditServer& server) {
  // Consistent cut: the fuse lock plus every shard lock, shared, held while
  // the text is assembled (see StateAccess::lock_snapshot).
  const StateAccess::ServerReadLock lock = StateAccess::lock_snapshot(server);

  // ε-greedy engines write the pre-policy-axis v3 format byte-for-byte
  // (existing snapshots and golden fixtures stay stable); LinUCB/Thompson
  // engines write v4, which only adds the `policy` token below. The policy
  // scalars (alpha / posterior scale) ride inside the shard blobs — the
  // header token is the cross-check the loader verifies against them.
  const serve::BanditServerConfig& config = server.config();
  const std::size_t num_shards = StateAccess::num_shards(server);
  const bool eps_kind = config.bandit.policy_kind == PolicyKind::kEpsilonGreedy;
  // λ < 1 writes the v5 superset (a `lambda` header token, and the `policy`
  // token becomes always-present so v5 has one header shape); λ = 1 keeps
  // writing v3/v4 byte-for-byte. The shard blobs carry λ themselves (v4
  // bandit format) — the header token is the cross-check the loader
  // verifies against them, like the policy token.
  const double lambda = config.bandit.policy.fit.forgetting;
  const bool discounted = lambda != 1.0;
  std::ostringstream os;
  os << (discounted ? "banditserver-state v5\n"
                    : (eps_kind ? "banditserver-state v3\n" : "banditserver-state v4\n"));
  os << "shards " << num_shards << " sharding " << to_string(config.sharding)
     << " seed " << config.seed << " threads " << config.num_threads << " explore "
     << (config.explore ? 1 : 0) << " sync_every " << config.sync_every
     << " sync_mode " << to_string(config.sync_mode);
  if (discounted) os << std::setprecision(17) << " lambda " << lambda;
  if (!eps_kind || discounted) {
    os << " policy " << core::to_string(config.bandit.policy_kind);
  }
  os << " observe_batches " << StateAccess::observe_batches(server) << " rr_counter "
     << StateAccess::rr_counter(server) << "\n";
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::string state = bandit_state_text(StateAccess::shard_bandit(server, s));
    os << "shard " << s << " bytes " << state.size() << "\n" << state;
  }
  // The sync baseline rides along so a restored server keeps merging
  // exactly (the shared fuse lock serializes against baseline swaps).
  const std::string base_state = bandit_state_text(StateAccess::sync_base(server));
  os << "base bytes " << base_state.size() << "\n" << base_state;
  return os.str();
}

serve::BanditServer load_server_text(std::istream& is, int version) {
  std::string line;
  auto fail = [](const std::string& what) -> void {
    throw ParseError("BanditServer::load_state: " + what);
  };

  serve::BanditServerConfig config;
  std::size_t num_shards = 0;
  std::string token;
  std::string sharding_name;
  int explore = 1;
  std::uint64_t rr_counter = 0;
  std::uint64_t observe_batches = 0;
  is >> token >> num_shards;
  // Stream state is checked BEFORE the count is used: an overflowed
  // extraction must not turn into a huge replica allocation.
  if (!is || token != "shards" || num_shards == 0) fail("expected shards");
  if (num_shards > kMaxShards) fail("shard count exceeds limit");
  is >> token >> sharding_name;
  if (!is || token != "sharding") fail("expected sharding");
  config.sharding = serve::parse_sharding_policy(sharding_name);
  is >> token >> config.seed;
  if (!is || token != "seed") fail("expected seed");
  is >> token >> config.num_threads;
  if (!is || token != "threads") fail("expected threads");
  // Same cap as shards: a corrupted count (e.g. "-7" wrapping to ~1.8e19)
  // must fail cleanly here, not inside ThreadPool's worker reserve.
  if (config.num_threads > kMaxShards) fail("thread count exceeds limit");
  is >> token >> explore;
  if (!is || token != "explore") fail("expected explore");
  config.explore = explore != 0;
  double header_lambda = 1.0;  // v1-v4 predate the discount: legacy λ=1
  if (version >= 2) {
    is >> token >> config.sync_every;
    if (!is || token != "sync_every") fail("expected sync_every");
    if (version >= 3) {
      // v2 predates SyncMode; restored v2 servers default to inline.
      std::string mode_name;
      is >> token >> mode_name;
      if (!is || token != "sync_mode") fail("expected sync_mode");
      config.sync_mode = serve::parse_sync_mode(mode_name);
    }
    if (version >= 5) {
      is >> token >> header_lambda;
      if (!is || token != "lambda") fail("expected lambda");
      if (!std::isfinite(header_lambda) || header_lambda <= 0.0 ||
          header_lambda > 1.0) {
        fail("lambda out of range");
      }
      config.bandit.policy.fit.forgetting = header_lambda;
    }
    if (version >= 4) {
      // v1-v3 predate the policy axis; they always restore as ε-greedy
      // (the shard blobs carry no policy line either). The v4 token is
      // verified against the blob configs after the replicas load.
      std::string policy_name;
      is >> token >> policy_name;
      if (!is || token != "policy") fail("expected policy");
      try {
        config.bandit.policy_kind = core::parse_policy_kind(policy_name);
      } catch (const InvalidArgument& error) {
        fail(error.what());
      }
    }
    // The auto-sync cadence phase: without it a restored server with
    // sync_every > 1 would sync on different batches than the original.
    is >> token >> observe_batches;
    if (!is || token != "observe_batches") fail("expected observe_batches");
  }
  is >> token >> rr_counter;
  if (!is || token != "rr_counter") fail("expected rr_counter");
  if (!std::getline(is, line)) fail("truncated header");

  auto read_blob = [&](const char* what) -> std::string {
    std::size_t bytes = 0;
    is >> token >> bytes;
    if (!is || token != "bytes") fail(std::string("expected ") + what + " byte count");
    if (!std::getline(is, line)) fail(std::string("truncated ") + what + " header");
    // Read in chunks so the allocation is bounded by the bytes the stream
    // actually provides — a corrupted byte count must fail cleanly, not
    // bad_alloc. (in_avail() cannot bound this: it only sees the buffered
    // portion of a file stream.)
    std::string blob;
    constexpr std::size_t kChunk = 1u << 16;
    while (blob.size() < bytes) {
      const std::size_t want = std::min(kChunk, bytes - blob.size());
      const std::size_t old = blob.size();
      blob.resize(old + want);
      is.read(blob.data() + old, static_cast<std::streamsize>(want));
      if (static_cast<std::size_t>(is.gcount()) != want) {
        fail(std::string("truncated ") + what + " blob");
      }
    }
    return blob;
  };

  std::vector<core::BanditWare> replicas;
  replicas.reserve(num_shards);
  // The header's policy kind (ε-greedy implicitly for v1-v3) must agree
  // with what the shard blobs actually carry — a mismatch means the
  // snapshot was stitched together, not written by save_state().
  const PolicyKind header_kind = config.bandit.policy_kind;
  for (std::size_t s = 0; s < num_shards; ++s) {
    std::size_t index = 0;
    is >> token >> index;
    if (!is || token != "shard" || index != s) fail("expected shard record");
    replicas.push_back(BanditWare::load_state(read_blob("shard")));
    // The per-shard config is authoritative for the whole engine (every
    // replica is constructed identically).
    config.bandit = replicas.back().config();
    if (config.bandit.policy_kind != header_kind) {
      fail("shard policy '" + core::to_string(config.bandit.policy_kind) +
           "' contradicts the header policy '" + core::to_string(header_kind) + "'");
    }
    if (config.bandit.policy.fit.forgetting != header_lambda) {
      fail("shard lambda contradicts the header lambda");
    }
  }

  // v1 snapshots predate cross-shard sync; their baseline is the prior
  // (reconstructed by the constructor when no base is passed).
  std::unique_ptr<core::BanditWare> base;
  if (version >= 2) {
    is >> token;
    if (!is || token != "base") fail("expected base record");
    base = std::make_unique<core::BanditWare>(BanditWare::load_state(read_blob("base")));
    if (base->config().policy_kind != header_kind) {
      fail("base policy '" + core::to_string(base->config().policy_kind) +
           "' contradicts the header policy '" + core::to_string(header_kind) + "'");
    }
    if (base->config().policy.fit.forgetting != header_lambda) {
      fail("base lambda contradicts the header lambda");
    }
  }

  return StateAccess::make_server(config, std::move(replicas), std::move(base),
                                  rr_counter, observe_batches);
}

}  // namespace bw::io::detail
