#include "io/run_table_io.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"

namespace bw::io {
namespace {

constexpr std::uint8_t kTableHeader = 0x20;
constexpr std::uint8_t kRowBlock = 0x21;
constexpr std::uint8_t kEnd = 0x7F;

/// Rows per block: large enough to amortize packet framing, small enough
/// that a torn tail loses little (a block of 4096 x 12 doubles is ~400 KB).
constexpr std::uint32_t kRowsPerBlock = 4096;

// Same hardening caps as the state codecs.
constexpr std::size_t kMaxFeatures = 512;
constexpr std::size_t kMaxArms = 4096;

[[noreturn]] void fail(const std::string& what) {
  throw ParseError("read_run_table: " + what);
}

void decode_f64_array(const char* src, double* dst, std::size_t count) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(dst, src, count * sizeof(double));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t bits = 0;
      for (int b = 7; b >= 0; --b) {
        bits = bits << 8 | static_cast<unsigned char>(src[i * 8 + b]);
      }
      dst[i] = std::bit_cast<double>(bits);
    }
  }
}

}  // namespace

RunTableWriter::RunTableWriter(std::ostream& os, std::vector<std::string> feature_names,
                               hw::HardwareCatalog catalog)
    : os_(os), num_features_(feature_names.size()), num_arms_(catalog.size()) {
  BW_CHECK_MSG(num_features_ >= 1, "RunTableWriter needs at least one feature");
  BW_CHECK_MSG(num_arms_ >= 1, "RunTableWriter needs at least one arm");
  write_container_magic(os_, PayloadKind::kRunTable);
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(num_features_));
  for (const auto& name : feature_names) put_string(payload, name);
  put_u32(payload, static_cast<std::uint32_t>(num_arms_));
  for (const auto& spec : catalog.specs()) {
    put_string(payload, spec.name);
    put_i32(payload, spec.cpus);
    put_f64(payload, spec.memory_gb);
    put_i32(payload, spec.gpus);
  }
  write_packet(os_, kTableHeader, payload);
}

void RunTableWriter::append(std::span<const double> features,
                            std::span<const double> runtimes) {
  BW_CHECK_MSG(!finished_, "RunTableWriter: append() after finish()");
  BW_CHECK_MSG(features.size() == num_features_,
               "RunTableWriter: feature count mismatch");
  BW_CHECK_MSG(runtimes.size() == num_arms_, "RunTableWriter: runtime count mismatch");
  put_f64_array(block_, features.data(), features.size());
  put_f64_array(block_, runtimes.data(), runtimes.size());
  ++block_rows_;
  ++total_rows_;
  if (block_rows_ == kRowsPerBlock) flush_block();
}

void RunTableWriter::flush_block() {
  if (block_rows_ == 0) return;
  std::string payload;
  put_u32(payload, block_rows_);
  payload += block_;
  write_packet(os_, kRowBlock, payload);
  block_.clear();
  block_rows_ = 0;
}

void RunTableWriter::finish() {
  BW_CHECK_MSG(!finished_, "RunTableWriter: finish() called twice");
  flush_block();
  std::string payload;
  put_u64(payload, total_rows_);
  write_packet(os_, kEnd, payload);
  finished_ = true;
}

RunTableReader::RunTableReader(std::istream& is)
    : reader_(is, PayloadKind::kRunTable) {
  Packet packet;
  if (!reader_.next(packet)) fail("truncated before header packet");
  if (packet.type != kTableHeader) fail("expected table header packet");
  PayloadReader payload(packet.payload);
  const std::uint32_t num_features = payload.get_u32();
  if (num_features == 0) fail("expected features");
  if (num_features > kMaxFeatures) fail("feature count exceeds limit");
  feature_names_.reserve(num_features);
  for (std::uint32_t i = 0; i < num_features; ++i) {
    feature_names_.push_back(payload.get_string());
  }
  const std::uint32_t num_arms = payload.get_u32();
  if (num_arms == 0) fail("expected arms");
  if (num_arms > kMaxArms) fail("arm count exceeds limit");
  std::unordered_set<std::string> seen;
  for (std::uint32_t i = 0; i < num_arms; ++i) {
    hw::HardwareSpec spec;
    spec.name = payload.get_string();
    spec.cpus = payload.get_i32();
    spec.memory_gb = payload.get_f64();
    spec.gpus = payload.get_i32();
    if (!seen.insert(spec.name).second) fail("duplicate arm name: " + spec.name);
    catalog_.add(std::move(spec));
  }
  payload.expect_done("header");
}

bool RunTableReader::next_block() {
  Packet packet;
  while (reader_.next(packet)) {
    if (packet.type == kRowBlock) {
      PayloadReader payload(packet.payload);
      const std::uint32_t rows = payload.get_u32();
      const std::size_t row_bytes =
          (num_features() + num_arms()) * sizeof(double);
      if (rows == 0) fail("empty row block");
      // The declared count must exactly match the (checksummed) bytes —
      // decoding is then pure pointer arithmetic over the block.
      if (payload.remaining() != rows * row_bytes) fail("row block size mismatch");
      block_ = std::move(packet.payload);
      block_pos_ = 4;  // past the row count
      block_rows_left_ = rows;
      return true;
    }
    if (packet.type == kEnd) {
      PayloadReader payload(packet.payload);
      const std::uint64_t total = payload.get_u64();
      payload.expect_done("end");
      if (total != rows_read_) fail("end packet row count mismatch");
      saw_end_ = true;
      return false;
    }
    // Unknown packet types are skipped (forward compatibility).
  }
  truncated_ = reader_.truncated();
  return false;
}

bool RunTableReader::next_row(std::vector<double>& features,
                              std::vector<double>& runtimes) {
  if (done_) return false;
  if (block_rows_left_ == 0 && !next_block()) {
    done_ = true;
    return false;
  }
  features.resize(num_features());
  runtimes.resize(num_arms());
  // Direct decode at the stored offset: the block's byte count was
  // verified against its row count in next_block(), so this never reads
  // past the buffer.
  const char* base = block_.data() + block_pos_;
  decode_f64_array(base, features.data(), features.size());
  decode_f64_array(base + features.size() * sizeof(double), runtimes.data(),
                   runtimes.size());
  block_pos_ += (num_features() + num_arms()) * sizeof(double);
  --block_rows_left_;
  ++rows_read_;
  return true;
}

void write_run_table(std::ostream& os, const core::RunTable& table) {
  RunTableWriter writer(os, table.feature_names(), table.catalog());
  for (std::size_t g = 0; g < table.num_groups(); ++g) {
    writer.append(table.features().row(g), table.runtimes().row(g));
  }
  writer.finish();
}

core::RunTable read_run_table(std::istream& is, LoadInfo* info) {
  RunTableReader reader(is);
  std::vector<double> feature_row;
  std::vector<double> runtime_row;
  std::vector<double> features_flat;
  std::vector<double> runtimes_flat;
  while (reader.next_row(feature_row, runtime_row)) {
    features_flat.insert(features_flat.end(), feature_row.begin(), feature_row.end());
    runtimes_flat.insert(runtimes_flat.end(), runtime_row.begin(), runtime_row.end());
  }
  const std::size_t rows = static_cast<std::size_t>(reader.rows_read());
  if (rows == 0) fail("run table holds no complete rows");
  linalg::Matrix features(rows, reader.num_features());
  features.data() = std::move(features_flat);
  linalg::Matrix runtimes(rows, reader.num_arms());
  runtimes.data() = std::move(runtimes_flat);
  if (info != nullptr) {
    info->format = Format::kBinary;
    info->version = kMagic[7];
    info->truncated = reader.truncated();
  }
  try {
    return core::RunTable(reader.feature_names(), std::move(features),
                          std::move(runtimes), reader.catalog());
  } catch (const InvalidArgument& error) {
    // The RunTable constructor rejects non-finite values and shape
    // inconsistencies — in a checksummed file those are writer defects.
    fail(error.what());
  }
}

}  // namespace bw::io
