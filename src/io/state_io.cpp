// Format detection and dispatch: the one place that knows every header the
// project has ever written. Adding a format means teaching probe() and the
// two load functions here — no caller changes, ever.

#include "io/state_io.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "common/error.hpp"
#include "core/banditware.hpp"
#include "io/codec.hpp"
#include "serve/bandit_server.hpp"

namespace bw::io {
namespace {

/// Text header line -> (kind, version). Returns false for anything else.
bool identify_text_header(const std::string& line, ProbeResult& out) {
  out.format = Format::kText;
  if (line == "banditware-state v1") out.version = 1;
  else if (line == "banditware-state v2") out.version = 2;
  else if (line == "banditware-state v3") out.version = 3;
  else if (line == "banditware-state v4") out.version = 4;
  else out.version = 0;
  if (out.version != 0) {
    out.kind = PayloadKind::kBanditWareState;
    return true;
  }
  if (line == "banditserver-state v1") out.version = 1;
  else if (line == "banditserver-state v2") out.version = 2;
  else if (line == "banditserver-state v3") out.version = 3;
  else if (line == "banditserver-state v4") out.version = 4;
  else if (line == "banditserver-state v5") out.version = 5;
  else return false;
  out.kind = PayloadKind::kBanditServerState;
  return true;
}

/// Reads the header line of a text snapshot, leaving the stream positioned
/// on the body. Returns false (stream restored) when the line matches no
/// known text header.
bool consume_text_header(std::istream& is, ProbeResult& out) {
  const std::istream::pos_type start = is.tellg();
  std::string line;
  if (!std::getline(is, line) || !identify_text_header(line, out)) {
    is.clear();
    is.seekg(start);
    return false;
  }
  return true;
}

}  // namespace

Format parse_format(const std::string& name) {
  if (name == "auto") return Format::kAuto;
  if (name == "text") return Format::kText;
  if (name == "binary") return Format::kBinary;
  throw InvalidArgument("unknown state format: " + name +
                        " (expected auto, text, or binary)");
}

std::string to_string(Format format) {
  switch (format) {
    case Format::kAuto:
      return "auto";
    case Format::kText:
      return "text";
    case Format::kBinary:
      return "binary";
  }
  return "unknown";
}

bool probe(std::istream& is, ProbeResult& out) {
  PayloadKind kind;
  if (peek_container(is, kind)) {
    out.kind = kind;
    out.format = Format::kBinary;
    out.version = kMagic[7];
    return true;
  }
  const std::istream::pos_type start = is.tellg();
  std::string line;
  const bool ok = static_cast<bool>(std::getline(is, line)) &&
                  identify_text_header(line, out);
  is.clear();
  is.seekg(start);
  return ok;
}

void save_state(std::ostream& os, const core::BanditWare& bandit, Format format) {
  if (format == Format::kBinary) {
    const std::string bytes = detail::bandit_state_binary(bandit);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return;
  }
  const std::string text = detail::bandit_state_text(bandit);
  os.write(text.data(), static_cast<std::streamsize>(text.size()));
}

void save_state(std::ostream& os, const serve::BanditServer& server, Format format) {
  if (format == Format::kBinary) {
    detail::save_server_binary(os, server);
    return;
  }
  const std::string text = detail::server_state_text(server);
  os.write(text.data(), static_cast<std::streamsize>(text.size()));
}

core::BanditWare load_state(std::istream& is, LoadInfo* info) {
  PayloadKind kind;
  if (peek_container(is, kind)) {
    if (kind != PayloadKind::kBanditWareState) {
      throw ParseError(
          "BanditWare::load_state: binary container holds a different payload kind");
    }
    return detail::load_bandit_binary(is, info);
  }
  ProbeResult header;
  if (!consume_text_header(is, header) ||
      header.kind != PayloadKind::kBanditWareState) {
    throw ParseError("BanditWare::load_state: bad header");
  }
  if (info != nullptr) {
    info->format = Format::kText;
    info->version = header.version;
    info->truncated = false;
  }
  return detail::load_bandit_text(is, header.version);
}

serve::BanditServer load_server_state(std::istream& is, LoadInfo* info) {
  PayloadKind kind;
  if (peek_container(is, kind)) {
    if (kind != PayloadKind::kBanditServerState) {
      throw ParseError(
          "BanditServer::load_state: binary container holds a different payload kind");
    }
    return detail::load_server_binary(is, info);
  }
  ProbeResult header;
  if (!consume_text_header(is, header) ||
      header.kind != PayloadKind::kBanditServerState) {
    throw ParseError("BanditServer::load_state: bad header");
  }
  if (info != nullptr) {
    info->format = Format::kText;
    info->version = header.version;
    info->truncated = false;
  }
  return detail::load_server_text(is, header.version);
}

}  // namespace bw::io
