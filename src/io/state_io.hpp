#pragma once
// bw::io — the single persistence entry point for learned state.
//
// Everything durable goes through the two function pairs below:
//
//   io::save_state(os, bandit|server, format)   // text or binary
//   io::load_state(is) / io::load_server_state(is)
//
// Loading auto-detects the format from the leading bytes — the binary
// container magic, or a `banditware-state v1..v3` / `banditserver-state
// v1..v4` text header — so every snapshot ever written keeps loading
// through one call, forever. The legacy string-based members
// (`BanditWare::save_state()/load_state()`, `BanditServer::…`) are thin
// wrappers over these streams; no caller outside src/io/ touches a
// version-specific parser.
//
// Text stays the default save format: it is diffable, and the ε-greedy
// text encoding is pinned byte-for-byte by golden fixtures. Binary
// (docs/FORMATS.md) stores sufficient statistics as raw little-endian
// doubles — bit-exact round trips with none of the 17-digit formatting
// cost — inside checksummed packets, so a truncated file loads up to the
// last complete packet instead of being lost.

#include <iosfwd>
#include <string>

#include "io/container.hpp"

namespace bw::core {
class BanditWare;
}
namespace bw::serve {
class BanditServer;
}

namespace bw::io {

enum class Format {
  kAuto,    ///< load: detect from bytes; save: the default (text)
  kText,    ///< line-oriented, 17-significant-digit doubles
  kBinary,  ///< packet-framed container, raw LE doubles, checksummed
};

/// Parses "auto" / "text" / "binary"; throws InvalidArgument otherwise.
Format parse_format(const std::string& name);
std::string to_string(Format format);

/// What a stream holds, identified from its leading bytes.
struct ProbeResult {
  PayloadKind kind = PayloadKind::kBanditWareState;
  Format format = Format::kText;  ///< kText or kBinary, never kAuto
  int version = 0;  ///< text format version, or binary container version
};

/// Identifies the payload without consuming the stream (position is
/// restored). Returns false when the bytes match no known format.
bool probe(std::istream& is, ProbeResult& out);

/// Filled in by the loaders: which format/version actually loaded, and
/// whether a binary stream stopped early at a torn or corrupted packet
/// (everything before it was restored — the crash-resilience contract).
struct LoadInfo {
  Format format = Format::kText;
  int version = 0;
  bool truncated = false;
};

/// Serializes a snapshot. kAuto means kText — the stable, diffable
/// default; binary is the opt-in fast path.
void save_state(std::ostream& os, const core::BanditWare& bandit,
                Format format = Format::kAuto);
void save_state(std::ostream& os, const serve::BanditServer& server,
                Format format = Format::kAuto);

/// Restores a snapshot, auto-detecting text (v1+) vs binary. Throws
/// ParseError on malformed input; a *truncated binary* stream is not an
/// error — it loads up to the last complete packet and sets
/// info->truncated.
core::BanditWare load_state(std::istream& is, LoadInfo* info = nullptr);
serve::BanditServer load_server_state(std::istream& is, LoadInfo* info = nullptr);

}  // namespace bw::io
