#include "io/container.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace bw::io {
namespace {

[[noreturn]] void fail(const std::string& msg) { throw ParseError("state: " + msg); }

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table, and
// table[k][b] is the CRC of byte b followed by k zero bytes — eight table
// lookups then advance the stream eight bytes per iteration, which keeps
// the per-packet checksum off the load-path profile (plain byte-wise CRC
// was the single largest cost of a binary state load).
using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

CrcTables make_crc_tables() {
  CrcTables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

// Frames are read into this fixed header before the payload; reading it in
// one go keeps the torn-frame detection trivial (short read = truncation).
struct FrameHeader {
  std::uint32_t payload_size = 0;
  std::uint32_t crc = 0;
  std::uint8_t type = 0;
};

std::uint32_t decode_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const CrcTables tables = make_crc_tables();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  while (size >= 8) {
    const std::uint32_t low = c ^ decode_u32(bytes);
    const std::uint32_t high = decode_u32(bytes + 4);
    c = tables[7][low & 0xFFu] ^ tables[6][(low >> 8) & 0xFFu] ^
        tables[5][(low >> 16) & 0xFFu] ^ tables[4][low >> 24] ^
        tables[3][high & 0xFFu] ^ tables[2][(high >> 8) & 0xFFu] ^
        tables[1][(high >> 16) & 0xFFu] ^ tables[0][high >> 24];
    bytes += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = tables[0][(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::string& out, const std::string& s) {
  if (s.size() > 0xFFFF) {
    throw InvalidArgument("state: string too long for binary encoding");
  }
  out.push_back(static_cast<char>(s.size() & 0xFFu));
  out.push_back(static_cast<char>((s.size() >> 8) & 0xFFu));
  out.append(s);
}

void put_f64_array(std::string& out, const double* values, std::size_t count) {
  if constexpr (std::endian::native == std::endian::little) {
    const std::size_t old = out.size();
    out.resize(old + count * sizeof(double));
    std::memcpy(out.data() + old, values, count * sizeof(double));
  } else {
    for (std::size_t i = 0; i < count; ++i) put_f64(out, values[i]);
  }
}

void PayloadReader::need(std::size_t bytes) const {
  if (payload_.size() - pos_ < bytes) fail("truncated packet payload");
}

std::uint8_t PayloadReader::get_u8() {
  need(1);
  return static_cast<std::uint8_t>(payload_[pos_++]);
}

std::uint32_t PayloadReader::get_u32() {
  need(4);
  const auto* p = reinterpret_cast<const unsigned char*>(payload_.data() + pos_);
  pos_ += 4;
  return decode_u32(p);
}

std::uint64_t PayloadReader::get_u64() {
  need(8);
  const auto* p = reinterpret_cast<const unsigned char*>(payload_.data() + pos_);
  pos_ += 8;
  return static_cast<std::uint64_t>(decode_u32(p)) |
         static_cast<std::uint64_t>(decode_u32(p + 4)) << 32;
}

std::int32_t PayloadReader::get_i32() { return static_cast<std::int32_t>(get_u32()); }

double PayloadReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string PayloadReader::get_string() {
  need(2);
  const std::size_t len = static_cast<unsigned char>(payload_[pos_]) |
                          static_cast<std::size_t>(
                              static_cast<unsigned char>(payload_[pos_ + 1]))
                              << 8;
  pos_ += 2;
  need(len);
  std::string s = payload_.substr(pos_, len);
  pos_ += len;
  return s;
}

void PayloadReader::get_f64_array(double* values, std::size_t count) {
  need(count * sizeof(double));
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(values, payload_.data() + pos_, count * sizeof(double));
    pos_ += count * sizeof(double);
  } else {
    for (std::size_t i = 0; i < count; ++i) values[i] = get_f64();
  }
}

std::string PayloadReader::rest() {
  std::string s = payload_.substr(pos_);
  pos_ = payload_.size();
  return s;
}

void PayloadReader::expect_done(const char* what) const {
  if (!done()) fail(std::string("trailing bytes in ") + what + " packet");
}

void write_container_magic(std::ostream& os, PayloadKind kind) {
  os.write(reinterpret_cast<const char*>(kMagic), sizeof(kMagic));
  os.put(static_cast<char>(kind));
}

void write_packet(std::ostream& os, std::uint8_t type, const std::string& payload) {
  if (payload.size() > kMaxPacketPayload) {
    throw InvalidArgument("state: packet payload exceeds 64 MiB");
  }
  std::string frame;
  frame.reserve(12);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload.data(), payload.size()));
  put_u8(frame, type);
  frame.append(3, '\0');
  os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

PacketReader::PacketReader(std::istream& is, PayloadKind expected_kind) : is_(is) {
  unsigned char preamble[sizeof(kMagic) + 1];
  is_.read(reinterpret_cast<char*>(preamble), sizeof(preamble));
  if (is_.gcount() != static_cast<std::streamsize>(sizeof(preamble)) ||
      std::memcmp(preamble, kMagic, sizeof(kMagic)) != 0) {
    fail("not a banditware binary container");
  }
  if (preamble[sizeof(kMagic)] != static_cast<unsigned char>(expected_kind)) {
    fail("binary container holds a different payload kind");
  }
}

bool PacketReader::next(Packet& packet) {
  if (done_) return false;
  unsigned char header[12];
  is_.read(reinterpret_cast<char*>(header), sizeof(header));
  const auto got = static_cast<std::size_t>(is_.gcount());
  if (got == 0) {  // clean end of stream
    done_ = true;
    return false;
  }
  if (got < sizeof(header)) {  // torn mid-frame
    done_ = truncated_ = true;
    return false;
  }
  FrameHeader frame;
  frame.payload_size = decode_u32(header);
  frame.crc = decode_u32(header + 4);
  frame.type = header[8];
  if (frame.payload_size > kMaxPacketPayload) {
    // A length this large is indistinguishable from random corruption of
    // the frame itself; treat it like a failed checksum, not a hard error.
    done_ = truncated_ = true;
    return false;
  }
  // Chunked read: allocation grows with bytes actually delivered by the
  // stream, so a hostile length field on a short file cannot force a huge
  // up-front allocation. Reading into the caller's packet reuses its
  // buffer capacity across the (typically thousands of) packets of a load.
  std::string& payload = packet.payload;
  payload.clear();
  constexpr std::size_t kChunk = 1u << 16;
  while (payload.size() < frame.payload_size) {
    const std::size_t want = std::min(kChunk, frame.payload_size - payload.size());
    const std::size_t old = payload.size();
    payload.resize(old + want);
    is_.read(payload.data() + old, static_cast<std::streamsize>(want));
    const auto n = static_cast<std::size_t>(is_.gcount());
    if (n < want) {  // torn mid-payload
      done_ = truncated_ = true;
      return false;
    }
  }
  if (crc32(payload.data(), payload.size()) != frame.crc) {
    done_ = truncated_ = true;
    return false;
  }
  packet.type = frame.type;
  return true;
}

bool peek_container(std::istream& is, PayloadKind& kind) {
  const std::istream::pos_type start = is.tellg();
  unsigned char preamble[sizeof(kMagic) + 1];
  is.read(reinterpret_cast<char*>(preamble), sizeof(preamble));
  const bool match =
      is.gcount() == static_cast<std::streamsize>(sizeof(preamble)) &&
      std::memcmp(preamble, kMagic, sizeof(kMagic)) == 0 &&
      preamble[sizeof(kMagic)] >= 1 && preamble[sizeof(kMagic)] <= 5;
  is.clear();
  is.seekg(start);
  if (!match) return false;
  kind = static_cast<PayloadKind>(preamble[sizeof(kMagic)]);
  return true;
}

}  // namespace bw::io
