#pragma once
// Internal to src/io/: the per-format codec entry points state_io.cpp
// dispatches between. Text readers are handed the stream positioned AFTER
// the header line (the dispatcher consumed it to identify the version);
// binary readers take the stream from the start (the container magic is
// part of the packet framing).

#include <istream>
#include <string>

#include "io/state_io.hpp"

namespace bw::core {
class BanditWare;
}
namespace bw::serve {
class BanditServer;
}

namespace bw::io::detail {

// ---- text (the historical formats, moved verbatim from core/serve) -----
std::string bandit_state_text(const core::BanditWare& bandit);
std::string server_state_text(const serve::BanditServer& server);
core::BanditWare load_bandit_text(std::istream& is, int version);
serve::BanditServer load_server_text(std::istream& is, int version);

// ---- binary (packet container; see docs/FORMATS.md) --------------------
std::string bandit_state_binary(const core::BanditWare& bandit);
void save_server_binary(std::ostream& os, const serve::BanditServer& server);
core::BanditWare load_bandit_binary(std::istream& is, LoadInfo* info);
serve::BanditServer load_server_binary(std::istream& is, LoadInfo* info);

}  // namespace bw::io::detail
