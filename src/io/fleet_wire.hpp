#pragma once
// Wire formats for multi-node fleet sync (src/fleet/), built on the same
// packet-framed, CRC-checked binary container as the snapshot formats
// (io/container.hpp). Two payload kinds:
//
//   * kFleetDelta (4) — one gossip message: the sender's identity, a
//     config envelope the receiver cross-checks (policy token, scalars,
//     forgetting factor λ, ridge, shape), per-origin blocks of cumulative
//     per-arm sufficient statistics (P, θ, n — raw LE doubles, bit-exact),
//     and the sender's per-origin/per-arm version vector. Origin blocks
//     carry *cumulative* statistics, not increments: because every origin
//     stream is appended by exactly one node, the stats at count n extend
//     the stats at any smaller count, so receivers apply each entry with
//     replace-if-larger-n — idempotent and commutative, which is what lets
//     a message be dropped, delayed, reordered, or duplicated freely.
//   * kFleetNode (5) — a fleet node's durable snapshot: the node identity
//     and incarnation, its wrapped BanditServer state as a nested kind-2
//     container blob, and the full origin store.
//
// Both readers share the container's tolerant-truncation contract: a torn
// stream yields everything before the tear and sets `truncated` (for a
// gossip message a partial apply is harmless — replace semantics means the
// rest simply arrives with a later message). Semantic contradictions inside
// a checksum-valid packet — hostile counts, out-of-range arms, duplicate
// blocks, non-finite statistics — are hard ParseErrors, never a bad_alloc.

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "core/arm_model.hpp"
#include "core/policy.hpp"

namespace bw::io {

/// Hard cap on distinct origins (node × incarnation pairs) in one message
/// or snapshot — far above any real fleet, small enough that a hostile
/// count fails before allocating anything interesting.
inline constexpr std::uint32_t kMaxFleetOrigins = 4096;

/// Identity of one observation stream: every observation belongs to the
/// node that absorbed it, under the incarnation it was running at the
/// time. Restart-from-snapshot bumps the incarnation, so a pre-crash
/// stream and its post-restart successor never collide.
struct FleetOriginKey {
  std::uint32_t node = 0;
  std::uint32_t incarnation = 0;
  auto operator<=>(const FleetOriginKey&) const = default;
};

/// Config envelope cross-checked on receive: fusing statistics produced
/// under a different policy, discount, or ridge would be silently wrong,
/// so a mismatch rejects the whole message.
struct FleetWireConfig {
  core::PolicyKind policy = core::PolicyKind::kEpsilonGreedy;
  double alpha = 1.0;             ///< LinUCB confidence width
  double posterior_scale = 1.0;   ///< Thompson posterior scale v
  double initial_epsilon = 1.0;   ///< ε-greedy schedule anchor ε₀
  double decay = 0.99;            ///< ε-greedy decay per observation
  double lambda = 1.0;            ///< RLS forgetting factor λ ∈ (0, 1]
  double ridge = 0.0;             ///< prior ridge on [w; b]
  std::uint32_t num_features = 0;
  std::uint32_t num_arms = 0;

  bool operator==(const FleetWireConfig&) const = default;
};

/// Cumulative sufficient statistics of one (origin, arm) stream prefix.
struct FleetArmEntry {
  std::uint32_t arm = 0;
  core::ArmStats stats;
};

/// All entries a message carries for one origin.
struct FleetOriginBlock {
  FleetOriginKey origin;
  std::vector<FleetArmEntry> arms;
};

/// One origin's per-arm observation counts as known to the sender — the
/// receiver learns what the sender already has and stops re-sending it.
struct FleetVvEntry {
  FleetOriginKey origin;
  std::vector<std::uint64_t> per_arm_n;  ///< size = num_arms
};

/// One gossip message.
struct FleetDelta {
  std::uint32_t sender = 0;
  std::uint32_t sender_incarnation = 0;
  FleetWireConfig config;
  std::vector<FleetOriginBlock> origins;
  std::vector<FleetVvEntry> version_vector;
};

/// One fleet node snapshot.
struct FleetNodeState {
  std::uint32_t node = 0;
  std::uint32_t incarnation = 0;
  FleetWireConfig config;
  std::string server_blob;  ///< nested kind-2 (banditserver-state) container
  std::vector<FleetOriginBlock> origins;
};

std::string save_fleet_delta(const FleetDelta& delta);

/// Parses a gossip message. A torn stream returns everything before the
/// tear and sets *truncated (when non-null); malformed bytes throw
/// ParseError. The header packet is mandatory — a stream torn before it
/// carries nothing applicable and is a ParseError.
FleetDelta load_fleet_delta(const std::string& bytes, bool* truncated = nullptr);

std::string save_fleet_node(const FleetNodeState& state);

/// Parses a node snapshot. Same truncation contract; the header and the
/// server blob are mandatory (a node cannot restart without its engine),
/// origin blocks after the tear are simply re-learned via gossip.
FleetNodeState load_fleet_node(const std::string& bytes, bool* truncated = nullptr);

}  // namespace bw::io
