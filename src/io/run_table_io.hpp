#pragma once
// Binary run-table format (.bwt): the replay dataset as packet-framed
// blocks of raw little-endian doubles — the streaming ingest path that
// replaces per-row CSV parsing for `banditware_cli serve`/replay (an order
// of magnitude faster at million-row sizes; bench/bench_state_io.cpp).
//
// Container payload kind 3 (see docs/FORMATS.md):
//   0x20 header     feature names + hardware catalog
//   0x21 row block  up to 4096 rows of [features..., runtimes...]
//   0x7F end        total row count
//
// Same truncation contract as the state formats: a torn file yields every
// row up to the last complete (checksummed) block; converters are
// csv2bw / bw2csv (tools/).

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/run_table.hpp"
#include "hardware/catalog.hpp"
#include "io/container.hpp"
#include "io/state_io.hpp"

namespace bw::io {

/// Streaming writer: header up front, rows appended in blocks, end
/// sentinel on finish(). Total row count need not be known in advance.
class RunTableWriter {
 public:
  RunTableWriter(std::ostream& os, std::vector<std::string> feature_names,
                 hw::HardwareCatalog catalog);

  /// `features` must have num_features values, `runtimes` one per arm.
  void append(std::span<const double> features, std::span<const double> runtimes);

  /// Flushes the partial block and writes the end sentinel. Must be called
  /// exactly once; append() after finish() throws.
  void finish();

  std::size_t num_features() const { return num_features_; }
  std::size_t num_arms() const { return num_arms_; }

 private:
  void flush_block();

  std::ostream& os_;
  std::size_t num_features_;
  std::size_t num_arms_;
  std::string block_;
  std::uint32_t block_rows_ = 0;
  std::uint64_t total_rows_ = 0;
  bool finished_ = false;
};

/// Streaming reader: header on construction, then one row per next_row()
/// call — no whole-file buffering, rows decode straight out of each
/// checksummed block. next_row() returns false at the end of data; check
/// truncated() to distinguish a clean end from a torn file.
class RunTableReader {
 public:
  /// Reads the container magic and header packet. Throws ParseError when
  /// the stream is not a run-table container or the header is missing.
  explicit RunTableReader(std::istream& is);

  const std::vector<std::string>& feature_names() const { return feature_names_; }
  const hw::HardwareCatalog& catalog() const { return catalog_; }
  std::size_t num_features() const { return feature_names_.size(); }
  std::size_t num_arms() const { return catalog_.size(); }

  /// Decodes the next row into `features` (num_features values) and
  /// `runtimes` (num_arms values); both are resized. False = no more rows.
  bool next_row(std::vector<double>& features, std::vector<double>& runtimes);

  std::uint64_t rows_read() const { return rows_read_; }
  /// True when the stream ended at a torn/corrupted packet or without the
  /// end sentinel (meaningful once next_row() returned false).
  bool truncated() const { return truncated_ || !saw_end_; }

 private:
  bool next_block();

  PacketReader reader_;
  std::vector<std::string> feature_names_;
  hw::HardwareCatalog catalog_;
  std::string block_;
  std::size_t block_pos_ = 0;
  std::uint32_t block_rows_left_ = 0;
  std::uint64_t rows_read_ = 0;
  bool saw_end_ = false;
  bool truncated_ = false;
  bool done_ = false;
};

/// Writes a whole RunTable as one container.
void write_run_table(std::ostream& os, const core::RunTable& table);

/// Reads a whole container into a RunTable (validated: finite values, at
/// least one row). A truncated stream loads every complete row block and
/// sets info->truncated; zero complete rows is a ParseError.
core::RunTable read_run_table(std::istream& is, LoadInfo* info = nullptr);

}  // namespace bw::io
