#pragma once
// Throughput replay: drives a BanditServer with batches sampled from a
// RunTable (the merged per-hardware CSV dataset of paper Fig. 1) and
// measures what a serving deployment cares about — decisions/sec, batch
// latency percentiles, regret against the per-group optimum, and how the
// stream spread across shards. Shared by `banditware_cli serve` and tests
// so the CLI stays a thin flag-parsing layer.

#include <cstdint>
#include <string>
#include <vector>

#include "core/run_table.hpp"
#include "serve/bandit_server.hpp"

namespace bw::serve {

struct ReplayOptions {
  std::size_t batch = 64;    ///< workflows per recommend/observe batch
  long rounds = 100;         ///< batches to replay
  std::uint64_t seed = 42;   ///< group-sampling seed
};

struct ReplayReport {
  std::size_t decisions = 0;
  double wall_s = 0.0;
  double decisions_per_s = 0.0;
  double mean_regret_s = 0.0;  ///< chosen runtime minus per-group optimum
  double batch_p50_ms = 0.0;   ///< recommend+observe latency per batch
  double batch_p95_ms = 0.0;
  double batch_p99_ms = 0.0;
  std::vector<std::size_t> shard_observations;

  std::string to_string() const;
};

/// Replays `options.rounds` batches of groups sampled uniformly from
/// `table` through `server`: recommend_batch, look up the true runtime of
/// the chosen arm, observe_batch. The table's arm order must match the
/// server's catalog. Throws InvalidArgument on empty tables or a feature
/// count mismatch.
ReplayReport replay_run_table(BanditServer& server, const core::RunTable& table,
                              const ReplayOptions& options = {});

}  // namespace bw::serve
