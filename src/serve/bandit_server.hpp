#pragma once
// BanditServer — sharded, thread-safe serving engine around the BanditWare
// facade. The single-threaded facade handles one decision at a time; a
// production deployment (the ROADMAP's "heavy traffic" north star) needs
// many concurrent recommend/observe streams. The server keeps N independent
// BanditWare replicas (shards), routes every request to one shard, and
// executes batches on a thread pool — shards never share mutable state, so
// throughput scales with shard count.
//
// Routing must be stable between a recommendation and its feedback so that
// the shard that served a decision also learns from it:
//   * kFeatureHash — shard = FNV-1a(feature bits) % N. Deterministic in x,
//     so repeat workflows always hit (and train) the same replica.
//   * kRoundRobin  — an atomic counter spreads load evenly; the decision
//     carries its shard id and the caller echoes it back with the runtime.
//
// Snapshots are atomic (all shard locks held) and built on the facade's
// plain-text snapshots, so save -> load -> save is byte-identical. Like
// BanditWare::save_state, exploration RNG state and non-default fit options
// are not serialized — a restored server resumes with reseeded exploration
// streams but identical learned models.

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/banditware.hpp"

namespace bw::serve {

enum class ShardingPolicy {
  kFeatureHash,  ///< stable hash of the feature vector
  kRoundRobin,   ///< atomic counter, even spread
};

std::string to_string(ShardingPolicy policy);
ShardingPolicy parse_sharding_policy(const std::string& name);

struct BanditServerConfig {
  std::size_t num_shards = 1;
  ShardingPolicy sharding = ShardingPolicy::kFeatureHash;
  core::BanditWareConfig bandit{};  ///< applied to every shard replica
  std::uint64_t seed = 42;          ///< root seed; shard RNGs use child seeds
  std::size_t num_threads = 0;      ///< batch-execution threads (0 = num_shards)
  bool explore = true;              ///< false = pure-exploitation serving
};

/// One served decision. `shard` must be echoed back in the matching
/// ServeObservation (kFeatureHash recomputes it, kRoundRobin cannot).
struct ServeDecision {
  std::size_t shard = 0;
  core::ArmIndex arm = 0;
  const hw::HardwareSpec* spec = nullptr;
  bool explored = false;
  double predicted_runtime_s = 0.0;
};

/// Feedback for one served decision.
struct ServeObservation {
  std::size_t shard = 0;
  core::ArmIndex arm = 0;
  core::FeatureVector x;
  double runtime_s = 0.0;
};

class BanditServer {
 public:
  BanditServer(hw::HardwareCatalog catalog, std::vector<std::string> feature_names,
               BanditServerConfig config = {});

  /// Movable (so load_state can return by value) but not copyable: shards
  /// own mutexes and the engine owns its thread pool.
  BanditServer(BanditServer&& other) noexcept;
  BanditServer(const BanditServer&) = delete;
  BanditServer& operator=(const BanditServer&) = delete;

  std::size_t num_shards() const { return shards_.size(); }
  const BanditServerConfig& config() const { return config_; }
  const std::vector<std::string>& feature_names() const { return feature_names_; }

  /// Shard a feature vector routes to under kFeatureHash (stable within a
  /// build). For kRoundRobin routing happens per request; use the decision's
  /// `shard` field instead.
  std::size_t shard_of(const core::FeatureVector& x) const;

  /// Serves one decision (locks a single shard).
  ServeDecision recommend_one(const core::FeatureVector& x);

  /// Serves a batch: requests are routed, grouped per shard, and executed
  /// concurrently on the internal pool. Result i corresponds to xs[i].
  std::vector<ServeDecision> recommend_batch(const std::vector<core::FeatureVector>& xs);

  /// Feeds one observed runtime back into its shard.
  void observe_one(const ServeObservation& obs);

  /// Batched feedback, grouped per shard and executed concurrently.
  void observe_batch(const std::vector<ServeObservation>& observations);

  /// R̂ per arm from one shard's replica (locks that shard).
  std::vector<double> predictions(std::size_t shard, const core::FeatureVector& x) const;

  /// Total observations across shards / per shard (locks each shard briefly).
  std::size_t num_observations() const;
  std::vector<std::size_t> shard_observation_counts() const;

  /// Atomic whole-engine snapshot: every shard lock is held while the text
  /// is assembled, so the state is a consistent cut.
  std::string save_state() const;

  /// Rebuilds a server from save_state() output. Throws ParseError.
  static BanditServer load_state(const std::string& text);

 private:
  // Read-mostly concurrency: recommends in pure-exploitation mode
  // (config.explore == false) only read the replica, so they take the
  // shard lock shared and run concurrently; observes, snapshots, and
  // exploring recommends (which advance the shard RNG) take it exclusive.
  struct Shard {
    mutable std::shared_mutex mutex;
    core::BanditWare bandit;
    Rng rng;
    Shard(core::BanditWare b, std::uint64_t seed) : bandit(std::move(b)), rng(seed) {}
  };

  BanditServer(BanditServerConfig config, std::vector<core::BanditWare> replicas);

  std::size_t route(const core::FeatureVector& x);
  ServeDecision decide_locked(Shard& shard, std::size_t shard_index,
                              const core::FeatureVector& x);

  BanditServerConfig config_;
  std::vector<std::string> feature_names_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<std::uint64_t> rr_counter_{0};
};

}  // namespace bw::serve
